package asv

import (
	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/nn"
	"asv/internal/stereo"
)

// ExpScale controls how much data the accuracy experiments process. The
// paper's datasets are real-image benchmarks; the reproduction generates
// synthetic equivalents whose volume is configurable so the full suite can
// run on a laptop (see DESIGN.md, substitutions).
type ExpScale struct {
	W, H            int // frame size
	SceneFlowSeqs   int // number of SceneFlow-like sequences (paper: 26)
	SceneFlowFrames int // frames per sequence (>= 4 for PW-4)
	KITTIPairs      int // number of KITTI-like two-frame pairs (paper: 200)
	Seed            int64
}

// FullScale runs the complete synthetic benchmark (all 26 SceneFlow-like
// sequences and 200 KITTI-like pairs).
func FullScale() ExpScale {
	return ExpScale{W: 160, H: 96, SceneFlowSeqs: 26, SceneFlowFrames: 8, KITTIPairs: 200, Seed: 1}
}

// QuickScale is a reduced configuration for tests and smoke runs.
func QuickScale() ExpScale {
	return ExpScale{W: 128, H: 80, SceneFlowSeqs: 4, SceneFlowFrames: 4, KITTIPairs: 8, Seed: 1}
}

// DNNProfile describes one of the paper's stereo DNNs for the oracle-based
// accuracy experiments: its published three-pixel error rate and its
// inference cost density.
type DNNProfile struct {
	Name       string
	ErrRatePct float64 // published KITTI-class three-pixel error rate
	Net        *nn.Network
}

// StereoDNNProfiles returns the four evaluation networks with their
// published error rates (KITTI 2015 leaderboard era: PSMNet 2.3%,
// GC-Net 2.9%, DispNet 4.3%, FlowNetC-style correlation nets ~5.6%).
func StereoDNNProfiles(h, w int) []DNNProfile {
	zoo := nn.StereoZoo(h, w)
	errs := map[string]float64{
		"FlowNetC": 5.6,
		"DispNet":  4.3,
		"GC-Net":   2.9,
		"PSMNet":   2.3,
	}
	out := make([]DNNProfile, len(zoo))
	for i, n := range zoo {
		out[i] = DNNProfile{Name: n.Name, ErrRatePct: errs[n.Name], Net: n}
	}
	return out
}

// sceneFlowConfigs and kittiConfigs trim the preset lists to the scale.
func sceneFlowConfigs(sc ExpScale) []dataset.SceneConfig {
	cfgs := dataset.SceneFlowLike(sc.W, sc.H, sc.SceneFlowFrames, sc.Seed)
	if sc.SceneFlowSeqs < len(cfgs) {
		cfgs = cfgs[:sc.SceneFlowSeqs]
	}
	return cfgs
}

func kittiConfigs(sc ExpScale) []dataset.SceneConfig {
	return dataset.KITTILike(sc.W, sc.H, sc.KITTIPairs, sc.Seed+7777)
}

// runAccuracy evaluates one (DNN, propagation window) point: it streams
// every sequence through an ISM pipeline whose key frames come from a
// ground-truth oracle corrupted to the DNN's published error rate, and
// returns the mean three-pixel error over all frames (key and non-key),
// matching the paper's Fig. 9 protocol. pw=1 measures the DNN alone.
func runAccuracy(cfgs []dataset.SceneConfig, prof DNNProfile, pw int, seed int64) float64 {
	pcfg := core.DefaultConfig()
	pcfg.PW = pw
	var errSum float64
	var n int
	for i, cfg := range cfgs {
		seq := dataset.Generate(cfg)
		oracle := &core.OracleMatcher{
			ModelName:     prof.Name,
			ErrRatePct:    prof.ErrRatePct,
			SubpixelSigma: 0.3,
			Seed:          seed + int64(i)*131,
		}
		pipe := core.New(nil, pcfg)
		for _, fr := range seq.Frames {
			var res core.Result
			if pipe.NextIsKey() {
				oracle.SetGT(fr.GT)
				res = pipe.ProcessKey(fr.Left, fr.Right, oracle.Match(fr.Left, fr.Right), 0)
			} else {
				res = pipe.ProcessNonKey(fr.Left, fr.Right)
			}
			errSum += stereo.ThreePixelError(res.Disparity, fr.GT)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return errSum / float64(n)
}
