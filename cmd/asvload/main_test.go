package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"asv"
)

func startServer(t *testing.T) string {
	t.Helper()
	opt := asv.DefaultBMOptions()
	opt.MaxDisp = 12
	srv := asv.NewServeServer(asv.BMKeyMatcher{Opt: opt}, asv.DefaultServeConfig())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	return "http://" + addr.String()
}

// TestLoadAgainstLiveServer drives a small preset run end to end and checks
// the JSON report: every request succeeded and the key/propagated split
// matches the ISM cadence.
func TestLoadAgainstLiveServer(t *testing.T) {
	base := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base, "-sessions", "2", "-frames", "6",
		"-w", "48", "-h", "32", "-pw", "3", "-json",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v (output: %s)", err, out.String())
	}

	var rep asv.ServeLoadReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("parsing report: %v from %s", err, out.String())
	}
	if rep.Requests != 12 || rep.OK != 12 {
		t.Fatalf("want 12/12 ok, got %+v", rep)
	}
	if rep.Status5xx != 0 || rep.Transport != 0 {
		t.Fatalf("errors in report: %+v", rep)
	}
	// PW=3 over 6 frames: frames 0 and 3 are key, per session.
	if rep.KeyFrames != 4 || rep.NonKey != 8 {
		t.Fatalf("key/propagated split %d/%d, want 4/8", rep.KeyFrames, rep.NonKey)
	}
	if rep.P99Ms <= 0 {
		t.Fatalf("p99 not reported: %+v", rep)
	}
}

func TestLoadTextReport(t *testing.T) {
	base := startServer(t)
	var out bytes.Buffer
	if err := run([]string{
		"-addr", base, "-sessions", "1", "-frames", "3",
		"-w", "48", "-h", "32", "-pw", "2",
	}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"requests", "p50", "p99", "429"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q: %s", want, text)
		}
	}
}

func TestLoadRefusesDeadServer(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-frames", "1", "-timeout", "2s"}, &out); err == nil {
		t.Fatal("expected an error against a dead server")
	}
}

// TestLoadClusterMode drives two live servers through -addrs and checks the
// aggregate sums the per-target reports.
func TestLoadClusterMode(t *testing.T) {
	a, b := startServer(t), startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addrs", a + "," + b, "-sessions", "2", "-frames", "4",
		"-w", "48", "-h", "32", "-pw", "2", "-json",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v (output: %s)", err, out.String())
	}

	var crep asv.ServeClusterLoadReport
	if err := json.Unmarshal(out.Bytes(), &crep); err != nil {
		t.Fatalf("parsing report: %v from %s", err, out.String())
	}
	if len(crep.Targets) != 2 {
		t.Fatalf("want 2 targets, got %d", len(crep.Targets))
	}
	sum := 0
	for name, rep := range crep.Targets {
		if rep.OK != 8 {
			t.Fatalf("target %s: want 8 ok, got %+v", name, rep)
		}
		sum += rep.OK
	}
	if crep.Aggregate.OK != sum || crep.Aggregate.Requests != 16 {
		t.Fatalf("aggregate does not sum targets: %+v", crep.Aggregate)
	}
	if crep.Aggregate.P99Ms <= 0 {
		t.Fatalf("aggregate percentiles missing: %+v", crep.Aggregate)
	}
}

func TestLoadClusterModeFailsOnDeadTarget(t *testing.T) {
	a := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addrs", a + ",http://127.0.0.1:1", "-frames", "1", "-timeout", "2s",
	}, &out)
	if err == nil {
		t.Fatal("expected an error when one cluster target is dead")
	}
}
