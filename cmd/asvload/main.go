// Command asvload generates load against a running asvserve instance: it
// opens concurrent sessions, replays synthetic stereo streams at a target
// aggregate QPS, and reports latency percentiles plus the outcome counts
// (OK / 429 backpressure / errors).
//
// Cluster mode (-addrs) fans the same workload out over several endpoints —
// typically one asvgate or the shards directly — and reports per-target
// numbers plus an aggregate whose percentiles cover the union of all
// latency samples (the true cluster tail, not an average of tails).
//
// Usage:
//
//	asvload -addr http://127.0.0.1:8080 -sessions 4 -frames 25 -qps 40
//	asvload -addr http://127.0.0.1:8080 -upload          # ship PGM bytes
//	asvload -addr http://127.0.0.1:8080 -raw             # raw pairs, server rectifies
//	asvload -addr http://127.0.0.1:8080 -format cloud    # point-cloud replies
//	asvload -addr http://127.0.0.1:8080 -upload -mixed   # every serving path at once
//	asvload -addr http://127.0.0.1:8080 -json            # machine output
//	asvload -addrs http://127.0.0.1:8081,http://127.0.0.1:8082
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"asv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asvload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asvload", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the asvserve instance")
	addrs := fs.String("addrs", "", "comma-separated base URLs; cluster mode drives all of them concurrently (overrides -addr)")
	sessions := fs.Int("sessions", 4, "concurrent sessions (per target in cluster mode)")
	frames := fs.Int("frames", 12, "frames per session")
	qps := fs.Float64("qps", 0, "aggregate target request rate per target (0 = as fast as possible)")
	width := fs.Int("w", 96, "frame width")
	height := fs.Int("h", 64, "frame height")
	pw := fs.Int("pw", 4, "propagation window")
	preset := fs.String("preset", "sceneflow", "synthetic scene preset (sceneflow|kitti)")
	seed := fs.Int64("seed", 7, "scene seed")
	upload := fs.Bool("upload", false, "ship PGM frames in the request body instead of server-side presets")
	raw := fs.Bool("raw", false, "ship RAW (misaligned) uploads against calibrated sessions; the server rectifies before matching (implies -upload)")
	format := fs.String("format", "json", "response format each frame requests (json|disparity|depth|cloud)")
	mixed := fs.Bool("mixed", false, "cycle sessions through rectified/raw uploads and all response formats (overrides -raw/-format per session)")
	slo := fs.String("slo", "", "session service class (gold|besteffort); besteffort lets the server degrade accuracy under load instead of rejecting")
	deadlineMs := fs.Float64("deadline-ms", 0, "per-frame latency target for besteffort sessions (0 = server default)")
	retry429 := fs.Int("retry-429", 0, "retries per 429'd frame after honoring Retry-After (0 = default, negative disables)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := asv.ServeLoadConfig{
		BaseURL:    *addr,
		Sessions:   *sessions,
		Frames:     *frames,
		QPS:        *qps,
		W:          *width,
		H:          *height,
		PW:         *pw,
		Preset:     *preset,
		Seed:       *seed,
		Upload:     *upload,
		Raw:        *raw,
		Format:     *format,
		Mixed:      *mixed,
		SLO:        *slo,
		DeadlineMs: *deadlineMs,
		Retry429:   *retry429,
		Timeout:    *timeout,
	}

	if *addrs != "" {
		var targets []string
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				targets = append(targets, a)
			}
		}
		crep, err := asv.RunServeLoadCluster(cfg, targets)
		if err != nil {
			return err
		}
		if *asJSON {
			buf, err := json.MarshalIndent(crep, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintln(out, string(buf))
			return nil
		}
		names := make([]string, 0, len(crep.Targets))
		for name := range crep.Targets {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			printReport(out, "  "+name, crep.Targets[name])
		}
		printReport(out, "aggregate", crep.Aggregate)
		return nil
	}

	rep, err := asv.RunServeLoad(cfg)
	if err != nil {
		return err
	}
	if *asJSON {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(buf))
		return nil
	}
	printReport(out, "asvload", rep)
	return nil
}

func printReport(out io.Writer, label string, rep asv.ServeLoadReport) {
	fmt.Fprintf(out, "%s: %d requests in %.0f ms (%.1f req/s achieved, %.1f ok/s)\n",
		label, rep.Requests, rep.DurationMs, rep.AchievedTP, rep.OKRps)
	fmt.Fprintf(out, "  ok %d (key %d, propagated %d)  429 %d (retried %d, dropped %d)  4xx %d  5xx %d  transport %d\n",
		rep.OK, rep.KeyFrames, rep.NonKey, rep.Rejected, rep.Retries, rep.Dropped,
		rep.Status4xx, rep.Status5xx, rep.Transport)
	if rep.DepthMaps > 0 || rep.Clouds > 0 {
		fmt.Fprintf(out, "  perception: depth maps %d  clouds %d (%d points)\n",
			rep.DepthMaps, rep.Clouds, rep.CloudPts)
	}
	if len(rep.Rungs) > 0 {
		names := make([]string, 0, len(rep.Rungs))
		for name := range rep.Rungs {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s %d", name, rep.Rungs[name]))
		}
		fmt.Fprintf(out, "  rungs: %s  (degraded %d)\n", strings.Join(parts, "  "), rep.Degraded)
	}
	fmt.Fprintf(out, "  latency ms: p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n",
		rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.MaxMs)
}
