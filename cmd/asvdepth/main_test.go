package main

import (
	"strings"
	"testing"
)

func TestRunSerialSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-frames", "4", "-w", "64", "-h", "48", "-pw", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"PW-2", "KEY", "non-key", "mean three-pixel error", "arithmetic saving"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStreamingMatchesSerialOutput(t *testing.T) {
	args := []string{"-frames", "5", "-w", "64", "-h", "48", "-pw", "2"}
	var serial, streamed strings.Builder
	if err := run(args, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-stream"}, args...), &streamed); err != nil {
		t.Fatal(err)
	}
	// Everything below the mode header must match bit for bit — the
	// cmd-level view of the pipeline's golden guarantee.
	tail := func(s string) string {
		_, rest, _ := strings.Cut(s, "\n")
		return rest
	}
	if tail(serial.String()) != tail(streamed.String()) {
		t.Fatalf("streaming output differs from serial:\n--- serial\n%s\n--- streaming\n%s",
			serial.String(), streamed.String())
	}
}

func TestRunFixedFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-frames", "4", "-w", "64", "-h", "48", "-pw", "2", "-fixed"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fixed-point kernels", "mean three-pixel error"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMetricsFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-frames", "4", "-w", "64", "-h", "48", "-stream", "-metrics"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"per-stage metrics:", "flow", "keymatch", "pool"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-frames", "notanumber"}, &b); err == nil {
		t.Fatal("bad -frames value accepted")
	}
	if err := run([]string{"-nonsense"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
