// Command asvdepth demonstrates the ISM pipeline on a generated stereo
// video: it streams frames through the pipeline, prints the per-frame
// accuracy and arithmetic cost, and summarizes the compute saving relative
// to running the key-frame matcher on every frame.
//
// Usage:
//
//	asvdepth -pw 4 -frames 12 -w 192 -h 120
package main

import (
	"flag"
	"fmt"

	"asv"
)

func main() {
	pw := flag.Int("pw", 4, "propagation window (1 = key matcher every frame)")
	frames := flag.Int("frames", 12, "number of stereo frames to stream")
	width := flag.Int("w", 192, "frame width")
	height := flag.Int("h", 120, "frame height")
	seed := flag.Int64("seed", 7, "scene seed")
	flag.Parse()

	seq := asv.GenerateSequence(asv.SceneConfig{
		W: *width, H: *height, FrameCount: *frames,
		Layers: 3, MinDisp: 2, MaxDisp: 20,
		MaxVel: 1.5, MaxDispVel: 0.3, Ground: true, Noise: 0.01,
		Seed: *seed,
	})

	sgmOpt := asv.DefaultSGMOptions()
	sgmOpt.MaxDisp = 28
	cfg := asv.DefaultPipelineConfig()
	cfg.PW = *pw
	pipe := asv.NewPipeline(asv.SGMKeyMatcher{Opt: sgmOpt}, cfg)

	fmt.Printf("ISM over %d frames at %dx%d, PW-%d, key matcher: SGM\n\n",
		*frames, *width, *height, *pw)
	fmt.Println("frame  kind     error-%   MOps")

	var totalMACs, keyMACs int64
	var errSum float64
	for i, fr := range seq.Frames {
		res := pipe.Process(fr.Left, fr.Right)
		kind := "non-key"
		if res.IsKey {
			kind = "KEY"
		}
		e := asv.ThreePixelError(res.Disparity, fr.GT)
		errSum += e
		totalMACs += res.MACs
		keyMACs += asv.SGMKeyMatcher{Opt: sgmOpt}.MACs(*width, *height)
		fmt.Printf("%5d  %-7s  %6.2f  %6.0f\n", i, kind, e, float64(res.MACs)/1e6)
	}

	fmt.Printf("\nmean three-pixel error: %.2f%%\n", errSum/float64(len(seq.Frames)))
	fmt.Printf("arithmetic saving vs keying every frame: %.1fx\n",
		float64(keyMACs)/float64(totalMACs))
}
