// Command asvdepth demonstrates the ISM pipeline on a generated stereo
// video: it streams frames through the pipeline, prints the per-frame
// accuracy and arithmetic cost, and summarizes the compute saving relative
// to running the key-frame matcher on every frame.
//
// Usage:
//
//	asvdepth -pw 4 -frames 12 -w 192 -h 120
//	asvdepth -stream -metrics     # concurrent runtime + per-stage metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"asv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asvdepth:", err)
		os.Exit(1)
	}
}

// run executes the command with the given arguments, writing the report to
// out. Split from main so the cmd is testable end to end.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asvdepth", flag.ContinueOnError)
	fs.SetOutput(out)
	pw := fs.Int("pw", 4, "propagation window (1 = key matcher every frame)")
	frames := fs.Int("frames", 12, "number of stereo frames to stream")
	width := fs.Int("w", 192, "frame width")
	height := fs.Int("h", 120, "frame height")
	seed := fs.Int64("seed", 7, "scene seed")
	stream := fs.Bool("stream", false, "use the concurrent streaming runtime (bit-identical to serial)")
	showMetrics := fs.Bool("metrics", false, "print per-stage latency metrics after the run")
	fixed := fs.Bool("fixed", false, "use the fixed-point matching kernels (key SGM + guided refine)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	seq := asv.GenerateSequence(asv.SceneConfig{
		W: *width, H: *height, FrameCount: *frames,
		Layers: 3, MinDisp: 2, MaxDisp: 20,
		MaxVel: 1.5, MaxDispVel: 0.3, Ground: true, Noise: 0.01,
		Seed: *seed,
	})

	sgmOpt := asv.DefaultSGMOptions()
	sgmOpt.MaxDisp = 28
	sgmOpt.Fixed = *fixed
	cfg := asv.DefaultPipelineConfig()
	cfg.PW = *pw
	cfg.BM.Fixed = *fixed
	matcher := asv.SGMKeyMatcher{Opt: sgmOpt}

	mode := "serial"
	if *stream {
		mode = "streaming"
	}
	kernels := "float"
	if *fixed {
		kernels = "fixed-point"
	}
	fmt.Fprintf(out, "ISM over %d frames at %dx%d, PW-%d, key matcher: SGM (%s, %s kernels)\n\n",
		*frames, *width, *height, *pw, mode, kernels)
	fmt.Fprintln(out, "frame  kind     error-%   MOps")

	var reg *asv.Metrics
	if *showMetrics {
		reg = asv.NewMetrics()
	}

	var results []asv.FrameResult
	if *stream {
		in := make([]asv.StreamFrame, len(seq.Frames))
		for i, fr := range seq.Frames {
			in[i] = asv.StreamFrame{Left: fr.Left, Right: fr.Right}
		}
		for _, r := range asv.StreamDepthFrames(matcher, cfg, in, asv.StreamOptions{Metrics: reg}) {
			results = append(results, r.Result)
		}
	} else {
		pipe := asv.NewPipeline(matcher, cfg)
		for _, fr := range seq.Frames {
			res := pipe.Process(fr.Left, fr.Right)
			results = append(results, res)
		}
	}

	var totalMACs, keyMACs int64
	var errSum float64
	for i, res := range results {
		kind := "non-key"
		if res.IsKey {
			kind = "KEY"
		}
		e := asv.ThreePixelError(res.Disparity, seq.Frames[i].GT)
		errSum += e
		totalMACs += res.MACs
		keyMACs += matcher.MACs(*width, *height)
		fmt.Fprintf(out, "%5d  %-7s  %6.2f  %6.0f\n", i, kind, e, float64(res.MACs)/1e6)
	}

	fmt.Fprintf(out, "\nmean three-pixel error: %.2f%%\n", errSum/float64(len(results)))
	fmt.Fprintf(out, "arithmetic saving vs keying every frame: %.1fx\n",
		float64(keyMACs)/float64(totalMACs))
	if reg != nil {
		fmt.Fprintf(out, "\nper-stage metrics:\n%s", reg.Dump())
	}
	return nil
}
