// Command asvbench regenerates the tables and figures of the ASV paper's
// evaluation as text tables.
//
// Usage:
//
//	asvbench -list
//	asvbench -exp fig10
//	asvbench -exp all -scale full
//
// -scale quick (default) runs the accuracy experiments on a reduced
// synthetic dataset; -scale full uses all 26 SceneFlow-like sequences and
// 200 KITTI-like pairs, as in the paper.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"

	"asv"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1,fig3,fig4,fig9,fig10,fig11,fig12,fig13,fig14,backends,sec71,sec33,pipeline,serve,kernels,all)")
	scale := flag.String("scale", "quick", "dataset scale for accuracy experiments (quick|full)")
	list := flag.Bool("list", false, "list available experiments and exit")
	backendName := flag.String("backend", "", "run the network-zoo cost sweep on one registered backend ("+strings.Join(asv.BackendNames(), "|")+") and exit")
	flag.StringVar(&jsonPath, "json", "", "with -exp pipeline/serve/backends/kernels: also write the measurements to this JSON file")
	flag.StringVar(&gatePath, "gate", "", "with -exp kernels: fail if any kernel regressed past 2.5x the committed baseline JSON at this path")
	flag.StringVar(&format, "format", "table", "output format (table|csv)")
	flag.Parse()
	if format != "table" && format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", format)
		os.Exit(2)
	}

	if *list {
		for _, l := range asv.ExperimentIndex() {
			fmt.Println(l)
		}
		fmt.Println("pipeline   serial vs concurrent streaming-runtime throughput (-json writes BENCH_pipeline.json)")
		fmt.Println("serve      depth-serving latency percentiles + backpressure (-json writes BENCH_serve.json)")
		fmt.Println("kernels    matching-kernel ns/pixel, float vs fixed (-json writes BENCH_kernels.json, -gate checks a baseline)")
		return
	}

	if *backendName != "" {
		if _, err := asv.BackendByName(*backendName); err != nil {
			fmt.Fprintln(os.Stderr, "asvbench:", err)
			os.Exit(2)
		}
		backendsTable(fmt.Sprintf("Backend %q: network zoo x supported policies", *backendName),
			asv.ExperimentBackendsFor(*backendName))
		return
	}

	var sc asv.ExpScale
	switch *scale {
	case "quick":
		sc = asv.QuickScale()
	case "full":
		sc = asv.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	runners := map[string]func(asv.ExpScale){
		"fig1":           fig1,
		"fig3":           func(asv.ExpScale) { fig3() },
		"fig4":           func(asv.ExpScale) { fig4() },
		"fig9":           fig9,
		"fig10":          func(asv.ExpScale) { fig10() },
		"fig11":          func(asv.ExpScale) { fig11() },
		"fig12":          func(asv.ExpScale) { fig12() },
		"fig13":          func(asv.ExpScale) { fig13() },
		"fig14":          func(asv.ExpScale) { fig14() },
		"backends":       func(asv.ExpScale) { backendsExp() },
		"sec71":          func(asv.ExpScale) { sec71() },
		"sec33":          func(asv.ExpScale) { sec33() },
		"ablation-me":    ablationME,
		"ablation-param": ablationParam,
		"ablation-key":   ablationKey,
		"ablation-order": ablationOrder,
		"pipeline":       func(asv.ExpScale) { pipelineBench() },
		"serve":          func(asv.ExpScale) { serveBench() },
		"kernels":        func(asv.ExpScale) { kernelsExp() },
	}
	order := []string{"fig1", "fig3", "fig4", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "sec71", "sec33",
		"ablation-me", "ablation-param", "ablation-key", "ablation-order",
		"backends"}

	if *exp == "all" {
		for _, name := range order {
			runners[name](sc)
		}
		return
	}
	run, ok := runners[strings.ToLower(*exp)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	run(sc)
}

// format selects the output renderer ("table" or "csv").
var format = "table"

// jsonPath, when non-empty, is where -exp pipeline writes its JSON record.
var jsonPath = ""

// gatePath, when non-empty, is the committed BENCH_kernels.json baseline the
// kernels experiment compares itself against.
var gatePath = ""

func table(title string, header []string, rows [][]string) {
	if format == "csv" {
		fmt.Printf("# %s\n", title)
		w := csv.NewWriter(os.Stdout)
		dieIf(w.Write(header))
		dieIf(w.WriteAll(rows)) // WriteAll flushes and reports any buffered error
		return
	}
	fmt.Printf("\n== %s ==\n", title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	dieIf(w.Flush())
}

// dieIf aborts on output errors (a closed pipe, a full disk): silently
// truncated benchmark tables are worse than no tables.
func dieIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "asvbench:", err)
		os.Exit(1)
	}
}

func fig1(sc asv.ExpScale) {
	var rows [][]string
	for _, p := range asv.ExperimentFig1(sc) {
		rows = append(rows, []string{p.Name, p.Class,
			fmt.Sprintf("%.2f", p.ErrorPct), fmt.Sprintf("%.2f", p.FPS)})
	}
	table("Fig 1: accuracy/performance frontier (qHD)",
		[]string{"system", "class", "error-%", "FPS"}, rows)
}

func fig3() {
	var rows [][]string
	for _, r := range asv.ExperimentFig3() {
		rows = append(rows, []string{r.Net,
			fmt.Sprintf("%.1f", r.FEPct), fmt.Sprintf("%.1f", r.MOPct),
			fmt.Sprintf("%.1f", r.DRPct), fmt.Sprintf("%.1f", r.DeconvPct)})
	}
	table("Fig 3: operation distribution (paper: deconv avg 38.2%)",
		[]string{"network", "FE-%", "MO-%", "DR-%", "deconv-%"}, rows)
}

func fig4() {
	var rows [][]string
	for _, p := range asv.ExperimentFig4() {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.DepthM), fmt.Sprintf("%.2f", p.DispErrPx),
			fmt.Sprintf("%.3f", p.DepthErrM)})
	}
	table("Fig 4: depth error vs disparity error (Bumblebee2)",
		[]string{"depth-m", "disp-err-px", "depth-err-m"}, rows)
}

func fig9(sc asv.ExpScale) {
	var rows [][]string
	for _, r := range asv.ExperimentFig9(sc) {
		rows = append(rows, []string{r.Dataset, r.Net, r.Mode, fmt.Sprintf("%.2f", r.ErrorPct)})
	}
	table("Fig 9: ISM accuracy vs DNN (three-pixel error)",
		[]string{"dataset", "network", "mode", "error-%"}, rows)
}

func fig10() {
	var rows [][]string
	for _, r := range asv.ExperimentFig10() {
		rows = append(rows, []string{r.Net, r.Variant,
			fmt.Sprintf("%.2f", r.Speedup), fmt.Sprintf("%.1f", r.EnergyRedPct)})
	}
	table("Fig 10: speedup & energy vs baseline (paper avg: 4.9x / 85%)",
		[]string{"network", "variant", "speedup-x", "energy-red-%"}, rows)
}

func fig11() {
	var rows [][]string
	for _, r := range asv.ExperimentFig11() {
		rows = append(rows, []string{r.Net, r.Opt,
			fmt.Sprintf("%.2f", r.DeconvSpeedup), fmt.Sprintf("%.1f", r.DeconvEnergyRedPct),
			fmt.Sprintf("%.2f", r.NetSpeedup), fmt.Sprintf("%.1f", r.NetEnergyRedPct)})
	}
	table("Fig 11: deconvolution optimizations (deconv-only and whole net)",
		[]string{"network", "opt", "deconv-x", "deconv-en-%", "net-x", "net-en-%"}, rows)
}

func fig12() {
	g := asv.ExperimentFig12()
	header := []string{"buf\\PE"}
	for _, pe := range g.PEs {
		header = append(header, fmt.Sprintf("%dx%d", pe, pe))
	}
	var spRows, enRows [][]string
	for i, mb := range g.BufsMB {
		sp := []string{fmt.Sprintf("%.1fMB", mb)}
		en := []string{fmt.Sprintf("%.1fMB", mb)}
		for j := range g.PEs {
			sp = append(sp, fmt.Sprintf("%.2f", g.Speedup[i][j]))
			en = append(en, fmt.Sprintf("%.2f", g.EnergyRed[i][j]))
		}
		spRows = append(spRows, sp)
		enRows = append(enRows, en)
	}
	table("Fig 12a: DCO speedup sensitivity (FlowNetC)", header, spRows)
	table("Fig 12b: DCO energy-reduction sensitivity (FlowNetC)", header, enRows)
}

func fig13() {
	var rows [][]string
	for _, r := range asv.ExperimentFig13() {
		rows = append(rows, []string{r.System,
			fmt.Sprintf("%.2f", r.Speedup), fmt.Sprintf("%.2f", r.NormEnergy)})
	}
	table("Fig 13: vs Eyeriss (paper: ASV 8.2x, 0.16 energy)",
		[]string{"system", "speedup-x", "norm-energy"}, rows)
}

func fig14() {
	var rows [][]string
	for _, r := range asv.ExperimentFig14() {
		rows = append(rows, []string{r.GAN,
			fmt.Sprintf("%.2f", r.ASVSpeedup), fmt.Sprintf("%.2f", r.ASVEnergyRed),
			fmt.Sprintf("%.2f", r.GANNXSpeedup), fmt.Sprintf("%.2f", r.GANNXEnergyRed)})
	}
	table("Fig 14: GANs vs Eyeriss (paper: ASV 5.0/4.2, GANNX 3.6/3.2)",
		[]string{"GAN", "ASV-x", "ASV-en-x", "GANNX-x", "GANNX-en-x"}, rows)
}

// backendsTable renders a registry-sweep row set.
func backendsTable(title string, rows []asv.BackendRow) {
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{r.Backend, r.Net, r.Policy,
			fmt.Sprintf("%.2f", r.FPS), fmt.Sprintf("%.2f", r.EnergyMJ),
			fmt.Sprintf("%.2f", r.GMACs), fmt.Sprintf("%.1f", r.DRAMMB)})
	}
	table(title,
		[]string{"backend", "network", "policy", "FPS", "energy-mJ", "GMACs", "DRAM-MiB"}, tr)
}

// backendsDoc is the top-level record of BENCH_backends.json.
type backendsDoc struct {
	Backends []backendDesc    `json:"backends"`
	Rows     []asv.BackendRow `json:"rows"`
}

type backendDesc struct {
	Name     string   `json:"name"`
	Summary  string   `json:"summary"`
	Policies []string `json:"policies"`
	ISM      bool     `json:"ism"`
}

func backendsExp() {
	rows := asv.ExperimentBackends()
	backendsTable("Backend registry sweep: every model x network x supported policy", rows)

	if jsonPath == "" {
		return
	}
	var doc backendsDoc
	for _, b := range asv.Backends() {
		d := b.Describe()
		bd := backendDesc{Name: d.Name, Summary: d.Summary, ISM: d.Caps.ISM}
		for _, p := range d.Caps.Policies {
			bd.Policies = append(bd.Policies, p.String())
		}
		doc.Backends = append(doc.Backends, bd)
	}
	doc.Rows = rows
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
}

func sec71() {
	o := asv.ExperimentSec71()
	table("Sec 7.1: hardware overhead of the ISM extensions",
		[]string{"metric", "value"},
		[][]string{
			{"per-PE area", fmt.Sprintf("+%.1f%%", o.PEAreaPct)},
			{"per-PE power", fmt.Sprintf("+%.1f%%", o.PEPowerPct)},
			{"total area", fmt.Sprintf("+%.2f%%", o.TotalAreaPct)},
			{"total power", fmt.Sprintf("+%.2f%%", o.TotalPowerPct)},
		})
}

func sec33() {
	row := asv.ExperimentSec33()
	rows := [][]string{
		{"non-key frame (qHD)", fmt.Sprintf("%.0f MOps", float64(row.NonKeyMACs)/1e6)},
	}
	for _, net := range []string{"FlowNetC", "DispNet", "GC-Net", "PSMNet"} {
		rows = append(rows, []string{net + " / non-key",
			fmt.Sprintf("%.0fx", row.DNNRatio[net])})
	}
	table("Sec 3.3: non-key cost (paper: ~87 MOps; DNN ratio 10^2-10^4)",
		[]string{"quantity", "value"}, rows)
}

func ablationME(sc asv.ExpScale) {
	var rows [][]string
	for _, r := range asv.ExperimentMEAblation(sc) {
		rows = append(rows, []string{r.ME,
			fmt.Sprintf("%.2f", r.ErrorPct), fmt.Sprintf("%.1f", r.MEMops)})
	}
	table("Ablation: motion-estimation choice (Sec 3.3; fast-motion scenes)",
		[]string{"estimator", "ISM-error-%", "ME-MOps/frame"}, rows)
}

func ablationParam(sc asv.ExpScale) {
	var rows [][]string
	for _, r := range asv.ExperimentISMParamAblation(sc) {
		rows = append(rows, []string{
			fmt.Sprintf("1/%d", r.FlowScale), fmt.Sprintf("±%d", r.RefineR),
			fmt.Sprintf("%.2f", r.ErrorPct), fmt.Sprintf("%.1f", r.NonKeyMops)})
	}
	table("Ablation: flow scale × guided-search radius",
		[]string{"flow-res", "search", "ISM-error-%", "nonkey-MOps"}, rows)
}

func ablationKey(sc asv.ExpScale) {
	var rows [][]string
	for _, r := range asv.ExperimentKeyPolicyAblation(sc) {
		rows = append(rows, []string{r.Policy,
			fmt.Sprintf("%.2f", r.ErrorPct), fmt.Sprintf("%.2f", r.KeyRate)})
	}
	table("Ablation: key-frame policy (static windows vs adaptive)",
		[]string{"policy", "ISM-error-%", "key-rate"}, rows)
}

func ablationOrder(asv.ExpScale) {
	var rows [][]string
	for _, r := range asv.ExperimentReuseOrderAblation() {
		rows = append(rows, []string{r.Net,
			fmt.Sprintf("%.2f", r.AutoMs), fmt.Sprintf("%.2f", r.IfmapMs),
			fmt.Sprintf("%.2f", r.WeightMs)})
	}
	table("Ablation: reuse order (Equ. 7 beta), transformed nets, ILAR",
		[]string{"network", "auto-ms", "ifmap-stationary-ms", "weight-stationary-ms"}, rows)
}

// pipelineBenchDoc is the top-level record of BENCH_pipeline.json. CPUs is
// the usable-CPU count at measurement time: wall-clock speedup is bounded by
// it, so a single-core container records ~1.0x even though the pipeline
// overlaps stages (see README "Streaming pipeline & metrics").
type pipelineBenchDoc struct {
	CPUsAvailable int                      `json:"cpus_available"`
	GoMaxProcs    int                      `json:"gomaxprocs_default"`
	Points        []asv.PipelineBenchPoint `json:"points"`
}

func pipelineBench() {
	maxCores := runtime.GOMAXPROCS(0)
	cores := []int{2, maxCores}
	if maxCores <= 2 {
		cores = []int{maxCores}
	}
	points := asv.MeasurePipelineThroughput(cores, 12, 160, 96)

	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{p.Mode, fmt.Sprintf("%d", p.Cores),
			fmt.Sprintf("%dx%d", p.W, p.H), fmt.Sprintf("%d", p.PW),
			fmt.Sprintf("%.2f", p.FPS), fmt.Sprintf("%.2f", p.SpeedupX)})
	}
	table(fmt.Sprintf("Streaming pipeline throughput (%d usable CPUs)", runtime.NumCPU()),
		[]string{"mode", "cores", "size", "PW", "fps", "speedup-x"}, rows)

	if jsonPath == "" {
		return
	}
	doc := pipelineBenchDoc{
		CPUsAvailable: runtime.NumCPU(),
		GoMaxProcs:    maxCores,
		Points:        points,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
}

// serveBench measures the depth-serving layer over real loopback HTTP: a
// paced normal phase for latency percentiles, then an overload phase
// against a deliberately tiny admission queue to observe backpressure.
// ASV_SMOKE=1 shrinks the run for CI.
func serveBench() {
	bc := asv.ServeBenchConfig{W: 128, H: 80, PW: 4, Sessions: 4, Frames: 16, QPS: 40,
		ShardFrameMs: 12, ShardSessions: 10, ShardFrames: 20}
	if os.Getenv("ASV_SMOKE") != "" {
		bc = asv.ServeBenchConfig{W: 64, H: 48, PW: 4, Sessions: 2, Frames: 6, QPS: 30,
			ShardFrameMs: 12, ShardSessions: 6, ShardFrames: 10}
	}
	doc, err := asv.MeasureServeLoad(bc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve bench:", err)
		os.Exit(1)
	}

	row := func(name string, r asv.ServeLoadReport) []string {
		return []string{name, fmt.Sprintf("%d", r.Requests), fmt.Sprintf("%d", r.OK),
			fmt.Sprintf("%d", r.Rejected), fmt.Sprintf("%d", r.Status5xx),
			fmt.Sprintf("%.1f", r.P50Ms), fmt.Sprintf("%.1f", r.P95Ms),
			fmt.Sprintf("%.1f", r.P99Ms), fmt.Sprintf("%.1f", r.AchievedTP)}
	}
	table(fmt.Sprintf("Depth serving: %d sessions, %dx%d, PW-%d", doc.Sessions, doc.W, doc.H, doc.PW),
		[]string{"phase", "req", "ok", "429", "5xx", "p50-ms", "p95-ms", "p99-ms", "req/s"},
		[][]string{row("normal", doc.Normal), row("overload", doc.Overload)})

	ms := doc.MultiShard
	shardRow := func(name string, r asv.ServeLoadReport) []string {
		return []string{name, fmt.Sprintf("%d", r.Requests), fmt.Sprintf("%d", r.OK),
			fmt.Sprintf("%d", r.Rejected), fmt.Sprintf("%d", r.Status5xx),
			fmt.Sprintf("%.1f", r.P50Ms), fmt.Sprintf("%.1f", r.P99Ms),
			fmt.Sprintf("%.1f", r.OKRps)}
	}
	table(fmt.Sprintf("Gateway scaling: %d sessions x %d frames, %d ms/frame shards",
		ms.Sessions, ms.Frames, ms.FrameMs),
		[]string{"shards", "req", "ok", "429", "5xx", "p50-ms", "p99-ms", "ok/s"},
		[][]string{shardRow("1", ms.OneShard), shardRow("2", ms.TwoShard)})
	fmt.Printf("  2-shard scaling: %.2fx\n", ms.ScaleX)

	dg := doc.Degrade
	table(fmt.Sprintf("Degrade ladder: %d best-effort sessions, %d ms frames, %.0f ms deadline",
		dg.Sessions, dg.FrameMs, dg.DeadlineMs),
		[]string{"phase", "req", "ok", "429", "5xx", "degraded", "p50-ms", "p99-ms", "ok-frac"},
		[][]string{
			{"overload (gold)", fmt.Sprintf("%d", doc.Overload.Requests), fmt.Sprintf("%d", doc.Overload.OK),
				fmt.Sprintf("%d", doc.Overload.Rejected), fmt.Sprintf("%d", doc.Overload.Status5xx), "0",
				fmt.Sprintf("%.1f", doc.Overload.P50Ms), fmt.Sprintf("%.1f", doc.Overload.P99Ms),
				fmt.Sprintf("%.2f", dg.BaselineOKFrac)},
			{"degrade (b-e)", fmt.Sprintf("%d", dg.BestEffort.Requests), fmt.Sprintf("%d", dg.BestEffort.OK),
				fmt.Sprintf("%d", dg.BestEffort.Rejected), fmt.Sprintf("%d", dg.BestEffort.Status5xx),
				fmt.Sprintf("%d", dg.BestEffort.Degraded),
				fmt.Sprintf("%.1f", dg.BestEffort.P50Ms), fmt.Sprintf("%.1f", dg.BestEffort.P99Ms),
				fmt.Sprintf("%.2f", dg.OKFrac)},
		})
	if len(dg.BestEffort.Rungs) > 0 {
		names := make([]string, 0, len(dg.BestEffort.Rungs))
		for name := range dg.BestEffort.Rungs {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s %d", name, dg.BestEffort.Rungs[name]))
		}
		fmt.Printf("  rungs served: %s\n", strings.Join(parts, "  "))
	}

	if doc.Normal.Status5xx > 0 || doc.Overload.Status5xx > 0 || dg.BestEffort.Status5xx > 0 ||
		ms.OneShard.Status5xx > 0 || ms.TwoShard.Status5xx > 0 {
		fmt.Fprintln(os.Stderr, "serve bench: observed 5xx responses")
		os.Exit(1)
	}
	if doc.Overload.Rejected == 0 {
		fmt.Fprintln(os.Stderr, "serve bench: overload phase saw no 429 backpressure")
		os.Exit(1)
	}
	if ms.ScaleX < 1.6 {
		fmt.Fprintf(os.Stderr, "serve bench: 2-shard scaling %.2fx below the 1.6x floor\n", ms.ScaleX)
		os.Exit(1)
	}
	if dg.BestEffort.Rejected > 0 || dg.BestEffort.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "serve bench: degrade phase rejected %d / dropped %d best-effort frames (want 0 — degrade, don't refuse)\n",
			dg.BestEffort.Rejected, dg.BestEffort.Dropped)
		os.Exit(1)
	}
	if dg.BestEffort.Degraded == 0 {
		fmt.Fprintln(os.Stderr, "serve bench: degrade phase never stepped below the top rung")
		os.Exit(1)
	}
	if dg.OKFrac < 0.8 {
		fmt.Fprintf(os.Stderr, "serve bench: degrade phase served-ok fraction %.2f below the 0.80 floor\n", dg.OKFrac)
		os.Exit(1)
	}
	if dg.OKFrac <= dg.BaselineOKFrac {
		fmt.Fprintf(os.Stderr, "serve bench: degrading (%.2f ok) did not beat rejecting (%.2f ok)\n",
			dg.OKFrac, dg.BaselineOKFrac)
		os.Exit(1)
	}

	if jsonPath == "" {
		return
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
}
