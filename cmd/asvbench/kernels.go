package main

import (
	"encoding/json"
	"fmt"
	"os"

	"asv"
)

// Kernel ns/pixel benchmarks (`asvbench -exp kernels`): float vs fixed-point
// variants of the matching kernels, written to -json and optionally gated
// against a committed baseline with -gate. CI runs
//
//	asvbench -exp kernels -json BENCH_kernels.fresh.json -gate BENCH_kernels.json
//
// and fails only on a >2.5x ns/pixel regression, a bound loose enough for
// shared-runner noise but tight enough to catch a kernel losing its
// sliding-window or cache-blocking structure.

// gateFactor is the allowed fresh/committed ns-per-pixel ratio.
const gateFactor = 2.5

func kernelsExp() {
	sizes := [][2]int{{128, 80}, {256, 160}}
	maxDisp, rounds := 48, 3
	if os.Getenv("ASV_SMOKE") != "" {
		sizes, maxDisp, rounds = [][2]int{{64, 48}}, 16, 1
	}
	doc := asv.MeasureKernelBench(sizes, maxDisp, rounds)

	var rows [][]string
	for _, p := range doc.Points {
		speedup := ""
		if p.SpeedupX > 0 {
			speedup = fmt.Sprintf("%.2f", p.SpeedupX)
		}
		rows = append(rows, []string{p.Kernel, p.Variant,
			fmt.Sprintf("%dx%d", p.W, p.H), fmt.Sprintf("%d", p.MaxDisp),
			fmt.Sprintf("%.1f", p.NsPerPixel), speedup})
	}
	table(fmt.Sprintf("Matching-kernel ns/pixel, float vs fixed (maxdisp %d, min of %d)", maxDisp, rounds),
		[]string{"kernel", "variant", "size", "maxdisp", "ns/px", "speedup-x"}, rows)

	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		dieIf(err)
		dieIf(os.WriteFile(jsonPath, append(buf, '\n'), 0o644))
		fmt.Printf("\nwrote %s\n", jsonPath)
	}

	if gatePath != "" {
		if err := runKernelsGate(doc, gatePath); err != nil {
			fmt.Fprintln(os.Stderr, "asvbench:", err)
			os.Exit(1)
		}
		fmt.Printf("gate ok: no kernel regressed past %.1fx of %s\n", gateFactor, gatePath)
	}
}

// runKernelsGate compares fresh measurements against the committed baseline
// at path.
func runKernelsGate(fresh asv.KernelsBenchDoc, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("gate baseline: %w", err)
	}
	var committed asv.KernelsBenchDoc
	if err := json.Unmarshal(buf, &committed); err != nil {
		return fmt.Errorf("gate baseline %s: %w", path, err)
	}
	return gateKernels(fresh.Points, committed.Points)
}

// gateKernels fails when a committed (kernel, variant, size) row is missing
// from the fresh run or its fresh ns/pixel exceeds gateFactor times the
// committed value. Fresh-only rows pass: growing the suite must not require
// regenerating the baseline on the machine that grew it.
func gateKernels(fresh, committed []asv.KernelPoint) error {
	key := func(p asv.KernelPoint) string {
		return fmt.Sprintf("%s|%s|%dx%d", p.Kernel, p.Variant, p.W, p.H)
	}
	freshBy := make(map[string]asv.KernelPoint, len(fresh))
	for _, p := range fresh {
		freshBy[key(p)] = p
	}
	var failures []string
	for _, c := range committed {
		f, ok := freshBy[key(c)]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from fresh run", key(c)))
			continue
		}
		if c.NsPerPixel > 0 && f.NsPerPixel > gateFactor*c.NsPerPixel {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/px vs committed %.1f (>%.1fx)",
				key(c), f.NsPerPixel, c.NsPerPixel, gateFactor))
		}
	}
	if len(failures) > 0 {
		msg := "kernel benchmark gate failed:"
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
