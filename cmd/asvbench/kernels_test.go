package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asv"
)

func point(kernel, variant string, w, h int, ns float64) asv.KernelPoint {
	return asv.KernelPoint{Kernel: kernel, Variant: variant, W: w, H: h, MaxDisp: 48, NsPerPixel: ns}
}

func TestGateKernels(t *testing.T) {
	committed := []asv.KernelPoint{
		point("sad", "float", 128, 80, 100),
		point("sad", "fixed", 128, 80, 40),
	}

	t.Run("pass within factor", func(t *testing.T) {
		fresh := []asv.KernelPoint{
			point("sad", "float", 128, 80, 240), // 2.4x, inside the 2.5x bound
			point("sad", "fixed", 128, 80, 40),
			point("wta", "fixed", 128, 80, 5), // fresh-only rows are allowed
		}
		if err := gateKernels(fresh, committed); err != nil {
			t.Fatalf("unexpected gate failure: %v", err)
		}
	})

	t.Run("fail on regression", func(t *testing.T) {
		fresh := []asv.KernelPoint{
			point("sad", "float", 128, 80, 100),
			point("sad", "fixed", 128, 80, 101), // >2.5x the committed 40
		}
		err := gateKernels(fresh, committed)
		if err == nil || !strings.Contains(err.Error(), "sad|fixed|128x80") {
			t.Fatalf("want sad|fixed regression failure, got %v", err)
		}
	})

	t.Run("fail on missing row", func(t *testing.T) {
		fresh := []asv.KernelPoint{point("sad", "float", 128, 80, 100)}
		err := gateKernels(fresh, committed)
		if err == nil || !strings.Contains(err.Error(), "missing from fresh run") {
			t.Fatalf("want missing-row failure, got %v", err)
		}
	})
}

func TestRunKernelsGateReadsBaseline(t *testing.T) {
	doc := asv.KernelsBenchDoc{Points: []asv.KernelPoint{point("sad", "fixed", 64, 48, 50)}}
	path := filepath.Join(t.TempDir(), "baseline.json")
	buf, err := json.Marshal(asv.KernelsBenchDoc{Points: []asv.KernelPoint{point("sad", "fixed", 64, 48, 60)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runKernelsGate(doc, path); err != nil {
		t.Fatalf("gate against readable baseline: %v", err)
	}
	if err := runKernelsGate(doc, filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("want error for missing baseline file")
	}
}
