package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// The table dump must contain the header, one row per layer and the totals
// line the paper-reproduction scripts grep for.
func TestRunTableOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-net", "DCGAN", "-policy", "ilar"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"DCGAN under policy", "layer", "rounds", "total:", "FPS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 6 {
		t.Fatalf("table suspiciously short (%d lines):\n%s", lines, out)
	}
}

// -json must emit a machine-readable report with per-layer results.
func TestRunJSONOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-net", "FlowNetC", "-policy", "dct", "-h", "128", "-w", "256", "-json"}, &b); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Cycles   int64
		MACs     int64
		PerLayer []struct {
			Name   string
			Cycles int64
		}
	}
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, b.String())
	}
	if rep.Cycles <= 0 || rep.MACs <= 0 || len(rep.PerLayer) == 0 {
		t.Fatalf("degenerate JSON report: %+v", rep)
	}
	for _, l := range rep.PerLayer {
		if l.Cycles <= 0 {
			t.Fatalf("layer %q has no cycles in JSON report", l.Name)
		}
	}
}

func TestRunSummaryOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-net", "DCGAN", "-summary"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "DCGAN") {
		t.Fatalf("summary missing network name:\n%s", b.String())
	}
}

func TestRunRejectsUnknownNetAndPolicy(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-net", "NoSuchNet"}, &b); err == nil {
		t.Fatal("unknown network accepted")
	}
	if err := run([]string{"-net", "DCGAN", "-policy", "greedy"}, &b); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-h", "notanumber"}, &b); err == nil {
		t.Fatal("bad -h value accepted")
	}
	if err := run([]string{"-nonsense"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
