// Command asvsched compiles one network onto an accelerator backend under a
// chosen scheduling policy and dumps the resulting cost report — including
// the per-layer schedule (cycles, MACs, DRAM traffic, rounds) on backends
// that expose one. It is the inspection tool for the dataflow optimizer of
// paper Sec. 4.2.
//
// Usage:
//
//	asvsched -net FlowNetC -policy ilar
//	asvsched -net DCGAN -policy baseline -h 540 -w 960
//	asvsched -net DispNet -backend eyeriss -policy dct
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"asv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asvsched:", err)
		os.Exit(2)
	}
}

// run executes the command with the given arguments, writing the report to
// out. Split from main so the cmd is testable end to end.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asvsched", flag.ContinueOnError)
	fs.SetOutput(out)
	netName := fs.String("net", "FlowNetC", "network (FlowNetC, DispNet, GC-Net, PSMNet, DCGAN, GP-GAN, ArtGAN, MAGAN, 3D-GAN, DiscoGAN)")
	backendName := fs.String("backend", "systolic", "accelerator backend ("+strings.Join(asv.BackendNames(), "|")+")")
	policy := fs.String("policy", "ilar", "scheduling policy (baseline|dct|convr|ilar)")
	height := fs.Int("h", asv.QHDH, "input height (stereo networks)")
	width := fs.Int("w", asv.QHDW, "input width (stereo networks)")
	asJSON := fs.Bool("json", false, "emit the full report as JSON instead of a table")
	summary := fs.Bool("summary", false, "print the network architecture and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var net *asv.Network
	for _, n := range asv.StereoDNNs(*height, *width) {
		if strings.EqualFold(n.Name, *netName) {
			net = n
		}
	}
	for _, n := range asv.GANs() {
		if strings.EqualFold(n.Name, *netName) {
			net = n
		}
	}
	if net == nil {
		return fmt.Errorf("unknown network %q", *netName)
	}

	pol, err := asv.ParsePolicy(strings.ToLower(*policy))
	if err != nil {
		return err
	}

	if *summary {
		fmt.Fprint(out, net.Summary())
		return nil
	}

	be, err := asv.BackendByName(*backendName)
	if err != nil {
		return err
	}
	// The validating entry point: asking e.g. eyeriss for ILAR returns a
	// typed capability error instead of a silently wrong report.
	rep, err := asv.RunOnBackend(be, net, asv.RunOptions{Policy: pol})
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	fmt.Fprintf(out, "%s under policy %v on %s\n\n", net.Name, pol, be.Describe().Summary)
	if len(rep.PerLayer) > 0 {
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "layer\tkind\tcycles\tMACs\tDRAM-MB\trounds")
		for i, r := range rep.PerLayer {
			l := net.Layers[i]
			fmt.Fprintf(w, "%s\t%v\t%d\t%d\t%.2f\t%d\n",
				r.Name, l.Kind, r.Cycles, r.MACs, float64(r.DRAMBytes)/1e6, r.Rounds)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "(backend %q reports aggregate costs only — no per-layer schedule)\n", be.Name())
	}

	fmt.Fprintf(out, "\ntotal: %.3f ms, %.2f GMACs, %.1f MB DRAM, %.3f J (%.1f FPS)\n",
		rep.Seconds*1e3, float64(rep.MACs)/1e9, float64(rep.DRAMBytes)/1e6,
		rep.EnergyJ, rep.FPS())
	return nil
}
