package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"asv"
)

func startShard(t *testing.T) string {
	t.Helper()
	opt := asv.DefaultBMOptions()
	opt.MaxDisp = 12
	srv := asv.NewServeServer(asv.BMKeyMatcher{Opt: opt}, asv.DefaultServeConfig())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		//asvlint:ignore droppederr test shard close is best-effort cleanup
		srv.Close(ctx)
	})
	return "http://" + addr.String()
}

// TestRunGatewayEndToEnd boots two real shards and the gateway CLI on an
// ephemeral port, creates a session and submits a frame through the
// gateway, checks /v1/cluster reports both shards up, then cancels the
// context (standing in for SIGTERM) and expects a clean shutdown.
func TestRunGatewayEndToEnd(t *testing.T) {
	shardA, shardB := startShard(t), startShard(t)
	portfile := filepath.Join(t.TempDir(), "port")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-portfile", portfile,
			"-shards", "a=" + shardA + ",b=" + shardB,
			"-health-interval", "100ms",
		}, &out)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(portfile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("portfile never appeared; output so far: %s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr

	body := `{"pw":2,"preset":"sceneflow","w":48,"h":32,"frames":4,"seed":11}`
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info asv.ServeSessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || info.ID == "" {
		t.Fatalf("create through gateway: %d %+v", resp.StatusCode, info)
	}

	resp, err = http.Post(base+"/v1/sessions/"+info.ID+"/frames", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frame through gateway: %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cluster struct {
		Shards []struct {
			Name string `json:"name"`
			Up   bool   `json:"up"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cluster); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cluster.Shards) != 2 {
		t.Fatalf("cluster info: %+v", cluster)
	}
	for _, s := range cluster.Shards {
		if !s.Up {
			t.Fatalf("shard %s reported down: %+v", s.Name, cluster)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output: %s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("gateway did not shut down after cancel")
	}
	if !strings.Contains(out.String(), "bye") {
		t.Fatalf("missing shutdown confirmation in output: %s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{},                                       // no shards
		{"-shards", "a=ftp://wrong"},             // bad scheme
		{"-shards", "=http://127.0.0.1:1"},       // empty name
		{"-shards", "a=http://h:1,a=http://h:2"}, // duplicate name
	} {
		var out bytes.Buffer
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := run(ctx, args, &out)
		cancel()
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestParseShards(t *testing.T) {
	shards, err := parseShards("a=http://h:1, http://h:2 ,c=https://h:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []asv.ClusterShard{
		{Name: "a", URL: "http://h:1"},
		{Name: "shard1", URL: "http://h:2"},
		{Name: "c", URL: "https://h:3"},
	}
	if fmt.Sprint(shards) != fmt.Sprint(want) {
		t.Fatalf("parseShards = %+v, want %+v", shards, want)
	}
}
