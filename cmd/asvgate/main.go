// Command asvgate runs the stateless gateway of a sharded asvserve cluster.
// Session ids are consistent-hashed onto the configured shards (sessions are
// sticky: the ISM state machine for a stream lives on exactly one shard);
// the gateway health-checks the shards, fails requests over to the ring's
// next owner when a shard dies, and migrates sessions off a shard via the
// snapshot/restore API when asked to drain it.
//
// Usage:
//
//	asvgate -addr :9100 -shards a=http://127.0.0.1:9101,b=http://127.0.0.1:9102
//	asvgate -addr 127.0.0.1:0 -portfile /tmp/port -shards http://127.0.0.1:9101
//
// Shards are "name=url" pairs; a bare url gets the name "shardN" by
// position. Names are ring identities — keep them stable across restarts
// and address changes, or every session moves.
//
// Ungraceful shard failure needs no operator action when the shards share a
// spill directory with per-frame checkpoints (asvserve -spill-dir ...
// -checkpoint-every 1): the failover owner restores the dead shard's
// sessions from their last checkpoints on first touch. Graceful removal is
// POST /v1/cluster/drain/{shard}.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"asv"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asvgate:", err)
		os.Exit(1)
	}
}

// run starts the gateway and blocks until ctx is cancelled (signal). Split
// from main so the cmd is testable end to end.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asvgate", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":9100", "listen address (port 0 for ephemeral)")
	portfile := fs.String("portfile", "", "write the bound host:port to this file once listening (for CI)")
	shardsFlag := fs.String("shards", "", "comma-separated shard list, each name=url or a bare url (required)")
	replicas := fs.Int("replicas", 0, "consistent-hash vnodes per shard (0 = default)")
	healthInterval := fs.Duration("health-interval", 2*time.Second, "shard health probe period (0 disables probing)")
	healthTimeout := fs.Duration("health-timeout", 0, "per-probe timeout (0 = default)")
	closeTimeout := fs.Duration("close-timeout", 10*time.Second, "max time to wait for in-flight proxies at shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	shards, err := parseShards(*shardsFlag)
	if err != nil {
		return err
	}

	g, err := asv.NewClusterGateway(asv.ClusterConfig{
		Shards:         shards,
		Replicas:       *replicas,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
	})
	if err != nil {
		return err
	}
	bound, err := g.Start(*addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(bound.String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing portfile: %w", err)
		}
	}
	names := make([]string, len(shards))
	for i, s := range shards {
		names[i] = s.Name
	}
	fmt.Fprintf(out, "asvgate: listening on %s, routing to %d shards (%s)\n",
		bound, len(shards), strings.Join(names, ", "))

	<-ctx.Done()
	fmt.Fprintln(out, "asvgate: shutting down...")
	cctx, cancel := context.WithTimeout(context.Background(), *closeTimeout)
	defer cancel()
	if err := g.Close(cctx); err != nil {
		return fmt.Errorf("shutting down: %w", err)
	}
	fmt.Fprintln(out, "asvgate: bye")
	return nil
}

// parseShards turns "a=http://h:1,b=http://h:2" (or bare urls) into the
// shard set. Bare urls are named by position, which is fine for throwaway
// clusters but unstable if the list is ever reordered — named shards are
// the production spelling.
func parseShards(s string) ([]asv.ClusterShard, error) {
	var shards []asv.ClusterShard
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, found := strings.Cut(part, "=")
		if !found {
			name, url = fmt.Sprintf("shard%d", i), part
		}
		if name == "" || url == "" {
			return nil, fmt.Errorf("bad shard %q (want name=url)", part)
		}
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			return nil, fmt.Errorf("shard %q: url must start with http:// or https://", part)
		}
		shards = append(shards, asv.ClusterShard{Name: name, URL: url})
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("-shards is required (comma-separated name=url list)")
	}
	return shards, nil
}
