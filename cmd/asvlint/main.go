// Command asvlint runs the project's static analyzers (internal/analysis)
// over every package in the module and exits nonzero on any finding. It is
// stdlib-only by design: go/parser + go/types with the source importer, no
// x/tools.
//
// Usage:
//
//	asvlint [-rules poolpair,droppederr] [-group] [-json] [./...]
//	asvlint -perf [-perf-contract file] [-perf-json file] [-perf-update]
//
// Findings print as "file:line:col: [rule] message", relative to the module
// root. -group instead prints findings grouped per rule with the rule's doc
// line, the format `make lint-fix` uses; -json prints them as a JSON array
// of {file,line,col,rule,msg} objects for tooling.
//
// -perf runs the compiler-diagnostics perf gate instead of the analyzers:
// it rebuilds the fixed-point kernel package with escape/inline/bounds-check
// diagnostics and compares per-function counts against the committed
// perf_contract.json (see internal/analysis/perfgate.go). -perf-json writes
// the full parsed report for CI artifacts; -perf-update rewrites the
// contract from the measured counts after an intentional kernel change.
//
// Exit status: 0 clean, 1 findings or contract violations, 2 usage or load
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"asv/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("asvlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule subset (default: all)")
	group := fs.Bool("group", false, "group findings by rule")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array")
	perf := fs.Bool("perf", false, "run the compiler-diagnostics perf gate instead of the analyzers")
	perfContract := fs.String("perf-contract", "internal/stereo/perf_contract.json",
		"perf contract path, relative to the module root")
	perfJSON := fs.String("perf-json", "", "write the parsed perf report to this file")
	perfUpdate := fs.Bool("perf-update", false, "rewrite the perf contract from the measured counts")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for _, pat := range fs.Args() {
		if pat != "./..." {
			fmt.Fprintf(stderr, "asvlint: only the ./... pattern is supported, got %q\n", pat)
			return 2
		}
	}

	analyzers := analysis.All()
	if *rules != "" {
		var err error
		if analyzers, err = analysis.ByName(*rules); err != nil {
			fmt.Fprintf(stderr, "asvlint: %v\n", err)
			return 2
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "asvlint: %v\n", err)
		return 2
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(stderr, "asvlint: %v\n", err)
		return 2
	}
	if *perf {
		return runPerfGate(root, *perfContract, *perfJSON, *perfUpdate, stdout, stderr)
	}
	// The source importer resolves module-local import paths through the go
	// command, which needs to run inside the module.
	if err := os.Chdir(root); err != nil {
		fmt.Fprintf(stderr, "asvlint: %v\n", err)
		return 2
	}

	loader := analysis.NewLoader()
	passes, err := loader.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "asvlint: %v\n", err)
		return 2
	}

	var all []analysis.Diagnostic
	for _, p := range passes {
		all = append(all, analysis.Run(p, analyzers)...)
	}
	for i := range all {
		if rel, err := filepath.Rel(root, all[i].Pos.Filename); err == nil {
			all[i].Pos.Filename = rel
		}
	}
	if *jsonOut {
		if err := analysis.WriteJSON(stdout, all); err != nil {
			fmt.Fprintf(stderr, "asvlint: %v\n", err)
			return 2
		}
		if len(all) == 0 {
			return 0
		}
		fmt.Fprintf(stderr, "asvlint: %d finding(s)\n", len(all))
		return 1
	}
	if len(all) == 0 {
		fmt.Fprintf(stdout, "asvlint: %d packages clean\n", len(passes))
		return 0
	}
	if *group {
		printGrouped(stdout, analyzers, all)
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d)
		}
	}
	fmt.Fprintf(stderr, "asvlint: %d finding(s)\n", len(all))
	return 1
}

// runPerfGate drives the compiler-diagnostics gate: load the contract,
// measure, optionally persist the report and/or rewrite the contract, and
// report violations like lint findings.
func runPerfGate(root, contractPath, reportPath string, update bool, stdout, stderr io.Writer) int {
	contract, err := analysis.LoadPerfContract(filepath.Join(root, contractPath))
	if err != nil {
		fmt.Fprintf(stderr, "asvlint: perf contract: %v\n", err)
		return 2
	}
	rep, err := analysis.RunPerfGate(root, contract)
	if err != nil {
		fmt.Fprintf(stderr, "asvlint: perf gate: %v\n", err)
		return 2
	}
	if reportPath != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(reportPath, append(raw, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "asvlint: perf report: %v\n", err)
			return 2
		}
	}
	if update {
		fresh, err := analysis.ContractFromReport(contract, rep, root)
		if err == nil {
			err = analysis.WritePerfContract(filepath.Join(root, contractPath), fresh)
		}
		if err != nil {
			fmt.Fprintf(stderr, "asvlint: perf contract update: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "asvlint: perf contract rewritten from measured counts (%s)\n", contractPath)
		return 0
	}
	if len(rep.Violations) == 0 {
		fmt.Fprintf(stdout, "asvlint: perf gate clean (%s: %d gated files, %d diagnostics within budget)\n",
			rep.Package, len(contract.Files), len(rep.Diags))
		return 0
	}
	for _, v := range rep.Violations {
		fmt.Fprintln(stdout, v)
	}
	fmt.Fprintf(stderr, "asvlint: %d perf contract violation(s)\n", len(rep.Violations))
	return 1
}

func printGrouped(stdout io.Writer, analyzers []*analysis.Analyzer, all []analysis.Diagnostic) {
	byRule := map[string][]analysis.Diagnostic{}
	for _, d := range all {
		byRule[d.Rule] = append(byRule[d.Rule], d)
	}
	doc := map[string]string{}
	for _, a := range analyzers {
		doc[a.Name] = a.Doc
	}
	rules := make([]string, 0, len(byRule))
	for r := range byRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		fmt.Fprintf(stdout, "%s — %s (%d)\n", r, doc[r], len(byRule[r]))
		for _, d := range byRule[r] {
			fmt.Fprintf(stdout, "  %s:%d:%d: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Msg)
		}
	}
}
