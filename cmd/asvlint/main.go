// Command asvlint runs the project's static analyzers (internal/analysis)
// over every package in the module and exits nonzero on any finding. It is
// stdlib-only by design: go/parser + go/types with the source importer, no
// x/tools.
//
// Usage:
//
//	asvlint [-rules poolpair,droppederr] [-group] [./...]
//
// Findings print as "file:line:col: [rule] message", relative to the module
// root. -group instead prints findings grouped per rule with the rule's doc
// line, the format `make lint-fix` uses. Exit status: 0 clean, 1 findings,
// 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"asv/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("asvlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule subset (default: all)")
	group := fs.Bool("group", false, "group findings by rule")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for _, pat := range fs.Args() {
		if pat != "./..." {
			fmt.Fprintf(stderr, "asvlint: only the ./... pattern is supported, got %q\n", pat)
			return 2
		}
	}

	analyzers := analysis.All()
	if *rules != "" {
		var err error
		if analyzers, err = analysis.ByName(*rules); err != nil {
			fmt.Fprintf(stderr, "asvlint: %v\n", err)
			return 2
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "asvlint: %v\n", err)
		return 2
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(stderr, "asvlint: %v\n", err)
		return 2
	}
	// The source importer resolves module-local import paths through the go
	// command, which needs to run inside the module.
	if err := os.Chdir(root); err != nil {
		fmt.Fprintf(stderr, "asvlint: %v\n", err)
		return 2
	}

	loader := analysis.NewLoader()
	passes, err := loader.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "asvlint: %v\n", err)
		return 2
	}

	var all []analysis.Diagnostic
	for _, p := range passes {
		all = append(all, analysis.Run(p, analyzers)...)
	}
	for i := range all {
		if rel, err := filepath.Rel(root, all[i].Pos.Filename); err == nil {
			all[i].Pos.Filename = rel
		}
	}
	if len(all) == 0 {
		fmt.Fprintf(stdout, "asvlint: %d packages clean\n", len(passes))
		return 0
	}
	if *group {
		printGrouped(stdout, analyzers, all)
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d)
		}
	}
	fmt.Fprintf(stderr, "asvlint: %d finding(s)\n", len(all))
	return 1
}

func printGrouped(stdout io.Writer, analyzers []*analysis.Analyzer, all []analysis.Diagnostic) {
	byRule := map[string][]analysis.Diagnostic{}
	for _, d := range all {
		byRule[d.Rule] = append(byRule[d.Rule], d)
	}
	doc := map[string]string{}
	for _, a := range analyzers {
		doc[a.Name] = a.Doc
	}
	rules := make([]string, 0, len(byRule))
	for r := range byRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		fmt.Fprintf(stdout, "%s — %s (%d)\n", r, doc[r], len(byRule[r]))
		for _, d := range byRule[r] {
			fmt.Fprintf(stdout, "  %s:%d:%d: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Msg)
		}
	}
}
