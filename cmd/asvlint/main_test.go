package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestRunRejectsUnknownRule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unknown rule") {
		t.Fatalf("stderr = %q, want unknown-rule error", errb.String())
	}
}

func TestRunRejectsUnsupportedPattern(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./cmd/..."}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// A clean module under -json must print exactly the empty JSON array — the
// machine-readable contract consumers rely on.
func TestRunJSONModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide lint run skipped in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.String() != "[]\n" {
		t.Fatalf("stdout = %q, want empty JSON array", out.String())
	}
}

// TestRunModuleClean is the end-to-end path `make lint` exercises: load the
// whole module and require zero findings. Module-wide type-checking through
// the source importer takes a few seconds, so -short skips it.
func TestRunModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide lint run skipped in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "packages clean") {
		t.Fatalf("stdout = %q, want clean summary", out.String())
	}
}
