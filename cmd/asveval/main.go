// Command asveval is the repository's MiddEval3-style batch evaluator: it
// sweeps the synthetic dataset presets through the full deployment path —
// misalign the rendered pair through a known calibration, rectify it back,
// run ISM matching, reproject to metric depth and a point cloud — and
// scores each configuration against the dense ground truth the generator
// carries. Scores are the MiddEval3-style bad-pixel rates (bad-1, bad-3)
// on ground-truth-valid pixels plus metric depth RMSE, per
// preset × key matcher × propagation window.
//
// The committed BENCH_eval.json is regenerated with `make eval-json`; CI
// regenerates a fresh copy to make sure the harness keeps running.
//
// Usage:
//
//	asveval                              # text table
//	asveval -json BENCH_eval.json        # machine output
//	asveval -presets kitti -matchers sgm -pw 1,4
//	asveval -ladder quality_ladder.json  # price the operating-point ladder
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"asv"
)

// EvalRow is one configuration's scores, averaged over the sequence.
type EvalRow struct {
	Preset   string  `json:"preset"`
	Matcher  string  `json:"matcher"`
	PW       int     `json:"pw"`
	Frames   int     `json:"frames"`
	KeyRate  float64 `json:"key_rate"`      // key frames / frames
	Bad1     float64 `json:"bad1"`          // % of GT-valid pixels with err > 1 px
	Bad3     float64 `json:"bad3"`          // % of GT-valid pixels with err > 3 px
	DepthRMS float64 `json:"depth_rmse_m"`  // metric RMSE where both depths valid
	CloudPts float64 `json:"cloud_points"`  // mean reprojected points per frame
	MMACs    float64 `json:"mmacs_per_frm"` // mean arithmetic cost, 1e6 MACs
}

// EvalReport is the asveval JSON document.
type EvalReport struct {
	W      int       `json:"w"`
	H      int       `json:"h"`
	Frames int       `json:"frames"`
	Seed   int64     `json:"seed"`
	Rows   []EvalRow `json:"rows"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asveval:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asveval", flag.ContinueOnError)
	fs.SetOutput(out)
	width := fs.Int("w", 96, "frame width")
	height := fs.Int("h", 64, "frame height")
	frames := fs.Int("frames", 10, "frames per sequence")
	seed := fs.Int64("seed", 9, "scene seed")
	presets := fs.String("presets", "sceneflow,kitti", "comma-separated scene presets (sceneflow|kitti)")
	matchers := fs.String("matchers", "bm,sgm", "comma-separated key matchers (bm|sgm)")
	pws := fs.String("pw", "1,2,4", "comma-separated propagation windows")
	jsonPath := fs.String("json", "", "also write the report to this JSON file")
	ladderPath := fs.String("ladder", "", "price the default operating-point ladder and write it to this JSON file (skips the eval sweep)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pwList []int
	for _, s := range splitList(*pws) {
		pw, err := strconv.Atoi(s)
		if err != nil || pw < 1 {
			return fmt.Errorf("bad propagation window %q", s)
		}
		pwList = append(pwList, pw)
	}
	presetList, matcherList := splitList(*presets), splitList(*matchers)
	if len(presetList) == 0 || len(matcherList) == 0 || len(pwList) == 0 {
		return fmt.Errorf("presets, matchers and pw must each be non-empty")
	}

	if *ladderPath != "" {
		return priceLadder(fs, out, *ladderPath, *width, *height, *frames, *seed,
			presetList[0], matcherList[0], pwList[0])
	}

	rep := EvalReport{W: *width, H: *height, Frames: *frames, Seed: *seed}
	for _, preset := range presetList {
		seq, err := makeSequence(preset, *width, *height, *frames, *seed)
		if err != nil {
			return err
		}
		for _, matcher := range matcherList {
			km, err := makeMatcher(matcher)
			if err != nil {
				return err
			}
			for _, pw := range pwList {
				row := evalOne(seq, km, pw)
				row.Preset, row.Matcher = preset, matcher
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	sort.SliceStable(rep.Rows, func(i, j int) bool {
		a, b := rep.Rows[i], rep.Rows[j]
		if a.Preset != b.Preset {
			return a.Preset < b.Preset
		}
		if a.Matcher != b.Matcher {
			return a.Matcher < b.Matcher
		}
		return a.PW < b.PW
	})

	printTable(out, rep)
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonPath)
	}
	return nil
}

// priceLadder scores the committed operating-point ladder against the
// dataset oracle through the exact executor the serving layer degrades
// with, and writes the quality_ladder.json document. Flags the user left
// at their eval defaults fall back to the pricing defaults (96×64, 12
// frames, PW 4) so a bare `-ladder` run regenerates the committed file.
func priceLadder(fs *flag.FlagSet, out io.Writer, path string, w, h, frames int, seed int64, preset, matcher string, pw int) error {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	pc := asv.LadderPriceConfig{Preset: preset}
	if set["w"] {
		pc.W = w
	}
	if set["h"] {
		pc.H = h
	}
	if set["frames"] {
		pc.Frames = frames
	}
	if set["seed"] {
		pc.Seed = seed
	}
	if set["pw"] {
		pc.PW = pw
	}
	km, err := makeMatcher(matcher)
	if err != nil {
		return err
	}
	doc, err := asv.PriceQualityLadder(asv.DefaultQualityLadder(), km, pc)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "ladder pricing: %dx%d, %d frames, PW %d, seed %d, preset %s, top matcher %s\n",
		doc.W, doc.H, doc.Frames, doc.PW, doc.Seed, doc.Preset, matcher)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rung\tmatcher\tfixed\tPW×\tpyr\tkey rate\tbad-1 %\tbad-3 %\tMMACs/frame")
	for _, r := range doc.Rungs {
		m := r.OP.Matcher
		if m == "" {
			m = matcher
		}
		fmt.Fprintf(tw, "%s\t%s\t%v\t%d\t%d\t%.2f\t%.4f\t%.4f\t%.1f\n",
			r.Name, m, r.OP.Fixed, r.OP.PWStretch, r.OP.PyrLevel, r.KeyRate, r.Bad1, r.Bad3, r.MMACs)
	}
	//asvlint:ignore droppederr -- tabwriter to an in-memory/stdout writer
	tw.Flush()

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

func splitList(s string) []string {
	var list []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			list = append(list, v)
		}
	}
	return list
}

func makeSequence(preset string, w, h, frames int, seed int64) (*asv.StereoSequence, error) {
	var cfg asv.SceneConfig
	switch preset {
	case "sceneflow":
		cfg = asv.SceneFlowLike(w, h, frames, seed)[0]
	case "kitti":
		cfg = asv.KITTILike(w, h, 1, seed)[0]
		cfg.FrameCount = frames
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	return asv.GenerateSequence(cfg), nil
}

func makeMatcher(name string) (asv.KeyMatcher, error) {
	switch name {
	case "bm":
		return asv.BMKeyMatcher{Opt: asv.DefaultBMOptions()}, nil
	case "sgm":
		return asv.SGMKeyMatcher{Opt: asv.DefaultSGMOptions()}, nil
	default:
		return nil, fmt.Errorf("unknown matcher %q", name)
	}
}

// evalOne runs one configuration over the sequence: each rendered pair is
// warped through the eval calibration (what the physical cameras would have
// captured), rectified back, matched, and reprojected. The misalign→rectify
// round trip is part of the measurement on purpose — it is the deployment
// path, and its resampling error is charged to every configuration equally.
func evalOne(seq *asv.StereoSequence, km asv.KeyMatcher, pw int) EvalRow {
	w, h := seq.Frames[0].Left.W, seq.Frames[0].Left.H
	calib := asv.DefaultCalibration(w, h)
	calib.LeftRPY = [3]float64{0.004, -0.003, 0.002}
	calib.RightRPY = [3]float64{-0.002, 0.005, -0.003}

	cfg := asv.DefaultPipelineConfig()
	cfg.PW = pw
	pipe := asv.NewPipeline(km, cfg)

	row := EvalRow{PW: pw, Frames: len(seq.Frames)}
	var sqErr, nDepth float64
	var keys int
	for _, fr := range seq.Frames {
		rawL := asv.MisalignImage(fr.Left, calib.Intrinsics(), calib.RotLeft())
		rawR := asv.MisalignImage(fr.Right, calib.Intrinsics(), calib.RotRight())
		recL, recR := calib.RectifyPair(rawL, rawR)
		res := pipe.Process(recL, recR)

		row.Bad1 += asv.DisparityErrorRate(res.Disparity, fr.GT, 1.0)
		row.Bad3 += asv.DisparityErrorRate(res.Disparity, fr.GT, 3.0)
		est := asv.DepthFromDisparity(res.Disparity, calib)
		gt := asv.DepthFromDisparity(fr.GT, calib)
		for i, z := range est.Pix {
			if z > 0 && gt.Pix[i] > 0 {
				d := float64(z - gt.Pix[i])
				sqErr += d * d
				nDepth++
			}
		}
		cloud := asv.ReprojectCloud(res.Disparity, recL, calib)
		row.CloudPts += float64(len(cloud.Points))
		row.MMACs += float64(res.MACs) / 1e6
		if res.IsKey {
			keys++
		}
	}
	n := float64(len(seq.Frames))
	row.Bad1 /= n
	row.Bad3 /= n
	row.CloudPts /= n
	row.MMACs /= n
	row.KeyRate = float64(keys) / n
	if nDepth > 0 {
		row.DepthRMS = math.Sqrt(sqErr / nDepth)
	}
	return row
}

func printTable(out io.Writer, rep EvalReport) {
	fmt.Fprintf(out, "asveval: %dx%d, %d frames, seed %d\n", rep.W, rep.H, rep.Frames, rep.Seed)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "preset\tmatcher\tPW\tkey rate\tbad-1 %\tbad-3 %\tdepth RMSE (m)\tcloud pts\tMMACs/frame")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%.4f\t%.4f\t%.4f\t%.0f\t%.1f\n",
			r.Preset, r.Matcher, r.PW, r.KeyRate, r.Bad1, r.Bad3, r.DepthRMS, r.CloudPts, r.MMACs)
	}
	//asvlint:ignore droppederr -- tabwriter to an in-memory/stdout writer
	tw.Flush()
}
