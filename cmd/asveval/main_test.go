package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSweepAndJSON runs a tiny sweep and checks the report: one row per
// preset × matcher × PW combination, scores inside their domains, and the
// -json file decoding back to the same rows.
func TestRunSweepAndJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.json")
	var b strings.Builder
	args := []string{"-w", "48", "-h", "32", "-frames", "3", "-seed", "4",
		"-presets", "sceneflow,kitti", "-matchers", "bm", "-pw", "1,2", "-json", path}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep EvalReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("got %d rows, want 2 presets x 1 matcher x 2 PWs = 4", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.Bad1 < 0 || r.Bad1 > 100 || r.Bad3 < 0 || r.Bad3 > 100 {
			t.Fatalf("%s/%s/PW%d: bad rates out of [0,100]: %+v", r.Preset, r.Matcher, r.PW, r)
		}
		if r.Bad3 > r.Bad1 {
			t.Fatalf("%s/%s/PW%d: bad-3 %.2f exceeds bad-1 %.2f", r.Preset, r.Matcher, r.PW, r.Bad3, r.Bad1)
		}
		if r.DepthRMS <= 0 || r.CloudPts <= 0 || r.MMACs <= 0 {
			t.Fatalf("%s/%s/PW%d: degenerate scores: %+v", r.Preset, r.Matcher, r.PW, r)
		}
		wantKeys := 1.0
		if r.PW == 2 {
			wantKeys = 2.0 / 3.0
		}
		if d := r.KeyRate - wantKeys; d > 1e-9 || d < -1e-9 {
			t.Fatalf("PW%d key rate %.3f, want %.3f", r.PW, r.KeyRate, wantKeys)
		}
	}
	// Rows are sorted preset, matcher, PW — the committed JSON is stable.
	if rep.Rows[0].Preset != "kitti" || rep.Rows[2].Preset != "sceneflow" {
		t.Fatalf("rows not sorted: %+v", rep.Rows)
	}
	if !strings.Contains(b.String(), "bad-1") || !strings.Contains(b.String(), "wrote "+path) {
		t.Fatalf("unexpected output: %q", b.String())
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	var b strings.Builder
	for _, args := range [][]string{
		{"-presets", "middlebury"},
		{"-matchers", "dnn"},
		{"-pw", "0"},
		{"-pw", "x"},
		{"-presets", ","},
		{"-nonsense"},
	} {
		if err := run(args, &b); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
