// Command asvserve runs the stereo depth serving layer: a sessionful HTTP
// service in which every session is one ISM state machine — expensive
// key-frame matching every PW-th frame, motion-propagated refinement in
// between — fed by POSTed stereo pairs or server-side synthetic presets.
//
// Usage:
//
//	asvserve -addr :8080 -workers 4 -queue 64 -pw 4
//	asvserve -addr 127.0.0.1:0 -portfile /tmp/port   # CI: random port
//
// The server drains gracefully on SIGINT/SIGTERM: admission stops with
// 503, queued frames finish, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"asv"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asvserve:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until ctx is cancelled (signal), then
// drains. Split from main so the cmd is testable end to end.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asvserve", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address (port 0 for ephemeral)")
	portfile := fs.String("portfile", "", "write the bound host:port to this file once listening (for CI)")
	workers := fs.Int("workers", 0, "frame-processing worker pool size (0 = default)")
	queue := fs.Int("queue", 0, "admission queue depth; beyond it requests get 429 (0 = default)")
	batch := fs.Int("batch", 0, "micro-batcher max frames per dispatch round (0 = default)")
	batchWait := fs.Duration("batch-wait", 0, "max wait to fill a dispatch round (0 = default)")
	sessions := fs.Int("max-sessions", 0, "session table capacity, LRU beyond it (0 = default)")
	ttl := fs.Duration("ttl", 0, "idle session time-to-live (0 = default)")
	pw := fs.Int("pw", 0, "default propagation window for new sessions (0 = default)")
	maxPixels := fs.Int("max-pixels", 0, "per-image upload pixel cap, oversize gets 413 (0 = default)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	backendName := fs.String("backend", "systolic",
		fmt.Sprintf("accelerator model for the /metrics per-frame cost estimate (%s; empty disables)",
			strings.Join(asv.BackendNames(), "|")))
	spillDir := fs.String("spill-dir", "", "directory for session snapshots (eviction spill + checkpoints); share it across shards for failover")
	checkpointEvery := fs.Int("checkpoint-every", 0, "checkpoint each session to -spill-dir every N frames (0 = only on eviction)")
	matcherName := fs.String("matcher", "bm", "key-frame matcher (bm|sgm)")
	maxDisp := fs.Int("maxdisp", 24, "matcher disparity search range")
	fixed := fs.Bool("fixed", false, "use the fixed-point matching kernels (key matcher + guided refine)")
	deadline := fs.Duration("deadline", 0, "default per-frame latency target for best-effort sessions (0 = server default)")
	overcommit := fs.Int("overcommit", 0, "best-effort admission bound as a multiple of -queue (0 = default)")
	pacedFrameMs := fs.Int("paced-frame-ms", 0, "pace the key matcher to a fixed per-Match budget in ms (0 = off; for reproducible overload/degrade demos)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight work at shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var matcher asv.KeyMatcher
	switch *matcherName {
	case "bm":
		opt := asv.DefaultBMOptions()
		opt.MaxDisp = *maxDisp
		opt.Fixed = *fixed
		matcher = asv.BMKeyMatcher{Opt: opt}
	case "sgm":
		opt := asv.DefaultSGMOptions()
		opt.MaxDisp = *maxDisp
		opt.Fixed = *fixed
		matcher = asv.SGMKeyMatcher{Opt: opt}
	default:
		return fmt.Errorf("unknown matcher %q (bm|sgm)", *matcherName)
	}
	if *pacedFrameMs > 0 {
		matcher = asv.NewPacedKeyMatcher(matcher, time.Duration(*pacedFrameMs)*time.Millisecond)
	}

	cfg := asv.DefaultServeConfig()
	cfg.Pipeline.BM.Fixed = *fixed
	if *deadline > 0 {
		cfg.DefaultDeadline = *deadline
	}
	if *overcommit > 0 {
		cfg.BestEffortOvercommit = *overcommit
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *queue > 0 {
		cfg.QueueDepth = *queue
	}
	if *batch > 0 {
		cfg.BatchSize = *batch
	}
	if *batchWait > 0 {
		cfg.BatchWait = *batchWait
	}
	if *sessions > 0 {
		cfg.MaxSessions = *sessions
	}
	if *ttl > 0 {
		cfg.SessionTTL = *ttl
	}
	if *pw > 0 {
		cfg.PW = *pw
	}
	if *maxPixels > 0 {
		cfg.MaxPixels = *maxPixels
	}
	cfg.SpillDir = *spillDir
	if *checkpointEvery > 0 {
		if *spillDir == "" {
			return fmt.Errorf("-checkpoint-every needs -spill-dir")
		}
		cfg.CheckpointEvery = *checkpointEvery
	}
	cfg.EnablePprof = *pprofOn
	if *backendName != "" {
		be, err := asv.BackendByName(*backendName)
		if err != nil {
			return err
		}
		cfg.CostBackend = be
		cfg.CostNonKey = asv.DefaultNonKeyCost()
	}

	srv := asv.NewServeServer(matcher, cfg)
	bound, err := srv.Start(*addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(bound.String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing portfile: %w", err)
		}
	}
	fmt.Fprintf(out, "asvserve: listening on %s (matcher %s, %d workers, queue %d)\n",
		bound, matcher.Name(), cfg.Workers, cfg.QueueDepth)

	<-ctx.Done()
	fmt.Fprintln(out, "asvserve: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Close(dctx); err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	fmt.Fprintln(out, "asvserve: drained, bye")
	return nil
}
