package main

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunServeAndDrain boots the server on an ephemeral port, verifies the
// portfile handshake and /healthz, then cancels the context (standing in
// for SIGTERM) and expects a clean drain.
func TestRunServeAndDrain(t *testing.T) {
	portfile := filepath.Join(t.TempDir(), "port")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-portfile", portfile,
			"-workers", "2", "-queue", "8", "-pw", "3", "-fixed",
		}, &out)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(portfile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("portfile never appeared; output so far: %s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output: %s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("missing drain confirmation in output: %s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-matcher", "fancy-dnn"},
		{"-addr", "not a listen address"},
	} {
		var out bytes.Buffer
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := run(ctx, args, &out)
		cancel()
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
