// Command asvflow estimates dense optical flow between two grayscale PGM
// images with the Farneback estimator (ISM's motion-estimation kernel) and
// writes the U/V components as PFM files, printing summary statistics.
//
// Usage:
//
//	asvflow -prev a.pgm -next b.pgm -out flow
//	asvflow -demo            # run on a generated frame pair
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"asv"
)

func main() {
	prevPath := flag.String("prev", "", "first frame (PGM)")
	nextPath := flag.String("next", "", "second frame (PGM)")
	out := flag.String("out", "flow", "output prefix (<out>_u.pfm, <out>_v.pfm)")
	levels := flag.Int("levels", 3, "pyramid levels")
	demo := flag.Bool("demo", false, "use a generated stereo-video frame pair")
	flag.Parse()

	var prev, next *asv.Image
	switch {
	case *demo:
		seq := asv.GenerateSequence(asv.SceneConfig{
			W: 256, H: 160, FrameCount: 2, Layers: 3,
			MinDisp: 2, MaxDisp: 20, MaxVel: 2, Seed: 11,
		})
		prev, next = seq.Frames[0].Left, seq.Frames[1].Left
	case *prevPath != "" && *nextPath != "":
		var err error
		if prev, err = asv.LoadPGM(*prevPath); err != nil {
			fatal(err)
		}
		if next, err = asv.LoadPGM(*nextPath); err != nil {
			fatal(err)
		}
		if prev.W != next.W || prev.H != next.H {
			fatal(fmt.Errorf("frame sizes differ: %dx%d vs %dx%d", prev.W, prev.H, next.W, next.H))
		}
	default:
		fatal(fmt.Errorf("need -prev and -next (or -demo)"))
	}

	opt := asv.DefaultFlowOptions()
	opt.Levels = *levels
	field := asv.Farneback(prev, next, opt)

	var sum, mx float64
	for i := range field.U.Pix {
		m := math.Hypot(float64(field.U.Pix[i]), float64(field.V.Pix[i]))
		sum += m
		if m > mx {
			mx = m
		}
	}
	n := float64(len(field.U.Pix))
	fmt.Printf("%dx%d flow: mean |v| = %.3f px, max |v| = %.3f px\n",
		prev.W, prev.H, sum/n, mx)

	if err := asv.SavePFM(*out+"_u.pfm", field.U); err != nil {
		fatal(err)
	}
	if err := asv.SavePFM(*out+"_v.pfm", field.V); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s_u.pfm and %s_v.pfm\n", *out, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asvflow:", err)
	os.Exit(1)
}
