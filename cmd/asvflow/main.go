// Command asvflow estimates dense optical flow between two grayscale PGM
// images with the Farneback estimator (ISM's motion-estimation kernel) and
// writes the U/V components as PFM files, printing summary statistics.
//
// Usage:
//
//	asvflow -prev a.pgm -next b.pgm -out flow
//	asvflow -demo            # run on a generated frame pair
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"asv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asvflow:", err)
		os.Exit(1)
	}
}

// run executes the command with the given arguments, writing the report to
// out. Split from main so the cmd is testable end to end.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asvflow", flag.ContinueOnError)
	fs.SetOutput(out)
	prevPath := fs.String("prev", "", "first frame (PGM)")
	nextPath := fs.String("next", "", "second frame (PGM)")
	outPrefix := fs.String("out", "flow", "output prefix (<out>_u.pfm, <out>_v.pfm)")
	levels := fs.Int("levels", 3, "pyramid levels")
	demo := fs.Bool("demo", false, "use a generated stereo-video frame pair")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var prev, next *asv.Image
	switch {
	case *demo:
		seq := asv.GenerateSequence(asv.SceneConfig{
			W: 256, H: 160, FrameCount: 2, Layers: 3,
			MinDisp: 2, MaxDisp: 20, MaxVel: 2, Seed: 11,
		})
		prev, next = seq.Frames[0].Left, seq.Frames[1].Left
	case *prevPath != "" && *nextPath != "":
		var err error
		if prev, err = asv.LoadPGM(*prevPath); err != nil {
			return err
		}
		if next, err = asv.LoadPGM(*nextPath); err != nil {
			return err
		}
		if prev.W != next.W || prev.H != next.H {
			return fmt.Errorf("frame sizes differ: %dx%d vs %dx%d", prev.W, prev.H, next.W, next.H)
		}
	default:
		return fmt.Errorf("need -prev and -next (or -demo)")
	}

	opt := asv.DefaultFlowOptions()
	opt.Levels = *levels
	field := asv.Farneback(prev, next, opt)

	var sum, mx float64
	for i := range field.U.Pix {
		m := math.Hypot(float64(field.U.Pix[i]), float64(field.V.Pix[i]))
		sum += m
		if m > mx {
			mx = m
		}
	}
	n := float64(len(field.U.Pix))
	fmt.Fprintf(out, "%dx%d flow: mean |v| = %.3f px, max |v| = %.3f px\n",
		prev.W, prev.H, sum/n, mx)

	if err := asv.SavePFM(*outPrefix+"_u.pfm", field.U); err != nil {
		return err
	}
	if err := asv.SavePFM(*outPrefix+"_v.pfm", field.V); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s_u.pfm and %s_v.pfm\n", *outPrefix, *outPrefix)
	return nil
}
