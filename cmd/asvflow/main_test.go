package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asv"
)

func TestRunDemoWritesFlowFiles(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "flow")
	var b strings.Builder
	if err := run([]string{"-demo", "-out", prefix}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mean |v|") {
		t.Fatalf("missing summary line:\n%s", b.String())
	}
	for _, suffix := range []string{"_u.pfm", "_v.pfm"} {
		u, err := asv.LoadPFM(prefix + suffix)
		if err != nil {
			t.Fatalf("load %s: %v", suffix, err)
		}
		if u.W != 256 || u.H != 160 {
			t.Fatalf("%s: got %dx%d, want 256x160", suffix, u.W, u.H)
		}
	}
}

func TestRunPGMPair(t *testing.T) {
	dir := t.TempDir()
	// Render a small moving pattern and save both frames as PGM.
	seq := asv.GenerateSequence(asv.SceneConfig{
		W: 96, H: 64, FrameCount: 2, Layers: 2,
		MinDisp: 2, MaxDisp: 12, MaxVel: 1, Seed: 5,
	})
	prevPath := filepath.Join(dir, "a.pgm")
	nextPath := filepath.Join(dir, "b.pgm")
	if err := asv.SavePGM(prevPath, seq.Frames[0].Left); err != nil {
		t.Fatal(err)
	}
	if err := asv.SavePGM(nextPath, seq.Frames[1].Left); err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(dir, "out")
	var b strings.Builder
	err := run([]string{"-prev", prevPath, "-next", nextPath, "-out", prefix, "-levels", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "96x64 flow:") {
		t.Fatalf("unexpected summary:\n%s", b.String())
	}
	if _, err := os.Stat(prefix + "_u.pfm"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Fatal("no inputs accepted")
	}
	if err := run([]string{"-prev", "missing.pgm", "-next", "alsomissing.pgm"}, &b); err == nil {
		t.Fatal("missing input files accepted")
	}
	if err := run([]string{"-levels", "x"}, &b); err == nil {
		t.Fatal("bad -levels accepted")
	}
}
