package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asv"
)

// TestRunRendersReadableSequence renders a tiny sequence and re-reads every
// file: the PGM views must decode to in-range images of the right size and
// the PFM ground truth must round-trip bit-exactly (it is the format
// external tools will score against).
func TestRunRendersReadableSequence(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	args := []string{"-out", dir, "-frames", "2", "-w", "48", "-h", "32", "-preset", "kitti", "-seed", "5"}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wrote 2 frames") {
		t.Fatalf("unexpected summary: %q", b.String())
	}

	// The reference: the exact sequence the command rendered.
	cfg := asv.KITTILike(48, 32, 1, 5)[0]
	cfg.FrameCount = 2
	seq := asv.GenerateSequence(cfg)

	for i, fr := range seq.Frames {
		for _, side := range []struct {
			name string
			ref  *asv.Image
		}{
			{fmt.Sprintf("left_%03d.pgm", i), fr.Left},
			{fmt.Sprintf("right_%03d.pgm", i), fr.Right},
		} {
			im, err := asv.LoadPGM(filepath.Join(dir, side.name))
			if err != nil {
				t.Fatalf("re-reading %s: %v", side.name, err)
			}
			if im.W != 48 || im.H != 32 {
				t.Fatalf("%s: decoded %dx%d, want 48x32", side.name, im.W, im.H)
			}
			for px, v := range im.Pix {
				if v < 0 || v > 1 {
					t.Fatalf("%s: pixel %d out of range: %v", side.name, px, v)
				}
				want := side.ref.Pix[px]
				if want < 0 {
					want = 0
				} else if want > 1 {
					want = 1
				}
				if d := v - want; d > 1.0/65535 || d < -1.0/65535 {
					t.Fatalf("%s: pixel %d drifted by %v over the 16-bit PGM write", side.name, px, d)
				}
			}
		}

		name := fmt.Sprintf("disp_%03d.pfm", i)
		gt, err := asv.LoadPFM(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("re-reading %s: %v", name, err)
		}
		if gt.W != fr.GT.W || gt.H != fr.GT.H {
			t.Fatalf("%s: decoded %dx%d, want %dx%d", name, gt.W, gt.H, fr.GT.W, fr.GT.H)
		}
		for px := range gt.Pix {
			if gt.Pix[px] != fr.GT.Pix[px] {
				t.Fatalf("%s: pixel %d not bit-identical: %v vs %v", name, px, gt.Pix[px], fr.GT.Pix[px])
			}
		}
	}
}

// TestRunRawWritesCalibratedViews: -raw must write a parseable
// calibration.json whose misalignment actually moved the views — and
// rectifying the written views through it must bring them back near the
// rendered originals (the contract the perception smoke test leans on).
func TestRunRawWritesCalibratedViews(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	args := []string{"-out", dir, "-raw", "-frames", "1", "-w", "64", "-h", "48", "-seed", "6"}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "calibration.json") {
		t.Fatalf("summary does not mention calibration.json: %q", b.String())
	}

	raw, err := os.ReadFile(filepath.Join(dir, "calibration.json"))
	if err != nil {
		t.Fatal(err)
	}
	calib, err := asv.ParseCalibration(raw)
	if err != nil {
		t.Fatalf("written calibration does not parse: %v", err)
	}

	cfg := asv.SceneFlowLike(64, 48, 1, 6)[0]
	ref := asv.GenerateSequence(cfg).Frames[0]
	rawL, err := asv.LoadPGM(filepath.Join(dir, "left_000.pgm"))
	if err != nil {
		t.Fatal(err)
	}
	rawR, err := asv.LoadPGM(filepath.Join(dir, "right_000.pgm"))
	if err != nil {
		t.Fatal(err)
	}

	diff := func(a, b *asv.Image) float64 {
		var sum float64
		for i := range a.Pix {
			d := float64(a.Pix[i] - b.Pix[i])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return sum / float64(len(a.Pix))
	}
	if d := diff(rawL, ref.Left); d < 1e-4 {
		t.Fatalf("raw left barely differs from rectified (mean |d| %g); misalignment not applied", d)
	}
	recL, _ := calib.RectifyPair(rawL, rawR)
	if raw, rec := diff(rawL, ref.Left), diff(recL, ref.Left); rec >= raw {
		t.Fatalf("rectifying with the written calibration does not recover the view (raw %g, rectified %g)", raw, rec)
	}
}

func TestRunRejectsUnknownPreset(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-out", t.TempDir(), "-preset", "middlebury"}, &b); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-frames", "notanumber"}, &b); err == nil {
		t.Fatal("bad -frames value accepted")
	}
	if err := run([]string{"-nonsense"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
