package main

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"asv"
)

// TestRunRendersReadableSequence renders a tiny sequence and re-reads every
// file: the PGM views must decode to in-range images of the right size and
// the PFM ground truth must round-trip bit-exactly (it is the format
// external tools will score against).
func TestRunRendersReadableSequence(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	args := []string{"-out", dir, "-frames", "2", "-w", "48", "-h", "32", "-preset", "kitti", "-seed", "5"}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wrote 2 frames") {
		t.Fatalf("unexpected summary: %q", b.String())
	}

	// The reference: the exact sequence the command rendered.
	cfg := asv.KITTILike(48, 32, 1, 5)[0]
	cfg.FrameCount = 2
	seq := asv.GenerateSequence(cfg)

	for i, fr := range seq.Frames {
		for _, side := range []struct {
			name string
			ref  *asv.Image
		}{
			{fmt.Sprintf("left_%03d.pgm", i), fr.Left},
			{fmt.Sprintf("right_%03d.pgm", i), fr.Right},
		} {
			im, err := asv.LoadPGM(filepath.Join(dir, side.name))
			if err != nil {
				t.Fatalf("re-reading %s: %v", side.name, err)
			}
			if im.W != 48 || im.H != 32 {
				t.Fatalf("%s: decoded %dx%d, want 48x32", side.name, im.W, im.H)
			}
			for px, v := range im.Pix {
				if v < 0 || v > 1 {
					t.Fatalf("%s: pixel %d out of range: %v", side.name, px, v)
				}
				want := side.ref.Pix[px]
				if want < 0 {
					want = 0
				} else if want > 1 {
					want = 1
				}
				if d := v - want; d > 1.0/65535 || d < -1.0/65535 {
					t.Fatalf("%s: pixel %d drifted by %v over the 16-bit PGM write", side.name, px, d)
				}
			}
		}

		name := fmt.Sprintf("disp_%03d.pfm", i)
		gt, err := asv.LoadPFM(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("re-reading %s: %v", name, err)
		}
		if gt.W != fr.GT.W || gt.H != fr.GT.H {
			t.Fatalf("%s: decoded %dx%d, want %dx%d", name, gt.W, gt.H, fr.GT.W, fr.GT.H)
		}
		for px := range gt.Pix {
			if gt.Pix[px] != fr.GT.Pix[px] {
				t.Fatalf("%s: pixel %d not bit-identical: %v vs %v", name, px, gt.Pix[px], fr.GT.Pix[px])
			}
		}
	}
}

func TestRunRejectsUnknownPreset(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-out", t.TempDir(), "-preset", "middlebury"}, &b); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-frames", "notanumber"}, &b); err == nil {
		t.Fatal("bad -frames value accepted")
	}
	if err := run([]string{"-nonsense"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
