// Command asvgen renders a synthetic stereo sequence to disk: left/right
// views as 16-bit PGM and ground-truth disparity as PFM (the KITTI/
// Middlebury format), so the generated benchmarks can be consumed by
// external stereo tools.
//
// Usage:
//
//	asvgen -out /tmp/seq -frames 8 -w 320 -h 200 -preset kitti
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"asv"
)

func main() {
	out := flag.String("out", "asv-seq", "output directory")
	frames := flag.Int("frames", 4, "frames to render")
	width := flag.Int("w", 320, "frame width")
	height := flag.Int("h", 200, "frame height")
	seed := flag.Int64("seed", 1, "scene seed")
	preset := flag.String("preset", "sceneflow", "scene preset (sceneflow|kitti)")
	flag.Parse()

	var cfg asv.SceneConfig
	switch *preset {
	case "sceneflow":
		cfg = asv.SceneFlowLike(*width, *height, *frames, *seed)[0]
	case "kitti":
		cfg = asv.KITTILike(*width, *height, 1, *seed)[0]
		cfg.FrameCount = *frames
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	seq := asv.GenerateSequence(cfg)
	for i, fr := range seq.Frames {
		files := []struct {
			name string
			save func(string) error
		}{
			{fmt.Sprintf("left_%03d.pgm", i), func(p string) error { return asv.SavePGM(p, fr.Left) }},
			{fmt.Sprintf("right_%03d.pgm", i), func(p string) error { return asv.SavePGM(p, fr.Right) }},
			{fmt.Sprintf("disp_%03d.pfm", i), func(p string) error { return asv.SavePFM(p, fr.GT) }},
		}
		for _, f := range files {
			if err := f.save(filepath.Join(*out, f.name)); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", f.name, err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("wrote %d frames (left/right PGM + disparity PFM) to %s\n",
		len(seq.Frames), *out)
}
