// Command asvgen renders a synthetic stereo sequence to disk: left/right
// views as 16-bit PGM and ground-truth disparity as PFM (the KITTI/
// Middlebury format), so the generated benchmarks can be consumed by
// external stereo tools.
//
// Usage:
//
//	asvgen -out /tmp/seq -frames 8 -w 320 -h 200 -preset kitti
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"asv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asvgen:", err)
		os.Exit(2)
	}
}

// run executes the command with the given arguments, writing the summary to
// out. Split from main so the cmd is testable end to end.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asvgen", flag.ContinueOnError)
	fs.SetOutput(out)
	outDir := fs.String("out", "asv-seq", "output directory")
	frames := fs.Int("frames", 4, "frames to render")
	width := fs.Int("w", 320, "frame width")
	height := fs.Int("h", 200, "frame height")
	seed := fs.Int64("seed", 1, "scene seed")
	preset := fs.String("preset", "sceneflow", "scene preset (sceneflow|kitti)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg asv.SceneConfig
	switch *preset {
	case "sceneflow":
		cfg = asv.SceneFlowLike(*width, *height, *frames, *seed)[0]
	case "kitti":
		cfg = asv.KITTILike(*width, *height, 1, *seed)[0]
		cfg.FrameCount = *frames
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	seq := asv.GenerateSequence(cfg)
	for i, fr := range seq.Frames {
		files := []struct {
			name string
			save func(string) error
		}{
			{fmt.Sprintf("left_%03d.pgm", i), func(p string) error { return asv.SavePGM(p, fr.Left) }},
			{fmt.Sprintf("right_%03d.pgm", i), func(p string) error { return asv.SavePGM(p, fr.Right) }},
			{fmt.Sprintf("disp_%03d.pfm", i), func(p string) error { return asv.SavePFM(p, fr.GT) }},
		}
		for _, f := range files {
			if err := f.save(filepath.Join(*outDir, f.name)); err != nil {
				return fmt.Errorf("writing %s: %w", f.name, err)
			}
		}
	}
	fmt.Fprintf(out, "wrote %d frames (left/right PGM + disparity PFM) to %s\n",
		len(seq.Frames), *outDir)
	return nil
}
