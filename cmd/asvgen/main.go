// Command asvgen renders a synthetic stereo sequence to disk: left/right
// views as 16-bit PGM and ground-truth disparity as PFM (the KITTI/
// Middlebury format), so the generated benchmarks can be consumed by
// external stereo tools.
//
// With -raw the left/right views are warped through a known calibration's
// per-camera misalignment before writing — what the physical, unrectified
// cameras would have captured — and the calibration itself is written
// alongside as calibration.json, ready to open a calibrated serving
// session against (the perception smoke test's input).
//
// Usage:
//
//	asvgen -out /tmp/seq -frames 8 -w 320 -h 200 -preset kitti
//	asvgen -out /tmp/raw -raw        # misaligned views + calibration.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"asv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asvgen:", err)
		os.Exit(2)
	}
}

// run executes the command with the given arguments, writing the summary to
// out. Split from main so the cmd is testable end to end.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asvgen", flag.ContinueOnError)
	fs.SetOutput(out)
	outDir := fs.String("out", "asv-seq", "output directory")
	frames := fs.Int("frames", 4, "frames to render")
	width := fs.Int("w", 320, "frame width")
	height := fs.Int("h", 200, "frame height")
	seed := fs.Int64("seed", 1, "scene seed")
	preset := fs.String("preset", "sceneflow", "scene preset (sceneflow|kitti)")
	raw := fs.Bool("raw", false, "write RAW (misaligned) views plus the calibration.json that rectifies them")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg asv.SceneConfig
	switch *preset {
	case "sceneflow":
		cfg = asv.SceneFlowLike(*width, *height, *frames, *seed)[0]
	case "kitti":
		cfg = asv.KITTILike(*width, *height, 1, *seed)[0]
		cfg.FrameCount = *frames
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	var calib *asv.Calibration
	if *raw {
		calib = asv.DefaultCalibration(*width, *height)
		calib.LeftRPY = [3]float64{0.004, -0.003, 0.002}
		calib.RightRPY = [3]float64{-0.002, 0.005, -0.003}
		path := filepath.Join(*outDir, "calibration.json")
		if err := os.WriteFile(path, calib.EncodeJSON(), 0o644); err != nil {
			return fmt.Errorf("writing calibration.json: %w", err)
		}
	}

	seq := asv.GenerateSequence(cfg)
	for i, fr := range seq.Frames {
		left, right := fr.Left, fr.Right
		if calib != nil {
			left = asv.MisalignImage(left, calib.Intrinsics(), calib.RotLeft())
			right = asv.MisalignImage(right, calib.Intrinsics(), calib.RotRight())
		}
		files := []struct {
			name string
			save func(string) error
		}{
			{fmt.Sprintf("left_%03d.pgm", i), func(p string) error { return asv.SavePGM(p, left) }},
			{fmt.Sprintf("right_%03d.pgm", i), func(p string) error { return asv.SavePGM(p, right) }},
			{fmt.Sprintf("disp_%03d.pfm", i), func(p string) error { return asv.SavePFM(p, fr.GT) }},
		}
		for _, f := range files {
			if err := f.save(filepath.Join(*outDir, f.name)); err != nil {
				return fmt.Errorf("writing %s: %w", f.name, err)
			}
		}
	}
	kind := "left/right PGM"
	if calib != nil {
		kind = "RAW left/right PGM + calibration.json"
	}
	fmt.Fprintf(out, "wrote %d frames (%s + disparity PFM) to %s\n",
		len(seq.Frames), kind, *outDir)
	return nil
}
