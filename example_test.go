package asv_test

import (
	"fmt"
	"math"

	"asv"
)

// The classic depth-from-stereo loop: match a rectified pair, then
// triangulate the disparity into metric depth.
func Example() {
	seq := asv.GenerateSequence(asv.SceneConfig{
		W: 128, H: 80, FrameCount: 1, Layers: 2,
		MinDisp: 2, MaxDisp: 16, Seed: 7,
	})
	fr := seq.Frames[0]

	opt := asv.DefaultSGMOptions()
	opt.MaxDisp = 20
	disp := asv.SGM(fr.Left, fr.Right, opt)

	fmt.Println("error under 5%:", asv.ThreePixelError(disp, fr.GT) < 5)
	depth := asv.Bumblebee2().DepthMap(disp)
	fmt.Println("finite center depth:", !math.IsInf(float64(depth.At(64, 40)), 1))
	// Output:
	// error under 5%: true
	// finite center depth: true
}

// ISM runs the expensive matcher only on key frames; the frames between
// ride the correspondence invariant.
func ExamplePipeline() {
	cfg := asv.DefaultPipelineConfig()
	cfg.PW = 2
	sgm := asv.DefaultSGMOptions()
	sgm.MaxDisp = 20
	pipe := asv.NewPipeline(asv.SGMKeyMatcher{Opt: sgm}, cfg)

	seq := asv.GenerateSequence(asv.SceneConfig{
		W: 128, H: 80, FrameCount: 4, Layers: 2,
		MinDisp: 2, MaxDisp: 16, MaxVel: 1, Seed: 8,
	})
	for _, fr := range seq.Frames {
		res := pipe.Process(fr.Left, fr.Right)
		fmt.Printf("key=%v ok=%v\n", res.IsKey, asv.ThreePixelError(res.Disparity, fr.GT) < 10)
	}
	// Output:
	// key=true ok=true
	// key=false ok=true
	// key=true ok=true
	// key=false ok=true
}

// The deconvolution transformation is exact: decomposed dense
// sub-convolutions reproduce the sparse operator bit for bit.
func ExampleTransformedDeconv2D() {
	in := asv.NewTensor(2, 6, 6)
	for i := range in.Data() {
		in.Data()[i] = float32(i%13) - 6
	}
	w := asv.NewTensor(3, 2, 4, 4)
	for i := range w.Data() {
		w.Data()[i] = float32(i%7) - 3
	}
	const pad = 2 // transposed-conv padding 1 for a 4x4 kernel
	ref := asv.Deconv2D(in, w, 2, pad)
	got := asv.TransformedDeconv2D(in, w, pad)

	var maxDiff float64
	for i := range ref.Data() {
		if d := math.Abs(float64(ref.Data()[i] - got.Data()[i])); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Println("identical:", maxDiff == 0)
	// Output:
	// identical: true
}

// The accelerator model compares scheduling policies on a real network.
func ExampleBackend_RunNetwork() {
	acc := asv.DefaultAccelerator()
	net := asv.StereoDNNs(135, 240)[1] // DispNet at reduced resolution
	base := acc.RunNetwork(net, asv.RunOptions{Policy: asv.PolicyBaseline})
	opt := acc.RunNetwork(net, asv.RunOptions{Policy: asv.PolicyILAR})
	fmt.Println("DCO faster:", opt.Cycles < base.Cycles)
	fmt.Println("DCO cheaper:", opt.EnergyJ < base.EnergyJ)
	// Output:
	// DCO faster: true
	// DCO cheaper: true
}

// Triangulation sensitivity: the Fig. 4 calculation.
func ExampleCamera_DepthError() {
	cam := asv.Bumblebee2()
	fmt.Printf("30m object, 0.2px disparity error: %.1fm depth error\n",
		cam.DepthError(30, 0.2))
	// Output:
	// 30m object, 0.2px disparity error: 3.9m depth error
}
