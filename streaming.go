package asv

import (
	"runtime"
	"time"

	"asv/internal/core"
	"asv/internal/metrics"
	"asv/internal/pipeline"
)

// Concurrent streaming runtime (see internal/pipeline): the per-frame ISM
// stages run as a bounded-channel pipeline so frame t+1's optical flow
// overlaps frame t's refinement, with output bit-identical to the serial
// Pipeline.

// StreamFrame is one stereo pair of an input stream.
type StreamFrame = pipeline.Frame

// StreamOptions tunes the streaming runtime (workers, in-flight depth,
// metrics sink).
type StreamOptions = pipeline.Options

// StreamResult is one in-order result of the streaming runtime.
type StreamResult = pipeline.Result

// Metrics collects per-stage frame counters, latency histograms and
// allocation statistics.
type Metrics = metrics.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// StreamDepth runs the concurrent ISM pipeline over the frame channel and
// returns the channel of in-order results, bit-identical to calling
// Pipeline.Process frame by frame.
func StreamDepth(matcher KeyMatcher, cfg PipelineConfig, frames <-chan StreamFrame, opt StreamOptions) <-chan StreamResult {
	return pipeline.Stream(matcher, cfg, frames, opt)
}

// StreamDepthFrames is the batch form of StreamDepth for pre-materialized
// sequences.
func StreamDepthFrames(matcher KeyMatcher, cfg PipelineConfig, frames []StreamFrame, opt StreamOptions) []StreamResult {
	return pipeline.StreamFrames(matcher, cfg, frames, opt)
}

// PipelineBenchPoint is one serial-vs-pipelined throughput measurement, the
// record format of BENCH_pipeline.json.
type PipelineBenchPoint struct {
	Mode     string  `json:"mode"`  // "serial" or "pipelined"
	Cores    int     `json:"cores"` // GOMAXPROCS during the run
	W        int     `json:"w"`
	H        int     `json:"h"`
	PW       int     `json:"pw"`
	Frames   int     `json:"frames"`
	FPS      float64 `json:"fps"`
	SpeedupX float64 `json:"speedup_x"` // vs serial at the same core count
}

// MeasurePipelineThroughput times the serial ISM path against the streaming
// pipeline on a generated stereo video at each requested GOMAXPROCS value,
// restoring the previous setting afterwards. cmd/asvbench renders the
// result and emits it as BENCH_pipeline.json so later PRs have a
// performance trajectory to compare against.
func MeasurePipelineThroughput(cores []int, frames, w, h int) []PipelineBenchPoint {
	seq := GenerateSequence(SceneConfig{
		W: w, H: h, FrameCount: frames, Layers: 3,
		MinDisp: 2, MaxDisp: 20, MaxVel: 1.5, MaxDispVel: 0.3,
		Ground: true, Noise: 0.01, Seed: 7,
	})
	in := make([]StreamFrame, len(seq.Frames))
	for i, fr := range seq.Frames {
		in[i] = StreamFrame{Left: fr.Left, Right: fr.Right}
	}
	sgmOpt := DefaultSGMOptions()
	sgmOpt.MaxDisp = 24
	matcher := SGMKeyMatcher{Opt: sgmOpt}
	cfg := DefaultPipelineConfig()

	runSerial := func() {
		p := core.New(matcher, cfg)
		for _, fr := range in {
			p.Process(fr.Left, fr.Right)
		}
	}
	runPipelined := func() {
		StreamDepthFrames(matcher, cfg, in, StreamOptions{})
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var out []PipelineBenchPoint
	for _, n := range cores {
		runtime.GOMAXPROCS(n)
		runSerial() // warm caches and buffer pools before timing
		serialFPS := timeFPS(runSerial, len(in))
		pipeFPS := timeFPS(runPipelined, len(in))
		out = append(out,
			PipelineBenchPoint{Mode: "serial", Cores: n, W: w, H: h, PW: cfg.PW,
				Frames: frames, FPS: serialFPS, SpeedupX: 1},
			PipelineBenchPoint{Mode: "pipelined", Cores: n, W: w, H: h, PW: cfg.PW,
				Frames: frames, FPS: pipeFPS, SpeedupX: pipeFPS / serialFPS})
	}
	return out
}

// timeFPS runs fn (which processes frames frames) and returns frames/sec,
// keeping the best of two runs to shed scheduler noise.
func timeFPS(fn func(), frames int) float64 {
	best := time.Duration(1<<63 - 1)
	for run := 0; run < 2; run++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return float64(frames) / best.Seconds()
}
