package asv

import (
	"fmt"

	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/hw"
	"asv/internal/nn"
	"asv/internal/stereo"
)

// This file regenerates every table and figure of the paper's evaluation.
// Each ExperimentFigN function returns structured rows; cmd/asvbench and
// the benchmark harness render them. EXPERIMENTS.md records paper-vs-
// measured values for each. All accelerator models are reached through the
// backend registry (see simulate.go); no experiment imports a concrete
// model package.

// defaultNonKey returns the ISM non-key cost at qHD on the default
// pipeline configuration.
func defaultNonKey() NonKeyCost { return DefaultNonKeyCost() }

// ---------------------------------------------------------------- Fig. 1

// FrontierPoint is one system on the accuracy/performance frontier.
type FrontierPoint struct {
	Name     string
	Class    string // "classic", "dnn-gpu", "dnn-acc", "asv"
	ErrorPct float64
	FPS      float64
}

// ExperimentFig1 reproduces the frame-rate versus error-rate frontier:
// classic algorithms (measured on the synthetic KITTI-like set, costed on
// the accelerator), the four stereo DNNs on the mobile GPU and on the
// baseline accelerator, and the full ASV system.
func ExperimentFig1(sc ExpScale) []FrontierPoint {
	acc := DefaultAccelerator()
	tx2 := JetsonTX2()
	cfg := hw.Default()
	util := float64(cfg.PEs()) * cfg.FreqHz * 0.75

	var pts []FrontierPoint

	// Classic algorithms: measure accuracy on a KITTI-like subset and cost
	// their MACs on the accelerator (they map to convolution/SAD).
	cfgs := kittiConfigs(sc)
	if len(cfgs) > 8 {
		cfgs = cfgs[:8]
	}
	type classic struct {
		name  string
		match func(l, r *Image) *Image
		macs  int64
	}
	bmOpt := stereo.DefaultBMOptions()
	bmOpt.MaxDisp = 32
	sgm4 := stereo.DefaultSGMOptions()
	sgm4.Paths = 4
	sgm4.MaxDisp = 32
	sgm8 := stereo.DefaultSGMOptions()
	sgm8.MaxDisp = 32
	cvf := stereo.DefaultCVFOptions()
	cvf.MaxDisp = 32
	algos := []classic{
		{"BM (GCSF-class)", func(l, r *Image) *Image { return stereo.Match(l, r, bmOpt) },
			stereo.MatchMACs(nn.QHDW, nn.QHDH, bmOpt)},
		{"SGM-4 (SGBN-class)", func(l, r *Image) *Image { return stereo.SGM(l, r, sgm4) },
			stereo.SGMMACs(nn.QHDW, nn.QHDH, sgm4)},
		{"SGM-8 (HH-class)", func(l, r *Image) *Image { return stereo.SGM(l, r, sgm8) },
			stereo.SGMMACs(nn.QHDW, nn.QHDH, sgm8)},
		{"CVF (ELAS-class)", func(l, r *Image) *Image { return stereo.CostVolumeFilter(l, r, cvf) },
			stereo.CVFMACs(nn.QHDW, nn.QHDH, cvf)},
	}
	for _, a := range algos {
		var errSum float64
		var n int
		for _, cfg := range cfgs {
			fr := dataset.Generate(cfg).Frames[0]
			errSum += stereo.ThreePixelError(a.match(fr.Left, fr.Right), fr.GT)
			n++
		}
		pts = append(pts, FrontierPoint{
			Name: a.name, Class: "classic",
			ErrorPct: errSum / float64(n),
			FPS:      util / float64(a.macs),
		})
	}

	// Stereo DNNs on GPU and on the baseline accelerator.
	for _, prof := range StereoDNNProfiles(nn.QHDH, nn.QHDW) {
		g := tx2.RunNetwork(prof.Net, RunOptions{})
		pts = append(pts, FrontierPoint{
			Name: prof.Name + "-GPU", Class: "dnn-gpu",
			ErrorPct: prof.ErrRatePct, FPS: g.FPS(),
		})
		b := acc.RunNetwork(prof.Net, RunOptions{Policy: PolicyBaseline})
		pts = append(pts, FrontierPoint{
			Name: prof.Name + "-Acc", Class: "dnn-acc",
			ErrorPct: prof.ErrRatePct, FPS: b.FPS(),
		})
	}

	// ASV: DispNet-class oracle, PW-4, full DCO. Accuracy measured with the
	// Fig. 9 machinery; performance from the system model.
	profiles := StereoDNNProfiles(nn.QHDH, nn.QHDW)
	dispNet := profiles[1]
	asvErr := runAccuracy(sceneFlowConfigs(sc), dispNet, 4, sc.Seed)
	asvRep := acc.RunNetwork(dispNet.Net, RunOptions{Policy: PolicyILAR, PW: 4, NonKey: defaultNonKey()})
	pts = append(pts, FrontierPoint{
		Name: "ASV", Class: "asv",
		ErrorPct: asvErr, FPS: asvRep.FPS(),
	})
	return pts
}

// ---------------------------------------------------------------- Fig. 3

// StageRow is the per-stage cost split of one stereo DNN.
type StageRow struct {
	Net                 string
	FEPct, MOPct, DRPct float64
	DeconvPct           float64 // deconvolution share of total MACs
}

// ExperimentFig3 reproduces the arithmetic-operation distribution across
// the FE/MO/DR stages (paper: deconvolution averages 38.2% of MACs).
func ExperimentFig3() []StageRow {
	var rows []StageRow
	for _, n := range nn.StereoZoo(nn.QHDH, nn.QHDW) {
		st := n.MACsByStage()
		tot := float64(n.TotalMACs())
		rows = append(rows, StageRow{
			Net:       n.Name,
			FEPct:     100 * float64(st[nn.StageFE]) / tot,
			MOPct:     100 * float64(st[nn.StageMO]) / tot,
			DRPct:     100 * float64(st[nn.StageDR]) / tot,
			DeconvPct: 100 * n.DeconvShare(),
		})
	}
	return rows
}

// ---------------------------------------------------------------- Fig. 4

// DepthErrPoint is one point of the depth-sensitivity curve.
type DepthErrPoint struct {
	DepthM    float64
	DispErrPx float64
	DepthErrM float64
}

// ExperimentFig4 reproduces the depth-estimation sensitivity to disparity
// error for the Bumblebee2 camera at 10/15/30 m.
func ExperimentFig4() []DepthErrPoint {
	cam := stereo.Bumblebee2()
	var pts []DepthErrPoint
	for _, depth := range []float64{10, 15, 30} {
		for e := 0.0; e <= 0.201; e += 0.02 {
			pts = append(pts, DepthErrPoint{
				DepthM: depth, DispErrPx: e, DepthErrM: cam.DepthError(depth, e),
			})
		}
	}
	return pts
}

// ---------------------------------------------------------------- Fig. 9

// AccuracyRow is one bar of the ISM accuracy comparison.
type AccuracyRow struct {
	Dataset  string // "SceneFlow" or "KITTI"
	Net      string
	Mode     string // "DNN", "PW-2", "PW-4"
	ErrorPct float64
}

// ExperimentFig9 reproduces the accuracy comparison between the stereo
// DNNs and ISM at PW-2/PW-4. KITTI sequences have only two frames, so only
// PW-2 applies there (as in the paper).
func ExperimentFig9(sc ExpScale) []AccuracyRow {
	var rows []AccuracyRow
	profiles := StereoDNNProfiles(sc.H, sc.W)
	sf := sceneFlowConfigs(sc)
	kt := kittiConfigs(sc)
	for _, prof := range profiles {
		rows = append(rows,
			AccuracyRow{"SceneFlow", prof.Name, "DNN", runAccuracy(sf, prof, 1, sc.Seed)},
			AccuracyRow{"SceneFlow", prof.Name, "PW-2", runAccuracy(sf, prof, 2, sc.Seed)},
			AccuracyRow{"SceneFlow", prof.Name, "PW-4", runAccuracy(sf, prof, 4, sc.Seed)},
			AccuracyRow{"KITTI", prof.Name, "DNN", runAccuracy(kt, prof, 1, sc.Seed)},
			AccuracyRow{"KITTI", prof.Name, "PW-2", runAccuracy(kt, prof, 2, sc.Seed)},
		)
	}
	return rows
}

// --------------------------------------------------------------- Fig. 10

// SpeedupRow is one (network, variant) bar of a speedup/energy chart.
type SpeedupRow struct {
	Net          string
	Variant      string
	Speedup      float64
	EnergyRedPct float64
}

// ExperimentFig10 reproduces the whole-system ablation: ISM alone, the
// deconvolution optimizations (DCO) alone, and both, against the baseline
// accelerator (paper: 4.9x speedup, 85% energy saving combined, PW-4).
func ExperimentFig10() []SpeedupRow {
	acc := DefaultAccelerator()
	nk := defaultNonKey()
	var rows []SpeedupRow
	for _, n := range nn.StereoZoo(nn.QHDH, nn.QHDW) {
		base := acc.RunNetwork(n, RunOptions{Policy: PolicyBaseline})
		dco := acc.RunNetwork(n, RunOptions{Policy: PolicyILAR})
		ism := acc.RunNetwork(n, RunOptions{Policy: PolicyBaseline, PW: 4, NonKey: nk})
		both := acc.RunNetwork(n, RunOptions{Policy: PolicyILAR, PW: 4, NonKey: nk})
		add := func(v string, r Report) {
			rows = append(rows, SpeedupRow{
				Net: n.Name, Variant: v,
				Speedup:      base.Seconds / r.Seconds,
				EnergyRedPct: 100 * (1 - r.EnergyJ/base.EnergyJ),
			})
		}
		add("DCO", dco)
		add("ISM", ism)
		add("DCO+ISM", both)
	}
	return rows
}

// --------------------------------------------------------------- Fig. 11

// DeconvOptRow is one (network, optimization) entry of the deconvolution
// ablation, covering both the deconv-layer-only and whole-network scopes.
type DeconvOptRow struct {
	Net                string
	Opt                string // "DCT", "ConvR", "ILAR"
	DeconvSpeedup      float64
	DeconvEnergyRedPct float64
	NetSpeedup         float64
	NetEnergyRedPct    float64
}

// ExperimentFig11 reproduces the deconvolution-optimization ablation:
// transformation only (DCT), plus conventional reuse (ConvR), plus
// inter-layer activation reuse (ILAR).
func ExperimentFig11() []DeconvOptRow {
	acc := DefaultAccelerator()
	var rows []DeconvOptRow
	for _, n := range nn.StereoZoo(nn.QHDH, nn.QHDW) {
		base := acc.RunNetwork(n, RunOptions{Policy: PolicyBaseline})
		for _, p := range []Policy{PolicyDCT, PolicyConvR, PolicyILAR} {
			r := acc.RunNetwork(n, RunOptions{Policy: p})
			name := map[Policy]string{
				PolicyDCT: "DCT", PolicyConvR: "ConvR", PolicyILAR: "ILAR",
			}[p]
			rows = append(rows, DeconvOptRow{
				Net: n.Name, Opt: name,
				DeconvSpeedup:      float64(base.DeconvCycles) / float64(r.DeconvCycles),
				DeconvEnergyRedPct: 100 * (1 - r.DeconvEnergyJ/base.DeconvEnergyJ),
				NetSpeedup:         float64(base.Cycles) / float64(r.Cycles),
				NetEnergyRedPct:    100 * (1 - r.EnergyJ/base.EnergyJ),
			})
		}
	}
	return rows
}

// --------------------------------------------------------------- Fig. 12

// SensitivityGrid is the DCO speedup/energy sensitivity over hardware
// configurations; cell [i][j] corresponds to Bufs[i] and PEs[j], each
// normalized to the *same* configuration's baseline (as in the paper).
type SensitivityGrid struct {
	PEs       []int     // array edge lengths (8..56)
	BufsMB    []float64 // buffer sizes in MB (0.5..3.0)
	Speedup   [][]float64
	EnergyRed [][]float64 // fractional (0.31 = 31%)
}

// ExperimentFig12 reproduces the FlowNetC sensitivity study.
func ExperimentFig12() SensitivityGrid {
	n := nn.FlowNetC(nn.QHDH, nn.QHDW)
	grid := SensitivityGrid{
		PEs:    []int{8, 16, 24, 32, 40, 48, 56},
		BufsMB: []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0},
	}
	for _, mb := range grid.BufsMB {
		var spRow, enRow []float64
		for _, pe := range grid.PEs {
			cfg := hw.Default()
			cfg.PEsX, cfg.PEsY = pe, pe
			cfg.BufBytes = int64(mb * 1024 * 1024)
			acc := NewAccelerator(cfg, hw.DefaultEnergy())
			base := acc.RunNetwork(n, RunOptions{Policy: PolicyBaseline})
			dco := acc.RunNetwork(n, RunOptions{Policy: PolicyILAR})
			spRow = append(spRow, float64(base.Cycles)/float64(dco.Cycles))
			enRow = append(enRow, 1-dco.EnergyJ/base.EnergyJ)
		}
		grid.Speedup = append(grid.Speedup, spRow)
		grid.EnergyRed = append(grid.EnergyRed, enRow)
	}
	return grid
}

// --------------------------------------------------------------- Fig. 13

// BaselineRow compares one system against the Eyeriss reference.
type BaselineRow struct {
	System     string
	Speedup    float64 // vs Eyeriss (higher is better)
	NormEnergy float64 // vs Eyeriss (lower is better)
}

// ExperimentFig13 reproduces the Eyeriss/GPU comparison, averaged over the
// four stereo DNNs and normalized to plain Eyeriss.
func ExperimentFig13() []BaselineRow {
	acc := DefaultAccelerator()
	eye := DefaultEyeriss()
	tx2 := JetsonTX2()
	nk := defaultNonKey()

	sums := map[string][2]float64{}
	add := func(name string, sp, en float64) {
		v := sums[name]
		sums[name] = [2]float64{v[0] + sp, v[1] + en}
	}
	for _, n := range nn.StereoZoo(nn.QHDH, nn.QHDW) {
		ref := eye.RunNetwork(n, RunOptions{Policy: PolicyBaseline})
		rate := func(r Report) (float64, float64) {
			return ref.Seconds / r.Seconds, r.EnergyJ / ref.EnergyJ
		}
		sp, en := rate(acc.RunNetwork(n, RunOptions{Policy: PolicyILAR}))
		add("ASV-DCO", sp, en)
		sp, en = rate(acc.RunNetwork(n, RunOptions{Policy: PolicyBaseline, PW: 4, NonKey: nk}))
		add("ASV-ISM", sp, en)
		sp, en = rate(acc.RunNetwork(n, RunOptions{Policy: PolicyILAR, PW: 4, NonKey: nk}))
		add("ASV-DCO+ISM", sp, en)
		sp, en = rate(eye.RunNetwork(n, RunOptions{Policy: PolicyDCT}))
		add("Eyeriss+DCT", sp, en)
		sp, en = rate(tx2.RunNetwork(n, RunOptions{}))
		add("GPU", sp, en)
	}
	order := []string{"ASV-DCO", "ASV-ISM", "ASV-DCO+ISM", "Eyeriss+DCT", "GPU"}
	rows := make([]BaselineRow, 0, len(order)+1)
	rows = append(rows, BaselineRow{System: "Eyeriss", Speedup: 1, NormEnergy: 1})
	for _, name := range order {
		v := sums[name]
		rows = append(rows, BaselineRow{System: name, Speedup: v[0] / 4, NormEnergy: v[1] / 4})
	}
	return rows
}

// --------------------------------------------------------------- Fig. 14

// GANRow compares ASV and GANNX on one generator, normalized to Eyeriss.
type GANRow struct {
	GAN            string
	ASVSpeedup     float64
	ASVEnergyRed   float64 // x-fold energy reduction vs Eyeriss
	GANNXSpeedup   float64
	GANNXEnergyRed float64
}

// ExperimentFig14 reproduces the GAN generality study (paper: ASV 5.0x /
// 4.2x vs GANNX 3.6x / 3.2x, both over Eyeriss).
func ExperimentFig14() []GANRow {
	acc := DefaultAccelerator()
	eye := DefaultEyeriss()
	gx := DefaultGANNX()
	var rows []GANRow
	for _, n := range nn.GANZoo() {
		ref := eye.RunNetwork(n, RunOptions{Policy: PolicyBaseline})
		a := acc.RunNetwork(n, RunOptions{Policy: PolicyILAR})
		g := gx.RunNetwork(n, RunOptions{})
		rows = append(rows, GANRow{
			GAN:            n.Name,
			ASVSpeedup:     ref.Seconds / a.Seconds,
			ASVEnergyRed:   ref.EnergyJ / a.EnergyJ,
			GANNXSpeedup:   ref.Seconds / g.Seconds,
			GANNXEnergyRed: ref.EnergyJ / g.EnergyJ,
		})
	}
	return rows
}

// ------------------------------------------------------------- Backends

// BackendRow is one (backend, workload, policy) cell of the registry-wide
// cost sweep: every registered accelerator model run over the stereo and
// GAN zoos under each policy its capabilities allow, plus — for
// ISM-capable backends — the averaged PW-4 system point.
type BackendRow struct {
	Backend  string  `json:"backend"`
	Net      string  `json:"net"`
	Policy   string  `json:"policy"` // policy name; "+ism-pw4" suffix for the system point
	FPS      float64 `json:"fps"`
	EnergyMJ float64 `json:"energy_mj"` // per-frame energy in millijoules
	GMACs    float64 `json:"gmacs"`     // per-frame effective MACs, in billions
	DRAMMB   float64 `json:"dram_mib"`  // per-frame off-chip traffic, in MiB
}

// ExperimentBackends sweeps the whole backend registry — the cross-model
// comparison Figs. 13 and 14 sample, as one table. Rows are emitted in
// deterministic order: backends sorted by name, networks in zoo order,
// policies in capability order.
func ExperimentBackends() []BackendRow {
	return ExperimentBackendsFor(BackendNames()...)
}

// ExperimentBackendsFor restricts the sweep to the named backends (asvbench
// -backend). Unknown names are skipped; callers validate with
// BackendByName first for a helpful error.
func ExperimentBackendsFor(names ...string) []BackendRow {
	nk := defaultNonKey()
	var rows []BackendRow
	nets := append(nn.StereoZoo(nn.QHDH, nn.QHDW), nn.GANZoo()...)
	stereoSet := make(map[string]bool)
	for _, n := range nn.StereoZoo(nn.QHDH, nn.QHDW) {
		stereoSet[n.Name] = true
	}
	for _, name := range names {
		b, err := BackendByName(name)
		if err != nil {
			continue
		}
		d := b.Describe()
		for _, n := range nets {
			for _, p := range d.Caps.Policies {
				r, err := RunOnBackend(b, n, RunOptions{Policy: p})
				if err != nil {
					panic(err) // policy came from the capability set
				}
				rows = append(rows, backendRow(d.Name, n.Name, p.String(), r))
			}
			// The full-system point: best policy + ISM PW-4. Only meaningful
			// for the stereo networks ISM serves.
			if d.Caps.ISM && stereoSet[n.Name] {
				best := d.Caps.Policies[len(d.Caps.Policies)-1]
				r, err := RunOnBackend(b, n, RunOptions{Policy: best, PW: 4, NonKey: nk})
				if err != nil {
					panic(err)
				}
				rows = append(rows, backendRow(d.Name, n.Name, best.String()+"+ism-pw4", r))
			}
		}
	}
	return rows
}

func backendRow(be, net, pol string, r Report) BackendRow {
	return BackendRow{
		Backend:  be,
		Net:      net,
		Policy:   pol,
		FPS:      r.FPS(),
		EnergyMJ: r.EnergyJ * 1e3,
		GMACs:    float64(r.MACs) / 1e9,
		DRAMMB:   float64(r.DRAMBytes) / (1024 * 1024),
	}
}

// ------------------------------------------------------------- Sec. 7.1

// ExperimentSec71 reproduces the hardware-overhead accounting.
func ExperimentSec71() hw.Overhead {
	return hw.ComputeOverhead(hw.Default().PEs())
}

// ------------------------------------------------------------- Sec. 3.3

// NonKeyCostRow summarizes the non-key-frame cost claim of Sec. 3.3.
type NonKeyCostRow struct {
	NonKeyMACs int64              // ours at qHD (paper: ~87e6)
	DNNRatio   map[string]float64 // DNN MACs / non-key MACs (paper: 1e2–1e4)
}

// ExperimentSec33 computes the qHD non-key cost and its ratio to each
// stereo DNN's inference cost.
func ExperimentSec33() NonKeyCostRow {
	p := core.New(nil, core.DefaultConfig())
	nonKey := p.NonKeyMACs(nn.QHDW, nn.QHDH)
	row := NonKeyCostRow{NonKeyMACs: nonKey, DNNRatio: map[string]float64{}}
	for _, n := range nn.StereoZoo(nn.QHDH, nn.QHDW) {
		row.DNNRatio[n.Name] = float64(n.TotalMACs()) / float64(nonKey)
	}
	return row
}

// ExperimentIndex lists every experiment with the paper artifact it
// regenerates; cmd/asvbench uses it for -list.
func ExperimentIndex() []string {
	return []string{
		"fig1: accuracy/FPS frontier (classic, DNN-GPU, DNN-Acc, ASV)",
		"fig3: FE/MO/DR operation distribution of the stereo DNNs",
		"fig4: depth-error sensitivity to disparity error (Bumblebee2)",
		"fig9: ISM accuracy vs DNNs (SceneFlow-like, KITTI-like; PW-2/PW-4)",
		"fig10: ISM/DCO/combined speedup and energy vs baseline accelerator",
		"fig11: DCT/ConvR/ILAR ablation (deconv-only and whole-network)",
		"fig12: DCO sensitivity to PE-array and buffer size (FlowNetC)",
		"fig13: ASV vs Eyeriss vs mobile GPU",
		"fig14: GANs — ASV vs GANNX (normalized to Eyeriss)",
		"backends: every registered backend x network zoo x supported policy",
		"sec71: hardware overhead of the ISM extensions",
		"sec33: non-key frame cost vs DNN inference cost",
		"ablation-me: motion-estimation algorithm choice (Sec 3.3)",
		"ablation-param: flow-scale and guided-search-radius trade-off",
		"ablation-key: static propagation windows vs adaptive control",
		"ablation-order: reuse-order (Equ. 7 beta) forced vs optimizer-chosen",
	}
}

// renderFloat formats experiment values compactly for tables.
func renderFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
