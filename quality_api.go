package asv

import (
	"asv/internal/quality"
)

// Quality-ladder facade: re-exports of internal/quality for commands and
// external users. The ladder unifies the matcher/fixed/PW/pyramid knobs
// into ordered operating points, priced offline into quality_ladder.json
// and served through overload by the ladder controller. See DESIGN.md §12.

// QualityOperatingPoint is one point in the accuracy/compute space.
type QualityOperatingPoint = quality.OperatingPoint

// QualityRung is a named operating point in a ladder.
type QualityRung = quality.Rung

// QualityLadder is an ordered list of rungs, most accurate first.
type QualityLadder = quality.Ladder

// QualityController is the EWMA latency model that picks serving rungs.
type QualityController = quality.Controller

// LadderPricing is the quality_ladder.json document: every rung scored in
// bad-pixel rates and MMACs per frame against the dataset oracle.
type LadderPricing = quality.Pricing

// LadderPriceConfig sizes an offline pricing run.
type LadderPriceConfig = quality.PriceConfig

// DefaultQualityLadder returns the committed five-rung ladder.
func DefaultQualityLadder() QualityLadder { return quality.DefaultLadder() }

// PriceQualityLadder replays a synthetic ground-truth sequence through
// every rung of l — the same executor the serving layer runs — and returns
// the priced document. top is the matcher the ladder's inheriting rungs
// use (the one the server would be configured with).
func PriceQualityLadder(l QualityLadder, top KeyMatcher, pc LadderPriceConfig) (LadderPricing, error) {
	return quality.Price(l, top, pc)
}

// NewQualityController builds a controller over a ladder of n rungs.
func NewQualityController(n int) *QualityController { return quality.NewController(n) }
