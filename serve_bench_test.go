package asv

import "testing"

// TestMeasureServeLoad runs a tiny two-phase serving benchmark over real
// loopback HTTP and checks the invariants the bench asserts for CI: no
// server-side failures, latency percentiles reported, and backpressure
// (429s) actually observed in the overload phase.
func TestMeasureServeLoad(t *testing.T) {
	doc, err := MeasureServeLoad(ServeBenchConfig{
		W: 48, H: 32, PW: 3, Sessions: 2, Frames: 5, QPS: 60,
	})
	if err != nil {
		t.Fatal(err)
	}

	if doc.Normal.Requests != 10 || doc.Normal.OK != 10 {
		t.Fatalf("normal phase lost requests: %+v", doc.Normal)
	}
	if doc.Normal.Status5xx != 0 || doc.Overload.Status5xx != 0 {
		t.Fatalf("5xx observed: normal %+v overload %+v", doc.Normal, doc.Overload)
	}
	if doc.Normal.P99Ms <= 0 || doc.Normal.P50Ms > doc.Normal.P99Ms {
		t.Fatalf("bad percentiles: %+v", doc.Normal)
	}
	if doc.Overload.Rejected == 0 {
		t.Fatalf("overload phase saw no backpressure: %+v", doc.Overload)
	}
	if doc.ServeCounters == nil {
		t.Fatal("serve counters missing from doc")
	}
	if got := doc.ServeCounters["frames_accepted"]; got != int64(10) {
		t.Fatalf("frames_accepted = %v, want 10", got)
	}
}
