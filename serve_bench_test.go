package asv

import "testing"

// TestMeasureServeLoad runs a tiny two-phase serving benchmark over real
// loopback HTTP and checks the invariants the bench asserts for CI: no
// server-side failures, latency percentiles reported, and backpressure
// (429s) actually observed in the overload phase.
func TestMeasureServeLoad(t *testing.T) {
	// ShardFrameMs is far above the ~1.5ms of real matching per paced
	// frame so the shards stay budget-bound even when the race detector
	// inflates compute ~10x — otherwise the scaling assertion below would
	// be measuring instrumentation overhead, not the gateway.
	doc, err := MeasureServeLoad(ServeBenchConfig{
		W: 48, H: 32, PW: 3, Sessions: 2, Frames: 5, QPS: 60,
		ShardFrameMs: 60, ShardSessions: 4, ShardFrames: 6,
	})
	if err != nil {
		t.Fatal(err)
	}

	if doc.Normal.Requests != 10 || doc.Normal.OK != 10 {
		t.Fatalf("normal phase lost requests: %+v", doc.Normal)
	}
	if doc.Normal.Status5xx != 0 || doc.Overload.Status5xx != 0 {
		t.Fatalf("5xx observed: normal %+v overload %+v", doc.Normal, doc.Overload)
	}
	if doc.Normal.P99Ms <= 0 || doc.Normal.P50Ms > doc.Normal.P99Ms {
		t.Fatalf("bad percentiles: %+v", doc.Normal)
	}
	if doc.Overload.Rejected == 0 {
		t.Fatalf("overload phase saw no backpressure: %+v", doc.Overload)
	}
	if doc.ServeCounters == nil {
		t.Fatal("serve counters missing from doc")
	}
	if got := doc.ServeCounters["frames_accepted"]; got != int64(10) {
		t.Fatalf("frames_accepted = %v, want 10", got)
	}

	ms := doc.MultiShard
	wantReq := 4 * 6
	if ms.OneShard.OK != wantReq || ms.TwoShard.OK != wantReq {
		t.Fatalf("multi-shard phase lost frames: 1-shard %+v, 2-shard %+v", ms.OneShard, ms.TwoShard)
	}
	if ms.OneShard.Status5xx != 0 || ms.TwoShard.Status5xx != 0 {
		t.Fatalf("multi-shard 5xx: 1-shard %+v, 2-shard %+v", ms.OneShard, ms.TwoShard)
	}
	// The committed-bench gate is 1.6x; here the phase is tiny and shares
	// the test runner with everything else, so assert only that adding a
	// shard helped at all — the deterministic id balancing and paced
	// matcher are what this checks, not the absolute number.
	if ms.ScaleX < 1.15 {
		t.Fatalf("2-shard scaling %.2fx; even a noisy run should beat 1.15x", ms.ScaleX)
	}
}
