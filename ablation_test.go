package asv

import "testing"

func TestMEAblationJustifiesFarneback(t *testing.T) {
	rows := ExperimentMEAblation(QuickScale())
	if len(rows) != 5 {
		t.Fatalf("expected 5 estimators, got %d", len(rows))
	}
	by := map[string]MEAblationRow{}
	for _, r := range rows {
		by[r.ME] = r
		if r.ErrorPct <= 0 || r.ErrorPct > 60 {
			t.Errorf("%s: implausible error %.2f%%", r.ME, r.ErrorPct)
		}
	}
	farneback := by["farneback/2"]
	block8 := by["block-8"]
	block16 := by["block-16"]
	hs := by["horn-schunck"]
	zero := by["zero"]
	// The robust Sec. 3.3 finding: the ±3 guided search absorbs moderate
	// motion-estimate error, so every *real* estimator lands in a tight
	// band, while skipping motion estimation entirely costs about a point.
	// (The paper's Farneback choice is then justified by cost and coverage,
	// not by a dramatic accuracy gap — see EXPERIMENTS.md.)
	dense := []MEAblationRow{farneback, block8, block16, hs}
	for _, a := range dense {
		if a.ErrorPct > farneback.ErrorPct+0.7 || farneback.ErrorPct > a.ErrorPct+0.7 {
			t.Errorf("%s (%.2f%%) strays from Farneback (%.2f%%) beyond the tie band",
				a.ME, a.ErrorPct, farneback.ErrorPct)
		}
		if zero.ErrorPct < a.ErrorPct+0.6 {
			t.Errorf("zero motion (%.2f%%) should clearly trail %s (%.2f%%)",
				zero.ErrorPct, a.ME, a.ErrorPct)
		}
	}
	if zero.MEMops != 0 {
		t.Error("zero motion must cost nothing")
	}
	// Cost separates the dense estimators: Farneback at half resolution is
	// far cheaper than converged Horn-Schunck.
	if farneback.MEMops*5 > hs.MEMops {
		t.Errorf("Farneback (%.1f MOps) should be >5x cheaper than Horn-Schunck (%.1f MOps)",
			farneback.MEMops, hs.MEMops)
	}
}

func TestISMParamAblationTradeoffs(t *testing.T) {
	rows := ExperimentISMParamAblation(QuickScale())
	if len(rows) != 9 {
		t.Fatalf("expected 9 rows, got %d", len(rows))
	}
	get := func(scale, rr int) ParamAblationRow {
		for _, r := range rows {
			if r.FlowScale == scale && r.RefineR == rr {
				return r
			}
		}
		t.Fatalf("missing row scale=%d rr=%d", scale, rr)
		return ParamAblationRow{}
	}
	// Cost knobs behave monotonically.
	if get(1, 3).NonKeyMops <= get(2, 3).NonKeyMops {
		t.Error("full-resolution flow must cost more than half-resolution")
	}
	if get(2, 5).NonKeyMops <= get(2, 1).NonKeyMops {
		t.Error("a wider guided search must cost more")
	}
	// A wider search never hurts accuracy materially at the same scale.
	if get(2, 5).ErrorPct > get(2, 1).ErrorPct+1.5 {
		t.Errorf("±5 search (%.2f%%) much worse than ±1 (%.2f%%)",
			get(2, 5).ErrorPct, get(2, 1).ErrorPct)
	}
	// Quarter-resolution flow costs the least among the same radius.
	if get(4, 3).NonKeyMops >= get(2, 3).NonKeyMops {
		t.Error("quarter-resolution flow should cost less than half-resolution")
	}
}

func TestKeyPolicyAblationShape(t *testing.T) {
	rows := ExperimentKeyPolicyAblation(QuickScale())
	if len(rows) != 4 {
		t.Fatalf("expected 4 policies, got %d", len(rows))
	}
	var static2, static6, adaptive KeyPolicyRow
	for _, r := range rows {
		switch r.Policy {
		case "static PW-2":
			static2 = r
		case "static PW-6":
			static6 = r
		case "adaptive":
			adaptive = r
		}
		if r.KeyRate <= 0 || r.KeyRate > 1 {
			t.Errorf("%s: key rate %.2f out of range", r.Policy, r.KeyRate)
		}
	}
	// More key frames, better accuracy.
	if static2.ErrorPct > static6.ErrorPct+0.5 {
		t.Errorf("PW-2 (%.2f%%) should not be worse than PW-6 (%.2f%%)",
			static2.ErrorPct, static6.ErrorPct)
	}
	// Adaptive sits inside the static envelope on both axes.
	if adaptive.KeyRate > static2.KeyRate+1e-9 {
		t.Errorf("adaptive key rate %.2f exceeds PW-2's %.2f", adaptive.KeyRate, static2.KeyRate)
	}
	if adaptive.ErrorPct > static6.ErrorPct+2 {
		t.Errorf("adaptive error %.2f%% far above PW-6's %.2f%%", adaptive.ErrorPct, static6.ErrorPct)
	}
}

func TestPublicMotionEstimatorsUsable(t *testing.T) {
	cfg := DefaultPipelineConfig()
	cfg.ME = BlockMotion{Block: 8, SearchR: 2}
	pipe := NewPipeline(nil, cfg)
	seq := GenerateSequence(SceneConfig{W: 96, H: 64, FrameCount: 2, Layers: 1,
		MinDisp: 2, MaxDisp: 10, Seed: 13})
	pipe.ProcessKey(seq.Frames[0].Left, seq.Frames[0].Right, seq.Frames[0].GT, 0)
	res := pipe.ProcessNonKey(seq.Frames[1].Left, seq.Frames[1].Right)
	if res.Disparity == nil {
		t.Fatal("pipeline with block motion produced no disparity")
	}
}

func TestPublicAdaptiveConfigUsable(t *testing.T) {
	cfg := DefaultPipelineConfig()
	ac := DefaultAdaptiveKeyConfig()
	cfg.Adaptive = &ac
	pipe := NewPipeline(nil, cfg)
	if !pipe.NextIsKey() {
		t.Fatal("first frame must be a key frame")
	}
}

func TestReuseOrderAblation(t *testing.T) {
	rows := ExperimentReuseOrderAblation()
	if len(rows) != 4 {
		t.Fatalf("expected 4 networks, got %d", len(rows))
	}
	for _, r := range rows {
		// Auto is the per-layer minimum, so it can never lose to either
		// forced order.
		if r.AutoMs > r.IfmapMs+1e-9 || r.AutoMs > r.WeightMs+1e-9 {
			t.Errorf("%s: auto (%.2fms) worse than a forced order (if %.2f, w %.2f)",
				r.Net, r.AutoMs, r.IfmapMs, r.WeightMs)
		}
		if r.AutoMs <= 0 {
			t.Errorf("%s: non-positive latency", r.Net)
		}
	}
}

func TestRectifyPublicAPI(t *testing.T) {
	seq := GenerateSequence(SceneConfig{W: 96, H: 64, FrameCount: 1, Layers: 1,
		MinDisp: 2, MaxDisp: 10, Seed: 71})
	fr := seq.Frames[0]
	in := DefaultIntrinsics(fr.Left.W, fr.Left.H)
	r := Rotation(0.02, 0, 0)
	captured := MisalignImage(fr.Right, in, r)
	fixed := RectifyImage(captured, in, r)
	if fixed.W != fr.Right.W || fixed.H != fr.Right.H {
		t.Fatal("rectified image has wrong size")
	}
	l2, r2 := RectifyPair(fr.Left, captured, in, Rotation(0, 0, 0), r)
	if l2 == nil || r2 == nil {
		t.Fatal("RectifyPair returned nil")
	}
}

func TestPostprocessPublicAPI(t *testing.T) {
	d := NewImage(8, 8)
	for i := range d.Pix {
		d.Pix[i] = 4
	}
	d.Set(3, 3, -1)
	if out := FillInvalidDisparity(d); out.At(3, 3) != 4 {
		t.Fatal("FillInvalidDisparity failed")
	}
	if out := MedianFilterDisparity(d, 1); out.At(0, 0) != 4 {
		t.Fatal("MedianFilterDisparity failed")
	}
	if out := SpeckleFilterDisparity(d, 1, 2); out.At(0, 0) != 4 {
		t.Fatal("SpeckleFilterDisparity failed")
	}
	if out := LeftRightCheck(d, d, 0.5); out == nil {
		t.Fatal("LeftRightCheck failed")
	}
}

func TestFixedPointPublicAPI(t *testing.T) {
	in := NewTensor(1, 4, 4)
	for i := range in.Data() {
		in.Data()[i] = float32(i) / 16
	}
	w := NewTensor(1, 1, 2, 2)
	w.Data()[0] = 0.5
	q := Quantize(in, 12)
	out := FixedConv2D(q, Quantize(w, 12), 1, 0)
	if out.Dim(1) != 3 || out.Dim(2) != 3 {
		t.Fatal("FixedConv2D shape wrong")
	}
}

func TestSystolicGridPublicAPI(t *testing.T) {
	g := NewSystolicGrid(4, 4)
	in := NewTensor(1, 5, 5)
	w := NewTensor(2, 1, 3, 3)
	w.Data()[4] = 1 // center tap of filter 0
	out := g.Conv2D(in, w, 1, 1)
	if out.Dim(0) != 2 {
		t.Fatal("grid Conv2D shape wrong")
	}
}
