package asv

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`); cmd/asvbench renders the
// same experiments as tables. Headline values are attached to each
// benchmark via ReportMetric so `-bench` output doubles as a results sheet.
//
// The second half of the file benchmarks the functional kernels themselves
// (stereo matching, optical flow, the deconvolution transformation and the
// scheduler), which is what a user adopting the library will care about.

import (
	"testing"

	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/deconv"
	"asv/internal/flow"
	"asv/internal/hw"
	"asv/internal/imgproc"
	"asv/internal/nn"
	"asv/internal/pipeline"
	"asv/internal/schedule"
	"asv/internal/stereo"
	"asv/internal/tensor"
)

// ----------------------------------------------------------- experiments

func BenchmarkFig1_Frontier(b *testing.B) {
	var asvFPS float64
	for i := 0; i < b.N; i++ {
		pts := ExperimentFig1(QuickScale())
		for _, p := range pts {
			if p.Class == "asv" {
				asvFPS = p.FPS
			}
		}
	}
	b.ReportMetric(asvFPS, "asv-fps")
}

func BenchmarkFig3_OpDistribution(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		rows := ExperimentFig3()
		avg = 0
		for _, r := range rows {
			avg += r.DeconvPct
		}
		avg /= float64(len(rows))
	}
	b.ReportMetric(avg, "deconv-share-%")
}

func BenchmarkFig4_DepthSensitivity(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		for _, p := range ExperimentFig4() {
			if p.DepthErrM > worst {
				worst = p.DepthErrM
			}
		}
	}
	b.ReportMetric(worst, "max-depth-err-m")
}

func BenchmarkFig9_Accuracy(b *testing.B) {
	var pw4Gap float64
	for i := 0; i < b.N; i++ {
		rows := ExperimentFig9(QuickScale())
		byKey := map[string]float64{}
		for _, r := range rows {
			byKey[r.Dataset+r.Net+r.Mode] = r.ErrorPct
		}
		pw4Gap = 0
		for _, net := range []string{"FlowNetC", "DispNet", "GC-Net", "PSMNet"} {
			pw4Gap += byKey["SceneFlow"+net+"PW-4"] - byKey["SceneFlow"+net+"DNN"]
		}
		pw4Gap /= 4
	}
	b.ReportMetric(pw4Gap, "pw4-accuracy-gap-%")
}

func BenchmarkFig10_SpeedupEnergy(b *testing.B) {
	var sp, en float64
	for i := 0; i < b.N; i++ {
		sp, en = 0, 0
		for _, r := range ExperimentFig10() {
			if r.Variant == "DCO+ISM" {
				sp += r.Speedup
				en += r.EnergyRedPct
			}
		}
		sp /= 4
		en /= 4
	}
	b.ReportMetric(sp, "speedup-x")
	b.ReportMetric(en, "energy-red-%")
}

func BenchmarkFig11_DeconvOpt(b *testing.B) {
	var dct2d float64
	for i := 0; i < b.N; i++ {
		for _, r := range ExperimentFig11() {
			if r.Net == "DispNet" && r.Opt == "DCT" {
				dct2d = r.DeconvSpeedup
			}
		}
	}
	b.ReportMetric(dct2d, "dct-deconv-speedup-x")
}

func BenchmarkFig12_Sensitivity(b *testing.B) {
	var mn, mx float64
	for i := 0; i < b.N; i++ {
		g := ExperimentFig12()
		mn, mx = 99, 0
		for _, row := range g.Speedup {
			for _, s := range row {
				if s < mn {
					mn = s
				}
				if s > mx {
					mx = s
				}
			}
		}
	}
	b.ReportMetric(mn, "min-speedup-x")
	b.ReportMetric(mx, "max-speedup-x")
}

func BenchmarkFig13_Baselines(b *testing.B) {
	var both float64
	for i := 0; i < b.N; i++ {
		for _, r := range ExperimentFig13() {
			if r.System == "ASV-DCO+ISM" {
				both = r.Speedup
			}
		}
	}
	b.ReportMetric(both, "vs-eyeriss-x")
}

func BenchmarkFig14_GAN(b *testing.B) {
	var asvSp, gxSp float64
	for i := 0; i < b.N; i++ {
		asvSp, gxSp = 0, 0
		for _, r := range ExperimentFig14() {
			asvSp += r.ASVSpeedup
			gxSp += r.GANNXSpeedup
		}
		asvSp /= 6
		gxSp /= 6
	}
	b.ReportMetric(asvSp, "asv-x")
	b.ReportMetric(gxSp, "gannx-x")
}

func BenchmarkSec71_Overhead(b *testing.B) {
	var area float64
	for i := 0; i < b.N; i++ {
		area = ExperimentSec71().TotalAreaPct
	}
	b.ReportMetric(area, "area-overhead-%")
}

func BenchmarkSec33_NonKeyOps(b *testing.B) {
	var mops float64
	for i := 0; i < b.N; i++ {
		mops = float64(ExperimentSec33().NonKeyMACs) / 1e6
	}
	b.ReportMetric(mops, "nonkey-mops")
}

// --------------------------------------------------------------- kernels

func benchFrame(b *testing.B, w, h int) dataset.FramePair {
	b.Helper()
	seq := dataset.Generate(dataset.SceneConfig{
		W: w, H: h, FrameCount: 2, Layers: 2,
		MinDisp: 2, MaxDisp: 16, MaxVel: 1, Seed: 77,
	})
	return seq.Frames[0]
}

func BenchmarkKernelSGM(b *testing.B) {
	fr := benchFrame(b, 160, 96)
	opt := stereo.DefaultSGMOptions()
	opt.MaxDisp = 32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stereo.SGM(fr.Left, fr.Right, opt)
	}
}

func BenchmarkKernelBlockMatch(b *testing.B) {
	fr := benchFrame(b, 160, 96)
	opt := stereo.DefaultBMOptions()
	opt.MaxDisp = 32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stereo.Match(fr.Left, fr.Right, opt)
	}
}

func BenchmarkKernelGuidedRefine(b *testing.B) {
	fr := benchFrame(b, 160, 96)
	init := fr.GT.Clone()
	opt := stereo.DefaultBMOptions()
	opt.BlockR = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stereo.Refine(fr.Left, fr.Right, init, 3, opt)
	}
}

func BenchmarkKernelFarneback(b *testing.B) {
	seq := dataset.Generate(dataset.SceneConfig{
		W: 160, H: 96, FrameCount: 2, Layers: 2,
		MinDisp: 2, MaxDisp: 16, MaxVel: 1.5, Seed: 78,
	})
	opt := flow.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flow.Farneback(seq.Frames[0].Left, seq.Frames[1].Left, opt)
	}
}

func BenchmarkKernelGaussianBlur(b *testing.B) {
	im := imgproc.NewImage(320, 180)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imgproc.GaussianBlur(im, 1.5)
	}
}

func BenchmarkKernelDeconvReference(b *testing.B) {
	in := tensor.Rand(1, 16, 24, 24)
	w := tensor.Rand(2, 16, 16, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Deconv2D(in, w, 2, 2)
	}
}

func BenchmarkKernelDeconvTransformed(b *testing.B) {
	in := tensor.Rand(1, 16, 24, 24)
	w := tensor.Rand(2, 16, 16, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deconv.Transformed2D(in, w, 2)
	}
}

func BenchmarkKernelISMNonKeyFrame(b *testing.B) {
	seq := dataset.Generate(dataset.SceneConfig{
		W: 160, H: 96, FrameCount: 8, Layers: 2,
		MinDisp: 2, MaxDisp: 16, MaxVel: 1, Seed: 79,
	})
	cfg := core.DefaultConfig()
	cfg.PW = 1 << 30 // never re-key during the benchmark
	m := core.SGMMatcher{Opt: stereo.DefaultSGMOptions()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pipe := core.New(m, cfg)
		pipe.ProcessKey(seq.Frames[0].Left, seq.Frames[0].Right, seq.Frames[0].GT, 0)
		b.StartTimer()
		for _, fr := range seq.Frames[1:] {
			pipe.ProcessNonKey(fr.Left, fr.Right)
		}
	}
}

// ---------------------------------------------------- streaming pipeline

// benchStreamSetup builds the stereo video and ISM configuration shared by
// the serial and streaming throughput benchmarks.
func benchStreamSetup(b *testing.B) ([]pipeline.Frame, core.KeyMatcher, core.Config) {
	b.Helper()
	seq := dataset.Generate(dataset.SceneConfig{
		W: 160, H: 96, FrameCount: 12, Layers: 3,
		MinDisp: 2, MaxDisp: 18, MaxVel: 1.5, MaxDispVel: 0.3,
		Ground: true, Noise: 0.01, Seed: 81,
	})
	frames := make([]pipeline.Frame, len(seq.Frames))
	for i, fr := range seq.Frames {
		frames[i] = pipeline.Frame{Left: fr.Left, Right: fr.Right}
	}
	opt := stereo.DefaultSGMOptions()
	opt.MaxDisp = 24
	return frames, core.SGMMatcher{Opt: opt}, core.DefaultConfig()
}

// BenchmarkPipelineSerial is the reference: frames strictly one at a time
// through the stateful core pipeline.
func BenchmarkPipelineSerial(b *testing.B) {
	frames, matcher, cfg := benchStreamSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.New(matcher, cfg)
		for _, fr := range frames {
			p.Process(fr.Left, fr.Right)
		}
	}
	b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkPipelineStreaming runs the same stream through the concurrent
// runtime; compare frames/s against BenchmarkPipelineSerial for the
// pipelining win (bit-identical output, see internal/pipeline's golden
// test).
func BenchmarkPipelineStreaming(b *testing.B) {
	frames, matcher, cfg := benchStreamSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipeline.StreamFrames(matcher, cfg, frames, pipeline.Options{})
	}
	b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkSchedulerOptimizeLayer(b *testing.B) {
	l := nn.Layer{Name: "deconv", Kind: nn.KindDeconv, InC: 256, InD: 1,
		InH: 68, InW: 120, OutC: 256, KD: 1, KH: 4, KW: 4, Stride: 2, Pad: 2}
	spec := schedule.TransformedSpec(l)
	cfg := hw.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		schedule.Evaluate(spec, cfg, schedule.Options{ILAR: true})
	}
}

func BenchmarkSchedulerWholeNetwork(b *testing.B) {
	n := nn.FlowNetC(nn.QHDH, nn.QHDW)
	acc := DefaultAccelerator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.RunNetwork(n, RunOptions{Policy: PolicyILAR})
	}
}

func BenchmarkSchedulerStaticPartitionSearch(b *testing.B) {
	specs := schedule.NetworkSpecs(nn.DispNet(nn.QHDH, nn.QHDW), false)
	cfg := hw.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		schedule.BestStaticPartition(specs, cfg)
	}
}

func BenchmarkDatasetGenerate(b *testing.B) {
	cfg := dataset.SceneConfig{
		W: 160, H: 96, FrameCount: 2, Layers: 3,
		MinDisp: 2, MaxDisp: 20, MaxVel: 1.5, Ground: true, Seed: 80,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed++
		dataset.Generate(cfg)
	}
}

func BenchmarkAblationME(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		rows := ExperimentMEAblation(QuickScale())
		by := map[string]float64{}
		for _, r := range rows {
			by[r.ME] = r.ErrorPct
		}
		gap = by["zero"] - by["farneback/2"]
	}
	b.ReportMetric(gap, "zero-vs-farneback-err-%")
}

func BenchmarkAblationParams(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		rows := ExperimentISMParamAblation(QuickScale())
		lo, hi := 1e18, 0.0
		for _, r := range rows {
			if r.NonKeyMops < lo {
				lo = r.NonKeyMops
			}
			if r.NonKeyMops > hi {
				hi = r.NonKeyMops
			}
		}
		spread = hi / lo
	}
	b.ReportMetric(spread, "cost-spread-x")
}

func BenchmarkAblationKeyPolicy(b *testing.B) {
	var adaptiveRate float64
	for i := 0; i < b.N; i++ {
		for _, r := range ExperimentKeyPolicyAblation(QuickScale()) {
			if r.Policy == "adaptive" {
				adaptiveRate = r.KeyRate
			}
		}
	}
	b.ReportMetric(adaptiveRate, "adaptive-key-rate")
}
