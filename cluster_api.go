package asv

import (
	"asv/internal/cluster"
	"asv/internal/serve"
)

// Cluster facade: re-exports of the internal/cluster types that commands and
// external users need to run the sharded serving tier. See DESIGN.md §10
// "Sharded serving".

// ClusterShard names one asvserve backend and where to reach it.
type ClusterShard = cluster.Shard

// ClusterConfig parameterizes a gateway (shard set, vnode replicas, health
// probing cadence).
type ClusterConfig = cluster.Config

// ClusterGateway is the stateless routing tier: it consistent-hashes session
// ids onto shards, fails over around dead ones, and migrates sessions via
// the snapshot/restore API on drain.
type ClusterGateway = cluster.Gateway

// ClusterRing is the consistent-hash ring the gateway routes with, exported
// so tooling (e.g. the bench's balanced-id picker) can predict placement.
type ClusterRing = cluster.Ring

// ClusterDrainReport summarizes one drain operation.
type ClusterDrainReport = cluster.DrainReport

// ServeClusterLoadReport is a cluster-mode load run: per-target reports plus
// an aggregate whose percentiles cover the merged sample set.
type ServeClusterLoadReport = serve.ClusterLoadReport

// RunServeLoadCluster fans the configured workload out over every target
// concurrently and merges the results; see ServeClusterLoadReport.
func RunServeLoadCluster(cfg ServeLoadConfig, targets []string) (ServeClusterLoadReport, error) {
	return serve.RunLoadCluster(cfg, targets)
}

// NewClusterGateway builds a gateway over the configured shards. Call Start
// to bind a listener and Close to stop.
func NewClusterGateway(cfg ClusterConfig) (*ClusterGateway, error) {
	return cluster.New(cfg)
}

// NewClusterRing builds a consistent-hash ring over the named shards;
// replicas < 1 selects the default vnode count.
func NewClusterRing(shards []string, replicas int) *ClusterRing {
	return cluster.NewRing(shards, replicas)
}
