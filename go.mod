module asv

go 1.22
