// Ganopt: apply ASV's deconvolution optimizations to a GAN generator
// (paper Sec. 7.6). The example shows the three layers of the story:
//
//  1. the functional transformation is exact — a stride-2 deconvolution
//     decomposed into dense sub-convolutions returns the same tensor;
//  2. it deletes ~75% of the MACs of every 2-D deconvolution; and
//  3. on the accelerator model the full optimization (transformation +
//     ILAR scheduling) beats both the naive baseline and a GANNX-class
//     dedicated deconvolution accelerator.
package main

import (
	"fmt"
	"math"

	"asv"
)

func main() {
	// 1. Exactness on a DCGAN-shaped layer (512 -> 256 channels, 4x4
	// kernel, stride 2), shrunk spatially to keep the demo instant.
	in := asv.NewTensor(64, 8, 8)
	for i := range in.Data() {
		in.Data()[i] = float32(math.Sin(float64(i) * 0.37))
	}
	k := asv.NewTensor(32, 64, 4, 4)
	for i := range k.Data() {
		k.Data()[i] = float32(math.Cos(float64(i) * 0.11))
	}
	const pad = 2 // transposed-conv padding 1 for a 4x4 kernel
	ref := asv.Deconv2D(in, k, 2, pad)
	got := asv.TransformedDeconv2D(in, k, pad)
	var maxDiff float64
	for i := range ref.Data() {
		if d := math.Abs(float64(ref.Data()[i] - got.Data()[i])); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("transformation exactness: max |Δ| = %.2g over %d outputs\n\n",
		maxDiff, ref.Len())

	// 2. MAC reduction per layer of the real DCGAN generator.
	dcgan := asv.GANs()[0]
	fmt.Println("DCGAN layer          naive-MMACs  effective-MMACs  saved")
	for _, l := range dcgan.Layers {
		naive := l.MACs()
		eff := asv.EffectiveMACs(l)
		fmt.Printf("%-20s %11.1f  %15.1f  %4.0f%%\n",
			l.Name, float64(naive)/1e6, float64(eff)/1e6,
			100*(1-float64(eff)/float64(naive)))
	}

	// 3. End-to-end on the accelerator models.
	acc := asv.DefaultAccelerator()
	eye := asv.DefaultEyeriss()
	gx := asv.DefaultGANNX()
	fmt.Println("\nsystem                per-inference     vs Eyeriss")
	ref2 := eye.RunNetwork(dcgan, asv.RunOptions{Policy: asv.PolicyBaseline})
	for _, row := range []struct {
		name string
		rep  asv.Report
	}{
		{"Eyeriss", ref2},
		{"GANNX (dedicated HW)", gx.RunNetwork(dcgan, asv.RunOptions{})},
		{"ASV baseline", acc.RunNetwork(dcgan, asv.RunOptions{Policy: asv.PolicyBaseline})},
		{"ASV + DCT", acc.RunNetwork(dcgan, asv.RunOptions{Policy: asv.PolicyDCT})},
		{"ASV + DCT + ILAR", acc.RunNetwork(dcgan, asv.RunOptions{Policy: asv.PolicyILAR})},
	} {
		fmt.Printf("%-21s %9.3f ms     %5.2fx\n",
			row.name, row.rep.Seconds*1e3, ref2.Seconds/row.rep.Seconds)
	}
	fmt.Println("\nASV's software-only pipeline outruns the purpose-built GANNX")
	fmt.Println("hardware because the transformation exposes inter-layer")
	fmt.Println("activation reuse that dedicated zero-skipping cannot see.")
}
