// Depthstream: run the full ISM pipeline over a stereo video and sweep the
// propagation window, reproducing the paper's central trade-off (Sec. 3,
// Fig. 9): key frames pay for an expensive high-accuracy matcher, non-key
// frames ride the correspondence invariant for a tiny fraction of the
// compute, and accuracy degrades only slightly as the window widens.
//
// The sweep runs on the concurrent streaming runtime (bit-identical to the
// serial Pipeline) and finishes with the runtime's per-stage metrics dump.
package main

import (
	"fmt"
	"os"

	"asv"
)

func main() {
	w, h, frames := 192, 120, 12
	// ASV_SMOKE shrinks the demo so CI can run every example quickly.
	if os.Getenv("ASV_SMOKE") != "" {
		w, h, frames = 96, 64, 6
	}
	sgmOpt := asv.DefaultSGMOptions()
	sgmOpt.MaxDisp = 28

	fmt.Printf("ISM over a %d-frame %dx%d stereo stream (key matcher: SGM, streaming runtime)\n\n", frames, w, h)
	fmt.Println("window   mean-err-%   GOps/frame   saving")

	reg := asv.NewMetrics()
	var baseOps float64
	for _, pw := range []int{1, 2, 4, 6} {
		cfg := asv.DefaultPipelineConfig()
		cfg.PW = pw

		// Regenerate the same scene for every window so results compare.
		seq := asv.GenerateSequence(asv.SceneConfig{
			W: w, H: h, FrameCount: frames,
			Layers: 3, MinDisp: 2, MaxDisp: 22,
			MaxVel: 1.5, MaxDispVel: 0.3, Ground: true, Noise: 0.01,
			Seed: 99,
		})
		in := make([]asv.StreamFrame, len(seq.Frames))
		for i, fr := range seq.Frames {
			in[i] = asv.StreamFrame{Left: fr.Left, Right: fr.Right}
		}

		var errSum float64
		var macs int64
		for _, res := range asv.StreamDepthFrames(asv.SGMKeyMatcher{Opt: sgmOpt}, cfg, in,
			asv.StreamOptions{Metrics: reg}) {
			errSum += asv.ThreePixelError(res.Disparity, seq.Frames[res.Index].GT)
			macs += res.MACs
		}
		opsPerFrame := float64(macs) / float64(frames) / 1e9
		if pw == 1 {
			baseOps = opsPerFrame
		}
		fmt.Printf("PW-%-4d  %8.2f   %10.3f   %5.1fx\n",
			pw, errSum/float64(frames), opsPerFrame, baseOps/opsPerFrame)
	}

	fmt.Println("\nPW-1 runs the key matcher on every frame; wider windows trade a")
	fmt.Println("little accuracy for an arithmetic saving. With this cheap SGM key")
	fmt.Println("matcher the saving is modest; a stereo-DNN key matcher costs")
	fmt.Println("10^2-10^4x a non-key frame (Sec. 3.3), so the saving approaches")
	fmt.Println("the window size itself - the regime of the paper's Fig. 10.")

	fmt.Printf("\nper-stage metrics across all four sweeps:\n%s", reg.Dump())
}
