// Quickstart: generate a synthetic stereo pair, estimate disparity with
// semi-global matching, and triangulate it into metric depth — the minimal
// "depth from stereo" loop the ASV paper builds on (Sec. 2.2).
package main

import (
	"fmt"

	"asv"
)

func main() {
	// A small scene: textured background plus two foreground objects.
	seq := asv.GenerateSequence(asv.SceneConfig{
		W: 160, H: 96, FrameCount: 1,
		Layers: 2, MinDisp: 2, MaxDisp: 18,
		Seed: 2024,
	})
	frame := seq.Frames[0]

	// Stereo matching: left + right image -> disparity map.
	opt := asv.DefaultSGMOptions()
	opt.MaxDisp = 24
	disparity := asv.SGM(frame.Left, frame.Right, opt)

	// How good is it? The generator provides exact ground truth.
	fmt.Printf("three-pixel error: %.2f%%\n", asv.ThreePixelError(disparity, frame.GT))
	fmt.Printf("mean abs error:    %.3f px\n", asv.MeanAbsDisparityError(disparity, frame.GT))

	// Triangulation: disparity -> metric depth (Equ. 1 of the paper),
	// using the Bumblebee2 camera intrinsics from Fig. 4.
	cam := asv.Bumblebee2()
	depth := cam.DepthMap(disparity)
	cx, cy := depth.W/2, depth.H/2
	fmt.Printf("disparity at image center: %.2f px -> depth %.2f m\n",
		disparity.At(cx, cy), depth.At(cx, cy))

	// The sensitivity the paper warns about: a fifth of a pixel of
	// disparity error moves a 30 m object by metres.
	fmt.Printf("depth error at 30 m for 0.2 px disparity error: %.2f m\n",
		cam.DepthError(30, 0.2))
}
