// Smoke test (ISSUE 5): every example program must build and run to
// completion with ASV_SMOKE=1 (which shrinks the heavier demos). The
// examples are the repo's living documentation; a broken one is a broken
// doc. Skipped under -short, run by the CI coverage step.
package examples

import (
	"os"
	"os/exec"
	"testing"
)

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke builds and runs every example; skipped with -short")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		ran++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Dir = ".."
			cmd.Env = append(os.Environ(), "ASV_SMOKE=1")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no example directories found")
	}
}
