// Designspace: explore how ASV's deconvolution optimizations respond to
// the accelerator's resource budget (paper Sec. 7.4, Fig. 12). The example
// sweeps the PE array and on-chip buffer, printing the DCO speedup and
// energy reduction normalized to each configuration's own baseline —
// demonstrating that the optimizations are not tuned to one design point.
package main

import (
	"fmt"

	"asv"
)

func main() {
	net := asv.StereoDNNs(asv.QHDH, asv.QHDW)[0] // FlowNetC, as in the paper
	pes := []int{8, 16, 24, 32, 48}
	bufsMB := []float64{0.5, 1.5, 3.0}

	fmt.Printf("DCO speedup / energy reduction on %s, per configuration\n\n", net.Name)
	fmt.Printf("%8s", "buf\\PE")
	for _, pe := range pes {
		fmt.Printf("  %7dx%-2d", pe, pe)
	}
	fmt.Println()

	for _, mb := range bufsMB {
		fmt.Printf("%7.1fM", mb)
		for _, pe := range pes {
			cfg := asv.DefaultHW()
			cfg.PEsX, cfg.PEsY = pe, pe
			cfg.BufBytes = int64(mb * 1024 * 1024)
			acc := asv.NewAccelerator(cfg, asv.DefaultEnergyModel())
			base := acc.RunNetwork(net, asv.RunOptions{Policy: asv.PolicyBaseline})
			dco := acc.RunNetwork(net, asv.RunOptions{Policy: asv.PolicyILAR})
			fmt.Printf("  %4.2fx/%2.0f%%",
				float64(base.Cycles)/float64(dco.Cycles),
				100*(1-dco.EnergyJ/base.EnergyJ))
		}
		fmt.Println()
	}

	fmt.Println("\nThe gains hold across the design space (paper: 1.2-1.5x and")
	fmt.Println("25-35% across PE arrays from 8x8 to 56x56 and buffers to 3 MB).")
}
