// Rectifydrift: stereo rigs drift out of calibration in the field (thermal
// flex, vibration). This example shows what a small rotation of one camera
// does to stereo matching, and how software rectification restores it —
// the preprocessing every depth-from-stereo system, including ASV, sits on
// top of (the paper's Equ. 2 assumes y_r = y_l).
package main

import (
	"fmt"

	"asv"
)

func main() {
	seq := asv.GenerateSequence(asv.SceneConfig{
		W: 160, H: 100, FrameCount: 1,
		Layers: 2, MinDisp: 2, MaxDisp: 16, Seed: 31,
	})
	fr := seq.Frames[0]
	in := asv.DefaultIntrinsics(fr.Left.W, fr.Left.H)

	opt := asv.DefaultSGMOptions()
	opt.MaxDisp = 20
	measure := func(right *asv.Image) float64 {
		return asv.ThreePixelError(asv.SGM(fr.Left, right, opt), fr.GT)
	}

	fmt.Println("right-camera roll   raw error-%   rectified error-%")
	for _, rollDeg := range []float64{0, 0.5, 1.0, 2.0} {
		r := asv.Rotation(rollDeg*3.14159/180, 0, 0)
		captured := asv.MisalignImage(fr.Right, in, r)
		raw := measure(captured)
		fixed := measure(asv.RectifyImage(captured, in, r))
		fmt.Printf("%10.1f°        %8.2f      %8.2f\n", rollDeg, raw, fixed)
	}

	fmt.Println("\nEven one degree of roll breaks the rows-correspond assumption that")
	fmt.Println("every stereo matcher relies on; rectification restores it in software.")
}
