package asv

import (
	"asv/internal/rectify"
	"asv/internal/stereo"
)

// Stereo rectification (the geometric preprocessing Equ. 2 assumes) and
// disparity-map post-processing.

// Mat3 is a row-major 3×3 matrix used for rotations and homographies.
type Mat3 = rectify.Mat3

// Intrinsics is a pinhole camera's focal lengths and principal point.
type Intrinsics = rectify.Intrinsics

// DefaultIntrinsics centers the principal point with a ~53° FoV.
func DefaultIntrinsics(w, h int) Intrinsics { return rectify.DefaultIntrinsics(w, h) }

// Rotation builds a rotation matrix from roll/pitch/yaw (radians).
func Rotation(roll, pitch, yaw float64) Mat3 { return rectify.Rotation(roll, pitch, yaw) }

// RectifyImage corrects a camera image rotated by r relative to the
// rectified frame.
func RectifyImage(captured *Image, in Intrinsics, r Mat3) *Image {
	return rectify.Rectify(captured, in, r)
}

// RectifyPair corrects both views of a stereo pair.
func RectifyPair(left, right *Image, in Intrinsics, rl, rr Mat3) (*Image, *Image) {
	return rectify.RectifyPair(left, right, in, rl, rr)
}

// MisalignImage simulates the view of a camera rotated by r — useful for
// testing rectification pipelines against known misalignment.
func MisalignImage(rectified *Image, in Intrinsics, r Mat3) *Image {
	return rectify.Misalign(rectified, in, r)
}

// MedianFilterDisparity applies a validity-aware (2r+1)² median.
func MedianFilterDisparity(d *Image, r int) *Image { return stereo.MedianFilter(d, r) }

// SpeckleFilterDisparity invalidates connected disparity regions smaller
// than minRegion pixels.
func SpeckleFilterDisparity(d *Image, maxDiff float32, minRegion int) *Image {
	return stereo.SpeckleFilter(d, maxDiff, minRegion)
}

// FillInvalidDisparity densifies a map by background extension.
func FillInvalidDisparity(d *Image) *Image { return stereo.FillInvalid(d) }

// LeftRightCheck invalidates disparities failing the consistency test.
func LeftRightCheck(dispL, dispR *Image, tol float64) *Image {
	return stereo.LeftRightCheck(dispL, dispR, tol)
}
