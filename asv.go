// Package asv is a from-scratch reproduction of "ASV: Accelerated Stereo
// Vision System" (Feng, Whatmough, Zhu — MICRO 2019): a software/hardware
// co-designed stereo vision system that combines
//
//   - ISM, invariant-based stereo matching, which runs an expensive
//     high-accuracy matcher only on key frames and propagates its
//     correspondences to the frames in between with dense optical flow and
//     a cheap guided block-matching search (paper Sec. 3);
//
//   - a deconvolution-to-convolution transformation that removes the
//     sparsity-induced waste of stride-2 deconvolutions without hardware
//     changes (Sec. 4.1); and
//
//   - a constrained-optimization dataflow scheduler that exploits the
//     inter-layer activation reuse (ILAR) the transformation exposes
//     (Sec. 4.2);
//
// together with the analytic accelerator models (systolic array, Eyeriss-
// class spatial array, mobile GPU, GANNX-class deconvolution accelerator)
// used to reproduce every figure of the paper's evaluation. See DESIGN.md
// for the system inventory and EXPERIMENTS.md for paper-vs-measured
// results.
//
// The functional algorithms (stereo matching, optical flow, the tensor
// operators and the transformation) are real implementations verified by
// tests; the performance and energy numbers come from the analytic models,
// exactly as the paper's own evaluation is simulator-based.
package asv

import (
	"asv/internal/core"
	"asv/internal/flow"
	"asv/internal/imgproc"
	"asv/internal/stereo"
)

// Image is a single-channel float32 raster, the pixel container used
// throughout the library.
type Image = imgproc.Image

// NewImage returns a zero-filled w×h image.
func NewImage(w, h int) *Image { return imgproc.NewImage(w, h) }

// FromPix wraps a copy of pix as a w×h image.
func FromPix(pix []float32, w, h int) *Image { return imgproc.FromPix(pix, w, h) }

// ISM pipeline (the paper's primary contribution).

// Pipeline is the stateful ISM engine; create one per stereo stream with
// NewPipeline and feed frames in order.
type Pipeline = core.Pipeline

// PipelineConfig tunes ISM (propagation window, flow options, guided-search
// radius).
type PipelineConfig = core.Config

// Result is one processed stereo pair.
type FrameResult = core.Result

// KeyMatcher produces disparity maps on key frames.
type KeyMatcher = core.KeyMatcher

// SGMKeyMatcher adapts semi-global matching as the key-frame matcher.
type SGMKeyMatcher = core.SGMMatcher

// BMKeyMatcher adapts full-search block matching as the key-frame matcher.
type BMKeyMatcher = core.BMMatcher

// OracleKeyMatcher emulates a trained stereo DNN at a published error rate
// (see DESIGN.md, substitutions).
type OracleKeyMatcher = core.OracleMatcher

// DefaultPipelineConfig returns the evaluation configuration: PW-4,
// half-resolution Farneback flow, ±3 guided search.
func DefaultPipelineConfig() PipelineConfig { return core.DefaultConfig() }

// NewPipeline returns an ISM pipeline using matcher on key frames.
func NewPipeline(matcher KeyMatcher, cfg PipelineConfig) *Pipeline {
	return core.New(matcher, cfg)
}

// Classic stereo matching.

// Camera models a stereo rig for triangulation.
type Camera = stereo.Camera

// Bumblebee2 returns the industry-standard rig of the paper's Fig. 4.
func Bumblebee2() Camera { return stereo.Bumblebee2() }

// BMOptions configures SAD block matching.
type BMOptions = stereo.BMOptions

// SGMOptions configures semi-global matching.
type SGMOptions = stereo.SGMOptions

// DefaultBMOptions returns the evaluation block-matching configuration.
func DefaultBMOptions() BMOptions { return stereo.DefaultBMOptions() }

// DefaultSGMOptions returns the evaluation SGM configuration.
func DefaultSGMOptions() SGMOptions { return stereo.DefaultSGMOptions() }

// BlockMatch computes a disparity map by full-search SAD block matching.
func BlockMatch(left, right *Image, opt BMOptions) *Image {
	return stereo.Match(left, right, opt)
}

// SGM computes a disparity map by semi-global matching.
func SGM(left, right *Image, opt SGMOptions) *Image {
	return stereo.SGM(left, right, opt)
}

// GuidedRefine performs ISM's ±searchR guided correspondence search around
// an initial disparity estimate.
func GuidedRefine(left, right, init *Image, searchR int, opt BMOptions) *Image {
	return stereo.Refine(left, right, init, searchR, opt)
}

// ThreePixelError returns the percentage of pixels whose disparity is more
// than three pixels off ground truth (the paper's accuracy metric).
func ThreePixelError(est, gt *Image) float64 { return stereo.ThreePixelError(est, gt) }

// MeanAbsDisparityError returns the mean absolute disparity error over
// valid ground-truth pixels.
func MeanAbsDisparityError(est, gt *Image) float64 { return stereo.MeanAbsError(est, gt) }

// Dense optical flow.

// FlowField is a dense per-pixel motion field.
type FlowField = flow.Field

// FlowOptions configures the Farneback estimator.
type FlowOptions = flow.Options

// DefaultFlowOptions returns the evaluation flow configuration.
func DefaultFlowOptions() FlowOptions { return flow.DefaultOptions() }

// Farneback estimates dense motion from prev to next (the paper's
// motion-estimation choice, Sec. 3.3).
func Farneback(prev, next *Image, opt FlowOptions) FlowField {
	return flow.Farneback(prev, next, opt)
}

// Adaptive key-frame control (extension; paper Sec. 5.2 notes feasibility).

// AdaptiveKeyConfig tunes the motion-triggered key-frame controller.
type AdaptiveKeyConfig = core.AdaptiveConfig

// DefaultAdaptiveKeyConfig returns the evaluated controller settings.
func DefaultAdaptiveKeyConfig() AdaptiveKeyConfig { return core.DefaultAdaptiveConfig() }

// Pluggable motion estimation (Sec. 3.3 design-decision ablation).

// MotionEstimator abstracts ISM's propagation motion source.
type MotionEstimator = core.MotionEstimator

// FarnebackMotion is the paper's dense-flow estimator.
type FarnebackMotion = core.FarnebackME

// BlockMotion is block-matching motion estimation (per-block vectors).
type BlockMotion = core.BlockME

// ZeroMotion assumes a static scene.
type ZeroMotion = core.ZeroME

// CVFOptions configures cost-volume-filtering stereo matching.
type CVFOptions = stereo.CVFOptions

// DefaultCVFOptions returns the ELAS-class configuration of Fig. 1.
func DefaultCVFOptions() CVFOptions { return stereo.DefaultCVFOptions() }

// CostVolumeFilter computes disparity by filtered-cost-volume WTA, the
// third classic family on the Fig. 1 frontier.
func CostVolumeFilter(left, right *Image, opt CVFOptions) *Image {
	return stereo.CostVolumeFilter(left, right, opt)
}

// Image file I/O.

// SavePGM writes a display image (values in [0,1]) as 16-bit PGM.
func SavePGM(path string, im *Image) error { return imgproc.SavePGM(path, im) }

// LoadPGM reads an 8- or 16-bit PGM.
func LoadPGM(path string) (*Image, error) { return imgproc.LoadPGM(path) }

// SavePFM writes a disparity map (raw float32) as PFM, the format KITTI
// and Middlebury use for ground truth.
func SavePFM(path string, im *Image) error { return imgproc.SavePFM(path, im) }

// LoadPFM reads a single-channel PFM.
func LoadPFM(path string) (*Image, error) { return imgproc.LoadPFM(path) }
