package asv

import (
	"runtime"

	"asv/internal/stereo"
)

// Kernel benchmark facade: re-exports of the internal/stereo ns/pixel
// measurement harness behind `asvbench -exp kernels`, whose committed
// snapshot is BENCH_kernels.json (see EXPERIMENTS.md "Kernel benchmarks").

// KernelPoint is one (kernel, variant, size) ns/pixel measurement.
type KernelPoint = stereo.KernelPoint

// KernelsBenchDoc is the top-level record of BENCH_kernels.json. Like
// BENCH_pipeline.json it records the CPU envelope at measurement time:
// ns/pixel is a per-core metric, but the parallel strip decomposition still
// shifts with GOMAXPROCS.
type KernelsBenchDoc struct {
	CPUsAvailable int           `json:"cpus_available"`
	GoMaxProcs    int           `json:"gomaxprocs_default"`
	MaxDisp       int           `json:"max_disp"`
	Rounds        int           `json:"rounds"`
	Points        []KernelPoint `json:"points"`
}

// MeasureKernelBench times the float and fixed variants of every matching
// kernel at the given sizes, keeping the fastest of rounds runs each.
func MeasureKernelBench(sizes [][2]int, maxDisp, rounds int) KernelsBenchDoc {
	return KernelsBenchDoc{
		CPUsAvailable: runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		MaxDisp:       maxDisp,
		Rounds:        rounds,
		Points:        stereo.MeasureKernels(sizes, maxDisp, rounds),
	}
}
