package asv

import (
	"asv/internal/backend"
	"asv/internal/backend/backends"
	"asv/internal/dataset"
	"asv/internal/deconv"
	"asv/internal/grid"
	"asv/internal/hw"
	"asv/internal/nn"
	"asv/internal/tensor"
)

// Hardware modeling and accelerator simulation.

// HWConfig is an accelerator resource budget (PE array, buffer, bandwidth).
type HWConfig = hw.Config

// EnergyModel holds the per-event energy constants.
type EnergyModel = hw.Energy

// DefaultHW returns the paper's evaluation accelerator resources
// (24×24 PEs @ 1 GHz, 1.5 MB SRAM, 4×LPDDR3-1600).
func DefaultHW() HWConfig { return hw.Default() }

// DefaultEnergyModel returns the 16 nm energy calibration.
func DefaultEnergyModel() EnergyModel { return hw.DefaultEnergy() }

// Accelerator backends. Every hardware model — the ASV systolic array, the
// Eyeriss-class spatial array, the mobile GPU roofline and the GANNX-class
// deconvolution accelerator — implements the same Backend interface and is
// selected by registry name ("systolic", "eyeriss", "gpu", "gannx"), not by
// import.

// Backend is one accelerator model: self-describing (name, summary,
// capabilities) and runnable on any network.
type Backend = backend.Backend

// BackendDescription is a backend's name, hardware summary and capability
// set.
type BackendDescription = backend.Description

// RunOptions carries the unified RunNetwork knobs: scheduling policy, ISM
// propagation window, and the non-key cost the window amortizes.
type RunOptions = backend.RunOptions

// Policy selects the scheduling/optimization level.
type Policy = backend.Policy

// Scheduling policies, in increasing order of ASV optimization.
const (
	PolicyBaseline = backend.PolicyBaseline // naive deconv + static partition
	PolicyDCT      = backend.PolicyDCT      // + deconv transformation
	PolicyConvR    = backend.PolicyConvR    // + per-layer reuse optimizer
	PolicyILAR     = backend.PolicyILAR     // + inter-layer activation reuse
)

// ParsePolicy resolves a policy name ("baseline", "dct", "convr", "ilar").
func ParsePolicy(s string) (Policy, error) { return backend.ParsePolicy(s) }

// Report is a simulated execution cost breakdown.
type Report = backend.Report

// EnergyBreakdown splits a report's energy by component.
type EnergyBreakdown = backend.EnergyBreakdown

// NonKeyCost is the per-frame demand of ISM's non-key work.
type NonKeyCost = backend.NonKeyCost

// Backends returns every registered accelerator model, sorted by name.
func Backends() []Backend { return backend.List() }

// BackendNames returns the sorted registry names.
func BackendNames() []string { return backend.Names() }

// BackendByName looks a backend up by registry name; the error lists the
// available names.
func BackendByName(name string) (Backend, error) { return backend.Get(name) }

// RunOnBackend validates opts against b's capabilities and executes the
// network, returning a typed error (backend.UnsupportedError /
// backend.OptionsError) instead of a silently wrong report when the backend
// cannot honor the options.
func RunOnBackend(b Backend, n *Network, opts RunOptions) (Report, error) {
	return backend.Run(b, n, opts)
}

// DefaultNonKeyCost returns the per-frame non-key demand of the default ISM
// pipeline at qHD — what RunOptions.NonKey should carry for PW > 1 unless a
// custom pipeline is being modeled.
func DefaultNonKeyCost() NonKeyCost { return backends.DefaultNonKey() }

// NewAccelerator returns an ASV systolic-array backend with the given
// resources (design-space sweeps).
func NewAccelerator(cfg HWConfig, en EnergyModel) Backend {
	return backends.NewSystolic(cfg, en)
}

// DefaultAccelerator returns the paper's evaluation accelerator (the
// registered "systolic" backend).
func DefaultAccelerator() Backend { return mustBackend("systolic") }

// DefaultEyeriss returns the Fig. 13 Eyeriss configuration (same PEs,
// buffer and bandwidth as the ASV accelerator).
func DefaultEyeriss() Backend { return mustBackend("eyeriss") }

// JetsonTX2 returns the paper's GPU baseline.
func JetsonTX2() Backend { return mustBackend("gpu") }

// DefaultGANNX returns the Fig. 14 GANNX configuration.
func DefaultGANNX() Backend { return mustBackend("gannx") }

// mustBackend resolves a built-in registry name; the backends package
// registers all four in init, so a miss is an internal wiring bug.
func mustBackend(name string) Backend {
	b, err := backend.Get(name)
	if err != nil {
		panic(err)
	}
	return b
}

// HWOverhead reports the area/power cost of the ISM hardware extensions
// (paper Sec. 7.1).
type HWOverhead = hw.Overhead

// ComputeHWOverhead evaluates the extension overheads for an nPEs array.
func ComputeHWOverhead(nPEs int) HWOverhead { return hw.ComputeOverhead(nPEs) }

// Networks.

// Network is the layer-level IR of a DNN.
type Network = nn.Network

// Layer is one (de)convolution in the IR.
type Layer = nn.Layer

// StereoDNNs returns the four stereo networks of the evaluation (FlowNetC,
// DispNet, GC-Net, PSMNet) at the given input resolution.
func StereoDNNs(h, w int) []*Network { return nn.StereoZoo(h, w) }

// GANs returns the six generators of the Sec. 7.6 comparison.
func GANs() []*Network { return nn.GANZoo() }

// QHD is the paper's evaluation resolution (960×540).
const (
	QHDW = nn.QHDW
	QHDH = nn.QHDH
)

// Deconvolution transformation.

// Tensor is a dense float32 tensor (NCHW / NCDHW layouts).
type Tensor = tensor.Tensor

// NewTensor returns a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// Deconv2D is the reference (sparse) stride-s deconvolution of in [C,H,W]
// with w [F,C,KH,KW] and upsampled-border padding pad.
func Deconv2D(in, w *Tensor, stride, pad int) *Tensor {
	return tensor.Deconv2D(in, w, stride, pad)
}

// TransformedDeconv2D executes the same stride-2 deconvolution by ASV's
// dense sub-convolution decomposition; the result is identical to Deconv2D
// with stride 2.
func TransformedDeconv2D(in, w *Tensor, pad int) *Tensor {
	return deconv.Transformed2D(in, w, pad)
}

// DecomposeKernel2D splits a deconvolution kernel [F,C,KH,KW] into the four
// sub-kernels of the transformation (nil where a sub-kernel is empty).
func DecomposeKernel2D(w *Tensor) [4]*Tensor { return deconv.Decompose2D(w) }

// EffectiveMACs returns a layer's MAC count after the transformation (only
// real-data multiplications remain).
func EffectiveMACs(l Layer) int64 { return deconv.EffectiveMACs(l) }

// Datasets.

// SceneConfig parameterizes the procedural stereo-video generator.
type SceneConfig = dataset.SceneConfig

// StereoSequence is a generated stereo video with ground truth.
type StereoSequence = dataset.Sequence

// StereoFrame is one stereo pair plus its ground-truth disparity.
type StereoFrame = dataset.FramePair

// GenerateSequence renders a stereo video from the configuration.
func GenerateSequence(cfg SceneConfig) *StereoSequence { return dataset.Generate(cfg) }

// SceneFlowLike returns the 26-sequence SceneFlow-style benchmark configs.
func SceneFlowLike(w, h, frames int, seed int64) []SceneConfig {
	return dataset.SceneFlowLike(w, h, frames, seed)
}

// KITTILike returns the 200-pair KITTI-style benchmark configs.
func KITTILike(w, h, pairs int, seed int64) []SceneConfig {
	return dataset.KITTILike(w, h, pairs, seed)
}

// Functional hardware simulation and fixed-point arithmetic.

// SystolicGrid is the cycle-stepped weight-stationary PE array simulator;
// it executes convolutions functionally (bit-equivalent to the reference
// operators) while counting cycles and MACs.
type SystolicGrid = grid.Grid

// NewSystolicGrid returns an idle rows×cols array.
func NewSystolicGrid(rows, cols int) *SystolicGrid { return grid.NewGrid(rows, cols) }

// FixedTensor is a 16-bit fixed-point tensor, the PE datapath format.
type FixedTensor = tensor.Fixed

// Quantize converts a tensor to 16-bit fixed point with the given
// fractional bits (saturating).
func Quantize(t *Tensor, fracBits uint) *FixedTensor { return tensor.Quantize(t, fracBits) }

// FixedConv2D convolves in 16-bit fixed point with wide accumulation, as
// the PE array does, returning the dequantized result.
func FixedConv2D(in, w *FixedTensor, stride, pad int) *Tensor {
	return tensor.FixedConv2D(in, w, stride, pad)
}
