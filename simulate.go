package asv

import (
	"asv/internal/dataset"
	"asv/internal/deconv"
	"asv/internal/eyeriss"
	"asv/internal/gannx"
	"asv/internal/gpu"
	"asv/internal/hw"
	"asv/internal/nn"
	"asv/internal/systolic"
	"asv/internal/tensor"
)

// Hardware modeling and accelerator simulation.

// HWConfig is an accelerator resource budget (PE array, buffer, bandwidth).
type HWConfig = hw.Config

// EnergyModel holds the per-event energy constants.
type EnergyModel = hw.Energy

// DefaultHW returns the paper's evaluation accelerator resources
// (24×24 PEs @ 1 GHz, 1.5 MB SRAM, 4×LPDDR3-1600).
func DefaultHW() HWConfig { return hw.Default() }

// DefaultEnergyModel returns the 16 nm energy calibration.
func DefaultEnergyModel() EnergyModel { return hw.DefaultEnergy() }

// Accelerator is the ASV systolic-array model.
type Accelerator = systolic.Accelerator

// Policy selects the scheduling/optimization level.
type Policy = systolic.Policy

// Scheduling policies, in increasing order of ASV optimization.
const (
	PolicyBaseline = systolic.PolicyBaseline // naive deconv + static partition
	PolicyDCT      = systolic.PolicyDCT      // + deconv transformation
	PolicyConvR    = systolic.PolicyConvR    // + per-layer reuse optimizer
	PolicyILAR     = systolic.PolicyILAR     // + inter-layer activation reuse
)

// Report is a simulated execution cost breakdown.
type Report = systolic.Report

// NonKeyCost is the per-frame demand of ISM's non-key work.
type NonKeyCost = systolic.NonKeyCost

// NewAccelerator returns an accelerator model with the given resources.
func NewAccelerator(cfg HWConfig, en EnergyModel) *Accelerator {
	return systolic.New(cfg, en)
}

// DefaultAccelerator returns the paper's evaluation accelerator.
func DefaultAccelerator() *Accelerator { return systolic.Default() }

// HWOverhead reports the area/power cost of the ISM hardware extensions
// (paper Sec. 7.1).
type HWOverhead = hw.Overhead

// ComputeHWOverhead evaluates the extension overheads for an nPEs array.
func ComputeHWOverhead(nPEs int) HWOverhead { return hw.ComputeOverhead(nPEs) }

// Networks.

// Network is the layer-level IR of a DNN.
type Network = nn.Network

// Layer is one (de)convolution in the IR.
type Layer = nn.Layer

// StereoDNNs returns the four stereo networks of the evaluation (FlowNetC,
// DispNet, GC-Net, PSMNet) at the given input resolution.
func StereoDNNs(h, w int) []*Network { return nn.StereoZoo(h, w) }

// GANs returns the six generators of the Sec. 7.6 comparison.
func GANs() []*Network { return nn.GANZoo() }

// QHD is the paper's evaluation resolution (960×540).
const (
	QHDW = nn.QHDW
	QHDH = nn.QHDH
)

// Deconvolution transformation.

// Tensor is a dense float32 tensor (NCHW / NCDHW layouts).
type Tensor = tensor.Tensor

// NewTensor returns a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// Deconv2D is the reference (sparse) stride-s deconvolution of in [C,H,W]
// with w [F,C,KH,KW] and upsampled-border padding pad.
func Deconv2D(in, w *Tensor, stride, pad int) *Tensor {
	return tensor.Deconv2D(in, w, stride, pad)
}

// TransformedDeconv2D executes the same stride-2 deconvolution by ASV's
// dense sub-convolution decomposition; the result is identical to Deconv2D
// with stride 2.
func TransformedDeconv2D(in, w *Tensor, pad int) *Tensor {
	return deconv.Transformed2D(in, w, pad)
}

// DecomposeKernel2D splits a deconvolution kernel [F,C,KH,KW] into the four
// sub-kernels of the transformation (nil where a sub-kernel is empty).
func DecomposeKernel2D(w *Tensor) [4]*Tensor { return deconv.Decompose2D(w) }

// EffectiveMACs returns a layer's MAC count after the transformation (only
// real-data multiplications remain).
func EffectiveMACs(l Layer) int64 { return deconv.EffectiveMACs(l) }

// Comparison models.

// EyerissModel is the row-stationary spatial-array comparison point.
type EyerissModel = eyeriss.Model

// DefaultEyeriss returns the Fig. 13 Eyeriss configuration (same PEs,
// buffer and bandwidth as the ASV accelerator).
func DefaultEyeriss() *EyerissModel { return eyeriss.Default() }

// GPUModel is the mobile-GPU roofline comparison point.
type GPUModel = gpu.Model

// JetsonTX2 returns the paper's GPU baseline.
func JetsonTX2() *GPUModel { return gpu.TX2() }

// GANNXModel is the dedicated deconvolution accelerator of Fig. 14.
type GANNXModel = gannx.Model

// DefaultGANNX returns the Fig. 14 GANNX configuration.
func DefaultGANNX() *GANNXModel { return gannx.Default() }

// Datasets.

// SceneConfig parameterizes the procedural stereo-video generator.
type SceneConfig = dataset.SceneConfig

// StereoSequence is a generated stereo video with ground truth.
type StereoSequence = dataset.Sequence

// StereoFrame is one stereo pair plus its ground-truth disparity.
type StereoFrame = dataset.FramePair

// GenerateSequence renders a stereo video from the configuration.
func GenerateSequence(cfg SceneConfig) *StereoSequence { return dataset.Generate(cfg) }

// SceneFlowLike returns the 26-sequence SceneFlow-style benchmark configs.
func SceneFlowLike(w, h, frames int, seed int64) []SceneConfig {
	return dataset.SceneFlowLike(w, h, frames, seed)
}

// KITTILike returns the 200-pair KITTI-style benchmark configs.
func KITTILike(w, h, pairs int, seed int64) []SceneConfig {
	return dataset.KITTILike(w, h, pairs, seed)
}

// Functional hardware simulation and fixed-point arithmetic.

// SystolicGrid is the cycle-stepped weight-stationary PE array simulator;
// it executes convolutions functionally (bit-equivalent to the reference
// operators) while counting cycles and MACs.
type SystolicGrid = systolic.Grid

// NewSystolicGrid returns an idle rows×cols array.
func NewSystolicGrid(rows, cols int) *SystolicGrid { return systolic.NewGrid(rows, cols) }

// FixedTensor is a 16-bit fixed-point tensor, the PE datapath format.
type FixedTensor = tensor.Fixed

// Quantize converts a tensor to 16-bit fixed point with the given
// fractional bits (saturating).
func Quantize(t *Tensor, fracBits uint) *FixedTensor { return tensor.Quantize(t, fracBits) }

// FixedConv2D convolves in 16-bit fixed point with wide accumulation, as
// the PE array does, returning the dequantized result.
func FixedConv2D(in, w *FixedTensor, stride, pad int) *Tensor {
	return tensor.FixedConv2D(in, w, stride, pad)
}
