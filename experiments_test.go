package asv

import (
	"math"
	"testing"
)

func TestExperimentFig3MatchesPaperShape(t *testing.T) {
	rows := ExperimentFig3()
	if len(rows) != 4 {
		t.Fatalf("expected 4 networks, got %d", len(rows))
	}
	var deconvSum float64
	for _, r := range rows {
		total := r.FEPct + r.MOPct + r.DRPct
		if total < 99 || total > 101 {
			t.Errorf("%s: stage shares sum to %.1f%%", r.Net, total)
		}
		if r.DRPct <= 0 {
			t.Errorf("%s: DR stage empty", r.Net)
		}
		deconvSum += r.DeconvPct
	}
	// Paper: deconvolution averages 38.2% of total MACs.
	if avg := deconvSum / 4; avg < 25 || avg > 50 {
		t.Errorf("average deconv share %.1f%%, want near 38%%", avg)
	}
}

func TestExperimentFig4MatchesPaperShape(t *testing.T) {
	pts := ExperimentFig4()
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// At zero disparity error the depth error must be zero; at 30 m and
	// 0.2 px it must reach metres (paper: 0.5–5 m band).
	byKey := map[[2]float64]float64{}
	for _, p := range pts {
		byKey[[2]float64{p.DepthM, math.Round(p.DispErrPx * 100)}] = p.DepthErrM
	}
	if byKey[[2]float64{30, 0}] > 1e-6 {
		t.Fatal("zero disparity error should give (numerically) zero depth error")
	}
	if e := byKey[[2]float64{30, 20}]; e < 2 || e > 6 {
		t.Fatalf("30m/0.2px depth error = %.2fm, want metres-scale", e)
	}
	if byKey[[2]float64{10, 20}] >= byKey[[2]float64{30, 20}] {
		t.Fatal("depth error should grow with distance")
	}
}

func TestExperimentFig9QuickShape(t *testing.T) {
	rows := ExperimentFig9(QuickScale())
	// 4 networks x (3 SceneFlow modes + 2 KITTI modes).
	if len(rows) != 20 {
		t.Fatalf("expected 20 rows, got %d", len(rows))
	}
	get := func(ds, net, mode string) float64 {
		for _, r := range rows {
			if r.Dataset == ds && r.Net == net && r.Mode == mode {
				return r.ErrorPct
			}
		}
		t.Fatalf("missing row %s/%s/%s", ds, net, mode)
		return 0
	}
	for _, net := range []string{"FlowNetC", "DispNet", "GC-Net", "PSMNet"} {
		dnn := get("SceneFlow", net, "DNN")
		pw2 := get("SceneFlow", net, "PW-2")
		pw4 := get("SceneFlow", net, "PW-4")
		// The Fig. 9 claim: PW-2 tracks the DNN closely; PW-4 degrades only
		// slightly. Synthetic scenes are harder on flow than SceneFlow, so
		// allow a few percentage points rather than the paper's 0.02%.
		if pw2 > dnn+6 {
			t.Errorf("%s: PW-2 error %.2f%% strays from DNN %.2f%%", net, pw2, dnn)
		}
		if pw4 > dnn+8 {
			t.Errorf("%s: PW-4 error %.2f%% strays from DNN %.2f%%", net, pw4, dnn)
		}
		if dnn <= 0 {
			t.Errorf("%s: DNN error rate must be positive", net)
		}
	}
	// More accurate DNNs should stay more accurate through ISM.
	if get("SceneFlow", "PSMNet", "DNN") >= get("SceneFlow", "FlowNetC", "DNN") {
		t.Error("PSMNet oracle should beat FlowNetC oracle")
	}
}

func TestExperimentFig10MatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("qHD model sweep")
	}
	rows := ExperimentFig10()
	if len(rows) != 12 {
		t.Fatalf("expected 12 rows, got %d", len(rows))
	}
	var bothSp, bothEn float64
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("%s/%s: speedup %.2f <= 1", r.Net, r.Variant, r.Speedup)
		}
		if r.Variant == "DCO+ISM" {
			bothSp += r.Speedup
			bothEn += r.EnergyRedPct
		}
	}
	if avg := bothSp / 4; avg < 4 || avg > 7 {
		t.Errorf("combined speedup avg %.2fx, paper: 4.9x", avg)
	}
	if avg := bothEn / 4; avg < 75 || avg > 92 {
		t.Errorf("combined energy saving avg %.1f%%, paper: 85%%", avg)
	}
}

func TestExperimentFig11MatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("qHD model sweep")
	}
	rows := ExperimentFig11()
	if len(rows) != 12 {
		t.Fatalf("expected 12 rows, got %d", len(rows))
	}
	byNetOpt := map[string]DeconvOptRow{}
	for _, r := range rows {
		byNetOpt[r.Net+"/"+r.Opt] = r
	}
	// DCT supplies the bulk of the deconv-layer speedup (~3.9x on 2-D).
	if d := byNetOpt["DispNet/DCT"].DeconvSpeedup; d < 3.2 || d > 5 {
		t.Errorf("DispNet DCT deconv speedup %.2fx, want ~3.9x", d)
	}
	// 3-D networks gain more.
	if byNetOpt["PSMNet/DCT"].DeconvSpeedup <= byNetOpt["DispNet/DCT"].DeconvSpeedup {
		t.Error("3-D nets should gain more from the transformation")
	}
	// ILAR's edge over ConvR is energy, not speed (paper Sec. 7.3).
	for _, net := range []string{"FlowNetC", "DispNet", "GC-Net", "PSMNet"} {
		convr := byNetOpt[net+"/ConvR"]
		ilar := byNetOpt[net+"/ILAR"]
		if ilar.DeconvEnergyRedPct < convr.DeconvEnergyRedPct-1 {
			t.Errorf("%s: ILAR deconv energy saving %.1f%% below ConvR %.1f%%",
				net, ilar.DeconvEnergyRedPct, convr.DeconvEnergyRedPct)
		}
	}
}

func TestExperimentFig12MatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("hardware sweep")
	}
	g := ExperimentFig12()
	if len(g.Speedup) != len(g.BufsMB) || len(g.Speedup[0]) != len(g.PEs) {
		t.Fatal("grid dimensions wrong")
	}
	for i := range g.Speedup {
		for j := range g.Speedup[i] {
			if s := g.Speedup[i][j]; s < 1.15 || s > 1.75 {
				t.Errorf("speedup[%d][%d] = %.2f outside the 1.2–1.5x band (with tolerance)", i, j, s)
			}
			if e := g.EnergyRed[i][j]; e < 0.15 || e > 0.45 {
				t.Errorf("energyRed[%d][%d] = %.2f outside the 25–35%% band (with tolerance)", i, j, e)
			}
		}
	}
	// Paper: speedup is more pronounced on small PE arrays, where execution
	// is compute-bound. The effect shows on the large-buffer rows.
	last := g.Speedup[len(g.Speedup)-1]
	if last[0] <= last[len(last)-1] {
		t.Errorf("DCO speedup should shrink as the PE array grows (3 MB row): %v", last)
	}
}

func TestExperimentFig13MatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("qHD model sweep")
	}
	rows := ExperimentFig13()
	by := map[string]BaselineRow{}
	for _, r := range rows {
		by[r.System] = r
	}
	if by["Eyeriss"].Speedup != 1 || by["Eyeriss"].NormEnergy != 1 {
		t.Fatal("Eyeriss must be the normalization reference")
	}
	if !(by["ASV-DCO+ISM"].Speedup > by["ASV-ISM"].Speedup &&
		by["ASV-ISM"].Speedup > by["ASV-DCO"].Speedup &&
		by["ASV-DCO"].Speedup > by["Eyeriss+DCT"].Speedup &&
		by["Eyeriss+DCT"].Speedup > 1) {
		t.Fatalf("speedup ordering violated: %+v", rows)
	}
	if by["GPU"].Speedup >= 1 {
		t.Error("the mobile GPU should trail Eyeriss")
	}
	if by["ASV-DCO+ISM"].NormEnergy >= by["ASV-DCO"].NormEnergy {
		t.Error("combined system should use the least energy")
	}
	if b := by["ASV-DCO+ISM"].Speedup; b < 5 || b > 14 {
		t.Errorf("combined speedup vs Eyeriss %.1fx, paper: 8.2x", b)
	}
}

func TestExperimentFig14MatchesPaperShape(t *testing.T) {
	rows := ExperimentFig14()
	if len(rows) != 6 {
		t.Fatalf("expected 6 GANs, got %d", len(rows))
	}
	var asvSp, gxSp float64
	for _, r := range rows {
		if r.ASVSpeedup <= 1 || r.GANNXSpeedup <= 1 {
			t.Errorf("%s: both systems should beat Eyeriss (%+v)", r.GAN, r)
		}
		if r.ASVSpeedup < r.GANNXSpeedup-0.05 {
			t.Errorf("%s: ASV (%.2fx) should not lose to GANNX (%.2fx)", r.GAN, r.ASVSpeedup, r.GANNXSpeedup)
		}
		asvSp += r.ASVSpeedup
		gxSp += r.GANNXSpeedup
	}
	// Paper: ASV averages 1.4x over GANNX.
	ratio := asvSp / gxSp
	if ratio < 1.1 || ratio > 1.9 {
		t.Errorf("ASV/GANNX average ratio %.2f, paper: ~1.4", ratio)
	}
}

func TestExperimentSec71(t *testing.T) {
	o := ExperimentSec71()
	if o.PEAreaPct < 6 || o.PEAreaPct > 6.6 {
		t.Errorf("per-PE area overhead %.2f%%, paper: 6.3%%", o.PEAreaPct)
	}
	if o.TotalAreaPct >= 0.5 || o.TotalPowerPct >= 0.5 {
		t.Errorf("total overhead must stay under 0.5%% (got %.2f%%/%.2f%%)",
			o.TotalAreaPct, o.TotalPowerPct)
	}
}

func TestExperimentSec33(t *testing.T) {
	row := ExperimentSec33()
	// Paper: ~87 MOps per qHD non-key frame; ours lands the same order.
	if row.NonKeyMACs < 30e6 || row.NonKeyMACs > 500e6 {
		t.Fatalf("non-key MACs = %d, want O(100M)", row.NonKeyMACs)
	}
	for net, r := range row.DNNRatio {
		if r < 100 || r > 5e5 {
			t.Errorf("%s: DNN/non-key ratio %.0fx outside 10^2–10^4 (x5 slack)", net, r)
		}
	}
}

func TestExperimentFig1QuickShape(t *testing.T) {
	pts := ExperimentFig1(QuickScale())
	var classics, dnnAcc, dnnGPU, asv int
	var asvPt FrontierPoint
	for _, p := range pts {
		switch p.Class {
		case "classic":
			classics++
			if p.FPS < 1 {
				t.Errorf("%s: classic algorithms should be fast (%.2f FPS)", p.Name, p.FPS)
			}
		case "dnn-acc":
			dnnAcc++
		case "dnn-gpu":
			dnnGPU++
		case "asv":
			asv++
			asvPt = p
		}
	}
	if classics != 4 || dnnAcc != 4 || dnnGPU != 4 || asv != 1 {
		t.Fatalf("unexpected point counts: %d/%d/%d/%d", classics, dnnAcc, dnnGPU, asv)
	}
	// The headline: ASV is simultaneously fast and accurate.
	if asvPt.FPS < 20 {
		t.Errorf("ASV FPS %.1f, want near real-time", asvPt.FPS)
	}
	for _, p := range pts {
		if p.Class == "dnn-gpu" && p.FPS >= asvPt.FPS {
			t.Errorf("%s on GPU (%.2f FPS) should not beat ASV (%.2f FPS)", p.Name, p.FPS, asvPt.FPS)
		}
	}
}

func TestExperimentIndexComplete(t *testing.T) {
	idx := ExperimentIndex()
	if len(idx) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(idx))
	}
}

func TestRenderFloat(t *testing.T) {
	cases := map[float64]string{0: "0", 0.5: "0.500", 3.14159: "3.14", 250: "250"}
	for v, want := range cases {
		if got := renderFloat(v); got != want {
			t.Errorf("renderFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
