package asv

import (
	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/flow"
	"asv/internal/schedule"
	"asv/internal/stereo"
)

// Ablations of ISM's algorithmic design decisions (paper Sec. 3.3). The
// paper argues for Farneback dense flow over block matching (granularity)
// and sparse methods (coverage), and for a small guided local search over
// global refinement. These experiments put numbers behind each argument.

// MEAblationRow reports one motion-estimator choice.
type MEAblationRow struct {
	ME       string  // estimator name
	ErrorPct float64 // ISM PW-4 three-pixel error
	MEMops   float64 // per-frame motion-estimation cost (both views), MOps
}

// ablationConfigs returns the shared sequence set for the ablations: a
// handful of SceneFlow-like sequences with moderate motion.
func ablationConfigs(sc ExpScale) []dataset.SceneConfig {
	cfgs := sceneFlowConfigs(sc)
	if len(cfgs) > 6 {
		cfgs = cfgs[:6]
	}
	return cfgs
}

// fastMotionConfigs returns sequences with motion fast enough (≈3 px/frame)
// that the quality of the motion estimate is not masked by the ±3 guided
// search — the regime where Sec. 3.3's algorithm choice actually matters.
func fastMotionConfigs(sc ExpScale) []dataset.SceneConfig {
	n := 4
	if sc.SceneFlowSeqs < n {
		n = sc.SceneFlowSeqs
	}
	cfgs := make([]dataset.SceneConfig, n)
	for i := range cfgs {
		cfgs[i] = dataset.SceneConfig{
			W: sc.W, H: sc.H, FrameCount: 5, Layers: 4,
			MinDisp: 2, MaxDisp: 20, MaxVel: 3.0, MaxDispVel: 0.5,
			Noise: 0.01, Seed: sc.Seed + int64(300+i*17),
		}
	}
	return cfgs
}

// runISMWith runs the PW-4 accuracy protocol with an explicit pipeline
// configuration (DispNet-class oracle on key frames) and returns the mean
// three-pixel error over all frames.
func runISMWith(cfgs []dataset.SceneConfig, pcfg core.Config, seed int64) float64 {
	var errSum float64
	var n int
	for i, cfg := range cfgs {
		seq := dataset.Generate(cfg)
		oracle := &core.OracleMatcher{
			ErrRatePct: 4.3, SubpixelSigma: 0.3, Seed: seed + int64(i)*97,
		}
		pipe := core.New(nil, pcfg)
		for _, fr := range seq.Frames {
			var res core.Result
			if pipe.NextIsKey() {
				oracle.SetGT(fr.GT)
				res = pipe.ProcessKey(fr.Left, fr.Right, oracle.Match(fr.Left, fr.Right), 0)
			} else {
				res = pipe.ProcessNonKey(fr.Left, fr.Right)
			}
			errSum += stereo.ThreePixelError(res.Disparity, fr.GT)
			n++
		}
	}
	return errSum / float64(n)
}

// ExperimentMEAblation compares ISM accuracy across motion-estimation
// algorithms: the paper's dense Farneback flow, block matching (per-block
// vectors only), and no motion at all.
func ExperimentMEAblation(sc ExpScale) []MEAblationRow {
	cfgs := fastMotionConfigs(sc)
	fopt := DefaultFlowOptions()
	fopt.Levels = 4 // reach the ~3 px/frame motion of the ablation scenes
	estimators := []core.MotionEstimator{
		core.FarnebackME{Opt: fopt, Scale: 2},
		core.BlockME{Block: 8, SearchR: 5},
		core.BlockME{Block: 16, SearchR: 5},
		core.HornSchunckME{Opt: flow.DefaultHSOptions()},
		core.ZeroME{},
	}
	var rows []MEAblationRow
	for _, me := range estimators {
		pcfg := core.DefaultConfig()
		pcfg.PW = 4
		pcfg.ME = me
		rows = append(rows, MEAblationRow{
			ME:       me.Name(),
			ErrorPct: runISMWith(cfgs, pcfg, sc.Seed),
			MEMops:   2 * float64(me.MACs(sc.W, sc.H)) / 1e6,
		})
	}
	return rows
}

// ParamAblationRow reports one (flow scale, refine radius) configuration.
type ParamAblationRow struct {
	FlowScale  int
	RefineR    int
	ErrorPct   float64
	NonKeyMops float64 // total non-key cost at the experiment resolution
}

// ExperimentISMParamAblation sweeps ISM's two cost knobs: the resolution at
// which flow is computed and the guided-search radius, exposing the
// accuracy/arithmetic trade-off behind the defaults (scale 2, ±3).
func ExperimentISMParamAblation(sc ExpScale) []ParamAblationRow {
	cfgs := ablationConfigs(sc)
	var rows []ParamAblationRow
	for _, scale := range []int{1, 2, 4} {
		for _, rr := range []int{1, 3, 5} {
			pcfg := core.DefaultConfig()
			pcfg.PW = 4
			pcfg.FlowScale = scale
			pcfg.RefineR = rr
			pipe := core.New(nil, pcfg)
			rows = append(rows, ParamAblationRow{
				FlowScale:  scale,
				RefineR:    rr,
				ErrorPct:   runISMWith(cfgs, pcfg, sc.Seed),
				NonKeyMops: float64(pipe.NonKeyMACs(sc.W, sc.H)) / 1e6,
			})
		}
	}
	return rows
}

// KeyPolicyRow reports one key-frame scheduling policy.
type KeyPolicyRow struct {
	Policy   string
	ErrorPct float64
	KeyRate  float64 // fraction of frames that ran the key matcher
}

// ExperimentKeyPolicyAblation compares static propagation windows against
// the adaptive motion-triggered controller (the extension the paper's
// Sec. 5.2 leaves open) on sequences with varying motion.
func ExperimentKeyPolicyAblation(sc ExpScale) []KeyPolicyRow {
	// Mix calm and fast sequences so key-frame *placement* matters, not
	// just the key-frame budget.
	cfgs := append(ablationConfigs(sc)[:2:2], fastMotionConfigs(sc)...)
	run := func(name string, pcfg core.Config) KeyPolicyRow {
		var errSum float64
		var frames, keys int
		for i, cfg := range cfgs {
			seq := dataset.Generate(cfg)
			oracle := &core.OracleMatcher{ErrRatePct: 4.3, SubpixelSigma: 0.3, Seed: sc.Seed + int64(i)*97}
			pipe := core.New(nil, pcfg)
			for _, fr := range seq.Frames {
				var res core.Result
				if pipe.NextIsKey() {
					oracle.SetGT(fr.GT)
					res = pipe.ProcessKey(fr.Left, fr.Right, oracle.Match(fr.Left, fr.Right), 0)
					keys++
				} else {
					res = pipe.ProcessNonKey(fr.Left, fr.Right)
				}
				errSum += stereo.ThreePixelError(res.Disparity, fr.GT)
				frames++
			}
		}
		return KeyPolicyRow{Policy: name, ErrorPct: errSum / float64(frames), KeyRate: float64(keys) / float64(frames)}
	}

	var rows []KeyPolicyRow
	for _, pw := range []int{2, 4, 6} {
		pcfg := core.DefaultConfig()
		pcfg.PW = pw
		rows = append(rows, run("static PW-"+string(rune('0'+pw)), pcfg))
	}
	pcfg := core.DefaultConfig()
	pcfg.Adaptive = &core.AdaptiveConfig{MaxWindow: 6, MotionThresholdPx: 1.5}
	rows = append(rows, run("adaptive", pcfg))
	return rows
}

// ReuseOrderRow reports one network under each forced reuse order.
type ReuseOrderRow struct {
	Net      string
	AutoMs   float64 // optimizer chooses β per layer (the paper's setting)
	IfmapMs  float64 // β forced to ifmap-stationary everywhere
	WeightMs float64 // β forced to weight-stationary everywhere
}

// ExperimentReuseOrderAblation isolates Equ. 7's reuse-order variable β:
// letting the optimizer choose per layer versus forcing one order for the
// whole network (transformed layers, ILAR scheduling).
func ExperimentReuseOrderAblation() []ReuseOrderRow {
	cfg := DefaultHW()
	var rows []ReuseOrderRow
	for _, n := range StereoDNNs(QHDH, QHDW) {
		run := func(order schedule.Order) float64 {
			var cycles int64
			for _, spec := range schedule.NetworkSpecs(n, true) {
				cycles += schedule.Evaluate(spec, cfg, schedule.Options{ILAR: true, Order: order}).Cycles
			}
			return float64(cycles) / cfg.FreqHz * 1e3
		}
		rows = append(rows, ReuseOrderRow{
			Net:      n.Name,
			AutoMs:   run(schedule.OrderAuto),
			IfmapMs:  run(schedule.OrderIfmapStationary),
			WeightMs: run(schedule.OrderWeightStationary),
		})
	}
	return rows
}
