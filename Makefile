# Developer entry points. `make check` mirrors what CI runs.

RACE_PKGS := ./internal/core ./internal/flow ./internal/pipeline ./internal/par ./internal/stereo ./internal/imgproc ./internal/metrics

.PHONY: build test race bench bench-json fmt fmt-check vet check

build:
	go build ./...

test:
	go test -short ./...

race:
	go test -race $(RACE_PKGS)

bench:
	go test -run '^$$' -bench . -benchtime 1x ./...

# Regenerate BENCH_pipeline.json (serial vs streaming-runtime throughput).
bench-json:
	go run ./cmd/asvbench -exp pipeline -json BENCH_pipeline.json

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

check: build vet fmt-check test race bench
