# Developer entry points. `make check` mirrors what CI runs.
#
# `make lint` runs asvlint, the project's own static analyzer (see
# internal/analysis): pool Get/Put pairing, goroutine lifecycle, dropped
# errors, golden-corpus determinism, and lock/atomic copy rules. `make
# lint-fix` is the cleanup loop: gofmt the tree, then print the remaining
# asvlint findings grouped by rule so related fixes land together.

# Every package is race-checked by default — new subsystems are covered the
# moment they appear, instead of opting in here.
RACE_PKGS := ./...

# Fuzz targets exercised by fuzz-smoke, as package:Target pairs.
FUZZ_TARGETS := \
	./internal/imgproc:FuzzReadPGM \
	./internal/imgproc:FuzzReadPFM \
	./internal/imgproc:FuzzImagePool \
	./internal/deconv:FuzzTransformEquivalence \
	./internal/schedule:FuzzCostModelInvariants \
	./internal/stereo:FuzzSatAdd \
	./internal/serve:FuzzSnapshotDecode \
	./internal/perception:FuzzCalibrationJSON \
	./internal/perception:FuzzCloudDecode

# Minimum total test coverage (percent) enforced by `make cover` and CI.
COVER_THRESHOLD := 80

.PHONY: build test race bench bench-json serve-bench-json kernels-json kernels-gate eval-json ladder-json serve-smoke cluster-smoke perception-smoke degrade-smoke fmt fmt-check vet lint lint-fix perf-gate check fuzz-smoke cover

build:
	go build ./...

# Same invocation as the release verification (`go build ./... && go test
# ./...`): keeping them identical means CI cannot pass on a subset of the
# suite that the verify step then fails on. Slow tests gate themselves on
# testing.Short(); use `go test -short ./...` locally for a quick loop.
test:
	go test ./...

race:
	go test -race $(RACE_PKGS)

bench:
	go test -run '^$$' -bench . -benchtime 1x ./...

# Regenerate BENCH_pipeline.json (serial vs streaming-runtime throughput).
bench-json:
	go run ./cmd/asvbench -exp pipeline -json BENCH_pipeline.json

# Regenerate BENCH_serve.json (depth-serving latency + backpressure).
serve-bench-json:
	go run ./cmd/asvbench -exp serve -json BENCH_serve.json

# Regenerate BENCH_kernels.json, the committed ns/pixel baseline for the
# matching kernels (float vs fixed-point).
kernels-json:
	go run ./cmd/asvbench -exp kernels -json BENCH_kernels.json

# Measure the kernels fresh and fail if any regressed past 2.5x the
# committed baseline; the fresh JSON is left for CI to upload.
kernels-gate:
	go run ./cmd/asvbench -exp kernels -json BENCH_kernels.fresh.json -gate BENCH_kernels.json

# Regenerate BENCH_eval.json, the committed accuracy sweep (bad-pixel
# rates + depth RMSE per preset x matcher x PW) from the batch evaluator.
eval-json:
	go run ./cmd/asveval -json BENCH_eval.json

# Regenerate quality_ladder.json, the committed per-rung accuracy/cost
# pricing of the operating-point ladder the server degrades along.
ladder-json:
	go run ./cmd/asveval -ladder quality_ladder.json

# End-to-end smoke of the serving layer: boot asvserve on a random port,
# push ~50 requests through asvload, assert latency was reported and no
# request failed server-side, then drain via SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

# End-to-end smoke of the sharded tier: two asvserve shards sharing a spill
# directory, an asvgate over them, load through the gateway, then a drain
# that must migrate every session and keep its stream serving.
cluster-smoke:
	./scripts/cluster_smoke.sh

# End-to-end smoke of the 3D perception path: render a raw (misaligned)
# pair with asvgen, serve it into a calibrated session, and check the
# disparity/depth/point-cloud responses are well-formed.
perception-smoke:
	./scripts/perception_smoke.sh

# End-to-end smoke of overload degradation: a starved asvserve (1 worker,
# paced key matcher) flooded with best-effort sessions must answer every
# frame by stepping down the quality ladder — zero 429s, some degraded.
degrade-smoke:
	./scripts/degrade_smoke.sh

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

# Project-specific invariants; exits nonzero on any finding.
lint:
	go run ./cmd/asvlint ./...

# Format the tree, then show what asvlint still wants, grouped by rule.
# The lint step's exit status is propagated: a dirty tree must fail the
# target, not just print.
lint-fix:
	gofmt -w .
	go run ./cmd/asvlint -group ./...

# Compiler-diagnostics gate for the fixed-point kernels: rebuild
# internal/stereo with escape/inline/bounds-check diagnostics and compare
# per-function counts against internal/stereo/perf_contract.json. The fresh
# parsed report is left for CI to upload. After an intentional kernel
# change, regenerate the contract with
# `go run ./cmd/asvlint -perf -perf-update`.
perf-gate:
	go run ./cmd/asvlint -perf -perf-json PERF_stereo.fresh.json

# Run every native fuzz target briefly (seed corpus + ~10s of new inputs
# each); any crasher fails the build.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%:*}; target=$${t#*:}; \
		echo "fuzz $$pkg $$target"; \
		go test -run '^$$' -fuzz "^$$target$$" -fuzztime 10s "$$pkg"; \
	done

# Total coverage across all packages must stay at or above COVER_THRESHOLD.
cover:
	go test -coverprofile=cover.out -coverpkg=./... ./...
	@go tool cover -func=cover.out | tail -1
	@total=$$(go tool cover -func=cover.out | tail -1 | sed 's/[^0-9.]*\([0-9.]*\)%.*/\1/'); \
	ok=$$(awk -v t="$$total" -v m="$(COVER_THRESHOLD)" 'BEGIN{print (t+0 >= m+0) ? 1 : 0}'); \
	if [ "$$ok" != 1 ]; then \
		echo "coverage $$total% is below the $(COVER_THRESHOLD)% floor" >&2; exit 1; fi

check: build vet lint perf-gate fmt-check test race bench fuzz-smoke serve-smoke cluster-smoke perception-smoke degrade-smoke cover kernels-gate
