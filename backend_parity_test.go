package asv

import (
	"crypto/sha256"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"asv/internal/deconv"
	"asv/internal/testkit"
)

// canonicalReport hashes every scalar field of a Report bit-exactly: floats
// are serialized with the 'x' (hexadecimal, shortest round-trip) format, so
// any numerical drift — however small — changes the hash. This is the pin
// that proved the backend refactor kept the systolic model bit-identical.
func canonicalReport(r Report) string {
	hexf := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	dec := func(v int64) string { return strconv.FormatInt(v, 10) }
	fields := []string{
		r.Workload,
		strconv.Itoa(int(r.Policy)),
		dec(r.Cycles),
		hexf(r.Seconds),
		dec(r.MACs),
		dec(r.DRAMBytes),
		dec(r.SRAMBytes),
		hexf(r.EnergyJ),
		hexf(r.Energy.ComputeJ),
		hexf(r.Energy.SRAMJ),
		hexf(r.Energy.DRAMJ),
		hexf(r.Energy.LeakJ),
		dec(r.DeconvCycles),
		hexf(r.DeconvEnergyJ),
	}
	s := strings.Join(fields, "|")
	return fmt.Sprintf("%x", sha256.Sum256([]byte(s)))[:16]
}

// TestGoldenSystolicReports pins the systolic model's full report — every
// scalar field, bit-exact — across the stereo zoo (all four policies plus
// the PW-4 ISM mode) and the GAN zoo. The committed corpus was generated
// from the pre-refactor code, so a pass here is the proof that the backend
// interface migration did not perturb a single bit of the paper numbers.
func TestGoldenSystolicReports(t *testing.T) {
	if testing.Short() {
		t.Skip("qHD sweep in -short mode")
	}
	store := testkit.OpenStore(t, "testdata/golden_backend.txt")
	acc, err := BackendByName("systolic")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range StereoDNNs(QHDH, QHDW) {
		for _, pol := range []Policy{PolicyBaseline, PolicyDCT, PolicyConvR, PolicyILAR} {
			rep, err := RunOnBackend(acc, n, RunOptions{Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			store.Check(t, fmt.Sprintf("systolic.%s.%s", n.Name, pol), canonicalReport(rep))
		}
		ism, err := RunOnBackend(acc, n, RunOptions{Policy: PolicyILAR, PW: 4, NonKey: DefaultNonKeyCost()})
		if err != nil {
			t.Fatal(err)
		}
		store.Check(t, fmt.Sprintf("systolic.%s.ism-pw4.ilar", n.Name), canonicalReport(ism))
	}
	for _, n := range GANs() {
		for _, pol := range []Policy{PolicyBaseline, PolicyILAR} {
			rep, err := RunOnBackend(acc, n, RunOptions{Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			store.Check(t, fmt.Sprintf("systolic.%s.%s", n.Name, pol), canonicalReport(rep))
		}
	}
}

// TestBackendReportInvariants is the registry-driven differential suite:
// every registered backend, on every network of both zoos, under every
// policy it declares, must produce a self-consistent report. The MAC
// invariant ties each model back to the layer shapes: a report's total must
// sit within 1% of either the naive count or the post-transformation
// effective count from deconv.EffectiveMACs (scheduled models carry a small
// tiling overhead above the analytic count, hence the band), and any
// transformed policy must track the effective count, not the naive one.
func TestBackendReportInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("qHD sweep in -short mode")
	}
	stereo := StereoDNNs(QHDH, QHDW)
	nets := append(append([]*Network{}, stereo...), GANs()...)
	for _, be := range Backends() {
		d := be.Describe()
		for _, n := range nets {
			naive := n.TotalMACs()
			eff := deconv.NetworkEffectiveMACs(n)
			for _, pol := range d.Caps.Policies {
				rep, err := RunOnBackend(be, n, RunOptions{Policy: pol})
				if err != nil {
					t.Fatalf("%s/%s/%v: %v", d.Name, n.Name, pol, err)
				}
				checkReportShape(t, d.Name, n.Name, pol, rep)
				m := float64(rep.MACs)
				if !approxEq(m, float64(naive), 1e-2) && !approxEq(m, float64(eff), 1e-2) {
					t.Errorf("%s/%s/%v: MACs %d match neither naive %d nor effective %d",
						d.Name, n.Name, pol, rep.MACs, naive, eff)
				}
				if pol.Transformed() && !approxEq(m, float64(eff), 1e-2) {
					t.Errorf("%s/%s/%v: transformed policy reports %d MACs, want ~effective %d",
						d.Name, n.Name, pol, rep.MACs, eff)
				}
				if rep.Policy != pol {
					t.Errorf("%s/%s/%v: report echoes policy %v", d.Name, n.Name, pol, rep.Policy)
				}
			}
		}
		// The ISM amortization claim only holds where the paper makes it:
		// qHD stereo networks, whose key-frame DNN dwarfs the per-frame
		// non-key work. (On the tiny GAN generators the motion-estimation
		// cost exceeds the DNN itself, so PW-4 would rightly be slower.)
		if d.Caps.ISM {
			best := d.Caps.Policies[len(d.Caps.Policies)-1]
			for _, n := range stereo {
				dnn, err := RunOnBackend(be, n, RunOptions{Policy: best})
				if err != nil {
					t.Fatal(err)
				}
				ism, err := RunOnBackend(be, n, RunOptions{Policy: best, PW: 4, NonKey: DefaultNonKeyCost()})
				if err != nil {
					t.Fatalf("%s/%s ISM: %v", d.Name, n.Name, err)
				}
				checkReportShape(t, d.Name, n.Name+"+ism", best, ism)
				if ism.Seconds >= dnn.Seconds {
					t.Errorf("%s/%s: PW-4 ISM (%.4gs) should beat per-frame DNN (%.4gs)",
						d.Name, n.Name, ism.Seconds, dnn.Seconds)
				}
			}
		}
	}
}

// checkReportShape asserts the field-level invariants every backend shares.
func checkReportShape(t *testing.T, be, net string, pol Policy, rep Report) {
	t.Helper()
	ctx := fmt.Sprintf("%s/%s/%v", be, net, pol)
	if rep.Workload == "" {
		t.Errorf("%s: empty workload", ctx)
	}
	if rep.Cycles <= 0 || rep.Seconds <= 0 || rep.MACs <= 0 || rep.EnergyJ <= 0 || rep.DRAMBytes <= 0 {
		t.Errorf("%s: degenerate totals %+v", ctx, rep)
	}
	if rep.SRAMBytes < 0 {
		t.Errorf("%s: negative SRAM traffic", ctx)
	}
	for name, v := range map[string]float64{
		"compute": rep.Energy.ComputeJ, "sram": rep.Energy.SRAMJ,
		"dram": rep.Energy.DRAMJ, "leak": rep.Energy.LeakJ,
	} {
		if v < 0 {
			t.Errorf("%s: negative %s energy", ctx, name)
		}
	}
	if tot := rep.Energy.Total(); !approxEq(tot, rep.EnergyJ, 1e-9) {
		t.Errorf("%s: breakdown total %.12g != EnergyJ %.12g", ctx, tot, rep.EnergyJ)
	}
	if rep.DeconvCycles < 0 || rep.DeconvCycles > rep.Cycles {
		t.Errorf("%s: deconv cycles %d outside [0, %d]", ctx, rep.DeconvCycles, rep.Cycles)
	}
	if rep.DeconvEnergyJ < 0 || rep.DeconvEnergyJ > rep.EnergyJ*(1+1e-9) {
		t.Errorf("%s: deconv energy %.4g outside [0, %.4g]", ctx, rep.DeconvEnergyJ, rep.EnergyJ)
	}
	if rep.FPS() <= 0 {
		t.Errorf("%s: no frame rate", ctx)
	}
}

func approxEq(a, b, rel float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if bb := b; bb > m {
		m = bb
	} else if -bb > m {
		m = -bb
	}
	return d <= rel*m || d == 0
}
