// Package perception turns the disparity maps the ASV pipeline stops at
// into the 3D outputs a deployed stereo system actually ships: metric depth
// maps and point clouds. It owns the serving-side calibration model (pinhole
// intrinsics + per-camera rotational misalignment + stereo baseline), the
// disparity→depth→point-cloud reprojection engine, a streaming binary
// point-cloud codec, and ASCII/binary PLY writers.
//
// Geometry. Rectified cameras are pinhole cameras with intrinsics K
// (rectify.Intrinsics); a pixel (x, y) with disparity d > 0 triangulates to
//
//	Z = fx·B / d        (metres; Equ. 1 of the paper with f in pixels)
//	X = (x - cx)·Z / fx
//	Y = (y - cy)·Z / fy
//
// in the left camera frame (x right, y down, z forward). Invalid
// disparities (non-positive, non-finite, or below MinValidDisp) produce no
// point: the reprojection is validity-aware, so speckle-filtered or
// occluded pixels drop cleanly instead of becoming infinities.
package perception

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"asv/internal/imgproc"
	"asv/internal/rectify"
)

// MinValidDisp is the smallest disparity (pixels) that still triangulates:
// anything below it is treated as invalid rather than mapped to a
// kilometres-away point dominated by matching noise.
const MinValidDisp = 1e-3

// MaxTiltRad bounds each calibration Euler angle: the rotational-
// misalignment model is a small-angle correction, not an arbitrary
// re-aiming of the camera.
const MaxTiltRad = 0.7

// CalibrationError is the typed failure for unparseable or out-of-range
// calibration JSON. Parsing never panics: any malformed input yields one of
// these, because calibration bytes cross trust boundaries (HTTP bodies,
// snapshot payloads).
type CalibrationError struct{ msg string }

func (e *CalibrationError) Error() string { return "calibration: " + e.msg }

func calibErrf(format string, args ...any) *CalibrationError {
	return &CalibrationError{msg: fmt.Sprintf(format, args...)}
}

// Calibration is a serving session's camera model: shared pinhole
// intrinsics (the rectified pair lives on one common image plane), the
// small rotation of each physical camera relative to that plane as
// roll/pitch/yaw Euler angles (radians, rectify.Rotation convention), and
// the stereo baseline in metres. The zero rotation means the camera is
// already rectified; rectification is then an identity resample.
type Calibration struct {
	Fx        float64    `json:"fx"`
	Fy        float64    `json:"fy"`
	Cx        float64    `json:"cx"`
	Cy        float64    `json:"cy"`
	BaselineM float64    `json:"baseline_m"`
	LeftRPY   [3]float64 `json:"left_rpy"`
	RightRPY  [3]float64 `json:"right_rpy"`
}

// DefaultCalibration returns an already-rectified rig for a w×h stream:
// DefaultIntrinsics (≈53° FoV) and the Bumblebee2's 120 mm baseline.
func DefaultCalibration(w, h int) *Calibration {
	in := rectify.DefaultIntrinsics(w, h)
	return &Calibration{Fx: in.Fx, Fy: in.Fy, Cx: in.Cx, Cy: in.Cy, BaselineM: 0.120}
}

// Intrinsics returns the pinhole parameters as the rectify package's type.
func (c *Calibration) Intrinsics() rectify.Intrinsics {
	return rectify.Intrinsics{Fx: c.Fx, Fy: c.Fy, Cx: c.Cx, Cy: c.Cy}
}

// RotLeft returns the left camera's rotation relative to the rectified
// frame.
func (c *Calibration) RotLeft() rectify.Mat3 {
	return rectify.Rotation(c.LeftRPY[0], c.LeftRPY[1], c.LeftRPY[2])
}

// RotRight returns the right camera's rotation relative to the rectified
// frame.
func (c *Calibration) RotRight() rectify.Mat3 {
	return rectify.Rotation(c.RightRPY[0], c.RightRPY[1], c.RightRPY[2])
}

// Validate checks every field against the model's bounds; it returns a
// *CalibrationError describing the first violation, or nil.
func (c *Calibration) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"fx", c.Fx}, {"fy", c.Fy}, {"cx", c.Cx}, {"cy", c.Cy}, {"baseline_m", c.BaselineM}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return calibErrf("%s is not finite", f.name)
		}
	}
	if c.Fx <= 0 || c.Fx > 1e6 || c.Fy <= 0 || c.Fy > 1e6 {
		return calibErrf("focal lengths (%g, %g) out of range (0, 1e6]", c.Fx, c.Fy)
	}
	if math.Abs(c.Cx) > 1e6 || math.Abs(c.Cy) > 1e6 {
		return calibErrf("principal point (%g, %g) out of range [-1e6, 1e6]", c.Cx, c.Cy)
	}
	if c.BaselineM <= 0 || c.BaselineM > 100 {
		return calibErrf("baseline %g m out of range (0, 100]", c.BaselineM)
	}
	for i, a := range c.LeftRPY {
		if math.IsNaN(a) || math.Abs(a) > MaxTiltRad {
			return calibErrf("left_rpy[%d] = %g out of range [-%g, %g]", i, a, MaxTiltRad, MaxTiltRad)
		}
	}
	for i, a := range c.RightRPY {
		if math.IsNaN(a) || math.Abs(a) > MaxTiltRad {
			return calibErrf("right_rpy[%d] = %g out of range [-%g, %g]", i, a, MaxTiltRad, MaxTiltRad)
		}
	}
	return nil
}

// maxCalibrationJSON bounds the bytes ParseCalibration will look at.
const maxCalibrationJSON = 1 << 12

// ParseCalibration decodes and validates calibration JSON. Unknown fields,
// structural damage, and out-of-range values all yield a *CalibrationError;
// the function never panics.
func ParseCalibration(data []byte) (*Calibration, error) {
	if len(data) > maxCalibrationJSON {
		return nil, calibErrf("%d bytes exceeds the %d-byte cap", len(data), maxCalibrationJSON)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Calibration
	if err := dec.Decode(&c); err != nil {
		return nil, calibErrf("parsing: %v", err)
	}
	// Trailing garbage after the object is damage, not a second document.
	if dec.More() {
		return nil, calibErrf("trailing data after the calibration object")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// EncodeJSON serializes the calibration in the format ParseCalibration
// reads.
func (c *Calibration) EncodeJSON() []byte {
	buf, err := json.Marshal(c)
	if err != nil {
		// Unreachable: the struct contains only floats and arrays.
		panic("perception: encoding calibration: " + err.Error())
	}
	return buf
}

// RectifyPair warps a raw captured stereo pair onto the rectified frame.
// It is exactly rectify.RectifyPair under this calibration — the serving
// path and an offline rectification produce bit-identical images.
func (c *Calibration) RectifyPair(left, right *imgproc.Image) (*imgproc.Image, *imgproc.Image) {
	return rectify.RectifyPair(left, right, c.Intrinsics(), c.RotLeft(), c.RotRight())
}

// Rectified reports whether rectification is an identity warp (all six
// Euler angles are exactly zero).
func (c *Calibration) Rectified() bool {
	return c.LeftRPY == [3]float64{} && c.RightRPY == [3]float64{}
}

// DepthMap converts a disparity map into metric depth on the same grid:
// Z = fx·B/d in metres. Invalid disparities map to 0 (never negative, so a
// PFM round trip preserves the validity convention).
func DepthMap(disp *imgproc.Image, c *Calibration) *imgproc.Image {
	out := imgproc.NewImage(disp.W, disp.H)
	fb := float32(c.Fx * c.BaselineM)
	for i, d := range disp.Pix {
		// d >= MinValidDisp is false for NaN; an infinite disparity divides
		// to exactly 0, which is already the invalid marker.
		if d >= MinValidDisp {
			out.Pix[i] = fb / d
		}
	}
	return out
}
