package perception

import (
	"bytes"
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"

	"asv/internal/dataset"
	"asv/internal/imgproc"
	"asv/internal/rectify"
)

func testCalib() *Calibration {
	c := DefaultCalibration(64, 48)
	c.LeftRPY = [3]float64{0.004, -0.003, 0.002}
	c.RightRPY = [3]float64{-0.002, 0.005, -0.003}
	return c
}

func TestCalibrationJSONRoundTrip(t *testing.T) {
	want := testCalib()
	got, err := ParseCalibration(want.EncodeJSON())
	if err != nil {
		t.Fatalf("ParseCalibration(EncodeJSON): %v", err)
	}
	if *got != *want {
		t.Fatalf("round trip changed the calibration: %+v != %+v", got, want)
	}
}

func TestParseCalibrationRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            ``,
		"not json":         `{`,
		"unknown field":    `{"fx":64,"fy":64,"cx":32,"cy":24,"baseline_m":0.1,"zoom":2}`,
		"zero focal":       `{"fx":0,"fy":64,"cx":32,"cy":24,"baseline_m":0.1}`,
		"negative base":    `{"fx":64,"fy":64,"cx":32,"cy":24,"baseline_m":-1}`,
		"huge baseline":    `{"fx":64,"fy":64,"cx":32,"cy":24,"baseline_m":101}`,
		"tilt too large":   `{"fx":64,"fy":64,"cx":32,"cy":24,"baseline_m":0.1,"left_rpy":[1.6,0,0]}`,
		"trailing garbage": `{"fx":64,"fy":64,"cx":32,"cy":24,"baseline_m":0.1} extra`,
		"wrong type":       `{"fx":"wide","fy":64,"cx":32,"cy":24,"baseline_m":0.1}`,
	}
	for name, in := range cases {
		if _, err := ParseCalibration([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		} else {
			var ce *CalibrationError
			if !errors.As(err, &ce) {
				t.Errorf("%s: error %v is not a *CalibrationError", name, err)
			}
		}
	}
}

// TestRectifyPairMatchesOffline pins the tentpole's bit-identity contract:
// rectifying through the calibration is exactly rectify.RectifyPair.
func TestRectifyPairMatchesOffline(t *testing.T) {
	c := testCalib()
	fr := dataset.Generate(dataset.KITTILike(64, 48, 1, 5)[0]).Frames[0]
	rawL := rectify.Misalign(fr.Left, c.Intrinsics(), c.RotLeft())
	rawR := rectify.Misalign(fr.Right, c.Intrinsics(), c.RotRight())

	gotL, gotR := c.RectifyPair(rawL, rawR)
	wantL, wantR := rectify.RectifyPair(rawL, rawR, c.Intrinsics(), c.RotLeft(), c.RotRight())
	for i := range gotL.Pix {
		if gotL.Pix[i] != wantL.Pix[i] || gotR.Pix[i] != wantR.Pix[i] {
			t.Fatalf("calibration rectification diverges from rectify.RectifyPair at pixel %d", i)
		}
	}
}

func TestDepthMapTriangulation(t *testing.T) {
	c := DefaultCalibration(8, 4)
	disp := imgproc.NewImage(8, 4)
	disp.Set(0, 0, 4)                          // valid
	disp.Set(1, 0, 0)                          // invalid: zero
	disp.Set(2, 0, -3)                         // invalid: negative
	disp.Set(3, 0, float32(math.NaN()))        // invalid: NaN
	disp.Set(4, 0, float32(math.Inf(1)))       // infinite disparity -> depth 0
	disp.Set(5, 0, float32(MinValidDisp/10.0)) // below the validity floor

	z := DepthMap(disp, c)
	want := float32(c.Fx * c.BaselineM / 4)
	if z.At(0, 0) != want {
		t.Errorf("depth(4px) = %g, want %g", z.At(0, 0), want)
	}
	for x := 1; x <= 5; x++ {
		if z.At(x, 0) != 0 {
			t.Errorf("invalid disparity at x=%d produced depth %g, want 0", x, z.At(x, 0))
		}
	}
}

func TestReprojectValidityAndGeometry(t *testing.T) {
	c := DefaultCalibration(8, 4)
	disp := imgproc.NewImage(8, 4)
	inten := imgproc.NewImage(8, 4)
	disp.Set(2, 1, 8)
	inten.Set(2, 1, 0.5)
	disp.Set(5, 3, float32(math.NaN()))
	disp.Set(6, 3, -1)

	cl := Reproject(disp, inten, c)
	if len(cl.Points) != 1 {
		t.Fatalf("got %d points, want exactly the one valid pixel", len(cl.Points))
	}
	p := cl.Points[0]
	z := c.Fx * c.BaselineM / 8
	if math.Abs(float64(p.Z)-z) > 1e-6 {
		t.Errorf("Z = %g, want %g", p.Z, z)
	}
	wantX := (2 - c.Cx) * z / c.Fx
	wantY := (1 - c.Cy) * z / c.Fy
	if math.Abs(float64(p.X)-wantX) > 1e-6 || math.Abs(float64(p.Y)-wantY) > 1e-6 {
		t.Errorf("XY = (%g, %g), want (%g, %g)", p.X, p.Y, wantX, wantY)
	}
	if p.I != 0.5 {
		t.Errorf("intensity %g, want 0.5", p.I)
	}

	st := cl.Stats()
	if st.Points != 1 || st.Grid != 32 {
		t.Errorf("stats points/grid = %d/%d, want 1/32", st.Points, st.Grid)
	}
	if st.P50Z != st.MinZ || st.MaxZ != st.MinZ {
		t.Errorf("single-point percentiles disagree: %+v", st)
	}
}

func TestCloudStatsPercentiles(t *testing.T) {
	cl := &Cloud{W: 10, H: 1}
	for i := 1; i <= 10; i++ {
		cl.Points = append(cl.Points, Point{Z: float32(i)})
	}
	st := cl.Stats()
	if st.P10Z != 1 || st.P50Z != 5 || st.P90Z != 9 || st.MinZ != 1 || st.MaxZ != 10 {
		t.Fatalf("percentiles: %+v", st)
	}
	if math.Abs(st.MeanZ-5.5) > 1e-12 || st.ValidFrac != 1.0 {
		t.Fatalf("mean/valid: %+v", st)
	}
}

func testCloud(t *testing.T) *Cloud {
	t.Helper()
	c := testCalib()
	fr := dataset.Generate(dataset.KITTILike(48, 32, 1, 9)[0]).Frames[0]
	return Reproject(fr.GT, fr.Left, c)
}

func TestCloudCodecRoundTrip(t *testing.T) {
	cl := testCloud(t)
	buf := EncodeCloud(cl)
	got, err := DecodeCloud(buf, 0)
	if err != nil {
		t.Fatalf("DecodeCloud: %v", err)
	}
	if got.W != cl.W || got.H != cl.H || len(got.Points) != len(cl.Points) {
		t.Fatalf("shape changed: %dx%d/%d != %dx%d/%d",
			got.W, got.H, len(got.Points), cl.W, cl.H, len(cl.Points))
	}
	for i := range got.Points {
		if got.Points[i] != cl.Points[i] {
			t.Fatalf("point %d changed: %+v != %+v", i, got.Points[i], cl.Points[i])
		}
	}
	if !bytes.Equal(EncodeCloud(got), buf) {
		t.Fatal("re-encode is not bit-identical")
	}
}

func TestDecodeCloudRejectsDamage(t *testing.T) {
	valid := EncodeCloud(testCloud(t))
	mustFail := func(name string, data []byte) {
		t.Helper()
		_, err := DecodeCloud(data, 0)
		var ce *CloudError
		if err == nil || !errors.As(err, &ce) {
			t.Errorf("%s: err=%v, want *CloudError", name, err)
		}
	}
	mustFail("empty", nil)
	mustFail("truncated", valid[:len(valid)-5])
	mustFail("bad magic", append([]byte("NOPCLD!"), valid[7:]...))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2]++
	mustFail("bit flip", flipped)
	bumped := append([]byte(nil), valid...)
	bumped[6] = 99
	mustFail("future version", bumped)
	if _, err := DecodeCloud(valid, 1); err == nil {
		t.Error("point cap not enforced")
	}
}

func TestPLYWriters(t *testing.T) {
	cl := testCloud(t)

	var asc bytes.Buffer
	if err := WritePLYASCII(&asc, cl); err != nil {
		t.Fatalf("WritePLYASCII: %v", err)
	}
	text := asc.String()
	if !strings.HasPrefix(text, "ply\nformat ascii 1.0\n") {
		t.Fatalf("ascii header: %q", text[:40])
	}
	if !strings.Contains(text, "element vertex "+strconv.Itoa(len(cl.Points))+"\n") {
		t.Fatal("ascii header misses the vertex count")
	}
	// 9 header lines + one line per point.
	if got := strings.Count(text, "\n"); got != 9+len(cl.Points) {
		t.Fatalf("ascii has %d lines, want %d", got, 9+len(cl.Points))
	}

	var bin bytes.Buffer
	if err := WritePLYBinary(&bin, cl); err != nil {
		t.Fatalf("WritePLYBinary: %v", err)
	}
	raw := bin.Bytes()
	if !bytes.HasPrefix(raw, []byte("ply\nformat binary_little_endian 1.0\n")) {
		t.Fatal("binary header wrong")
	}
	idx := bytes.Index(raw, []byte("end_header\n"))
	if idx < 0 {
		t.Fatal("binary PLY misses end_header")
	}
	body := raw[idx+len("end_header\n"):]
	if len(body) != 16*len(cl.Points) {
		t.Fatalf("binary body is %d bytes, want %d", len(body), 16*len(cl.Points))
	}
}
