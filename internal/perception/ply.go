package perception

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
)

// PLY writers. PLY is the de-facto interchange format for point clouds
// (MeshLab, CloudCompare, Open3D all read it); both the human-readable
// ASCII profile and the compact binary_little_endian profile are emitted
// with identical vertex layout: x, y, z, intensity as float32.

// plyHeader writes the shared header for n vertices.
func plyHeader(w io.Writer, format string, n int) error {
	_, err := fmt.Fprintf(w, "ply\nformat %s 1.0\ncomment asv perception point cloud\n"+
		"element vertex %d\n"+
		"property float x\nproperty float y\nproperty float z\nproperty float intensity\n"+
		"end_header\n", format, n)
	return err
}

// WritePLYASCII writes the cloud as ASCII PLY. Coordinates are formatted
// with strconv's shortest float32-round-trip representation, so the output
// is deterministic and loses no precision.
func WritePLYASCII(w io.Writer, c *Cloud) error {
	bw := bufio.NewWriter(w)
	if err := plyHeader(bw, "ascii", len(c.Points)); err != nil {
		return err
	}
	var line []byte
	for _, p := range c.Points {
		line = line[:0]
		line = strconv.AppendFloat(line, float64(p.X), 'g', -1, 32)
		line = append(line, ' ')
		line = strconv.AppendFloat(line, float64(p.Y), 'g', -1, 32)
		line = append(line, ' ')
		line = strconv.AppendFloat(line, float64(p.Z), 'g', -1, 32)
		line = append(line, ' ')
		line = strconv.AppendFloat(line, float64(p.I), 'g', -1, 32)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePLYBinary writes the cloud as binary_little_endian PLY.
func WritePLYBinary(w io.Writer, c *Cloud) error {
	bw := bufio.NewWriter(w)
	if err := plyHeader(bw, "binary_little_endian", len(c.Points)); err != nil {
		return err
	}
	var buf [16]byte
	for _, p := range c.Points {
		binary.LittleEndian.PutUint32(buf[0:], math.Float32bits(p.X))
		binary.LittleEndian.PutUint32(buf[4:], math.Float32bits(p.Y))
		binary.LittleEndian.PutUint32(buf[8:], math.Float32bits(p.Z))
		binary.LittleEndian.PutUint32(buf[12:], math.Float32bits(p.I))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
