package perception

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"asv/internal/imgproc"
)

// Point is one reprojected sample: metric coordinates in the left camera
// frame plus the source pixel's intensity (0 when no intensity image was
// supplied).
type Point struct {
	X, Y, Z, I float32
}

// Cloud is a reprojected point cloud. Points are in row-major scan order of
// the source disparity grid with invalid pixels dropped, so clouds built
// from identical inputs are bit-identical — the property the golden tests
// and the snapshot-migration oracle pin.
type Cloud struct {
	// W, H is the source disparity grid the cloud was reprojected from.
	W, H   int
	Points []Point
}

// Reproject triangulates every valid disparity into a 3D point (see the
// package comment for the pinhole equations). intensity, when non-nil,
// must match disp's geometry and fills each point's I channel — pass the
// rectified left view to get a colorable cloud.
func Reproject(disp, intensity *imgproc.Image, c *Calibration) *Cloud {
	if intensity != nil && (intensity.W != disp.W || intensity.H != disp.H) {
		panic(fmt.Sprintf("perception: intensity %dx%d does not match disparity %dx%d",
			intensity.W, intensity.H, disp.W, disp.H))
	}
	fb := c.Fx * c.BaselineM
	out := &Cloud{W: disp.W, H: disp.H}
	for y := 0; y < disp.H; y++ {
		row := disp.Pix[y*disp.W : (y+1)*disp.W]
		for x, d := range row {
			if !(d >= MinValidDisp) || math.IsInf(float64(d), 0) {
				continue
			}
			z := fb / float64(d)
			p := Point{
				X: float32((float64(x) - c.Cx) * z / c.Fx),
				Y: float32((float64(y) - c.Cy) * z / c.Fy),
				Z: float32(z),
			}
			if intensity != nil {
				p.I = intensity.Pix[y*disp.W+x]
			}
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// CloudStats is the per-cloud metrics digest: how much of the grid
// triangulated and where the depth mass sits. Percentiles are computed over
// the points' Z values (metres).
type CloudStats struct {
	Points    int     `json:"points"`
	Grid      int     `json:"grid_pixels"`
	ValidFrac float64 `json:"valid_frac"`
	MinZ      float64 `json:"min_z_m"`
	P10Z      float64 `json:"p10_z_m"`
	P50Z      float64 `json:"p50_z_m"`
	P90Z      float64 `json:"p90_z_m"`
	MaxZ      float64 `json:"max_z_m"`
	MeanZ     float64 `json:"mean_z_m"`
}

// Stats digests the cloud. An empty cloud reports zeros.
func (c *Cloud) Stats() CloudStats {
	st := CloudStats{Points: len(c.Points), Grid: c.W * c.H}
	if st.Grid > 0 {
		st.ValidFrac = float64(st.Points) / float64(st.Grid)
	}
	if len(c.Points) == 0 {
		return st
	}
	zs := make([]float64, len(c.Points))
	var sum float64
	for i, p := range c.Points {
		zs[i] = float64(p.Z)
		sum += float64(p.Z)
	}
	sort.Float64s(zs)
	pct := func(q float64) float64 {
		idx := int(q*float64(len(zs))) - 1
		if idx < 0 {
			idx = 0
		}
		return zs[idx]
	}
	st.MinZ = zs[0]
	st.P10Z = pct(0.10)
	st.P50Z = pct(0.50)
	st.P90Z = pct(0.90)
	st.MaxZ = zs[len(zs)-1]
	st.MeanZ = sum / float64(len(zs))
	return st
}

// --- streaming binary codec ---------------------------------------------
//
// Wire format "ASVPCD", version 1, all integers little-endian:
//
//	[6]byte  magic "ASVPCD"
//	uint8    version (1)
//	uint32   grid width, uint32 grid height
//	uint32   point count (≤ width·height)
//	count ×  4 float32 (x, y, z, intensity)
//	uint32   IEEE CRC32 of everything before it (magic included)
//
// Like the session snapshot codec it is strictly versioned and fully
// validated: truncation, bad counts, non-finite coordinates, trailing
// bytes, or a CRC mismatch yield a typed *CloudError, never a panic.

// CloudCodecVersion is the wire-format version this build writes.
const CloudCodecVersion = 1

const cloudMagic = "ASVPCD"

// cloudMaxDim caps the decoded grid dimensions.
const cloudMaxDim = 1 << 15

// CloudError is the typed failure for corrupt point-cloud bytes.
type CloudError struct{ msg string }

func (e *CloudError) Error() string { return "cloud: " + e.msg }

func cloudErrf(format string, args ...any) *CloudError {
	return &CloudError{msg: fmt.Sprintf(format, args...)}
}

// EncodeCloud serializes the cloud into the versioned binary format.
func EncodeCloud(c *Cloud) []byte {
	buf := make([]byte, 0, len(cloudMagic)+1+12+16*len(c.Points)+4)
	buf = append(buf, cloudMagic...)
	buf = append(buf, CloudCodecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.W))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.H))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Points)))
	for _, p := range c.Points {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(p.X))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(p.Y))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(p.Z))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(p.I))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeCloud parses and validates cloud bytes. maxPoints bounds the
// allocation a hostile payload can force (≤ 0 selects a 2^24 default).
// Anything DecodeCloud accepts re-encodes to the identical bytes.
func DecodeCloud(data []byte, maxPoints int) (*Cloud, error) {
	if maxPoints <= 0 {
		maxPoints = 1 << 24
	}
	header := len(cloudMagic) + 1 + 12
	if len(data) < header+4 {
		return nil, cloudErrf("%d bytes is shorter than any cloud", len(data))
	}
	if string(data[:len(cloudMagic)]) != cloudMagic {
		return nil, cloudErrf("bad magic %q", data[:len(cloudMagic)])
	}
	if v := data[len(cloudMagic)]; v != CloudCodecVersion {
		return nil, cloudErrf("unsupported version %d (this build reads %d)", v, CloudCodecVersion)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, cloudErrf("checksum mismatch (computed %08x, recorded %08x)", got, want)
	}
	pos := len(cloudMagic) + 1
	w := binary.LittleEndian.Uint32(body[pos:])
	h := binary.LittleEndian.Uint32(body[pos+4:])
	n := binary.LittleEndian.Uint32(body[pos+8:])
	pos += 12
	if w < 1 || w > cloudMaxDim || h < 1 || h > cloudMaxDim {
		return nil, cloudErrf("grid %dx%d out of range [1, %d]", w, h, cloudMaxDim)
	}
	if uint64(n) > uint64(w)*uint64(h) {
		return nil, cloudErrf("%d points exceed the %dx%d grid", n, w, h)
	}
	if int64(n) > int64(maxPoints) {
		return nil, cloudErrf("%d points exceed the %d-point cap", n, maxPoints)
	}
	if len(body)-pos != 16*int(n) {
		return nil, cloudErrf("payload is %d bytes, %d points need %d", len(body)-pos, n, 16*int(n))
	}
	out := &Cloud{W: int(w), H: int(h), Points: make([]Point, n)}
	for i := range out.Points {
		p := &out.Points[i]
		p.X = math.Float32frombits(binary.LittleEndian.Uint32(body[pos:]))
		p.Y = math.Float32frombits(binary.LittleEndian.Uint32(body[pos+4:]))
		p.Z = math.Float32frombits(binary.LittleEndian.Uint32(body[pos+8:]))
		p.I = math.Float32frombits(binary.LittleEndian.Uint32(body[pos+12:]))
		pos += 16
		for _, v := range [4]float32{p.X, p.Y, p.Z, p.I} {
			if v != v || math.IsInf(float64(v), 0) {
				return nil, cloudErrf("non-finite coordinate in point %d", i)
			}
		}
	}
	return out, nil
}
