package perception

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCalibrationJSON hammers the calibration decoder with arbitrary bytes.
// Contract: never panic, reject only with *CalibrationError, and anything
// accepted must survive an encode/decode round trip unchanged (the property
// the snapshot codec and the serving layer both lean on).
func FuzzCalibrationJSON(f *testing.F) {
	f.Add([]byte(testCalib().EncodeJSON()))
	f.Add([]byte(DefaultCalibration(320, 200).EncodeJSON()))
	f.Add([]byte(`{"fx":64,"fy":64,"cx":32,"cy":24,"baseline_m":0.12}`))
	f.Add([]byte(`{"fx":0}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"fx":1e999,"fy":64,"cx":32,"cy":24,"baseline_m":0.1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseCalibration(data)
		if err != nil {
			var ce *CalibrationError
			if !errors.As(err, &ce) {
				t.Fatalf("rejection %v is not a *CalibrationError", err)
			}
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted calibration fails Validate: %v", err)
		}
		back, err := ParseCalibration(c.EncodeJSON())
		if err != nil {
			t.Fatalf("re-parse of accepted calibration failed: %v", err)
		}
		if *back != *c {
			t.Fatalf("round trip changed the calibration: %+v != %+v", back, c)
		}
	})
}

// FuzzCloudDecode hammers the binary point-cloud decoder. Contract: never
// panic, reject only with *CloudError, and anything accepted must re-encode
// to the identical bytes (the codec is canonical).
func FuzzCloudDecode(f *testing.F) {
	f.Add(EncodeCloud(&Cloud{W: 1, H: 1}))
	small := &Cloud{W: 2, H: 2, Points: []Point{{1, 2, 3, 0.5}, {-1, -2, 30, 1}}}
	f.Add(EncodeCloud(small))
	damaged := EncodeCloud(small)
	damaged[9] ^= 0xff
	f.Add(damaged)
	f.Add([]byte("ASVPCD"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCloud(data, 1<<16)
		if err != nil {
			var ce *CloudError
			if !errors.As(err, &ce) {
				t.Fatalf("rejection %v is not a *CloudError", err)
			}
			return
		}
		if !bytes.Equal(EncodeCloud(c), data) {
			t.Fatal("accepted bytes do not re-encode bit-identically")
		}
	})
}
