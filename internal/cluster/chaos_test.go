package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/imgproc"
	"asv/internal/serve"
	"asv/internal/stereo"
)

// TestChaosShardDeathMidStream is the cluster-grade failure drill: a
// three-shard cluster with per-frame checkpoints into a shared spill store,
// streams in flight on every shard, and one shard killed (listener torn
// down, no drain, no goodbye) mid-stream. The requirements afterwards:
//
//   - not a single 5xx reaches any client;
//   - every stream — including those owned by the dead shard — continues
//     frame-for-frame bit-identical to an uninterrupted serial pipeline,
//     which means the surviving shards adopted the dead shard's sessions
//     from their last checkpoints with full ISM state (key-frame cadence,
//     propagation planes, frame indices) intact.
//
// Run under -race in CI (scripts/cluster_smoke.sh and the race gate).
func TestChaosShardDeathMidStream(t *testing.T) {
	const (
		nShards   = 3
		nSessions = 6
		wPx, hPx  = 48, 32
		nFrames   = 8
		killAfter = 4 // frames completed per session before the kill
		pw        = 2
		seedBase  = int64(9000)
	)

	spillDir := t.TempDir()
	opt := stereo.DefaultBMOptions()
	opt.MaxDisp = 12
	matcher := core.BMMatcher{Opt: opt}

	type shard struct {
		name string
		srv  *serve.Server
		url  string
	}
	shards := make([]shard, nShards)
	var gwShards []Shard
	for i := range shards {
		cfg := serve.DefaultConfig()
		cfg.Workers = 1
		cfg.SpillDir = spillDir
		cfg.CheckpointEvery = 1
		srv := serve.New(matcher, cfg)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("chaos-%d", i)
		shards[i] = shard{name: name, srv: srv, url: "http://" + addr.String()}
		gwShards = append(gwShards, Shard{Name: name, URL: shards[i].url})
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			//asvlint:ignore droppederr the killed shard reports a closed listener; expected
			srv.Close(ctx)
		})
	}

	g, err := New(Config{Shards: gwShards})
	if err != nil {
		t.Fatal(err)
	}
	gwAddr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gwURL := "http://" + gwAddr.String()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := g.Close(ctx); err != nil {
			t.Errorf("closing gateway: %v", err)
		}
	})

	// Create the sessions through the gateway and build each one's oracle:
	// a serial pipeline over the identical synthetic sequence.
	type stream struct {
		id   string
		want []core.Result
	}
	streams := make([]stream, nSessions)
	ocfg := serve.DefaultConfig().Pipeline
	ocfg.PW = pw
	for i := range streams {
		seed := seedBase + int64(i)
		body := fmt.Sprintf(`{"pw":%d,"preset":"sceneflow","w":%d,"h":%d,"frames":%d,"seed":%d}`,
			pw, wPx, hPx, nFrames, seed)
		resp, err := http.Post(gwURL+"/v1/sessions", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: %d: %s", resp.StatusCode, raw)
		}
		var info serve.SessionInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			t.Fatal(err)
		}
		streams[i].id = info.ID

		seq := dataset.Generate(dataset.SceneFlowLike(wPx, hPx, nFrames, seed)[0])
		oracle := core.New(matcher, ocfg)
		streams[i].want = make([]core.Result, nFrames)
		for f := 0; f < nFrames; f++ {
			streams[i].want[f] = oracle.Process(seq.Frames[f].Left, seq.Frames[f].Right)
		}
	}

	// checkFrame submits frame f of stream st through the gateway and holds
	// it against the oracle. Every response must be a 200 — the chaos bar.
	checkFrame := func(st stream, f int) {
		t.Helper()
		resp, err := http.Post(gwURL+"/v1/sessions/"+st.id+"/frames?disparity=pfm", "", nil)
		if err != nil {
			t.Fatalf("frame %d of %s: transport: %v", f, st.id, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("frame %d of %s: status %d (client saw a failure): %s", f, st.id, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Asv-Frame"); got != strconv.Itoa(f) {
			t.Fatalf("stream %s: expected frame %d, shard served %s — stream state was lost", st.id, f, got)
		}
		isKey, _ := strconv.ParseBool(resp.Header.Get("X-Asv-Is-Key"))
		if isKey != st.want[f].IsKey {
			t.Fatalf("frame %d of %s: is_key=%v, oracle says %v — ISM cadence broke", f, st.id, isKey, st.want[f].IsKey)
		}
		got, err := imgproc.ReadPFM(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("frame %d of %s: %v", f, st.id, err)
		}
		for p := range got.Pix {
			if got.Pix[p] != st.want[f].Disparity.Pix[p] {
				t.Fatalf("frame %d of %s diverges at pixel %d: %g vs oracle %g",
					f, st.id, p, got.Pix[p], st.want[f].Disparity.Pix[p])
			}
		}
	}

	// Phase 1: advance every stream to the kill point.
	for f := 0; f < killAfter; f++ {
		for _, st := range streams {
			checkFrame(st, f)
		}
	}

	// Kill the shard owning stream 0 — ungracefully. Its checkpoints are
	// the only copy of its sessions' state.
	victim := g.ring.Owner(streams[0].id)
	victimOwned := 0
	for _, st := range streams {
		if g.ring.Owner(st.id) == victim {
			victimOwned++
		}
	}
	for _, sh := range shards {
		if sh.name == victim {
			if err := sh.srv.Kill(); err != nil {
				t.Fatalf("killing shard %s: %v", victim, err)
			}
		}
	}

	// Phase 2: every stream continues — the victim's through failover plus
	// checkpoint adoption, the others untouched.
	for f := killAfter; f < nFrames; f++ {
		for _, st := range streams {
			checkFrame(st, f)
		}
	}

	if g.failovers.Load() == 0 {
		t.Fatal("no failover recorded although a shard died with live sessions")
	}

	// The survivors must report adopting the dead shard's sessions from
	// the shared spill store.
	adopted := int64(0)
	for _, sh := range shards {
		if sh.name == victim {
			continue
		}
		resp, err := http.Get(sh.url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var m struct {
			Serve struct {
				DiskRestores int64 `json:"disk_restores"`
			} `json:"serve"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		adopted += m.Serve.DiskRestores
	}
	if adopted < int64(victimOwned) {
		t.Fatalf("survivors adopted %d sessions from disk, the dead shard owned %d", adopted, victimOwned)
	}
}
