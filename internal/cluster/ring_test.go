package cluster

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenShards/goldenKeys define the pinned routing corpus. The golden file
// locks the ring's placement function: FNV-64a with the fmix64 finalizer,
// the "name#replica" vnode key scheme, and the clockwise-successor rule. If any of those change,
// every deployed cluster's sessions move — so the change must show up as a
// deliberate golden-file update in review, not slip through silently.
var goldenShards = []string{"shard-a", "shard-b", "shard-c", "shard-d"}

func goldenKeys() []string {
	keys := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		keys = append(keys, fmt.Sprintf("s%013x", i*0x9e3779b9))
	}
	return keys
}

func TestRingGolden(t *testing.T) {
	ring := NewRing(goldenShards, DefaultReplicas)
	path := filepath.Join("testdata", "ring_golden.txt")

	if *updateGolden {
		var sb strings.Builder
		sb.WriteString("# key -> owner, ring over shard-a..shard-d, 64 replicas, FNV-64a+fmix64\n")
		for _, k := range goldenKeys() {
			fmt.Fprintf(&sb, "%s %s\n", k, ring.Owner(k))
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to generate): %v", err)
	}
	defer f.Close()

	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		lines++
		if got := ring.Owner(parts[0]); got != parts[1] {
			t.Errorf("Owner(%q) = %q, golden says %q — the placement function changed", parts[0], got, parts[1])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != len(goldenKeys()) {
		t.Fatalf("golden file has %d entries, corpus has %d", lines, len(goldenKeys()))
	}
}

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := NewRing([]string{"x", "y", "z"}, 32)
	b := NewRing([]string{"z", "x", "y", "x"}, 32) // shuffled + duplicate
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%d", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("shard order changed placement for %q: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
	if got := fmt.Sprint(b.Shards()); got != "[x y z]" {
		t.Fatalf("Shards() = %s", got)
	}
}

func TestRingEmptyAndAllDown(t *testing.T) {
	if got := NewRing(nil, 8).Owner("k"); got != "" {
		t.Fatalf("empty ring owned %q", got)
	}
	r := NewRing([]string{"only"}, 8)
	if got := r.OwnerAvoiding("k", map[string]bool{"only": true}); got != "" {
		t.Fatalf("fully-down ring owned %q", got)
	}
}

// TestRingMinimalRemapping is the consistent-hashing contract: removing one
// of N shards moves ONLY the keys that shard owned (≈1/N of them), and
// adding a shard moves keys only onto the newcomer.
func TestRingMinimalRemapping(t *testing.T) {
	const nKeys = 4000
	shards := []string{"n0", "n1", "n2", "n3", "n4"}
	full := NewRing(shards, DefaultReplicas)

	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("sess-%06d", i)
	}

	t.Run("remove", func(t *testing.T) {
		const removed = "n2"
		reduced := NewRing([]string{"n0", "n1", "n3", "n4"}, DefaultReplicas)
		moved, ownedByRemoved := 0, 0
		for _, k := range keys {
			before, after := full.Owner(k), reduced.Owner(k)
			if before == removed {
				ownedByRemoved++
				if after == removed {
					t.Fatalf("%q still routed to the removed shard", k)
				}
				continue
			}
			if before != after {
				moved++
				t.Errorf("%q moved %q→%q though its owner did not leave", k, before, after)
			}
		}
		if moved > 0 {
			t.Fatalf("%d keys moved whose owner survived; consistent hashing promises 0", moved)
		}
		// The departed shard's share should be roughly 1/N.
		frac := float64(ownedByRemoved) / nKeys
		if frac < 0.5/float64(len(shards)) || frac > 2.0/float64(len(shards)) {
			t.Fatalf("removed shard owned %.1f%% of keys; expected ≈%.1f%%", 100*frac, 100.0/float64(len(shards)))
		}

		// OwnerAvoiding must agree with a rebuilt ring: marking a shard
		// down routes identically to removing it.
		down := map[string]bool{removed: true}
		for _, k := range keys {
			if got, want := full.OwnerAvoiding(k, down), reduced.Owner(k); got != want {
				t.Fatalf("OwnerAvoiding(%q) = %q, rebuilt ring says %q", k, got, want)
			}
		}
	})

	t.Run("add", func(t *testing.T) {
		grown := NewRing(append(append([]string{}, shards...), "n5"), DefaultReplicas)
		moved := 0
		for _, k := range keys {
			before, after := full.Owner(k), grown.Owner(k)
			if before == after {
				continue
			}
			if after != "n5" {
				t.Fatalf("%q moved %q→%q; growth may only move keys onto the new shard", k, before, after)
			}
			moved++
		}
		frac := float64(moved) / nKeys
		want := 1.0 / float64(len(shards)+1)
		if frac > 2*want {
			t.Fatalf("adding one shard moved %.1f%% of keys; expected ≈%.1f%%", 100*frac, 100*want)
		}
		if moved == 0 {
			t.Fatal("adding a shard moved no keys at all")
		}
	})
}

// TestRingBalance bounds the load skew: with DefaultReplicas vnodes no
// shard should own more than ~2× its fair share of a large key set. This
// is the regression gate for the hash's avalanche finalizer — raw FNV over
// the near-identical vnode keys clusters a shard's points into arcs and
// fails this test with a 6× skew.
func TestRingBalance(t *testing.T) {
	shards := []string{"shard-0", "shard-1", "shard-2", "shard-3", "shard-4"}
	ring := NewRing(shards, DefaultReplicas)
	counts := make(map[string]int)
	const nKeys = 10000
	for i := 0; i < nKeys; i++ {
		counts[ring.Owner(fmt.Sprintf("sess-%06d", i))]++
	}
	fair := float64(nKeys) / float64(len(shards))
	for s, n := range counts {
		if float64(n) > 2*fair || float64(n) < fair/3 {
			t.Errorf("shard %s owns %d keys (fair share %.0f)", s, n, fair)
		}
	}
	if len(counts) != len(shards) {
		t.Fatalf("only %d of %d shards own any keys", len(counts), len(shards))
	}
}
