package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"asv/internal/serve"
)

// Shard is one asvserve backend.
type Shard struct {
	Name string `json:"name"` // ring identity; stable across restarts
	URL  string `json:"url"`  // e.g. "http://127.0.0.1:9101"
}

// Config tunes the gateway.
type Config struct {
	// Shards is the backend set. Names are the ring identities: keep them
	// stable across restarts and address changes, or every session moves.
	Shards []Shard
	// Replicas is the consistent-hash vnode count per shard (0 = default).
	Replicas int
	// HealthInterval is the period of the background health prober; zero
	// disables it (shards are then only marked down by failed proxies).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe.
	HealthTimeout time.Duration
	// MaxBody caps a buffered request body (bodies are buffered so a
	// request can be replayed against the failover owner).
	MaxBody int64
	// Client issues proxied requests. Nil gets a default with a 30 s
	// timeout.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = DefaultReplicas
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.MaxBody < 1 {
		c.MaxBody = 64 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// Gateway is the stateless routing tier of a sharded asvserve cluster. It
// owns no session state: a session id deterministically names its shard via
// the ring, so any number of gateway replicas route identically. What it
// does own is failure handling — health probing, marking shards down,
// retrying a routed request on the ring's next owner (whose restore-on-miss
// over a shared spill store makes the retry land on real session state),
// and the drain protocol that explicitly migrates sessions off a shard.
type Gateway struct {
	cfg    Config
	ring   *Ring
	byName map[string]Shard
	down   *downSet // health state: flipped by probes and proxy failures
	// drained is administrative state: shards explicitly taken out via the
	// drain endpoint. Kept apart from down because the health prober would
	// otherwise resurrect a drained-but-alive shard — whose sessions were
	// just deleted — and route its old keys back into 404s.
	drained *downSet
	mux     *http.ServeMux

	httpSrv  *http.Server
	serveErr chan error

	stopHealth chan struct{}
	healthWG   sync.WaitGroup

	// Counters for /metrics.
	proxied     atomic.Int64 // requests forwarded (first attempts)
	failovers   atomic.Int64 // re-routes after a transport failure
	minted      atomic.Int64 // session ids minted for creates
	probeDowns  atomic.Int64 // health-probe down transitions
	migrations  atomic.Int64 // sessions moved by drain
	unroutable  atomic.Int64 // requests with no live shard to take them
	proxyErrors atomic.Int64 // transport failures talking to shards
}

// New builds a gateway and starts its health prober (when configured).
// Callers must Close it.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: gateway needs at least one shard")
	}
	names := make([]string, 0, len(cfg.Shards))
	byName := make(map[string]Shard, len(cfg.Shards))
	for _, s := range cfg.Shards {
		if s.Name == "" || s.URL == "" {
			return nil, fmt.Errorf("cluster: shard needs both name and url (got %+v)", s)
		}
		if _, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", s.Name)
		}
		byName[s.Name] = s
		names = append(names, s.Name)
	}
	g := &Gateway{
		cfg:        cfg,
		ring:       NewRing(names, cfg.Replicas),
		byName:     byName,
		down:       newDownSet(),
		drained:    newDownSet(),
		serveErr:   make(chan error, 1),
		stopHealth: make(chan struct{}),
	}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/sessions", g.handleCreate)
	g.mux.HandleFunc("/v1/sessions/{id}", g.handleProxy)
	g.mux.HandleFunc("/v1/sessions/{id}/{rest...}", g.handleProxy)
	g.mux.HandleFunc("POST /v1/cluster/drain/{shard}", g.handleDrain)
	g.mux.HandleFunc("GET /v1/cluster", g.handleClusterInfo)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)

	if cfg.HealthInterval > 0 {
		g.healthWG.Add(1)
		go g.healthLoop()
	}
	return g, nil
}

// Handler exposes the gateway's routes (for tests and embedding).
func (g *Gateway) Handler() http.Handler { return g.mux }

// Start listens on addr and serves until Close.
func (g *Gateway) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	g.httpSrv = &http.Server{Handler: g.mux}
	go func() {
		if err := g.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			g.serveErr <- err
		}
	}()
	return ln.Addr(), nil
}

// Close stops the listener (if any) and the health prober.
func (g *Gateway) Close(ctx context.Context) error {
	var err error
	if g.httpSrv != nil {
		err = g.httpSrv.Shutdown(ctx)
	}
	close(g.stopHealth)
	g.healthWG.Wait()
	select {
	case serveErr := <-g.serveErr:
		return serveErr
	default:
	}
	return err
}

// --- health ------------------------------------------------------------

func (g *Gateway) healthLoop() {
	defer g.healthWG.Done()
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stopHealth:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

func (g *Gateway) probeAll() {
	for name, shard := range g.byName {
		up := g.probe(shard)
		wasDown := g.down.snapshot()[name]
		if !up && !wasDown {
			g.probeDowns.Add(1)
		}
		g.down.set(name, !up)
	}
}

func (g *Gateway) probe(shard Shard) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shard.URL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	//asvlint:ignore droppederr best-effort drain of a tiny health body
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	//asvlint:ignore droppederr probe body close failure is not actionable
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// --- routing -----------------------------------------------------------

// handleCreate intercepts session creation to mint the session id before a
// shard is chosen: the ring places sessions by id, so the id must exist
// first. The id is injected into the JSON body and the request routed like
// any other session request.
func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBody+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading request: "+err.Error())
		return
	}
	if int64(len(body)) > g.cfg.MaxBody {
		writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds the gateway cap")
		return
	}
	var req serve.CreateSessionRequest
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "decoding session request: "+err.Error())
			return
		}
	}
	if req.ID == "" {
		req.ID = serve.NewSessionID()
		g.minted.Add(1)
	}
	buf, err := json.Marshal(req)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	g.route(w, r, req.ID, buf, "application/json")
}

// handleProxy routes any /v1/sessions/{id}... request to the id's shard.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil {
		b, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBody+1))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "reading request: "+err.Error())
			return
		}
		if int64(len(b)) > g.cfg.MaxBody {
			writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds the gateway cap")
			return
		}
		body = b
	}
	g.route(w, r, r.PathValue("id"), body, r.Header.Get("Content-Type"))
}

// route forwards the request to the session's owner, failing over to the
// ring's next owner when a shard is unreachable. Failover is safe for
// stateful sessions only because of the storage contract underneath: with a
// shared spill store the next owner restores the session's last checkpoint
// on its first miss, so the retried request lands on committed stream
// state, not a blank session.
func (g *Gateway) route(w http.ResponseWriter, r *http.Request, id string, body []byte, contentType string) {
	tried := make(map[string]bool)
	avoid := g.unavailable()
	for attempt := 0; attempt < len(g.byName); attempt++ {
		name := g.ring.OwnerAvoiding(id, avoid)
		if name == "" || tried[name] {
			break
		}
		tried[name] = true
		shard := g.byName[name]
		if attempt == 0 {
			g.proxied.Add(1)
		} else {
			g.failovers.Add(1)
		}
		resp, err := g.forward(r, shard, body, contentType)
		if err != nil {
			// Transport failure: the shard is gone or unreachable. Mark it
			// down (the prober will bring it back) and walk the ring.
			g.proxyErrors.Add(1)
			g.down.set(name, true)
			avoid[name] = true
			continue
		}
		copyResponse(w, resp)
		return
	}
	g.unroutable.Add(1)
	writeErr(w, http.StatusServiceUnavailable, "no live shard for session "+id)
}

func (g *Gateway) forward(r *http.Request, shard Shard, body []byte, contentType string) (*http.Response, error) {
	url := shard.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return g.cfg.Client.Do(req)
}

// copyResponse relays a shard response: status, the headers the serving API
// actually uses, and the body.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	//asvlint:ignore droppederr response body close failure is not actionable in a proxy
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Content-Length", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	for k, vs := range resp.Header {
		if strings.HasPrefix(k, "X-Asv-") { // canonicalized form of X-ASV-*
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
	}
	w.WriteHeader(resp.StatusCode)
	//asvlint:ignore droppederr a short write means the client hung up; nothing to do
	io.Copy(w, resp.Body)
}

// --- drain -------------------------------------------------------------

// DrainReport summarizes one drain operation.
type DrainReport struct {
	Shard    string            `json:"shard"`
	Migrated []string          `json:"migrated"`
	Failed   map[string]string `json:"failed,omitempty"`
}

// handleDrain migrates every session off the named shard via the snapshot
// protocol — GET the snapshot (retrying while frames are in flight), PUT it
// on the session's new owner, DELETE the original — then marks the shard
// down so the ring stops placing sessions there. The shard keeps serving
// while it drains (snapshot GETs work on a draining server by design).
func (g *Gateway) handleDrain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("shard")
	shard, ok := g.byName[name]
	if !ok {
		writeErr(w, http.StatusNotFound, "no such shard "+name)
		return
	}

	list, err := g.listSessions(shard)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "listing sessions on "+name+": "+err.Error())
		return
	}

	rep := DrainReport{Shard: name, Migrated: []string{}, Failed: map[string]string{}}
	avoid := g.unavailable()
	avoid[name] = true
	for _, info := range list.Sessions {
		dest := g.ring.OwnerAvoiding(info.ID, avoid)
		if dest == "" {
			rep.Failed[info.ID] = "no live shard to receive the session"
			continue
		}
		if err := g.migrate(shard, g.byName[dest], info.ID); err != nil {
			rep.Failed[info.ID] = err.Error()
			continue
		}
		g.migrations.Add(1)
		rep.Migrated = append(rep.Migrated, info.ID)
	}
	// Stop routing to the drained shard — administratively, so the health
	// prober cannot resurrect it while it is still alive and empty. (An
	// operator brings it back by restarting the gateway with it listed.)
	g.drained.set(name, true)
	if len(rep.Failed) == 0 {
		rep.Failed = nil
	}
	writeJSON(w, http.StatusOK, rep)
}

func (g *Gateway) listSessions(shard Shard) (*serve.SessionList, error) {
	resp, err := g.cfg.Client.Get(shard.URL + "/v1/sessions")
	if err != nil {
		return nil, err
	}
	//asvlint:ignore droppederr response body close failure is not actionable here
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var list serve.SessionList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, err
	}
	return &list, nil
}

// migrate moves one session: snapshot from src (retrying 409s while frames
// drain), restore into dst, delete from src. A failure before the PUT
// leaves the session untouched on src; a failure after the PUT leaves a
// valid copy on both shards, and the ring routes to dst — the stale src
// copy is garbage, not a correctness hazard.
func (g *Gateway) migrate(src, dst Shard, id string) error {
	var snap []byte
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := g.cfg.Client.Get(src.URL + "/v1/sessions/" + id + "/snapshot")
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		buf, err := io.ReadAll(resp.Body)
		//asvlint:ignore droppederr response body close failure is not actionable here
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if resp.StatusCode == http.StatusOK {
			snap = buf
			break
		}
		if resp.StatusCode == http.StatusConflict && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		return fmt.Errorf("snapshot: status %d: %s", resp.StatusCode, buf)
	}

	req, err := http.NewRequest(http.MethodPut, dst.URL+"/v1/sessions/"+id+"/snapshot", bytes.NewReader(snap))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("restore on %s: %w", dst.Name, err)
	}
	//asvlint:ignore droppederr error body is diagnostic only; status decides the outcome
	buf, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	//asvlint:ignore droppederr response body close failure is not actionable here
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("restore on %s: status %d: %s", dst.Name, resp.StatusCode, buf)
	}

	del, err := http.NewRequest(http.MethodDelete, src.URL+"/v1/sessions/"+id, nil)
	if err != nil {
		return err
	}
	resp, err = g.cfg.Client.Do(del)
	if err != nil {
		// The copy on dst is live and the ring routes there; losing the
		// delete costs only a stale spill entry on src.
		return nil
	}
	//asvlint:ignore droppederr best-effort drain of the delete response
	io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
	//asvlint:ignore droppederr response body close failure is not actionable here
	resp.Body.Close()
	return nil
}

// --- introspection ------------------------------------------------------

// ShardStatus is one shard's entry in GET /v1/cluster.
type ShardStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Up      bool   `json:"up"`
	Drained bool   `json:"drained,omitempty"`
}

// ClusterInfo is the body of GET /v1/cluster.
type ClusterInfo struct {
	Shards []ShardStatus `json:"shards"`
}

// unavailable returns the set of shards routing must skip: health-down
// union administratively drained.
func (g *Gateway) unavailable() map[string]bool {
	avoid := g.down.snapshot()
	for name := range g.drained.snapshot() {
		avoid[name] = true
	}
	return avoid
}

func (g *Gateway) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	down := g.down.snapshot()
	drained := g.drained.snapshot()
	info := ClusterInfo{}
	for _, name := range g.ring.Shards() {
		s := g.byName[name]
		info.Shards = append(info.Shards, ShardStatus{
			Name: s.Name, URL: s.URL,
			Up:      !down[name] && !drained[name],
			Drained: drained[name],
		})
	}
	writeJSON(w, http.StatusOK, info)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// The gateway is healthy while at least one shard is routable.
	unavailable := len(g.unavailable())
	if unavailable >= len(g.byName) {
		writeErr(w, http.StatusServiceUnavailable, "all shards down or drained")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shards": len(g.byName), "down": unavailable})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"proxied":        g.proxied.Load(),
		"failovers":      g.failovers.Load(),
		"minted_ids":     g.minted.Load(),
		"probe_downs":    g.probeDowns.Load(),
		"migrations":     g.migrations.Load(),
		"unroutable":     g.unroutable.Load(),
		"proxy_errors":   g.proxyErrors.Load(),
		"shards_down":    g.down.count(),
		"shards_drained": g.drained.count(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//asvlint:ignore droppederr an encode failure to a hung-up client is not actionable
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
