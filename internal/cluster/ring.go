// Package cluster is the multi-node serving layer: a stateless gateway
// that consistent-hashes session ids onto a set of asvserve shards.
// Sessions are sticky — the ISM state machine for a stream lives on
// exactly one shard — so the gateway's whole job is to route every request
// for a session to the same place, and to move sessions (via the
// snapshot/restore API) when that place drains or dies. See DESIGN.md §10.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring over named shards. Each shard is placed
// at Replicas points ("virtual nodes") on a 64-bit circle; a session id is
// owned by the first shard point clockwise of its hash. The standard
// properties follow: lookups are stable under iteration order, load spreads
// evenly-ish for modest replica counts, and adding or removing one of N
// shards remaps only about 1/N of the key space (RingRemapFraction in the
// tests pins that down).
//
// The ring itself is immutable after construction; membership changes
// (a shard marked down) are handled by OwnerAvoiding, which walks past
// excluded shards instead of rebuilding the ring — so a shard flapping
// down and back up does not move any session that was not forced to move.
type Ring struct {
	points []ringPoint // sorted by hash
	shards []string    // unique shard names, sorted
}

type ringPoint struct {
	hash  uint64
	shard string
}

// DefaultReplicas is the virtual-node count used when NewRing gets
// replicas < 1. 64 points per shard keeps the max/min load ratio under
// ~1.3 for small clusters without making lookup tables large.
const DefaultReplicas = 64

// NewRing builds a ring over the given shard names. Duplicate names are
// collapsed. An empty shard list yields a ring whose lookups return "".
func NewRing(shards []string, replicas int) *Ring {
	if replicas < 1 {
		replicas = DefaultReplicas
	}
	uniq := make(map[string]bool, len(shards))
	r := &Ring{}
	for _, s := range shards {
		if s == "" || uniq[s] {
			continue
		}
		uniq[s] = true
		r.shards = append(r.shards, s)
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  ringHash(fmt.Sprintf("%s#%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on the shard name so the ring is deterministic even in
		// the (vanishingly unlikely) event of a 64-bit hash collision.
		return r.points[i].shard < r.points[j].shard
	})
	sort.Strings(r.shards)
	return r
}

// ringHash is the ring's one hash function: FNV-64a (stdlib-only, stable
// across builds and platforms — the golden test pins its outputs) run
// through a 64-bit avalanche finalizer. The finalizer matters: vnode keys
// like "shard-0#17" differ only in their trailing bytes, and raw FNV's
// weak avalanche leaves their hashes correlated, clustering a shard's
// points into arcs and skewing load as much as 6× in five-shard rings.
func ringHash(key string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(key))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Owner returns the shard that owns key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	return r.OwnerAvoiding(key, nil)
}

// OwnerAvoiding returns the owner of key skipping any shard in down —
// the failover walk: the first point clockwise whose shard is healthy.
// Returns "" when every shard is excluded.
func (r *Ring) OwnerAvoiding(key string, down map[string]bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for off := 0; off < len(r.points); off++ {
		p := r.points[(start+off)%len(r.points)]
		if !down[p.shard] {
			return p.shard
		}
	}
	return ""
}

// Shards returns the ring's member names, sorted.
func (r *Ring) Shards() []string {
	out := make([]string, len(r.shards))
	copy(out, r.shards)
	return out
}

// downSet is a tiny concurrent set of shard names the health checker has
// marked unreachable. Reads take a snapshot so the ring walk sees a
// consistent membership for one routing decision.
type downSet struct {
	mu sync.Mutex
	m  map[string]bool
}

func newDownSet() *downSet { return &downSet{m: make(map[string]bool)} }

func (d *downSet) set(shard string, down bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if down {
		d.m[shard] = true
	} else {
		delete(d.m, shard)
	}
}

func (d *downSet) snapshot() map[string]bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]bool, len(d.m))
	for k := range d.m {
		out[k] = true
	}
	return out
}

func (d *downSet) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.m)
}
