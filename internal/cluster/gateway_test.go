package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"asv/internal/core"
	"asv/internal/serve"
	"asv/internal/stereo"
)

// stubShardServer records which session ids it saw, so routing tests can
// check affinity without running real stereo matching.
type stubShardServer struct {
	name string
	mu   sync.Mutex
	seen map[string]int // session id → request count
	ts   *httptest.Server
}

func newStubShard(t *testing.T, name string) *stubShardServer {
	t.Helper()
	s := &stubShardServer{name: name, seen: make(map[string]int)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req serve.CreateSessionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == "" {
			http.Error(w, `{"error":"stub shard requires an id"}`, http.StatusBadRequest)
			return
		}
		s.note(req.ID)
		w.Header().Set("X-ASV-Shard", s.name)
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"id":%q,"pw":%d}`, req.ID, req.PW)
	})
	mux.HandleFunc("/v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.note(r.PathValue("id"))
		w.Header().Set("X-ASV-Shard", s.name)
		fmt.Fprintf(w, `{"id":%q}`, r.PathValue("id"))
	})
	mux.HandleFunc("/v1/sessions/{id}/{rest...}", func(w http.ResponseWriter, r *http.Request) {
		s.note(r.PathValue("id"))
		w.Header().Set("X-ASV-Shard", s.name)
		w.Header().Set("X-ASV-Frame", "0")
		fmt.Fprintf(w, `{"session":%q,"frame":0}`, r.PathValue("id"))
	})
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

func (s *stubShardServer) note(id string) {
	s.mu.Lock()
	s.seen[id]++
	s.mu.Unlock()
}

func (s *stubShardServer) count(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[id]
}

func newTestGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := g.Close(ctx); err != nil {
			t.Errorf("closing gateway: %v", err)
		}
	})
	return g, ts
}

func createViaGateway(t *testing.T, base string, body string) serve.SessionInfo {
	t.Helper()
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create via gateway: %d: %s", resp.StatusCode, raw)
	}
	var info serve.SessionInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// TestGatewayAffinityAndIDInjection: the gateway mints ids for creates and
// every subsequent request for a session lands on the same shard — the one
// the ring names.
func TestGatewayAffinityAndIDInjection(t *testing.T) {
	shards := []*stubShardServer{
		newStubShard(t, "s0"), newStubShard(t, "s1"), newStubShard(t, "s2"),
	}
	cfg := Config{}
	for _, s := range shards {
		cfg.Shards = append(cfg.Shards, Shard{Name: s.name, URL: s.ts.URL})
	}
	g, ts := newTestGateway(t, cfg)

	byName := make(map[string]*stubShardServer)
	for _, s := range shards {
		byName[s.name] = s
	}

	for i := 0; i < 20; i++ {
		info := createViaGateway(t, ts.URL, `{"pw":2,"preset":"sceneflow","w":32,"h":24,"frames":4}`)
		if info.ID == "" {
			t.Fatal("gateway did not inject a session id")
		}
		owner := g.ring.Owner(info.ID)
		for f := 0; f < 3; f++ {
			resp, err := http.Post(ts.URL+"/v1/sessions/"+info.ID+"/frames", "", nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := resp.Header.Get("X-ASV-Shard"); got != owner {
				t.Fatalf("session %s frame hit shard %s, ring owner is %s", info.ID, got, owner)
			}
			if got := resp.Header.Get("X-ASV-Frame"); got != "0" {
				t.Fatalf("X-ASV-* header not relayed (got %q)", got)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if n := byName[owner].count(info.ID); n != 4 { // create + 3 frames
			t.Fatalf("owner %s saw %d requests for %s, want 4", owner, n, info.ID)
		}
		for name, s := range byName {
			if name != owner && s.count(info.ID) != 0 {
				t.Fatalf("non-owner %s saw session %s", name, info.ID)
			}
		}
	}
	if g.minted.Load() != 20 {
		t.Fatalf("minted %d ids, want 20", g.minted.Load())
	}
}

// TestGatewayClientSuppliedID: a create that already carries an id keeps it
// (idempotent retries from clients must not fork a second session).
func TestGatewayClientSuppliedID(t *testing.T) {
	s0 := newStubShard(t, "solo")
	_, ts := newTestGateway(t, Config{Shards: []Shard{{Name: "solo", URL: s0.ts.URL}}})

	info := createViaGateway(t, ts.URL, `{"id":"client-chosen","pw":2}`)
	if info.ID != "client-chosen" {
		t.Fatalf("gateway replaced the client's id with %q", info.ID)
	}
}

// TestGatewayFailover: killing a session's shard reroutes its traffic to
// the ring's next owner instead of surfacing errors.
func TestGatewayFailover(t *testing.T) {
	shards := []*stubShardServer{
		newStubShard(t, "f0"), newStubShard(t, "f1"), newStubShard(t, "f2"),
	}
	cfg := Config{}
	for _, s := range shards {
		cfg.Shards = append(cfg.Shards, Shard{Name: s.name, URL: s.ts.URL})
	}
	g, ts := newTestGateway(t, cfg)

	info := createViaGateway(t, ts.URL, `{"pw":2}`)
	owner := g.ring.Owner(info.ID)

	// Kill the owner's listener.
	for _, s := range shards {
		if s.name == owner {
			s.ts.CloseClientConnections()
			s.ts.Close()
		}
	}

	resp, err := http.Post(ts.URL+"/v1/sessions/"+info.ID+"/frames", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after shard death: %d: %s", resp.StatusCode, body)
	}
	got := resp.Header.Get("X-ASV-Shard")
	want := g.ring.OwnerAvoiding(info.ID, map[string]bool{owner: true})
	if got != want {
		t.Fatalf("failover went to %s, ring's next owner is %s", got, want)
	}
	if g.failovers.Load() == 0 {
		t.Fatal("failover counter did not move")
	}

	// The shard is now marked down: the next request goes straight to the
	// failover owner with no extra failover hop.
	before := g.failovers.Load()
	resp2, err := http.Post(ts.URL+"/v1/sessions/"+info.ID+"/frames", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if g.failovers.Load() != before {
		t.Fatal("gateway retried the dead shard instead of remembering it is down")
	}
}

// TestGatewayAllShardsDown: with every shard dead the gateway answers 503,
// not a hang or a panic.
func TestGatewayAllShardsDown(t *testing.T) {
	s0 := newStubShard(t, "dead")
	_, ts := newTestGateway(t, Config{Shards: []Shard{{Name: "dead", URL: s0.ts.URL}}})
	s0.ts.CloseClientConnections()
	s0.ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sessions/whatever/frames", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with all shards dead, want 503", resp.StatusCode)
	}
}

// TestGatewayHealthProbe: the prober marks a dead shard down (visible in
// /v1/cluster) and brings it back when it returns.
func TestGatewayHealthProbe(t *testing.T) {
	s0 := newStubShard(t, "p0")
	flaky := &stubShardServer{name: "p1", seen: make(map[string]int)}
	var up = true
	var upMu sync.Mutex
	flaky.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		upMu.Lock()
		ok := up
		upMu.Unlock()
		if !ok {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	t.Cleanup(flaky.ts.Close)

	g, ts := newTestGateway(t, Config{
		Shards: []Shard{
			{Name: "p0", URL: s0.ts.URL},
			{Name: "p1", URL: flaky.ts.URL},
		},
		HealthInterval: 5 * time.Millisecond,
		HealthTimeout:  time.Second,
	})

	shardUp := func(name string) bool {
		resp, err := http.Get(ts.URL + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info ClusterInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		for _, s := range info.Shards {
			if s.Name == name {
				return s.Up
			}
		}
		t.Fatalf("shard %s missing from cluster info", name)
		return false
	}

	waitFor := func(desc string, cond func() bool) {
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	waitFor("initial probes to pass", func() bool { return shardUp("p0") && shardUp("p1") })

	upMu.Lock()
	up = false
	upMu.Unlock()
	waitFor("p1 to be marked down", func() bool { return !shardUp("p1") })
	if g.probeDowns.Load() == 0 {
		t.Fatal("probe-down counter did not move")
	}

	upMu.Lock()
	up = true
	upMu.Unlock()
	waitFor("p1 to recover", func() bool { return shardUp("p1") })
}

// TestGatewayDrainMigratesSessions runs the full drain protocol against
// REAL serve shards: sessions created through the gateway, frames pushed,
// one shard drained, and the migrated sessions must continue their streams
// on their new shards with frame indices intact.
func TestGatewayDrainMigratesSessions(t *testing.T) {
	type realShard struct {
		name string
		srv  *serve.Server
		ts   *httptest.Server
	}
	mkShard := func(name string) realShard {
		cfg := serve.DefaultConfig()
		cfg.Workers = 1
		opt := stereo.DefaultBMOptions()
		opt.MaxDisp = 12
		s := serve.New(core.BMMatcher{Opt: opt}, cfg)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Close(ctx)
		})
		return realShard{name: name, srv: s, ts: ts}
	}
	shards := []realShard{mkShard("r0"), mkShard("r1"), mkShard("r2")}
	// A fast prober makes this test also cover drain stickiness: the
	// drained shard stays alive and health-checks green, but the prober
	// must NOT resurrect it into routing — its sessions are gone.
	cfg := Config{HealthInterval: 10 * time.Millisecond}
	for _, s := range shards {
		cfg.Shards = append(cfg.Shards, Shard{Name: s.name, URL: s.ts.URL})
	}
	g, ts := newTestGateway(t, cfg)

	// Spread a handful of sessions over the cluster and advance each one.
	const nSessions = 6
	ids := make([]string, nSessions)
	for i := range ids {
		info := createViaGateway(t, ts.URL,
			`{"pw":2,"preset":"sceneflow","w":32,"h":24,"frames":6,"seed":42}`)
		ids[i] = info.ID
		for f := 0; f < 2; f++ {
			resp, err := http.Post(ts.URL+"/v1/sessions/"+info.ID+"/frames", "", nil)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("priming frame: %d", resp.StatusCode)
			}
		}
	}

	// Drain the shard that owns at least one session.
	victim := g.ring.Owner(ids[0])
	resp, err := http.Post(ts.URL+"/v1/cluster/drain/"+victim, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep DrainReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d", resp.StatusCode)
	}
	if len(rep.Failed) > 0 {
		t.Fatalf("drain failures: %v", rep.Failed)
	}
	if len(rep.Migrated) == 0 {
		t.Fatal("drain migrated nothing although the victim owned sessions")
	}

	// Give the prober time to observe the drained-but-healthy shard; the
	// administrative mark must survive it.
	time.Sleep(50 * time.Millisecond)

	// Every session — migrated or not — continues at frame 2 with no gap.
	for _, id := range ids {
		resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/frames", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-drain frame for %s: %d: %s", id, resp.StatusCode, body)
		}
		var fr serve.FrameResponse
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		if fr.Frame != 2 {
			t.Fatalf("session %s resumed at frame %d after drain, want 2", id, fr.Frame)
		}
	}

	// The drained shard should hold no sessions the ring still routes to it
	// for — and new creates must avoid it.
	info := createViaGateway(t, ts.URL, `{"pw":2,"preset":"sceneflow","w":32,"h":24,"frames":4}`)
	if owner := g.ring.OwnerAvoiding(info.ID, g.unavailable()); owner == victim {
		t.Fatalf("new session placed on the drained shard %s", victim)
	}

	// /v1/cluster reports the victim drained and not routable.
	resp, err = http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var ci ClusterInfo
	if err := json.NewDecoder(resp.Body).Decode(&ci); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, s := range ci.Shards {
		if s.Name == victim && (s.Up || !s.Drained) {
			t.Fatalf("drained shard reported routable: %+v", s)
		}
		if s.Name != victim && !s.Up {
			t.Fatalf("healthy shard reported down: %+v", s)
		}
	}
}

func TestGatewayRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no error for empty shard list")
	}
	if _, err := New(Config{Shards: []Shard{{Name: "a", URL: ""}}}); err == nil {
		t.Fatal("no error for missing url")
	}
	if _, err := New(Config{Shards: []Shard{
		{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"},
	}}); err == nil {
		t.Fatal("no error for duplicate name")
	}
}
