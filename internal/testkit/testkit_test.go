package testkit

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asv/internal/imgproc"
	"asv/internal/tensor"
)

func TestSeedDeterministicPerName(t *testing.T) {
	if os.Getenv(SeedEnv) != "" {
		t.Skipf("%s set; seed is overridden", SeedEnv)
	}
	a, b := Seed(t), Seed(t)
	if a != b {
		t.Fatalf("Seed not deterministic: %d vs %d", a, b)
	}
	t.Run("sub", func(t *testing.T) {
		if Seed(t) == a {
			t.Fatal("subtest seed should differ from parent seed")
		}
	})
}

func TestNewRandReproducible(t *testing.T) {
	r1 := NewRand(t)
	r2 := NewRand(t)
	for i := 0; i < 16; i++ {
		if a, b := r1.Int63(), r2.Int63(); a != b {
			t.Fatalf("draw %d differs: %d vs %d", i, a, b)
		}
	}
}

func TestRandTensorShapeAndRange(t *testing.T) {
	r := NewRand(t)
	tt := RandTensor(r, 3, 4, 5)
	if tt.Len() != 60 {
		t.Fatalf("len %d", tt.Len())
	}
	for _, v := range tt.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("value %v out of [-1, 1)", v)
		}
	}
}

func TestRandDimBounds(t *testing.T) {
	r := NewRand(t)
	for i := 0; i < 100; i++ {
		if d := RandDim(r, 2, 5); d < 2 || d > 5 {
			t.Fatalf("RandDim out of bounds: %d", d)
		}
	}
	if d := RandDim(r, 3, 3); d != 3 {
		t.Fatalf("degenerate RandDim: %d", d)
	}
}

func TestDiffTensorsFirstMismatch(t *testing.T) {
	a := tensor.New(2, 3)
	b := tensor.New(2, 3)
	b.Set(0.5, 1, 2) // flat index 5
	b.Set(2.0, 1, 0) // flat index 3 — first in row-major order
	m := DiffTensors(a, b, 1e-9)
	if m == nil {
		t.Fatal("diff missed mismatches")
	}
	if m.Flat != 3 || m.Index[0] != 1 || m.Index[1] != 0 {
		t.Fatalf("first mismatch misreported: %+v", m)
	}
	if m.Count != 2 || m.MaxAbs != 2.0 || m.MaxFlat != 3 {
		t.Fatalf("summary misreported: %+v", m)
	}
	if !strings.Contains(m.String(), "first mismatch at [1 0]") {
		t.Fatalf("unhelpful message: %s", m)
	}
}

func TestDiffTensorsTolerance(t *testing.T) {
	a := tensor.New(4)
	b := a.Clone()
	b.Data()[2] += 1e-7
	if m := DiffTensors(a, b, 1e-6); m != nil {
		t.Fatalf("within-tolerance diff reported: %+v", m)
	}
	if m := DiffTensors(a, b, 1e-8); m == nil {
		t.Fatal("out-of-tolerance diff missed")
	}
}

func TestDiffImagesIndexIsYX(t *testing.T) {
	a := imgproc.NewImage(4, 3)
	b := imgproc.NewImage(4, 3)
	b.Set(2, 1, 0.7)
	m := DiffImages(a, b, 0)
	if m == nil || m.Index[0] != 1 || m.Index[1] != 2 {
		t.Fatalf("image index misreported: %+v", m)
	}
}

func TestDiffShapeMismatch(t *testing.T) {
	if m := DiffTensors(tensor.New(2), tensor.New(3), 0); m == nil || m.Count != -1 {
		t.Fatalf("shape mismatch not flagged: %+v", m)
	}
	if m := DiffImages(imgproc.NewImage(2, 2), imgproc.NewImage(2, 3), 0); m == nil || m.Count != -1 {
		t.Fatalf("image size mismatch not flagged: %+v", m)
	}
}

func TestChecksumStableAndSensitive(t *testing.T) {
	v := []float32{1, 2, 3}
	if Checksum(v) != Checksum([]float32{1, 2, 3}) {
		t.Fatal("checksum not deterministic")
	}
	if Checksum(v) == Checksum([]float32{1, 2, 4}) {
		t.Fatal("checksum insensitive to value change")
	}
	if len(Checksum(v)) != 16 {
		t.Fatalf("checksum length %d", len(Checksum(v)))
	}
	// Negative zero canonicalizes.
	var negZero float32
	negZero = -negZero
	if Checksum([]float32{negZero}) != Checksum([]float32{0}) {
		t.Fatal("-0 and +0 checksum differently")
	}
}

func TestChecksumImageIncludesShape(t *testing.T) {
	a := imgproc.NewImage(2, 3)
	b := imgproc.NewImage(3, 2)
	if ChecksumImage(a) == ChecksumImage(b) {
		t.Fatal("transposed shapes share a checksum")
	}
	if ChecksumTensor(tensor.New(2, 3)) == ChecksumTensor(tensor.New(3, 2)) {
		t.Fatal("transposed tensor shapes share a checksum")
	}
}

// fakeT captures failures instead of aborting, so the Store error paths can
// be exercised.
type fakeT struct {
	testing.TB
	failed bool
	msgs   []string
}

func (f *fakeT) Helper()                           {}
func (f *fakeT) Errorf(format string, args ...any) { f.failed = true; f.msgs = append(f.msgs, format) }
func (f *fakeT) Fatalf(format string, args ...any) {
	f.failed = true
	f.msgs = append(f.msgs, format)
	panic("fakeT.Fatalf")
}

func TestGoldenStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.txt")
	if err := os.WriteFile(path, []byte("# comment\n\nalpha = 123\nbeta = cafe\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := OpenStore(t, path)
	s.Check(t, "alpha", "123")
	s.Check(t, "beta", "cafe")

	ft := &fakeT{}
	s.Check(ft, "alpha", "456")
	if !ft.failed {
		t.Fatal("drifted value accepted")
	}
	ft = &fakeT{}
	s.Check(ft, "gamma", "789")
	if !ft.failed {
		t.Fatal("missing key accepted")
	}
}

func TestGoldenStoreUpdateWritesSorted(t *testing.T) {
	if Update() {
		t.Skip("running under -update")
	}
	path := filepath.Join(t.TempDir(), "sub", "golden.txt")
	*updateGoldens = true
	defer func() { *updateGoldens = false }()

	s := OpenStore(t, path) // missing file OK under -update
	s.Check(t, "zz", "2")
	s.Check(t, "aa", "1")

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw)
	if !strings.Contains(got, "aa = 1\nzz = 2\n") {
		t.Fatalf("store not sorted/flushed:\n%s", got)
	}

	// The rewritten store must read back cleanly.
	*updateGoldens = false
	s2 := OpenStore(t, path)
	s2.Check(t, "aa", "1")
	s2.Check(t, "zz", "2")
}

func TestGoldenStoreMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.txt")
	if err := os.WriteFile(path, []byte("not a pair\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ft := &fakeT{}
	func() {
		defer func() { recover() }()
		OpenStore(ft, path)
	}()
	if !ft.failed {
		t.Fatal("malformed store accepted")
	}
}

func TestGoldenStoreMissingFileFailsWithoutUpdate(t *testing.T) {
	if Update() {
		t.Skip("running under -update")
	}
	ft := &fakeT{}
	func() {
		defer func() { recover() }()
		OpenStore(ft, filepath.Join(t.TempDir(), "nope.txt"))
	}()
	if !ft.failed {
		t.Fatal("missing store accepted without -update")
	}
}
