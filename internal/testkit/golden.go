package testkit

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"asv/internal/imgproc"
	"asv/internal/tensor"
)

// updateGoldens is registered once per test binary; run
//
//	go test ./... -update
//
// to rewrite every golden store a test touches instead of comparing.
var updateGoldens = flag.Bool("update", false, "rewrite golden stores instead of comparing")

// Update reports whether the test run was asked to rewrite goldens.
func Update() bool { return *updateGoldens }

// Checksum returns a short stable content hash of a float32 slice: the
// first 16 hex digits of the SHA-256 over the exact bit patterns. Bitwise
// equality — not approximate equality — is the contract: the golden corpus
// exists to catch any numerical drift, however small.
func Checksum(v []float32) string {
	h := sha256.New()
	var buf [4]byte
	for _, x := range v {
		binary.LittleEndian.PutUint32(buf[:], x2bits(x))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// x2bits is math.Float32bits canonicalizing negative zero, so that -0 and
// +0 checksum identically.
func x2bits(x float32) uint32 {
	if x == 0 {
		return 0
	}
	return math.Float32bits(x)
}

// ChecksumImage returns the content checksum of an image, including its
// dimensions (two images with the same pixels but different shapes differ).
func ChecksumImage(im *imgproc.Image) string {
	return Checksum(append([]float32{float32(im.W), float32(im.H)}, im.Pix...))
}

// ChecksumImages checksums a sequence of images as one unit.
func ChecksumImages(ims ...*imgproc.Image) string {
	var v []float32
	for _, im := range ims {
		v = append(v, float32(im.W), float32(im.H))
		v = append(v, im.Pix...)
	}
	return Checksum(v)
}

// ChecksumTensor returns the content checksum of a tensor, shape included.
func ChecksumTensor(t *tensor.Tensor) string {
	v := make([]float32, 0, t.Len()+t.Rank())
	for _, d := range t.Shape() {
		v = append(v, float32(d))
	}
	return Checksum(append(v, t.Data()...))
}

// Store is a key→value golden file: one "key = value" per line, sorted,
// with '#' comments. Values are short strings — checksums or formatted
// scalars — so diffs of a golden update review like a changelog.
type Store struct {
	path string
	m    map[string]string
}

// OpenStore loads (or, under -update, creates) the golden store at path.
// A missing file is an empty store under -update and a fatal error
// otherwise.
func OpenStore(t testing.TB, path string) *Store {
	t.Helper()
	s := &Store{path: path, m: map[string]string{}}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) && Update() {
			return s
		}
		t.Fatalf("testkit: opening golden store: %v (run `go test -update` to create it)", err)
	}
	//asvlint:ignore droppederr read-only file; scanner errors are checked below
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			t.Fatalf("testkit: %s: malformed golden line %q", path, line)
		}
		s.m[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("testkit: reading golden store: %v", err)
	}
	return s
}

// Check compares got against the stored value for key. Under -update it
// records got and rewrites the store instead. A missing key is a failure
// (the corpus must be updated explicitly), as is any value drift.
func (s *Store) Check(t testing.TB, key, got string) {
	t.Helper()
	if Update() {
		s.m[key] = got
		s.flush(t)
		return
	}
	want, ok := s.m[key]
	if !ok {
		t.Errorf("golden %s: key %q not in corpus (got %q; run `go test -update` and commit %s)",
			s.path, key, got, s.path)
		return
	}
	if got != want {
		t.Errorf("golden %s: %q drifted: got %q want %q — if the numerical change is intended, run `go test -update` and commit the new corpus",
			s.path, key, got, want)
	}
}

// CheckImage records/compares an image checksum under key.
func (s *Store) CheckImage(t testing.TB, key string, im *imgproc.Image) {
	t.Helper()
	s.Check(t, key, ChecksumImage(im))
}

// flush rewrites the store file, sorted by key.
func (s *Store) flush(t testing.TB) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(s.path), 0o755); err != nil {
		t.Fatalf("testkit: creating golden dir: %v", err)
	}
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# Golden corpus — regenerate with `go test -update` (see DESIGN.md, Verification strategy).\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%s = %s\n", k, s.m[k])
	}
	if err := os.WriteFile(s.path, []byte(b.String()), 0o644); err != nil {
		t.Fatalf("testkit: writing golden store: %v", err)
	}
}
