// Package testkit is the shared verification toolkit behind the repo's
// differential oracles, fuzz targets and golden regression corpus (see
// DESIGN.md, "Verification strategy"). It provides
//
//   - deterministic per-test randomness (NewRand) with an env override for
//     exploratory soak runs,
//   - random tensor/image generators for property-based differential tests,
//   - tolerance-aware diffing with first-mismatch reporting (DiffTensors,
//     DiffImages), and
//   - stable content checksums plus a key→value golden store with an
//     `-update` flag (golden.go), so any change to numerical behaviour has
//     to be committed explicitly.
//
// The package may be imported only from test files. It depends on the leaf
// packages imgproc and tensor; tests inside those two packages must use an
// external (_test) package to avoid an import cycle.
package testkit

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"asv/internal/imgproc"
	"asv/internal/tensor"
)

// SeedEnv is the environment variable that overrides every test's RNG seed,
// turning the deterministic differential tests into a soak tool:
//
//	ASV_TEST_SEED=$RANDOM go test ./internal/deconv -run Differential
const SeedEnv = "ASV_TEST_SEED"

// Seed returns the deterministic RNG seed for the named test: the FNV hash
// of the test name, unless SeedEnv overrides it. Deriving the seed from the
// name keeps sibling subtests decorrelated while making every failure
// reproducible from the test name alone.
func Seed(t testing.TB) int64 {
	if s := os.Getenv(SeedEnv); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("testkit: bad %s=%q: %v", SeedEnv, s, err)
		}
		return v
	}
	h := fnv.New64a()
	h.Write([]byte(t.Name()))
	return int64(h.Sum64() & (1<<62 - 1))
}

// NewRand returns a rand.Rand seeded by Seed(t) and logs the seed so any
// failure can be replayed with SeedEnv.
func NewRand(t testing.TB) *rand.Rand {
	seed := Seed(t)
	t.Logf("testkit: %s seed %d (override with %s)", t.Name(), seed, SeedEnv)
	return rand.New(rand.NewSource(seed))
}

// RandTensor returns a tensor of the given shape with i.i.d. values uniform
// in [-1, 1).
func RandTensor(r *rand.Rand, shape ...int) *tensor.Tensor {
	out := tensor.New(shape...)
	d := out.Data()
	for i := range d {
		d[i] = float32(r.Float64()*2 - 1)
	}
	return out
}

// RandImage returns a w×h image with i.i.d. pixel values uniform in [0, 1).
func RandImage(r *rand.Rand, w, h int) *imgproc.Image {
	im := imgproc.NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = r.Float32()
	}
	return im
}

// RandDim returns a random dimension in [lo, hi].
func RandDim(r *rand.Rand, lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("testkit: RandDim bounds [%d, %d]", lo, hi))
	}
	return lo + r.Intn(hi-lo+1)
}

// Mismatch describes the first out-of-tolerance element of a diff, plus
// summary statistics over the whole volume.
type Mismatch struct {
	Index   []int   // multi-index of the first mismatching element
	Flat    int     // flat index of the same element
	Got     float64 // value in the tensor/image under test
	Want    float64 // value in the reference
	Count   int     // number of out-of-tolerance elements
	MaxAbs  float64 // largest absolute difference anywhere
	MaxFlat int     // flat index of the largest difference
}

// String formats the mismatch for test failure messages.
func (m *Mismatch) String() string {
	return fmt.Sprintf("first mismatch at %v (flat %d): got %v want %v (|Δ|=%.3g); %d elements out of tolerance, max |Δ|=%.3g at flat %d",
		m.Index, m.Flat, m.Got, m.Want, absDiff(m.Got, m.Want), m.Count, m.MaxAbs, m.MaxFlat)
}

func absDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		return -d
	}
	return d
}

// unflatten converts a flat row-major index into a multi-index for shape.
func unflatten(flat int, shape []int) []int {
	idx := make([]int, len(shape))
	for i := len(shape) - 1; i >= 0; i-- {
		if shape[i] > 0 {
			idx[i] = flat % shape[i]
			flat /= shape[i]
		}
	}
	return idx
}

// diffFloats reports the first element pair differing by more than tol.
func diffFloats(got, want []float32, tol float64, shape []int) *Mismatch {
	var m *Mismatch
	for i := range got {
		d := absDiff(float64(got[i]), float64(want[i]))
		if d <= tol {
			continue
		}
		if m == nil {
			m = &Mismatch{
				Index: unflatten(i, shape),
				Flat:  i,
				Got:   float64(got[i]),
				Want:  float64(want[i]),
			}
		}
		m.Count++
		if d > m.MaxAbs {
			m.MaxAbs = d
			m.MaxFlat = i
		}
	}
	return m
}

// DiffTensors compares got against want element-wise and returns nil when
// every element matches within absolute tolerance tol, or a Mismatch
// pinpointing the first offending element. Shape mismatches are reported as
// a Mismatch with Index nil.
func DiffTensors(got, want *tensor.Tensor, tol float64) *Mismatch {
	if !tensor.SameShape(got, want) {
		return &Mismatch{Got: float64(got.Len()), Want: float64(want.Len()), Count: -1}
	}
	return diffFloats(got.Data(), want.Data(), tol, got.Shape())
}

// DiffImages is DiffTensors for images; Index is [y, x].
func DiffImages(got, want *imgproc.Image, tol float64) *Mismatch {
	if got.W != want.W || got.H != want.H {
		return &Mismatch{Got: float64(got.W * got.H), Want: float64(want.W * want.H), Count: -1}
	}
	return diffFloats(got.Pix, want.Pix, tol, []int{got.H, got.W})
}

// MustEqualTensors fails the test with a first-mismatch report when got and
// want differ beyond tol. The label names the comparison in the failure.
func MustEqualTensors(t testing.TB, label string, got, want *tensor.Tensor, tol float64) {
	t.Helper()
	if !tensor.SameShape(got, want) {
		t.Fatalf("%s: shape mismatch got %v want %v", label, got.Shape(), want.Shape())
	}
	if m := DiffTensors(got, want, tol); m != nil {
		t.Fatalf("%s: %s", label, m)
	}
}

// MustEqualImages is MustEqualTensors for images.
func MustEqualImages(t testing.TB, label string, got, want *imgproc.Image, tol float64) {
	t.Helper()
	if got.W != want.W || got.H != want.H {
		t.Fatalf("%s: size mismatch got %dx%d want %dx%d", label, got.W, got.H, want.W, want.H)
	}
	if m := DiffImages(got, want, tol); m != nil {
		t.Fatalf("%s: %s", label, m)
	}
}
