package stereo

import (
	"fmt"
	"math"

	"asv/internal/imgproc"
)

// ThreePixelThreshold is the standard disparity-error tolerance: a pixel is
// "correct" if its disparity is within 3 pixels of ground truth (KITTI
// convention, paper Sec. 6.1).
const ThreePixelThreshold = 3.0

// ErrorRate returns the percentage of pixels whose |est-gt| exceeds the
// threshold. Pixels with gt < 0 (invalid ground truth) are skipped, as are
// est < 0 holes only when the ground truth is also invalid.
func ErrorRate(est, gt *imgproc.Image, threshold float64) float64 {
	if est.W != gt.W || est.H != gt.H {
		panic(fmt.Sprintf("stereo: ErrorRate size mismatch %dx%d vs %dx%d", est.W, est.H, gt.W, gt.H))
	}
	var bad, total int
	for i := range gt.Pix {
		g := float64(gt.Pix[i])
		if g < 0 {
			continue
		}
		total++
		if math.Abs(float64(est.Pix[i])-g) > threshold {
			bad++
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(bad) / float64(total)
}

// ThreePixelError is ErrorRate with the standard 3-pixel threshold.
func ThreePixelError(est, gt *imgproc.Image) float64 {
	return ErrorRate(est, gt, ThreePixelThreshold)
}

// MeanAbsError returns the mean |est-gt| over valid ground-truth pixels.
func MeanAbsError(est, gt *imgproc.Image) float64 {
	var s float64
	var n int
	for i := range gt.Pix {
		g := float64(gt.Pix[i])
		if g < 0 {
			continue
		}
		s += math.Abs(float64(est.Pix[i]) - g)
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// TemporalFlicker measures frame-to-frame disparity inconsistency: the
// mean absolute difference between the estimated disparity change and the
// ground-truth disparity change across two consecutive frames (over pixels
// with valid ground truth in both). Independent per-frame matchers produce
// uncorrelated errors and therefore flicker; temporally propagated
// estimates (ISM) keep their errors correlated and score lower.
func TemporalFlicker(prevEst, curEst, prevGT, curGT *imgproc.Image) float64 {
	if prevEst.W != curEst.W || prevEst.H != curEst.H {
		panic("stereo: TemporalFlicker size mismatch")
	}
	var s float64
	var n int
	for i := range curGT.Pix {
		if prevGT.Pix[i] < 0 || curGT.Pix[i] < 0 {
			continue
		}
		estDelta := float64(curEst.Pix[i] - prevEst.Pix[i])
		gtDelta := float64(curGT.Pix[i] - prevGT.Pix[i])
		s += math.Abs(estDelta - gtDelta)
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// DispStats summarizes one disparity map — the per-frame digest the serving
// layer returns to clients in place of (or alongside) the raw map.
type DispStats struct {
	W       int     `json:"w"`
	H       int     `json:"h"`
	ValidPc float64 `json:"valid_pc"` // percent of pixels with disparity >= 0
	Mean    float64 `json:"mean"`     // mean over valid pixels
	Max     float64 `json:"max"`      // max over valid pixels
}

// DisparityStats computes the digest of a disparity map. Negative entries
// are the conventional "invalid/unknown" marker and are excluded from the
// mean and max.
func DisparityStats(d *imgproc.Image) DispStats {
	st := DispStats{W: d.W, H: d.H}
	var sum float64
	var valid int
	for _, v := range d.Pix {
		if v < 0 {
			continue
		}
		valid++
		sum += float64(v)
		if float64(v) > st.Max {
			st.Max = float64(v)
		}
	}
	if valid > 0 {
		st.ValidPc = 100 * float64(valid) / float64(len(d.Pix))
		st.Mean = sum / float64(valid)
	}
	return st
}
