package stereo

// Saturating integer helpers shared by the fixed-point matching kernels.
//
// Every file named *_fixed.go is an integer-only kernel file: the asvlint
// `fixedint` rule flags any float arithmetic inside them, so the cost
// accumulation paths can never silently fall back to floating point. Float
// conversions happen only at the readout layer (fixedpoint.go), where
// integer costs become subpixel-refined float32 disparities.

// satAdd16 returns a+b clamped to the uint16 range. SGM path accumulators
// and cross-path sums use it so that pathological penalty settings saturate
// instead of wrapping around (a wrapped cost would win winner-take-all).
func satAdd16(a, b uint16) uint16 {
	s := uint32(a) + uint32(b)
	return uint16(min(s, 65535))
}

// satU16 clamps a uint32 running sum into a uint16 cost cell. The sliding
// window sums keep exact uint32 accumulators (so incremental subtraction
// stays correct) and saturate only when a value is stored.
func satU16(v uint32) uint16 {
	return uint16(min(v, 65535))
}

// absDiffU8 returns |a-b| for two uint8 samples.
func absDiffU8(a, b uint8) uint8 {
	if a > b {
		return a - b
	}
	return b - a
}
