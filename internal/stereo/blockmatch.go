package stereo

import (
	"fmt"
	"math"
	"math/bits"

	"asv/internal/imgproc"
	"asv/internal/par"
)

// BMOptions configures SAD block matching.
type BMOptions struct {
	BlockR   int  // block radius: the block is (2r+1)×(2r+1)
	MaxDisp  int  // maximum disparity searched in full-search mode
	Subpixel bool // parabola-fit subpixel refinement around the winner
	// UniqRatio, when positive, invalidates (-1) pixels whose best cost is
	// not at least UniqRatio fractionally better than the runner-up at a
	// non-adjacent disparity — the standard uniqueness test for repetitive
	// texture.
	UniqRatio float64
	// Census switches the matching cost from SAD to census-Hamming with
	// the given window radius (0 disables). Census costs are invariant to
	// per-camera gain/offset, at a small cost in clean-image accuracy.
	Census int
	// Fixed selects the fixed-point kernels (fixedpoint.go): uint8-quantized
	// intensities, cache-blocked sliding-window uint16 cost volumes. Census
	// costs are bit-identical to the float path; SAD costs drift within the
	// bound pinned by the quantized-oracle suite (DESIGN.md §9).
	Fixed bool
}

// coster abstracts the per-candidate block cost.
type coster func(x, y, d int) float64

// makeCoster builds the configured cost function.
func makeCoster(left, right *imgproc.Image, opt BMOptions) coster {
	if opt.Census > 0 {
		cc := newCensusCosts(left, right, opt.Census)
		return func(x, y, d int) float64 {
			return cc.costAt(left, right, x, y, d, opt.BlockR)
		}
	}
	return func(x, y, d int) float64 {
		return sadAt(left, right, x, y, d, opt.BlockR)
	}
}

// DefaultBMOptions returns the block-matching configuration used in the ASV
// experiments: 4-pixel radius (9×9 blocks), 64-pixel search, subpixel on.
func DefaultBMOptions() BMOptions {
	return BMOptions{BlockR: 4, MaxDisp: 64, Subpixel: true}
}

// sadAt computes the SAD between the block around (x, y) in left and the
// block around (x-d, y) in right.
func sadAt(left, right *imgproc.Image, x, y, d, r int) float64 {
	var s float64
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			s += math.Abs(float64(left.At(x+dx, y+dy) - right.At(x-d+dx, y+dy)))
		}
	}
	return s
}

// subpixelFit refines a winning integer disparity by fitting a parabola to
// the cost at d-1, d, d+1 (the classic equiangular fit).
func subpixelFit(cm1, c0, cp1 float64) float64 {
	den := cm1 - 2*c0 + cp1
	if den <= 1e-12 {
		return 0
	}
	off := 0.5 * (cm1 - cp1) / den
	if off > 0.5 {
		off = 0.5
	} else if off < -0.5 {
		off = -0.5
	}
	return off
}

// Match performs full-search SAD block matching: for every left pixel it
// scans disparities 0..MaxDisp and keeps the winner-take-all disparity.
func Match(left, right *imgproc.Image, opt BMOptions) *imgproc.Image {
	if left.W != right.W || left.H != right.H {
		panic(fmt.Sprintf("stereo: image sizes differ %dx%d vs %dx%d", left.W, left.H, right.W, right.H))
	}
	if opt.Fixed {
		return matchFixed(left, right, opt)
	}
	out := imgproc.NewImage(left.W, left.H)
	cost := makeCoster(left, right, opt)
	par.For(left.H, func(y int) {
		costs := make([]float64, opt.MaxDisp+1)
		for x := 0; x < left.W; x++ {
			best := math.Inf(1)
			bestD := 0
			hi := opt.MaxDisp
			if hi > x {
				hi = x // disparity cannot look past the left border
			}
			for d := 0; d <= hi; d++ {
				c := cost(x, y, d)
				costs[d] = c
				if c < best {
					best, bestD = c, d
				}
			}
			if opt.UniqRatio > 0 {
				// Runner-up outside the winner's immediate neighbourhood.
				second := math.Inf(1)
				for d := 0; d <= hi; d++ {
					if d >= bestD-1 && d <= bestD+1 {
						continue
					}
					if costs[d] < second {
						second = costs[d]
					}
				}
				if second < best*(1+opt.UniqRatio) {
					out.Set(x, y, -1)
					continue
				}
			}
			disp := float64(bestD)
			if opt.Subpixel && bestD > 0 && bestD < hi {
				disp += subpixelFit(costs[bestD-1], costs[bestD], costs[bestD+1])
			}
			out.Set(x, y, float32(disp))
		}
	})
	return out
}

// Refine performs ISM's guided correspondence search (paper step 4): for
// every pixel, it searches a 1-D window of ±searchR pixels centred on the
// initial disparity estimate init, and returns the refined disparity map.
// This is dramatically cheaper than Match because searchR << MaxDisp.
func Refine(left, right, init *imgproc.Image, searchR int, opt BMOptions) *imgproc.Image {
	if init.W != left.W || init.H != left.H {
		panic("stereo: initial disparity size mismatch")
	}
	if opt.Fixed {
		return refineFixed(left, right, init, searchR, opt)
	}
	out := imgproc.NewImage(left.W, left.H)
	cost := makeCoster(left, right, opt)
	par.For(left.H, func(y int) {
		costs := make([]float64, 2*searchR+1)
		for x := 0; x < left.W; x++ {
			center := int(math.Round(float64(init.At(x, y))))
			lo := center - searchR
			hi := center + searchR
			if lo < 0 {
				lo = 0
			}
			if hi > x {
				hi = x
			}
			if lo > hi {
				out.Set(x, y, 0)
				continue
			}
			best := math.Inf(1)
			bestD := lo
			for d := lo; d <= hi; d++ {
				c := cost(x, y, d)
				costs[d-lo] = c
				if c < best {
					best, bestD = c, d
				}
			}
			disp := float64(bestD)
			if opt.Subpixel && bestD > lo && bestD < hi {
				i := bestD - lo
				disp += subpixelFit(costs[i-1], costs[i], costs[i+1])
			}
			out.Set(x, y, float32(disp))
		}
	})
	return out
}

// MatchMACs returns the MAC cost of a full block-matching search on a w×h
// frame (each SAD tap is one accumulate-absolute-difference, the operation
// ASV adds to the PE).
func MatchMACs(w, h int, opt BMOptions) int64 {
	block := int64(2*opt.BlockR + 1)
	return int64(w) * int64(h) * int64(opt.MaxDisp+1) * block * block
}

// RefineMACs returns the MAC cost of the guided search with ±searchR.
func RefineMACs(w, h, searchR int, opt BMOptions) int64 {
	block := int64(2*opt.BlockR + 1)
	return int64(w) * int64(h) * int64(2*searchR+1) * block * block
}

// LeftRightCheck invalidates (sets to -1) disparities that fail the
// left-right consistency test with tolerance tol pixels. dispL is on the
// left grid, dispR on the right grid.
func LeftRightCheck(dispL, dispR *imgproc.Image, tol float64) *imgproc.Image {
	out := dispL.Clone()
	for y := 0; y < dispL.H; y++ {
		for x := 0; x < dispL.W; x++ {
			d := float64(dispL.At(x, y))
			xr := int(math.Round(float64(x) - d))
			if xr < 0 || xr >= dispR.W {
				out.Set(x, y, -1)
				continue
			}
			dr := float64(dispR.At(xr, y))
			if math.Abs(d-dr) > tol {
				out.Set(x, y, -1)
			}
		}
	}
	return out
}

// censusCosts precomputes census descriptors for census-cost matching.
type censusCosts struct {
	l, r []uint64
	w    int
}

func newCensusCosts(left, right *imgproc.Image, r int) *censusCosts {
	return &censusCosts{l: census(left, r), r: census(right, r), w: left.W}
}

// costAt returns the block matching cost of aligning the block around
// (x, y) in the left image with disparity d: Hamming distance between
// census descriptors summed over the block.
func (c *censusCosts) costAt(left, right *imgproc.Image, x, y, d, blockR int) float64 {
	h := left.H
	var s float64
	for dy := -blockR; dy <= blockR; dy++ {
		yy := clampInt(y+dy, 0, h-1)
		for dx := -blockR; dx <= blockR; dx++ {
			xx := clampInt(x+dx, 0, c.w-1)
			xr := clampInt(xx-d, 0, c.w-1)
			s += float64(bits.OnesCount64(c.l[yy*c.w+xx] ^ c.r[yy*c.w+xr]))
		}
	}
	return s
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
