package stereo

import "testing"

// FuzzSatAdd checks the saturating-arithmetic helpers against wide-integer
// references on arbitrary inputs. Run via `make fuzz` or
// `go test -fuzz=FuzzSatAdd ./internal/stereo`.
func FuzzSatAdd(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint32(0), uint8(0), uint8(0))
	f.Add(uint16(65535), uint16(1), uint32(1<<20), uint8(255), uint8(0))
	f.Add(uint16(32768), uint16(32767), uint32(65535), uint8(7), uint8(200))
	f.Fuzz(func(t *testing.T, a, b uint16, v uint32, p, q uint8) {
		wide := uint32(a) + uint32(b)
		if wide > 65535 {
			wide = 65535
		}
		if got := satAdd16(a, b); uint32(got) != wide {
			t.Fatalf("satAdd16(%d,%d) = %d, want %d", a, b, got, wide)
		}
		if satAdd16(a, b) != satAdd16(b, a) {
			t.Fatalf("satAdd16 not commutative on (%d,%d)", a, b)
		}
		wantU := v
		if wantU > 65535 {
			wantU = 65535
		}
		if got := satU16(v); uint32(got) != wantU {
			t.Fatalf("satU16(%d) = %d, want %d", v, got, wantU)
		}
		diff := int(p) - int(q)
		if diff < 0 {
			diff = -diff
		}
		if got := absDiffU8(p, q); int(got) != diff {
			t.Fatalf("absDiffU8(%d,%d) = %d, want %d", p, q, got, diff)
		}
	})
}
