package stereo

import (
	"fmt"
	"math"
	"math/bits"

	"asv/internal/imgproc"
	"asv/internal/par"
)

// SGMOptions configures semi-global matching.
type SGMOptions struct {
	MaxDisp  int     // disparity search range [0, MaxDisp]
	CensusR  int     // census-transform window radius (<= 3 for a 64-bit descriptor)
	P1, P2   float32 // small- and large-jump smoothness penalties
	Paths    int     // 4 or 8 aggregation directions
	Subpixel bool    // parabola subpixel refinement on the aggregated costs
	// Fixed selects the fixed-point aggregation (sgm_fixed.go): uint8 census
	// costs, two-pass rolling-row uint16 path accumulators with saturating
	// adds. With integral P1/P2 (the defaults) the result is bit-identical
	// to the float path; fractional penalties round to the nearest integer.
	Fixed bool
}

// DefaultSGMOptions returns the configuration used for the "HH/SGBN-class"
// classic baseline in the experiments.
func DefaultSGMOptions() SGMOptions {
	return SGMOptions{MaxDisp: 64, CensusR: 2, P1: 1.0, P2: 8.0, Paths: 8, Subpixel: true}
}

// census computes the census transform of im with the given radius: each
// pixel becomes a bit-string recording which neighbours are darker than the
// centre. Radius must be <= 3 so the descriptor fits 64 bits.
func census(im *imgproc.Image, r int) []uint64 {
	if r < 1 || (2*r+1)*(2*r+1)-1 > 64 {
		panic(fmt.Sprintf("stereo: census radius %d out of range", r))
	}
	out := make([]uint64, im.W*im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			c := im.At(x, y)
			var desc uint64
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					desc <<= 1
					if im.At(x+dx, y+dy) < c {
						desc |= 1
					}
				}
			}
			out[y*im.W+x] = desc
		}
	}
	return out
}

// costVolume builds the matching-cost volume C[(y*W+x)*(D+1)+d] as the
// Hamming distance between census descriptors.
func costVolume(left, right *imgproc.Image, opt SGMOptions) []float32 {
	cl := census(left, opt.CensusR)
	cr := census(right, opt.CensusR)
	w, h, nd := left.W, left.H, opt.MaxDisp+1
	vol := make([]float32, w*h*nd)
	maxCost := float32((2*opt.CensusR+1)*(2*opt.CensusR+1) - 1)
	par.For(h, func(y int) {
		for x := 0; x < w; x++ {
			base := (y*w + x) * nd
			for d := 0; d < nd; d++ {
				xr := x - d
				if xr < 0 {
					vol[base+d] = maxCost // out of view: worst cost
					continue
				}
				vol[base+d] = float32(bits.OnesCount64(cl[y*w+x] ^ cr[y*w+xr]))
			}
		}
	})
	return vol
}

var sgmDirs = [8][2]int{
	{1, 0}, {-1, 0}, {0, 1}, {0, -1},
	{1, 1}, {-1, 1}, {1, -1}, {-1, -1},
}

// aggregateDir computes and returns the SGM path costs Lr along direction
// (dx, dy). Directions are independent, so SGM runs them in parallel.
func aggregateDir(cost []float32, w, h, nd int, dx, dy int, p1, p2 float32) []float32 {
	lr := make([]float32, w*h*nd)
	// Visit pixels so that the predecessor along (dx,dy) is already done.
	ys := make([]int, h)
	for i := range ys {
		if dy >= 0 {
			ys[i] = i
		} else {
			ys[i] = h - 1 - i
		}
	}
	xs := make([]int, w)
	for i := range xs {
		if dx >= 0 {
			xs[i] = i
		} else {
			xs[i] = w - 1 - i
		}
	}
	for _, y := range ys {
		for _, x := range xs {
			base := (y*w + x) * nd
			px, py := x-dx, y-dy
			if px < 0 || px >= w || py < 0 || py >= h {
				copy(lr[base:base+nd], cost[base:base+nd])
				continue
			}
			pbase := (py*w + px) * nd
			minPrev := float32(math.Inf(1))
			for d := 0; d < nd; d++ {
				if lr[pbase+d] < minPrev {
					minPrev = lr[pbase+d]
				}
			}
			for d := 0; d < nd; d++ {
				best := lr[pbase+d]
				if d > 0 {
					if v := lr[pbase+d-1] + p1; v < best {
						best = v
					}
				}
				if d+1 < nd {
					if v := lr[pbase+d+1] + p1; v < best {
						best = v
					}
				}
				if v := minPrev + p2; v < best {
					best = v
				}
				lr[base+d] = cost[base+d] + best - minPrev
			}
		}
	}
	return lr
}

// SGM computes a disparity map with semi-global matching: census costs
// aggregated along opt.Paths directions with penalties P1/P2, followed by
// winner-take-all and optional subpixel refinement.
func SGM(left, right *imgproc.Image, opt SGMOptions) *imgproc.Image {
	if left.W != right.W || left.H != right.H {
		panic("stereo: image sizes differ")
	}
	if opt.Paths != 4 && opt.Paths != 8 {
		panic(fmt.Sprintf("stereo: SGM paths must be 4 or 8, got %d", opt.Paths))
	}
	if opt.Fixed {
		return sgmFixed(left, right, opt)
	}
	w, h, nd := left.W, left.H, opt.MaxDisp+1
	cost := costVolume(left, right, opt)
	sum := aggregateAll(cost, w, h, nd, opt.Paths, opt.P1, opt.P2)
	return wtaVolume(sum, w, h, nd, opt.Subpixel)
}

// aggregateAll runs the path aggregation along opt.Paths directions and
// returns the summed cost volume. Split from SGM so the kernel benchmark
// (kernelbench.go) can time aggregation in isolation.
func aggregateAll(cost []float32, w, h, nd, paths int, p1, p2 float32) []float32 {
	lrs := make([][]float32, paths)
	par.For(paths, func(i int) {
		dir := sgmDirs[i]
		lrs[i] = aggregateDir(cost, w, h, nd, dir[0], dir[1], p1, p2)
	})
	sum := lrs[0]
	for _, lr := range lrs[1:] {
		for i := range sum {
			sum[i] += lr[i]
		}
	}
	return sum
}

// wtaVolume reads a summed cost volume (pixel-major, disparity innermost)
// out into disparities: winner-take-all restricted to d <= x with optional
// subpixel refinement.
func wtaVolume(sum []float32, w, h, nd int, subpixel bool) *imgproc.Image {
	out := imgproc.NewImage(w, h)
	par.For(h, func(y int) {
		for x := 0; x < w; x++ {
			base := (y*w + x) * nd
			best := float32(math.Inf(1))
			bestD := 0
			hi := nd - 1
			if hi > x {
				hi = x
			}
			for d := 0; d <= hi; d++ {
				if sum[base+d] < best {
					best, bestD = sum[base+d], d
				}
			}
			disp := float64(bestD)
			if subpixel && bestD > 0 && bestD < hi {
				disp += subpixelFit(float64(sum[base+bestD-1]), float64(sum[base+bestD]), float64(sum[base+bestD+1]))
			}
			out.Set(x, y, float32(disp))
		}
	})
	return out
}

// SGMMACs estimates the arithmetic cost of SGM on a w×h frame: census
// construction, cost-volume Hamming distances, and per-path DP updates.
func SGMMACs(w, h int, opt SGMOptions) int64 {
	pix := int64(w) * int64(h)
	nd := int64(opt.MaxDisp + 1)
	censusTaps := int64((2*opt.CensusR+1)*(2*opt.CensusR+1) - 1)
	costOps := pix * nd // one Hamming distance per cell
	dpOps := pix * nd * int64(opt.Paths) * 4
	return 2*pix*censusTaps + costOps + dpOps
}
