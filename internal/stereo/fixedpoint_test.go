package stereo

import (
	"math"
	"math/rand"
	"testing"

	"asv/internal/imgproc"
)

// The fixed-point kernels are validated two independent ways: the sliding
// window implementations must match naive per-candidate integer references
// bit-exactly (this file), and at the repo root the quantized-oracle suite
// bounds their drift against the float reference on the golden-corpus
// presets. Census and integral-penalty SGM additionally match the float
// path bit-exactly, which is asserted here on random images.

func randImage(rng *rand.Rand, w, h int) *imgproc.Image {
	im := imgproc.NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = rng.Float32()
	}
	// A flat patch forces cost ties, exercising the tie-breaking rule.
	for y := h / 4; y < h/2 && y < h; y++ {
		for x := w / 4; x < w/2 && x < w; x++ {
			im.Set(x, y, 0.5)
		}
	}
	return im
}

func randPair(rng *rand.Rand, w, h int) (*imgproc.Image, *imgproc.Image) {
	left := randImage(rng, w, h)
	right := imgproc.NewImage(w, h)
	for y := 0; y < h; y++ {
		d := 2 + y%5
		for x := 0; x < w; x++ {
			right.Pix[y*w+x] = left.At(x+d, y)
		}
	}
	return left, right
}

func sameImage(t *testing.T, name string, got, want *imgproc.Image) {
	t.Helper()
	if got.W != want.W || got.H != want.H {
		t.Fatalf("%s: size %dx%d != %dx%d", name, got.W, got.H, want.W, want.H)
	}
	for i := range got.Pix {
		if math.Float32bits(got.Pix[i]) != math.Float32bits(want.Pix[i]) {
			t.Fatalf("%s: pixel (%d,%d): got %v want %v", name, i%got.W, i/got.W, got.Pix[i], want.Pix[i])
		}
	}
}

// naiveFixedMatch recomputes matchFixed's result with direct per-candidate
// block costs (sadBlockU8/hamBlockU64) instead of the sliding-window strips,
// sharing only the readout semantics — an independent check of the
// blockCostStrip bookkeeping.
func naiveFixedMatch(left, right *imgproc.Image, opt BMOptions) *imgproc.Image {
	w, h := left.W, left.H
	var cand func(x, y, d int) uint32
	if opt.Census > 0 {
		cl, cr := census(left, opt.Census), census(right, opt.Census)
		cand = func(x, y, d int) uint32 { return hamBlockU64(cl, cr, w, h, x, y, d, opt.BlockR) }
	} else {
		l8, r8 := quantize8(left), quantize8(right)
		cand = func(x, y, d int) uint32 { return sadBlockU8(l8, r8, w, h, x, y, d, opt.BlockR) }
	}
	out := imgproc.NewImage(w, h)
	costs := make([]float64, opt.MaxDisp+1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			hi := min(opt.MaxDisp, x)
			best := math.Inf(1)
			bestD := 0
			for d := 0; d <= hi; d++ {
				costs[d] = float64(cand(x, y, d))
				if costs[d] < best {
					best, bestD = costs[d], d
				}
			}
			if opt.UniqRatio > 0 {
				second := math.Inf(1)
				for d := 0; d <= hi; d++ {
					if d >= bestD-1 && d <= bestD+1 {
						continue
					}
					if costs[d] < second {
						second = costs[d]
					}
				}
				if second < best*(1+opt.UniqRatio) {
					out.Set(x, y, -1)
					continue
				}
			}
			disp := float64(bestD)
			if opt.Subpixel && bestD > 0 && bestD < hi {
				disp += subpixelFit(costs[bestD-1], costs[bestD], costs[bestD+1])
			}
			out.Set(x, y, float32(disp))
		}
	}
	return out
}

func TestMatchFixedAgainstNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		w, h, r, maxD int
		census        int
		uniq          float64
	}{
		{37, 70, 2, 21, 0, 0},   // spans three strips
		{37, 70, 3, 21, 0, 0.3}, // uniqueness path
		{64, 33, 1, 40, 0, 0},   // disparity range near the width
		{37, 70, 2, 21, 2, 0},   // census costs
		{29, 31, 0, 8, 0, 0},    // single-pixel blocks
	} {
		left, right := randPair(rng, tc.w, tc.h)
		opt := BMOptions{BlockR: tc.r, MaxDisp: tc.maxD, Subpixel: true,
			UniqRatio: tc.uniq, Census: tc.census, Fixed: true}
		got := Match(left, right, opt)
		want := naiveFixedMatch(left, right, opt)
		sameImage(t, "matchFixed", got, want)
	}
}

// The census-cost fixed path computes exactly the integers the float census
// path computes in float64, so the disparities must be bit-identical.
func TestCensusFixedMatchesFloatBitExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	left, right := randPair(rng, 45, 38)
	opt := BMOptions{BlockR: 3, MaxDisp: 24, Subpixel: true, Census: 2}
	fl := Match(left, right, opt)
	opt.Fixed = true
	fx := Match(left, right, opt)
	sameImage(t, "census match", fx, fl)

	init := imgproc.NewImage(45, 38)
	for i := range init.Pix {
		init.Pix[i] = float32(3 + i%7)
	}
	opt.Fixed = false
	rl := Refine(left, right, init, 3, opt)
	opt.Fixed = true
	rx := Refine(left, right, init, 3, opt)
	sameImage(t, "census refine", rx, rl)
}

// naiveAggregateFixed reuses the float path's per-direction full-volume
// recurrence, in integers, to check the two-pass rolling-row aggregation.
func naiveAggregateFixed(cost []uint8, w, h, nd, paths int, p1, p2 uint16) []uint16 {
	sum := make([]uint16, w*h*nd)
	for i := 0; i < paths; i++ {
		dir := sgmDirs[i]
		dx, dy := dir[0], dir[1]
		lr := make([]uint16, w*h*nd)
		ys := make([]int, h)
		for j := range ys {
			if dy >= 0 {
				ys[j] = j
			} else {
				ys[j] = h - 1 - j
			}
		}
		xs := make([]int, w)
		for j := range xs {
			if dx >= 0 {
				xs[j] = j
			} else {
				xs[j] = w - 1 - j
			}
		}
		for _, y := range ys {
			for _, x := range xs {
				base := (y*w + x) * nd
				px, py := x-dx, y-dy
				if px < 0 || px >= w || py < 0 || py >= h {
					for d := 0; d < nd; d++ {
						lr[base+d] = uint16(cost[base+d])
					}
					continue
				}
				pbase := (py*w + px) * nd
				minPrev := lr[pbase]
				for d := 1; d < nd; d++ {
					minPrev = min(minPrev, lr[pbase+d])
				}
				for d := 0; d < nd; d++ {
					best := lr[pbase+d]
					if d > 0 {
						best = min(best, lr[pbase+d-1]+p1)
					}
					if d+1 < nd {
						best = min(best, lr[pbase+d+1]+p1)
					}
					best = min(best, minPrev+p2)
					lr[base+d] = uint16(cost[base+d]) + best - minPrev
				}
			}
		}
		for j := range sum {
			sum[j] = satAdd16(sum[j], lr[j])
		}
	}
	return sum
}

func TestAggregateFixedAgainstNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	w, h, nd := 23, 17, 12
	cost := make([]uint8, w*h*nd)
	for i := range cost {
		cost[i] = uint8(rng.Intn(25))
	}
	for _, paths := range []int{4, 8} {
		got := aggregateFixed(cost, w, h, nd, paths, 1, 7)
		want := naiveAggregateFixed(cost, w, h, nd, paths, 1, 7)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("paths=%d: cell %d: got %d want %d", paths, i, got[i], want[i])
			}
		}
	}
}

// With integral penalties every float SGM intermediate is a small exact
// integer, so the fixed path must reproduce the float disparities bitwise.
func TestSGMFixedMatchesFloatBitExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	left, right := randPair(rng, 41, 29)
	for _, paths := range []int{4, 8} {
		opt := DefaultSGMOptions()
		opt.MaxDisp = 16
		opt.Paths = paths
		fl := SGM(left, right, opt)
		opt.Fixed = true
		fx := SGM(left, right, opt)
		sameImage(t, "sgm", fx, fl)
	}
}

func TestCVFPlaneKernelsAgainstNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	w, h := 31, 22
	left, right := randPair(rng, w, h)
	l8, r8 := quantize8(left), quantize8(right)
	const d, trunc = 5, 31
	ad := make([]uint8, w*h)
	adPlaneU8(l8, r8, w, h, d, trunc, ad)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			want := min(absDiffU8(l8[y*w+x], r8[y*w+clampInt(x-d, 0, w-1)]), uint8(trunc))
			if ad[y*w+x] != want {
				t.Fatalf("adPlane (%d,%d): got %d want %d", x, y, ad[y*w+x], want)
			}
		}
	}
	for _, r := range []int{0, 2, 3} {
		dst := make([]uint16, w*h)
		rowBuf := make([]uint16, w*h)
		boxSumU16(ad, w, h, r, rowBuf, dst, make([]uint32, w))
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				var want uint32
				for dy := -r; dy <= r; dy++ {
					for dx := -r; dx <= r; dx++ {
						want += uint32(ad[clampInt(y+dy, 0, h-1)*w+clampInt(x+dx, 0, w-1)])
					}
				}
				if uint32(dst[y*w+x]) != want {
					t.Fatalf("boxSum r=%d (%d,%d): got %d want %d", r, x, y, dst[y*w+x], want)
				}
			}
		}
	}
}

func TestQuantize8(t *testing.T) {
	im := imgproc.NewImage(7, 1)
	copy(im.Pix, []float32{-0.5, 0, 0.5, 1, 1.5, 1 / 255.0, 0.0009})
	got := quantize8(im)
	want := []uint8{0, 0, 128, 255, 255, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quantize8[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSatMath(t *testing.T) {
	if satAdd16(65000, 65000) != 65535 {
		t.Fatal("satAdd16 did not saturate")
	}
	if satAdd16(3, 4) != 7 {
		t.Fatal("satAdd16 wrong on small values")
	}
	if satU16(1<<20) != 65535 || satU16(123) != 123 {
		t.Fatal("satU16 wrong")
	}
	if absDiffU8(3, 200) != 197 || absDiffU8(200, 3) != 197 || absDiffU8(9, 9) != 0 {
		t.Fatal("absDiffU8 wrong")
	}
}

func TestMatchFixedDisparityQualityOnShiftedPair(t *testing.T) {
	// A pure horizontal shift must be recovered almost everywhere.
	rng := rand.New(rand.NewSource(71))
	w, h := 64, 40
	left := randImage(rng, w, h)
	right := imgproc.NewImage(w, h)
	const shift = 6
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			right.Pix[y*w+x] = left.At(x+shift, y)
		}
	}
	opt := BMOptions{BlockR: 3, MaxDisp: 16, Fixed: true}
	disp := Match(left, right, opt)
	bad := 0
	for y := 4; y < h-4; y++ {
		for x := shift + opt.BlockR + 1; x < w-4; x++ {
			if math.Abs(float64(disp.At(x, y))-shift) > 1 {
				bad++
			}
		}
	}
	if frac := float64(bad) / float64(w*h); frac > 0.05 {
		t.Fatalf("fixed match missed the shift on %.1f%% of pixels", 100*frac)
	}
}
