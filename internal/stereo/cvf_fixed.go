package stereo

// Fixed-point cost-volume-filtering kernels (integer-only file; see
// satmath_fixed.go). Per disparity plane: truncated uint8 absolute
// differences of the quantized views, then an integer box *sum* (not mean)
// via horizontal and vertical sliding windows — winner-take-all and the
// parabola subpixel fit are both invariant to the constant (2r+1)² scale, so
// dividing would only throw away precision.
//
// Both kernels are written in the row-window form the prove pass can verify:
// every inner loop indexes equal-length subslices, so the per-pixel bounds
// checks pinned by perf_contract.json are zero.

// adPlaneU8 fills dst[y*w+x] with min(|l8 - r8 shifted by d|, trunc),
// clamping the right-view column at the left border like the float path.
func adPlaneU8(l8, r8 []uint8, w, h, d int, trunc uint8, dst []uint8) {
	if w <= 0 {
		return
	}
	// Clamping d once (a no-op for valid disparities) hands prove the
	// 0 <= d <= w fact it needs to drop the x-d checks.
	if d < 0 {
		d = 0
	}
	if d > w {
		d = w
	}
	n := w - d
	for y := 0; y < h; y++ {
		row := y * w
		lr := l8[row:][:w]
		rr := r8[row:][:w]
		dr := dst[row:][:w]
		border := rr[0]
		db := dr[:d]
		for x, lv := range lr[:d] {
			db[x] = min(absDiffU8(lv, border), trunc)
		}
		lo := lr[d:][:n]
		ro := rr[:n]
		do := dr[d:][:n]
		for i, rv := range ro {
			do[i] = min(absDiffU8(lo[i], rv), trunc)
		}
	}
}

// boxSumU16 fills dst[y*w+x] with the (2r+1)×(2r+1) replicate-border window
// sum of src, using rowBuf (w*h uint16) and colSum (w uint32) as
// caller-owned scratch — the kernel itself never allocates.
func boxSumU16(src []uint8, w, h, r int, rowBuf, dst []uint16, colSum []uint32) {
	if r == 0 {
		dst = dst[:len(src)]
		for i, v := range src {
			dst[i] = uint16(v)
		}
		return
	}
	// Horizontal sliding window per row, split like slideRow: clamped
	// borders around a branch-free interior over equal-length subslices.
	for y := 0; y < h; y++ {
		row := y * w
		boxSumRow(src[row:], w, r, rowBuf[row:])
	}
	// Vertical sliding window, one exact uint32 running sum per column,
	// advanced a full row at a time.
	cs := colSum[:w]
	for x := range cs {
		cs[x] = 0
	}
	for dy := -r; dy <= r; dy++ {
		rs := rowBuf[clampInt(dy, 0, h-1)*w:][:w]
		for x, v := range rs {
			cs[x] += uint32(v)
		}
	}
	out := dst[0:][:w]
	for x, s := range cs {
		out[x] = satU16(s)
	}
	for y := 1; y < h; y++ {
		add := rowBuf[clampInt(y+r, 0, h-1)*w:][:w]
		sub := rowBuf[clampInt(y-1-r, 0, h-1)*w:][:w]
		out := dst[y*w:][:w]
		for x, s := range cs {
			s += uint32(add[x]) - uint32(sub[x])
			cs[x] = s
			out[x] = satU16(s)
		}
	}
}

// boxSumRow is boxSumU16's horizontal pass over one row: dst[x] gets the
// clamped window sum Σ_{|dx|<=r} src[clamp(x+dx)]. Same structure as
// slideRow, for uint8 samples.
func boxSumRow(src []uint8, w, r int, dst []uint16) {
	if w <= 0 {
		return
	}
	src = src[:w]
	dst = dst[:w]
	if r <= 0 || w <= 2*r {
		var s uint32
		for dx := -r; dx <= r; dx++ {
			s += uint32(src[clampInt(dx, 0, w-1)])
		}
		dst[0] = satU16(s)
		for x := 1; x < w; x++ {
			s += uint32(src[clampInt(x+r, 0, w-1)])
			s -= uint32(src[clampInt(x-1-r, 0, w-1)])
			dst[x] = satU16(s)
		}
		return
	}
	left := uint32(src[0])
	s := left * uint32(r+1)
	for _, v := range src[1 : r+1] {
		s += uint32(v)
	}
	dst[0] = satU16(s)
	win := src[r+1:][:r]
	outl := dst[1:][:r]
	for i, v := range win {
		s += uint32(v) - left
		outl[i] = satU16(s)
	}
	n := w - 2*r - 1
	adds := src[2*r+1:][:n]
	subs := src[:n]
	outi := dst[r+1:][:n]
	for i, a := range adds {
		s += uint32(a) - uint32(subs[i])
		outi[i] = satU16(s)
	}
	right := uint32(src[w-1])
	tail := src[w-2*r-1:][:r]
	outr := dst[w-r:][:r]
	for i, v := range tail {
		s += right - uint32(v)
		outr[i] = satU16(s)
	}
}
