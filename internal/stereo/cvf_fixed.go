package stereo

// Fixed-point cost-volume-filtering kernels (integer-only file; see
// satmath_fixed.go). Per disparity plane: truncated uint8 absolute
// differences of the quantized views, then an integer box *sum* (not mean)
// via horizontal and vertical sliding windows — winner-take-all and the
// parabola subpixel fit are both invariant to the constant (2r+1)² scale, so
// dividing would only throw away precision.

// adPlaneU8 fills dst[y*w+x] with min(|l8 - r8 shifted by d|, trunc),
// clamping the right-view column at the left border like the float path.
func adPlaneU8(l8, r8 []uint8, w, h, d int, trunc uint8, dst []uint8) {
	for y := 0; y < h; y++ {
		row := y * w
		for x := 0; x < min(d, w); x++ {
			dst[row+x] = min(absDiffU8(l8[row+x], r8[row]), trunc)
		}
		for x := d; x < w; x++ {
			dst[row+x] = min(absDiffU8(l8[row+x], r8[row+x-d]), trunc)
		}
	}
}

// boxSumU16 fills dst[y*w+x] with the (2r+1)×(2r+1) replicate-border window
// sum of src, using rowBuf (w*h uint16 scratch) for the horizontal pass.
func boxSumU16(src []uint8, w, h, r int, rowBuf, dst []uint16) {
	if r == 0 {
		for i, v := range src {
			dst[i] = uint16(v)
		}
		return
	}
	// Horizontal sliding window per row.
	for y := 0; y < h; y++ {
		row := y * w
		var s uint32
		for dx := -r; dx <= r; dx++ {
			s += uint32(src[row+clampInt(dx, 0, w-1)])
		}
		rowBuf[row] = satU16(s)
		for x := 1; x < w; x++ {
			s += uint32(src[row+clampInt(x+r, 0, w-1)])
			s -= uint32(src[row+clampInt(x-1-r, 0, w-1)])
			rowBuf[row+x] = satU16(s)
		}
	}
	// Vertical sliding window, one exact uint32 running sum per column.
	col := make([]uint32, w)
	for dy := -r; dy <= r; dy++ {
		row := clampInt(dy, 0, h-1) * w
		for x := 0; x < w; x++ {
			col[x] += uint32(rowBuf[row+x])
		}
	}
	for x := 0; x < w; x++ {
		dst[x] = satU16(col[x])
	}
	for y := 1; y < h; y++ {
		add := clampInt(y+r, 0, h-1) * w
		sub := clampInt(y-1-r, 0, h-1) * w
		row := y * w
		for x := 0; x < w; x++ {
			col[x] += uint32(rowBuf[add+x])
			col[x] -= uint32(rowBuf[sub+x])
			dst[row+x] = satU16(col[x])
		}
	}
}
