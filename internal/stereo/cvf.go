package stereo

import (
	"math"

	"asv/internal/imgproc"
	"asv/internal/par"
)

// Cost-volume filtering: the third classic family in Fig. 1's frontier
// (ELAS-class local methods). A truncated absolute-difference cost is
// computed per (pixel, disparity), each disparity plane is smoothed with a
// box filter (the "aggregation" step), and the disparity is read out by
// winner-take-all with subpixel refinement. Cheaper than SGM (no dynamic
// programming) but better-behaved than raw block matching near
// discontinuities, since aggregation adapts per plane.

// CVFOptions configures the cost-volume-filtering matcher.
type CVFOptions struct {
	MaxDisp  int     // disparity search range [0, MaxDisp]
	AggR     int     // box-aggregation radius per disparity plane
	Truncate float32 // absolute-difference cost cap
	Subpixel bool
	// Fixed selects the fixed-point kernels (cvf_fixed.go): uint8-quantized
	// truncated differences and integer sliding-window box sums. Drift vs
	// the float path is bounded by the quantized-oracle suite.
	Fixed bool
}

// DefaultCVFOptions returns the configuration used for the ELAS-class
// point of the Fig. 1 frontier.
func DefaultCVFOptions() CVFOptions {
	return CVFOptions{MaxDisp: 64, AggR: 3, Truncate: 0.12, Subpixel: true}
}

// CostVolumeFilter computes a disparity map by filtered-cost-volume
// winner-take-all.
func CostVolumeFilter(left, right *imgproc.Image, opt CVFOptions) *imgproc.Image {
	if left.W != right.W || left.H != right.H {
		panic("stereo: image sizes differ")
	}
	if opt.Fixed {
		return cvfFixed(left, right, opt)
	}
	w, h := left.W, left.H
	nd := opt.MaxDisp + 1
	planes := make([]*imgproc.Image, nd)
	par.For(nd, func(d int) {
		plane := imgproc.NewImage(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				c := left.At(x, y) - right.At(x-d, y)
				if c < 0 {
					c = -c
				}
				if c > opt.Truncate {
					c = opt.Truncate
				}
				plane.Set(x, y, c)
			}
		}
		planes[d] = imgproc.BoxFilter(plane, opt.AggR)
	})

	out := imgproc.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			best := float32(math.Inf(1))
			bestD := 0
			hi := nd - 1
			if hi > x {
				hi = x
			}
			for d := 0; d <= hi; d++ {
				if c := planes[d].At(x, y); c < best {
					best, bestD = c, d
				}
			}
			disp := float64(bestD)
			if opt.Subpixel && bestD > 0 && bestD < hi {
				disp += subpixelFit(
					float64(planes[bestD-1].At(x, y)),
					float64(planes[bestD].At(x, y)),
					float64(planes[bestD+1].At(x, y)))
			}
			out.Set(x, y, float32(disp))
		}
	}
	return out
}

// CVFMACs estimates the arithmetic cost: one AD per cost cell, a separable
// box aggregation per plane, and the WTA scan.
func CVFMACs(w, h int, opt CVFOptions) int64 {
	pix := int64(w) * int64(h)
	nd := int64(opt.MaxDisp + 1)
	boxTaps := int64(2*(2*opt.AggR+1)) * 2 // separable, both passes
	return pix*nd + pix*nd*boxTaps + pix*nd
}
