package stereo

import (
	"testing"
	"testing/quick"

	"asv/internal/imgproc"
)

func TestMedianFilterRemovesSaltNoise(t *testing.T) {
	d := imgproc.NewImage(16, 16)
	for i := range d.Pix {
		d.Pix[i] = 5
	}
	d.Set(8, 8, 60) // impulse
	out := MedianFilter(d, 1)
	if out.At(8, 8) != 5 {
		t.Fatalf("median did not remove impulse: %v", out.At(8, 8))
	}
}

func TestMedianFilterIgnoresInvalid(t *testing.T) {
	d := imgproc.NewImage(8, 8)
	for i := range d.Pix {
		d.Pix[i] = -1
	}
	d.Set(4, 4, 7)
	out := MedianFilter(d, 1)
	// (4,4)'s window holds one valid sample: itself.
	if out.At(4, 4) != 7 {
		t.Fatalf("valid pixel lost: %v", out.At(4, 4))
	}
	if out.At(0, 0) != -1 {
		t.Fatal("pixel with no valid neighbours should stay invalid")
	}
}

func TestMedianFilterPreservesStepEdge(t *testing.T) {
	// A disparity discontinuity must not be smoothed away (medians keep
	// edges; means do not).
	d := imgproc.NewImage(16, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 16; x++ {
			if x < 8 {
				d.Set(x, y, 4)
			} else {
				d.Set(x, y, 12)
			}
		}
	}
	out := MedianFilter(d, 1)
	if out.At(3, 4) != 4 || out.At(12, 4) != 12 {
		t.Fatal("median corrupted flat regions")
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 16; x++ {
			if v := out.At(x, y); v != 4 && v != 12 {
				t.Fatalf("median invented value %v at (%d,%d)", v, x, y)
			}
		}
	}
}

func TestSpeckleFilterRemovesSmallIslands(t *testing.T) {
	d := imgproc.NewImage(16, 16)
	for i := range d.Pix {
		d.Pix[i] = 3
	}
	// A 2x2 island at a different disparity.
	d.Set(5, 5, 20)
	d.Set(6, 5, 20)
	d.Set(5, 6, 20)
	d.Set(6, 6, 20)
	out := SpeckleFilter(d, 1.0, 8)
	for _, p := range [][2]int{{5, 5}, {6, 5}, {5, 6}, {6, 6}} {
		if out.At(p[0], p[1]) != -1 {
			t.Fatalf("island pixel (%d,%d) survived: %v", p[0], p[1], out.At(p[0], p[1]))
		}
	}
	if out.At(0, 0) != 3 {
		t.Fatal("large region was damaged")
	}
}

func TestSpeckleFilterKeepsLargeRegions(t *testing.T) {
	d := imgproc.NewImage(12, 12)
	for i := range d.Pix {
		d.Pix[i] = 3
	}
	out := SpeckleFilter(d, 1.0, 50)
	for i, v := range out.Pix {
		if v != 3 {
			t.Fatalf("pixel %d of a large region invalidated", i)
		}
	}
}

func TestSpeckleFilterGradualRampIsOneRegion(t *testing.T) {
	// A smooth ramp (ground plane) must connect through small steps.
	d := imgproc.NewImage(20, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 20; x++ {
			d.Set(x, y, float32(x)*0.5)
		}
	}
	out := SpeckleFilter(d, 0.6, 50)
	for i, v := range out.Pix {
		if v < 0 {
			t.Fatalf("ramp pixel %d invalidated; ramp should be one region", i)
		}
	}
}

func TestFillInvalidTakesBackgroundSide(t *testing.T) {
	d := imgproc.FromPix([]float32{8, -1, -1, 2}, 4, 1)
	out := FillInvalid(d)
	// Holes take the smaller (background) neighbour.
	if out.At(1, 0) != 2 || out.At(2, 0) != 2 {
		t.Fatalf("fill picked foreground: %v", out.Pix)
	}
}

func TestFillInvalidEdgeCases(t *testing.T) {
	d := imgproc.FromPix([]float32{-1, -1, 5, -1}, 4, 1)
	out := FillInvalid(d)
	if out.At(0, 0) != 5 || out.At(3, 0) != 5 {
		t.Fatalf("one-sided fill failed: %v", out.Pix)
	}
	empty := imgproc.FromPix([]float32{-1, -1}, 2, 1)
	out2 := FillInvalid(empty)
	if out2.At(0, 0) != 0 || out2.At(1, 0) != 0 {
		t.Fatal("all-invalid row should fill with 0")
	}
}

// Property: post-processing never produces new invalid pixels from valid
// input (median over a fully valid map stays valid), and FillInvalid always
// produces a dense map.
func TestQuickPostprocessTotality(t *testing.T) {
	f := func(seed int64) bool {
		d := imgproc.NewImage(12, 10)
		s := seed
		for i := range d.Pix {
			s = s*6364136223846793005 + 1442695040888963407
			v := float32((s>>33)%32) / 2
			if (s>>41)%7 == 0 {
				v = -1
			}
			d.Pix[i] = v
		}
		filled := FillInvalid(d)
		for _, v := range filled.Pix {
			if v < 0 {
				return false
			}
		}
		med := MedianFilter(filled, 1)
		for _, v := range med.Pix {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Pipeline-level check: on a rendered pair, LR-check + median + speckle +
// fill should not hurt (and typically helps) the three-pixel error.
func TestPostprocessPipelineDoesNotHurt(t *testing.T) {
	left, right, gt := constPair(80, 48, 7)
	opt := DefaultBMOptions()
	opt.MaxDisp = 16
	raw := Match(left, right, opt)
	cleaned := FillInvalid(SpeckleFilter(MedianFilter(raw, 1), 1.0, 20))
	rawErr := ThreePixelError(raw, gt)
	cleanErr := ThreePixelError(cleaned, gt)
	if cleanErr > rawErr+1 {
		t.Fatalf("post-processing hurt accuracy: %.2f%% -> %.2f%%", rawErr, cleanErr)
	}
}
