package stereo

import "testing"

func TestMeasureKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness, skipped in -short")
	}
	points := MeasureKernels([][2]int{{32, 24}}, 8, 1)
	if len(points) != 10 { // 5 kernels × 2 variants
		t.Fatalf("got %d points, want 10", len(points))
	}
	for _, p := range points {
		if p.NsPerPixel <= 0 {
			t.Errorf("%s/%s: non-positive ns/pixel %v", p.Kernel, p.Variant, p.NsPerPixel)
		}
		switch p.Variant {
		case "float":
			if p.SpeedupX != 0 {
				t.Errorf("%s/float: speedup set on float row", p.Kernel)
			}
		case "fixed":
			if p.SpeedupX <= 0 {
				t.Errorf("%s/fixed: missing speedup", p.Kernel)
			}
		default:
			t.Errorf("unknown variant %q", p.Variant)
		}
		if p.W != 32 || p.H != 24 || p.MaxDisp != 8 {
			t.Errorf("%s/%s: wrong size metadata %+v", p.Kernel, p.Variant, p)
		}
	}
}
