package stereo

// Fixed-point matching paths (ROADMAP item 2, FP-Stereo-style): intensities
// are quantized to uint8 Q0.8 once per frame, matching costs live in uint16
// struct-of-arrays volumes built by cache-blocked sliding-window kernels
// (sad_fixed.go, sgm_fixed.go, cvf_fixed.go), and only this readout layer
// converts integer costs back to float32 disparities (winner-take-all,
// uniqueness test, parabola subpixel fit). The float implementations remain
// the golden reference: Fixed is opt-in on BMOptions/SGMOptions/CVFOptions,
// and the quantized-oracle differential suite bounds the drift (DESIGN.md
// §9). Census-cost matching and SGM with integral penalties are exactly the
// float results, because every intermediate is a small integer the float
// path also computes exactly.

import (
	"math"

	"asv/internal/imgproc"
	"asv/internal/par"
)

// quantize8 maps a nominal-[0,1] float image onto uint8 Q0.8 samples with
// round-to-nearest; out-of-range values saturate.
func quantize8(im *imgproc.Image) []uint8 {
	out := make([]uint8, len(im.Pix))
	for i, v := range im.Pix {
		switch {
		case v <= 0: // out[i] is already 0
		case v >= 1:
			out[i] = 255
		default:
			out[i] = uint8(v*255 + 0.5)
		}
	}
	return out
}

// roundPenalty converts a float smoothness penalty to the uint16 domain.
func roundPenalty(p float32) uint16 {
	r := math.Round(float64(p))
	if r < 0 {
		return 0
	}
	if r > 65535 {
		return 65535
	}
	return uint16(r)
}

// matchFixed is the fixed-point implementation behind Match when
// BMOptions.Fixed is set.
func matchFixed(left, right *imgproc.Image, opt BMOptions) *imgproc.Image {
	w, h := left.W, left.H
	nd := opt.MaxDisp + 1
	out := imgproc.NewImage(w, h)
	var cost rowCoster
	if opt.Census > 0 {
		cost = censusRowCost(census(left, opt.Census), census(right, opt.Census), w)
	} else {
		cost = sadRowCost(quantize8(left), quantize8(right), w)
	}
	r := opt.BlockR
	strips := (h + sadStripRows - 1) / sadStripRows
	par.For(strips, func(s int) {
		y0 := s * sadStripRows
		y1 := min(y0+sadStripRows, h)
		rows := y1 - y0
		adBuf := make([]uint16, w)
		rowSum := make([]uint16, (rows+2*r)*w)
		colSum := make([]uint32, w)
		vol := make([]uint16, rows*nd*w)
		blockCostStrip(cost, w, h, y0, y1, r, nd, adBuf, rowSum, colSum, vol)
		wtaStrip(vol, out, w, y0, y1, nd, opt)
	})
	return out
}

// wtaStrip reads the strip's SoA cost volume out into disparities:
// winner-take-all restricted to d <= x (the float path's left-border rule),
// the uniqueness test, and subpixel refinement. Ties keep the smallest
// disparity, like the float scan's strict less-than.
func wtaStrip(vol []uint16, out *imgproc.Image, w, y0, y1, nd int, opt BMOptions) {
	bestC := make([]uint16, w)
	bestD := make([]int32, w)
	for y := y0; y < y1; y++ {
		rowBase := (y - y0) * nd * w
		for x := range bestC {
			bestC[x] = math.MaxUint16
			bestD[x] = 0
		}
		for d := 0; d < nd; d++ {
			row := vol[rowBase+d*w : rowBase+(d+1)*w]
			for x := d; x < w; x++ {
				if row[x] < bestC[x] {
					bestC[x] = row[x]
					bestD[x] = int32(d)
				}
			}
		}
		for x := 0; x < w; x++ {
			hi := min(nd-1, x)
			bd := int(bestD[x])
			best := bestC[x]
			if best == math.MaxUint16 {
				// Never updated (only possible when every searched cost
				// saturated); d=0 is the winner by the tie rule.
				best = vol[rowBase+0*w+x]
			}
			if opt.UniqRatio > 0 {
				second := math.Inf(1)
				for d := 0; d <= hi; d++ {
					if d >= bd-1 && d <= bd+1 {
						continue
					}
					if c := float64(vol[rowBase+d*w+x]); c < second {
						second = c
					}
				}
				if second < float64(best)*(1+opt.UniqRatio) {
					out.Set(x, y, -1)
					continue
				}
			}
			disp := float64(bd)
			if opt.Subpixel && bd > 0 && bd < hi {
				disp += subpixelFit(
					float64(vol[rowBase+(bd-1)*w+x]),
					float64(vol[rowBase+bd*w+x]),
					float64(vol[rowBase+(bd+1)*w+x]))
			}
			out.Set(x, y, float32(disp))
		}
	}
}

// refineFixed is the fixed-point implementation behind Refine when
// BMOptions.Fixed is set: the guided ±searchR correspondence search with
// integer per-candidate block costs.
func refineFixed(left, right, init *imgproc.Image, searchR int, opt BMOptions) *imgproc.Image {
	w, h := left.W, left.H
	out := imgproc.NewImage(w, h)
	var cand func(x, y, d int) uint32
	if opt.Census > 0 {
		cl, cr := census(left, opt.Census), census(right, opt.Census)
		cand = func(x, y, d int) uint32 {
			return hamBlockU64(cl, cr, w, h, x, y, d, opt.BlockR)
		}
	} else {
		l8, r8 := quantize8(left), quantize8(right)
		cand = func(x, y, d int) uint32 {
			return sadBlockU8(l8, r8, w, h, x, y, d, opt.BlockR)
		}
	}
	par.For(h, func(y int) {
		costs := make([]uint32, 2*searchR+1)
		for x := 0; x < w; x++ {
			center := int(math.Round(float64(init.At(x, y))))
			lo := max(center-searchR, 0)
			hi := min(center+searchR, x)
			if lo > hi {
				out.Set(x, y, 0)
				continue
			}
			best := uint32(math.MaxUint32)
			bestD := lo
			for d := lo; d <= hi; d++ {
				c := cand(x, y, d)
				costs[d-lo] = c
				if c < best {
					best, bestD = c, d
				}
			}
			disp := float64(bestD)
			if opt.Subpixel && bestD > lo && bestD < hi {
				i := bestD - lo
				disp += subpixelFit(float64(costs[i-1]), float64(costs[i]), float64(costs[i+1]))
			}
			out.Set(x, y, float32(disp))
		}
	})
	return out
}

// sgmFixed is the fixed-point implementation behind SGM when
// SGMOptions.Fixed is set.
func sgmFixed(left, right *imgproc.Image, opt SGMOptions) *imgproc.Image {
	w, h, nd := left.W, left.H, opt.MaxDisp+1
	maxCost := uint8((2*opt.CensusR+1)*(2*opt.CensusR+1) - 1)
	cost := costVolumeU8(census(left, opt.CensusR), census(right, opt.CensusR), w, h, nd, maxCost)
	sum := aggregateFixed(cost, w, h, nd, opt.Paths, roundPenalty(opt.P1), roundPenalty(opt.P2))
	return wtaVolumeU16(sum, w, h, nd, opt.Subpixel)
}

// wtaVolumeU16 reads a summed uint16 cost volume (pixel-major, disparity
// innermost) out into disparities — the integer counterpart of wtaVolume.
func wtaVolumeU16(sum []uint16, w, h, nd int, subpixel bool) *imgproc.Image {
	out := imgproc.NewImage(w, h)
	par.For(h, func(y int) {
		for x := 0; x < w; x++ {
			base := (y*w + x) * nd
			best := uint16(math.MaxUint16)
			bestD := 0
			hi := min(nd-1, x)
			for d := 0; d <= hi; d++ {
				if sum[base+d] < best {
					best, bestD = sum[base+d], d
				}
			}
			disp := float64(bestD)
			if subpixel && bestD > 0 && bestD < hi {
				disp += subpixelFit(float64(sum[base+bestD-1]), float64(sum[base+bestD]), float64(sum[base+bestD+1]))
			}
			out.Set(x, y, float32(disp))
		}
	})
	return out
}

// cvfFixed is the fixed-point implementation behind CostVolumeFilter when
// CVFOptions.Fixed is set.
func cvfFixed(left, right *imgproc.Image, opt CVFOptions) *imgproc.Image {
	w, h := left.W, left.H
	nd := opt.MaxDisp + 1
	trunc := uint8(255)
	if t := math.Round(float64(opt.Truncate) * 255); t < 255 {
		if t < 0 {
			t = 0
		}
		trunc = uint8(t)
	}
	l8, r8 := quantize8(left), quantize8(right)
	planes := make([][]uint16, nd)
	par.For(nd, func(d int) {
		ad := make([]uint8, w*h)
		adPlaneU8(l8, r8, w, h, d, trunc, ad)
		dst := make([]uint16, w*h)
		rowBuf := make([]uint16, w*h)
		colSum := make([]uint32, w)
		boxSumU16(ad, w, h, opt.AggR, rowBuf, dst, colSum)
		planes[d] = dst
	})

	out := imgproc.NewImage(w, h)
	par.For(h, func(y int) {
		row := y * w
		for x := 0; x < w; x++ {
			best := uint16(math.MaxUint16)
			bestD := 0
			hi := min(nd-1, x)
			for d := 0; d <= hi; d++ {
				if c := planes[d][row+x]; c < best {
					best, bestD = c, d
				}
			}
			disp := float64(bestD)
			if opt.Subpixel && bestD > 0 && bestD < hi {
				disp += subpixelFit(
					float64(planes[bestD-1][row+x]),
					float64(planes[bestD][row+x]),
					float64(planes[bestD+1][row+x]))
			}
			out.Set(x, y, float32(disp))
		}
	})
	return out
}
