package stereo

import (
	"testing"

	"asv/internal/imgproc"
)

// gainedPair is constPair with a photometric gain applied to the right
// image, modelling exposure mismatch between the cameras.
func gainedPair(w, h int, d float64, gain float32) (left, right, gt *imgproc.Image) {
	left, right, gt = constPair(w, h, d)
	for i := range right.Pix {
		right.Pix[i] *= gain
	}
	return left, right, gt
}

func TestCensusMatchSurvivesGain(t *testing.T) {
	left, right, gt := gainedPair(64, 40, 7, 1.6)

	sad := DefaultBMOptions()
	sad.MaxDisp = 16
	sadErr := ThreePixelError(Match(left, right, sad), gt)

	cen := sad
	cen.Census = 2
	cenErr := ThreePixelError(Match(left, right, cen), gt)

	if cenErr > 10 {
		t.Fatalf("census matching should survive a 60%% gain (error %.1f%%)", cenErr)
	}
	if sadErr < cenErr+10 {
		t.Fatalf("SAD should degrade under gain: SAD %.1f%% vs census %.1f%%", sadErr, cenErr)
	}
}

func TestCensusRefineSurvivesGain(t *testing.T) {
	left, right, gt := gainedPair(64, 40, 9, 1.3)
	init := gt.Clone()

	sad := DefaultBMOptions()
	sad.BlockR = 2
	sadErr := ThreePixelError(Refine(left, right, init, 3, sad), gt)

	cen := sad
	cen.Census = 2
	cenErr := ThreePixelError(Refine(left, right, init, 3, cen), gt)

	if cenErr > 8 {
		t.Fatalf("census refine should survive gain (error %.1f%%)", cenErr)
	}
	if sadErr < cenErr {
		t.Fatalf("SAD refine should not beat census under gain: %.1f%% vs %.1f%%", sadErr, cenErr)
	}
}

func TestCensusMatchStillWorksOnCleanPair(t *testing.T) {
	left, right, gt := constPair(64, 40, 6)
	opt := DefaultBMOptions()
	opt.MaxDisp = 16
	opt.Census = 2
	if e := ThreePixelError(Match(left, right, opt), gt); e > 8 {
		t.Fatalf("census matching on clean pair: error %.1f%%", e)
	}
}
