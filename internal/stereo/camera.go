// Package stereo implements the classic stereo-vision substrate of ASV:
// SAD block matching with guided 1-D search (ISM's refinement step),
// semi-global matching as a high-accuracy classic baseline, triangulation,
// and the three-pixel-error accuracy metric used in the evaluation.
//
// Disparity maps follow the paper's convention (Fig. 2b): the map is on the
// reference (left) image grid and D(x,y) >= 0 is the horizontal displacement
// such that Left(x, y) corresponds to Right(x - D, y) for cameras with the
// right lens displaced to the right — equivalently, objects shift left in
// the right image.
package stereo

import (
	"fmt"
	"math"

	"asv/internal/imgproc"
)

// Camera describes a stereo rig's intrinsic and extrinsic parameters.
type Camera struct {
	BaselineM  float64 // distance between the lenses (metres)
	FocalM     float64 // focal length (metres)
	PixelSizeM float64 // physical size of one pixel on the sensor (metres)
}

// Bumblebee2 is the industry-standard stereo camera used for the paper's
// Fig. 4 sensitivity analysis: B = 120 mm, f = 2.5 mm, 7.4 µm pixels.
func Bumblebee2() Camera {
	return Camera{BaselineM: 0.120, FocalM: 2.5e-3, PixelSizeM: 7.4e-6}
}

// Depth converts a disparity in pixels into a depth in metres via
// triangulation (Equ. 1): D = B·f / Z where Z is the disparity expressed in
// metres on the sensor. It returns +Inf for non-positive disparity.
func (c Camera) Depth(disparityPx float64) float64 {
	if disparityPx <= 0 {
		return math.Inf(1)
	}
	return c.BaselineM * c.FocalM / (disparityPx * c.PixelSizeM)
}

// Disparity is the inverse of Depth: the disparity in pixels at which an
// object at the given depth (metres) appears.
func (c Camera) Disparity(depthM float64) float64 {
	if depthM <= 0 {
		panic(fmt.Sprintf("stereo: non-positive depth %v", depthM))
	}
	return c.BaselineM * c.FocalM / (depthM * c.PixelSizeM)
}

// DepthError returns the absolute depth-estimation error (metres) caused by
// a disparity error of errPx pixels for an object at the given true depth.
// This is the quantity plotted in Fig. 4.
func (c Camera) DepthError(depthM, errPx float64) float64 {
	d := c.Disparity(depthM)
	est := c.Depth(d + errPx)
	return math.Abs(est - depthM)
}

// DepthMap triangulates an entire disparity map into a depth map (metres).
// Non-positive disparities produce +Inf depth.
func (c Camera) DepthMap(disp *imgproc.Image) *imgproc.Image {
	out := imgproc.NewImage(disp.W, disp.H)
	for i, d := range disp.Pix {
		out.Pix[i] = float32(c.Depth(float64(d)))
	}
	return out
}
