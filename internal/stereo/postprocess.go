package stereo

import (
	"sort"

	"asv/internal/imgproc"
	"asv/internal/par"
)

// Disparity-map post-processing: the cleanup passes a production stereo
// pipeline runs between matching and consumption. Invalid pixels are
// marked with negative disparities throughout (the convention of
// LeftRightCheck and BMOptions.UniqRatio).

// MedianFilter applies a (2r+1)×(2r+1) median to the disparity map,
// ignoring invalid (negative) samples; a pixel with no valid neighbours
// stays invalid. The median is the standard salt-and-pepper cleanup for
// WTA disparity maps.
func MedianFilter(d *imgproc.Image, r int) *imgproc.Image {
	if r < 1 {
		panic("stereo: median radius < 1")
	}
	out := imgproc.NewImage(d.W, d.H)
	par.For(d.H, func(y int) {
		window := make([]float32, 0, (2*r+1)*(2*r+1))
		for x := 0; x < d.W; x++ {
			window = window[:0]
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					if v := d.At(x+dx, y+dy); v >= 0 {
						window = append(window, v)
					}
				}
			}
			if len(window) == 0 {
				out.Set(x, y, -1)
				continue
			}
			sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
			out.Set(x, y, window[len(window)/2])
		}
	})
	return out
}

// SpeckleFilter invalidates connected regions of similar disparity smaller
// than minRegion pixels — isolated mismatch islands that survive WTA.
// Two neighbouring pixels are connected when their disparities differ by
// at most maxDiff. Invalid input pixels stay invalid.
func SpeckleFilter(d *imgproc.Image, maxDiff float32, minRegion int) *imgproc.Image {
	w, h := d.W, d.H
	out := d.Clone()
	labels := make([]int32, w*h) // 0 = unvisited
	var region []int32           // stack + member record, reused
	next := int32(1)

	for start := 0; start < w*h; start++ {
		if labels[start] != 0 || d.Pix[start] < 0 {
			continue
		}
		// Flood fill the connected component of start.
		region = region[:0]
		region = append(region, int32(start))
		labels[start] = next
		size := 0
		for size < len(region) {
			idx := region[size]
			size++
			x, y := int(idx)%w, int(idx)/w
			v := d.Pix[idx]
			for _, n := range [4][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
				nx, ny := n[0], n[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				ni := int32(ny*w + nx)
				if labels[ni] != 0 || d.Pix[ni] < 0 {
					continue
				}
				diff := d.Pix[ni] - v
				if diff < 0 {
					diff = -diff
				}
				if diff > maxDiff {
					continue
				}
				labels[ni] = next
				region = append(region, ni)
			}
		}
		if len(region) < minRegion {
			for _, idx := range region {
				out.Pix[idx] = -1
			}
		}
		next++
	}
	return out
}

// FillInvalid replaces invalid (negative) disparities by horizontal
// background extension — each hole takes the smaller of its left/right
// valid neighbours, the standard occlusion-filling heuristic (occluded
// regions belong to the background). Rows with no valid pixel are filled
// with 0.
func FillInvalid(d *imgproc.Image) *imgproc.Image {
	out := d.Clone()
	par.For(d.H, func(y int) {
		row := out.Pix[y*d.W : (y+1)*d.W]
		for x := 0; x < len(row); x++ {
			if row[x] >= 0 {
				continue
			}
			var left, right float32 = -1, -1
			for i := x - 1; i >= 0; i-- {
				if row[i] >= 0 {
					left = row[i]
					break
				}
			}
			for i := x + 1; i < len(row); i++ {
				if row[i] >= 0 {
					right = row[i]
					break
				}
			}
			switch {
			case left >= 0 && right >= 0:
				if left < right {
					row[x] = left
				} else {
					row[x] = right
				}
			case left >= 0:
				row[x] = left
			case right >= 0:
				row[x] = right
			default:
				row[x] = 0
			}
		}
	})
	return out
}
