package stereo

import (
	"testing"

	"asv/internal/imgproc"
)

func TestCVFRecoversConstantDisparity(t *testing.T) {
	left, right, gt := constPair(64, 40, 6)
	opt := DefaultCVFOptions()
	opt.MaxDisp = 16
	disp := CostVolumeFilter(left, right, opt)
	if e := ThreePixelError(disp, gt); e > 8 {
		t.Fatalf("CVF three-pixel error = %v%%", e)
	}
}

func TestCVFSubpixelImprovesMAE(t *testing.T) {
	left, right, gt := constPair(64, 32, 5.5)
	opt := DefaultCVFOptions()
	opt.MaxDisp = 12
	with := CostVolumeFilter(left, right, opt)
	opt.Subpixel = false
	without := CostVolumeFilter(left, right, opt)
	if MeanAbsError(with, gt) >= MeanAbsError(without, gt) {
		t.Fatal("subpixel refinement should reduce MAE")
	}
}

func TestCVFTruncationBoundsCosts(t *testing.T) {
	// An extreme outlier pixel must not poison its neighbourhood: with
	// truncation, the aggregated disparity stays near the majority vote.
	left, right, gt := constPair(48, 24, 4)
	left.Set(24, 12, 50) // dead pixel
	opt := DefaultCVFOptions()
	opt.MaxDisp = 10
	disp := CostVolumeFilter(left, right, opt)
	if e := ThreePixelError(disp, gt); e > 10 {
		t.Fatalf("truncated CVF should tolerate a dead pixel: error %v%%", e)
	}
}

func TestCVFSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CostVolumeFilter(imgproc.NewImage(8, 8), imgproc.NewImage(9, 8), DefaultCVFOptions())
}

func TestCVFMACsBetweenBMAndSGM(t *testing.T) {
	// The frontier ordering the experiment relies on: CVF costs more than
	// nothing, less than full block matching with the same range.
	cvf := CVFMACs(960, 540, DefaultCVFOptions())
	bm := MatchMACs(960, 540, DefaultBMOptions())
	if cvf <= 0 || cvf >= bm {
		t.Fatalf("CVF MACs %d should be positive and below BM's %d", cvf, bm)
	}
}
