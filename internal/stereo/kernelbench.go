package stereo

import (
	"math"
	"math/rand"
	"time"

	"asv/internal/imgproc"
)

// Kernel-level ns/pixel benchmarking for the fixed-point work (ROADMAP item
// 2). Each matching kernel is timed in both its float reference and
// fixed-point variant on the same synthetic pair, reporting nanoseconds per
// output pixel — the per-kernel efficiency metric the CI gate tracks in
// BENCH_kernels.json. Pipeline-level wall-clock lives in asvbench -exp
// pipeline; this file isolates the kernels so a regression points at the
// code that caused it.

// KernelPoint is one (kernel, variant, size) benchmark measurement.
type KernelPoint struct {
	Kernel     string  `json:"kernel"`  // sad | census | cvf | sgm-aggregate | wta
	Variant    string  `json:"variant"` // float | fixed
	W          int     `json:"w"`
	H          int     `json:"h"`
	MaxDisp    int     `json:"max_disp"`
	NsPerPixel float64 `json:"ns_per_pixel"`
	// SpeedupX is NsPerPixel(float) / NsPerPixel(fixed) at the same size,
	// recorded on fixed rows only.
	SpeedupX float64 `json:"speedup_x,omitempty"`
}

// benchPair synthesizes a deterministic stereo pair: banded sine texture
// plus seeded noise, with the right view a ~8 px shifted copy, so every
// kernel does representative (non-degenerate) work.
func benchPair(w, h int) (*imgproc.Image, *imgproc.Image) {
	rng := rand.New(rand.NewSource(int64(w)*1_000_003 + int64(h)))
	left := imgproc.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 0.5 + 0.3*math.Sin(float64(x)*0.31+float64(y)*0.17) + 0.2*rng.Float64()
			left.Set(x, y, float32(v))
		}
	}
	right := imgproc.NewImage(w, h)
	for y := 0; y < h; y++ {
		d := 6 + (y/8)%5
		for x := 0; x < w; x++ {
			right.Pix[y*w+x] = left.At(x+d, y)
		}
	}
	return left, right
}

// timeKernel returns the minimum ns/pixel over rounds runs of f.
func timeKernel(w, h, rounds int, f func()) float64 {
	best := math.Inf(1)
	for i := 0; i < max(rounds, 1); i++ {
		start := time.Now()
		f()
		if ns := float64(time.Since(start).Nanoseconds()) / float64(w*h); ns < best {
			best = ns
		}
	}
	return best
}

// kernelVariants names one kernel's float and fixed runners, both closed
// over the same inputs.
type kernelVariants struct {
	name         string
	float, fixed func()
}

// MeasureKernels benchmarks every matching kernel at the given frame sizes
// and disparity range, timing each variant rounds times and keeping the
// fastest run. Results are ordered kernel-major with the float row directly
// before its fixed row.
func MeasureKernels(sizes [][2]int, maxDisp, rounds int) []KernelPoint {
	var points []KernelPoint
	for _, sz := range sizes {
		w, h := sz[0], sz[1]
		left, right := benchPair(w, h)
		nd := maxDisp + 1

		bmOpt := BMOptions{BlockR: 3, MaxDisp: maxDisp, Subpixel: true}
		bmFixed := bmOpt
		bmFixed.Fixed = true
		censusOpt := bmOpt
		censusOpt.Census = 2
		censusFixed := censusOpt
		censusFixed.Fixed = true

		cvfOpt := DefaultCVFOptions()
		cvfOpt.MaxDisp = maxDisp
		cvfFixedOpt := cvfOpt
		cvfFixedOpt.Fixed = true

		sgmOpt := DefaultSGMOptions()
		sgmOpt.MaxDisp = maxDisp
		floatCost := costVolume(left, right, sgmOpt)
		maxCost := uint8((2*sgmOpt.CensusR+1)*(2*sgmOpt.CensusR+1) - 1)
		fixedCost := costVolumeU8(census(left, sgmOpt.CensusR), census(right, sgmOpt.CensusR), w, h, nd, maxCost)
		p1, p2 := roundPenalty(sgmOpt.P1), roundPenalty(sgmOpt.P2)
		floatSum := aggregateAll(floatCost, w, h, nd, sgmOpt.Paths, sgmOpt.P1, sgmOpt.P2)
		fixedSum := aggregateFixed(fixedCost, w, h, nd, sgmOpt.Paths, p1, p2)

		kernels := []kernelVariants{
			{"sad",
				func() { Match(left, right, bmOpt) },
				func() { Match(left, right, bmFixed) }},
			{"census",
				func() { Match(left, right, censusOpt) },
				func() { Match(left, right, censusFixed) }},
			{"cvf",
				func() { CostVolumeFilter(left, right, cvfOpt) },
				func() { CostVolumeFilter(left, right, cvfFixedOpt) }},
			{"sgm-aggregate",
				func() { aggregateAll(floatCost, w, h, nd, sgmOpt.Paths, sgmOpt.P1, sgmOpt.P2) },
				func() { aggregateFixed(fixedCost, w, h, nd, sgmOpt.Paths, p1, p2) }},
			{"wta",
				func() { wtaVolume(floatSum, w, h, nd, true) },
				func() { wtaVolumeU16(fixedSum, w, h, nd, true) }},
		}
		for _, k := range kernels {
			fl := timeKernel(w, h, rounds, k.float)
			fx := timeKernel(w, h, rounds, k.fixed)
			points = append(points,
				KernelPoint{Kernel: k.name, Variant: "float", W: w, H: h, MaxDisp: maxDisp, NsPerPixel: fl},
				KernelPoint{Kernel: k.name, Variant: "fixed", W: w, H: h, MaxDisp: maxDisp, NsPerPixel: fx, SpeedupX: fl / fx})
		}
	}
	return points
}
