package stereo

import (
	"math"
	"testing"
	"testing/quick"

	"asv/internal/imgproc"
)

func texture(w, h int, phase float64) *imgproc.Image {
	im := imgproc.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x), float64(y)
			v := 0.5 +
				0.22*math.Sin(0.55*fx+phase) +
				0.18*math.Sin(0.47*fy-phase) +
				0.12*math.Sin(0.23*(fx+fy)+2*phase) +
				0.07*math.Sin(0.91*fx-0.33*fy)
			im.Set(x, y, float32(v))
		}
	}
	return im
}

// constPair builds a stereo pair where every pixel has disparity d:
// right(x) = left(x+d).
func constPair(w, h int, d float64) (left, right, gt *imgproc.Image) {
	tex := texture(w+64, h, 0.4)
	left = imgproc.NewImage(w, h)
	right = imgproc.NewImage(w, h)
	gt = imgproc.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			left.Set(x, y, tex.At(x+32, y))
			right.Set(x, y, tex.Bilinear(float32(x+32)+float32(d), float32(y)))
			if float64(x) <= d {
				gt.Set(x, y, -1) // out of the right camera's view: no GT
			} else {
				gt.Set(x, y, float32(d))
			}
		}
	}
	return left, right, gt
}

func TestCameraTriangulationRoundTrip(t *testing.T) {
	c := Bumblebee2()
	for _, depth := range []float64{5, 10, 15, 30} {
		d := c.Disparity(depth)
		if got := c.Depth(d); math.Abs(got-depth) > 1e-9 {
			t.Fatalf("Depth(Disparity(%v)) = %v", depth, got)
		}
	}
}

func TestCameraDepthOfZeroDisparityIsInfinite(t *testing.T) {
	if !math.IsInf(Bumblebee2().Depth(0), 1) {
		t.Fatal("zero disparity should mean infinite depth")
	}
}

func TestFig4DepthSensitivity(t *testing.T) {
	// Paper Fig. 4: at 30 m, a 0.2-pixel disparity error costs metres of
	// depth error (0.5–5 m band across 10/15/30 m).
	c := Bumblebee2()
	e30 := c.DepthError(30, 0.2)
	if e30 < 2 || e30 > 6 {
		t.Fatalf("depth error at 30m/0.2px = %v m, want 2–6 m", e30)
	}
	e10 := c.DepthError(10, 0.2)
	if e10 >= e30 {
		t.Fatal("closer objects should suffer smaller absolute depth error")
	}
	if c.DepthError(30, 0.1) >= e30 {
		t.Fatal("depth error should grow with disparity error")
	}
}

func TestMatchRecoversConstantDisparity(t *testing.T) {
	left, right, gt := constPair(64, 32, 7)
	opt := DefaultBMOptions()
	opt.MaxDisp = 20
	disp := Match(left, right, opt)
	if e := ThreePixelError(disp, gt); e > 5 {
		t.Fatalf("three-pixel error = %v%%, want <= 5%%", e)
	}
}

func TestMatchSubpixelImprovesMAE(t *testing.T) {
	left, right, gt := constPair(64, 32, 6.4)
	opt := DefaultBMOptions()
	opt.MaxDisp = 16
	withSub := Match(left, right, opt)
	opt.Subpixel = false
	without := Match(left, right, opt)
	if MeanAbsError(withSub, gt) >= MeanAbsError(without, gt) {
		t.Fatal("subpixel refinement should reduce mean absolute error")
	}
}

func TestRefineTracksGoodInitializer(t *testing.T) {
	left, right, gt := constPair(64, 32, 9)
	init := gt.Clone() // perfect initializer
	out := Refine(left, right, init, 2, DefaultBMOptions())
	if e := ThreePixelError(out, gt); e > 2 {
		t.Fatalf("refine with perfect init: error %v%%", e)
	}
}

func TestRefineCorrectsSmallInitError(t *testing.T) {
	left, right, gt := constPair(64, 32, 9)
	init := gt.Clone()
	for i := range init.Pix {
		init.Pix[i] += 2 // biased initializer within the search window
	}
	out := Refine(left, right, init, 3, DefaultBMOptions())
	if e := MeanAbsError(out, gt); e > 1.0 {
		t.Fatalf("refine failed to correct 2px init bias: MAE %v", e)
	}
}

func TestRefineCannotEscapeWindow(t *testing.T) {
	left, right, gt := constPair(64, 32, 12)
	init := imgproc.NewImage(64, 32) // init = 0 everywhere, 12px off
	out := Refine(left, right, init, 2, DefaultBMOptions())
	// With a ±2 window around 0, the true disparity 12 is unreachable.
	if e := ThreePixelError(out, gt); e < 50 {
		t.Fatalf("refine escaped its window? error %v%%", e)
	}
}

func TestRefineCheaperThanMatch(t *testing.T) {
	opt := DefaultBMOptions()
	full := MatchMACs(960, 540, opt)
	guided := RefineMACs(960, 540, 3, opt)
	if guided*5 > full {
		t.Fatalf("guided search should be >5x cheaper: %d vs %d", guided, full)
	}
}

func TestSGMRecoversConstantDisparity(t *testing.T) {
	left, right, gt := constPair(64, 40, 5)
	opt := DefaultSGMOptions()
	opt.MaxDisp = 16
	disp := SGM(left, right, opt)
	if e := ThreePixelError(disp, gt); e > 5 {
		t.Fatalf("SGM three-pixel error = %v%%", e)
	}
}

func TestSGM4PathsAlsoWorks(t *testing.T) {
	left, right, gt := constPair(48, 32, 4)
	opt := DefaultSGMOptions()
	opt.MaxDisp = 12
	opt.Paths = 4
	disp := SGM(left, right, opt)
	if e := ThreePixelError(disp, gt); e > 8 {
		t.Fatalf("SGM-4 three-pixel error = %v%%", e)
	}
}

func TestSGMInvalidPathsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SGM(imgproc.NewImage(8, 8), imgproc.NewImage(8, 8), SGMOptions{MaxDisp: 4, CensusR: 1, Paths: 5})
}

func TestCensusConstantImageIsZero(t *testing.T) {
	im := imgproc.NewImage(10, 10)
	for _, d := range census(im, 2) {
		if d != 0 {
			t.Fatal("census of constant image must be all-zero descriptors")
		}
	}
}

func TestCensusRadiusTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	census(imgproc.NewImage(10, 10), 4) // 80 neighbour bits > 64
}

func TestLeftRightCheckInvalidatesMismatch(t *testing.T) {
	dl := imgproc.NewImage(8, 1)
	dr := imgproc.NewImage(8, 1)
	for x := 0; x < 8; x++ {
		dl.Set(x, 0, 2)
	}
	// Right map disagrees except at x=5 (which maps to xr=3).
	dr.Set(3, 0, 2)
	out := LeftRightCheck(dl, dr, 0.5)
	if out.At(5, 0) != 2 {
		t.Fatal("consistent pixel was invalidated")
	}
	if out.At(6, 0) != -1 {
		t.Fatal("inconsistent pixel survived")
	}
	if out.At(1, 0) != -1 {
		t.Fatal("out-of-view pixel survived")
	}
}

func TestErrorRateHandComputed(t *testing.T) {
	est := imgproc.FromPix([]float32{0, 10, 5, 5}, 4, 1)
	gt := imgproc.FromPix([]float32{0, 0, 5, -1}, 4, 1)
	// Valid pixels: 3 (last has invalid gt). Bad: pixel 1 (off by 10).
	if e := ThreePixelError(est, gt); math.Abs(e-100.0/3) > 1e-9 {
		t.Fatalf("error rate = %v, want 33.33", e)
	}
}

func TestErrorRateAllInvalidGT(t *testing.T) {
	est := imgproc.FromPix([]float32{1, 2}, 2, 1)
	gt := imgproc.FromPix([]float32{-1, -1}, 2, 1)
	if ThreePixelError(est, gt) != 0 {
		t.Fatal("error over empty valid set should be 0")
	}
}

func TestMeanAbsError(t *testing.T) {
	est := imgproc.FromPix([]float32{1, 3}, 2, 1)
	gt := imgproc.FromPix([]float32{0, 0}, 2, 1)
	if MeanAbsError(est, gt) != 2 {
		t.Fatalf("MAE = %v, want 2", MeanAbsError(est, gt))
	}
}

func TestSGMMACsGrowWithPathsAndRange(t *testing.T) {
	opt := DefaultSGMOptions()
	base := SGMMACs(100, 100, opt)
	opt.Paths = 4
	if SGMMACs(100, 100, opt) >= base {
		t.Fatal("fewer paths should cost less")
	}
	opt.Paths = 8
	opt.MaxDisp = 128
	if SGMMACs(100, 100, opt) <= base {
		t.Fatal("larger range should cost more")
	}
}

// Property: an estimate equal to ground truth has zero error for any map.
func TestQuickErrorRateZeroOnExact(t *testing.T) {
	f := func(seed int64) bool {
		gt := texture(16, 8, float64(seed%10))
		return ThreePixelError(gt, gt) == 0 && MeanAbsError(gt, gt) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangulated depth decreases monotonically with disparity.
func TestQuickDepthMonotonic(t *testing.T) {
	c := Bumblebee2()
	f := func(a, b uint8) bool {
		da := float64(a)/16 + 0.1
		db := float64(b)/16 + 0.1
		if da == db {
			return true
		}
		if da > db {
			da, db = db, da
		}
		return c.Depth(da) > c.Depth(db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthMap(t *testing.T) {
	c := Bumblebee2()
	disp := imgproc.FromPix([]float32{1, 2, 0, 4}, 4, 1)
	dm := c.DepthMap(disp)
	if !math.IsInf(float64(dm.At(2, 0)), 1) {
		t.Fatal("zero disparity should triangulate to +Inf")
	}
	if math.Abs(float64(dm.At(0, 0))-c.Depth(1)) > 1e-3 {
		t.Fatal("depth map disagrees with scalar triangulation")
	}
}

func TestTemporalFlickerZeroForPerfectTracking(t *testing.T) {
	// Estimates that follow ground truth exactly have zero flicker even
	// when the scene moves.
	gt1 := imgproc.FromPix([]float32{4, 5, 6, 7}, 4, 1)
	gt2 := imgproc.FromPix([]float32{5, 6, 7, 8}, 4, 1)
	if f := TemporalFlicker(gt1, gt2, gt1, gt2); f != 0 {
		t.Fatalf("perfect tracking flicker = %v, want 0", f)
	}
	// A constant estimation bias also cancels (it is temporally stable).
	est1 := gt1.Clone()
	est2 := gt2.Clone()
	for i := range est1.Pix {
		est1.Pix[i] += 2
		est2.Pix[i] += 2
	}
	if f := TemporalFlicker(est1, est2, gt1, gt2); f != 0 {
		t.Fatalf("stable-bias flicker = %v, want 0", f)
	}
}

func TestTemporalFlickerDetectsInconsistency(t *testing.T) {
	gt := imgproc.FromPix([]float32{4, 4}, 2, 1)
	est1 := imgproc.FromPix([]float32{4, 4}, 2, 1)
	est2 := imgproc.FromPix([]float32{6, 2}, 2, 1) // jitters ±2
	if f := TemporalFlicker(est1, est2, gt, gt); f != 2 {
		t.Fatalf("flicker = %v, want 2", f)
	}
}

func TestTemporalFlickerSkipsInvalidGT(t *testing.T) {
	gt1 := imgproc.FromPix([]float32{-1, 4}, 2, 1)
	gt2 := imgproc.FromPix([]float32{4, 4}, 2, 1)
	est := imgproc.FromPix([]float32{0, 4}, 2, 1)
	if f := TemporalFlicker(est, est, gt1, gt2); f != 0 {
		t.Fatalf("flicker over the single valid pixel = %v, want 0", f)
	}
}

func TestDisparityStatsDigest(t *testing.T) {
	d := imgproc.FromPix([]float32{2, 6, -1, 4}, 2, 2)
	st := DisparityStats(d)
	if st.W != 2 || st.H != 2 {
		t.Fatalf("geometry %dx%d, want 2x2", st.W, st.H)
	}
	if st.ValidPc != 75 {
		t.Fatalf("valid%% = %v, want 75", st.ValidPc)
	}
	if st.Mean != 4 {
		t.Fatalf("mean = %v, want 4 (invalid pixel must be excluded)", st.Mean)
	}
	if st.Max != 6 {
		t.Fatalf("max = %v, want 6", st.Max)
	}
}

func TestDisparityStatsAllInvalid(t *testing.T) {
	d := imgproc.FromPix([]float32{-1, -2}, 2, 1)
	st := DisparityStats(d)
	if st.ValidPc != 0 || st.Mean != 0 || st.Max != 0 {
		t.Fatalf("all-invalid map should zero the digest, got %+v", st)
	}
}
