package stereo

import "math/bits"

// Fixed-point block-matching cost kernels (integer-only file; see
// satmath_fixed.go). The full-search matcher is restructured from the float
// path's O(block²) work per candidate into sliding-window row/column sums
// reused across candidates: one absolute-difference (or census-Hamming) row
// per (row, disparity), slid horizontally in O(1) per pixel, then slid
// vertically down a strip of rows. Per strip the kernel materializes a
// struct-of-arrays uint16 cost volume laid out [row][disparity][x], sized by
// sadStripRows to stay L2-resident (see DESIGN.md §9).

// rowCoster fills dst[x] with the per-pixel matching cost at (x, yy) for
// disparity d: quantized absolute difference for SAD, census Hamming
// distance otherwise. Implementations clamp the right-view column to the
// image (clamp-then-shift, matching the float census path's border rule).
type rowCoster func(yy, d int, dst []uint16)

// sadRowCost matches uint8-quantized intensities.
func sadRowCost(l8, r8 []uint8, w int) rowCoster {
	return func(yy, d int, dst []uint16) {
		row := yy * w
		// Columns with x-d < 0 clamp to the row start, exactly like the
		// quantized reference in the differential tests.
		for x := 0; x < min(d, w); x++ {
			dst[x] = uint16(absDiffU8(l8[row+x], r8[row]))
		}
		for x := d; x < w; x++ {
			dst[x] = uint16(absDiffU8(l8[row+x], r8[row+x-d]))
		}
	}
}

// censusRowCost matches precomputed census descriptor planes.
func censusRowCost(cl, cr []uint64, w int) rowCoster {
	return func(yy, d int, dst []uint16) {
		row := yy * w
		for x := 0; x < min(d, w); x++ {
			dst[x] = uint16(bits.OnesCount64(cl[row+x] ^ cr[row]))
		}
		for x := d; x < w; x++ {
			dst[x] = uint16(bits.OnesCount64(cl[row+x] ^ cr[row+x-d]))
		}
	}
}

// sadStripRows is the row-band height of the strip-blocked matcher. The
// per-strip working set is the SoA cost volume (sadStripRows·nd·W uint16,
// ~1.3 MiB at W=320, nd=65) plus the row-sum ring ((sadStripRows+2r)·W
// uint16), which together stay L2-resident at the frame sizes this repo
// serves while leaving enough strips to parallelize across rows.
const sadStripRows = 32

// blockCostStrip fills vol, the strip's struct-of-arrays cost volume
//
//	vol[((y-y0)*nd + d)*w + x] = Σ_{|dy|<=r, |dx|<=r} cost(clamp(x+dx), clamp(y+dy), d)
//
// for rows [y0, y1) of an h-row image, using one rowCoster evaluation per
// (row, disparity) and O(1) sliding-window updates per pixel. adBuf must
// hold w entries and rowSum (y1-y0+2r)*w entries; both are scratch owned by
// the calling strip.
func blockCostStrip(cost rowCoster, w, h, y0, y1, r, nd int, adBuf []uint16, rowSum []uint16, vol []uint16) {
	for d := 0; d < nd; d++ {
		// Row block sums for every image row the vertical window touches,
		// with replicate clamping at the top and bottom borders.
		for yy := y0 - r; yy < y1+r; yy++ {
			cost(clampInt(yy, 0, h-1), d, adBuf)
			slideRow(adBuf, w, r, rowSum[(yy-(y0-r))*w:])
		}
		// Vertical sliding window down the strip, exact uint32 running sums.
		for x := 0; x < w; x++ {
			var s uint32
			for dy := -r; dy <= r; dy++ {
				s += uint32(rowSum[(dy+r)*w+x])
			}
			vol[d*w+x] = satU16(s)
			for y := y0 + 1; y < y1; y++ {
				i := y - y0
				s += uint32(rowSum[(i+2*r)*w+x])
				s -= uint32(rowSum[(i-1)*w+x])
				vol[(i*nd+d)*w+x] = satU16(s)
			}
		}
	}
}

// slideRow fills dst[x] with the horizontally clamped window sum
// Σ_{|dx|<=r} src[clamp(x+dx)] via an exact uint32 running sum.
func slideRow(src []uint16, w, r int, dst []uint16) {
	var s uint32
	for dx := -r; dx <= r; dx++ {
		s += uint32(src[clampInt(dx, 0, w-1)])
	}
	dst[0] = satU16(s)
	for x := 1; x < w; x++ {
		s += uint32(src[clampInt(x+r, 0, w-1)])
		s -= uint32(src[clampInt(x-1-r, 0, w-1)])
		dst[x] = satU16(s)
	}
}

// sadBlockU8 returns the quantized block SAD of aligning the block around
// (x, y) with disparity d — the per-candidate cost of the fixed-point guided
// refinement, where candidate centers vary per pixel and window reuse does
// not apply. Border handling is clamp-then-shift, matching blockCostStrip.
func sadBlockU8(l8, r8 []uint8, w, h, x, y, d, r int) uint32 {
	var s uint32
	for dy := -r; dy <= r; dy++ {
		row := clampInt(y+dy, 0, h-1) * w
		for dx := -r; dx <= r; dx++ {
			xx := clampInt(x+dx, 0, w-1)
			s += uint32(absDiffU8(l8[row+xx], r8[row+clampInt(xx-d, 0, w-1)]))
		}
	}
	return s
}

// hamBlockU64 is sadBlockU8's census counterpart: the block Hamming cost
// between census descriptor planes, identical to the float census path.
func hamBlockU64(cl, cr []uint64, w, h, x, y, d, r int) uint32 {
	var s uint32
	for dy := -r; dy <= r; dy++ {
		row := clampInt(y+dy, 0, h-1) * w
		for dx := -r; dx <= r; dx++ {
			xx := clampInt(x+dx, 0, w-1)
			s += uint32(bits.OnesCount64(cl[row+xx] ^ cr[row+clampInt(xx-d, 0, w-1)]))
		}
	}
	return s
}
