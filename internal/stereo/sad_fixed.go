package stereo

import "math/bits"

// Fixed-point block-matching cost kernels (integer-only file; see
// satmath_fixed.go). The full-search matcher is restructured from the float
// path's O(block²) work per candidate into sliding-window row/column sums
// reused across candidates: one absolute-difference (or census-Hamming) row
// per (row, disparity), slid horizontally in O(1) per pixel, then slid
// vertically down a strip of rows. Per strip the kernel materializes a
// struct-of-arrays uint16 cost volume laid out [row][disparity][x], sized by
// sadStripRows to stay L2-resident (see DESIGN.md §9).

// rowCoster fills dst[x] with the per-pixel matching cost at (x, yy) for
// disparity d: quantized absolute difference for SAD, census Hamming
// distance otherwise. Implementations clamp the right-view column to the
// image (clamp-then-shift, matching the float census path's border rule).
type rowCoster func(yy, d int, dst []uint16)

// sadRowCost matches uint8-quantized intensities.
func sadRowCost(l8, r8 []uint8, w int) rowCoster {
	return func(yy, d int, dst []uint16) {
		// Hoisting the row windows pins every slice length to w, so the
		// prove pass drops all per-pixel bounds checks (perf_contract.json
		// holds this function to zero).
		if w <= 0 {
			return
		}
		row := yy * w
		lr := l8[row:][:w]
		rr := r8[row:][:w]
		dst = dst[:w]
		// Columns with x-d < 0 clamp to the row start, exactly like the
		// quantized reference in the differential tests. Clamping d once
		// (a no-op for valid disparities) and phrasing the shifted loop as
		// three windows sharing one length lets prove drop the x-d checks.
		if d < 0 {
			d = 0
		}
		if d > w {
			d = w
		}
		border := rr[0]
		db := dst[:d]
		for x, lv := range lr[:d] {
			db[x] = uint16(absDiffU8(lv, border))
		}
		n := w - d
		lo := lr[d:][:n]
		ro := rr[:n]
		do := dst[d:][:n]
		for i, rv := range ro {
			do[i] = uint16(absDiffU8(lo[i], rv))
		}
	}
}

// censusRowCost matches precomputed census descriptor planes.
func censusRowCost(cl, cr []uint64, w int) rowCoster {
	return func(yy, d int, dst []uint16) {
		if w <= 0 {
			return
		}
		row := yy * w
		lr := cl[row:][:w]
		rr := cr[row:][:w]
		dst = dst[:w]
		if d < 0 {
			d = 0
		}
		if d > w {
			d = w
		}
		border := rr[0]
		db := dst[:d]
		for x, lv := range lr[:d] {
			db[x] = uint16(bits.OnesCount64(lv ^ border))
		}
		n := w - d
		lo := lr[d:][:n]
		ro := rr[:n]
		do := dst[d:][:n]
		for i, rv := range ro {
			do[i] = uint16(bits.OnesCount64(lo[i] ^ rv))
		}
	}
}

// sadStripRows is the row-band height of the strip-blocked matcher. The
// per-strip working set is the SoA cost volume (sadStripRows·nd·W uint16,
// ~1.3 MiB at W=320, nd=65) plus the row-sum ring ((sadStripRows+2r)·W
// uint16), which together stay L2-resident at the frame sizes this repo
// serves while leaving enough strips to parallelize across rows.
const sadStripRows = 32

// blockCostStrip fills vol, the strip's struct-of-arrays cost volume
//
//	vol[((y-y0)*nd + d)*w + x] = Σ_{|dy|<=r, |dx|<=r} cost(clamp(x+dx), clamp(y+dy), d)
//
// for rows [y0, y1) of an h-row image, using one rowCoster evaluation per
// (row, disparity) and O(1) sliding-window updates per pixel. adBuf must
// hold w entries, rowSum (y1-y0+2r)*w entries, and colSum w entries; all are
// scratch owned by the calling strip. The vertical pass walks row-major (one
// uint32 running sum per column, advanced a full row at a time) so every
// inner loop streams four equal-length row windows — the layout the prove
// pass needs to drop all per-pixel bounds checks, and the one the prefetcher
// likes.
func blockCostStrip(cost rowCoster, w, h, y0, y1, r, nd int, adBuf []uint16, rowSum []uint16, colSum []uint32, vol []uint16) {
	rows := y1 - y0
	for d := 0; d < nd; d++ {
		// Row block sums for every image row the vertical window touches,
		// with replicate clamping at the top and bottom borders.
		for yy := y0 - r; yy < y1+r; yy++ {
			cost(clampInt(yy, 0, h-1), d, adBuf)
			slideRow(adBuf, w, r, rowSum[(yy-(y0-r))*w:])
		}
		// Vertical sliding window down the strip, exact uint32 running sums.
		cs := colSum[:w]
		for x := range cs {
			cs[x] = 0
		}
		for dy := 0; dy <= 2*r; dy++ {
			rs := rowSum[dy*w:][:w]
			for x, v := range rs {
				cs[x] += uint32(v)
			}
		}
		out := vol[d*w:][:w]
		for x, s := range cs {
			out[x] = satU16(s)
		}
		for i := 1; i < rows; i++ {
			add := rowSum[(i+2*r)*w:][:w]
			sub := rowSum[(i-1)*w:][:w]
			out := vol[(i*nd+d)*w:][:w]
			for x, s := range cs {
				s += uint32(add[x]) - uint32(sub[x])
				cs[x] = s
				out[x] = satU16(s)
			}
		}
	}
}

// slideRow fills dst[x] with the horizontally clamped window sum
// Σ_{|dx|<=r} src[clamp(x+dx)] via an exact uint32 running sum. When the
// window fits the row it is split into clamped borders and a branch-free
// interior whose three windows are equal-length subslices of src and dst —
// zero bounds checks per pixel (pinned by perf_contract.json).
func slideRow(src []uint16, w, r int, dst []uint16) {
	if w <= 0 {
		return
	}
	src = src[:w]
	dst = dst[:w]
	if r <= 0 || w <= 2*r {
		// Degenerate row (or r == 0): every window touches a border, or no
		// window slides at all; fall back to clamped indexing.
		var s uint32
		for dx := -r; dx <= r; dx++ {
			s += uint32(src[clampInt(dx, 0, w-1)])
		}
		dst[0] = satU16(s)
		for x := 1; x < w; x++ {
			s += uint32(src[clampInt(x+r, 0, w-1)])
			s -= uint32(src[clampInt(x-1-r, 0, w-1)])
			dst[x] = satU16(s)
		}
		return
	}
	// x = 0: dx in [-r, 0] all clamp to src[0].
	left := uint32(src[0])
	s := left * uint32(r+1)
	for _, v := range src[1 : r+1] {
		s += uint32(v)
	}
	dst[0] = satU16(s)
	// Left border, x in [1, r]: the outgoing sample clamps to src[0]. The
	// incoming window and the output share one length, so prove elides the
	// per-pixel checks.
	win := src[r+1:][:r]
	outl := dst[1:][:r]
	for i, v := range win {
		s += uint32(v) - left
		outl[i] = satU16(s)
	}
	// Interior, x in [r+1, w-r-1]: no clamping; adds, subs and the output
	// are three subslices sharing one length, so prove elides every check.
	n := w - 2*r - 1
	adds := src[2*r+1:][:n]
	subs := src[:n]
	outi := dst[r+1:][:n]
	for i, a := range adds {
		s += uint32(a) - uint32(subs[i])
		outi[i] = satU16(s)
	}
	// Right border, x in [w-r, w-1]: the incoming sample clamps to src[w-1],
	// the outgoing samples are src[w-2r-1 : w-r-1].
	right := uint32(src[w-1])
	tail := src[w-2*r-1:][:r]
	outr := dst[w-r:][:r]
	for i, v := range tail {
		s += right - uint32(v)
		outr[i] = satU16(s)
	}
}

// sadBlockU8 returns the quantized block SAD of aligning the block around
// (x, y) with disparity d — the per-candidate cost of the fixed-point guided
// refinement, where candidate centers vary per pixel and window reuse does
// not apply. Border handling is clamp-then-shift, matching blockCostStrip.
func sadBlockU8(l8, r8 []uint8, w, h, x, y, d, r int) uint32 {
	var s uint32
	for dy := -r; dy <= r; dy++ {
		// Row windows of length w: the clamped column indexes are provably
		// inside them, so the candidate loop carries no bounds checks.
		row := clampInt(y+dy, 0, h-1) * w
		lrow := l8[row:][:w]
		rrow := r8[row:][:w]
		for dx := -r; dx <= r; dx++ {
			xx := clampInt(x+dx, 0, w-1)
			s += uint32(absDiffU8(lrow[xx], rrow[clampInt(xx-d, 0, w-1)]))
		}
	}
	return s
}

// hamBlockU64 is sadBlockU8's census counterpart: the block Hamming cost
// between census descriptor planes, identical to the float census path.
func hamBlockU64(cl, cr []uint64, w, h, x, y, d, r int) uint32 {
	var s uint32
	for dy := -r; dy <= r; dy++ {
		row := clampInt(y+dy, 0, h-1) * w
		lrow := cl[row:][:w]
		rrow := cr[row:][:w]
		for dx := -r; dx <= r; dx++ {
			xx := clampInt(x+dx, 0, w-1)
			s += uint32(bits.OnesCount64(lrow[xx] ^ rrow[clampInt(xx-d, 0, w-1)]))
		}
	}
	return s
}
