package stereo

import (
	"math/bits"

	"asv/internal/par"
)

// Fixed-point SGM aggregation (integer-only file; see satmath_fixed.go).
//
// The float path materializes one full float32 Lr volume per direction
// (8·W·H·D·4 bytes) and reduces them afterwards. The fixed path instead
// makes two sweeps over the uint8 census-cost volume — a forward pass
// (top-down, left-to-right) carrying the W/NW/N/NE directions and a backward
// pass (bottom-up, right-to-left) carrying E/SW/S/SE — and each direction
// keeps only two rolling rows of uint16 path costs (2·W·D cells). Path costs
// are accumulated into one uint16 sum volume with saturating adds as they
// are produced, so the working set per row is a few hundred KiB instead of
// eight full volumes. The recurrence, visiting order per path, and border
// rule are exactly the float ones, so with integral penalties the summed
// costs are bit-identical to the float aggregation.

// costVolumeU8 builds the uint8 census-Hamming cost volume
// C[(y*W+x)*(D+1)+d]; cells whose right-view column falls outside the image
// get maxCost, like the float path.
func costVolumeU8(cl, cr []uint64, w, h, nd int, maxCost uint8) []uint8 {
	vol := make([]uint8, w*h*nd)
	par.For(h, func(y int) {
		row := y * w
		clRow := cl[row:][:w]
		crRow := cr[row:][:w]
		for x := 0; x < w; x++ {
			cells := vol[(row+x)*nd:][:nd]
			l := clRow[x]
			hi := nd
			if hi > x+1 {
				hi = x + 1
			}
			for d := 0; d < hi; d++ {
				cells[d] = uint8(bits.OnesCount64(l ^ crRow[x-d]))
			}
			for d := hi; d < nd; d++ {
				cells[d] = maxCost
			}
		}
	})
	return vol
}

// sgmStepFixed computes one pixel's path costs dst[0:nd] along a direction
// from the predecessor's costs prev (nil at a path start, where dst is a
// copy of the matching costs), then accumulates dst into sum with saturating
// adds. The d loop is peeled at both ends so the interior is branch-free:
// per disparity it is two saturating adds, three mins and a subtraction, the
// form that maps onto conditional moves.
func sgmStepFixed(dst, prev, sum []uint16, costRow []uint8, nd int, p1, p2 uint16) {
	if nd <= 0 {
		return
	}
	// Pinning every slice length to nd (and branching on nd < 2, so the
	// tail below runs with nd >= 2 proven) lets prove drop all per-disparity
	// bounds checks; perf_contract.json holds this function to zero.
	dst = dst[:nd]
	sum = sum[:nd]
	costRow = costRow[:nd]
	if prev == nil {
		for d := 0; d < nd; d++ {
			c := uint16(costRow[d])
			dst[d] = c
			sum[d] = satAdd16(sum[d], c)
		}
		return
	}
	prev = prev[:nd]
	minPrev := prev[0]
	for d := 1; d < nd; d++ {
		minPrev = min(minPrev, prev[d])
	}
	jump := satAdd16(minPrev, p2)
	if nd < 2 {
		v := satAdd16(uint16(costRow[0]), min(prev[0], jump)-minPrev)
		dst[0] = v
		sum[0] = satAdd16(sum[0], v)
		return
	}
	// d = 0: no d-1 neighbour.
	best := min(min(prev[0], satAdd16(prev[1], p1)), jump)
	v := satAdd16(uint16(costRow[0]), best-minPrev)
	dst[0] = v
	sum[0] = satAdd16(sum[0], v)
	// Interior, d in [1, nd-2]: the three prev taps and the three outputs
	// are windows sharing one length, so prove elides every check.
	n := nd - 2
	pm := prev[:n]
	pc := prev[1:][:n]
	pp := prev[2:][:n]
	dc := dst[1:][:n]
	sc := sum[1:][:n]
	cc := costRow[1:][:n]
	for i, pcv := range pc {
		best = min(min(pcv, jump), satAdd16(min(pm[i], pp[i]), p1))
		v = satAdd16(uint16(cc[i]), best-minPrev)
		dc[i] = v
		sc[i] = satAdd16(sc[i], v)
	}
	// d = nd-1: no d+1 neighbour.
	best = min(min(prev[nd-1], satAdd16(prev[nd-2], p1)), jump)
	v = satAdd16(uint16(costRow[nd-1]), best-minPrev)
	dst[nd-1] = v
	sum[nd-1] = satAdd16(sum[nd-1], v)
}

// sgmRolling is one direction's pair of rolling Lr rows.
type sgmRolling struct {
	prev, cur []uint16 // w*nd path costs of the previous and current row
}

func newSGMRolling(w, nd int) *sgmRolling {
	return &sgmRolling{prev: make([]uint16, w*nd), cur: make([]uint16, w*nd)}
}

func (s *sgmRolling) swap() { s.prev, s.cur = s.cur, s.prev }

// aggregateFixed sums the SGM path costs over 4 or 8 directions into a
// uint16 volume with the same layout as cost.
func aggregateFixed(cost []uint8, w, h, nd, paths int, p1, p2 uint16) []uint16 {
	sum := make([]uint16, w*h*nd)
	diag := paths == 8

	// Forward pass: horizontal left-to-right, vertical top-down and (with 8
	// paths) both down-going diagonals.
	hor := newSGMRolling(w, nd)
	ver := newSGMRolling(w, nd)
	var dl, dr *sgmRolling
	if diag {
		dl = newSGMRolling(w, nd) // predecessor (x-1, y-1)
		dr = newSGMRolling(w, nd) // predecessor (x+1, y-1)
	}
	for y := 0; y < h; y++ {
		hor.swap()
		ver.swap()
		if diag {
			dl.swap()
			dr.swap()
		}
		rowBase := y * w * nd
		for x := 0; x < w; x++ {
			b := x * nd
			costRow := cost[rowBase+b : rowBase+b+nd]
			sumRow := sum[rowBase+b : rowBase+b+nd]
			var pHor, pVer []uint16
			if x > 0 {
				pHor = hor.cur[b-nd : b]
			}
			if y > 0 {
				pVer = ver.prev[b : b+nd]
			}
			sgmStepFixed(hor.cur[b:b+nd], pHor, sumRow, costRow, nd, p1, p2)
			sgmStepFixed(ver.cur[b:b+nd], pVer, sumRow, costRow, nd, p1, p2)
			if diag {
				var pDL, pDR []uint16
				if x > 0 && y > 0 {
					pDL = dl.prev[b-nd : b]
				}
				if x+1 < w && y > 0 {
					pDR = dr.prev[b+nd : b+2*nd]
				}
				sgmStepFixed(dl.cur[b:b+nd], pDL, sumRow, costRow, nd, p1, p2)
				sgmStepFixed(dr.cur[b:b+nd], pDR, sumRow, costRow, nd, p1, p2)
			}
		}
	}

	// Backward pass: the four mirrored directions, bottom-up right-to-left.
	hor = newSGMRolling(w, nd)
	ver = newSGMRolling(w, nd)
	if diag {
		dl = newSGMRolling(w, nd) // predecessor (x-1, y+1)
		dr = newSGMRolling(w, nd) // predecessor (x+1, y+1)
	}
	for y := h - 1; y >= 0; y-- {
		hor.swap()
		ver.swap()
		if diag {
			dl.swap()
			dr.swap()
		}
		rowBase := y * w * nd
		for x := w - 1; x >= 0; x-- {
			b := x * nd
			costRow := cost[rowBase+b : rowBase+b+nd]
			sumRow := sum[rowBase+b : rowBase+b+nd]
			var pHor, pVer []uint16
			if x+1 < w {
				pHor = hor.cur[b+nd : b+2*nd]
			}
			if y+1 < h {
				pVer = ver.prev[b : b+nd]
			}
			sgmStepFixed(hor.cur[b:b+nd], pHor, sumRow, costRow, nd, p1, p2)
			sgmStepFixed(ver.cur[b:b+nd], pVer, sumRow, costRow, nd, p1, p2)
			if diag {
				var pDL, pDR []uint16
				if x > 0 && y+1 < h {
					pDL = dl.prev[b-nd : b]
				}
				if x+1 < w && y+1 < h {
					pDR = dr.prev[b+nd : b+2*nd]
				}
				sgmStepFixed(dl.cur[b:b+nd], pDL, sumRow, costRow, nd, p1, p2)
				sgmStepFixed(dr.cur[b:b+nd], pDR, sumRow, costRow, nd, p1, p2)
			}
		}
	}
	return sum
}
