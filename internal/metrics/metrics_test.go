package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageObservations(t *testing.T) {
	r := NewRegistry()
	s := r.Stage("flow")
	s.Observe(2 * time.Millisecond)
	s.Observe(4 * time.Millisecond)
	s.Observe(6 * time.Millisecond)

	if got := s.Count(); got != 3 {
		t.Fatalf("count = %d", got)
	}
	if got := s.Total(); got != 12*time.Millisecond {
		t.Fatalf("total = %v", got)
	}
	if got := s.Mean(); got != 4*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}
	if got := s.Min(); got != 2*time.Millisecond {
		t.Fatalf("min = %v", got)
	}
	if got := s.Max(); got != 6*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
}

func TestStageIdentityAndOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Stage("a")
	if r.Stage("a") != a {
		t.Fatal("Stage is not idempotent")
	}
	r.Stage("b")
	names := r.StageNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestQuantileBounds(t *testing.T) {
	r := NewRegistry()
	s := r.Stage("q")
	for i := 0; i < 99; i++ {
		s.Observe(time.Millisecond)
	}
	s.Observe(500 * time.Millisecond)
	p50 := s.Quantile(0.50)
	p99 := s.Quantile(0.99)
	if p50 < time.Millisecond || p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms bucket", p50)
	}
	if p99 < time.Millisecond || p99 > 4*time.Millisecond {
		t.Fatalf("p99 = %v, want ~1ms bucket (99/100 are 1ms)", p99)
	}
	if got := s.Quantile(1.0); got < 256*time.Millisecond {
		t.Fatalf("p100 = %v, should reach the 500ms outlier's bucket", got)
	}
}

func TestConcurrentObserveIsConsistent(t *testing.T) {
	r := NewRegistry()
	s := r.Stage("par")
	const goroutines, each = 8, 250
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := s.Count(); got != goroutines*each {
		t.Fatalf("count = %d, want %d", got, goroutines*each)
	}
	if got := s.Total(); got != goroutines*each*time.Millisecond {
		t.Fatalf("total = %v", got)
	}
}

func TestSnapshotMarshalsToJSON(t *testing.T) {
	r := NewRegistry()
	r.Time("work", func() { time.Sleep(time.Millisecond) })
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"uptime_ms", "stages", "work", "alloc", "pool_gets"} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("snapshot JSON missing %q: %s", key, raw)
		}
	}
}

func TestDumpListsStagesAndAlloc(t *testing.T) {
	r := NewRegistry()
	r.Stage("keymatch").Observe(3 * time.Millisecond)
	r.Stage("flow").Observe(time.Millisecond)
	out := r.Dump()
	for _, want := range []string{"keymatch", "flow", "alloc:", "pool"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// keymatch was registered first, so it must render first.
	if strings.Index(out, "keymatch") > strings.Index(out, "flow") {
		t.Fatalf("stage order not preserved:\n%s", out)
	}
}

// The snapshot field names are a wire format shared by the /metrics
// endpoint and the BENCH_*.json artifacts; renaming one silently breaks
// external consumers, so the schema is pinned here.
func TestSnapshotStableSchema(t *testing.T) {
	r := NewRegistry()
	r.Stage("frame").Observe(2 * time.Millisecond)
	snap := r.Snapshot()

	for _, key := range []string{"uptime_ms", "stages", "alloc"} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("snapshot missing top-level key %q", key)
		}
	}
	stage, ok := snap["stages"].(map[string]any)["frame"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot stages malformed: %#v", snap["stages"])
	}
	stageKeys := []string{"count", "total_ms", "mean_ms", "min_ms", "max_ms",
		"p50_ms", "p95_ms", "p99_ms"}
	for _, key := range stageKeys {
		if _, ok := stage[key]; !ok {
			t.Fatalf("stage snapshot missing key %q", key)
		}
	}
	if len(stage) != len(stageKeys) {
		t.Fatalf("stage snapshot grew unexpected keys: %#v (update the pinned schema deliberately)", stage)
	}
	alloc := snap["alloc"].(map[string]any)
	for _, key := range []string{"alloc_mb", "num_gc", "pool_gets", "pool_hits",
		"pool_puts", "pool_hit_rate_pc"} {
		if _, ok := alloc[key]; !ok {
			t.Fatalf("alloc snapshot missing key %q", key)
		}
	}

	// SnapshotJSON is valid JSON of the same map.
	var decoded map[string]any
	if err := json.Unmarshal(r.SnapshotJSON(), &decoded); err != nil {
		t.Fatalf("SnapshotJSON not valid JSON: %v", err)
	}
	if _, ok := decoded["stages"]; !ok {
		t.Fatal("SnapshotJSON missing stages")
	}
}

// snapshotSchema is the pinned wire format of SnapshotJSON — the schema the
// serving layer's /metrics endpoint and asvbench's BENCH_*.json artifacts
// promise to external dashboards. Every field is a pointer so a *missing*
// key fails as loudly as an unknown one: adding a field here is a deliberate
// schema extension, renaming or removing one is a break.
type snapshotSchema struct {
	UptimeMS *float64               `json:"uptime_ms"`
	Stages   map[string]stageSchema `json:"stages"`
	Alloc    *allocSchema           `json:"alloc"`
}

type stageSchema struct {
	Count   *int64   `json:"count"`
	TotalMS *float64 `json:"total_ms"`
	MeanMS  *float64 `json:"mean_ms"`
	MinMS   *float64 `json:"min_ms"`
	MaxMS   *float64 `json:"max_ms"`
	P50MS   *float64 `json:"p50_ms"`
	P95MS   *float64 `json:"p95_ms"`
	P99MS   *float64 `json:"p99_ms"`
}

type allocSchema struct {
	AllocMB       *float64 `json:"alloc_mb"`
	NumGC         *uint32  `json:"num_gc"`
	PoolGets      *int64   `json:"pool_gets"`
	PoolHits      *int64   `json:"pool_hits"`
	PoolPuts      *int64   `json:"pool_puts"`
	PoolHitRatePc *float64 `json:"pool_hit_rate_pc"`
}

// TestSnapshotJSONPinnedStruct decodes SnapshotJSON into the pinned schema
// with DisallowUnknownFields: an unknown field is a decode error, a missing
// field is a nil pointer, and either fails the test. This is the
// machine-checked form of the stable-schema promise in the Snapshot doc
// comment.
func TestSnapshotJSONPinnedStruct(t *testing.T) {
	r := NewRegistry()
	r.Stage("frame").Observe(3 * time.Millisecond)

	dec := json.NewDecoder(strings.NewReader(string(r.SnapshotJSON())))
	dec.DisallowUnknownFields()
	var snap snapshotSchema
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("SnapshotJSON no longer matches the pinned schema (unknown or mistyped field?): %v", err)
	}
	if snap.UptimeMS == nil {
		t.Error("snapshot missing pinned field uptime_ms")
	}
	if snap.Alloc == nil {
		t.Fatal("snapshot missing pinned object alloc")
	}
	allocFields := map[string]any{
		"alloc_mb": snap.Alloc.AllocMB, "num_gc": snap.Alloc.NumGC,
		"pool_gets": snap.Alloc.PoolGets, "pool_hits": snap.Alloc.PoolHits,
		"pool_puts": snap.Alloc.PoolPuts, "pool_hit_rate_pc": snap.Alloc.PoolHitRatePc,
	}
	for name, v := range allocFields {
		switch p := v.(type) {
		case *float64:
			if p == nil {
				t.Errorf("snapshot missing pinned field alloc.%s", name)
			}
		case *int64:
			if p == nil {
				t.Errorf("snapshot missing pinned field alloc.%s", name)
			}
		case *uint32:
			if p == nil {
				t.Errorf("snapshot missing pinned field alloc.%s", name)
			}
		}
	}
	stage, ok := snap.Stages["frame"]
	if !ok {
		t.Fatal("snapshot missing observed stage \"frame\"")
	}
	stageFields := map[string]*float64{
		"total_ms": stage.TotalMS, "mean_ms": stage.MeanMS, "min_ms": stage.MinMS,
		"max_ms": stage.MaxMS, "p50_ms": stage.P50MS, "p95_ms": stage.P95MS,
		"p99_ms": stage.P99MS,
	}
	if stage.Count == nil {
		t.Error("snapshot missing pinned field stages.frame.count")
	}
	for name, p := range stageFields {
		if p == nil {
			t.Errorf("snapshot missing pinned field stages.frame.%s", name)
		}
	}
}

// Snapshots must be safe (and sane) while every pipeline goroutine is still
// observing — the /metrics endpoint runs against a live server. Run with
// -race in CI.
func TestSnapshotDuringConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := []string{"flow", "keymatch", "frame"}[g%3]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Stage(name).Observe(time.Duration(i%100) * time.Microsecond)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		if _, err := json.Marshal(snap); err != nil {
			t.Errorf("snapshot %d not marshalable: %v", i, err)
		}
		_ = r.SnapshotJSON()
	}
	close(stop)
	wg.Wait()

	// After quiescence the counters must be exactly consistent.
	var total int64
	for _, name := range r.StageNames() {
		total += r.Stage(name).Count()
	}
	snap := r.Snapshot()
	var snapTotal int64
	for _, v := range snap["stages"].(map[string]any) {
		snapTotal += v.(map[string]any)["count"].(int64)
	}
	if total != snapTotal {
		t.Fatalf("post-quiescence snapshot count %d != live count %d", snapTotal, total)
	}
}
