// Package metrics instruments the streaming runtime: per-stage frame
// counters, latency histograms and allocation statistics, cheap enough to
// leave on in production. A Registry is a set of named stages; stages are
// created on first use and safe for concurrent observation from every
// pipeline goroutine.
//
// Two views are provided: Dump renders a human-readable text table, and
// Snapshot returns an expvar-style map that marshals directly to JSON.
package metrics

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"asv/internal/imgproc"
)

// nBuckets covers latencies from <1µs up to >2^40µs in power-of-two steps;
// bucket i counts observations with ceil(log2(µs)) == i.
const nBuckets = 42

// Stage accumulates observations for one named pipeline stage. All methods
// are safe for concurrent use.
type Stage struct {
	name  string
	count atomic.Int64
	sumNs atomic.Int64
	minNs atomic.Int64 // 0 when unset; stored as ns+1 so 0 ns is representable
	maxNs atomic.Int64
	// buckets is the latency histogram over power-of-two microsecond bins.
	buckets [nBuckets]atomic.Int64
}

// Name returns the stage name.
func (s *Stage) Name() string { return s.name }

// Observe records one completed unit of work (typically one frame) that
// took d.
func (s *Stage) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	s.count.Add(1)
	s.sumNs.Add(ns)
	for {
		cur := s.minNs.Load()
		if cur != 0 && cur <= ns+1 {
			break
		}
		if s.minNs.CompareAndSwap(cur, ns+1) {
			break
		}
	}
	for {
		cur := s.maxNs.Load()
		if cur >= ns {
			break
		}
		if s.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
	s.buckets[bucketOf(ns)].Add(1)
}

// Count returns the number of observations.
func (s *Stage) Count() int64 { return s.count.Load() }

// Total returns the summed observed latency.
func (s *Stage) Total() time.Duration { return time.Duration(s.sumNs.Load()) }

// Mean returns the mean observed latency (0 with no observations).
func (s *Stage) Mean() time.Duration {
	n := s.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(s.sumNs.Load() / n)
}

// Min returns the smallest observed latency (0 with no observations).
func (s *Stage) Min() time.Duration {
	v := s.minNs.Load()
	if v == 0 {
		return 0
	}
	return time.Duration(v - 1)
}

// Max returns the largest observed latency.
func (s *Stage) Max() time.Duration { return time.Duration(s.maxNs.Load()) }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of the
// observed latencies, resolved to the histogram's power-of-two buckets.
func (s *Stage) Quantile(q float64) time.Duration {
	n := s.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < nBuckets; i++ {
		seen += s.buckets[i].Load()
		if seen >= target {
			return bucketUpper(i)
		}
	}
	return s.Max()
}

// bucketOf maps a latency in ns to its histogram bucket.
func bucketOf(ns int64) int {
	us := uint64(ns / 1e3)
	b := bits.Len64(us) // 0 for <1µs, 1 for 1µs, ...
	if b >= nBuckets {
		b = nBuckets - 1
	}
	return b
}

// bucketUpper returns the inclusive upper latency bound of bucket i.
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return time.Microsecond
	}
	return time.Duration((int64(1)<<i - 1)) * time.Microsecond
}

// Registry is a named collection of stages plus process-level allocation
// statistics. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	stages map[string]*Stage
	order  []string
	start  time.Time

	// memStart snapshots cumulative allocation at construction so the
	// registry reports work done during its lifetime, not since process
	// start.
	memStart runtime.MemStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{stages: make(map[string]*Stage), start: time.Now()}
	runtime.ReadMemStats(&r.memStart)
	return r
}

// Stage returns the named stage, creating it on first use.
func (r *Registry) Stage(name string) *Stage {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.stages[name]; ok {
		return s
	}
	s := &Stage{name: name}
	s.minNs.Store(0)
	r.stages[name] = s
	r.order = append(r.order, name)
	return s
}

// Time runs fn and records its latency under the named stage.
func (r *Registry) Time(name string, fn func()) {
	s := r.Stage(name)
	t0 := time.Now()
	fn()
	s.Observe(time.Since(t0))
}

// stagesInOrder returns the stages in creation order.
func (r *Registry) stagesInOrder() []*Stage {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Stage, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.stages[name])
	}
	return out
}

// AllocStats reports allocation activity since the registry was created.
type AllocStats struct {
	AllocMB   float64 // cumulative bytes allocated, MB
	NumGC     uint32  // GC cycles completed
	PoolGets  int64   // imgproc pool Get calls
	PoolHits  int64   // ... of which reused a pooled buffer
	PoolPuts  int64   // imgproc pool Put calls
	HitRatePc float64 // PoolHits / PoolGets, percent
}

// Alloc returns the allocation statistics.
func (r *Registry) Alloc() AllocStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	gets, hits, puts := imgproc.PoolStats()
	st := AllocStats{
		AllocMB:  float64(m.TotalAlloc-r.memStart.TotalAlloc) / (1 << 20),
		NumGC:    m.NumGC - r.memStart.NumGC,
		PoolGets: gets,
		PoolHits: hits,
		PoolPuts: puts,
	}
	if gets > 0 {
		st.HitRatePc = 100 * float64(hits) / float64(gets)
	}
	return st
}

// Snapshot returns an expvar-style view of the registry that marshals
// directly to JSON: uptime, per-stage counters/latencies and allocation
// statistics.
//
// The field names are a stable wire format shared by the serving layer's
// /metrics endpoint and asvbench's BENCH_*.json artifacts — external
// dashboards key off them. Per-stage keys: count, total_ms, mean_ms,
// min_ms, max_ms, p50_ms, p95_ms, p99_ms. Top level: uptime_ms, stages,
// alloc{alloc_mb, num_gc, pool_gets, pool_hits, pool_puts,
// pool_hit_rate_pc}. Add fields if needed; never rename or remove
// (TestSnapshotStableSchema enforces this).
func (r *Registry) Snapshot() map[string]any {
	stages := map[string]any{}
	for _, s := range r.stagesInOrder() {
		stages[s.Name()] = map[string]any{
			"count":    s.Count(),
			"total_ms": ms(s.Total()),
			"mean_ms":  ms(s.Mean()),
			"min_ms":   ms(s.Min()),
			"max_ms":   ms(s.Max()),
			"p50_ms":   ms(s.Quantile(0.50)),
			"p95_ms":   ms(s.Quantile(0.95)),
			"p99_ms":   ms(s.Quantile(0.99)),
		}
	}
	a := r.Alloc()
	return map[string]any{
		"uptime_ms": ms(time.Since(r.start)),
		"stages":    stages,
		"alloc": map[string]any{
			"alloc_mb":         round2(a.AllocMB),
			"num_gc":           a.NumGC,
			"pool_gets":        a.PoolGets,
			"pool_hits":        a.PoolHits,
			"pool_puts":        a.PoolPuts,
			"pool_hit_rate_pc": round2(a.HitRatePc),
		},
	}
}

// SnapshotJSON renders Snapshot as indented JSON, the exact payload the
// serving layer's /metrics endpoint returns.
func (r *Registry) SnapshotJSON() []byte {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		// Snapshot only contains numbers, strings and maps; Marshal cannot
		// fail on it.
		panic("metrics: snapshot marshal: " + err.Error())
	}
	return append(buf, '\n')
}

// Dump renders the registry as a fixed-width text table.
func (r *Registry) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stage                 count   mean-ms    p50-ms    p99-ms    max-ms  total-ms\n")
	for _, s := range r.stagesInOrder() {
		fmt.Fprintf(&b, "%-20s %6d %9.2f %9.2f %9.2f %9.2f %9.1f\n",
			s.Name(), s.Count(), ms(s.Mean()), ms(s.Quantile(0.50)),
			ms(s.Quantile(0.99)), ms(s.Max()), ms(s.Total()))
	}
	a := r.Alloc()
	fmt.Fprintf(&b, "alloc: %.1f MB in %d GCs; image pool: %d gets, %.1f%% recycled, %d puts\n",
		a.AllocMB, a.NumGC, a.PoolGets, a.HitRatePc, a.PoolPuts)
	return b.String()
}

// StageNames returns the registered stage names, sorted.
func (r *Registry) StageNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

func ms(d time.Duration) float64 { return round2(float64(d) / 1e6) }

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
