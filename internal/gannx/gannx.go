// Package gannx models a GANNX-class dedicated deconvolution accelerator
// (Yazdanbakhsh et al., ISCA 2018), the purpose-built hardware ASV is
// compared against in paper Sec. 7.6 (Fig. 14).
//
// GANNX restructures its MIMD-SIMD array so the four (or eight) output
// computation patterns of a stride-2 deconvolution execute without touching
// inserted zeros — in effect it achieves the MAC reduction of ASV's
// software transformation, but in hardware. What it cannot do is ASV's
// inter-layer activation reuse: each computation pattern streams the ifmap
// again, and pattern switches cost reconfiguration. Those two differences
// are exactly what the model captures. As a backend (registry name
// "gannx") it supports only PolicyBaseline: zero skipping is baked into
// the hardware, not a scheduling choice.
package gannx

import (
	"fmt"
	"math"

	"asv/internal/backend"
	"asv/internal/hw"
	"asv/internal/nn"
	"asv/internal/schedule"
)

// Model is a GANNX-like accelerator with the same resource envelope as the
// ASV systolic array (paper: "we configure both ASV and GANNX to have the
// same PE and buffer sizes").
type Model struct {
	Cfg hw.Config
	En  hw.Energy
}

// Microarchitectural calibration: the MIMD-SIMD organization sustains lower
// PE utilization than a systolic pipeline, and pattern switches stall the
// array.
const (
	utilization          = 0.70
	reconfigCyclesPerSub = 512
	controlPJPerMAC      = 0.12 // distributed MIMD control energy
)

// New returns a model instance.
func New(cfg hw.Config, en hw.Energy) *Model {
	cfg.Validate()
	return &Model{Cfg: cfg, En: en}
}

// Default returns the Fig. 14 comparison configuration.
func Default() *Model { return New(hw.Default(), hw.DefaultEnergy()) }

// Name implements backend.Backend.
func (m *Model) Name() string { return "gannx" }

// Describe implements backend.Backend: hardware zero skipping is the
// native execution, so the only policy is baseline; there is no scheduler
// to run DCT/ConvR/ILAR and no ISM extension.
func (m *Model) Describe() backend.Description {
	return backend.Description{
		Name: m.Name(),
		Summary: fmt.Sprintf("GANNX-class MIMD-SIMD deconvolution accelerator, %dx%d PEs @ %.1f GHz, %.1f MB buffer",
			m.Cfg.PEsX, m.Cfg.PEsY, m.Cfg.FreqHz/1e9, float64(m.Cfg.BufBytes)/(1024*1024)),
		Caps: backend.Capabilities{
			Policies: []backend.Policy{backend.PolicyBaseline},
		},
	}
}

// RunNetwork implements backend.Backend: one generator inference.
// Deconvolutions skip zero MACs in hardware; convolutions and FC layers
// run as on a conventional array. Options must be normalized; use
// backend.Run for validated execution.
func (m *Model) RunNetwork(n *nn.Network, opts backend.RunOptions) backend.Report {
	rep := backend.Report{Workload: n.Name + "@gannx", Policy: opts.Policy}
	pes := float64(m.Cfg.PEs())
	bpc := m.Cfg.BytesPerCycle()
	elemB := m.Cfg.ElemBytes

	for _, l := range n.Layers {
		// Hardware zero skipping realizes the same effective-MAC count as
		// the software transformation.
		spec := schedule.TransformedSpec(l)
		ifBytes := spec.IfmapElems() * elemB
		var cycles, macs, dram int64
		for _, sc := range spec.Subs {
			scMACs := sc.MACs(spec.InC)
			macs += scMACs
			cycles += int64(math.Ceil(float64(scMACs)/(pes*utilization))) + reconfigCyclesPerSub
			// No inter-pattern activation reuse: every pattern re-reads the
			// ifmap (from the buffer if it fits, else from DRAM).
			wBytes := sc.Taps * spec.InC * sc.Filters * elemB
			oBytes := sc.OutPerFilter * sc.Filters * elemB
			mem := wBytes + oBytes
			if ifBytes > m.Cfg.UsableBuf() {
				mem += ifBytes
			}
			dram += mem
		}
		// The ifmap crosses DRAM at least once even when buffered.
		dram += ifBytes
		mCycles := int64(math.Ceil(float64(dram) / bpc))
		if mCycles > cycles {
			cycles = mCycles
		}
		rep.Cycles += cycles
		rep.MACs += macs
		rep.DRAMBytes += dram
		// Each pattern streams the ifmap through the buffer again — exactly
		// the repeated on-chip traffic ILAR eliminates on ASV.
		sram := int64(len(spec.Subs))*ifBytes + dram
		rep.SRAMBytes += sram
		eb := backend.EnergyBreakdown{
			ComputeJ: float64(macs) * (m.En.MACpJ + controlPJPerMAC) * 1e-12,
			SRAMJ:    float64(sram) * m.En.SRAMpJByte * 1e-12,
			DRAMJ:    float64(dram) * m.En.DRAMpJByte * 1e-12,
		}
		rep.Energy.Add(eb)
		e := eb.Total()
		rep.EnergyJ += e
		if l.Kind == nn.KindDeconv {
			rep.DeconvCycles += cycles
			rep.DeconvEnergyJ += e
		}
	}
	rep.Seconds = float64(rep.Cycles) / m.Cfg.FreqHz
	rep.Energy.LeakJ = m.En.LeakWatts * rep.Seconds
	rep.EnergyJ += rep.Energy.LeakJ
	return rep
}
