package gannx

import (
	"testing"

	"asv/internal/backend"
	"asv/internal/eyeriss"
	"asv/internal/nn"
	"asv/internal/systolic"
)

func TestRunNetworkReportsComplete(t *testing.T) {
	rep := Default().RunNetwork(nn.DCGAN(), backend.RunOptions{})
	if rep.Cycles <= 0 || rep.MACs <= 0 || rep.EnergyJ <= 0 || rep.DRAMBytes <= 0 {
		t.Fatalf("incomplete report: %+v", rep)
	}
}

func TestGANNXSkipsZeroMACs(t *testing.T) {
	// The dedicated hardware executes only effective MACs, like the
	// software transformation (~4x fewer than naive for 2-D stride-2).
	n := nn.DCGAN()
	rep := Default().RunNetwork(n, backend.RunOptions{})
	naive := n.TotalMACs()
	if rep.MACs >= naive {
		t.Fatalf("GANNX issued %d MACs, naive is %d — no zero skipping?", rep.MACs, naive)
	}
	r := float64(naive) / float64(rep.MACs)
	if r < 2.5 || r > 4.8 {
		t.Fatalf("zero-skip MAC reduction %.2fx, want ~4x", r)
	}
}

func TestGANNXBeatsEyerissOnGANs(t *testing.T) {
	// Fig. 14: GANNX averages ~3.6x speedup / ~3.2x energy over Eyeriss.
	gx := Default()
	eye := eyeriss.Default()
	var sp float64
	for _, n := range nn.GANZoo() {
		e := eye.RunNetwork(n, backend.RunOptions{Policy: backend.PolicyBaseline})
		g := gx.RunNetwork(n, backend.RunOptions{})
		sp += e.Seconds / g.Seconds
	}
	sp /= 6
	if sp < 2.0 || sp > 6.5 {
		t.Fatalf("GANNX average speedup over Eyeriss %.2fx, want ~3.6x band", sp)
	}
}

// The headline of Sec. 7.6: ASV's software approach beats the purpose-built
// accelerator (paper: 1.4x speedup) because of ILAR, with no custom
// hardware.
func TestASVBeatsGANNX(t *testing.T) {
	gx := Default()
	asv := systolic.Default()
	var ratioSum, energySum float64
	for _, n := range nn.GANZoo() {
		g := gx.RunNetwork(n, backend.RunOptions{})
		a := asv.RunNetwork(n, backend.RunOptions{Policy: backend.PolicyILAR})
		ratioSum += g.Seconds / a.Seconds
		energySum += g.EnergyJ / a.EnergyJ
	}
	ratio := ratioSum / 6
	if ratio < 1.1 || ratio > 2.0 {
		t.Fatalf("ASV/GANNX speedup = %.2fx, want ~1.4x", ratio)
	}
	if energySum/6 < 1.0 {
		t.Fatalf("ASV should not consume more energy than GANNX (ratio %.2f)", energySum/6)
	}
}

func TestGANNXReloadsIfmapPerPattern(t *testing.T) {
	// The SRAM traffic must reflect one ifmap pass per computation pattern —
	// the reuse ASV uniquely eliminates.
	n := nn.DCGAN()
	rep := Default().RunNetwork(n, backend.RunOptions{})
	var minSram int64
	for _, l := range n.Layers {
		minSram += l.IfmapElems() * 2
	}
	if rep.SRAMBytes <= minSram {
		t.Fatal("SRAM traffic too low: per-pattern ifmap streaming not modeled")
	}
}
