package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"asv/internal/core"
	"asv/internal/dataset"
)

// Snapshot/restore endpoints and the disk spill store.
//
// GET  /v1/sessions/{id}/snapshot  — serialize a quiescent session
// PUT  /v1/sessions/{id}/snapshot  — install (create or replace) a session
// GET  /v1/sessions                — list resident sessions (drain protocol)
//
// The same codec powers eviction-to-disk: with Config.SpillDir set, cold
// sessions evicted by TTL or LRU pressure are written to
// <SpillDir>/<id>.asvsnap instead of being dropped, and a session-table
// miss transparently restores from that file. With Config.CheckpointEvery
// set, hot sessions are also checkpointed there every N completed frames,
// which is what lets a cluster peer adopt a crashed shard's sessions from a
// shared spill directory (DESIGN.md §10).

// snapshotOf captures sess under its run lock. The caller must ensure no
// frames are pending if it wants the snapshot to reflect the full stream.
func (s *Server) snapshotOf(sess *session) *SessionSnapshot {
	sess.runMu.Lock()
	defer sess.runMu.Unlock()
	return s.snapshotLocked(sess)
}

// snapshotLocked builds the snapshot; sess.runMu must be held.
func (s *Server) snapshotLocked(sess *session) *SessionSnapshot {
	cfg := sess.pipe.Config()
	w, h := sess.geometry()
	snap := &SessionSnapshot{
		ID:          sess.id,
		PW:          sess.pw,
		Postprocess: cfg.Postprocess,
		FlowScale:   cfg.FlowScale,
		RefineR:     cfg.RefineR,
		BM:          cfg.BM,
		Flow:        cfg.Flow,
		Frames:      sess.frames.Load(),
		KeyFrames:   sess.keyFrames.Load(),
		W:           w,
		H:           h,
		State:       sess.pipe.State(),
	}
	if sess.level != 0 {
		// The session is currently degraded to a pyramid rung: its temporal
		// state lives at 1/2^level resolution, which the snapshot geometry
		// (the full upload size) cannot represent. Ship an empty state
		// instead — the restored session costs one key frame to re-prime,
		// the same price as any cross-level rung switch. SLO class is not
		// serialized (snapshot codec v2 unchanged); restored sessions
		// default to gold.
		snap.State = core.State{}
	}
	if cfg.Adaptive != nil {
		a := *cfg.Adaptive
		snap.Adaptive = &a
	}
	if sess.preset != nil {
		snap.Preset = &PresetSnapshot{
			Name:  sess.preset.name,
			Scene: sess.preset.cfg,
			Next:  int64(sess.preset.next),
		}
	}
	if sess.calib != nil {
		c := *sess.calib
		snap.Calib = &c
	}
	return snap
}

// sessionFromSnapshot rebuilds a live session from a decoded snapshot,
// enforcing this server's resource limits. The pipeline configuration comes
// from the snapshot (so the stream recomputes exactly what the source shard
// would have), layered over the server's template for the parts a snapshot
// does not carry (the motion-estimator override).
func (s *Server) sessionFromSnapshot(snap *SessionSnapshot) (*session, error) {
	if snap.W*snap.H > s.cfg.MaxPixels {
		return nil, fmt.Errorf("snapshot geometry %dx%d exceeds this server's %d-pixel cap", snap.W, snap.H, s.cfg.MaxPixels)
	}
	cfg := s.cfg.Pipeline
	cfg.PW = snap.PW
	cfg.Postprocess = snap.Postprocess
	cfg.FlowScale = snap.FlowScale
	cfg.RefineR = snap.RefineR
	cfg.BM = snap.BM
	cfg.Flow = snap.Flow
	cfg.Adaptive = nil
	if snap.Adaptive != nil {
		a := *snap.Adaptive
		cfg.Adaptive = &a
	}

	sess := &session{
		id:      snap.ID,
		pw:      snap.PW,
		pipe:    core.New(s.matcher, cfg),
		created: time.Now(),
	}
	if err := sess.pipe.SetState(snap.State); err != nil {
		return nil, err
	}
	sess.frames.Store(snap.Frames)
	sess.keyFrames.Store(snap.KeyFrames)
	if snap.W > 0 {
		sess.w, sess.h = snap.W, snap.H
	}
	if snap.Preset != nil {
		if snap.Preset.Scene.W*snap.Preset.Scene.H > s.cfg.MaxPixels {
			return nil, fmt.Errorf("preset size %dx%d exceeds this server's %d-pixel cap",
				snap.Preset.Scene.W, snap.Preset.Scene.H, s.cfg.MaxPixels)
		}
		if snap.Preset.Scene.FrameCount > s.cfg.MaxPresetFrames {
			return nil, fmt.Errorf("preset length %d exceeds this server's %d-frame cap",
				snap.Preset.Scene.FrameCount, s.cfg.MaxPresetFrames)
		}
		sess.preset = &presetSource{
			name: snap.Preset.Name,
			cfg:  snap.Preset.Scene,
			seq:  dataset.Generate(snap.Preset.Scene),
			next: int(snap.Preset.Next),
		}
	}
	if snap.Calib != nil {
		c := *snap.Calib
		sess.calib = &c
	}
	sess.touch()
	return sess, nil
}

// --- HTTP handlers ------------------------------------------------------

// SessionList is the body of GET /v1/sessions.
type SessionList struct {
	Sessions []SessionInfo `json:"sessions"`
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	list := SessionList{Sessions: []SessionInfo{}}
	for _, sess := range s.tab.list() {
		list.Sessions = append(list.Sessions, s.info(sess))
	}
	writeJSON(w, http.StatusOK, list)
}

// handleGetSnapshot serializes a session. It deliberately works while the
// server drains — serving snapshots to the migration protocol is the point
// of draining gracefully. A session with queued frames answers 409 (the
// snapshot would silently miss them); callers quiesce and retry.
func (s *Server) handleGetSnapshot(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	if sess.pendingFrames.Load() > 0 {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "session has frames in flight; retry once it is quiescent")
		return
	}
	buf := EncodeSnapshot(s.snapshotOf(sess))
	s.snapshotsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-ASV-Snapshot-Version", fmt.Sprint(SnapshotVersion))
	w.Header().Set("Content-Length", fmt.Sprint(len(buf)))
	//asvlint:ignore droppederr a short write mid-reply means the client hung up; no recovery
	w.Write(buf)
}

// handlePutSnapshot installs a snapshot under the path id, creating the
// session or replacing a quiescent same-id one (the restore half of
// migration and crash recovery).
func (s *Server) handlePutSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	id := r.PathValue("id")
	if !validSessionID(id) {
		writeError(w, http.StatusBadRequest, "invalid session id")
		return
	}
	limit := int64(s.cfg.MaxPixels)*12 + 1<<20 // three float32 planes + slack
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading snapshot: "+err.Error())
		return
	}
	snap, err := DecodeSnapshot(body, s.cfg.MaxPixels)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if snap.ID != id {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("snapshot is for session %q, not %q", snap.ID, id))
		return
	}
	if cur := s.tab.get(id); cur != nil && cur.pendingFrames.Load() > 0 {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "existing session has frames in flight")
		return
	}
	sess, err := s.sessionFromSnapshot(snap)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.installSession(sess)
	s.snapshotsRestored.Add(1)
	writeJSON(w, http.StatusOK, s.info(sess))
}

// installSession adds sess to the table, spilling whichever session the
// capacity eviction displaced.
func (s *Server) installSession(sess *session) {
	if evicted := s.tab.add(sess); evicted != nil {
		s.spill(evicted)
	}
}

// --- disk spill store ---------------------------------------------------

// spillPath returns the snapshot file for a session id, or "" when the
// spill store is disabled or the id is unsafe as a filename.
func (s *Server) spillPath(id string) string {
	if s.cfg.SpillDir == "" || !validSessionID(id) {
		return ""
	}
	return filepath.Join(s.cfg.SpillDir, id+".asvsnap")
}

// spill writes an evicted session's snapshot to the spill store (no-op when
// disabled). Write failures only bump a counter: eviction must not block on
// a sick disk, and the session was legitimately evictable anyway.
func (s *Server) spill(sess *session) {
	path := s.spillPath(sess.id)
	if path == "" {
		return
	}
	if err := writeFileAtomic(path, EncodeSnapshot(s.snapshotOf(sess))); err != nil {
		s.spillErrors.Add(1)
		return
	}
	s.spilled.Add(1)
}

// writeSnapshotFile persists already-encoded snapshot bytes (the worker's
// checkpoint path, which encodes under the run lock it already holds).
func (s *Server) writeSnapshotFile(id string, buf []byte) {
	path := s.spillPath(id)
	if path == "" {
		return
	}
	if err := writeFileAtomic(path, buf); err != nil {
		s.spillErrors.Add(1)
		return
	}
	s.checkpoints.Add(1)
}

func writeFileAtomic(path string, buf []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		//asvlint:ignore droppederr best-effort cleanup of the temp file after the rename failed
		os.Remove(tmp)
		return err
	}
	return nil
}

// dropSpill removes a session's spill file (explicit DELETE).
func (s *Server) dropSpill(id string) {
	if path := s.spillPath(id); path != "" {
		//asvlint:ignore droppederr removing a spill file that may not exist; absence is the goal
		os.Remove(path)
	}
}

// lookup resolves a session id: the in-memory table first, then the spill
// store. A disk hit transparently re-materializes the session — the
// mechanism behind both cold-session eviction and a shard adopting a dead
// peer's sessions from a shared spill directory. The file is left in place;
// it is overwritten by the next checkpoint or eviction and removed by
// explicit DELETE.
func (s *Server) lookup(id string) *session {
	if sess := s.tab.get(id); sess != nil {
		return sess
	}
	path := s.spillPath(id)
	if path == "" {
		return nil
	}
	s.restoreMu.Lock()
	defer s.restoreMu.Unlock()
	if sess := s.tab.get(id); sess != nil { // lost the race to another restorer
		return sess
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.spillErrors.Add(1)
		}
		return nil
	}
	snap, err := DecodeSnapshot(buf, s.cfg.MaxPixels)
	if err != nil || snap.ID != id {
		s.spillErrors.Add(1)
		return nil
	}
	sess, err := s.sessionFromSnapshot(snap)
	if err != nil {
		s.spillErrors.Add(1)
		return nil
	}
	s.installSession(sess)
	s.diskRestores.Add(1)
	return sess
}
