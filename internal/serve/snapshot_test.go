package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/imgproc"
	"asv/internal/perception"
)

// getSnapshot fetches a session's snapshot, retrying briefly on 409: the
// worker decrements pendingFrames an instant after the frame reply is
// written, so a snapshot taken immediately after a frame response can race
// the quiescence check. The retry is the documented client protocol.
func getSnapshot(t *testing.T, base, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/sessions/" + id + "/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			if v := resp.Header.Get("X-ASV-Snapshot-Version"); v != strconv.Itoa(SnapshotVersion) {
				t.Fatalf("snapshot version header %q, want %d", v, SnapshotVersion)
			}
			return body
		case http.StatusConflict:
			if time.Now().After(deadline) {
				t.Fatalf("session %s never became quiescent", id)
			}
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("GET snapshot: %s: %s", resp.Status, body)
		}
	}
}

func putSnapshot(t *testing.T, base, id string, buf []byte) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/sessions/"+id+"/snapshot", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

// submitPFM posts one preset frame and returns the frame index, key flag,
// MACs and the raw PFM disparity bytes.
func submitPFM(t *testing.T, base, id string) (frame int, isKey bool, macs int64, pfm []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sessions/"+id+"/frames?disparity=pfm", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("frame: status %d err %v: %s", resp.StatusCode, err, body)
	}
	frame, _ = strconv.Atoi(resp.Header.Get("X-ASV-Frame"))
	isKey, _ = strconv.ParseBool(resp.Header.Get("X-ASV-Is-Key"))
	macs, _ = strconv.ParseInt(resp.Header.Get("X-ASV-MACs"), 10, 64)
	return frame, isKey, macs, body
}

// TestSnapshotRoundTripEveryPWPhase is the snapshot correctness oracle: a
// session cut at EVERY phase of the propagation window — right after a key
// frame, mid-propagation, on the frame before the next key — and restored
// into a completely fresh server must continue the stream bit-identically
// to an uninterrupted serial pipeline. Any divergence means the snapshot
// missed a piece of ISM state.
func TestSnapshotRoundTripEveryPWPhase(t *testing.T) {
	const (
		wPx, hPx = 64, 48
		nFrames  = 7
		pw       = 3
		seed     = 77
	)

	cfg := DefaultConfig()
	cfg.Workers = 2
	_, tsA := testServer(t, cfg, 0)
	info := createPresetSession(t, tsA.URL, CreateSessionRequest{
		PW: pw, Preset: "sceneflow", W: wPx, H: hPx, Frames: nFrames, Seed: seed,
	})

	// Serial oracle over the identical generated sequence.
	scene := dataset.SceneFlowLike(wPx, hPx, nFrames, seed)[0]
	seq := dataset.Generate(scene)
	ocfg := cfg.withDefaults().Pipeline
	ocfg.PW = pw
	oracle := core.New(quickMatcher(0), ocfg)
	want := make([]core.Result, nFrames)
	for i := 0; i < nFrames; i++ {
		want[i] = oracle.Process(seq.Frames[i].Left, seq.Frames[i].Right)
	}

	// Drive server A through the stream, capturing a snapshot after every
	// frame. snaps[k] holds the state with k frames completed.
	snaps := make([][]byte, nFrames)
	for i := 0; i < nFrames-1; i++ {
		frame, isKey, _, _ := submitPFM(t, tsA.URL, info.ID)
		if frame != i || isKey != want[i].IsKey {
			t.Fatalf("source server frame %d: got index %d key=%v", i, frame, isKey)
		}
		snaps[i+1] = getSnapshot(t, tsA.URL, info.ID)
	}

	for cut := 1; cut < nFrames; cut++ {
		t.Run("cut="+strconv.Itoa(cut), func(t *testing.T) {
			_, tsB := testServer(t, cfg, 0)
			if code, body := putSnapshot(t, tsB.URL, info.ID, snaps[cut]); code != http.StatusOK {
				t.Fatalf("PUT snapshot: %d: %s", code, body)
			}
			for i := cut; i < nFrames; i++ {
				frame, isKey, macs, pfm := submitPFM(t, tsB.URL, info.ID)
				if frame != i {
					t.Fatalf("restored stream at %d: server says frame %d", i, frame)
				}
				if isKey != want[i].IsKey || macs != want[i].MACs {
					t.Fatalf("frame %d: key=%v macs=%d, oracle key=%v macs=%d",
						i, isKey, macs, want[i].IsKey, want[i].MACs)
				}
				got, err := imgproc.ReadPFM(bytes.NewReader(pfm))
				if err != nil {
					t.Fatalf("frame %d: decoding PFM: %v", i, err)
				}
				if got.W != want[i].Disparity.W || got.H != want[i].Disparity.H {
					t.Fatalf("frame %d: %dx%d vs oracle %dx%d", i, got.W, got.H,
						want[i].Disparity.W, want[i].Disparity.H)
				}
				for p := range got.Pix {
					if got.Pix[p] != want[i].Disparity.Pix[p] {
						t.Fatalf("cut %d frame %d: disparity diverges at pixel %d: %g vs %g",
							cut, i, p, got.Pix[p], want[i].Disparity.Pix[p])
					}
				}
			}
		})
	}
}

func TestSnapshotHTTPErrors(t *testing.T) {
	cfg := DefaultConfig()
	_, ts := testServer(t, cfg, 0)

	// Unknown session.
	resp, err := http.Get(ts.URL + "/v1/sessions/nosuch/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET snapshot of unknown session: %d, want 404", resp.StatusCode)
	}

	// Structurally invalid bytes.
	if code, _ := putSnapshot(t, ts.URL, "abc", []byte("not a snapshot at all")); code != http.StatusBadRequest {
		t.Fatalf("PUT garbage: %d, want 400", code)
	}

	// Valid snapshot PUT under the wrong id.
	info := createPresetSession(t, ts.URL, CreateSessionRequest{
		Preset: "sceneflow", W: 48, H: 32, Frames: 3, PW: 2,
	})
	submitPFM(t, ts.URL, info.ID)
	snap := getSnapshot(t, ts.URL, info.ID)
	if code, body := putSnapshot(t, ts.URL, "otherid", snap); code != http.StatusBadRequest {
		t.Fatalf("PUT under mismatched id: %d: %s, want 400", code, body)
	}

	// Semantically unacceptable: the stream is fine but exceeds the target
	// server's preset-length cap → 422, distinct from the 400 class.
	strict := DefaultConfig()
	strict.MaxPresetFrames = 2
	_, tsStrict := testServer(t, strict, 0)
	if code, body := putSnapshot(t, tsStrict.URL, info.ID, snap); code != http.StatusUnprocessableEntity {
		t.Fatalf("PUT over preset cap: %d: %s, want 422", code, body)
	}
}

// TestSnapshotDecodeRejectsDamage feeds the decoder every truncation and
// every single-byte corruption of a real snapshot. Each must fail with a
// typed *SnapshotError — never a panic, never silent acceptance (the CRC
// trailer guarantees the single-byte case).
func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	cfg := DefaultConfig()
	_, ts := testServer(t, cfg, 0)
	info := createPresetSession(t, ts.URL, CreateSessionRequest{
		Preset: "sceneflow", W: 32, H: 24, Frames: 3, PW: 2,
	})
	submitPFM(t, ts.URL, info.ID)
	valid := getSnapshot(t, ts.URL, info.ID)

	if _, err := DecodeSnapshot(valid, 0); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	for n := 0; n < len(valid); n++ {
		_, err := DecodeSnapshot(valid[:n], 0)
		var se *SnapshotError
		if err == nil || !errors.As(err, &se) {
			t.Fatalf("truncation to %d bytes: err=%v, want *SnapshotError", n, err)
		}
	}
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x40
		_, err := DecodeSnapshot(mut, 0)
		var se *SnapshotError
		if err == nil || !errors.As(err, &se) {
			t.Fatalf("flip at byte %d: err=%v, want *SnapshotError", i, err)
		}
	}

	// Trailing bytes after a well-formed payload are damage too, even with
	// a recomputed CRC covering them.
	padded := append(append([]byte(nil), valid[:len(valid)-4]...), 0, 0, 0)
	padded = binary.LittleEndian.AppendUint32(padded, crc32.ChecksumIEEE(padded))
	_, err := DecodeSnapshot(padded, 0)
	var se *SnapshotError
	if err == nil || !errors.As(err, &se) {
		t.Fatalf("trailing bytes: err=%v, want *SnapshotError", err)
	}
}

// FuzzSnapshotDecode hammers the decoder with mutated snapshot bytes. The
// contract under fuzzing: never panic, fail only with *SnapshotError, and
// anything accepted must survive a re-encode/re-decode round trip.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed corpus: a real mid-stream preset snapshot, a minimal fresh
	// session, and a few obviously damaged variants.
	full := EncodeSnapshot(&SessionSnapshot{
		ID: "seed1", PW: 3,
		FlowScale: 2, RefineR: 2,
		BM:     DefaultConfig().Pipeline.BM,
		Flow:   DefaultConfig().Pipeline.Flow,
		Frames: 2, KeyFrames: 1, W: 8, H: 6,
		State: core.State{
			FrameIdx: 2, SinceKey: 1,
			PrevLeft:  imgproc.NewImage(8, 6),
			PrevRight: imgproc.NewImage(8, 6),
			PrevDisp:  imgproc.NewImage(8, 6),
		},
		Preset: &PresetSnapshot{
			Name:  "sceneflow",
			Scene: dataset.SceneFlowLike(32, 24, 3, 9)[0],
			Next:  2,
		},
	})
	fresh := EncodeSnapshot(&SessionSnapshot{
		ID: "seed2", PW: 1,
		BM:   DefaultConfig().Pipeline.BM,
		Flow: DefaultConfig().Pipeline.Flow,
	})
	calibrated := EncodeSnapshot(&SessionSnapshot{
		ID: "seed3", PW: 2,
		BM:    DefaultConfig().Pipeline.BM,
		Flow:  DefaultConfig().Pipeline.Flow,
		Calib: perception.DefaultCalibration(32, 24),
	})
	f.Add(full)
	f.Add(fresh)
	f.Add(calibrated)
	f.Add(full[:len(full)/2])
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data, 1<<16)
		if err != nil {
			var se *SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("decoder returned untyped error %T: %v", err, err)
			}
			return
		}
		// Accepted input must round-trip through the encoder.
		re := EncodeSnapshot(snap)
		if _, err := DecodeSnapshot(re, 1<<16); err != nil {
			t.Fatalf("re-encoded accepted snapshot fails to decode: %v", err)
		}
	})
}

// TestSnapshotVersionCompat pins the codec's cross-version behavior: a
// version-1 snapshot (committed fixture, generated by the v1 encoder before
// the calibration block was added) must be refused with a typed
// *SnapshotError naming the version — not mis-parsed, not silently
// upgraded. The fixture is bytes-on-disk so this keeps guarding even after
// the v1 encoder is long gone.
func TestSnapshotVersionCompat(t *testing.T) {
	old, err := os.ReadFile(filepath.Join("testdata", "snapshot_v1.asvsnap"))
	if err != nil {
		t.Fatalf("reading v1 fixture: %v", err)
	}
	// Fixture sanity: correct magic, version byte 1.
	if string(old[:7]) != snapshotMagic || old[7] != 1 {
		t.Fatalf("fixture is not a v1 snapshot (magic %q version %d)", old[:7], old[7])
	}
	_, err = DecodeSnapshot(old, 0)
	var se *SnapshotError
	if err == nil || !errors.As(err, &se) {
		t.Fatalf("v1 snapshot: err=%v, want *SnapshotError", err)
	}
	if !strings.Contains(err.Error(), "unsupported version 1") {
		t.Fatalf("v1 rejection %q does not name the version", err)
	}

	// And the current version still round-trips, calibration included.
	calib := perception.DefaultCalibration(32, 24)
	calib.LeftRPY = [3]float64{0.01, -0.02, 0.005}
	snap := &SessionSnapshot{
		ID: "v2-rt", PW: 2,
		BM:    DefaultConfig().Pipeline.BM,
		Flow:  DefaultConfig().Pipeline.Flow,
		Calib: calib,
	}
	got, err := DecodeSnapshot(EncodeSnapshot(snap), 0)
	if err != nil {
		t.Fatalf("v2 round trip: %v", err)
	}
	if got.Calib == nil || *got.Calib != *calib {
		t.Fatalf("calibration did not survive the round trip: %+v", got.Calib)
	}
}

// TestEvictionSpillsAndRestores proves eviction-to-disk: an LRU-evicted
// session transparently comes back from the spill store on its next use,
// with its counters and ISM state intact.
func TestEvictionSpillsAndRestores(t *testing.T) {
	const (
		wPx, hPx = 48, 32
		nFrames  = 4
		pw       = 2
		seed     = 5
	)
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.MaxSessions = 1
	cfg.SpillDir = dir
	srv, ts := testServer(t, cfg, 0)

	infoA := createPresetSession(t, ts.URL, CreateSessionRequest{
		PW: pw, Preset: "sceneflow", W: wPx, H: hPx, Frames: nFrames, Seed: seed,
	})
	submitPFM(t, ts.URL, infoA.ID)
	submitPFM(t, ts.URL, infoA.ID)
	// The snapshot handler doubles as a quiescence barrier here: once it
	// answers 200, A has no pending frames and is evictable.
	getSnapshot(t, ts.URL, infoA.ID)

	// Creating B displaces A (table capacity 1) → A spills to disk.
	createPresetSession(t, ts.URL, CreateSessionRequest{
		Preset: "sceneflow", W: 32, H: 24, Frames: 2, PW: 1,
	})
	if srv.tab.get(infoA.ID) != nil {
		t.Fatal("session A still resident after capacity eviction")
	}
	if _, err := os.Stat(filepath.Join(dir, infoA.ID+".asvsnap")); err != nil {
		t.Fatalf("no spill file for evicted session: %v", err)
	}
	if srv.spilled.Load() == 0 {
		t.Fatal("spill counter did not move")
	}

	// Using A again restores it from disk mid-stream: the next frame index
	// continues at 2 and the disparity matches the uninterrupted oracle.
	scene := dataset.SceneFlowLike(wPx, hPx, nFrames, seed)[0]
	seq := dataset.Generate(scene)
	ocfg := cfg.withDefaults().Pipeline
	ocfg.PW = pw
	oracle := core.New(quickMatcher(0), ocfg)
	var want core.Result
	for i := 0; i < 3; i++ {
		want = oracle.Process(seq.Frames[i].Left, seq.Frames[i].Right)
	}

	frame, isKey, _, pfm := submitPFM(t, ts.URL, infoA.ID)
	if frame != 2 {
		t.Fatalf("restored session resumed at frame %d, want 2", frame)
	}
	if isKey != want.IsKey {
		t.Fatalf("restored frame 2: key=%v, oracle %v", isKey, want.IsKey)
	}
	got, err := imgproc.ReadPFM(bytes.NewReader(pfm))
	if err != nil {
		t.Fatal(err)
	}
	for p := range got.Pix {
		if got.Pix[p] != want.Disparity.Pix[p] {
			t.Fatalf("restored frame 2 diverges at pixel %d: %g vs %g",
				p, got.Pix[p], want.Disparity.Pix[p])
		}
	}
	if srv.diskRestores.Load() != 1 {
		t.Fatalf("disk restore counter %d, want 1", srv.diskRestores.Load())
	}
}

// TestCheckpointAdoption is crash recovery in miniature: with per-frame
// checkpoints into a shared spill directory, a second server that has never
// seen the session adopts it at exactly the frame the client last saw.
func TestCheckpointAdoption(t *testing.T) {
	const (
		wPx, hPx = 48, 32
		nFrames  = 5
		pw       = 2
		seed     = 11
	)
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.SpillDir = dir
	cfg.CheckpointEvery = 1
	_, ts1 := testServer(t, cfg, 0)

	info := createPresetSession(t, ts1.URL, CreateSessionRequest{
		PW: pw, Preset: "sceneflow", W: wPx, H: hPx, Frames: nFrames, Seed: seed,
	})
	for i := 0; i < 3; i++ {
		submitPFM(t, ts1.URL, info.ID)
	}
	// Checkpoint-before-reply: the store must already hold frame-3 state.
	if _, err := os.Stat(filepath.Join(dir, info.ID+".asvsnap")); err != nil {
		t.Fatalf("no checkpoint after 3 acknowledged frames: %v", err)
	}

	scene := dataset.SceneFlowLike(wPx, hPx, nFrames, seed)[0]
	seq := dataset.Generate(scene)
	ocfg := cfg.withDefaults().Pipeline
	ocfg.PW = pw
	oracle := core.New(quickMatcher(0), ocfg)
	var want core.Result
	for i := 0; i < 4; i++ {
		want = oracle.Process(seq.Frames[i].Left, seq.Frames[i].Right)
	}

	// A different server over the same spill store picks the session up.
	srv2, ts2 := testServer(t, cfg, 0)
	frame, isKey, _, pfm := submitPFM(t, ts2.URL, info.ID)
	if frame != 3 {
		t.Fatalf("adopted session resumed at frame %d, want 3", frame)
	}
	if isKey != want.IsKey {
		t.Fatalf("adopted frame 3: key=%v, oracle %v", isKey, want.IsKey)
	}
	got, err := imgproc.ReadPFM(bytes.NewReader(pfm))
	if err != nil {
		t.Fatal(err)
	}
	for p := range got.Pix {
		if got.Pix[p] != want.Disparity.Pix[p] {
			t.Fatalf("adopted frame 3 diverges at pixel %d: %g vs %g",
				p, got.Pix[p], want.Disparity.Pix[p])
		}
	}
	if srv2.diskRestores.Load() != 1 {
		t.Fatalf("adopting server's disk restore counter %d, want 1", srv2.diskRestores.Load())
	}
}

// TestClientSuppliedSessionID covers the gateway's id-injection contract:
// a create request may carry its own id (the gateway mints one so it can
// consistent-hash before the shard ever sees the session).
func TestClientSuppliedSessionID(t *testing.T) {
	_, ts := testServer(t, DefaultConfig(), 0)

	info := createPresetSession(t, ts.URL, CreateSessionRequest{
		ID: "gw-minted-01", Preset: "sceneflow", W: 32, H: 24, Frames: 2, PW: 1,
	})
	if info.ID != "gw-minted-01" {
		t.Fatalf("server re-minted id %q", info.ID)
	}

	// Duplicate id → 409.
	buf := []byte(`{"id":"gw-minted-01","preset":"sceneflow","w":32,"h":24,"frames":2,"pw":1}`)
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate id: %d, want 409", resp.StatusCode)
	}

	// Unsafe id → 400.
	buf = []byte(`{"id":"../evil","preset":"sceneflow","w":32,"h":24,"frames":2,"pw":1}`)
	resp, err = http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid id: %d, want 400", resp.StatusCode)
	}
}
