package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"asv/internal/backend/backends"
	"asv/internal/core"
	"asv/internal/hw"
	"asv/internal/imgproc"
	"asv/internal/metrics"
	"asv/internal/stereo"
)

// testMatcher wraps BM with an optional artificial delay so backpressure
// tests can fill the admission queue deterministically.
type testMatcher struct {
	inner core.KeyMatcher
	delay time.Duration
}

func (m testMatcher) Match(l, r *imgproc.Image) *imgproc.Image {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	return m.inner.Match(l, r)
}
func (m testMatcher) MACs(w, h int) int64 { return m.inner.MACs(w, h) }
func (m testMatcher) Name() string        { return "test-" + m.inner.Name() }

func quickMatcher(delay time.Duration) testMatcher {
	opt := stereo.DefaultBMOptions()
	opt.MaxDisp = 12
	return testMatcher{inner: core.BMMatcher{Opt: opt}, delay: delay}
}

// testServer spins up a Server on an httptest listener and returns a
// cleanup-registered handle.
func testServer(t *testing.T, cfg Config, delay time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	s := New(quickMatcher(delay), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, ts
}

func createPresetSession(t *testing.T, base string, req CreateSessionRequest) SessionInfo {
	t.Helper()
	buf, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("create session: %s: %s", resp.Status, body)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func submit(t *testing.T, base, id string) (int, FrameResponse) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sessions/"+id+"/frames", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fr FrameResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, fr
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{}, 0)

	info := createPresetSession(t, ts.URL, CreateSessionRequest{
		Preset: "sceneflow", W: 48, H: 32, Frames: 4, PW: 2,
	})
	if info.ID == "" || info.PW != 2 || info.Preset != "sceneflow" {
		t.Fatalf("bad session info: %+v", info)
	}

	// GET reflects activity.
	status, fr := submit(t, ts.URL, info.ID)
	if status != http.StatusOK || !fr.IsKey || fr.Frame != 0 {
		t.Fatalf("first frame: status %d, %+v", status, fr)
	}
	resp, err := http.Get(ts.URL + "/v1/sessions/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got SessionInfo
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.Frames != 1 || got.KeyFrames != 1 || got.W != 48 || got.H != 32 {
		t.Fatalf("session info after one frame: %+v", got)
	}

	// DELETE then 404 everywhere.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+info.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %s", resp.Status)
	}
	if status, _ := submit(t, ts.URL, info.ID); status != http.StatusNotFound {
		t.Fatalf("submit after delete: %d", status)
	}
}

// Frame N must run the key matcher iff N ≡ 0 (mod PW) — the ISM schedule,
// reproduced under request-driven arrival.
func TestKeyFrameCadence(t *testing.T) {
	_, ts := testServer(t, Config{}, 0)
	const pw, n = 3, 10
	info := createPresetSession(t, ts.URL, CreateSessionRequest{
		Preset: "kitti", W: 48, H: 32, Frames: 5, PW: pw,
	})
	keys := 0
	for i := 0; i < n; i++ {
		status, fr := submit(t, ts.URL, info.ID)
		if status != http.StatusOK {
			t.Fatalf("frame %d: status %d", i, status)
		}
		if fr.Frame != i {
			t.Fatalf("frame %d: server says index %d", i, fr.Frame)
		}
		if want := i%pw == 0; fr.IsKey != want {
			t.Fatalf("frame %d: is_key=%v, want %v", i, fr.IsKey, want)
		}
		if fr.IsKey {
			keys++
		}
		if fr.Disparity.W != 48 || fr.Disparity.H != 32 || fr.Disparity.ValidPc <= 0 {
			t.Fatalf("frame %d: bad disparity stats %+v", i, fr.Disparity)
		}
	}
	resp, _ := http.Get(ts.URL + "/v1/sessions/" + info.ID)
	var got SessionInfo
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.KeyFrames != int64(keys) || got.Frames != n {
		t.Fatalf("accounting: %+v (want %d keys / %d frames)", got, keys, n)
	}
}

// A full admission queue must shed load with 429 + Retry-After, and the
// accepted/rejected accounting must cover every submission exactly once.
func TestBackpressure429(t *testing.T) {
	s, ts := testServer(t, Config{
		QueueDepth: 2, Workers: 1, BatchSize: 1, MaxSessions: 8,
	}, 30*time.Millisecond)

	info := createPresetSession(t, ts.URL, CreateSessionRequest{
		Preset: "sceneflow", W: 48, H: 32, Frames: 4, PW: 1,
	})

	const clients = 12
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	var retryAfterSeen bool
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sessions/"+info.ID+"/frames", "", nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			mu.Lock()
			counts[resp.StatusCode]++
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") != "" {
				retryAfterSeen = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	if counts[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no 429s under a flood with queue depth 2: %v", counts)
	}
	if !retryAfterSeen {
		t.Fatal("429 responses missing Retry-After")
	}
	if counts[http.StatusOK] == 0 {
		t.Fatalf("no successes at all: %v", counts)
	}
	accepted, rejected := s.accepted.Load(), s.rejected.Load()
	if int(accepted) != counts[http.StatusOK] {
		t.Fatalf("accepted counter %d != %d OK responses", accepted, counts[http.StatusOK])
	}
	if int(rejected) != counts[http.StatusTooManyRequests] {
		t.Fatalf("rejected counter %d != %d 429s", rejected, counts[http.StatusTooManyRequests])
	}
	if int(accepted+rejected) != clients {
		t.Fatalf("accounting leak: accepted %d + rejected %d != %d submissions",
			accepted, rejected, clients)
	}

	// The counters surface in /metrics under their stable names.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	serveDoc, ok := doc["serve"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing serve section: %v", doc)
	}
	for _, key := range []string{"rejected_429", "frames_accepted", "frames_completed",
		"queue_depth", "queue_capacity", "batches", "batch_max_frames", "sessions_active"} {
		if _, ok := serveDoc[key]; !ok {
			t.Fatalf("serve metrics missing %q: %v", key, serveDoc)
		}
	}
	if int(serveDoc["rejected_429"].(float64)) != counts[http.StatusTooManyRequests] {
		t.Fatalf("metrics rejected_429 %v != %d", serveDoc["rejected_429"], counts[http.StatusTooManyRequests])
	}
}

// Concurrent create/submit/evict across goroutines: correctness is checked
// by the race detector (this test is in the CI race gate) plus conservation
// of the accounting counters.
func TestConcurrentSessionLifecycle(t *testing.T) {
	s, ts := testServer(t, Config{
		MaxSessions: 4, QueueDepth: 64, Workers: 3, BatchSize: 4,
	}, 0)

	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				info := createPresetSession(t, ts.URL, CreateSessionRequest{
					Preset: "sceneflow", W: 32, H: 24, Frames: 3, PW: 2,
					Seed: int64(g*10 + round + 1),
				})
				for f := 0; f < 3; f++ {
					status, _ := submit(t, ts.URL, info.ID)
					// 404 is legal: another goroutine's create may have
					// LRU-evicted us. 429 is legal under load.
					if status != http.StatusOK && status != http.StatusNotFound &&
						status != http.StatusTooManyRequests {
						t.Errorf("unexpected status %d", status)
					}
				}
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+info.ID, nil)
				if resp, err := http.DefaultClient.Do(req); err == nil {
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()

	if s.tab.len() > 4 {
		t.Fatalf("session table exceeded MaxSessions: %d", s.tab.len())
	}
	if got, want := s.completed.Load(), s.accepted.Load(); got != want {
		t.Fatalf("completed %d != accepted %d after quiescence", got, want)
	}
}

// TTL expiry is unit-tested directly against the table (the janitor period
// is too coarse for a test).
func TestSessionTTLExpiry(t *testing.T) {
	tab := newSessionTable(8)
	old := &session{id: "old"}
	old.lastUseNs.Store(time.Now().Add(-time.Hour).UnixNano())
	fresh := &session{id: "fresh"}
	fresh.touch()
	queued := &session{id: "queued"}
	queued.lastUseNs.Store(time.Now().Add(-time.Hour).UnixNano())
	queued.pendingFrames.Add(1)
	tab.add(old)
	tab.add(fresh)
	tab.add(queued)

	if ev := tab.expire(time.Minute); len(ev) != 1 {
		t.Fatalf("expired %d sessions, want 1", len(ev))
	}
	if tab.get("old") != nil {
		t.Fatal("idle session survived TTL")
	}
	if tab.get("fresh") == nil {
		t.Fatal("fresh session evicted")
	}
	if tab.get("queued") == nil {
		t.Fatal("session with queued work evicted")
	}
	if tab.evictions.Load() != 1 {
		t.Fatalf("eviction counter %d, want 1", tab.evictions.Load())
	}
}

func TestLRUEvictionOnOverflow(t *testing.T) {
	tab := newSessionTable(2)
	a := &session{id: "a"}
	a.lastUseNs.Store(1)
	b := &session{id: "b"}
	b.lastUseNs.Store(2)
	tab.add(a)
	tab.add(b)
	c := &session{id: "c"}
	c.touch()
	tab.add(c)
	if tab.get("a") != nil {
		t.Fatal("LRU session not evicted")
	}
	if tab.get("b") == nil || tab.get("c") == nil {
		t.Fatal("wrong eviction victim")
	}
	if tab.len() != 2 {
		t.Fatalf("table size %d, want 2", tab.len())
	}
}

// Uploaded frames: PGM multipart works; oversize images bounce with 413
// before allocation; mismatched geometry is a 422.
func TestUploadDecodeAndCaps(t *testing.T) {
	_, ts := testServer(t, Config{MaxPixels: 48 * 32}, 0)
	info := createPresetSession(t, ts.URL, CreateSessionRequest{PW: 2})

	post := func(lw, lh, rw, rh int) int {
		t.Helper()
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		for _, p := range []struct {
			name string
			w, h int
		}{{"left", lw, lh}, {"right", rw, rh}} {
			fw, err := mw.CreateFormFile(p.name, p.name+".pgm")
			if err != nil {
				t.Fatal(err)
			}
			if err := imgproc.WritePGM(fw, imgproc.NewImage(p.w, p.h)); err != nil {
				t.Fatal(err)
			}
		}
		mw.Close()
		resp, err := http.Post(ts.URL+"/v1/sessions/"+info.ID+"/frames",
			mw.FormDataContentType(), &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if status := post(48, 32, 48, 32); status != http.StatusOK {
		t.Fatalf("valid upload: %d", status)
	}
	// One pixel over the cap → 413 from the typed decode error.
	if status := post(49, 32, 49, 32); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize upload: %d, want 413", status)
	}
	// Geometry mismatch with the established 48x32 stream → 422.
	if status := post(32, 32, 32, 32); status != http.StatusUnprocessableEntity {
		t.Fatalf("mismatched upload: %d, want 422", status)
	}
	// Garbage body → 400.
	resp, err := http.Post(ts.URL+"/v1/sessions/"+info.ID+"/frames",
		"multipart/form-data; boundary=x", bytes.NewReader([]byte("not multipart")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload: %d, want 400", resp.StatusCode)
	}
}

// Graceful drain: everything admitted before Close completes with 200; new
// work during/after the drain gets 503.
func TestGracefulDrain(t *testing.T) {
	cfg := Config{QueueDepth: 16, Workers: 2, BatchSize: 2}
	cfg.Metrics = metrics.NewRegistry()
	s := New(quickMatcher(10*time.Millisecond), cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	info := createPresetSession(t, ts.URL, CreateSessionRequest{
		Preset: "sceneflow", W: 48, H: 32, Frames: 4, PW: 1,
	})

	const n = 6
	statuses := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _ := submit(t, ts.URL, info.ID)
			statuses <- status
		}()
	}
	// Let the flood land in the queue, then drain.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(statuses)
	for status := range statuses {
		if status != http.StatusOK {
			t.Fatalf("in-flight request got %d during graceful drain", status)
		}
	}
	if status, _ := submit(t, ts.URL, info.ID); status != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: %d, want 503", status)
	}
	if s.drained503.Load() == 0 {
		t.Fatal("drained-request accounting not incremented")
	}
}

func TestHealthzAndPprofGate(t *testing.T) {
	_, ts := testServer(t, Config{}, 0)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	// pprof is off by default.
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof mounted without EnablePprof")
	}

	cfgOn := Config{EnablePprof: true}
	_, tsOn := testServer(t, cfgOn, 0)
	resp, err = http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof gate on: %d", resp.StatusCode)
	}
}

// The micro-batcher must coalesce frames from distinct sessions into one
// dispatch round when they queue up together.
func TestBatcherCoalescesAcrossSessions(t *testing.T) {
	s, ts := testServer(t, Config{
		QueueDepth: 32, Workers: 4, BatchSize: 4, BatchWait: 20 * time.Millisecond,
	}, 5*time.Millisecond)

	var ids []string
	for i := 0; i < 4; i++ {
		info := createPresetSession(t, ts.URL, CreateSessionRequest{
			Preset: "sceneflow", W: 32, H: 24, Frames: 2, PW: 1, Seed: int64(i + 1),
		})
		ids = append(ids, info.ID)
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for f := 0; f < 2; f++ {
				if status, _ := submit(t, ts.URL, id); status != http.StatusOK {
					t.Errorf("status %d", status)
				}
			}
		}(id)
	}
	wg.Wait()
	if s.maxBatch.Load() < 2 {
		t.Fatalf("no cross-session batching observed: max batch %d", s.maxBatch.Load())
	}
	if got := fmt.Sprint(s.CountersSnapshot()["batch_mean_frames"]); got == "0" {
		t.Fatal("batch_mean_frames not populated")
	}
}

// TestBatcherFewerWorkersThanBatch is the regression test for a flush
// deadlock: with a single worker and a dispatch round wider than the done
// channel's capacity (== Workers), flush used to block handing out the
// round's third frame while the worker blocked handing in its completion
// notice. Eight concurrent sessions against one worker wedged permanently.
func TestBatcherFewerWorkersThanBatch(t *testing.T) {
	_, ts := testServer(t, Config{
		QueueDepth: 32, Workers: 1, BatchSize: 8, BatchWait: time.Millisecond,
	}, time.Millisecond)

	const sessions, frames = 8, 3
	var ids []string
	for i := 0; i < sessions; i++ {
		info := createPresetSession(t, ts.URL, CreateSessionRequest{
			Preset: "sceneflow", W: 32, H: 24, Frames: frames, PW: 1, Seed: int64(i + 1),
		})
		ids = append(ids, info.ID)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for f := 0; f < frames; f++ {
				if status, _ := submit(t, ts.URL, id); status != http.StatusOK {
					t.Errorf("status %d", status)
				}
			}
		}(id)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("batcher deadlocked: 8 sessions x 1 worker never completed")
	}
}

func TestMetricsBackendCostSection(t *testing.T) {
	cfg := Config{
		CostBackend: backends.NewSystolic(hw.Default(), hw.DefaultEnergy()),
		CostNonKey:  backends.DefaultNonKey(),
	}
	_, ts := testServer(t, cfg, 0)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	be, ok := doc["backend"].(map[string]any)
	if !ok {
		t.Fatalf("no backend section in /metrics: %v", doc)
	}
	if be["name"] != "systolic" {
		t.Fatalf("backend name %v, want systolic", be["name"])
	}
	// Default PW is 4 and the systolic model supports ISM, so the estimate
	// must be the amortized steady-state cost, not the raw DNN cost.
	if be["mode"] != "ism-pw4" {
		t.Fatalf("mode %v, want ism-pw4", be["mode"])
	}
	for _, k := range []string{"est_frame_ms", "est_fps", "est_frame_mj", "est_frame_gmacs"} {
		v, ok := be[k].(float64)
		if !ok || v <= 0 {
			t.Errorf("%s = %v, want positive number", k, be[k])
		}
	}
}

func TestMetricsBackendSectionOmittedByDefault(t *testing.T) {
	_, ts := testServer(t, Config{}, 0)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["backend"]; ok {
		t.Fatal("backend section present without a configured CostBackend")
	}
}
