package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/flow"
	"asv/internal/imgproc"
	"asv/internal/perception"
	"asv/internal/stereo"
)

// Session snapshot wire format (version 2).
//
// A snapshot is the complete, self-contained description of one serving
// session: its ISM pipeline options (including the fixed-point switch), its
// counters, its pinned geometry, the core.State images, the optional camera
// calibration and — for preset sessions — the scene recipe plus replay
// cursor (the synthetic frames are regenerated on restore, not shipped).
// Restoring a snapshot into any server running the same build resumes the
// stream bit-identically, which is what the cluster layer's shard
// migration, crash recovery and eviction-to-disk are built on (DESIGN.md
// §10).
//
// Layout, all integers little-endian:
//
//	[7]byte  magic "ASVSNAP"
//	uint8    version (2)
//	...      version-2 payload (see encode below)
//	uint32   IEEE CRC32 of everything before it (magic included)
//
// The format is strictly versioned: a decoder refuses unknown versions and
// any structural damage (truncation, bad lengths, oversized images,
// trailing bytes, CRC mismatch) with a *SnapshotError — never a panic —
// because snapshot bytes cross trust boundaries (disk, peer shards).
//
// Version history: v1 had no calibration block; v2 appends one (presence
// byte + 11 float64 fields) after the preset block. Decoders refuse other
// versions outright — a v1 snapshot cannot distinguish "uncalibrated" from
// "calibration lost", so it is rejected rather than silently upgraded
// (testdata/snapshot_v1.asvsnap pins that behavior).

// SnapshotVersion is the wire-format version this build writes.
const SnapshotVersion = 2

const snapshotMagic = "ASVSNAP"

// snapMaxString caps decoded string fields (ids, preset names).
const snapMaxString = 256

// SnapshotError is the typed failure for corrupt or unacceptable snapshot
// bytes. Decoding never panics: any malformed input yields one of these.
type SnapshotError struct{ msg string }

func (e *SnapshotError) Error() string { return "snapshot: " + e.msg }

func snapErrf(format string, args ...any) *SnapshotError {
	return &SnapshotError{msg: fmt.Sprintf(format, args...)}
}

// SessionSnapshot is the decoded form of a session snapshot.
type SessionSnapshot struct {
	ID          string
	PW          int
	Postprocess bool

	// Pipeline options that affect the stream's numerical results. A
	// restored session must recompute exactly what the source would have,
	// so the snapshot carries them instead of trusting the destination
	// server's template.
	FlowScale int
	RefineR   int
	BM        stereo.BMOptions
	Flow      flow.Options
	Adaptive  *core.AdaptiveConfig

	// Frames and KeyFrames mirror the session's completed-frame counters.
	Frames, KeyFrames int64
	// W, H is the pinned frame geometry (0,0 before the first frame).
	W, H int

	// State is the core pipeline's temporal state (frame counters plus the
	// previous frame pair and disparity; images nil before the first key).
	State core.State

	// Preset, when non-nil, records a server-side synthetic source: the
	// scene recipe and the replay cursor. The frames themselves are
	// regenerated deterministically on restore.
	Preset *PresetSnapshot

	// Calib, when non-nil, is the session's camera model. It must migrate
	// with the session: a restored session keeps rectifying uploads and
	// serving depth/cloud formats exactly as the source shard did.
	Calib *perception.Calibration
}

// PresetSnapshot is the serialized form of a preset frame source.
type PresetSnapshot struct {
	Name  string
	Scene dataset.SceneConfig
	Next  int64
}

// --- encoding -----------------------------------------------------------

type snapEncoder struct{ buf []byte }

func (e *snapEncoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *snapEncoder) bool(v bool)  { e.u8(map[bool]uint8{false: 0, true: 1}[v]) }
func (e *snapEncoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *snapEncoder) i64(v int64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v)) }
func (e *snapEncoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *snapEncoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *snapEncoder) image(im *imgproc.Image) {
	if im == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u32(uint32(im.W))
	e.u32(uint32(im.H))
	for _, px := range im.Pix {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(px))
	}
}

// EncodeSnapshot serializes snap into the versioned binary format.
func EncodeSnapshot(snap *SessionSnapshot) []byte {
	e := &snapEncoder{buf: make([]byte, 0, snapshotSizeHint(snap))}
	e.buf = append(e.buf, snapshotMagic...)
	e.u8(SnapshotVersion)

	e.str(snap.ID)
	e.u32(uint32(snap.PW))
	e.bool(snap.Postprocess)

	e.u32(uint32(snap.FlowScale))
	e.u32(uint32(snap.RefineR))
	e.u32(uint32(snap.BM.BlockR))
	e.u32(uint32(snap.BM.MaxDisp))
	e.bool(snap.BM.Subpixel)
	e.f64(snap.BM.UniqRatio)
	e.u32(uint32(snap.BM.Census))
	e.bool(snap.BM.Fixed)
	e.u32(uint32(snap.Flow.Levels))
	e.f64(snap.Flow.PyrSigma)
	e.f64(snap.Flow.PolySigma)
	e.u32(uint32(snap.Flow.PolyR))
	e.f64(snap.Flow.WinSigma)
	e.u32(uint32(snap.Flow.Iters))
	if snap.Adaptive != nil {
		e.u8(1)
		e.u32(uint32(snap.Adaptive.MaxWindow))
		e.f64(snap.Adaptive.MotionThresholdPx)
	} else {
		e.u8(0)
	}

	e.i64(snap.Frames)
	e.i64(snap.KeyFrames)
	e.u32(uint32(snap.W))
	e.u32(uint32(snap.H))

	e.u32(uint32(snap.State.FrameIdx))
	e.u32(uint32(snap.State.SinceKey))
	e.bool(snap.State.NeedKey)
	e.image(snap.State.PrevLeft)
	e.image(snap.State.PrevRight)
	e.image(snap.State.PrevDisp)

	if snap.Preset != nil {
		e.u8(1)
		e.str(snap.Preset.Name)
		sc := snap.Preset.Scene
		e.u32(uint32(sc.W))
		e.u32(uint32(sc.H))
		e.u32(uint32(sc.FrameCount))
		e.u32(uint32(sc.Layers))
		e.f64(sc.MinDisp)
		e.f64(sc.MaxDisp)
		e.f64(sc.MaxVel)
		e.f64(sc.MaxDispVel)
		e.bool(sc.Ground)
		e.f64(sc.Noise)
		e.f64(sc.RightGain)
		e.i64(sc.Seed)
		e.i64(snap.Preset.Next)
	} else {
		e.u8(0)
	}

	if snap.Calib != nil {
		e.u8(1)
		c := snap.Calib
		e.f64(c.Fx)
		e.f64(c.Fy)
		e.f64(c.Cx)
		e.f64(c.Cy)
		e.f64(c.BaselineM)
		for _, a := range c.LeftRPY {
			e.f64(a)
		}
		for _, a := range c.RightRPY {
			e.f64(a)
		}
	} else {
		e.u8(0)
	}

	e.u32(crc32.ChecksumIEEE(e.buf))
	return e.buf
}

func snapshotSizeHint(snap *SessionSnapshot) int {
	n := 512
	for _, im := range []*imgproc.Image{snap.State.PrevLeft, snap.State.PrevRight, snap.State.PrevDisp} {
		if im != nil {
			n += 9 + 4*len(im.Pix)
		}
	}
	return n
}

// --- decoding -----------------------------------------------------------

type snapDecoder struct {
	buf       []byte
	pos       int
	maxPixels int
}

func (d *snapDecoder) need(n int, what string) error {
	if d.pos+n > len(d.buf) {
		return snapErrf("truncated reading %s (need %d bytes at offset %d of %d)", what, n, d.pos, len(d.buf))
	}
	return nil
}

func (d *snapDecoder) u8(what string) (uint8, error) {
	if err := d.need(1, what); err != nil {
		return 0, err
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

func (d *snapDecoder) bool(what string) (bool, error) {
	v, err := d.u8(what)
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, snapErrf("bad boolean %d for %s", v, what)
	}
	return v == 1, nil
}

func (d *snapDecoder) u32(what string) (uint32, error) {
	if err := d.need(4, what); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

// count decodes a u32 that must fit in [0, maxInt] for counting uses.
func (d *snapDecoder) count(what string, max int) (int, error) {
	v, err := d.u32(what)
	if err != nil {
		return 0, err
	}
	if int64(v) > int64(max) {
		return 0, snapErrf("%s %d exceeds the cap %d", what, v, max)
	}
	return int(v), nil
}

func (d *snapDecoder) i64(what string) (int64, error) {
	if err := d.need(8, what); err != nil {
		return 0, err
	}
	v := int64(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return v, nil
}

func (d *snapDecoder) f64(what string) (float64, error) {
	if err := d.need(8, what); err != nil {
		return 0, err
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, snapErrf("non-finite value for %s", what)
	}
	return v, nil
}

func (d *snapDecoder) str(what string) (string, error) {
	n, err := d.count(what+" length", snapMaxString)
	if err != nil {
		return "", err
	}
	if err := d.need(n, what); err != nil {
		return "", err
	}
	s := string(d.buf[d.pos : d.pos+n])
	d.pos += n
	return s, nil
}

func (d *snapDecoder) image(what string) (*imgproc.Image, error) {
	present, err := d.u8(what + " presence")
	if err != nil {
		return nil, err
	}
	if present == 0 {
		return nil, nil
	}
	if present != 1 {
		return nil, snapErrf("bad presence byte %d for %s", present, what)
	}
	w, err := d.count(what+" width", 1<<15)
	if err != nil {
		return nil, err
	}
	h, err := d.count(what+" height", 1<<15)
	if err != nil {
		return nil, err
	}
	if w < 1 || h < 1 {
		return nil, snapErrf("%s size %dx%d is empty", what, w, h)
	}
	if w*h > d.maxPixels {
		return nil, snapErrf("%s size %dx%d exceeds the %d-pixel cap", what, w, h, d.maxPixels)
	}
	if err := d.need(4*w*h, what+" pixels"); err != nil {
		return nil, err
	}
	im := imgproc.NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.buf[d.pos+4*i:]))
	}
	d.pos += 4 * w * h
	return im, nil
}

// DecodeSnapshot parses and structurally validates snapshot bytes. Images
// larger than maxPixels (per image) are refused, which bounds the memory a
// hostile snapshot can make the decoder allocate. Semantic validation
// against a particular server's limits happens at restore time.
func DecodeSnapshot(data []byte, maxPixels int) (*SessionSnapshot, error) {
	if maxPixels < 1 {
		maxPixels = imgproc.MaxDecodePixels
	}
	if len(data) < len(snapshotMagic)+1+4 {
		return nil, snapErrf("%d bytes is shorter than any snapshot", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, snapErrf("bad magic %q", data[:len(snapshotMagic)])
	}
	if v := data[len(snapshotMagic)]; v != SnapshotVersion {
		return nil, snapErrf("unsupported version %d (this build reads %d)", v, SnapshotVersion)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, snapErrf("checksum mismatch (computed %08x, recorded %08x)", got, want)
	}

	d := &snapDecoder{buf: body, pos: len(snapshotMagic) + 1, maxPixels: maxPixels}
	snap := &SessionSnapshot{}
	var err error
	if snap.ID, err = d.str("session id"); err != nil {
		return nil, err
	}
	if !validSessionID(snap.ID) {
		return nil, snapErrf("invalid session id %q", snap.ID)
	}
	if snap.PW, err = d.count("pw", 64); err != nil {
		return nil, err
	}
	if snap.PW < 1 {
		return nil, snapErrf("pw %d out of range", snap.PW)
	}
	if snap.Postprocess, err = d.bool("postprocess"); err != nil {
		return nil, err
	}

	if snap.FlowScale, err = d.count("flow scale", 64); err != nil {
		return nil, err
	}
	if snap.RefineR, err = d.count("refine radius", 256); err != nil {
		return nil, err
	}
	if snap.BM.BlockR, err = d.count("bm block radius", 256); err != nil {
		return nil, err
	}
	if snap.BM.MaxDisp, err = d.count("bm max disparity", 1<<12); err != nil {
		return nil, err
	}
	if snap.BM.Subpixel, err = d.bool("bm subpixel"); err != nil {
		return nil, err
	}
	if snap.BM.UniqRatio, err = d.f64("bm uniqueness ratio"); err != nil {
		return nil, err
	}
	if snap.BM.Census, err = d.count("bm census radius", 256); err != nil {
		return nil, err
	}
	if snap.BM.Fixed, err = d.bool("bm fixed-point"); err != nil {
		return nil, err
	}
	if snap.Flow.Levels, err = d.count("flow levels", 64); err != nil {
		return nil, err
	}
	if snap.Flow.PyrSigma, err = d.f64("flow pyramid sigma"); err != nil {
		return nil, err
	}
	if snap.Flow.PolySigma, err = d.f64("flow poly sigma"); err != nil {
		return nil, err
	}
	if snap.Flow.PolyR, err = d.count("flow poly radius", 256); err != nil {
		return nil, err
	}
	if snap.Flow.WinSigma, err = d.f64("flow window sigma"); err != nil {
		return nil, err
	}
	if snap.Flow.Iters, err = d.count("flow iterations", 1024); err != nil {
		return nil, err
	}
	hasAdaptive, err := d.bool("adaptive presence")
	if err != nil {
		return nil, err
	}
	if hasAdaptive {
		var a core.AdaptiveConfig
		if a.MaxWindow, err = d.count("adaptive max window", 1<<10); err != nil {
			return nil, err
		}
		if a.MotionThresholdPx, err = d.f64("adaptive motion threshold"); err != nil {
			return nil, err
		}
		if a.MaxWindow < 1 || a.MotionThresholdPx <= 0 {
			return nil, snapErrf("adaptive config (window %d, threshold %g) out of range", a.MaxWindow, a.MotionThresholdPx)
		}
		snap.Adaptive = &a
	}

	if snap.Frames, err = d.i64("frame counter"); err != nil {
		return nil, err
	}
	if snap.KeyFrames, err = d.i64("key-frame counter"); err != nil {
		return nil, err
	}
	if snap.Frames < 0 || snap.KeyFrames < 0 || snap.KeyFrames > snap.Frames {
		return nil, snapErrf("counters (%d frames, %d key) are inconsistent", snap.Frames, snap.KeyFrames)
	}
	if snap.W, err = d.count("geometry width", 1<<15); err != nil {
		return nil, err
	}
	if snap.H, err = d.count("geometry height", 1<<15); err != nil {
		return nil, err
	}

	if snap.State.FrameIdx, err = d.count("state frame index", 1<<31-1); err != nil {
		return nil, err
	}
	if snap.State.SinceKey, err = d.count("state since-key", 1<<31-1); err != nil {
		return nil, err
	}
	if snap.State.NeedKey, err = d.bool("state need-key"); err != nil {
		return nil, err
	}
	if snap.State.PrevLeft, err = d.image("previous left"); err != nil {
		return nil, err
	}
	if snap.State.PrevRight, err = d.image("previous right"); err != nil {
		return nil, err
	}
	if snap.State.PrevDisp, err = d.image("previous disparity"); err != nil {
		return nil, err
	}

	hasPreset, err := d.bool("preset presence")
	if err != nil {
		return nil, err
	}
	if hasPreset {
		ps := &PresetSnapshot{}
		if ps.Name, err = d.str("preset name"); err != nil {
			return nil, err
		}
		if ps.Scene.W, err = d.count("scene width", 1<<15); err != nil {
			return nil, err
		}
		if ps.Scene.H, err = d.count("scene height", 1<<15); err != nil {
			return nil, err
		}
		if ps.Scene.FrameCount, err = d.count("scene frame count", 1<<20); err != nil {
			return nil, err
		}
		if ps.Scene.Layers, err = d.count("scene layers", 1<<10); err != nil {
			return nil, err
		}
		if ps.Scene.MinDisp, err = d.f64("scene min disparity"); err != nil {
			return nil, err
		}
		if ps.Scene.MaxDisp, err = d.f64("scene max disparity"); err != nil {
			return nil, err
		}
		if ps.Scene.MaxVel, err = d.f64("scene max velocity"); err != nil {
			return nil, err
		}
		if ps.Scene.MaxDispVel, err = d.f64("scene max disparity velocity"); err != nil {
			return nil, err
		}
		if ps.Scene.Ground, err = d.bool("scene ground plane"); err != nil {
			return nil, err
		}
		if ps.Scene.Noise, err = d.f64("scene noise"); err != nil {
			return nil, err
		}
		if ps.Scene.RightGain, err = d.f64("scene right gain"); err != nil {
			return nil, err
		}
		if ps.Scene.Seed, err = d.i64("scene seed"); err != nil {
			return nil, err
		}
		if ps.Next, err = d.i64("preset cursor"); err != nil {
			return nil, err
		}
		if ps.Next < 0 {
			return nil, snapErrf("negative preset cursor %d", ps.Next)
		}
		if ps.Scene.W < 16 || ps.Scene.H < 16 || ps.Scene.FrameCount < 1 ||
			ps.Scene.MinDisp < 0 || ps.Scene.MaxDisp < ps.Scene.MinDisp {
			return nil, snapErrf("preset scene config out of range (%dx%d, %d frames, disparity [%g, %g])",
				ps.Scene.W, ps.Scene.H, ps.Scene.FrameCount, ps.Scene.MinDisp, ps.Scene.MaxDisp)
		}
		snap.Preset = ps
	}

	hasCalib, err := d.bool("calibration presence")
	if err != nil {
		return nil, err
	}
	if hasCalib {
		c := &perception.Calibration{}
		if c.Fx, err = d.f64("calibration fx"); err != nil {
			return nil, err
		}
		if c.Fy, err = d.f64("calibration fy"); err != nil {
			return nil, err
		}
		if c.Cx, err = d.f64("calibration cx"); err != nil {
			return nil, err
		}
		if c.Cy, err = d.f64("calibration cy"); err != nil {
			return nil, err
		}
		if c.BaselineM, err = d.f64("calibration baseline"); err != nil {
			return nil, err
		}
		for i := range c.LeftRPY {
			if c.LeftRPY[i], err = d.f64("calibration left rpy"); err != nil {
				return nil, err
			}
		}
		for i := range c.RightRPY {
			if c.RightRPY[i], err = d.f64("calibration right rpy"); err != nil {
				return nil, err
			}
		}
		if err := c.Validate(); err != nil {
			return nil, snapErrf("%v", err)
		}
		snap.Calib = c
	}

	if d.pos != len(body) {
		return nil, snapErrf("%d trailing bytes after the payload", len(body)-d.pos)
	}
	return snap, nil
}
