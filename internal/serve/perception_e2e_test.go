package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"strconv"
	"testing"

	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/imgproc"
	"asv/internal/perception"
	"asv/internal/rectify"
)

// postRawPFM uploads a raw stereo pair as PFM multipart (exact float32
// round trip, unlike PGM) and returns the response.
func postRawPFM(t *testing.T, base, id, query string, left, right *imgproc.Image) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, p := range []struct {
		name string
		im   *imgproc.Image
	}{{"left", left}, {"right", right}} {
		fw, err := mw.CreateFormFile(p.name, p.name+".pfm")
		if err != nil {
			t.Fatal(err)
		}
		if err := imgproc.WritePFM(fw, p.im); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sessions/"+id+"/frames"+query,
		mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func createCalibratedSession(t *testing.T, base string, req CreateSessionRequest, calib *perception.Calibration) SessionInfo {
	t.Helper()
	req.Calibration = calib.EncodeJSON()
	info := createPresetSession(t, base, req)
	if !info.Calibrated {
		t.Fatal("session info does not report calibrated")
	}
	return info
}

// TestCalibratedServingMatchesOfflineRectification is the tentpole's
// acceptance oracle: serving a RAW (misaligned) pair into a calibrated
// session must return disparities bit-identical to rectifying the pair
// offline with rectify.RectifyPair and serving the rectified pair — i.e.
// the in-serving rectification is exactly the offline one. The depth and
// cloud responses must likewise match offline triangulation bit for bit.
func TestCalibratedServingMatchesOfflineRectification(t *testing.T) {
	const (
		wPx, hPx = 64, 48
		nFrames  = 5
		pw       = 2
		seed     = 42
	)

	calib := perception.DefaultCalibration(wPx, hPx)
	calib.LeftRPY = [3]float64{0.004, -0.003, 0.002}
	calib.RightRPY = [3]float64{-0.002, 0.005, -0.003}

	cfg := DefaultConfig()
	cfg.Workers = 2
	_, ts := testServer(t, cfg, 0)
	info := createCalibratedSession(t, ts.URL, CreateSessionRequest{PW: pw}, calib)

	// The "world" is a rectified synthetic sequence; Misalign warps it back
	// into what each physical camera would have captured.
	scene := dataset.KITTILike(wPx, hPx, 1, seed)[0]
	scene.FrameCount = nFrames
	seq := dataset.Generate(scene)
	ocfg := cfg.withDefaults().Pipeline
	ocfg.PW = pw
	oracle := core.New(quickMatcher(0), ocfg)

	for i := 0; i < nFrames; i++ {
		fr := seq.Frames[i]
		rawL := rectify.Misalign(fr.Left, calib.Intrinsics(), calib.RotLeft())
		rawR := rectify.Misalign(fr.Right, calib.Intrinsics(), calib.RotRight())

		// Offline path: rectify first, then match.
		recL, recR := rectify.RectifyPair(rawL, rawR, calib.Intrinsics(), calib.RotLeft(), calib.RotRight())
		want := oracle.Process(recL, recR)

		resp := postRawPFM(t, ts.URL, info.ID, "?disparity=pfm", rawL, rawR)
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("frame %d: status %d err %v: %s", i, resp.StatusCode, err, body)
		}
		got, err := imgproc.ReadPFM(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("frame %d: decoding served disparity: %v", i, err)
		}
		for p := range got.Pix {
			if got.Pix[p] != want.Disparity.Pix[p] {
				t.Fatalf("frame %d: served disparity diverges from offline rectification at pixel %d: %g vs %g",
					i, p, got.Pix[p], want.Disparity.Pix[p])
			}
		}
	}
}

// TestDepthAndCloudResponses drives one calibrated preset session through
// every response format and checks each against offline perception on the
// served disparity.
func TestDepthAndCloudResponses(t *testing.T) {
	const wPx, hPx = 48, 32
	calib := perception.DefaultCalibration(wPx, hPx)

	srv, ts := testServer(t, DefaultConfig(), 0)
	info := createCalibratedSession(t, ts.URL, CreateSessionRequest{
		PW: 2, Preset: "sceneflow", W: wPx, H: hPx, Frames: 8, Seed: 3,
	}, calib)

	get := func(query string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sessions/"+info.ID+"/frames"+query, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d err %v: %s", query, resp.StatusCode, err, body)
		}
		return resp, body
	}

	// Frame 0: the plain disparity format still works on a calibrated
	// session.
	_, dispBytes := get("?disparity=pfm")
	if _, err := imgproc.ReadPFM(bytes.NewReader(dispBytes)); err != nil {
		t.Fatal(err)
	}

	// Frame 1 as metric depth: right geometry, nonnegative everywhere
	// (invalid disparities map to 0), and not entirely invalid.
	_, depthBytes := get("?depth=pfm")
	depth, err := imgproc.ReadPFM(bytes.NewReader(depthBytes))
	if err != nil {
		t.Fatal(err)
	}
	if depth.W != wPx || depth.H != hPx {
		t.Fatalf("depth geometry %dx%d", depth.W, depth.H)
	}
	valid := 0
	for _, z := range depth.Pix {
		if z < 0 {
			t.Fatal("negative depth")
		}
		if z > 0 {
			valid++
		}
	}
	if valid == 0 {
		t.Fatal("depth map is entirely invalid")
	}

	// Frame 2 as binary cloud: decodes through the codec, grid matches,
	// and the stats headers agree with the body.
	resp, cloudBytes := get("?cloud=bin")
	cl, err := perception.DecodeCloud(cloudBytes, 0)
	if err != nil {
		t.Fatalf("decoding served cloud: %v", err)
	}
	if cl.W != wPx || cl.H != hPx {
		t.Fatalf("cloud grid %dx%d", cl.W, cl.H)
	}
	if n, _ := strconv.Atoi(resp.Header.Get("X-ASV-Points")); n != len(cl.Points) {
		t.Fatalf("X-ASV-Points %d, body has %d", n, len(cl.Points))
	}
	if len(cl.Points) == 0 {
		t.Fatal("served cloud is empty")
	}
	if resp.Header.Get("X-ASV-Depth-P50") == "" || resp.Header.Get("X-ASV-Depth-P90") == "" {
		t.Fatal("depth percentile headers missing")
	}

	// Frame 3 as ASCII PLY, frame 4 as binary PLY: header shape only (the
	// writers are pinned in internal/perception).
	_, ply := get("?cloud=ply")
	if !bytes.HasPrefix(ply, []byte("ply\nformat ascii 1.0\n")) {
		t.Fatalf("ascii PLY header: %q", ply[:24])
	}
	_, plyb := get("?cloud=plybin")
	if !bytes.HasPrefix(plyb, []byte("ply\nformat binary_little_endian 1.0\n")) {
		t.Fatal("binary PLY header wrong")
	}

	// Counters moved.
	c := srv.CountersSnapshot()
	if c["depth_maps_served"].(int64) != 1 || c["clouds_served"].(int64) != 3 {
		t.Fatalf("perception counters: depth=%v clouds=%v", c["depth_maps_served"], c["clouds_served"])
	}
	if c["cloud_points"].(int64) < int64(len(cl.Points)) {
		t.Fatalf("cloud_points %v", c["cloud_points"])
	}

	// The calibration survives snapshot migration: snapshot the session,
	// restore it into a fresh server, and the restored session still serves
	// depth.
	snap := getSnapshot(t, ts.URL, info.ID)
	_, ts2 := testServer(t, DefaultConfig(), 0)
	if code, body := putSnapshot(t, ts2.URL, info.ID, snap); code != http.StatusOK {
		t.Fatalf("PUT snapshot: %d: %s", code, body)
	}
	resp2, err := http.Post(ts2.URL+"/v1/sessions/"+info.ID+"/frames?depth=pfm", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("depth after migration: %d: %s", resp2.StatusCode, b2)
	}
	if !bytes.HasPrefix(b2, []byte("Pf")) {
		t.Fatal("migrated depth reply is not PFM")
	}
}

// TestReplyFormatValidation pins the 400 class: bad format strings,
// conflicting formats, invalid calibration JSON, and depth/cloud against an
// uncalibrated session are all refused before admission.
func TestReplyFormatValidation(t *testing.T) {
	_, ts := testServer(t, DefaultConfig(), 0)
	plain := createPresetSession(t, ts.URL, CreateSessionRequest{
		Preset: "sceneflow", W: 32, H: 24, Frames: 2, PW: 1,
	})

	post := func(url string, body []byte) int {
		t.Helper()
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	frames := ts.URL + "/v1/sessions/" + plain.ID + "/frames"
	for _, q := range []string{"?depth=pfm", "?cloud=ply", "?cloud=nope", "?disparity=png", "?disparity=pfm&depth=pfm"} {
		if code := post(frames+q, nil); code != http.StatusBadRequest {
			t.Errorf("%s on uncalibrated session: %d, want 400", q, code)
		}
	}

	// Invalid calibration at create time → 400 (typed perception error).
	req, _ := json.Marshal(map[string]any{
		"preset": "sceneflow", "w": 32, "h": 24,
		"calibration": map[string]any{"fx": -1, "fy": 10, "cx": 1, "cy": 1, "baseline_m": 0.1},
	})
	if code := post(ts.URL+"/v1/sessions", req); code != http.StatusBadRequest {
		t.Errorf("invalid calibration: %d, want 400", code)
	}
}
