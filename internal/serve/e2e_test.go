package serve

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"testing"

	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/imgproc"
)

// TestServeMatchesSerialOracle is the end-to-end correctness gate for the
// serving layer: a preset session driven over HTTP must produce, frame for
// frame, exactly the disparities and key/propagated decisions that the
// serial core.Pipeline produces on the identical generated inputs. Any
// divergence means the batcher broke per-session ordering or the serving
// path drifted from the ISM schedule.
func TestServeMatchesSerialOracle(t *testing.T) {
	const (
		wPx, hPx = 96, 64
		nFrames  = 9
		pw       = 3
		seed     = 1234
	)

	cfg := DefaultConfig()
	cfg.Workers = 3
	cfg.BatchSize = 4
	srv, ts := testServer(t, cfg, 0)
	_ = srv

	info := createPresetSession(t, ts.URL, CreateSessionRequest{
		PW: pw, Preset: "sceneflow", W: wPx, H: hPx, Frames: nFrames, Seed: seed,
	})

	// The oracle replays the same synthetic sequence through a serial
	// pipeline built exactly like the server builds the session's: the
	// server's base Pipeline config with the session's PW.
	scene := dataset.SceneFlowLike(wPx, hPx, nFrames, seed)[0]
	seq := dataset.Generate(scene)
	ocfg := cfg.withDefaults().Pipeline
	ocfg.PW = pw
	oracle := core.New(quickMatcher(0), ocfg)

	for i := 0; i < nFrames; i++ {
		want := oracle.Process(seq.Frames[i].Left, seq.Frames[i].Right)

		resp, err := http.Post(ts.URL+"/v1/sessions/"+info.ID+"/frames?disparity=pfm", "", nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("frame %d: status %d err %v: %s", i, resp.StatusCode, err, body)
		}

		if got := resp.Header.Get("X-ASV-Frame"); got != strconv.Itoa(i) {
			t.Fatalf("frame %d: server reports frame index %s", i, got)
		}
		isKey, _ := strconv.ParseBool(resp.Header.Get("X-ASV-Is-Key"))
		if isKey != want.IsKey {
			t.Fatalf("frame %d: is_key=%v, oracle says %v", i, isKey, want.IsKey)
		}
		if wantKey := i%pw == 0; isKey != wantKey {
			t.Fatalf("frame %d: is_key=%v, cadence requires %v", i, isKey, wantKey)
		}
		macs, _ := strconv.ParseInt(resp.Header.Get("X-ASV-MACs"), 10, 64)
		if macs != want.MACs {
			t.Fatalf("frame %d: macs=%d, oracle says %d", i, macs, want.MACs)
		}

		got, err := imgproc.ReadPFM(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("frame %d: decoding PFM reply: %v", i, err)
		}
		if got.W != want.Disparity.W || got.H != want.Disparity.H {
			t.Fatalf("frame %d: disparity %dx%d, oracle %dx%d",
				i, got.W, got.H, want.Disparity.W, want.Disparity.H)
		}
		for p := range got.Pix {
			if got.Pix[p] != want.Disparity.Pix[p] {
				t.Fatalf("frame %d: disparity diverges at pixel %d: served %g, oracle %g",
					i, p, got.Pix[p], want.Disparity.Pix[p])
			}
		}
	}
}
