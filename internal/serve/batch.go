package serve

import (
	"fmt"
	"sync"
	"time"

	"asv/internal/core"
	"asv/internal/imgproc"
	"asv/internal/pipeline"
	"asv/internal/quality"
	"asv/internal/stereo"
)

// workItem is one admitted frame waiting for (or undergoing) processing.
// For preset sessions left/right are nil and the worker draws the next
// synthetic pair instead.
type workItem struct {
	sess        *session
	left, right *imgproc.Image
	enqueued    time.Time
	started     time.Time
	reply       chan frameReply
	// wantLeft asks the worker to capture the (rectified) left view in the
	// reply; cloud responses use it as the points' intensity channel.
	wantLeft bool
}

// frameReply is what the worker hands back to the blocked HTTP handler.
type frameReply struct {
	res       core.Result
	frame     int // per-session frame index (0-based)
	rung      int // ladder rung the frame was served at (0 = full fidelity)
	stats     stereo.DispStats
	queueWait time.Duration
	compute   time.Duration
	err       error
	// left is the rectified left view of this frame, captured only when the
	// work item asked for it (cloud intensity).
	left *imgproc.Image
}

// batcher is the dynamic micro-batcher between the admission queue and the
// worker pool. It coalesces queued frames across sessions into dispatch
// rounds of up to BatchSize frames — at most one frame per session per
// round, which is both the batching policy and the mechanism that keeps
// each session's ISM state machine strictly single-threaded and in order.
// A partially filled round is flushed after BatchWait so a lone client
// never waits for strangers.
//
// All batcher state is confined to the run goroutine; the only shared
// surfaces are the admit/done channels and the server's atomic counters.
type batcher struct {
	s *Server

	admit chan *workItem // bounded admission queue (handlers send, batcher receives)
	work  chan *workItem // dispatch to workers
	done  chan *session  // worker → batcher completion notices
	quit  chan struct{}  // closed by Close after admit is closed

	finished sync.WaitGroup // run + workers
}

func newBatcher(s *Server) *batcher {
	b := &batcher{
		s:     s,
		admit: make(chan *workItem, s.cfg.QueueDepth),
		work:  make(chan *workItem),
		done:  make(chan *session, s.cfg.Workers),
	}
	b.finished.Add(1 + s.cfg.Workers)
	go b.run()
	for w := 0; w < s.cfg.Workers; w++ {
		go b.worker()
	}
	return b
}

// run is the batcher goroutine. Invariants:
//   - pending[s] holds s's admitted frames in FIFO order;
//   - a session is in ready iff it has pending frames and none in flight;
//   - busy[s] marks an in-flight frame (at most one per session).
func (b *batcher) run() {
	defer b.finished.Done()
	defer close(b.work)

	pending := make(map[*session][]*workItem)
	busy := make(map[*session]bool)
	var ready []*session // FIFO across sessions

	var flushTimer *time.Timer
	var flushC <-chan time.Time
	stopTimer := func() {
		if flushTimer != nil {
			flushTimer.Stop()
			flushTimer, flushC = nil, nil
		}
	}

	admit := b.admit
	for {
		// Flush a round when it is full, or when the wait timer fired
		// (flushC is nil while nothing is ready).
		if len(ready) >= b.s.cfg.BatchSize {
			b.flush(&ready, pending, busy)
			stopTimer()
		}
		if len(ready) > 0 && flushC == nil {
			flushTimer = time.NewTimer(b.s.cfg.BatchWait)
			flushC = flushTimer.C
		}

		select {
		case it, ok := <-admit:
			if !ok {
				// Draining: no new work will arrive. Keep dispatching what
				// is queued until every session runs dry, then stop the
				// workers by closing b.work (via the deferred close).
				admit = nil
				if len(pending) == 0 && len(busy) == 0 {
					stopTimer()
					return
				}
				continue
			}
			q := pending[it.sess]
			pending[it.sess] = append(q, it)
			if !busy[it.sess] && len(q) == 0 {
				ready = append(ready, it.sess)
			}

		case <-flushC:
			flushTimer, flushC = nil, nil
			b.flush(&ready, pending, busy)

		case sess := <-b.done:
			delete(busy, sess)
			if len(pending[sess]) > 0 {
				ready = append(ready, sess)
			} else if admit == nil && len(pending) == 0 && len(busy) == 0 && len(ready) == 0 {
				stopTimer()
				return
			}
		}
	}
}

// flush dispatches one round: the head frame of up to BatchSize ready
// sessions. Rounds with more than one frame are the batching win — their
// frames run concurrently on the worker pool.
func (b *batcher) flush(ready *[]*session, pending map[*session][]*workItem, busy map[*session]bool) {
	n := len(*ready)
	if n == 0 {
		return
	}
	if n > b.s.cfg.BatchSize {
		n = b.s.cfg.BatchSize
	}
	round := (*ready)[:n]
	*ready = append([]*session(nil), (*ready)[n:]...)

	b.s.batches.Add(1)
	b.s.batchedFrames.Add(int64(n))
	for {
		cur := b.s.maxBatch.Load()
		if int64(n) <= cur || b.s.maxBatch.CompareAndSwap(cur, int64(n)) {
			break
		}
	}

	for _, sess := range round {
		q := pending[sess]
		it := q[0]
		if len(q) == 1 {
			delete(pending, sess)
		} else {
			pending[sess] = q[1:]
		}
		busy[sess] = true
		it.started = time.Now()
		// Dispatch without ever refusing completion notices: with fewer
		// workers than the round is wide, a plain send here deadlocks — every
		// worker blocks handing in b.done (capacity Workers) while flush
		// blocks handing out b.work. Draining b.done while waiting keeps the
		// workers' hand-in path clear no matter the worker/batch ratio.
	dispatch:
		for {
			select {
			case b.work <- it:
				break dispatch
			case finished := <-b.done:
				delete(busy, finished)
				if len(pending[finished]) > 0 {
					*ready = append(*ready, finished)
				}
			}
		}
	}
}

// worker executes dispatched frames. Each frame runs the full ISM step for
// its session — key-frame matching or concurrent L/R flow + propagation +
// refinement — via the shared pipeline.ProcessFrame, so the serving path
// and the batch streaming runtime are the same code observing the same
// metric stages.
func (b *batcher) worker() {
	defer b.finished.Done()
	for it := range b.work {
		b.process(it)
		b.done <- it.sess
	}
}

func (b *batcher) process(it *workItem) {
	defer it.sess.pendingFrames.Add(-1)
	defer b.s.inflight.Add(-1)
	rep := frameReply{queueWait: it.started.Sub(it.enqueued)}
	if b.s.cfg.Metrics != nil {
		b.s.cfg.Metrics.Stage("queue").Observe(rep.queueWait)
	}

	defer func() {
		// A panic in a kernel must not take the server down; it becomes a
		// 500 on this one request. The session's pipeline state is intact
		// because core commits state only after a frame fully succeeds.
		if r := recover(); r != nil {
			rep.err = fmt.Errorf("internal: frame processing panicked: %v", r)
			it.reply <- rep
		}
	}()

	checkpoint := b.runFrame(it, &rep)
	if rep.err != nil {
		it.reply <- rep
		return
	}
	// The checkpoint is encoded inside the run lock (consistent state),
	// written here outside it, and only then is the reply sent: when the
	// cadence is every frame, a client that has seen frame N's reply is
	// guaranteed the spill store holds frame N's state — the invariant the
	// chaos recovery path depends on.
	if checkpoint != nil {
		b.s.writeSnapshotFile(it.sess.id, checkpoint)
	}
	it.reply <- rep
}

// runFrame executes the ISM step under the session's run lock, which
// serializes the state mutation against snapshot encoding. Workers never
// contend on it (the batcher dispatches at most one frame per session), so
// in the steady state it is uncontended. The deferred unlock also covers
// kernel panics, which process turns into a 500. Returns the encoded
// checkpoint when one is due.
func (b *batcher) runFrame(it *workItem, rep *frameReply) (checkpoint []byte) {
	it.sess.runMu.Lock()
	defer it.sess.runMu.Unlock()

	left, right := it.left, it.right
	if left == nil {
		left, right = it.sess.preset.frame()
	}
	if err := it.sess.checkGeometry(left, right); err != nil {
		rep.err = badFrameError{err}
		return nil
	}
	// Calibrated sessions rectify every incoming pair before matching —
	// the same rectify.RectifyPair an offline pipeline would run, so the
	// served disparities are bit-identical to rectifying first and serving
	// the rectified pair. Already-rectified rigs (zero rotations) skip the
	// identity warp.
	if calib := it.sess.calib; calib != nil && !calib.Rectified() {
		tr := time.Now()
		left, right = calib.RectifyPair(left, right)
		if b.s.cfg.Metrics != nil {
			b.s.cfg.Metrics.Stage("rectify").Observe(time.Since(tr))
		}
	}
	if it.wantLeft {
		rep.left = left
	}

	// Rung choice (DESIGN.md §12). Gold sessions run the unchanged rung-0
	// path — pipeline.ProcessFrame with the server's matcher, bit-identical
	// to the pre-ladder server. Best-effort sessions ask the controller for
	// the cheapest rung predicted to meet their deadline at the current
	// queue depth and run it through quality.Step (the same executor the
	// offline pricer scores, so quality_ladder.json prices what is served).
	rung := 0
	if it.sess.slo == quality.BestEffort {
		queued := int(b.s.inflight.Load()) - 1 // frames waiting behind this one
		rung, _ = b.s.ctl.Pick(queued, b.s.cfg.Workers, it.sess.deadlineMs)
	}
	r := b.s.ladder[rung]
	if r.OP.PyrLevel != it.sess.level {
		// The flow kernels require consecutive frames to agree in size, so
		// a cross-level rung switch restarts the temporal chain; the next
		// frame below recovers with a key frame at the new resolution.
		it.sess.pipe.Reset()
		it.sess.level = r.OP.PyrLevel
	}

	t0 := time.Now()
	var res core.Result
	if it.sess.slo == quality.Gold {
		res = pipeline.ProcessFrame(it.sess.pipe, b.s.matcher, left, right, b.s.cfg.Metrics)
	} else {
		res = quality.Step(it.sess.pipe, r, it.sess.pw, b.s.rungMatchers[rung], left, right, b.s.cfg.Metrics)
	}
	rep.compute = time.Since(t0)
	rep.res = res
	rep.rung = rung
	rep.frame = int(it.sess.frames.Add(1)) - 1
	if res.IsKey {
		it.sess.keyFrames.Add(1)
	}
	rep.stats = stereo.DisparityStats(res.Disparity)
	it.sess.touch()

	// Every completed frame trains the controller's latency model for the
	// rung it ran at — gold traffic keeps rung 0 priced even when no
	// best-effort session is degraded.
	b.s.ctl.Observe(rung, float64(rep.compute)/1e6)
	b.s.rungServed[rung].Add(1)
	it.sess.lastRung.Store(int64(rung))
	if rung > 0 {
		b.s.degradedTotal.Add(1)
		it.sess.degradedFrames.Add(1)
	}

	if n := b.s.cfg.CheckpointEvery; n > 0 && b.s.cfg.SpillDir != "" && (rep.frame+1)%n == 0 {
		checkpoint = EncodeSnapshot(b.s.snapshotLocked(it.sess))
	}
	return checkpoint
}

// badFrameError marks client-caused frame failures (geometry mismatch) so
// the handler maps them to 422 instead of 500.
type badFrameError struct{ error }
