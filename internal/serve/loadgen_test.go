package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubShard is a minimal fake of the serving API for loadgen unit tests:
// it creates sessions instantly and lets the test script per-request
// status behavior without paying for real stereo matching.
type stubShard struct {
	mu       sync.Mutex
	nextID   int
	frameSeq atomic.Int64
	// respond decides each frame submission's status code given the
	// 1-based global submission number.
	respond func(n int64) int
}

func (s *stubShard) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.nextID++
		id := fmt.Sprintf("stub%04d", s.nextID)
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"id":%q,"pw":2}`, id)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/frames", func(w http.ResponseWriter, r *http.Request) {
		n := s.frameSeq.Add(1)
		status := http.StatusOK
		if s.respond != nil {
			status = s.respond(n)
		}
		switch status {
		case http.StatusOK:
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"session":%q,"frame":%d,"is_key":%v}`, r.PathValue("id"), n, n%2 == 1)
		case http.StatusTooManyRequests:
			// An aggressively long hint: the client must cap it, not
			// sleep a full second per retry.
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, status)
		default:
			http.Error(w, `{"error":"stub"}`, status)
		}
	})
	return mux
}

// TestRunLoadRetriesAfter429 scripts one 429 per session before letting
// frames through: every frame must eventually succeed via the retry path,
// with the Retry-After hint honored but capped.
func TestRunLoadRetriesAfter429(t *testing.T) {
	const sessions, frames = 3, 4
	var rejected atomic.Int64
	stub := &stubShard{}
	perSession := make(map[string]bool)
	var mu sync.Mutex
	stub.respond = func(n int64) int { return http.StatusOK }
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Reject the FIRST frame submission of each session once.
		if strings.HasSuffix(r.URL.Path, "/frames") {
			parts := strings.Split(r.URL.Path, "/")
			id := parts[len(parts)-2]
			mu.Lock()
			first := !perSession[id]
			perSession[id] = true
			mu.Unlock()
			if first {
				rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
				return
			}
		}
		stub.handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	t0 := time.Now()
	rep, err := RunLoad(LoadConfig{
		BaseURL: ts.URL, Sessions: sessions, Frames: frames,
		Max429Wait: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != sessions*frames {
		t.Fatalf("OK=%d, want %d (a 429'd frame was dropped instead of retried)", rep.OK, sessions*frames)
	}
	if rep.Rejected != sessions || rep.Retries != sessions {
		t.Fatalf("Rejected=%d Retries=%d, want %d each", rep.Rejected, rep.Retries, sessions)
	}
	if rep.Dropped != 0 {
		t.Fatalf("Dropped=%d, want 0", rep.Dropped)
	}
	if rep.Requests != sessions*frames+sessions {
		t.Fatalf("Requests=%d, want %d", rep.Requests, sessions*frames+sessions)
	}
	// Retry-After said 1s per retry; the cap must have kept the whole run
	// far under sessions×1s.
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("run took %v; Retry-After cap not applied", elapsed)
	}
	if rep.OKRps <= 0 {
		t.Fatalf("OKRps=%g, want > 0", rep.OKRps)
	}
}

// TestRunLoadDropsAfterRetryBudget: a server that never stops 429ing makes
// the client abandon each frame after exactly Retry429 retries.
func TestRunLoadDropsAfterRetryBudget(t *testing.T) {
	const sessions, frames, retries = 2, 3, 2
	stub := &stubShard{respond: func(n int64) int { return http.StatusTooManyRequests }}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	rep, err := RunLoad(LoadConfig{
		BaseURL: ts.URL, Sessions: sessions, Frames: frames,
		Retry429: retries, Max429Wait: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 0 {
		t.Fatalf("OK=%d against an always-429 server", rep.OK)
	}
	if want := sessions * frames; rep.Dropped != want {
		t.Fatalf("Dropped=%d, want %d", rep.Dropped, want)
	}
	if want := sessions * frames * (1 + retries); rep.Requests != want {
		t.Fatalf("Requests=%d, want %d (each frame attempted 1+%d times)", rep.Requests, want, retries)
	}
	if want := sessions * frames * retries; rep.Retries != want {
		t.Fatalf("Retries=%d, want %d", rep.Retries, want)
	}
}

// TestRunLoadCountsErrorClasses checks the 4xx/5xx tallies against a stub
// cycling through statuses.
func TestRunLoadCountsErrorClasses(t *testing.T) {
	stub := &stubShard{respond: func(n int64) int {
		switch n % 3 {
		case 1:
			return http.StatusOK
		case 2:
			return http.StatusUnprocessableEntity
		default:
			return http.StatusInternalServerError
		}
	}}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	rep, err := RunLoad(LoadConfig{BaseURL: ts.URL, Sessions: 1, Frames: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 3 || rep.Status4xx != 3 || rep.Status5xx != 3 {
		t.Fatalf("OK/4xx/5xx = %d/%d/%d, want 3/3/3", rep.OK, rep.Status4xx, rep.Status5xx)
	}
}

// TestRunLoadMixedScenarios drives a REAL server (not the stub) with mixed
// raw/rectified uploads and all four response formats: with 4 sessions,
// mixed mode gives rectified+json, raw+disparity, rectified+depth and
// raw+cloud — every serving path in one run, no failures allowed.
func TestRunLoadMixedScenarios(t *testing.T) {
	_, ts := testServer(t, DefaultConfig(), 0)
	const sessions, frames = 4, 4
	rep, err := RunLoad(LoadConfig{
		BaseURL: ts.URL, Sessions: sessions, Frames: frames,
		W: 48, H: 32, PW: 2, Upload: true, Mixed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != sessions*frames {
		t.Fatalf("OK=%d of %d (4xx %d, 5xx %d, transport %d)",
			rep.OK, sessions*frames, rep.Status4xx, rep.Status5xx, rep.Transport)
	}
	if rep.DepthMaps != frames {
		t.Fatalf("DepthMaps=%d, want %d (one depth session)", rep.DepthMaps, frames)
	}
	if rep.Clouds != frames || rep.CloudPts == 0 {
		t.Fatalf("Clouds=%d points=%d, want %d clouds with points", rep.Clouds, rep.CloudPts, frames)
	}

	// Single-format runs work against preset sessions too (the server
	// synthesizes frames, calibration comes from the load config).
	rep, err = RunLoad(LoadConfig{
		BaseURL: ts.URL, Sessions: 1, Frames: 3,
		W: 48, H: 32, PW: 2, Format: "cloud",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 3 || rep.Clouds != 3 {
		t.Fatalf("preset cloud run: OK=%d Clouds=%d, want 3/3", rep.OK, rep.Clouds)
	}

	// An unknown format fails the run before any traffic.
	if _, err := RunLoad(LoadConfig{BaseURL: ts.URL, Format: "stl"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestRunLoadCluster fans the workload over two stub endpoints and checks
// the aggregate is the sum of the per-target reports.
func TestRunLoadCluster(t *testing.T) {
	const sessions, frames = 2, 3
	mk := func() *httptest.Server { return httptest.NewServer((&stubShard{}).handler()) }
	ts1, ts2 := mk(), mk()
	defer ts1.Close()
	defer ts2.Close()

	rep, err := RunLoadCluster(LoadConfig{Sessions: sessions, Frames: frames}, []string{ts1.URL, ts2.URL})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) != 2 {
		t.Fatalf("Targets has %d entries, want 2", len(rep.Targets))
	}
	if want := 2 * sessions * frames; rep.Aggregate.OK != want {
		t.Fatalf("aggregate OK=%d, want %d", rep.Aggregate.OK, want)
	}
	sum := 0
	for _, tr := range rep.Targets {
		sum += tr.OK
	}
	if sum != rep.Aggregate.OK {
		t.Fatalf("per-target OK sums to %d, aggregate says %d", sum, rep.Aggregate.OK)
	}
	if rep.Aggregate.P99Ms <= 0 || rep.Aggregate.MaxMs < rep.Aggregate.P50Ms {
		t.Fatalf("aggregate percentiles look wrong: %+v", rep.Aggregate)
	}

	// A dead target fails the run rather than silently halving it.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	if _, err := RunLoadCluster(LoadConfig{Sessions: 1, Frames: 1}, []string{ts1.URL, dead.URL}); err == nil {
		t.Fatal("cluster run with a dead target reported no error")
	}
}
