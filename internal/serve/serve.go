// Package serve is the stereo depth serving layer: a sessionful HTTP
// service over the ISM engine. Clients create sessions and POST stereo
// pairs into them; each session owns a core.Pipeline, so the server runs
// expensive key-frame matching every PW-th frame and cheap
// motion-propagated refinement in between — the paper's ISM schedule,
// driven by request arrival instead of a video file.
//
// Around that core sits the production machinery the ROADMAP asks for:
//
//   - a bounded admission queue; when it is full the server sheds load
//     with 429 + Retry-After instead of collapsing;
//   - a dynamic micro-batcher that coalesces queued frames across sessions
//     into rounds for the worker pool (at most one frame per session per
//     round, which also serializes each session's state machine);
//   - per-session LRU-over-capacity and TTL eviction;
//   - graceful drain: Close stops admission, finishes every queued frame,
//     then stops the workers;
//   - observability: /healthz, a /metrics JSON snapshot built on
//     internal/metrics, and net/http/pprof behind Config.EnablePprof.
//
// See DESIGN.md §6 "Serving architecture".
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"asv/internal/backend"
	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/imgproc"
	"asv/internal/metrics"
	"asv/internal/nn"
	"asv/internal/perception"
	"asv/internal/quality"
	"asv/internal/stereo"
)

// Config tunes the server. The zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// MaxSessions caps the session table; creating one beyond the cap
	// evicts the least-recently-used idle session.
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this (janitor sweep).
	SessionTTL time.Duration
	// QueueDepth bounds the admission queue; a full queue returns 429.
	QueueDepth int
	// Workers is the frame-processing goroutine pool size.
	Workers int
	// BatchSize is the micro-batcher's maximum frames per dispatch round.
	BatchSize int
	// BatchWait is how long a partially filled round may wait for more
	// sessions before it is flushed anyway.
	BatchWait time.Duration
	// MaxPixels caps uploaded image sizes at decode time (per image);
	// oversize uploads get 413 before any pixel buffer is allocated.
	MaxPixels int
	// MaxPresetFrames caps the synthetic sequence length a preset session
	// may request.
	MaxPresetFrames int
	// PW is the default propagation window for sessions that do not set
	// their own.
	PW int
	// Pipeline is the ISM configuration template for new sessions (PW is
	// overridden per session).
	Pipeline core.Config
	// Metrics receives per-stage latencies ("queue", "keymatch", "flow",
	// "propagate+refine", "frame"). Nil disables stage metrics (the
	// /metrics endpoint then reports counters only).
	Metrics *metrics.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// CostBackend, when set, adds a "backend" section to /metrics: the
	// estimated per-frame cost of running the key-frame DNN (DispNet at
	// qHD) on this accelerator model, under its best supported policy and
	// — when the model supports ISM — amortized over the configured PW.
	// Nil omits the section.
	CostBackend backend.Backend
	// CostNonKey is the per-frame non-key demand used for the ISM variant
	// of the CostBackend estimate. Zero restricts the estimate to the pure
	// DNN cost even on ISM-capable backends.
	CostNonKey backend.NonKeyCost
	// SpillDir, when set, turns eviction into spill: cold sessions evicted
	// by TTL or LRU pressure are serialized to <SpillDir>/<id>.asvsnap and
	// transparently restored on their next use. Pointing the shards of a
	// cluster at a shared directory also gives them crash recovery: a peer
	// adopting a dead shard's session restores it from the same store.
	SpillDir string
	// CheckpointEvery, when positive (and SpillDir is set), additionally
	// writes a session's snapshot to the spill store every N completed
	// frames, bounding how much stream state a shard crash can lose.
	CheckpointEvery int
	// Ladder is the operating-point ladder best-effort sessions may degrade
	// along under load (DESIGN.md §12). Nil installs quality.DefaultLadder;
	// an invalid ladder panics in New (it is a configuration error on par
	// with a nil matcher). Rung 0 is always the undegraded operating point —
	// gold sessions never leave it.
	Ladder quality.Ladder
	// DefaultDeadline is the per-frame latency target assumed for
	// best-effort sessions that do not set their own: the ladder controller
	// picks the cheapest rung predicted to complete within it given the
	// current queue. Zero means 250ms.
	DefaultDeadline time.Duration
	// BestEffortOvercommit multiplies QueueDepth into the admission bound
	// for best-effort frames: they may queue up to QueueDepth×Overcommit
	// deep, because degrading drains the backlog far faster than rung-0
	// service would. Gold frames keep the plain QueueDepth bound. Zero
	// means 8.
	BestEffortOvercommit int
}

// DefaultConfig returns a serving configuration sized for a small host.
func DefaultConfig() Config {
	return Config{
		MaxSessions:     64,
		SessionTTL:      5 * time.Minute,
		QueueDepth:      64,
		Workers:         4,
		BatchSize:       8,
		BatchWait:       2 * time.Millisecond,
		MaxPixels:       1 << 21, // 2 Mpx per image, ~8 MB of float32
		MaxPresetFrames: 256,
		PW:              4,
		Pipeline:        core.DefaultConfig(),
		Metrics:         metrics.NewRegistry(),
		Ladder:          quality.DefaultLadder(),
		DefaultDeadline: 250 * time.Millisecond,

		BestEffortOvercommit: 8,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxSessions < 1 {
		c.MaxSessions = d.MaxSessions
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = d.SessionTTL
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = d.QueueDepth
	}
	if c.Workers < 1 {
		c.Workers = d.Workers
	}
	if c.BatchSize < 1 {
		c.BatchSize = d.BatchSize
	}
	if c.BatchWait <= 0 {
		c.BatchWait = d.BatchWait
	}
	if c.MaxPixels < 1 || c.MaxPixels > imgproc.MaxDecodePixels {
		c.MaxPixels = d.MaxPixels
	}
	if c.MaxPresetFrames < 1 {
		c.MaxPresetFrames = d.MaxPresetFrames
	}
	if c.PW < 1 {
		c.PW = d.PW
	}
	if c.Pipeline.PW == 0 {
		c.Pipeline = d.Pipeline
	}
	if c.Ladder == nil {
		c.Ladder = d.Ladder
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = d.DefaultDeadline
	}
	if c.BestEffortOvercommit < 1 {
		c.BestEffortOvercommit = d.BestEffortOvercommit
	}
	return c
}

// Server is the serving subsystem. Create with New, mount via Handler (or
// start a listener with Start), stop with Close.
type Server struct {
	cfg     Config
	matcher core.KeyMatcher
	tab     *sessionTable
	b       *batcher
	mux     *http.ServeMux
	httpSrv *http.Server // set by Start; nil when mounted via Handler
	started time.Time

	// Operating-point ladder state (DESIGN.md §12): the validated ladder,
	// one pre-built key matcher per rung (rung 0 holds the server's
	// configured matcher, so the top rung stays bit-identical to the
	// pre-ladder path), and the EWMA latency controller that picks rungs
	// for best-effort frames.
	ladder       quality.Ladder
	rungMatchers []core.KeyMatcher
	ctl          *quality.Controller

	// serveErr holds the first non-graceful error from Start's accept loop,
	// reported by Close.
	serveErr chan error

	janitorStop chan struct{}

	// costEst is the precomputed /metrics "backend" section (nil when no
	// CostBackend is configured). Computed once in New: the cost model is
	// analytic and deterministic, so there is nothing live to sample.
	costEst map[string]any

	// draining flips once at Close; handlers then refuse new work with 503.
	// submitWG covers each handler's admission window (the draining
	// re-check plus the admit send), so Close can wait for stragglers
	// before closing the admit channel even when the server is mounted via
	// Handler() and there is no http.Server.Shutdown to lean on.
	draining atomic.Bool
	submitWG sync.WaitGroup

	// Counters surfaced by /metrics. accepted counts frames admitted to
	// the queue; rejected counts 429s; drained503 counts frames refused
	// because the server was shutting down; completed counts frames whose
	// processing finished (with or without error).
	accepted      atomic.Int64
	rejected      atomic.Int64
	drained503    atomic.Int64
	completed     atomic.Int64
	batches       atomic.Int64
	batchedFrames atomic.Int64
	maxBatch      atomic.Int64

	// Ladder counters: frames served per rung (indexed like ladder) and
	// frames served at any rung below the top (the degradation total).
	rungServed    []atomic.Int64
	degradedTotal atomic.Int64

	// Snapshot/spill counters: snapshots served over HTTP, sessions
	// installed via PUT snapshot, sessions spilled to and restored from the
	// disk store, checkpoint writes, and spill-store I/O or decode failures.
	snapshotsServed   atomic.Int64
	snapshotsRestored atomic.Int64
	spilled           atomic.Int64
	diskRestores      atomic.Int64
	checkpoints       atomic.Int64
	spillErrors       atomic.Int64

	// Perception counters: depth-map and point-cloud responses served, and
	// the total points shipped across all cloud replies.
	depthMapsServed atomic.Int64
	cloudsServed    atomic.Int64
	cloudPoints     atomic.Int64

	// restoreMu serializes disk restores so two concurrent misses on the
	// same id materialize one session, not two racing copies.
	restoreMu sync.Mutex

	// inflight is the admission gauge: frames admitted but not yet
	// finished. The batcher drains the admit channel eagerly (it must, to
	// batch across sessions), so the backpressure bound lives here, not in
	// the channel capacity.
	inflight atomic.Int64
}

// New builds a Server processing frames with matcher (which must tolerate
// concurrent Match calls; all built-in matchers do).
func New(matcher core.KeyMatcher, cfg Config) *Server {
	if matcher == nil {
		panic("serve: nil KeyMatcher")
	}
	s := &Server{
		cfg:         cfg.withDefaults(),
		matcher:     matcher,
		started:     time.Now(),
		serveErr:    make(chan error, 1),
		janitorStop: make(chan struct{}),
	}
	s.ladder = s.cfg.Ladder
	if err := s.ladder.Validate(); err != nil {
		panic("serve: " + err.Error())
	}
	s.rungMatchers = make([]core.KeyMatcher, len(s.ladder))
	for i, r := range s.ladder {
		s.rungMatchers[i] = r.BuildMatcher(matcher)
	}
	s.ctl = quality.NewController(len(s.ladder))
	s.rungServed = make([]atomic.Int64, len(s.ladder))
	s.tab = newSessionTable(s.cfg.MaxSessions)
	s.b = newBatcher(s)
	if s.cfg.CostBackend != nil {
		s.costEst = backendCostEstimate(s.cfg.CostBackend, s.cfg.CostNonKey, s.cfg.PW)
	}
	s.mux = http.NewServeMux()
	s.routes()
	go s.janitor()
	return s
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port, port 0 for ephemeral) and serves until
// Close. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: s.mux}
	s.httpSrv = srv
	go func() {
		// Serve returns ErrServerClosed on graceful Shutdown; anything else
		// is a real accept-loop failure, surfaced by Close.
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			select {
			case s.serveErr <- err:
			default:
			}
		}
	}()
	return ln.Addr(), nil
}

// Kill abruptly closes the listener and every active connection, without
// draining: in-flight requests see their connections die and queued frames
// lose their clients. It exists to emulate a shard crash — the cluster
// chaos tests use it to prove that peers can adopt a dead shard's sessions
// from the shared spill store. Call Close afterwards to stop the workers.
func (s *Server) Kill() error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}

// Close drains the server: new frames are refused with 503, every admitted
// frame is processed to completion, then the batcher and workers stop. The
// context bounds how long to wait for the HTTP layer to quiesce.
func (s *Server) Close(ctx context.Context) error {
	s.draining.Store(true)
	s.submitWG.Wait() // no handler is inside its admission window anymore
	close(s.b.admit)  // batcher dispatches the backlog, then stops workers
	s.b.finished.Wait()
	close(s.janitorStop)
	var err error
	if s.httpSrv != nil {
		// Every admitted frame has its reply by now, so handlers unwind
		// promptly; Shutdown just quiesces the HTTP layer.
		err = s.httpSrv.Shutdown(ctx)
	}
	// An accept-loop failure recorded by Start outranks a shutdown hiccup:
	// it means the server died before Close was ever called.
	select {
	case serr := <-s.serveErr:
		return serr
	default:
	}
	return err
}

// janitor sweeps expired sessions at SessionTTL/4 cadence.
func (s *Server) janitor() {
	period := s.cfg.SessionTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			for _, sess := range s.tab.expire(s.cfg.SessionTTL) {
				s.spill(sess)
			}
		}
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /v1/sessions/{id}/frames", s.handleSubmitFrame)
	s.mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.handleGetSnapshot)
	s.mux.HandleFunc("PUT /v1/sessions/{id}/snapshot", s.handlePutSnapshot)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// --- wire types ---------------------------------------------------------

// CreateSessionRequest is the body of POST /v1/sessions. All fields are
// optional; a preset session synthesizes its own frames server-side.
type CreateSessionRequest struct {
	// ID requests a specific session id (1-64 chars of [A-Za-z0-9_-]).
	// Empty lets the server mint one. The cluster gateway always sets it:
	// consistent hashing needs the id before the shard is chosen.
	ID string `json:"id,omitempty"`
	PW int    `json:"pw,omitempty"`
	// Preset selects a synthetic source: "sceneflow" or "kitti". Empty
	// means the client uploads frames.
	Preset string `json:"preset,omitempty"`
	W      int    `json:"w,omitempty"`
	H      int    `json:"h,omitempty"`
	Frames int    `json:"frames,omitempty"` // preset sequence length
	Seed   int64  `json:"seed,omitempty"`
	// Postprocess enables the 3×3 validity-aware median on non-key frames.
	Postprocess bool `json:"postprocess,omitempty"`
	// Calibration, when present, is the session's camera model
	// (perception.Calibration JSON: pinhole intrinsics, per-eye rotations,
	// stereo baseline). It makes the session accept unrectified uploads —
	// every frame is rectified server-side before matching — and unlocks
	// the ?depth and ?cloud response formats.
	Calibration json.RawMessage `json:"calibration,omitempty"`
	// SLO is the session's service class: "gold" (the default) pins the
	// session to the ladder's top rung and sheds its overload with 429;
	// "besteffort" lets the server degrade it to cheaper rungs instead.
	SLO string `json:"slo,omitempty"`
	// DeadlineMs is a best-effort session's per-frame latency target; the
	// controller degrades only as far as needed to meet it. Zero uses the
	// server's DefaultDeadline. Ignored for gold sessions.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
}

// SessionInfo is returned by session create/get.
type SessionInfo struct {
	ID        string `json:"id"`
	PW        int    `json:"pw"`
	Preset    string `json:"preset,omitempty"`
	W         int    `json:"w,omitempty"`
	H         int    `json:"h,omitempty"`
	Frames    int64  `json:"frames"`
	KeyFrames int64  `json:"key_frames"`
	IdleMs    int64  `json:"idle_ms"`
	// Calibrated reports whether the session carries a camera model (and
	// therefore serves depth maps and point clouds).
	Calibrated bool `json:"calibrated,omitempty"`
	// SLO is the session's service class ("gold" or "besteffort").
	SLO string `json:"slo"`
	// DeadlineMs is the per-frame latency target a best-effort session is
	// degraded to meet (0 for gold sessions).
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// Rung is the ladder rung the session's latest frame was served at.
	Rung string `json:"rung,omitempty"`
	// DegradedFrames counts this session's frames served below the top rung.
	DegradedFrames int64 `json:"degraded_frames,omitempty"`
}

// FrameResponse is the JSON reply to a frame submission.
type FrameResponse struct {
	Session      string           `json:"session"`
	Frame        int              `json:"frame"`
	IsKey        bool             `json:"is_key"`
	MACs         int64            `json:"macs"`
	MeanMotionPx float64          `json:"mean_motion_px"`
	Disparity    stereo.DispStats `json:"disparity"`
	QueueMs      float64          `json:"queue_ms"`
	ComputeMs    float64          `json:"compute_ms"`
	// Rung names the ladder rung this frame was served at; Degraded is true
	// when that was any rung below the top.
	Rung     string `json:"rung"`
	Degraded bool   `json:"degraded,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

// --- handlers -----------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(s.started).Milliseconds(),
	})
}

// handleMetrics serves the live observability snapshot: serving-layer
// counters plus the shared internal/metrics stage snapshot (the same format
// asvbench emits), so one dashboard reads both. When a CostBackend is
// configured, a "backend" section carries the estimated per-frame
// accelerator cost alongside the measured serving numbers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	doc := map[string]any{
		"serve":  s.CountersSnapshot(),
		"stages": map[string]any{},
	}
	if s.cfg.Metrics != nil {
		doc["stages"] = s.cfg.Metrics.Snapshot()
	}
	if s.costEst != nil {
		doc["backend"] = s.costEst
	}
	writeJSON(w, http.StatusOK, doc)
}

// backendCostEstimate runs the accelerator model once on the serving
// workload shape — the DispNet key-frame DNN at the paper's qHD resolution
// — under the model's best supported policy, and returns the /metrics
// "backend" section. On ISM-capable backends with a known non-key demand
// the estimate is the steady-state per-frame cost amortized over pw.
func backendCostEstimate(b backend.Backend, nonKey backend.NonKeyCost, pw int) map[string]any {
	d := b.Describe()
	pol := d.Caps.Policies[len(d.Caps.Policies)-1]
	opts := backend.RunOptions{Policy: pol}
	mode := "dnn-per-frame"
	if d.Caps.ISM && pw > 1 && nonKey != (backend.NonKeyCost{}) {
		opts.PW, opts.NonKey = pw, nonKey
		mode = fmt.Sprintf("ism-pw%d", pw)
	}
	rep, err := backend.Run(b, nn.DispNet(nn.QHDH, nn.QHDW), opts)
	if err != nil {
		// Unreachable for registered backends (options come from Describe),
		// but a broken custom backend should not take down the server.
		return map[string]any{"name": d.Name, "error": err.Error()}
	}
	return map[string]any{
		"name":              d.Name,
		"policy":            pol.String(),
		"mode":              mode,
		"workload":          rep.Workload,
		"est_frame_ms":      round2(rep.Seconds * 1e3),
		"est_fps":           round2(rep.FPS()),
		"est_frame_mj":      round2(rep.EnergyJ * 1e3),
		"est_frame_gmacs":   round2(float64(rep.MACs) / 1e9),
		"est_frame_dram_mb": round2(float64(rep.DRAMBytes) / (1024 * 1024)),
	}
}

// CountersSnapshot returns the serving-layer counters under stable names
// (see the metrics package for the schema discipline).
func (s *Server) CountersSnapshot() map[string]any {
	var meanBatch float64
	if n := s.batches.Load(); n > 0 {
		meanBatch = float64(s.batchedFrames.Load()) / float64(n)
	}
	return map[string]any{
		"sessions_active":   s.tab.len(),
		"sessions_evicted":  s.tab.evictions.Load(),
		"frames_accepted":   s.accepted.Load(),
		"frames_completed":  s.completed.Load(),
		"rejected_429":      s.rejected.Load(),
		"drained_503":       s.drained503.Load(),
		"queue_depth":       s.inflight.Load(),
		"queue_capacity":    s.cfg.QueueDepth,
		"batches":           s.batches.Load(),
		"batch_frames":      s.batchedFrames.Load(),
		"batch_mean_frames": round2(meanBatch),
		"batch_max_frames":  s.maxBatch.Load(),
		"snapshots_served":  s.snapshotsServed.Load(),
		"snapshots_put":     s.snapshotsRestored.Load(),
		"sessions_spilled":  s.spilled.Load(),
		"disk_restores":     s.diskRestores.Load(),
		"checkpoints":       s.checkpoints.Load(),
		"spill_errors":      s.spillErrors.Load(),
		"depth_maps_served": s.depthMapsServed.Load(),
		"clouds_served":     s.cloudsServed.Load(),
		"cloud_points":      s.cloudPoints.Load(),
		"frames_degraded":   s.degradedTotal.Load(),
		"rungs":             s.rungCounts(),
	}
}

// rungCounts is the per-rung served-frame tally (rung name → frames), the
// /metrics view of where on the ladder the server has been operating.
func (s *Server) rungCounts() map[string]int64 {
	out := make(map[string]int64, len(s.ladder))
	for i := range s.ladder {
		out[s.ladder[i].Name] = s.rungServed[i].Load()
	}
	return out
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req CreateSessionRequest
	if r.Body != nil {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
			return
		}
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				writeError(w, http.StatusBadRequest, "parsing body: "+err.Error())
				return
			}
		}
	}
	pw := req.PW
	if pw == 0 {
		pw = s.cfg.PW
	}
	if pw < 1 || pw > 64 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("pw %d out of range [1,64]", pw))
		return
	}
	id := req.ID
	if id == "" {
		id = NewSessionID()
	} else {
		// Client-chosen ids exist for the cluster gateway, which must mint
		// the id before placing the session on a shard (the consistent-hash
		// ring maps ids to shards). They share the random ids' namespace.
		if !validSessionID(id) {
			writeError(w, http.StatusBadRequest, "invalid session id (want 1-64 chars of [A-Za-z0-9_-])")
			return
		}
		if s.lookup(id) != nil {
			writeError(w, http.StatusConflict, fmt.Sprintf("session %q already exists", id))
			return
		}
	}

	var calib *perception.Calibration
	if len(req.Calibration) > 0 {
		c, err := perception.ParseCalibration(req.Calibration)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		calib = c
	}

	slo, err := quality.ParseClass(req.SLO)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var deadlineMs float64
	if slo == quality.BestEffort {
		deadlineMs = req.DeadlineMs
		if deadlineMs <= 0 {
			deadlineMs = float64(s.cfg.DefaultDeadline) / 1e6
		}
	} else if req.DeadlineMs != 0 {
		writeError(w, http.StatusBadRequest, "deadline_ms requires slo=besteffort (gold sessions are never degraded)")
		return
	}

	cfg := s.cfg.Pipeline
	cfg.PW = pw
	cfg.Postprocess = req.Postprocess
	sess := &session{
		id:         id,
		pw:         pw,
		pipe:       core.New(s.matcher, cfg),
		created:    time.Now(),
		calib:      calib,
		slo:        slo,
		deadlineMs: deadlineMs,
	}
	sess.touch()

	if req.Preset != "" {
		src, err := s.buildPreset(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		sess.preset = src
	}

	s.installSession(sess)
	writeJSON(w, http.StatusCreated, s.info(sess))
}

// buildPreset validates and generates a synthetic frame source.
func (s *Server) buildPreset(req CreateSessionRequest) (*presetSource, error) {
	w, h, frames := req.W, req.H, req.Frames
	if w == 0 {
		w = 128
	}
	if h == 0 {
		h = 80
	}
	if frames == 0 {
		frames = 16
	}
	if w < 16 || h < 16 || w*h > s.cfg.MaxPixels {
		return nil, fmt.Errorf("preset size %dx%d out of range (min 16x16, max %d pixels)", w, h, s.cfg.MaxPixels)
	}
	if frames < 1 || frames > s.cfg.MaxPresetFrames {
		return nil, fmt.Errorf("preset frames %d out of range [1,%d]", frames, s.cfg.MaxPresetFrames)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 7
	}
	var cfg dataset.SceneConfig
	switch req.Preset {
	case "sceneflow":
		cfg = dataset.SceneFlowLike(w, h, frames, seed)[0]
	case "kitti":
		cfg = dataset.KITTILike(w, h, 1, seed)[0]
		cfg.FrameCount = frames
	default:
		return nil, fmt.Errorf("unknown preset %q (sceneflow|kitti)", req.Preset)
	}
	return &presetSource{name: req.Preset, cfg: cfg, seq: dataset.Generate(cfg)}, nil
}

func (s *Server) info(sess *session) SessionInfo {
	w, h := sess.geometry()
	inf := SessionInfo{
		ID:        sess.id,
		PW:        sess.pw,
		Frames:    sess.frames.Load(),
		KeyFrames: sess.keyFrames.Load(),
		IdleMs:    sess.idle().Milliseconds(),
		W:         w,
		H:         h,
	}
	if sess.preset != nil {
		inf.Preset = sess.preset.name
	}
	inf.Calibrated = sess.calib != nil
	inf.SLO = sess.slo.String()
	inf.DeadlineMs = sess.deadlineMs
	if sess.frames.Load() > 0 {
		inf.Rung = s.ladder[sess.lastRung.Load()].Name
	}
	inf.DegradedFrames = sess.degradedFrames.Load()
	return inf
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, s.info(sess))
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	removed := s.tab.remove(id)
	if path := s.spillPath(id); path != "" {
		if _, err := os.Stat(path); err == nil {
			removed = true
		}
		s.dropSpill(id)
	}
	if !removed {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSubmitFrame is the hot path: decode (or synthesize), admit, block
// for the in-order result, reply. Backpressure and drain both short-circuit
// before any expensive work.
func (s *Server) handleSubmitFrame(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.drained503.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}

	// Resolve the requested response format before admission: a bad format
	// string (or a depth/cloud request against an uncalibrated session) is
	// a 400 before any work is queued, not after the frame was computed.
	format, err := parseReplyFormat(r, sess)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	it := &workItem{sess: sess, enqueued: time.Now(), reply: make(chan frameReply, 1)}
	it.wantLeft = format == formatCloudPLY || format == formatCloudPLYBin || format == formatCloudBin
	if sess.preset == nil {
		left, right, err := s.decodePair(r)
		if err != nil {
			status := http.StatusBadRequest
			var tle *imgproc.TooLargeError
			if errors.As(err, &tle) {
				status = http.StatusRequestEntityTooLarge
			}
			writeError(w, status, err.Error())
			return
		}
		it.left, it.right = left, right
	}

	// Admission window. The draining re-check after Add closes the race
	// with Close: either this handler's send is covered by submitWG, or it
	// observes draining and backs off without touching the channel.
	s.submitWG.Add(1)
	if s.draining.Load() {
		s.submitWG.Done()
		s.drained503.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Admission bound. Gold frames get the plain QueueDepth bound: at most
	// that many frames in the system (queued or processing), beyond which
	// the server sheds load with 429 + Retry-After. Best-effort frames may
	// overcommit the queue — degrading drains it far faster than rung-0
	// service — but once past the gold bound they are admitted only while
	// the ladder controller predicts some rung can still meet the session's
	// deadline; a refusal there means even the bottom rung is exhausted.
	limit := int64(s.cfg.QueueDepth)
	if sess.slo == quality.BestEffort {
		limit = int64(s.cfg.QueueDepth) * int64(s.cfg.BestEffortOvercommit)
	}
	cur := s.inflight.Add(1)
	reject := cur > limit
	msg := "admission queue full"
	if !reject && sess.slo == quality.BestEffort && cur > int64(s.cfg.QueueDepth) {
		if _, admit := s.ctl.Pick(int(cur)-1, s.cfg.Workers, sess.deadlineMs); !admit {
			reject = true
			msg = "overloaded: even the cheapest rung cannot meet the session deadline"
		}
	}
	if reject {
		s.inflight.Add(-1)
		s.submitWG.Done()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterHint()))
		writeError(w, http.StatusTooManyRequests, msg)
		return
	}
	sess.pendingFrames.Add(1)
	s.accepted.Add(1)
	s.b.admit <- it // capacity QueueDepth ≥ inflight, never blocks for long
	s.submitWG.Done()

	select {
	case rep := <-it.reply:
		s.completed.Add(1)
		if rep.err != nil {
			var bad badFrameError
			if errors.As(rep.err, &bad) {
				writeError(w, http.StatusUnprocessableEntity, rep.err.Error())
			} else {
				writeError(w, http.StatusInternalServerError, rep.err.Error())
			}
			return
		}
		s.writeFrameReply(w, sess, format, rep)
	case <-r.Context().Done():
		// Client went away; the worker will still complete the frame (the
		// session state must advance) and the buffered reply is dropped.
		writeError(w, http.StatusServiceUnavailable, "client canceled")
	}
}

// retryAfterHint computes the Retry-After value for a 429: the time until
// the current backlog has drained far enough that a retry has a real chance,
// from the live queue depth and the observed p95 frame latency.
func (s *Server) retryAfterHint() int {
	var p95 time.Duration
	if s.cfg.Metrics != nil {
		p95 = s.cfg.Metrics.Stage("frame").Quantile(0.95)
	}
	return retryAfterSeconds(int(s.inflight.Load()), s.cfg.Workers, p95)
}

// retryAfterSeconds estimates how many whole seconds until a queue of depth
// queued drains across workers at p95 per frame, plus one frame's slack,
// clamped to [1,30]: never 0 (clients would hammer a saturated server) and
// never so large that a transient spike parks clients for minutes.
func retryAfterSeconds(queued, workers int, p95 time.Duration) int {
	if workers < 1 {
		workers = 1
	}
	if queued < 0 {
		queued = 0
	}
	if p95 <= 0 {
		return 1
	}
	drain := time.Duration(queued/workers+1) * p95
	secs := int((drain + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// replyFormat selects how a completed frame is rendered back to the client.
type replyFormat int

const (
	formatJSON        replyFormat = iota // per-frame stats (default)
	formatDispPFM                        // ?disparity=pfm: raw disparity, PFM
	formatDepthPFM                       // ?depth=pfm: metric depth, PFM
	formatCloudPLY                       // ?cloud=ply: ASCII PLY point cloud
	formatCloudPLYBin                    // ?cloud=plybin: binary PLY
	formatCloudBin                       // ?cloud=bin: ASVPCD binary codec
)

// parseReplyFormat resolves the frame submission's query parameters. At most
// one of disparity/depth/cloud may be set; depth and cloud require the
// session to carry a calibration (triangulation needs fx and the baseline).
func parseReplyFormat(r *http.Request, sess *session) (replyFormat, error) {
	q := r.URL.Query()
	disp, depth, cloud := q.Get("disparity"), q.Get("depth"), q.Get("cloud")
	set := 0
	for _, v := range []string{disp, depth, cloud} {
		if v != "" {
			set++
		}
	}
	if set > 1 {
		return formatJSON, errors.New("at most one of disparity=, depth=, cloud= may be requested")
	}
	format := formatJSON
	switch {
	case disp != "":
		if disp != "pfm" {
			return formatJSON, fmt.Errorf("unknown disparity format %q (want pfm)", disp)
		}
		format = formatDispPFM
	case depth != "":
		if depth != "pfm" {
			return formatJSON, fmt.Errorf("unknown depth format %q (want pfm)", depth)
		}
		format = formatDepthPFM
	case cloud != "":
		switch cloud {
		case "ply":
			format = formatCloudPLY
		case "plybin":
			format = formatCloudPLYBin
		case "bin":
			format = formatCloudBin
		default:
			return formatJSON, fmt.Errorf("unknown cloud format %q (want ply|plybin|bin)", cloud)
		}
	}
	if (format == formatDepthPFM || format >= formatCloudPLY) && sess.calib == nil {
		return formatJSON, errors.New("depth and cloud formats require a calibrated session (create it with a calibration)")
	}
	return format, nil
}

// writeFrameReply renders a completed frame: JSON stats by default, or one
// of the binary formats (stats travel in X-ASV-* headers). Depth and cloud
// replies triangulate through the session's calibration.
func (s *Server) writeFrameReply(w http.ResponseWriter, sess *session, format replyFormat, rep frameReply) {
	// Every reply format carries the served rung in headers, so clients
	// (and the load generator) see degradation uniformly without parsing
	// format-specific bodies.
	rungName := s.ladder[rep.rung].Name
	w.Header().Set("X-ASV-Rung", rungName)
	w.Header().Set("X-ASV-Degraded", fmt.Sprint(rep.rung > 0))
	if format == formatJSON {
		writeJSON(w, http.StatusOK, FrameResponse{
			Session:      sess.id,
			Frame:        rep.frame,
			IsKey:        rep.res.IsKey,
			MACs:         rep.res.MACs,
			MeanMotionPx: rep.res.MeanMotionPx,
			Disparity:    rep.stats,
			QueueMs:      float64(rep.queueWait) / 1e6,
			ComputeMs:    float64(rep.compute) / 1e6,
			Rung:         rungName,
			Degraded:     rep.rung > 0,
		})
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-ASV-Frame", fmt.Sprint(rep.frame))
	w.Header().Set("X-ASV-Is-Key", fmt.Sprint(rep.res.IsKey))
	w.Header().Set("X-ASV-MACs", fmt.Sprint(rep.res.MACs))

	// Write failures past this point mean the client hung up; headers are
	// gone, so there is nothing to report.
	switch format {
	case formatDispPFM:
		//asvlint:ignore droppederr a short write mid-reply means the client hung up; no recovery
		imgproc.WritePFM(w, rep.res.Disparity)
	case formatDepthPFM:
		s.depthMapsServed.Add(1)
		//asvlint:ignore droppederr a short write mid-reply means the client hung up; no recovery
		imgproc.WritePFM(w, perception.DepthMap(rep.res.Disparity, sess.calib))
	default:
		cl := perception.Reproject(rep.res.Disparity, rep.left, sess.calib)
		st := cl.Stats()
		s.cloudsServed.Add(1)
		s.cloudPoints.Add(int64(st.Points))
		w.Header().Set("X-ASV-Points", fmt.Sprint(st.Points))
		w.Header().Set("X-ASV-Depth-P50", fmt.Sprint(st.P50Z))
		w.Header().Set("X-ASV-Depth-P90", fmt.Sprint(st.P90Z))
		switch format {
		case formatCloudPLY:
			//asvlint:ignore droppederr a short write mid-reply means the client hung up; no recovery
			perception.WritePLYASCII(w, cl)
		case formatCloudPLYBin:
			//asvlint:ignore droppederr a short write mid-reply means the client hung up; no recovery
			perception.WritePLYBinary(w, cl)
		case formatCloudBin:
			//asvlint:ignore droppederr a short write mid-reply means the client hung up; no recovery
			w.Write(perception.EncodeCloud(cl))
		}
	}
}

// decodePair extracts the left/right images of a multipart upload. Each
// part may be PGM or PFM (sniffed by magic); decode enforces the
// configured pixel cap via imgproc's typed error.
func (s *Server) decodePair(r *http.Request) (left, right *imgproc.Image, err error) {
	// Bound the bytes we are willing to buffer: 4 bytes per pixel per
	// image for PFM plus generous header/boundary slack.
	limit := int64(s.cfg.MaxPixels)*8 + 1<<16
	r.Body = http.MaxBytesReader(nil, r.Body, limit)
	if err := r.ParseMultipartForm(limit); err != nil {
		return nil, nil, fmt.Errorf("parsing multipart upload: %w", err)
	}
	//asvlint:ignore droppederr best-effort temp-file cleanup; decode already has the bytes
	defer r.MultipartForm.RemoveAll()
	for _, name := range []string{"left", "right"} {
		f, _, err := r.FormFile(name)
		if err != nil {
			return nil, nil, fmt.Errorf("missing %q image part: %w", name, err)
		}
		im, err := s.decodeImage(f)
		//asvlint:ignore droppederr read-only multipart part; decode result is what matters
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("decoding %q: %w", name, err)
		}
		if name == "left" {
			left = im
		} else {
			right = im
		}
	}
	return left, right, nil
}

// decodeImage sniffs PGM ("P5") vs PFM ("Pf") and decodes under the
// configured pixel cap, scrubbing non-finite PFM samples (the kernels are
// clamp-safe on any finite input).
func (s *Server) decodeImage(f io.Reader) (*imgproc.Image, error) {
	br := newSniffReader(f)
	magic, err := br.peek2()
	if err != nil {
		return nil, fmt.Errorf("reading magic: %w", err)
	}
	var im *imgproc.Image
	switch magic {
	case "P5":
		im, err = imgproc.ReadPGMLimit(br, s.cfg.MaxPixels)
	case "Pf":
		im, err = imgproc.ReadPFMLimit(br, s.cfg.MaxPixels)
	default:
		return nil, fmt.Errorf("unsupported image magic %q (want PGM P5 or PFM Pf)", magic)
	}
	if err != nil {
		return nil, err
	}
	sanitize(im)
	return im, nil
}

// sanitize replaces non-finite samples with 0 so hostile PFM payloads
// cannot push NaN/Inf into the temporal kernels.
func sanitize(im *imgproc.Image) {
	for i, v := range im.Pix {
		if v != v || v > 1e9 || v < -1e9 {
			im.Pix[i] = 0
		}
	}
}

// --- small plumbing -----------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//asvlint:ignore droppederr an encode failure mid-reply means the client hung up; no recovery
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

// sniffReader lets the decoder peek the 2-byte magic without consuming it.
type sniffReader struct {
	r      io.Reader
	peeked []byte
}

func newSniffReader(r io.Reader) *sniffReader { return &sniffReader{r: r} }

func (s *sniffReader) peek2() (string, error) {
	buf := make([]byte, 2)
	if _, err := io.ReadFull(s.r, buf); err != nil {
		return "", err
	}
	s.peeked = buf
	return string(buf), nil
}

func (s *sniffReader) Read(p []byte) (int, error) {
	if len(s.peeked) > 0 {
		n := copy(p, s.peeked)
		s.peeked = s.peeked[n:]
		return n, nil
	}
	return s.r.Read(p)
}
