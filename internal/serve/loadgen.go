package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"sort"
	"sync"
	"time"

	"asv/internal/dataset"
	"asv/internal/imgproc"
)

// Load generation: replay synthetic stereo streams against a live server at
// a target aggregate QPS and report latency percentiles. cmd/asvload wraps
// this for the command line; asvbench -exp serve runs it in-process against
// a freshly started server to produce BENCH_serve.json.

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	BaseURL  string  `json:"base_url"` // e.g. "http://127.0.0.1:8080"
	Sessions int     `json:"sessions"` // concurrent sessions to drive
	Frames   int     `json:"frames"`   // frames submitted per session
	QPS      float64 `json:"qps"`      // aggregate target rate (0 = as fast as possible)
	W        int     `json:"w"`
	H        int     `json:"h"`
	PW       int     `json:"pw"`
	Preset   string  `json:"preset"` // "sceneflow" or "kitti"
	Seed     int64   `json:"seed"`
	// Upload ships PGM-encoded frames in the request body instead of using
	// server-side preset sessions — exercises the decode path at the price
	// of client-side encoding.
	Upload bool `json:"upload"`
	// Timeout bounds each HTTP request.
	Timeout time.Duration `json:"-"`
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Sessions < 1 {
		c.Sessions = 4
	}
	if c.Frames < 1 {
		c.Frames = 12
	}
	if c.W < 16 {
		c.W = 96
	}
	if c.H < 16 {
		c.H = 64
	}
	if c.PW < 1 {
		c.PW = 4
	}
	if c.Preset == "" {
		c.Preset = "sceneflow"
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// LoadReport aggregates one run. Latency percentiles cover successful frame
// submissions only; error counts cover everything else.
type LoadReport struct {
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Rejected   int     `json:"rejected_429"`
	Status4xx  int     `json:"status_4xx"` // non-429 client errors
	Status5xx  int     `json:"status_5xx"`
	Transport  int     `json:"transport_errors"`
	KeyFrames  int     `json:"key_frames"`
	NonKey     int     `json:"non_key_frames"`
	DurationMs float64 `json:"duration_ms"`
	AchievedTP float64 `json:"achieved_rps"` // completed requests / duration
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
}

// RunLoad drives the server at cfg.BaseURL. Each session goroutine submits
// its frames strictly in order (mirroring a real camera client); global
// pacing comes from a shared token bucket at cfg.QPS. The first error that
// prevents the run from even starting (e.g. session creation refused) is
// returned; per-request failures are tallied in the report instead.
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	cfg = cfg.withDefaults()
	client := &http.Client{Timeout: cfg.Timeout}

	// Pre-encode upload bodies once per session so client-side encoding
	// cost does not pollute the measured latencies.
	var uploads [][]framePayload
	if cfg.Upload {
		uploads = make([][]framePayload, cfg.Sessions)
		for i := range uploads {
			frames, err := encodeFrames(cfg, cfg.Seed+int64(i))
			if err != nil {
				return LoadReport{}, fmt.Errorf("encoding upload frames: %w", err)
			}
			uploads[i] = frames
		}
	}

	ids := make([]string, cfg.Sessions)
	for i := range ids {
		id, err := createSession(client, cfg, i)
		if err != nil {
			return LoadReport{}, err
		}
		ids[i] = id
	}

	// Token bucket: one token per request, refilled at QPS. Buffer a small
	// burst so pacing jitter does not serialize the workers.
	tokens := make(chan struct{}, cfg.Sessions)
	stopPacer := make(chan struct{})
	if cfg.QPS > 0 {
		go func() {
			t := time.NewTicker(time.Duration(float64(time.Second) / cfg.QPS))
			defer t.Stop()
			for {
				select {
				case <-stopPacer:
					return
				case <-t.C:
					select {
					case tokens <- struct{}{}:
					default:
					}
				}
			}
		}()
	}

	type sample struct {
		ms    float64
		isKey bool
	}
	var mu sync.Mutex
	var samples []sample
	rep := LoadReport{}

	record := func(status int, d time.Duration, isKey bool, transportErr bool) {
		mu.Lock()
		defer mu.Unlock()
		rep.Requests++
		switch {
		case transportErr:
			rep.Transport++
		case status == http.StatusOK:
			rep.OK++
			samples = append(samples, sample{float64(d) / 1e6, isKey})
			if isKey {
				rep.KeyFrames++
			} else {
				rep.NonKey++
			}
		case status == http.StatusTooManyRequests:
			rep.Rejected++
		case status >= 500:
			rep.Status5xx++
		default:
			rep.Status4xx++
		}
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for f := 0; f < cfg.Frames; f++ {
				if cfg.QPS > 0 {
					<-tokens
				}
				var body io.Reader
				contentType := ""
				if cfg.Upload {
					p := uploads[i][f%len(uploads[i])]
					body = bytes.NewReader(p.body)
					contentType = p.contentType
				}
				tReq := time.Now()
				status, isKey, err := submitFrame(client, cfg.BaseURL, ids[i], body, contentType)
				if err != nil {
					record(0, 0, false, true)
					continue
				}
				record(status, time.Since(tReq), isKey, false)
				if status == http.StatusTooManyRequests {
					// Honor the backpressure hint, scaled down so a smoke
					// run is not dominated by sleeps.
					time.Sleep(20 * time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	close(stopPacer)

	rep.DurationMs = float64(time.Since(t0)) / 1e6
	if rep.DurationMs > 0 {
		rep.AchievedTP = float64(rep.Requests) / (rep.DurationMs / 1e3)
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a].ms < samples[b].ms })
	if n := len(samples); n > 0 {
		pct := func(q float64) float64 {
			idx := int(q*float64(n)) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= n {
				idx = n - 1
			}
			return samples[idx].ms
		}
		rep.P50Ms = pct(0.50)
		rep.P95Ms = pct(0.95)
		rep.P99Ms = pct(0.99)
		rep.MaxMs = samples[n-1].ms
	}
	return rep, nil
}

// createSession opens one serving session; preset mode asks the server to
// synthesize frames, upload mode leaves the session empty.
func createSession(client *http.Client, cfg LoadConfig, i int) (string, error) {
	req := CreateSessionRequest{PW: cfg.PW}
	if !cfg.Upload {
		req.Preset = cfg.Preset
		req.W, req.H = cfg.W, cfg.H
		req.Frames = cfg.Frames
		req.Seed = cfg.Seed + int64(i)
	}
	buf, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("encoding session request: %w", err)
	}
	resp, err := client.Post(cfg.BaseURL+"/v1/sessions", "application/json", bytes.NewReader(buf))
	if err != nil {
		return "", fmt.Errorf("creating session: %w", err)
	}
	//asvlint:ignore droppederr response body close error is not actionable in a load generator
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		//asvlint:ignore droppederr body is best-effort color for the error message below
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("creating session: %s: %s", resp.Status, body)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", fmt.Errorf("decoding session info: %w", err)
	}
	return info.ID, nil
}

// submitFrame posts one frame and parses just enough of the reply.
func submitFrame(client *http.Client, baseURL, id string, body io.Reader, contentType string) (status int, isKey bool, err error) {
	if body == nil {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/sessions/"+id+"/frames", body)
	if err != nil {
		return 0, false, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, err
	}
	//asvlint:ignore droppederr response body close error is not actionable in a load generator
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var fr FrameResponse
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			return resp.StatusCode, false, nil // count as OK; stats only lose key split
		}
		return resp.StatusCode, fr.IsKey, nil
	}
	//asvlint:ignore droppederr best-effort drain so the connection can be reused
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, false, nil
}

// framePayload is one pre-encoded multipart upload body.
type framePayload struct {
	body        []byte
	contentType string
}

// encodeFrames renders a synthetic sequence and packs each stereo pair as a
// multipart PGM upload.
func encodeFrames(cfg LoadConfig, seed int64) ([]framePayload, error) {
	scene := dataset.SceneFlowLike(cfg.W, cfg.H, cfg.Frames, seed)[0]
	if cfg.Preset == "kitti" {
		scene = dataset.KITTILike(cfg.W, cfg.H, 1, seed)[0]
		scene.FrameCount = cfg.Frames
	}
	seq := dataset.Generate(scene)
	out := make([]framePayload, 0, len(seq.Frames))
	for _, fr := range seq.Frames {
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		for _, part := range []struct {
			name string
			im   *imgproc.Image
		}{{"left", fr.Left}, {"right", fr.Right}} {
			fw, err := mw.CreateFormFile(part.name, part.name+".pgm")
			if err != nil {
				return nil, err
			}
			if err := imgproc.WritePGM(fw, part.im); err != nil {
				return nil, err
			}
		}
		if err := mw.Close(); err != nil {
			return nil, err
		}
		out = append(out, framePayload{body: buf.Bytes(), contentType: mw.FormDataContentType()})
	}
	return out, nil
}
