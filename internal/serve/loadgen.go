package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"asv/internal/dataset"
	"asv/internal/imgproc"
	"asv/internal/perception"
	"asv/internal/rectify"
)

// Load generation: replay synthetic stereo streams against a live server at
// a target aggregate QPS and report latency percentiles. cmd/asvload wraps
// this for the command line (including cluster mode, which fans the same
// workload out over several endpoints and reports aggregate percentiles);
// asvbench -exp serve runs it in-process to produce BENCH_serve.json.

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	BaseURL  string  `json:"base_url"` // e.g. "http://127.0.0.1:8080"
	Sessions int     `json:"sessions"` // concurrent sessions to drive
	Frames   int     `json:"frames"`   // frames submitted per session
	QPS      float64 `json:"qps"`      // aggregate target rate (0 = as fast as possible)
	W        int     `json:"w"`
	H        int     `json:"h"`
	PW       int     `json:"pw"`
	Preset   string  `json:"preset"` // "sceneflow" or "kitti"
	Seed     int64   `json:"seed"`
	// Upload ships PGM-encoded frames in the request body instead of using
	// server-side preset sessions — exercises the decode path at the price
	// of client-side encoding.
	Upload bool `json:"upload"`
	// Raw ships unrectified uploads: each session is created with a
	// calibration carrying non-zero per-eye rotations, and every uploaded
	// pair is misaligned through it client-side, so the server's
	// rectify-before-match path is on the measured critical path. Implies
	// Upload.
	Raw bool `json:"raw"`
	// Format is the response format every frame requests: "json" (the
	// default), "disparity" (PFM), "depth" (PFM), or "cloud" (binary
	// codec). Depth and cloud sessions are created with a calibration.
	Format string `json:"format,omitempty"`
	// Mixed cycles the run's sessions through rectified and raw uploads and
	// all four response formats, exercising every serving path at once.
	// Per-session it overrides Raw and Format.
	Mixed bool `json:"mixed"`
	// IDs optionally pins the session ids this run creates (session i gets
	// IDs[i]; extra sessions fall back to server-minted ids). The multi-shard
	// bench uses this to pre-balance sessions across a gateway's hash ring so
	// the measured scaling is deterministic rather than at the mercy of a
	// random id split. Ids must satisfy the server's [A-Za-z0-9._-] rule.
	IDs []string `json:"-"`
	// SLO is the service class every session of this run declares: ""/"gold"
	// (never degraded, overload answers 429) or "besteffort" (the server may
	// degrade frames down the quality ladder instead of rejecting them).
	SLO string `json:"slo,omitempty"`
	// DeadlineMs is the per-frame latency target best-effort sessions carry
	// (0 uses the server default). Ignored for gold runs.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// Retry429 is how many times a 429'd frame is retried (after honoring
	// the Retry-After hint) before it is abandoned. Zero keeps the default;
	// negative disables retries.
	Retry429 int `json:"retry_429"`
	// Max429Wait caps the per-retry sleep taken from the server's
	// Retry-After header, so a smoke run against a saturated server is not
	// dominated by sleeping. Zero keeps the default.
	Max429Wait time.Duration `json:"-"`
	// Timeout bounds each HTTP request.
	Timeout time.Duration `json:"-"`
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Sessions < 1 {
		c.Sessions = 4
	}
	if c.Frames < 1 {
		c.Frames = 12
	}
	if c.W < 16 {
		c.W = 96
	}
	if c.H < 16 {
		c.H = 64
	}
	if c.PW < 1 {
		c.PW = 4
	}
	if c.Preset == "" {
		c.Preset = "sceneflow"
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Retry429 == 0 {
		c.Retry429 = 3
	}
	if c.Raw {
		c.Upload = true
	}
	if c.Format == "" {
		c.Format = "json"
	}
	if c.Max429Wait <= 0 {
		c.Max429Wait = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// LoadReport aggregates one run. Latency percentiles cover successful frame
// submissions only; error counts cover everything else.
type LoadReport struct {
	Requests  int   `json:"requests"`
	OK        int   `json:"ok"`
	Rejected  int   `json:"rejected_429"`
	Retries   int   `json:"retries_429"` // 429s that were retried (⊆ Rejected)
	Dropped   int   `json:"dropped"`     // frames abandoned after exhausting retries
	Status4xx int   `json:"status_4xx"`  // non-429 client errors
	Status5xx int   `json:"status_5xx"`
	Transport int   `json:"transport_errors"`
	KeyFrames int   `json:"key_frames"`
	NonKey    int   `json:"non_key_frames"`
	DepthMaps int   `json:"depth_maps"`   // frames answered as metric depth
	Clouds    int   `json:"clouds"`       // frames answered as point clouds
	CloudPts  int64 `json:"cloud_points"` // total points across cloud replies
	// Degraded counts OK frames served below the ladder's top rung; Rungs
	// breaks all OK frames down by the rung name the reply carried
	// (X-ASV-Rung). Servers predating the ladder report neither.
	Degraded   int            `json:"degraded,omitempty"`
	Rungs      map[string]int `json:"rungs,omitempty"`
	DurationMs float64        `json:"duration_ms"`
	AchievedTP float64        `json:"achieved_rps"` // completed requests / duration
	OKRps      float64        `json:"ok_rps"`       // successful frames / duration
	P50Ms      float64        `json:"p50_ms"`
	P95Ms      float64        `json:"p95_ms"`
	P99Ms      float64        `json:"p99_ms"`
	MaxMs      float64        `json:"max_ms"`
}

// ClusterLoadReport is a cluster-mode run: one LoadReport per endpoint plus
// an aggregate whose percentiles are computed over the merged sample set
// (not averaged per-target percentiles, which would understate the tail).
type ClusterLoadReport struct {
	Aggregate LoadReport            `json:"aggregate"`
	Targets   map[string]LoadReport `json:"targets"`
}

// collector tallies request outcomes and latency samples across the session
// goroutines of one run.
type collector struct {
	mu      sync.Mutex
	rep     LoadReport
	samples []float64 // latency ms of OK requests, unsorted until finish
}

func (c *collector) record(status int, d time.Duration, isKey bool, transportErr bool, format string, points int, rung string, degraded bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rep.Requests++
	switch {
	case transportErr:
		c.rep.Transport++
	case status == http.StatusOK:
		c.rep.OK++
		c.samples = append(c.samples, float64(d)/1e6)
		if isKey {
			c.rep.KeyFrames++
		} else {
			c.rep.NonKey++
		}
		if rung != "" {
			if c.rep.Rungs == nil {
				c.rep.Rungs = make(map[string]int)
			}
			c.rep.Rungs[rung]++
		}
		if degraded {
			c.rep.Degraded++
		}
		switch format {
		case "depth":
			c.rep.DepthMaps++
		case "cloud":
			c.rep.Clouds++
			if points > 0 {
				c.rep.CloudPts += int64(points)
			}
		}
	case status == http.StatusTooManyRequests:
		c.rep.Rejected++
	case status >= 500:
		c.rep.Status5xx++
	default:
		c.rep.Status4xx++
	}
}

func (c *collector) retried() {
	c.mu.Lock()
	c.rep.Retries++
	c.mu.Unlock()
}

func (c *collector) dropped() {
	c.mu.Lock()
	c.rep.Dropped++
	c.mu.Unlock()
}

// finish stamps duration-derived rates and percentiles and returns the
// report plus the raw samples (for cluster-level aggregation).
func (c *collector) finish(elapsed time.Duration) (LoadReport, []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rep.DurationMs = float64(elapsed) / 1e6
	if c.rep.DurationMs > 0 {
		c.rep.AchievedTP = float64(c.rep.Requests) / (c.rep.DurationMs / 1e3)
		c.rep.OKRps = float64(c.rep.OK) / (c.rep.DurationMs / 1e3)
	}
	setPercentiles(&c.rep, c.samples)
	return c.rep, c.samples
}

// setPercentiles fills rep's latency fields from samples (sorted in place).
func setPercentiles(rep *LoadReport, samples []float64) {
	n := len(samples)
	if n == 0 {
		return
	}
	sort.Float64s(samples)
	pct := func(q float64) float64 {
		idx := int(q*float64(n)) - 1
		if idx < 0 {
			idx = 0
		}
		return samples[idx]
	}
	rep.P50Ms = pct(0.50)
	rep.P95Ms = pct(0.95)
	rep.P99Ms = pct(0.99)
	rep.MaxMs = samples[n-1]
}

// RunLoad drives the server at cfg.BaseURL. Each session goroutine submits
// its frames strictly in order (mirroring a real camera client); global
// pacing comes from a shared token bucket at cfg.QPS. The first error that
// prevents the run from even starting (e.g. session creation refused) is
// returned; per-request failures are tallied in the report instead.
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	rep, _, err := runLoad(cfg)
	return rep, err
}

// RunLoadCluster runs the same workload against every target concurrently —
// each target gets cfg.Sessions sessions and its own pacer — and merges the
// results. Aggregate percentiles come from the union of all latency
// samples, so the cluster p99 reflects the true tail across shards. A
// target that cannot even start (session creation refused) fails the whole
// run: a half-missing cluster would silently report inflated throughput.
func RunLoadCluster(cfg LoadConfig, targets []string) (ClusterLoadReport, error) {
	if len(targets) == 0 {
		return ClusterLoadReport{}, fmt.Errorf("cluster load: no targets")
	}
	type result struct {
		target  string
		rep     LoadReport
		samples []float64
		err     error
	}
	results := make([]result, len(targets))
	var wg sync.WaitGroup
	t0 := time.Now()
	for i, target := range targets {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			c := cfg
			c.BaseURL = target
			// Decorrelate the synthetic content across targets so every
			// shard is not matching the identical frames.
			c.Seed = cfg.Seed + int64(i)*1000
			rep, samples, err := runLoad(c)
			results[i] = result{target: target, rep: rep, samples: samples, err: err}
		}(i, target)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	out := ClusterLoadReport{Targets: make(map[string]LoadReport, len(targets))}
	var all []float64
	for _, r := range results {
		if r.err != nil {
			return ClusterLoadReport{}, fmt.Errorf("target %s: %w", r.target, r.err)
		}
		out.Targets[r.target] = r.rep
		agg := &out.Aggregate
		agg.Requests += r.rep.Requests
		agg.OK += r.rep.OK
		agg.Rejected += r.rep.Rejected
		agg.Retries += r.rep.Retries
		agg.Dropped += r.rep.Dropped
		agg.Status4xx += r.rep.Status4xx
		agg.Status5xx += r.rep.Status5xx
		agg.Transport += r.rep.Transport
		agg.KeyFrames += r.rep.KeyFrames
		agg.NonKey += r.rep.NonKey
		agg.DepthMaps += r.rep.DepthMaps
		agg.Clouds += r.rep.Clouds
		agg.CloudPts += r.rep.CloudPts
		agg.Degraded += r.rep.Degraded
		for rung, n := range r.rep.Rungs {
			if agg.Rungs == nil {
				agg.Rungs = make(map[string]int)
			}
			agg.Rungs[rung] += n
		}
		all = append(all, r.samples...)
	}
	out.Aggregate.DurationMs = float64(elapsed) / 1e6
	if out.Aggregate.DurationMs > 0 {
		out.Aggregate.AchievedTP = float64(out.Aggregate.Requests) / (out.Aggregate.DurationMs / 1e3)
		out.Aggregate.OKRps = float64(out.Aggregate.OK) / (out.Aggregate.DurationMs / 1e3)
	}
	setPercentiles(&out.Aggregate, all)
	return out, nil
}

// loadFormats are the response formats mixed mode cycles through.
var loadFormats = []string{"json", "disparity", "depth", "cloud"}

// scenario resolves what session i of the run does: whether its uploads are
// raw (misaligned, server rectifies) and which response format it requests.
func (c LoadConfig) scenario(i int) (raw bool, format string) {
	if c.Mixed {
		return c.Upload && i%2 == 1, loadFormats[i%len(loadFormats)]
	}
	return c.Raw, c.Format
}

// calibrated reports whether session i needs a camera model: raw uploads
// (the server must rectify) or a triangulating response format.
func (c LoadConfig) calibrated(i int) bool {
	raw, format := c.scenario(i)
	return raw || format == "depth" || format == "cloud"
}

// loadCalibration is the camera model load sessions use; raw sessions get
// non-zero per-eye rotations so rectification is a real warp.
func loadCalibration(cfg LoadConfig, raw bool) *perception.Calibration {
	c := perception.DefaultCalibration(cfg.W, cfg.H)
	if raw {
		c.LeftRPY = [3]float64{0.004, -0.003, 0.002}
		c.RightRPY = [3]float64{-0.002, 0.005, -0.003}
	}
	return c
}

// formatQuery maps a response format name to the frame-submission query.
func formatQuery(format string) (string, error) {
	switch format {
	case "", "json":
		return "", nil
	case "disparity":
		return "?disparity=pfm", nil
	case "depth":
		return "?depth=pfm", nil
	case "cloud":
		return "?cloud=bin", nil
	default:
		return "", fmt.Errorf("unknown response format %q (json|disparity|depth|cloud)", format)
	}
}

func runLoad(cfg LoadConfig) (LoadReport, []float64, error) {
	cfg = cfg.withDefaults()
	client := &http.Client{Timeout: cfg.Timeout}
	if _, err := formatQuery(cfg.Format); err != nil {
		return LoadReport{}, nil, err
	}

	// Pre-encode upload bodies once per session so client-side encoding
	// cost does not pollute the measured latencies.
	var uploads [][]framePayload
	if cfg.Upload {
		uploads = make([][]framePayload, cfg.Sessions)
		for i := range uploads {
			var misalign *perception.Calibration
			if raw, _ := cfg.scenario(i); raw {
				misalign = loadCalibration(cfg, true)
			}
			frames, err := encodeFrames(cfg, cfg.Seed+int64(i), misalign)
			if err != nil {
				return LoadReport{}, nil, fmt.Errorf("encoding upload frames: %w", err)
			}
			uploads[i] = frames
		}
	}

	ids := make([]string, cfg.Sessions)
	for i := range ids {
		id, err := createSession(client, cfg, i)
		if err != nil {
			return LoadReport{}, nil, err
		}
		ids[i] = id
	}

	// Token bucket: one token per request, refilled at QPS. Buffer a small
	// burst so pacing jitter does not serialize the workers.
	tokens := make(chan struct{}, cfg.Sessions)
	stopPacer := make(chan struct{})
	if cfg.QPS > 0 {
		go func() {
			t := time.NewTicker(time.Duration(float64(time.Second) / cfg.QPS))
			defer t.Stop()
			for {
				select {
				case <-stopPacer:
					return
				case <-t.C:
					select {
					case tokens <- struct{}{}:
					default:
					}
				}
			}
		}()
	}

	col := &collector{}
	t0 := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, format := cfg.scenario(i)
			//asvlint:ignore droppederr cfg.Format was validated at run start; per-session formats come from loadFormats
			query, _ := formatQuery(format)
			for f := 0; f < cfg.Frames; f++ {
				// A frame is attempted up to 1+Retry429 times: a 429 is
				// real backpressure, but a camera client does not drop a
				// frame on the floor the moment the queue blips.
				for attempt := 0; ; attempt++ {
					if cfg.QPS > 0 {
						<-tokens
					}
					var body io.Reader
					contentType := ""
					if cfg.Upload {
						p := uploads[i][f%len(uploads[i])]
						body = bytes.NewReader(p.body)
						contentType = p.contentType
					}
					tReq := time.Now()
					res, err := submitFrame(client, cfg.BaseURL, ids[i], query, body, contentType)
					if err != nil {
						col.record(0, 0, false, true, format, 0, "", false)
						break
					}
					col.record(res.status, time.Since(tReq), res.isKey, false, format, res.points, res.rung, res.degraded)
					if res.status != http.StatusTooManyRequests {
						break
					}
					if attempt >= cfg.Retry429 {
						col.dropped()
						break
					}
					col.retried()
					// Honor the server's Retry-After hint, capped so a
					// saturated smoke run is not dominated by sleeping.
					wait := res.retryAfter
					if wait <= 0 || wait > cfg.Max429Wait {
						wait = cfg.Max429Wait
					}
					time.Sleep(wait)
				}
			}
		}(i)
	}
	wg.Wait()
	close(stopPacer)

	rep, samples := col.finish(time.Since(t0))
	return rep, samples, nil
}

// createSession opens one serving session; preset mode asks the server to
// synthesize frames, upload mode leaves the session empty.
func createSession(client *http.Client, cfg LoadConfig, i int) (string, error) {
	req := CreateSessionRequest{PW: cfg.PW, SLO: cfg.SLO, DeadlineMs: cfg.DeadlineMs}
	if i < len(cfg.IDs) {
		req.ID = cfg.IDs[i]
	}
	if !cfg.Upload {
		req.Preset = cfg.Preset
		req.W, req.H = cfg.W, cfg.H
		req.Frames = cfg.Frames
		req.Seed = cfg.Seed + int64(i)
	}
	if cfg.calibrated(i) {
		raw, _ := cfg.scenario(i)
		req.Calibration = loadCalibration(cfg, raw).EncodeJSON()
	}
	buf, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("encoding session request: %w", err)
	}
	resp, err := client.Post(cfg.BaseURL+"/v1/sessions", "application/json", bytes.NewReader(buf))
	if err != nil {
		return "", fmt.Errorf("creating session: %w", err)
	}
	//asvlint:ignore droppederr response body close error is not actionable in a load generator
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		//asvlint:ignore droppederr body is best-effort color for the error message below
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("creating session: %s: %s", resp.Status, body)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", fmt.Errorf("decoding session info: %w", err)
	}
	//asvlint:ignore droppederr best-effort drain so the connection can be reused
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return info.ID, nil
}

// submitResult is what one frame submission yielded: the HTTP status, the
// stats the reply carried (key split, cloud points, served rung), and the
// Retry-After hint on 429s.
type submitResult struct {
	status     int
	isKey      bool
	points     int
	rung       string
	degraded   bool
	retryAfter time.Duration
}

// submitFrame posts one frame (query selects the response format) and
// parses just enough of the reply: the JSON stats for the default format,
// the X-ASV-* headers for the binary ones (the served rung always travels
// in headers). The body is always fully drained and closed — on the
// decode-failure and non-200 paths too — so the client's connection pool
// actually gets reuse instead of leaking a connection per error.
func submitFrame(client *http.Client, baseURL, id, query string, body io.Reader, contentType string) (submitResult, error) {
	if body == nil {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/sessions/"+id+"/frames"+query, body)
	if err != nil {
		return submitResult{}, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := client.Do(req)
	if err != nil {
		return submitResult{}, err
	}
	defer func() {
		// Binary replies (PFM, clouds) are image-sized; drain them fully so
		// the connection is actually reusable.
		//asvlint:ignore droppederr best-effort drain so the connection can be reused
		io.Copy(io.Discard, resp.Body)
		//asvlint:ignore droppederr response body close error is not actionable in a load generator
		resp.Body.Close()
	}()
	res := submitResult{status: resp.StatusCode}
	if resp.StatusCode == http.StatusOK {
		res.rung = resp.Header.Get("X-ASV-Rung")
		//asvlint:ignore droppederr header absent on pre-ladder servers; false is the right default
		res.degraded, _ = strconv.ParseBool(resp.Header.Get("X-ASV-Degraded"))
		if query != "" {
			//asvlint:ignore droppederr absent/garbled header reads as false; stats only lose the key split
			res.isKey, _ = strconv.ParseBool(resp.Header.Get("X-ASV-Is-Key"))
			//asvlint:ignore droppederr header only present on cloud replies; zero is the right default
			res.points, _ = strconv.Atoi(resp.Header.Get("X-ASV-Points"))
			return res, nil
		}
		var fr FrameResponse
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			return res, nil // count as OK; stats only lose key split
		}
		res.isKey = fr.IsKey
		return res, nil
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
			res.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return res, nil
}

// framePayload is one pre-encoded multipart upload body.
type framePayload struct {
	body        []byte
	contentType string
}

// encodeFrames renders a synthetic sequence and packs each stereo pair as a
// multipart PGM upload. A non-nil misalign warps each pair off the
// rectified frame through the calibration's per-eye rotations first —
// simulating the raw capture a physical rig would upload.
func encodeFrames(cfg LoadConfig, seed int64, misalign *perception.Calibration) ([]framePayload, error) {
	scene := dataset.SceneFlowLike(cfg.W, cfg.H, cfg.Frames, seed)[0]
	if cfg.Preset == "kitti" {
		scene = dataset.KITTILike(cfg.W, cfg.H, 1, seed)[0]
		scene.FrameCount = cfg.Frames
	}
	seq := dataset.Generate(scene)
	out := make([]framePayload, 0, len(seq.Frames))
	for _, fr := range seq.Frames {
		left, right := fr.Left, fr.Right
		if misalign != nil {
			left = rectify.Misalign(left, misalign.Intrinsics(), misalign.RotLeft())
			right = rectify.Misalign(right, misalign.Intrinsics(), misalign.RotRight())
		}
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		for _, part := range []struct {
			name string
			im   *imgproc.Image
		}{{"left", left}, {"right", right}} {
			fw, err := mw.CreateFormFile(part.name, part.name+".pgm")
			if err != nil {
				return nil, err
			}
			if err := imgproc.WritePGM(fw, part.im); err != nil {
				return nil, err
			}
		}
		if err := mw.Close(); err != nil {
			return nil, err
		}
		out = append(out, framePayload{body: buf.Bytes(), contentType: mw.FormDataContentType()})
	}
	return out, nil
}
