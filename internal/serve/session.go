package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/imgproc"
	"asv/internal/perception"
	"asv/internal/quality"
)

// A session owns one ISM state machine: the server runs DNN-oracle (or SGM)
// matching on the session's key frames and motion-propagated refinement on
// the frames between them, exactly as the batch pipeline would, but driven
// by request arrival. Frames of one session are processed strictly in
// submission order; the batcher guarantees at most one in-flight frame per
// session, so the core.Pipeline inside needs no lock of its own.
type session struct {
	id      string
	pw      int // 0 when the schedule is adaptive
	pipe    *core.Pipeline
	created time.Time

	// runMu serializes pipeline-state access between the worker processing
	// a frame and the snapshot encoder. The batcher already guarantees at
	// most one in-flight frame per session, so workers never contend; the
	// lock exists so a snapshot taken between frames observes fully
	// committed state.
	runMu sync.Mutex

	// preset, when non-nil, lets clients POST empty bodies: the server
	// feeds the session from this synthetic stereo sequence instead,
	// wrapping around at the end. Useful for load generation without
	// shipping image bytes.
	preset *presetSource

	// calib, when non-nil, is the session's camera model: incoming frames
	// are rectified through it before matching, and it unlocks the depth
	// and point-cloud response formats. Immutable after session creation
	// (workers read it without the run lock).
	calib *perception.Calibration

	// slo and deadlineMs are the session's service class and per-frame
	// latency target (DESIGN.md §12), immutable after creation. Gold
	// sessions are pinned to the ladder's top rung; best-effort sessions
	// may be degraded to meet deadlineMs under load.
	slo        quality.Class
	deadlineMs float64

	// level is the pyramid level of the rung the previous frame ran at,
	// guarded by runMu: the flow kernels require consecutive frames to
	// agree in size, so a rung switch across levels must Reset the
	// pipeline (costing one key frame at the new resolution).
	level int

	// lastRung is the ladder index the latest frame was served at;
	// degradedFrames counts frames served below the top rung. Both feed
	// SessionInfo.
	lastRung       atomic.Int64
	degradedFrames atomic.Int64

	// geoMu guards w/h: the worker pins the session's frame geometry on
	// first use (the temporal kernels require every frame of a stream to
	// agree) while info handlers read it concurrently.
	geoMu sync.Mutex
	w, h  int

	// lastUseNs (unix nanos) drives TTL and LRU eviction; pendingFrames
	// counts admitted-but-unfinished frames so the janitor never evicts a
	// session with queued work.
	lastUseNs     atomic.Int64
	pendingFrames atomic.Int64
	// frames counts completed frames; keyFrames counts how many ran the
	// key matcher.
	frames    atomic.Int64
	keyFrames atomic.Int64
}

func (s *session) touch() { s.lastUseNs.Store(time.Now().UnixNano()) }

func (s *session) idle() time.Duration {
	return time.Duration(time.Now().UnixNano() - s.lastUseNs.Load())
}

// checkGeometry pins the session's frame size on first use and rejects
// mismatched follow-ups (the flow and refinement kernels panic on size
// changes mid-stream, so this must be caught at admission).
func (s *session) checkGeometry(left, right *imgproc.Image) error {
	if left.W != right.W || left.H != right.H {
		return fmt.Errorf("left %dx%d and right %dx%d differ", left.W, left.H, right.W, right.H)
	}
	s.geoMu.Lock()
	defer s.geoMu.Unlock()
	if s.w == 0 {
		s.w, s.h = left.W, left.H
		return nil
	}
	if left.W != s.w || left.H != s.h {
		return fmt.Errorf("frame %dx%d does not match the session's established %dx%d",
			left.W, left.H, s.w, s.h)
	}
	return nil
}

// geometry returns the pinned frame size (0,0 before the first frame).
func (s *session) geometry() (w, h int) {
	s.geoMu.Lock()
	defer s.geoMu.Unlock()
	return s.w, s.h
}

// presetSource cycles through a pre-generated synthetic stereo sequence.
// cfg is kept alongside the generated frames so a snapshot can record the
// recipe instead of the pixels: restore regenerates the identical sequence.
type presetSource struct {
	name string
	cfg  dataset.SceneConfig
	seq  *dataset.Sequence
	next int // next frame index, owned by the batcher/worker path
}

func (ps *presetSource) frame() (left, right *imgproc.Image) {
	fr := ps.seq.Frames[ps.next%len(ps.seq.Frames)]
	ps.next++
	return fr.Left, fr.Right
}

// NewSessionID returns a fresh 13-char random session identifier. It is
// exported for the cluster gateway, which must know a session's id before
// the owning shard does: consistent hashing places the session by id, so
// the gateway mints the id, injects it into the create request, and routes
// by it.
func NewSessionID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("serve: session id entropy: " + err.Error())
	}
	return "s" + hex.EncodeToString(b[:])
}

// validSessionID accepts ids that are safe as both URL path segments and
// snapshot spill filenames: 1–64 chars of [A-Za-z0-9_-].
func validSessionID(id string) bool {
	if len(id) < 1 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// sessionTable is the server's id → session map with LRU-over-capacity and
// TTL eviction. All methods are safe for concurrent use.
type sessionTable struct {
	mu   sync.Mutex
	max  int
	byID map[string]*session

	// evictions counts sessions removed by capacity or TTL pressure (not
	// explicit DELETEs).
	evictions atomic.Int64
}

func newSessionTable(max int) *sessionTable {
	return &sessionTable{max: max, byID: make(map[string]*session)}
}

func (t *sessionTable) get(id string) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

// add inserts a session (replacing any same-id entry in place), evicting
// the least-recently-used existing session if the table is at capacity.
// Sessions with in-flight frames are passed over as eviction candidates;
// their queued work still completes because work items hold the *session
// pointer, removal only unlinks the id. The evicted session, if any, is
// returned so the server can spill it to disk before it is forgotten.
func (t *sessionTable) add(s *session) (evicted *session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.byID[s.id]; !exists && len(t.byID) >= t.max {
		var victim *session
		for _, cand := range t.byID {
			if cand.pendingFrames.Load() > 0 {
				continue
			}
			if victim == nil || cand.lastUseNs.Load() < victim.lastUseNs.Load() {
				victim = cand
			}
		}
		if victim != nil {
			delete(t.byID, victim.id)
			t.evictions.Add(1)
			evicted = victim
		}
	}
	t.byID[s.id] = s
	return evicted
}

// list returns the resident sessions sorted by id (stable output for the
// session-listing endpoint the cluster drain protocol walks).
func (t *sessionTable) list() []*session {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*session, 0, len(t.byID))
	for _, s := range t.byID {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// remove unlinks a session by id, returning whether it was present.
func (t *sessionTable) remove(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.byID[id]
	delete(t.byID, id)
	return ok
}

// expire evicts every idle session whose last use is older than ttl,
// returning the evicted sessions (for spill-to-disk). Sessions with queued
// frames are never expired.
func (t *sessionTable) expire(ttl time.Duration) []*session {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*session
	for id, s := range t.byID {
		if s.pendingFrames.Load() == 0 && s.idle() > ttl {
			delete(t.byID, id)
			t.evictions.Add(1)
			out = append(out, s)
		}
	}
	return out
}
