package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"asv/internal/core"
	"asv/internal/imgproc"
	"asv/internal/quality"
)

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		queued, workers int
		p95             time.Duration
		want            int
	}{
		{0, 1, 0, 1},                       // no latency data: conservative floor
		{0, 1, 100 * time.Millisecond, 1},  // empty queue: one frame's slack
		{10, 1, 500 * time.Millisecond, 6}, // (10+1)*0.5s = 5.5s → 6
		{10, 2, 500 * time.Millisecond, 3}, // (5+1)*0.5s = 3s
		{1000, 1, time.Second, 30},         // clamped high
		{-3, 0, time.Millisecond, 1},       // degenerate inputs clamp sane
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.queued, tc.workers, tc.p95); got != tc.want {
			t.Errorf("retryAfterSeconds(%d,%d,%v) = %d, want %d", tc.queued, tc.workers, tc.p95, got, tc.want)
		}
	}
}

func TestCreateSessionSLOValidation(t *testing.T) {
	_, ts := testServer(t, Config{}, 0)
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`{"slo":"platinum"}`); got != http.StatusBadRequest {
		t.Errorf("unknown slo: status %d, want 400", got)
	}
	if got := post(`{"slo":"gold","deadline_ms":50}`); got != http.StatusBadRequest {
		t.Errorf("gold with deadline: status %d, want 400", got)
	}
	if got := post(`{"slo":"besteffort","deadline_ms":50,"preset":"sceneflow","w":32,"h":24,"frames":2}`); got != http.StatusCreated {
		t.Errorf("besteffort session: status %d, want 201", got)
	}
}

// Gold sessions are pinned to the top rung: every reply names it, nothing
// counts as degraded, and the rung header is present on the default format.
func TestGoldSessionsStayOnTopRung(t *testing.T) {
	s, ts := testServer(t, Config{}, 0)
	info := createPresetSession(t, ts.URL, CreateSessionRequest{
		Preset: "sceneflow", W: 48, H: 32, Frames: 4, PW: 2,
	})
	if info.SLO != "gold" {
		t.Fatalf("default SLO %q, want gold", info.SLO)
	}
	for i := 0; i < 4; i++ {
		status, fr := submit(t, ts.URL, info.ID)
		if status != http.StatusOK {
			t.Fatalf("frame %d: status %d", i, status)
		}
		if fr.Rung != s.ladder[0].Name || fr.Degraded {
			t.Fatalf("frame %d: rung %q degraded=%v, want pinned to %q", i, fr.Rung, fr.Degraded, s.ladder[0].Name)
		}
	}
	if got := s.degradedTotal.Load(); got != 0 {
		t.Errorf("gold traffic counted %d degraded frames", got)
	}
	if got := s.rungServed[0].Load(); got != 4 {
		t.Errorf("rung-0 served %d, want 4", got)
	}
}

// Best-effort sessions under a saturated single worker degrade down the
// ladder instead of being rejected: every frame is answered 200, at least
// one below the top rung, and the counters/session info reflect it.
func TestBestEffortDegradesUnderLoad(t *testing.T) {
	cfg := Config{QueueDepth: 2, Workers: 1}
	s, ts := testServer(t, cfg, 15*time.Millisecond) // paced-ish rung 0: 15ms keys
	const sessions, frames = 6, 5

	ids := make([]string, sessions)
	for i := range ids {
		inf := createPresetSession(t, ts.URL, CreateSessionRequest{
			Preset: "sceneflow", W: 48, H: 32, Frames: frames, PW: 2,
			SLO: "besteffort", DeadlineMs: 30,
		})
		if inf.SLO != "besteffort" || inf.DeadlineMs != 30 {
			t.Fatalf("session info %+v lost its SLO", inf)
		}
		ids[i] = inf.ID
	}

	var mu sync.Mutex
	statuses := map[int]int{}
	degraded := 0
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for f := 0; f < frames; f++ {
				resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/frames", "", nil)
				if err != nil {
					t.Error(err)
					return
				}
				var fr FrameResponse
				if resp.StatusCode == http.StatusOK {
					if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
						t.Error(err)
					}
				}
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				if fr.Degraded {
					degraded++
				}
				mu.Unlock()
			}
		}(id)
	}
	wg.Wait()

	if statuses[http.StatusOK] != sessions*frames {
		t.Fatalf("statuses %v: want all %d OK (degrade, don't reject)", statuses, sessions*frames)
	}
	if degraded == 0 {
		t.Fatal("a saturated 1-worker queue never degraded any best-effort frame")
	}
	if got := s.degradedTotal.Load(); got != int64(degraded) {
		t.Errorf("server counted %d degraded, clients saw %d", got, degraded)
	}
	counters := s.CountersSnapshot()
	rungs, ok := counters["rungs"].(map[string]int64)
	if !ok {
		t.Fatalf("counters missing rungs map: %T", counters["rungs"])
	}
	var below int64
	for name, n := range rungs {
		if name != s.ladder[0].Name {
			below += n
		}
	}
	if below != s.degradedTotal.Load() {
		t.Errorf("rung counters below top sum to %d, degraded total %d", below, s.degradedTotal.Load())
	}
}

// Once every rung's latency model says even the bottom rung cannot meet the
// deadline, best-effort admission finally refuses — with a computed
// Retry-After, not the old constant.
func TestBestEffortRefusesOnlyWhenLadderExhausted(t *testing.T) {
	cfg := Config{QueueDepth: 1, Workers: 1}
	s, ts := testServer(t, cfg, 100*time.Millisecond)
	// Seed the controller as if every rung had been observed slow, so the
	// refusal logic — not the cold-start optimism — is what we exercise.
	for r := range s.ladder {
		s.ctl.Observe(r, 500)
	}
	// Make the frame-latency model non-empty so Retry-After is computed
	// from data rather than the floor.
	s.cfg.Metrics.Stage("frame").Observe(2 * time.Second)

	gold := createPresetSession(t, ts.URL, CreateSessionRequest{
		Preset: "sceneflow", W: 48, H: 32, Frames: 2, PW: 2,
	})
	be := createPresetSession(t, ts.URL, CreateSessionRequest{
		Preset: "sceneflow", W: 48, H: 32, Frames: 2, PW: 2,
		SLO: "besteffort", DeadlineMs: 1,
	})

	// Occupy the single queue slot with a slow gold frame.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/sessions/"+gold.ID+"/frames", "", nil)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return s.inflight.Load() >= 1 })

	resp, err := http.Post(ts.URL+"/v1/sessions/"+be.ID+"/frames", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted ladder: status %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer", resp.Header.Get("Retry-After"))
	}
	// Queue of 1-2 across 1 worker at p95=2s: at least two seconds — proof
	// the hint is computed from observed latency, not the old constant 1.
	if secs < 2 || secs > 30 {
		t.Errorf("Retry-After %d outside the computed range [2,30]", secs)
	}
	<-done
}

// A session parked on a pyramid rung snapshots with empty temporal state
// (its live state is at the wrong geometry) and still round-trips through
// the codec into a servable session.
func TestDegradedSessionSnapshotDropsState(t *testing.T) {
	s, ts := testServer(t, Config{QueueDepth: 2, Workers: 1}, 0)
	_ = ts
	sess := &session{
		id:   "deg-snap",
		pw:   2,
		pipe: core.New(quickMatcher(0), func() core.Config { c := core.DefaultConfig(); c.PW = 2; return c }()),
	}
	sess.touch()
	seq := presetSeq(t, 48, 32, 3)
	rung := quality.Rung{Name: "half", OP: quality.OperatingPoint{Matcher: "bm", PWStretch: 1, PyrLevel: 1}}
	for _, fr := range seq {
		quality.Step(sess.pipe, rung, sess.pw, rung.BuildMatcher(quickMatcher(0)), fr.left, fr.right, nil)
	}
	sess.level = 1
	sess.w, sess.h = 48, 32

	snap := s.snapshotOf(sess)
	if snap.State.PrevLeft != nil || snap.State.FrameIdx != 0 {
		t.Fatalf("degraded snapshot kept temporal state: %+v", snap.State)
	}
	restored, err := s.sessionFromSnapshot(snap)
	if err != nil {
		t.Fatalf("restoring degraded snapshot: %v", err)
	}
	if restored.slo != quality.Gold {
		t.Errorf("restored session SLO %v, want the gold default (class is not serialized)", restored.slo)
	}
}

// --- helpers -------------------------------------------------------------

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

type testFrame struct{ left, right *imgproc.Image }

func presetSeq(t *testing.T, w, h, n int) []testFrame {
	t.Helper()
	src, err := (&Server{cfg: DefaultConfig()}).buildPreset(CreateSessionRequest{Preset: "sceneflow", W: w, H: h, Frames: n})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]testFrame, n)
	for i := range out {
		l, r := src.frame()
		out[i] = testFrame{left: l, right: r}
	}
	return out
}
