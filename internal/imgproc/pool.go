package imgproc

import (
	"sync"
	"sync/atomic"
)

// Buffer pooling. The streaming pipeline processes every frame through the
// same chain of kernels, so the intermediate images (filter scratch, flow
// accumulators, pyramid temporaries) have a handful of fixed sizes that are
// allocated and dropped once per frame — classic allocation churn. The pool
// recycles them: GetImage hands out a zeroed image exactly like NewImage,
// and PutImage returns one whose pixels are no longer referenced.
//
// Pooling is purely an allocation optimization: a pooled image is zeroed on
// Get, so results are bit-identical to freshly allocated images.

// imagePools maps a pixel count to a *sync.Pool of []float32 of that length.
var imagePools sync.Map

// poolGets, poolHits and poolPuts count pool traffic for the metrics layer.
var poolGets, poolHits, poolPuts atomic.Int64

// PoolStats reports cumulative pool traffic: total GetImage calls, how many
// were served by recycled buffers, and total PutImage calls.
func PoolStats() (gets, hits, puts int64) {
	return poolGets.Load(), poolHits.Load(), poolPuts.Load()
}

// GetImage returns a zero-filled w×h image, recycling a previously Put
// buffer of the same size when one is available. It is equivalent to
// NewImage in every observable way.
func GetImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		return NewImage(w, h) // panics with the standard message
	}
	poolGets.Add(1)
	n := w * h
	if p, ok := imagePools.Load(n); ok {
		if buf := p.(*sync.Pool).Get(); buf != nil {
			poolHits.Add(1)
			pix := buf.([]float32)
			clear(pix)
			return &Image{W: w, H: h, Pix: pix}
		}
	}
	return &Image{W: w, H: h, Pix: make([]float32, n)}
}

// PutImage returns an image's pixel buffer to the pool. The caller must not
// touch im (or retain im.Pix) afterwards. Nil images and images whose buffer
// has been resliced are ignored.
func PutImage(im *Image) {
	if im == nil || len(im.Pix) != im.W*im.H || len(im.Pix) == 0 {
		return
	}
	poolPuts.Add(1)
	n := len(im.Pix)
	p, ok := imagePools.Load(n)
	if !ok {
		p, _ = imagePools.LoadOrStore(n, &sync.Pool{})
	}
	pix := im.Pix
	im.Pix = nil // poison the handle so a use-after-Put fails loudly
	p.(*sync.Pool).Put(pix)
}
