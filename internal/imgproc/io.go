package imgproc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Image and disparity-map file I/O.
//
// Two portable formats, both readable by standard tools:
//
//   - PGM (P5, 8- or 16-bit) for display images: values are clamped to
//     [0, 1] and scaled to the integer range.
//   - PFM (Pf, little-endian) for disparity maps and any signed/float
//     data, the format KITTI and Middlebury use for ground truth.

// maxReadPixels bounds the image size the readers will decode. Headers are
// attacker-controlled (or fuzzer-controlled) and the pixel buffer is
// allocated from the header alone, so an unchecked "999999999 999999999"
// header would be a multi-exabyte allocation. 2^26 pixels (64 Mpx, ~256 MB
// of float32) is far above any stereo dataset frame.
const maxReadPixels = 1 << 26

// MaxDecodePixels is the default pixel-count cap applied by ReadPGM and
// ReadPFM. Network-facing callers (the serving layer) pass a tighter,
// configurable cap through ReadPGMLimit/ReadPFMLimit.
const MaxDecodePixels = maxReadPixels

// TooLargeError reports an image whose header-declared size exceeds the
// decoder's pixel budget. It is a distinct type so serving code can map it
// to 413 Request Entity Too Large instead of a generic decode failure.
type TooLargeError struct {
	Format    string // "PGM" or "PFM"
	W, H      int    // header-declared dimensions
	MaxPixels int    // the cap that was exceeded
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("imgproc: %s image %dx%d exceeds the %d-pixel decode limit",
		e.Format, e.W, e.H, e.MaxPixels)
}

// checkReadDims validates header-supplied dimensions against maxPixels. The
// per-dimension bound keeps w*h from overflowing before the product test;
// oversize-but-plausible headers get the typed TooLargeError.
func checkReadDims(format string, w, h, maxPixels int) error {
	if maxPixels <= 0 || maxPixels > maxReadPixels {
		maxPixels = maxReadPixels
	}
	if w <= 0 || h <= 0 {
		return fmt.Errorf("imgproc: unreasonable %s dimensions %dx%d", format, w, h)
	}
	if w > maxPixels || h > maxPixels || w*h > maxPixels {
		return &TooLargeError{Format: format, W: w, H: h, MaxPixels: maxPixels}
	}
	return nil
}

// expectSeparator consumes the single whitespace byte between header and
// pixel data and rejects anything else — a non-whitespace byte there means
// the header was misparsed (e.g. a maxval with trailing garbage) and the
// pixel stream would be read out of register.
func expectSeparator(br *bufio.Reader, format string) error {
	b, err := br.ReadByte()
	if err != nil {
		return err
	}
	if b != ' ' && b != '\t' && b != '\n' && b != '\r' {
		return fmt.Errorf("imgproc: %s header not terminated by whitespace (got %q)", format, b)
	}
	return nil
}

// clamp01 pins decoded values to the documented [0, 1] range: a malformed
// file may store samples above its own maxval.
func clamp01(v float32) float32 {
	if v > 1 {
		return 1
	}
	return v
}

// WritePGM writes im as a binary 16-bit PGM, clamping pixels to [0, 1].
func WritePGM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n65535\n", im.W, im.H); err != nil {
		return err
	}
	buf := make([]byte, 2)
	for _, v := range im.Pix {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		binary.BigEndian.PutUint16(buf, uint16(v*65535+0.5))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPGM reads a binary 8- or 16-bit PGM into an image scaled to [0, 1],
// with the default MaxDecodePixels size cap.
func ReadPGM(r io.Reader) (*Image, error) { return ReadPGMLimit(r, MaxDecodePixels) }

// ReadPGMLimit is ReadPGM with a caller-supplied pixel-count cap
// (maxPixels <= 0 selects the default). Headers declaring more than
// maxPixels pixels fail with a *TooLargeError before any pixel buffer is
// allocated, so a hostile upload cannot force a large allocation.
func ReadPGMLimit(r io.Reader, maxPixels int) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("imgproc: reading PGM magic: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("imgproc: not a binary PGM (magic %q)", magic)
	}
	var w, h, maxv int
	if _, err := fmt.Fscan(br, &w, &h, &maxv); err != nil {
		return nil, fmt.Errorf("imgproc: reading PGM header: %w", err)
	}
	if maxv <= 0 || maxv > 65535 {
		return nil, fmt.Errorf("imgproc: bad PGM header %dx%d max %d", w, h, maxv)
	}
	if err := checkReadDims("PGM", w, h, maxPixels); err != nil {
		return nil, err
	}
	if err := expectSeparator(br, "PGM"); err != nil {
		return nil, err
	}
	im := NewImage(w, h)
	scale := 1 / float32(maxv)
	if maxv < 256 {
		buf := make([]byte, w*h)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("imgproc: reading PGM pixels: %w", err)
		}
		for i, b := range buf {
			im.Pix[i] = clamp01(float32(b) * scale)
		}
		return im, nil
	}
	buf := make([]byte, 2*w*h)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("imgproc: reading PGM pixels: %w", err)
	}
	for i := 0; i < w*h; i++ {
		im.Pix[i] = clamp01(float32(binary.BigEndian.Uint16(buf[2*i:])) * scale)
	}
	return im, nil
}

// WritePFM writes im as a single-channel little-endian PFM (values are
// stored verbatim, so negative "invalid" disparities survive a roundtrip).
func WritePFM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	// Scale -1.0 marks little-endian per the PFM spec.
	if _, err := fmt.Fprintf(bw, "Pf\n%d %d\n-1.0\n", im.W, im.H); err != nil {
		return err
	}
	buf := make([]byte, 4)
	// PFM stores rows bottom-up.
	for y := im.H - 1; y >= 0; y-- {
		for x := 0; x < im.W; x++ {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(im.At(x, y)))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadPFM reads a single-channel PFM, with the default MaxDecodePixels size
// cap.
func ReadPFM(r io.Reader) (*Image, error) { return ReadPFMLimit(r, MaxDecodePixels) }

// ReadPFMLimit is ReadPFM with a caller-supplied pixel-count cap
// (maxPixels <= 0 selects the default); oversize headers fail with a
// *TooLargeError before allocation.
func ReadPFMLimit(r io.Reader, maxPixels int) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("imgproc: reading PFM magic: %w", err)
	}
	if magic != "Pf" {
		return nil, fmt.Errorf("imgproc: not a grayscale PFM (magic %q)", magic)
	}
	var w, h int
	var scale float64
	if _, err := fmt.Fscan(br, &w, &h, &scale); err != nil {
		return nil, fmt.Errorf("imgproc: reading PFM header: %w", err)
	}
	if scale == 0 {
		return nil, fmt.Errorf("imgproc: bad PFM header %dx%d scale %v", w, h, scale)
	}
	if err := checkReadDims("PFM", w, h, maxPixels); err != nil {
		return nil, err
	}
	if err := expectSeparator(br, "PFM"); err != nil {
		return nil, err
	}
	order := binary.ByteOrder(binary.LittleEndian)
	if scale > 0 {
		order = binary.BigEndian
	}
	buf := make([]byte, 4*w*h)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("imgproc: reading PFM pixels: %w", err)
	}
	im := NewImage(w, h)
	i := 0
	for y := h - 1; y >= 0; y-- {
		for x := 0; x < w; x++ {
			im.Set(x, y, math.Float32frombits(order.Uint32(buf[4*i:])))
			i++
		}
	}
	return im, nil
}

// SavePGM writes the image to path as 16-bit PGM.
func SavePGM(path string, im *Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//asvlint:ignore droppederr backstop only; the success path returns f.Close() below
	defer f.Close()
	if err := WritePGM(f, im); err != nil {
		return err
	}
	return f.Close()
}

// LoadPGM reads a PGM from path.
func LoadPGM(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//asvlint:ignore droppederr read-only file; decoded data is already validated
	defer f.Close()
	return ReadPGM(f)
}

// SavePFM writes the image to path as PFM.
func SavePFM(path string, im *Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//asvlint:ignore droppederr backstop only; the success path returns f.Close() below
	defer f.Close()
	if err := WritePFM(f, im); err != nil {
		return err
	}
	return f.Close()
}

// LoadPFM reads a PFM from path.
func LoadPFM(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//asvlint:ignore droppederr read-only file; decoded data is already validated
	defer f.Close()
	return ReadPFM(f)
}
