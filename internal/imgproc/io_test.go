package imgproc

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestPGMRoundTrip16Bit(t *testing.T) {
	im := randImage(1, 13, 9)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 13 || got.H != 9 {
		t.Fatalf("size %dx%d", got.W, got.H)
	}
	// 16-bit quantization: error bounded by 1/65535.
	if d := MaxAbsDiff(im, got); d > 1.0/65535+1e-6 {
		t.Fatalf("roundtrip error %v exceeds quantization bound", d)
	}
}

func TestPGMClampsOutOfRange(t *testing.T) {
	im := FromPix([]float32{-0.5, 0.5, 1.5, 1}, 2, 2)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 0 || got.At(0, 1) != 1 {
		t.Fatalf("clamping failed: %v", got.Pix)
	}
}

func TestReadPGM8Bit(t *testing.T) {
	raw := append([]byte("P5\n2 2\n255\n"), 0, 128, 255, 64)
	got, err := ReadPGM(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 0 || got.At(0, 1) != 255.0/255 {
		t.Fatalf("8-bit decode wrong: %v", got.Pix)
	}
	if math.Abs(float64(got.At(1, 0))-128.0/255) > 1e-6 {
		t.Fatalf("mid value wrong: %v", got.At(1, 0))
	}
}

func TestReadPGMRejectsBadInput(t *testing.T) {
	cases := []string{
		"P6\n2 2\n255\n",   // wrong magic
		"P5\n-1 2\n255\n",  // bad dims
		"P5\n2 2\n70000\n", // bad maxval
		"P5\n2 2\n255\nxy", // truncated pixels
	}
	for i, c := range cases {
		if _, err := ReadPGM(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPFMRoundTripExact(t *testing.T) {
	// PFM stores raw float32, including negatives (invalid-disparity marks).
	im := FromPix([]float32{-1, 0, 3.25, 1e-3, 42.5, -7}, 3, 2)
	var buf bytes.Buffer
	if err := WritePFM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPFM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(im, got); d != 0 {
		t.Fatalf("PFM roundtrip not exact: %v", d)
	}
}

func TestPFMRejectsBadInput(t *testing.T) {
	cases := []string{
		"PF\n2 2\n-1.0\n",  // color PFM not supported
		"Pf\n0 2\n-1.0\n",  // bad dims
		"Pf\n2 2\n0\n",     // zero scale
		"Pf\n2 2\n-1.0\nx", // truncated
	}
	for i, c := range cases {
		if _, err := ReadPFM(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	im := randImage(2, 8, 6)

	pgm := filepath.Join(dir, "x.pgm")
	if err := SavePGM(pgm, im); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPGM(pgm)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 8 || got.H != 6 {
		t.Fatal("PGM file roundtrip size wrong")
	}

	pfm := filepath.Join(dir, "x.pfm")
	if err := SavePFM(pfm, im); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadPFM(pfm)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(im, got2) != 0 {
		t.Fatal("PFM file roundtrip not exact")
	}
}

// Property: PFM roundtrip is the identity for arbitrary finite values.
func TestQuickPFMIdentity(t *testing.T) {
	f := func(seed int64) bool {
		im := randImage(seed, 7, 5)
		for i := range im.Pix {
			im.Pix[i] = im.Pix[i]*200 - 100
		}
		var buf bytes.Buffer
		if err := WritePFM(&buf, im); err != nil {
			return false
		}
		got, err := ReadPFM(&buf)
		if err != nil {
			return false
		}
		return MaxAbsDiff(im, got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The serving path decodes attacker-supplied bytes with a tighter,
// configurable cap; the cap must fire before allocation and be
// distinguishable (by type) from a malformed header.
func TestReadLimitTypedError(t *testing.T) {
	im := NewImage(12, 9)
	var pgm, pfm bytes.Buffer
	if err := WritePGM(&pgm, im); err != nil {
		t.Fatal(err)
	}
	if err := WritePFM(&pfm, im); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		read func(max int) error
	}{
		{"PGM", func(max int) error {
			_, err := ReadPGMLimit(bytes.NewReader(pgm.Bytes()), max)
			return err
		}},
		{"PFM", func(max int) error {
			_, err := ReadPFMLimit(bytes.NewReader(pfm.Bytes()), max)
			return err
		}},
	}
	for _, c := range cases {
		// Under the cap: decodes fine.
		if err := c.read(12 * 9); err != nil {
			t.Fatalf("%s at exact cap: %v", c.name, err)
		}
		// Over the cap: typed error naming the cap.
		err := c.read(12*9 - 1)
		var tle *TooLargeError
		if !errors.As(err, &tle) {
			t.Fatalf("%s over cap: got %v, want *TooLargeError", c.name, err)
		}
		if tle.W != 12 || tle.H != 9 || tle.MaxPixels != 12*9-1 || tle.Format != c.name {
			t.Fatalf("%s error fields: %+v", c.name, tle)
		}
		// Cap <= 0 selects the permissive default.
		if err := c.read(0); err != nil {
			t.Fatalf("%s with default cap: %v", c.name, err)
		}
	}

	// Malformed (non-positive) dimensions stay a plain error, not a
	// TooLargeError: they indicate a broken file, not a big one.
	bad := strings.NewReader("P5\n0 5\n255\n")
	_, err := ReadPGMLimit(bad, 1<<20)
	var tle *TooLargeError
	if err == nil || errors.As(err, &tle) {
		t.Fatalf("zero-width PGM: got %v, want untyped parse error", err)
	}
}
