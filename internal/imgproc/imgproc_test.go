package imgproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randImage(seed int64, w, h int) *Image {
	rng := rand.New(rand.NewSource(seed))
	im := NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = rng.Float32()
	}
	return im
}

func TestNewImagePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewImage(0, 5)
}

func TestAtClampsBorders(t *testing.T) {
	im := FromPix([]float32{1, 2, 3, 4}, 2, 2)
	if im.At(-1, -1) != 1 {
		t.Fatalf("At(-1,-1) = %v, want 1", im.At(-1, -1))
	}
	if im.At(5, 5) != 4 {
		t.Fatalf("At(5,5) = %v, want 4", im.At(5, 5))
	}
	if im.At(-3, 1) != 3 {
		t.Fatalf("At(-3,1) = %v, want 3", im.At(-3, 1))
	}
}

func TestBilinearAtGridPoints(t *testing.T) {
	im := FromPix([]float32{1, 2, 3, 4}, 2, 2)
	if im.Bilinear(0, 0) != 1 || im.Bilinear(1, 1) != 4 {
		t.Fatal("bilinear at integer coordinates should equal pixel values")
	}
	if got := im.Bilinear(0.5, 0); got != 1.5 {
		t.Fatalf("Bilinear(0.5,0) = %v, want 1.5", got)
	}
	if got := im.Bilinear(0.5, 0.5); got != 2.5 {
		t.Fatalf("Bilinear(0.5,0.5) = %v, want 2.5", got)
	}
}

func TestGaussianKernelNormalizedSymmetric(t *testing.T) {
	k := GaussianKernel1D(1.5)
	if len(k)%2 == 0 {
		t.Fatal("kernel length must be odd")
	}
	var sum float64
	for _, v := range k {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("kernel sum = %v, want 1", sum)
	}
	for i := range k {
		if k[i] != k[len(k)-1-i] {
			t.Fatal("kernel not symmetric")
		}
	}
	mid := len(k) / 2
	for i := 1; i <= mid; i++ {
		if k[mid-i] > k[mid] {
			t.Fatal("kernel not peaked at center")
		}
	}
}

func TestGaussianBlurPreservesConstant(t *testing.T) {
	im := NewImage(16, 16)
	for i := range im.Pix {
		im.Pix[i] = 0.7
	}
	out := GaussianBlur(im, 2.0)
	if d := MaxAbsDiff(im, out); d > 1e-5 {
		t.Fatalf("blur of constant image changed values by %v", d)
	}
}

func TestGaussianBlurReducesVariance(t *testing.T) {
	im := randImage(1, 32, 32)
	out := GaussianBlur(im, 1.5)
	varOf := func(p []float32) float64 {
		var mean float64
		for _, v := range p {
			mean += float64(v)
		}
		mean /= float64(len(p))
		var s float64
		for _, v := range p {
			d := float64(v) - mean
			s += d * d
		}
		return s / float64(len(p))
	}
	if varOf(out.Pix) >= varOf(im.Pix) {
		t.Fatal("blur did not reduce variance of noise image")
	}
}

func TestBoxFilterEqualsBruteForce(t *testing.T) {
	im := randImage(2, 10, 8)
	r := 2
	got := BoxFilter(im, r)
	n := float32((2*r + 1) * (2*r + 1))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var s float32
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					s += im.At(x+dx, y+dy)
				}
			}
			if d := math.Abs(float64(got.At(x, y) - s/n)); d > 1e-4 {
				t.Fatalf("box filter mismatch at (%d,%d): %v", x, y, d)
			}
		}
	}
}

func TestGradientsOfRamp(t *testing.T) {
	// f(x,y) = 2x + 3y has GradX=2, GradY=3 away from borders.
	im := NewImage(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			im.Set(x, y, float32(2*x+3*y))
		}
	}
	gx, gy := GradX(im), GradY(im)
	for y := 1; y < 7; y++ {
		for x := 1; x < 7; x++ {
			if gx.At(x, y) != 2 {
				t.Fatalf("GradX(%d,%d) = %v, want 2", x, y, gx.At(x, y))
			}
			if gy.At(x, y) != 3 {
				t.Fatalf("GradY(%d,%d) = %v, want 3", x, y, gy.At(x, y))
			}
		}
	}
}

func TestWarpZeroFlowIsIdentity(t *testing.T) {
	im := randImage(3, 12, 9)
	zero := NewImage(12, 9)
	out := Warp(im, zero, zero)
	if d := MaxAbsDiff(im, out); d != 0 {
		t.Fatalf("zero-flow warp changed image by %v", d)
	}
}

func TestWarpIntegerShift(t *testing.T) {
	im := randImage(4, 16, 16)
	u := NewImage(16, 16)
	v := NewImage(16, 16)
	for i := range u.Pix {
		u.Pix[i] = 2 // sample from x+2
	}
	out := Warp(im, u, v)
	for y := 0; y < 16; y++ {
		for x := 0; x < 13; x++ {
			if out.At(x, y) != im.At(x+2, y) {
				t.Fatalf("warp shift wrong at (%d,%d)", x, y)
			}
		}
	}
}

func TestDownsampleUpsampleShapes(t *testing.T) {
	im := randImage(5, 17, 11)
	down := Downsample2(im)
	if down.W != 9 || down.H != 6 {
		t.Fatalf("Downsample2 size %dx%d, want 9x6", down.W, down.H)
	}
	up := Upsample2(down, 17, 11)
	if up.W != 17 || up.H != 11 {
		t.Fatalf("Upsample2 size %dx%d", up.W, up.H)
	}
}

func TestPyramidLevels(t *testing.T) {
	im := randImage(6, 64, 48)
	pyr := Pyramid(im, 3, 1.0)
	if len(pyr) != 3 {
		t.Fatalf("levels = %d", len(pyr))
	}
	if pyr[0] != im {
		t.Fatal("level 0 should be the original image")
	}
	if pyr[1].W != 32 || pyr[2].W != 16 {
		t.Fatalf("pyramid widths %d,%d; want 32,16", pyr[1].W, pyr[2].W)
	}
}

func TestSubAndMeanAbs(t *testing.T) {
	a := FromPix([]float32{1, 2, 3, 4}, 2, 2)
	b := FromPix([]float32{0, 2, 5, 4}, 2, 2)
	d := Sub(a, b)
	if d.At(0, 0) != 1 || d.At(0, 1) != -2 {
		t.Fatalf("Sub wrong: %v", d.Pix)
	}
	if MeanAbs(d) != 0.75 {
		t.Fatalf("MeanAbs = %v, want 0.75", MeanAbs(d))
	}
}

// Property: blurring is invariant to adding a constant offset (linearity +
// normalization).
func TestQuickBlurShiftInvariance(t *testing.T) {
	f := func(seed int64, off8 int8) bool {
		off := float32(off8) / 32
		im := randImage(seed, 12, 12)
		shifted := im.Clone()
		for i := range shifted.Pix {
			shifted.Pix[i] += off
		}
		a := GaussianBlur(im, 1.0)
		b := GaussianBlur(shifted, 1.0)
		for i := range a.Pix {
			if math.Abs(float64(b.Pix[i]-a.Pix[i]-off)) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: bilinear sampling is bounded by the min/max of the image.
func TestQuickBilinearBounded(t *testing.T) {
	f := func(seed int64, xr, yr uint8) bool {
		im := randImage(seed, 8, 8)
		var mn, mx float32 = 2, -2
		for _, v := range im.Pix {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		x := float32(xr) / 255 * 7
		y := float32(yr) / 255 * 7
		v := im.Bilinear(x, y)
		return v >= mn-1e-5 && v <= mx+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
