package imgproc

import (
	"testing"
)

func TestGetImageIsZeroedLikeNewImage(t *testing.T) {
	// Dirty a buffer, return it, and make sure the recycled image comes back
	// clean — pooled allocation must be observationally identical to
	// NewImage.
	im := GetImage(13, 7)
	for i := range im.Pix {
		im.Pix[i] = 42
	}
	PutImage(im)
	for try := 0; try < 8; try++ {
		got := GetImage(13, 7)
		if got.W != 13 || got.H != 7 || len(got.Pix) != 13*7 {
			t.Fatalf("GetImage shape: %dx%d len %d", got.W, got.H, len(got.Pix))
		}
		for i, v := range got.Pix {
			if v != 0 {
				t.Fatalf("recycled pixel %d = %v, want 0", i, v)
			}
		}
		PutImage(got)
	}
}

func TestPutImagePoisonsHandle(t *testing.T) {
	im := GetImage(4, 4)
	PutImage(im)
	if im.Pix != nil {
		t.Fatal("PutImage left Pix attached; use-after-Put would be silent")
	}
	// Double-Put of a poisoned handle must be a no-op.
	PutImage(im)
	PutImage(nil)
}

func TestPoolStatsMonotonic(t *testing.T) {
	g0, _, p0 := PoolStats()
	im := GetImage(9, 9)
	PutImage(im)
	_ = GetImage(9, 9)
	g1, _, p1 := PoolStats()
	if g1 < g0+2 {
		t.Fatalf("gets did not advance: %d -> %d", g0, g1)
	}
	if p1 < p0+1 {
		t.Fatalf("puts did not advance: %d -> %d", p0, p1)
	}
}

func TestSeparableFilterMatchesDirectConvolution(t *testing.T) {
	// The pooled scratch path must not change filter results: compare against
	// a naive 2-D convolution with replicate borders.
	im := NewImage(9, 6)
	for i := range im.Pix {
		im.Pix[i] = float32(i%7) * 0.25
	}
	kx := []float32{0.25, 0.5, 0.25}
	ky := []float32{0.1, 0.8, 0.1}
	got := SeparableFilter(im, kx, ky)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var want float32
			for j := -1; j <= 1; j++ {
				var row float32
				for i := -1; i <= 1; i++ {
					row += kx[i+1] * im.At(x+i, y+j)
				}
				want += ky[j+1] * row
			}
			if diff := got.At(x, y) - want; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("(%d,%d): got %v want %v", x, y, got.At(x, y), want)
			}
		}
	}
}
