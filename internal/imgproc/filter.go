package imgproc

import (
	"asv/internal/par"
	"fmt"
	"math"
)

// GaussianKernel1D returns a normalized 1-D Gaussian kernel with the given
// standard deviation. The radius is ceil(3*sigma), so the kernel length is
// 2*radius+1.
func GaussianKernel1D(sigma float64) []float32 {
	if sigma <= 0 {
		panic(fmt.Sprintf("imgproc: non-positive sigma %v", sigma))
	}
	r := int(math.Ceil(3 * sigma))
	k := make([]float32, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = float32(v)
		sum += v
	}
	inv := float32(1 / sum)
	for i := range k {
		k[i] *= inv
	}
	return k
}

// SeparableFilter convolves the image with kx horizontally then ky
// vertically, using replicate border handling. Kernel lengths must be odd.
func SeparableFilter(im *Image, kx, ky []float32) *Image {
	if len(kx)%2 == 0 || len(ky)%2 == 0 {
		panic("imgproc: separable kernels must have odd length")
	}
	rx, ry := len(kx)/2, len(ky)/2
	tmp := GetImage(im.W, im.H)
	par.ForChunked(im.H, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < im.W; x++ {
				var acc float32
				for i := -rx; i <= rx; i++ {
					acc += kx[i+rx] * im.At(x+i, y)
				}
				tmp.Pix[y*im.W+x] = acc
			}
		}
	})
	out := GetImage(im.W, im.H)
	par.ForChunked(im.H, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < im.W; x++ {
				var acc float32
				for i := -ry; i <= ry; i++ {
					acc += ky[i+ry] * tmp.At(x, y+i)
				}
				out.Pix[y*im.W+x] = acc
			}
		}
	})
	PutImage(tmp)
	return out
}

// GaussianBlur low-pass filters the image with a separable Gaussian of the
// given standard deviation.
func GaussianBlur(im *Image, sigma float64) *Image {
	k := GaussianKernel1D(sigma)
	return SeparableFilter(im, k, k)
}

// BoxFilter averages over a (2r+1)×(2r+1) window using a running-sum
// implementation, O(1) per pixel.
func BoxFilter(im *Image, r int) *Image {
	if r < 0 {
		panic("imgproc: negative box-filter radius")
	}
	if r == 0 {
		return im.Clone()
	}
	n := 2*r + 1
	k := make([]float32, n)
	inv := 1 / float32(n)
	for i := range k {
		k[i] = inv
	}
	return SeparableFilter(im, k, k)
}

// GradX returns the horizontal central-difference derivative (f(x+1)-f(x-1))/2.
func GradX(im *Image) *Image {
	out := NewImage(im.W, im.H)
	par.ForChunked(im.H, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < im.W; x++ {
				out.Pix[y*im.W+x] = (im.At(x+1, y) - im.At(x-1, y)) / 2
			}
		}
	})
	return out
}

// GradY returns the vertical central-difference derivative (f(y+1)-f(y-1))/2.
func GradY(im *Image) *Image {
	out := NewImage(im.W, im.H)
	par.ForChunked(im.H, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < im.W; x++ {
				out.Pix[y*im.W+x] = (im.At(x, y+1) - im.At(x, y-1)) / 2
			}
		}
	})
	return out
}

// Warp resamples the image according to a dense flow field: the output at
// (x, y) is the input sampled at (x+u(x,y), y+v(x,y)). u and v must be the
// same size as the image.
func Warp(im, u, v *Image) *Image {
	mustSameSize(im, u, "Warp(u)")
	mustSameSize(im, v, "Warp(v)")
	out := NewImage(im.W, im.H)
	par.ForChunked(im.H, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < im.W; x++ {
				out.Pix[y*im.W+x] = im.Bilinear(float32(x)+u.At(x, y), float32(y)+v.At(x, y))
			}
		}
	})
	return out
}
