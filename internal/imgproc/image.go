// Package imgproc provides the grayscale image substrate used by the
// classic-vision half of ASV: Gaussian filtering, gradients, bilinear
// warping and image pyramids. Images are dense float32 rasters with values
// nominally in [0, 1].
package imgproc

import (
	"fmt"
	"math"

	"asv/internal/par"
)

// Image is a single-channel float32 raster stored row-major.
type Image struct {
	W, H int
	Pix  []float32
}

// NewImage returns a zero-filled w×h image. It panics if w or h is not
// positive.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgproc: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float32, w*h)}
}

// FromPix wraps pix (copied) as a w×h image.
func FromPix(pix []float32, w, h int) *Image {
	if len(pix) != w*h {
		panic(fmt.Sprintf("imgproc: pix length %d != %dx%d", len(pix), w, h))
	}
	img := NewImage(w, h)
	copy(img.Pix, pix)
	return img
}

// At returns the pixel at (x, y). Coordinates outside the image are clamped
// to the border (replicate padding), the convention used by all filters in
// this package.
func (im *Image) At(x, y int) float32 {
	if x < 0 {
		x = 0
	} else if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set assigns the pixel at (x, y). It panics if out of bounds.
func (im *Image) Set(x, y int, v float32) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		panic(fmt.Sprintf("imgproc: Set(%d,%d) out of %dx%d", x, y, im.W, im.H))
	}
	im.Pix[y*im.W+x] = v
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image { return FromPix(im.Pix, im.W, im.H) }

// Bilinear samples the image at the real-valued position (x, y) with
// bilinear interpolation and replicate border handling.
func (im *Image) Bilinear(x, y float32) float32 {
	x0 := int(math.Floor(float64(x)))
	y0 := int(math.Floor(float64(y)))
	fx := x - float32(x0)
	fy := y - float32(y0)
	v00 := im.At(x0, y0)
	v10 := im.At(x0+1, y0)
	v01 := im.At(x0, y0+1)
	v11 := im.At(x0+1, y0+1)
	top := v00 + fx*(v10-v00)
	bot := v01 + fx*(v11-v01)
	return top + fy*(bot-top)
}

// Sub returns the element-wise difference a-b. It panics on size mismatch.
func Sub(a, b *Image) *Image {
	mustSameSize(a, b, "Sub")
	out := NewImage(a.W, a.H)
	for i := range out.Pix {
		out.Pix[i] = a.Pix[i] - b.Pix[i]
	}
	return out
}

// MeanAbs returns the mean absolute pixel value.
func MeanAbs(im *Image) float64 {
	var s float64
	for _, v := range im.Pix {
		s += math.Abs(float64(v))
	}
	return s / float64(len(im.Pix))
}

// MaxAbsDiff returns the largest absolute pixel difference between a and b.
func MaxAbsDiff(a, b *Image) float64 {
	mustSameSize(a, b, "MaxAbsDiff")
	var m float64
	for i := range a.Pix {
		if d := math.Abs(float64(a.Pix[i] - b.Pix[i])); d > m {
			m = d
		}
	}
	return m
}

func mustSameSize(a, b *Image, op string) {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("imgproc: %s size mismatch %dx%d vs %dx%d", op, a.W, a.H, b.W, b.H))
	}
}

// Downsample2 returns the image decimated by 2 in each dimension (after the
// caller has low-pass filtered it). Output is ceil(W/2) × ceil(H/2).
func Downsample2(im *Image) *Image {
	ow := (im.W + 1) / 2
	oh := (im.H + 1) / 2
	out := NewImage(ow, oh)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			out.Set(x, y, im.At(2*x, 2*y))
		}
	}
	return out
}

// Upsample2 returns the image bilinearly enlarged to exactly w×h
// (typically 2× the input).
func Upsample2(im *Image, w, h int) *Image {
	out := NewImage(w, h)
	sx := float32(im.W) / float32(w)
	sy := float32(im.H) / float32(h)
	par.ForChunked(h, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < w; x++ {
				out.Pix[y*w+x] = im.Bilinear((float32(x)+0.5)*sx-0.5, (float32(y)+0.5)*sy-0.5)
			}
		}
	})
	return out
}

// Pyramid returns a Gaussian pyramid with the given number of levels;
// level 0 is the original image and each subsequent level is blurred and
// decimated by 2. levels must be >= 1.
func Pyramid(im *Image, levels int, sigma float64) []*Image {
	if levels < 1 {
		panic("imgproc: Pyramid needs at least one level")
	}
	pyr := make([]*Image, levels)
	pyr[0] = im
	for l := 1; l < levels; l++ {
		blurred := GaussianBlur(pyr[l-1], sigma)
		pyr[l] = Downsample2(blurred)
		PutImage(blurred)
	}
	return pyr
}
