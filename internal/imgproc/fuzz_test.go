package imgproc_test

// Native fuzz targets (ISSUE 3) for the attacker-facing surface of the
// package: the PGM/PFM decoders consume arbitrary files, and the buffer
// pool's zero-on-get / poison-on-put contract must hold for any get/put
// sequence. External test package so the targets exercise only the
// exported API (and so testkit, which imports imgproc, stays importable).

import (
	"bytes"
	"math"
	"testing"

	"asv/internal/imgproc"
)

func FuzzReadPGM(f *testing.F) {
	f.Add([]byte("P5\n3 2\n255\nabcdef"))
	f.Add([]byte("P5\n2 2\n65535\nTESTBYTES8"))
	f.Add([]byte("P5\n999999999 999999999\n255\n"))
	f.Add([]byte("P6\n1 1\n255\nx"))
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := imgproc.ReadPGM(bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage is fine; panicking or OOMing is not
		}
		// Round-trip property: whatever decoded must survive re-encoding.
		var buf bytes.Buffer
		if err := imgproc.WritePGM(&buf, im); err != nil {
			t.Fatalf("WritePGM failed on decoded image: %v", err)
		}
		back, err := imgproc.ReadPGM(&buf)
		if err != nil {
			t.Fatalf("re-read of written PGM failed: %v", err)
		}
		if back.W != im.W || back.H != im.H {
			t.Fatalf("round-trip size %dx%d, want %dx%d", back.W, back.H, im.W, im.H)
		}
		for i := range im.Pix {
			// Decoded pixels are already in [0,1]; the 16-bit writer may
			// quantize by at most half a step.
			if d := float64(back.Pix[i] - im.Pix[i]); d > 1.0/65535 || d < -1.0/65535 {
				t.Fatalf("pixel %d drifted by %v over a PGM round-trip", i, d)
			}
		}
	})
}

func FuzzReadPFM(f *testing.F) {
	f.Add([]byte("Pf\n2 2\n-1.0\n0123456789abcdef"))
	f.Add([]byte("Pf\n2 1\n1.0\n01234567"))
	f.Add([]byte("Pf\n123456789 123456789\n-1.0\n"))
	f.Add([]byte("PF\n1 1\n-1.0\nxxxxxxxxxxxx"))
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := imgproc.ReadPFM(bytes.NewReader(data))
		if err != nil {
			return
		}
		// PFM stores float32 verbatim: the round-trip must be bit-exact,
		// including NaN payloads and infinities from adversarial inputs.
		var buf bytes.Buffer
		if err := imgproc.WritePFM(&buf, im); err != nil {
			t.Fatalf("WritePFM failed on decoded image: %v", err)
		}
		back, err := imgproc.ReadPFM(&buf)
		if err != nil {
			t.Fatalf("re-read of written PFM failed: %v", err)
		}
		if back.W != im.W || back.H != im.H {
			t.Fatalf("round-trip size %dx%d, want %dx%d", back.W, back.H, im.W, im.H)
		}
		for i := range im.Pix {
			if math.Float32bits(back.Pix[i]) != math.Float32bits(im.Pix[i]) {
				t.Fatalf("pixel %d not bit-identical over a PFM round-trip: %x vs %x",
					i, math.Float32bits(back.Pix[i]), math.Float32bits(im.Pix[i]))
			}
		}
	})
}

func FuzzImagePool(f *testing.F) {
	f.Add(uint16(4), uint16(3), byte(0xff))
	f.Add(uint16(1), uint16(1), byte(1))
	f.Add(uint16(64), uint16(64), byte(7))
	f.Fuzz(func(t *testing.T, wRaw, hRaw uint16, fill byte) {
		w := int(wRaw)%128 + 1
		h := int(hRaw)%128 + 1
		im := imgproc.GetImage(w, h)
		if im.W != w || im.H != h || len(im.Pix) != w*h {
			t.Fatalf("GetImage(%d,%d) returned %dx%d with %d pixels", w, h, im.W, im.H, len(im.Pix))
		}
		for i, v := range im.Pix {
			if v != 0 {
				t.Fatalf("recycled image not zeroed at %d: %v", i, v)
			}
		}
		// Dirty the buffer, return it, and take it back: Get must zero it.
		for i := range im.Pix {
			im.Pix[i] = float32(fill) + 0.5
		}
		imgproc.PutImage(im)
		if im.Pix != nil {
			t.Fatal("PutImage did not poison the returned image's Pix")
		}
		imgproc.PutImage(im) // double put of a poisoned handle must be a no-op
		again := imgproc.GetImage(w, h)
		for i, v := range again.Pix {
			if v != 0 {
				t.Fatalf("image recycled dirty at %d: %v", i, v)
			}
		}
		imgproc.PutImage(again)
	})
}
