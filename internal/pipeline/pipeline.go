// Package pipeline is the concurrent streaming runtime for ISM: it runs the
// per-frame stages of core.Pipeline — optical flow on the left and right
// video streams, key-frame matching, correspondence propagation and guided
// refinement — as a bounded-channel pipeline, so frame t+1's flow estimation
// overlaps frame t's refinement and key-frame matching runs ahead of the
// stream instead of stalling it.
//
// The decomposition exploits ISM's dependency structure (paper Sec. 3):
//
//   - flow estimation for frame t needs only the frames t-1 and t, never a
//     disparity result, so it can run arbitrarily far ahead on worker
//     goroutines (left and right streams in parallel);
//   - key-frame matching needs only frame t itself;
//   - only propagation + refinement consume the previous frame's disparity,
//     so only that stage is serialized, on a single committer goroutine that
//     retires frames strictly in stream order.
//
// Because every stage runs the exact same kernels on the exact same inputs
// as the serial path and the committer retires frames in order, the output
// is bit-identical to core.Pipeline.Process — verified by the golden test —
// while throughput scales with the worker pool. See DESIGN.md
// ("Stage-boundary determinism").
package pipeline

import (
	"sync"
	"time"

	"asv/internal/core"
	"asv/internal/flow"
	"asv/internal/imgproc"
	"asv/internal/metrics"
	"asv/internal/par"
)

// Frame is one stereo pair of the input stream. Frames are owned by the
// runtime once sent: the producer must not mutate the images afterwards.
type Frame struct {
	Left, Right *imgproc.Image
}

// Result pairs a core.Result with the index of the frame that produced it.
// Results arrive strictly in frame order.
type Result struct {
	Index int
	core.Result
}

// Options tunes the streaming runtime. The zero value selects sensible
// defaults.
type Options struct {
	// Workers is the number of precompute goroutines running flow
	// estimation and key-frame matching (default par.Workers()).
	Workers int
	// Depth bounds how many frames may be in flight beyond the committer
	// (default 2×Workers). Larger values smooth over stage-latency jitter at
	// the price of buffered frames.
	Depth int
	// Metrics, when non-nil, receives per-stage frame counters and latency
	// histograms under the stage names "flow", "keymatch",
	// "propagate+refine" and "frame".
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = par.Workers()
	}
	if o.Depth < 1 {
		o.Depth = 2 * o.Workers
	}
	return o
}

// job is one frame's precomputable work.
type job struct {
	idx         int
	key         bool
	left, right *imgproc.Image
	// prevLeft/prevRight are the previous frame's images (non-key only).
	prevLeft, prevRight *imgproc.Image
}

// done is a frame whose precompute stage has finished, waiting for in-order
// commit.
type done struct {
	idx         int
	key         bool
	left, right *imgproc.Image
	disp        *imgproc.Image // key frames: precomputed disparity
	macs        int64          // key frames: matcher cost
	fl, fr      flow.Field     // non-key frames: precomputed flows
}

// Stream processes the stereo stream read from frames through a concurrent
// ISM pipeline and returns the channel of in-order results. The channel is
// closed after the last frame's result. matcher must not be nil, and both
// matcher and the configured motion estimator must tolerate concurrent
// calls (all built-in implementations do).
//
// The output is bit-identical to feeding the frames one by one through
// core.Pipeline.Process. Configurations with a motion-adaptive key-frame
// schedule (cfg.Adaptive != nil) decide key frames from the previous
// frame's result, which forbids precomputation; they transparently fall
// back to serial in-order processing on a single goroutine.
func Stream(matcher core.KeyMatcher, cfg core.Config, frames <-chan Frame, opt Options) <-chan Result {
	if matcher == nil {
		panic("pipeline: nil KeyMatcher")
	}
	opt = opt.withDefaults()
	out := make(chan Result, opt.Depth)
	p := core.New(matcher, cfg) // validates cfg

	if cfg.Adaptive != nil {
		go streamSerial(p, matcher, frames, out, opt)
		return out
	}

	jobs := make(chan job, opt.Depth)
	dones := make(chan done, opt.Depth)

	// Dispatcher: assign indices, pair each frame with its predecessor and
	// mark key frames by the static PW schedule.
	go func() {
		defer close(jobs)
		idx := 0
		var prev Frame
		for fr := range frames {
			j := job{idx: idx, left: fr.Left, right: fr.Right}
			if idx%cfg.PW == 0 {
				j.key = true
			} else {
				j.prevLeft, j.prevRight = prev.Left, prev.Right
			}
			prev = fr
			idx++
			jobs <- j
		}
	}()

	// Precompute workers: key-frame matching, or left+right flow (the two
	// streams in parallel — they are independent by construction).
	var wg sync.WaitGroup
	me := cfg.MotionSource()
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				d := done{idx: j.idx, key: j.key, left: j.left, right: j.right}
				t0 := time.Now()
				if j.key {
					d.disp = matcher.Match(j.left, j.right)
					d.macs = matcher.MACs(j.left.W, j.left.H)
					observe(opt.Metrics, "keymatch", time.Since(t0))
				} else {
					var inner sync.WaitGroup
					inner.Add(1)
					go func() {
						defer inner.Done()
						d.fr = me.Estimate(j.prevRight, j.right)
					}()
					d.fl = me.Estimate(j.prevLeft, j.left)
					inner.Wait()
					observe(opt.Metrics, "flow", time.Since(t0))
				}
				dones <- d
			}
		}()
	}
	go func() {
		wg.Wait()
		close(dones)
	}()

	// Committer: retire frames strictly in stream order; only this stage
	// touches the disparity recurrence.
	go func() {
		defer close(out)
		pending := make(map[int]done, opt.Depth)
		next := 0
		for d := range dones {
			pending[d.idx] = d
			for {
				d, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				t0 := time.Now()
				var res core.Result
				if d.key {
					res = p.ProcessKey(d.left, d.right, d.disp, d.macs)
				} else {
					res = p.ProcessNonKeyWith(d.left, d.right, d.fl, d.fr)
					observe(opt.Metrics, "propagate+refine", time.Since(t0))
				}
				observe(opt.Metrics, "frame", time.Since(t0))
				out <- Result{Index: next, Result: res}
				next++
			}
		}
	}()
	return out
}

// streamSerial is the fallback for adaptive schedules: in-order processing
// via ProcessFrame, so the left/right motion fields of each non-key frame
// are still estimated concurrently even though frames cannot be precomputed
// ahead of the key-frame decision.
func streamSerial(p *core.Pipeline, matcher core.KeyMatcher, frames <-chan Frame, out chan<- Result, opt Options) {
	defer close(out)
	idx := 0
	for fr := range frames {
		res := ProcessFrame(p, matcher, fr.Left, fr.Right, opt.Metrics)
		out <- Result{Index: idx, Result: res}
		idx++
	}
}

func observe(r *metrics.Registry, stage string, d time.Duration) {
	if r != nil {
		r.Stage(stage).Observe(d)
	}
}

// Collect drains a result channel into a slice, in order. It is a
// convenience for batch callers and tests.
func Collect(results <-chan Result) []Result {
	var out []Result
	for r := range results {
		out = append(out, r)
	}
	return out
}

// StreamFrames feeds a pre-materialized frame slice through Stream — the
// batch entry point used by the benchmarks and cmds.
func StreamFrames(matcher core.KeyMatcher, cfg core.Config, frames []Frame, opt Options) []Result {
	in := make(chan Frame)
	go func() {
		defer close(in)
		for _, f := range frames {
			in <- f
		}
	}()
	return Collect(Stream(matcher, cfg, in, opt))
}
