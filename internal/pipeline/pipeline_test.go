package pipeline

import (
	"testing"

	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/metrics"
	"asv/internal/stereo"
)

// testSequence generates a deterministic stereo video for the golden tests.
func testSequence(t testing.TB, frames int) []Frame {
	t.Helper()
	seq := dataset.Generate(dataset.SceneConfig{
		W: 96, H: 64, FrameCount: frames, Layers: 2,
		MinDisp: 2, MaxDisp: 14, MaxVel: 1.2, MaxDispVel: 0.2,
		Ground: true, Noise: 0.01, Seed: 321,
	})
	out := make([]Frame, len(seq.Frames))
	for i, fr := range seq.Frames {
		out[i] = Frame{Left: fr.Left, Right: fr.Right}
	}
	return out
}

func testMatcher() core.KeyMatcher {
	opt := stereo.DefaultSGMOptions()
	opt.MaxDisp = 20
	return core.SGMMatcher{Opt: opt}
}

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.PW = 3
	return cfg
}

// serialResults runs the reference serial path.
func serialResults(matcher core.KeyMatcher, cfg core.Config, frames []Frame) []core.Result {
	p := core.New(matcher, cfg)
	out := make([]core.Result, len(frames))
	for i, fr := range frames {
		out[i] = p.Process(fr.Left, fr.Right)
	}
	return out
}

// assertIdentical fails unless the streamed results match the serial results
// bit for bit.
func assertIdentical(t *testing.T, serial []core.Result, streamed []Result) {
	t.Helper()
	if len(streamed) != len(serial) {
		t.Fatalf("got %d results, want %d", len(streamed), len(serial))
	}
	for i, got := range streamed {
		want := serial[i]
		if got.Index != i {
			t.Fatalf("result %d carries index %d", i, got.Index)
		}
		if got.IsKey != want.IsKey {
			t.Fatalf("frame %d: IsKey=%v, serial %v", i, got.IsKey, want.IsKey)
		}
		if got.MACs != want.MACs {
			t.Fatalf("frame %d: MACs=%d, serial %d", i, got.MACs, want.MACs)
		}
		if got.MeanMotionPx != want.MeanMotionPx {
			t.Fatalf("frame %d: MeanMotionPx=%v, serial %v", i, got.MeanMotionPx, want.MeanMotionPx)
		}
		if got.Disparity.W != want.Disparity.W || got.Disparity.H != want.Disparity.H {
			t.Fatalf("frame %d: size mismatch", i)
		}
		for px := range got.Disparity.Pix {
			if got.Disparity.Pix[px] != want.Disparity.Pix[px] {
				t.Fatalf("frame %d: pixel %d differs: %v vs %v — pipelined output is not bit-identical",
					i, px, got.Disparity.Pix[px], want.Disparity.Pix[px])
			}
		}
	}
}

// TestGoldenStreamMatchesSerialBitExact is the pipeline's central guarantee:
// the concurrent runtime must reproduce the serial ISM path bit for bit.
func TestGoldenStreamMatchesSerialBitExact(t *testing.T) {
	frames := testSequence(t, 10)
	serial := serialResults(testMatcher(), testConfig(), frames)
	for _, workers := range []int{1, 2, 4} {
		streamed := StreamFrames(testMatcher(), testConfig(), frames, Options{Workers: workers})
		assertIdentical(t, serial, streamed)
	}
}

func TestStreamDepthOneStillCorrect(t *testing.T) {
	frames := testSequence(t, 7)
	serial := serialResults(testMatcher(), testConfig(), frames)
	streamed := StreamFrames(testMatcher(), testConfig(), frames, Options{Workers: 3, Depth: 1})
	assertIdentical(t, serial, streamed)
}

func TestStreamEveryFrameKey(t *testing.T) {
	frames := testSequence(t, 5)
	cfg := testConfig()
	cfg.PW = 1
	serial := serialResults(testMatcher(), cfg, frames)
	streamed := StreamFrames(testMatcher(), cfg, frames, Options{Workers: 4})
	assertIdentical(t, serial, streamed)
	for i, r := range streamed {
		if !r.IsKey {
			t.Fatalf("PW=1: frame %d not a key frame", i)
		}
	}
}

func TestStreamAdaptiveFallsBackToSerial(t *testing.T) {
	frames := testSequence(t, 8)
	cfg := testConfig()
	a := core.DefaultAdaptiveConfig()
	cfg.Adaptive = &a
	serial := serialResults(testMatcher(), cfg, frames)
	streamed := StreamFrames(testMatcher(), cfg, frames, Options{Workers: 4})
	assertIdentical(t, serial, streamed)
}

func TestStreamEmptyInput(t *testing.T) {
	in := make(chan Frame)
	close(in)
	out := Stream(testMatcher(), testConfig(), in, Options{})
	if got := Collect(out); len(got) != 0 {
		t.Fatalf("empty stream produced %d results", len(got))
	}
}

func TestStreamMetricsStages(t *testing.T) {
	frames := testSequence(t, 9) // PW=3 -> keys at 0,3,6: 3 key, 6 non-key
	reg := metrics.NewRegistry()
	StreamFrames(testMatcher(), testConfig(), frames, Options{Workers: 2, Metrics: reg})
	if got := reg.Stage("frame").Count(); got != 9 {
		t.Fatalf("frame count = %d, want 9", got)
	}
	if got := reg.Stage("keymatch").Count(); got != 3 {
		t.Fatalf("keymatch count = %d, want 3", got)
	}
	if got := reg.Stage("flow").Count(); got != 6 {
		t.Fatalf("flow count = %d, want 6", got)
	}
	if got := reg.Stage("propagate+refine").Count(); got != 6 {
		t.Fatalf("propagate+refine count = %d, want 6", got)
	}
}

func TestStreamResultsArriveInOrder(t *testing.T) {
	frames := testSequence(t, 12)
	in := make(chan Frame)
	go func() {
		defer close(in)
		for _, f := range frames {
			in <- f
		}
	}()
	last := -1
	for r := range Stream(testMatcher(), testConfig(), in, Options{Workers: 4}) {
		if r.Index != last+1 {
			t.Fatalf("out-of-order result: %d after %d", r.Index, last)
		}
		last = r.Index
	}
	if last != len(frames)-1 {
		t.Fatalf("stream ended at index %d, want %d", last, len(frames)-1)
	}
}

func TestStreamNilMatcherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Stream accepted a nil matcher")
		}
	}()
	Stream(nil, testConfig(), make(chan Frame), Options{})
}
