package pipeline

import (
	"sync"
	"time"

	"asv/internal/core"
	"asv/internal/flow"
	"asv/internal/imgproc"
	"asv/internal/metrics"
)

// ProcessFrame runs one stereo pair through p, exploiting the same
// intra-frame parallelism as the streaming runtime: on non-key frames the
// left- and right-stream motion fields are estimated concurrently (they are
// independent by construction), then committed with ProcessNonKeyWith. Key
// frames run matcher (which must not be nil when the schedule selects one).
// Stage latencies are recorded under the runtime's standard names —
// "keymatch", "flow", "propagate+refine" and "frame" — when m is non-nil.
//
// The result is bit-identical to p.Process(left, right): the same kernels
// run on the same inputs, only on more goroutines. Unlike Stream, it works
// for motion-adaptive schedules too, because the key decision is made
// frame-by-frame via NextIsKey. Like every core.Pipeline entry point it
// must be called from one goroutine at a time per pipeline; the serving
// layer serializes calls per session.
func ProcessFrame(p *core.Pipeline, matcher core.KeyMatcher, left, right *imgproc.Image, m *metrics.Registry) core.Result {
	return ProcessFrameAs(p, matcher, left, right, p.NextIsKey(), m)
}

// ProcessFrameAs is ProcessFrame with the key decision made by the caller
// instead of the pipeline's own schedule. The quality ladder uses it to run
// stretched propagation windows (key every basePW*stretch frames, decided
// off core's since-key counter) through exactly the same kernels and stage
// metrics as the standard path. Passing p.NextIsKey() makes it identical to
// ProcessFrame. isKey is ignored — forced true — while the pipeline has no
// committed disparity to propagate from (first frame, or after a Reset).
func ProcessFrameAs(p *core.Pipeline, matcher core.KeyMatcher, left, right *imgproc.Image, isKey bool, m *metrics.Registry) core.Result {
	if l, _ := p.PrevFrames(); l == nil {
		isKey = true
	}
	t0 := time.Now()
	var res core.Result
	if isKey {
		if matcher == nil {
			panic("pipeline: key frame reached with nil KeyMatcher")
		}
		disp := matcher.Match(left, right)
		observe(m, "keymatch", time.Since(t0))
		res = p.ProcessKey(left, right, disp, matcher.MACs(left.W, left.H))
	} else {
		me := p.Config().MotionSource()
		prevLeft, prevRight := p.PrevFrames()
		var fr flow.Field
		var inner sync.WaitGroup
		inner.Add(1)
		go func() {
			defer inner.Done()
			fr = me.Estimate(prevRight, right)
		}()
		fl := me.Estimate(prevLeft, left)
		inner.Wait()
		observe(m, "flow", time.Since(t0))
		t1 := time.Now()
		res = p.ProcessNonKeyWith(left, right, fl, fr)
		observe(m, "propagate+refine", time.Since(t1))
	}
	observe(m, "frame", time.Since(t0))
	return res
}
