package pipeline

import (
	"testing"

	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/testkit"
)

// Randomized differential oracle (ISSUE 2): beyond the fixed golden
// sequence, the concurrent runtime must match the serial path bit for bit
// on randomized scenes, key-frame windows and worker counts. Scene
// parameters are drawn from the per-test seed so a failure reproduces with
// ASV_TEST_SEED.
func TestDifferentialStreamMatchesSerialRandomScenes(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized pipeline differential is slow; run without -short")
	}
	r := testkit.NewRand(t)
	for i := 0; i < 3; i++ {
		scene := dataset.SceneConfig{
			W:          testkit.RandDim(r, 48, 80),
			H:          testkit.RandDim(r, 32, 56),
			FrameCount: testkit.RandDim(r, 5, 9),
			Layers:     testkit.RandDim(r, 1, 3),
			MinDisp:    2, MaxDisp: 12,
			MaxVel: 1.5, MaxDispVel: 0.3,
			Ground: r.Intn(2) == 0,
			Noise:  0.02 * r.Float64(),
			Seed:   r.Int63(),
		}
		seq := dataset.Generate(scene)
		frames := make([]Frame, len(seq.Frames))
		for j, fr := range seq.Frames {
			frames[j] = Frame{Left: fr.Left, Right: fr.Right}
		}
		cfg := core.DefaultConfig()
		cfg.PW = testkit.RandDim(r, 1, 4)

		serial := serialResults(testMatcher(), cfg, frames)
		for _, workers := range []int{1, 2, 3, 8} {
			streamed := StreamFrames(testMatcher(), cfg, frames, Options{Workers: workers})
			if len(streamed) != len(serial) {
				t.Fatalf("scene %d workers %d: %d results, want %d", i, workers, len(streamed), len(serial))
			}
			for j, got := range streamed {
				want := serial[j]
				if got.IsKey != want.IsKey || got.MACs != want.MACs {
					t.Fatalf("scene %d workers %d frame %d: (IsKey=%v MACs=%d) vs serial (%v %d)",
						i, workers, j, got.IsKey, got.MACs, want.IsKey, want.MACs)
				}
				if m := testkit.DiffImages(got.Disparity, want.Disparity, 0); m != nil {
					t.Fatalf("scene %d workers %d frame %d: disparity diverges from serial: %s",
						i, workers, j, m)
				}
			}
		}
	}
}
