package gpu

import (
	"testing"

	"asv/internal/backend"
	"asv/internal/nn"
	"asv/internal/systolic"
)

func TestTX2MatchesFig1FPSBand(t *testing.T) {
	// Fig. 1 places the stereo DNNs on the TX2 GPU between ~0.05 and ~3 FPS
	// at qHD.
	m := TX2()
	for _, n := range nn.StereoZoo(nn.QHDH, nn.QHDW) {
		rep := m.RunNetwork(n, backend.RunOptions{})
		fps := rep.FPS()
		if fps < 0.02 || fps > 5 {
			t.Errorf("%s: GPU FPS %.2f outside the Fig. 1 band", n.Name, fps)
		}
	}
}

func TestGPUSlowerThanAccelerator(t *testing.T) {
	n := nn.DispNet(nn.QHDH, nn.QHDW)
	gpuRep := TX2().RunNetwork(n, backend.RunOptions{})
	accRep := systolic.Default().RunNetwork(n, backend.RunOptions{Policy: backend.PolicyBaseline})
	if gpuRep.Seconds <= accRep.Seconds {
		t.Fatal("the mobile GPU should be slower than the dedicated accelerator")
	}
}

func TestGPUEnergyScalesWithLatency(t *testing.T) {
	m := TX2()
	small := m.RunNetwork(nn.DispNet(135, 240), backend.RunOptions{})
	big := m.RunNetwork(nn.DispNet(540, 960), backend.RunOptions{})
	if big.Seconds <= small.Seconds || big.EnergyJ <= small.EnergyJ {
		t.Fatal("larger inputs must cost more time and energy")
	}
	// Energy = power x time exactly.
	if small.EnergyJ != small.Seconds*m.BoardPowerW {
		t.Fatal("energy should equal board power x latency")
	}
}

func TestGPUDeconvSliceAccounted(t *testing.T) {
	rep := TX2().RunNetwork(nn.FlowNetC(270, 480), backend.RunOptions{})
	if rep.DeconvCycles <= 0 || rep.DeconvEnergyJ <= 0 {
		t.Fatal("deconvolution share not accounted")
	}
	if rep.DeconvEnergyJ >= rep.EnergyJ {
		t.Fatal("deconv energy cannot exceed the total")
	}
}

func TestLaunchOverheadVisibleOnTinyNets(t *testing.T) {
	m := TX2()
	n := nn.DCGAN()
	rep := m.RunNetwork(n, backend.RunOptions{})
	minOverhead := float64(len(n.Layers)) * m.LaunchOverheadSec
	if rep.Seconds < minOverhead {
		t.Fatal("per-layer launch overhead missing")
	}
}
