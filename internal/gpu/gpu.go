// Package gpu is a roofline model of the mobile Pascal GPU in the Nvidia
// Jetson TX2 (paper Sec. 6.2, Fig. 13): peak fp16 throughput, shared LPDDR4
// bandwidth, and board-level power. It reproduces the baseline GPU curves of
// Fig. 1 and the GPU bars of Fig. 13 at the fidelity the paper uses them —
// a reference point, not a target. As a backend (registry name "gpu") it
// supports only PolicyBaseline, the cuDNN-era execution the paper measures.
package gpu

import (
	"fmt"
	"math"

	"asv/internal/backend"
	"asv/internal/nn"
)

// Model describes a GPU by its roofline parameters.
type Model struct {
	PeakMACsPerSec    float64 // fp16 multiply-accumulates per second
	Efficiency        float64 // sustained fraction of peak on conv workloads
	BWBytesPerSec     float64
	BoardPowerW       float64
	LaunchOverheadSec float64 // per-layer kernel-launch cost
}

// TX2 returns the Jetson TX2 mobile Pascal configuration: 256 CUDA cores at
// 1.3 GHz (665 GMAC/s fp16), 58.4 GB/s of shared LPDDR4, ~5 W GPU-rail
// power under load. Sustained efficiency is calibrated to the paper's
// measured stereo-DNN frame rates (Fig. 1: DispNet-GPU ≈ 1–2 FPS at qHD),
// which land near 15% of peak — deconvolution-heavy encoder/decoders of
// that era ran far from roofline on cuDNN.
func TX2() *Model {
	return &Model{
		PeakMACsPerSec:    665e9,
		Efficiency:        0.15,
		BWBytesPerSec:     58.4e9,
		BoardPowerW:       5,
		LaunchOverheadSec: 20e-6,
	}
}

// Name implements backend.Backend.
func (m *Model) Name() string { return "gpu" }

// Describe implements backend.Backend: a roofline reference point with no
// scheduler, so only the native (baseline) execution is modeled.
func (m *Model) Describe() backend.Description {
	return backend.Description{
		Name: m.Name(),
		Summary: fmt.Sprintf("mobile GPU roofline (TX2-class), %.0f GMAC/s fp16 peak, %.1f GB/s, %.0f W board",
			m.PeakMACsPerSec/1e9, m.BWBytesPerSec/1e9, m.BoardPowerW),
		Caps: backend.Capabilities{
			Policies: []backend.Policy{backend.PolicyBaseline},
		},
	}
}

// RunNetwork implements backend.Backend: the per-inference cost of the
// network. The GPU executes deconvolutions as dense convolutions over the
// zero-upsampled input (the cuDNN-era execution the paper measures
// against). Options must be normalized; use backend.Run for validated
// execution.
func (m *Model) RunNetwork(n *nn.Network, opts backend.RunOptions) backend.Report {
	rep := backend.Report{Workload: n.Name + "@gpu", Policy: opts.Policy}
	const elemB = 2
	for _, l := range n.Layers {
		macs := l.MACs()
		bytes := (l.IfmapElems() + l.WeightElems() + l.OfmapElems()) * elemB
		lat := math.Max(
			float64(macs)/(m.PeakMACsPerSec*m.Efficiency),
			float64(bytes)/m.BWBytesPerSec,
		) + m.LaunchOverheadSec
		rep.Seconds += lat
		rep.MACs += macs
		rep.DRAMBytes += bytes
		if l.Kind == nn.KindDeconv {
			rep.DeconvCycles += int64(lat * 1e9)
		}
	}
	rep.Cycles = int64(rep.Seconds * 1e9)
	rep.EnergyJ = rep.Seconds * m.BoardPowerW
	// Board-level power does not split by component; the roofline reports
	// the whole budget as compute so the breakdown still sums to EnergyJ.
	rep.Energy.ComputeJ = rep.EnergyJ
	for _, l := range n.Layers {
		if l.Kind == nn.KindDeconv {
			rep.DeconvEnergyJ += float64(l.MACs()) / float64(rep.MACs) * rep.EnergyJ
		}
	}
	return rep
}
