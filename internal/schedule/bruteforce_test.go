package schedule

// Brute-force scheduling oracle (ISSUE 2): the optimizer's power-of-two
// tile sweep plus greedy filter packing must land within a few percent of
// the exhaustively-searched optimum over the same feasible schedule space
// (every integer tile size × every uniform filter-group size × both reuse
// orders, all under the Equ. 10 buffer constraint). The test is what makes
// the "near-optimal" claim of paper Sec. 4.2 machine-checked.

import (
	"math"
	"math/rand"
	"testing"

	"asv/internal/hw"
	"asv/internal/testkit"
)

// sequentialGroups schedules one sub-kernel at a time in batches of gsz —
// the ConvR-like corner of the space.
func sequentialGroups(spec LayerSpec, gsz int64) []group {
	var groups []group
	for k, sc := range spec.Subs {
		for left := sc.Filters; left > 0; {
			n := gsz
			if n > left {
				n = left
			}
			g := group{counts: make([]int64, len(spec.Subs))}
			g.counts[k] = n
			left -= n
			groups = append(groups, g)
		}
	}
	return groups
}

// bruteForceBest exhaustively searches the feasible schedule space: every
// integer tile size, every uniform and sequential group size, the greedy
// packing itself, and both reuse orders. It shares runSchedule — the cost
// model under test is the optimizer's *search*, not the model.
func bruteForceBest(spec LayerSpec, cfg hw.Config) Result {
	usable := cfg.UsableBuf()
	elemB := cfg.ElemBytes
	maxF := maxFilters(spec)
	best := Result{Cycles: math.MaxInt64}
	consider := func(r Result) {
		if r.Cycles < best.Cycles {
			best = r
		}
	}
	for tile := int64(1); tile <= spec.SpatialElems; tile++ {
		tileIfBytes := tile * spec.InC * elemB
		rem := usable - tileIfBytes
		if rem < usable/16 {
			if tile != 1 {
				continue
			}
			rem = usable / 2 // degenerate layer: same charge as the optimizer
		}
		var cands [][]group
		cands = append(cands, packFilters(spec, tile, elemB, rem, rem, rem))
		for gsz := int64(1); gsz <= maxF; gsz++ {
			cands = append(cands, roundRobinGroups(spec, gsz))
			if len(spec.Subs) > 1 {
				cands = append(cands, sequentialGroups(spec, gsz))
			}
		}
		for _, groups := range cands {
			if !groupsFitBudget(spec, groups, tile, elemB, rem) {
				continue
			}
			consider(runSchedule(spec, cfg, tile, groups, true))
			consider(runSchedule(spec, cfg, tile, groups, false))
		}
	}
	best.Name = spec.Name
	return best
}

// smallHW is a scaled-down accelerator whose buffer is tight enough that
// tiling decisions actually matter for the random layers below.
func smallHW() hw.Config {
	cfg := hw.Default()
	cfg.PEsX, cfg.PEsY = 8, 8
	cfg.BufBytes = 32 << 10 // 16 KB usable per double-buffer half
	return cfg
}

// randSmallSpec draws a small transformed-deconvolution-shaped layer:
// 1, 2 or 4 sub-kernels sharing one ifmap.
func randSmallSpec(r *rand.Rand, i int) LayerSpec {
	nSubs := []int{1, 2, 4}[r.Intn(3)]
	spec := LayerSpec{
		Name:         "rand",
		InC:          int64(testkit.RandDim(r, 1, 8)),
		SpatialElems: int64(testkit.RandDim(r, 8, 256)),
		SharedIfmap:  nSubs > 1,
	}
	for k := 0; k < nSubs; k++ {
		spec.Subs = append(spec.Subs, SubConv{
			Taps:         int64(testkit.RandDim(r, 1, 9)),
			OutPerFilter: int64(testkit.RandDim(r, 4, 512)),
			Filters:      int64(testkit.RandDim(r, 1, 16)),
		})
	}
	return spec
}

func TestILARWithinFivePercentOfBruteForce(t *testing.T) {
	r := testkit.NewRand(t)
	cfg := smallHW()
	const cases = 24 // acceptance floor is 20 randomized small layers
	worst := 1.0
	for i := 0; i < cases; i++ {
		spec := randSmallSpec(r, i)
		got := Evaluate(spec, cfg, Options{ILAR: true})
		opt := bruteForceBest(spec, cfg)
		if opt.Cycles <= 0 || opt.Cycles == math.MaxInt64 {
			t.Fatalf("case %d: brute force found no schedule for %+v", i, spec)
		}
		ratio := float64(got.Cycles) / float64(opt.Cycles)
		if ratio > worst {
			worst = ratio
		}
		if ratio > 1.05 {
			t.Errorf("case %d: ILAR %d cycles vs brute-force optimum %d (%.1f%% above) for %+v",
				i, got.Cycles, opt.Cycles, (ratio-1)*100, spec)
		}
		if got.Cycles < opt.Cycles {
			t.Errorf("case %d: optimizer beat the exhaustive search (%d < %d) — brute force is not covering the space",
				i, got.Cycles, opt.Cycles)
		}
	}
	t.Logf("worst ILAR/brute-force cycle ratio over %d layers: %.4f", cases, worst)
}

// TestBruteForceAgreesOnTinyLayer pins the oracle itself: on a layer small
// enough to reason about (one sub-kernel, everything fits in one round),
// both searches must find the single-round schedule.
func TestBruteForceAgreesOnTinyLayer(t *testing.T) {
	cfg := smallHW()
	spec := LayerSpec{
		Name: "tiny", InC: 2, SpatialElems: 16,
		Subs: []SubConv{{Taps: 9, OutPerFilter: 16, Filters: 4}},
	}
	got := Evaluate(spec, cfg, Options{ILAR: true})
	opt := bruteForceBest(spec, cfg)
	if got.Cycles != opt.Cycles {
		t.Fatalf("tiny layer: optimizer %d cycles, brute force %d", got.Cycles, opt.Cycles)
	}
	if got.Rounds != 1 {
		t.Fatalf("tiny layer should fit one round, got %d", got.Rounds)
	}
}
