package schedule

import (
	"testing"
	"testing/quick"

	"asv/internal/hw"
	"asv/internal/nn"
)

func convLayer(inC, h, w, outC, k, stride, pad int) nn.Layer {
	return nn.Layer{Name: "conv", Kind: nn.KindConv, InC: inC, InD: 1,
		InH: h, InW: w, OutC: outC, KD: 1, KH: k, KW: k, Stride: stride, Pad: pad}
}

func deconvLayer(inC, h, w, outC, k int) nn.Layer {
	return nn.Layer{Name: "deconv", Kind: nn.KindDeconv, InC: inC, InD: 1,
		InH: h, InW: w, OutC: outC, KD: 1, KH: k, KW: k, Stride: 2, Pad: k - 1 - 1}
}

func deconv3Layer(inC, d, h, w, outC, k int) nn.Layer {
	return nn.Layer{Name: "deconv3", Kind: nn.KindDeconv, InC: inC, InD: d,
		InH: h, InW: w, OutC: outC, KD: k, KH: k, KW: k, Stride: 2, Pad: 1}
}

func TestNaiveSpecMatchesLayerMACs(t *testing.T) {
	for _, l := range []nn.Layer{
		convLayer(64, 64, 64, 32, 3, 1, 1),
		deconvLayer(64, 32, 32, 32, 4),
		deconv3Layer(32, 16, 16, 16, 32, 3),
	} {
		s := NaiveSpec(l)
		if s.MACs() != l.MACs() {
			t.Fatalf("%s: NaiveSpec MACs %d != layer MACs %d", l.Name, s.MACs(), l.MACs())
		}
	}
}

func TestNaiveDeconvInflatesIfmap(t *testing.T) {
	l := deconvLayer(16, 32, 32, 16, 4)
	naive := NaiveSpec(l)
	xfrm := TransformedSpec(l)
	if naive.SpatialElems <= xfrm.SpatialElems {
		t.Fatal("upsampled ifmap should be larger than the original")
	}
	// Stride-2 upsampling inflates the plane ~4x.
	r := float64(naive.SpatialElems) / float64(xfrm.SpatialElems)
	if r < 3.5 || r > 4.8 {
		t.Fatalf("ifmap inflation = %.2fx, want ~4x", r)
	}
}

func TestTransformedSpecReducesMACs(t *testing.T) {
	l := deconvLayer(32, 64, 64, 32, 4)
	naive := NaiveSpec(l)
	xfrm := TransformedSpec(l)
	r := float64(naive.MACs()) / float64(xfrm.MACs())
	if r < 3.3 || r > 4.5 {
		t.Fatalf("transformation MAC reduction = %.2fx, want ~4x", r)
	}
	if !xfrm.SharedIfmap || len(xfrm.Subs) != 4 {
		t.Fatal("transformed 2-D deconv should expose 4 shared-ifmap sub-convolutions")
	}
}

func TestEvaluateMACConservation(t *testing.T) {
	cfg := hw.Default()
	for _, l := range []nn.Layer{
		convLayer(64, 135, 240, 128, 3, 1, 1),
		deconvLayer(128, 34, 60, 64, 4),
	} {
		for _, ilar := range []bool{false, true} {
			spec := TransformedSpec(l)
			r := Evaluate(spec, cfg, Options{ILAR: ilar})
			lo, hi := spec.MACs(), spec.MACs()+spec.MACs()/10
			if r.MACs < lo || r.MACs > hi {
				t.Fatalf("%s ilar=%v: issued MACs %d outside [%d, %d]", l.Name, ilar, r.MACs, lo, hi)
			}
		}
	}
}

func TestCyclesBoundedBelowByComputeRoofline(t *testing.T) {
	cfg := hw.Default()
	l := convLayer(64, 135, 240, 128, 3, 1, 1)
	spec := NaiveSpec(l)
	r := Evaluate(spec, cfg, Options{})
	roof := spec.MACs() / int64(cfg.PEs())
	if r.Cycles < roof {
		t.Fatalf("cycles %d below compute roofline %d", r.Cycles, roof)
	}
	if r.Cycles > 4*roof {
		t.Fatalf("cycles %d too far above roofline %d for a compute-bound conv", r.Cycles, roof)
	}
}

func TestDRAMTrafficAtLeastCompulsory(t *testing.T) {
	cfg := hw.Default()
	l := convLayer(32, 128, 128, 64, 3, 1, 1)
	spec := NaiveSpec(l)
	r := Evaluate(spec, cfg, Options{})
	compulsory := (spec.IfmapElems() + spec.WeightElems() + spec.OfmapElems()) * cfg.ElemBytes
	if r.DRAMBytes < compulsory {
		t.Fatalf("DRAM %d below compulsory %d", r.DRAMBytes, compulsory)
	}
}

func TestOptimizedBeatsStaticPartition(t *testing.T) {
	cfg := hw.Default()
	p := Partition{IfFrac: 0.25, WFrac: 0.5, OfFrac: 0.25}
	layers := []nn.Layer{
		convLayer(256, 68, 120, 512, 3, 2, 1),
		deconvLayer(512, 17, 30, 256, 4),
		convLayer(3, 540, 960, 64, 7, 2, 3),
	}
	for _, l := range layers {
		spec := NaiveSpec(l)
		static := Evaluate(spec, cfg, Options{Static: &p})
		opt := Evaluate(spec, cfg, Options{})
		if opt.Cycles > static.Cycles {
			t.Fatalf("%s: optimizer (%d) worse than static partition (%d)", l.Name, opt.Cycles, static.Cycles)
		}
	}
}

func TestILARReducesDRAMTraffic(t *testing.T) {
	cfg := hw.Default()
	// A deconvolution whose ifmap is large relative to the buffer, so
	// sharing it across sub-convolutions matters.
	l := deconvLayer(256, 68, 120, 256, 4)
	spec := TransformedSpec(l)
	convr := Evaluate(spec, cfg, Options{ILAR: false})
	ilar := Evaluate(spec, cfg, Options{ILAR: true})
	if ilar.DRAMBytes >= convr.DRAMBytes {
		t.Fatalf("ILAR DRAM %d should be below ConvR %d", ilar.DRAMBytes, convr.DRAMBytes)
	}
	if ilar.Cycles > convr.Cycles+convr.Cycles/10 {
		t.Fatalf("ILAR cycles %d should not exceed ConvR %d by >10%%", ilar.Cycles, convr.Cycles)
	}
}

func TestTransformationSpeedsUpDeconv(t *testing.T) {
	cfg := hw.Default()
	l := deconvLayer(128, 68, 120, 128, 4)
	naive := Evaluate(NaiveSpec(l), cfg, Options{})
	xfrm := Evaluate(TransformedSpec(l), cfg, Options{ILAR: true})
	speedup := float64(naive.Cycles) / float64(xfrm.Cycles)
	if speedup < 2.0 {
		t.Fatalf("transformation speedup = %.2fx, want >= 2x on a stride-2 deconv", speedup)
	}
}

func Test3DTransformationSpeedsUpMore(t *testing.T) {
	cfg := hw.Default()
	l2 := deconvLayer(64, 64, 64, 64, 4)
	l3 := deconv3Layer(64, 24, 32, 32, 64, 3)
	s2 := float64(Evaluate(NaiveSpec(l2), cfg, Options{}).Cycles) /
		float64(Evaluate(TransformedSpec(l2), cfg, Options{ILAR: true}).Cycles)
	s3 := float64(Evaluate(NaiveSpec(l3), cfg, Options{}).Cycles) /
		float64(Evaluate(TransformedSpec(l3), cfg, Options{ILAR: true}).Cycles)
	if s3 <= s2 {
		t.Fatalf("3-D speedup (%.2fx) should exceed 2-D (%.2fx)", s3, s2)
	}
}

func TestMorePEsNeverSlower(t *testing.T) {
	small := hw.Default()
	small.PEsX, small.PEsY = 8, 8
	big := hw.Default()
	big.PEsX, big.PEsY = 48, 48
	l := convLayer(128, 135, 240, 128, 3, 1, 1)
	spec := NaiveSpec(l)
	cs := Evaluate(spec, small, Options{}).Cycles
	cb := Evaluate(spec, big, Options{}).Cycles
	if cb > cs {
		t.Fatalf("48x48 array slower (%d) than 8x8 (%d)", cb, cs)
	}
}

func TestBestStaticPartitionIsValidAndDeterministic(t *testing.T) {
	cfg := hw.Default()
	net := nn.DispNet(270, 480)
	specs := NetworkSpecs(net, false)
	p1 := BestStaticPartition(specs, cfg)
	p2 := BestStaticPartition(specs, cfg)
	p1.Validate()
	if p1 != p2 {
		t.Fatal("partition search is nondeterministic")
	}
}

func TestResultAdd(t *testing.T) {
	a := Result{Name: "a", Cycles: 1, MACs: 2, DRAMBytes: 3, SRAMBytes: 4, Rounds: 5}
	b := Result{Cycles: 10, MACs: 20, DRAMBytes: 30, SRAMBytes: 40, Rounds: 50}
	c := a.Add(b)
	if c.Name != "a" || c.Cycles != 11 || c.MACs != 22 || c.DRAMBytes != 33 ||
		c.SRAMBytes != 44 || c.Rounds != 55 {
		t.Fatalf("Add = %+v", c)
	}
}

func TestPartitionValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Partition{IfFrac: 0.5, WFrac: 0.5, OfFrac: 0.5}.Validate()
}

func TestEvaluateInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate(LayerSpec{Name: "bad"}, hw.Default(), Options{})
}

// Property: latency never beats the combined compute/memory roofline.
func TestQuickRooflineLowerBound(t *testing.T) {
	cfg := hw.Default()
	f := func(cRaw, fRaw, hRaw uint8) bool {
		inC := int(cRaw)%64 + 1
		outC := int(fRaw)%64 + 1
		h := (int(hRaw)%32 + 4) * 2
		spec := NaiveSpec(convLayer(inC, h, h, outC, 3, 1, 1))
		r := Evaluate(spec, cfg, Options{})
		computeRoof := spec.MACs() / int64(cfg.PEs())
		memRoof := int64(float64((spec.IfmapElems()+spec.WeightElems()+spec.OfmapElems())*cfg.ElemBytes) / cfg.BytesPerCycle())
		return r.Cycles >= computeRoof && r.Cycles >= memRoof/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ILAR never issues more DRAM traffic than ConvR on transformed
// deconvolutions.
func TestQuickILARNeverWorseTraffic(t *testing.T) {
	cfg := hw.Default()
	f := func(cRaw, hRaw uint8) bool {
		inC := int(cRaw)%128 + 16
		h := (int(hRaw)%24 + 8) * 2
		spec := TransformedSpec(deconvLayer(inC, h, h, inC, 4))
		convr := Evaluate(spec, cfg, Options{ILAR: false})
		ilar := Evaluate(spec, cfg, Options{ILAR: true})
		return ilar.DRAMBytes <= convr.DRAMBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReuseOrderConstraint(t *testing.T) {
	cfg := hw.Default()
	spec := NaiveSpec(convLayer(128, 135, 240, 256, 3, 1, 1))
	auto := Evaluate(spec, cfg, Options{})
	ifm := Evaluate(spec, cfg, Options{Order: OrderIfmapStationary})
	wst := Evaluate(spec, cfg, Options{Order: OrderWeightStationary})
	// Auto picks the better of the two orders.
	best := ifm.Cycles
	if wst.Cycles < best {
		best = wst.Cycles
	}
	if auto.Cycles != best {
		t.Fatalf("auto (%d) should equal min(ifmap %d, weight %d)",
			auto.Cycles, ifm.Cycles, wst.Cycles)
	}
}

func TestReuseOrderChangesTraffic(t *testing.T) {
	cfg := hw.Default()
	// A layer whose ifmap is large and weights are small: weight-stationary
	// must reload the big ifmap per group, ifmap-stationary the small
	// weights per tile.
	spec := NaiveSpec(convLayer(512, 135, 240, 32, 3, 1, 1))
	ifm := Evaluate(spec, cfg, Options{Order: OrderIfmapStationary})
	wst := Evaluate(spec, cfg, Options{Order: OrderWeightStationary})
	if ifm.DRAMBytes == wst.DRAMBytes {
		t.Fatal("the two reuse orders should produce different traffic on an asymmetric layer")
	}
}

func TestOversizedFilterSchedulesAlone(t *testing.T) {
	// One filter whose weights exceed the usable buffer: the packer must
	// place it alone (traffic still charged) rather than loop forever.
	cfg := hw.Default()
	cfg.BufBytes = 64 << 10 // 64 KB total, 32 KB usable
	spec := LayerSpec{
		Name:         "fc-huge",
		InC:          64 << 10, // one filter = 128 KB of weights
		SpatialElems: 1,
		Subs:         []SubConv{{Taps: 1, OutPerFilter: 1, Filters: 3}},
	}
	r := Evaluate(spec, cfg, Options{})
	if r.Cycles <= 0 {
		t.Fatal("no schedule produced")
	}
	if r.MACs < spec.MACs() {
		t.Fatalf("MACs dropped: %d < %d", r.MACs, spec.MACs())
	}
	// All three oversized filters must still be scheduled (>= 3 rounds).
	if r.Rounds < 3 {
		t.Fatalf("rounds = %d, want >= 3 (one per oversized filter)", r.Rounds)
	}
}
