package schedule

import (
	"fmt"
	"math"
	"sort"

	"asv/internal/hw"
)

// Result reports one scheduled layer (or an accumulated set of layers).
type Result struct {
	Name      string
	Cycles    int64 // latency in PE-array clock cycles
	MACs      int64 // MAC operations actually issued
	DRAMBytes int64 // off-chip traffic
	SRAMBytes int64 // on-chip buffer traffic
	Rounds    int64 // double-buffered rounds executed
}

// Add accumulates o into r (keeping r's name) and returns the sum.
func (r Result) Add(o Result) Result {
	r.Cycles += o.Cycles
	r.MACs += o.MACs
	r.DRAMBytes += o.DRAMBytes
	r.SRAMBytes += o.SRAMBytes
	r.Rounds += o.Rounds
	return r
}

// Partition is the baseline's static split of the usable buffer across
// ifmap, weights and ofmap (fractions summing to 1).
type Partition struct {
	IfFrac, WFrac, OfFrac float64
}

// Validate panics if the partition is not a proper split.
func (p Partition) Validate() {
	if p.IfFrac <= 0 || p.WFrac <= 0 || p.OfFrac <= 0 ||
		math.Abs(p.IfFrac+p.WFrac+p.OfFrac-1) > 1e-9 {
		panic(fmt.Sprintf("schedule: invalid partition %+v", p))
	}
}

// Order fixes the reuse order β of Equ. 7, or lets the optimizer choose.
type Order int

// Reuse orders.
const (
	// OrderAuto lets the optimizer pick the faster order per layer (the
	// paper's formulation, where β is an optimization variable).
	OrderAuto Order = iota
	// OrderIfmapStationary keeps the ifmap tile resident while filter
	// groups stream (β=0 in Equ. 7: weights reload per tile).
	OrderIfmapStationary
	// OrderWeightStationary keeps each filter group resident while ifmap
	// tiles stream (β=1: the ifmap reloads per group).
	OrderWeightStationary
)

// Options selects the scheduling policy for Evaluate.
type Options struct {
	// ILAR allows filters from different sub-kernels of one transformed
	// deconvolution to share the resident ifmap tile. Without it each
	// sub-convolution is scheduled as an independent layer (ConvR).
	ILAR bool
	// Static, when non-nil, disables the per-layer optimizer and uses the
	// given whole-network buffer partition (the paper's baseline).
	Static *Partition
	// Order constrains the reuse order β (OrderAuto by default) — used by
	// the reuse-order ablation.
	Order Order
}

// allows reports whether the options permit the given concrete order.
func (o Options) allows(ifmapStationary bool) bool {
	switch o.Order {
	case OrderIfmapStationary:
		return ifmapStationary
	case OrderWeightStationary:
		return !ifmapStationary
	default:
		return true
	}
}

// roundOverhead models the systolic-array fill/drain bubble per round.
func roundOverhead(cfg hw.Config) int64 { return int64(cfg.PEsX + cfg.PEsY) }

// group is one filter batch resident in the buffer: counts[k] filters of
// sub-kernel k.
type group struct {
	counts []int64
}

// Evaluate schedules one layer under the given policy and returns its cost.
func Evaluate(spec LayerSpec, cfg hw.Config, opt Options) Result {
	spec.Validate()
	cfg.Validate()
	if opt.Static != nil {
		opt.Static.Validate()
	}
	// ConvR: split a shared-ifmap layer into independent sub-convolutions;
	// each reloads the ifmap itself.
	if !opt.ILAR && spec.SharedIfmap && len(spec.Subs) > 1 {
		total := Result{Name: spec.Name}
		for i, sc := range spec.Subs {
			sub := LayerSpec{
				Name:          fmt.Sprintf("%s/sub%d", spec.Name, i),
				InC:           spec.InC,
				SpatialElems:  spec.SpatialElems,
				DRAMIfmapFrac: spec.DRAMIfmapFrac,
				Subs:          []SubConv{sc},
			}
			total = total.Add(evaluateSingle(sub, cfg, opt))
		}
		return total
	}
	r := evaluateSingle(spec, cfg, opt)
	r.Name = spec.Name
	return r
}

// evaluateSingle schedules a layer whose sub-convolutions (if several)
// share the ifmap. It sweeps the tile size and both reuse orders (β of
// Equ. 7) and returns the best latency found.
func evaluateSingle(spec LayerSpec, cfg hw.Config, opt Options) Result {
	usable := cfg.UsableBuf()
	elemB := cfg.ElemBytes

	best := Result{}
	found := false
	consider := func(r Result, ok bool) {
		if ok && (!found || r.Cycles < best.Cycles) {
			best = r
			found = true
		}
	}

	if opt.Static != nil {
		ifBudget := int64(float64(usable) * opt.Static.IfFrac)
		wBudget := int64(float64(usable) * opt.Static.WFrac)
		ofBudget := int64(float64(usable) * opt.Static.OfFrac)
		tileSpatial := ifBudget / (spec.InC * elemB)
		if tileSpatial < 1 {
			tileSpatial = 1
		}
		if tileSpatial > spec.SpatialElems {
			tileSpatial = spec.SpatialElems
		}
		groups := packFilters(spec, tileSpatial, elemB, wBudget, ofBudget, -1)
		consider(runSchedule(spec, cfg, tileSpatial, groups, true), opt.allows(true))
		consider(runSchedule(spec, cfg, tileSpatial, groups, false), opt.allows(false))
		best.Name = spec.Name
		return best
	}

	// Optimized policy: sweep power-of-two tile sizes; for each tile the
	// remaining buffer is packed with filters by the Knapsack-style greedy,
	// plus a bounded family of uniform group sizes (the greedy's max-fill
	// packing can leave a lopsided final round whose bandwidth overlaps
	// poorly; balanced groups recover it — see the brute-force oracle in
	// bruteforce_test.go).
	for tileSpatial := spec.SpatialElems; tileSpatial >= 1; tileSpatial = tileSpatial / 2 {
		tileIfBytes := tileSpatial * spec.InC * elemB
		rem := usable - tileIfBytes
		if rem < usable/16 {
			// The tile leaves too little room for filters; shrink further.
			if tileSpatial == 1 {
				rem = usable / 2 // degenerate layer: charge an oversized tile
			} else {
				continue
			}
		}
		evalGroups := func(groups []group) {
			consider(runSchedule(spec, cfg, tileSpatial, groups, true), opt.allows(true))
			consider(runSchedule(spec, cfg, tileSpatial, groups, false), opt.allows(false))
		}
		evalGroups(packFilters(spec, tileSpatial, elemB, rem, rem, rem))
		for _, gsz := range candidateGroupSizes(maxFilters(spec)) {
			groups := roundRobinGroups(spec, gsz)
			if groupsFitBudget(spec, groups, tileSpatial, elemB, rem) {
				evalGroups(groups)
			}
		}
		if tileSpatial == 1 {
			break
		}
	}
	best.Name = spec.Name
	return best
}

// maxFilters returns the largest per-sub-kernel filter count of the layer.
func maxFilters(spec LayerSpec) int64 {
	var m int64
	for _, sc := range spec.Subs {
		if sc.Filters > m {
			m = sc.Filters
		}
	}
	return m
}

// candidateGroupSizes returns the uniform group sizes the sweep tries:
// every size up to 16, then geometric coverage (powers of two and
// fractions of maxF) so the candidate count stays logarithmic for wide
// layers.
func candidateGroupSizes(maxF int64) []int64 {
	var out []int64
	for g := int64(1); g <= maxF && g <= 16; g++ {
		out = append(out, g)
	}
	for g := int64(32); g < maxF; g *= 2 {
		out = append(out, g)
	}
	if maxF > 16 {
		out = append(out, maxF)
		for d := int64(2); d <= 8; d++ {
			if g := (maxF + d - 1) / d; g > 16 {
				out = append(out, g)
			}
		}
	}
	return out
}

// roundRobinGroups packs gsz filters of every sub-kernel per group until
// all filters are placed — the balanced alternative to the greedy.
func roundRobinGroups(spec LayerSpec, gsz int64) []group {
	left := make([]int64, len(spec.Subs))
	remaining := int64(0)
	for k, sc := range spec.Subs {
		left[k] = sc.Filters
		remaining += sc.Filters
	}
	var groups []group
	for remaining > 0 {
		g := group{counts: make([]int64, len(spec.Subs))}
		for k := range spec.Subs {
			n := gsz
			if n > left[k] {
				n = left[k]
			}
			g.counts[k] = n
			left[k] -= n
			remaining -= n
		}
		groups = append(groups, g)
	}
	return groups
}

// groupsFitBudget reports whether every group respects the buffer budget
// left after the resident ifmap tile: parameter bytes plus per-tile output
// bytes within rem, except single-filter oversized groups, which stream
// (the same escape hatch packFilters uses).
func groupsFitBudget(spec LayerSpec, groups []group, tileSpatial, elemB, rem int64) bool {
	tileFrac := float64(tileSpatial) / float64(spec.SpatialElems)
	for _, g := range groups {
		var bytes, filters int64
		for k, c := range g.counts {
			if c == 0 {
				continue
			}
			of := int64(math.Ceil(float64(spec.Subs[k].OutPerFilter) * tileFrac))
			if of < 1 {
				of = 1
			}
			bytes += c * (spec.Subs[k].Taps*spec.InC*elemB + of*elemB)
			filters += c
		}
		if bytes > rem && filters > 1 {
			return false
		}
	}
	return true
}

// packFilters batches the layer's filters into buffer-resident groups.
// Items are individual filters; the weight of a filter of sub-kernel k is
// its parameter bytes plus its per-tile output bytes; the solver fills each
// group greedily, prioritizing filters from large sub-kernels (highest MAC
// value), and iterates until every filter is placed (Equ. 11).
//
// Budgets: wBudget bounds parameter bytes, ofBudget bounds output bytes;
// combined >= 0 bounds their sum instead (the optimizer's free split).
// A filter too large for its budget is placed alone in an oversized group —
// its traffic is still charged, mirroring an accelerator streaming weights.
func packFilters(spec LayerSpec, tileSpatial int64, elemB, wBudget, ofBudget, combined int64) []group {
	type item struct {
		k       int
		wBytes  int64
		ofBytes int64
		left    int64
	}
	items := make([]item, len(spec.Subs))
	tileFrac := float64(tileSpatial) / float64(spec.SpatialElems)
	for k, sc := range spec.Subs {
		of := int64(math.Ceil(float64(sc.OutPerFilter) * tileFrac))
		if of < 1 {
			of = 1
		}
		items[k] = item{
			k:       k,
			wBytes:  sc.Taps * spec.InC * elemB,
			ofBytes: of * elemB,
			left:    sc.Filters,
		}
	}
	// Large sub-kernels first: more MACs amortized per resident byte.
	sort.SliceStable(items, func(i, j int) bool {
		return spec.Subs[items[i].k].Taps > spec.Subs[items[j].k].Taps
	})

	var groups []group
	for {
		remaining := false
		for _, it := range items {
			if it.left > 0 {
				remaining = true
			}
		}
		if !remaining {
			break
		}
		g := group{counts: make([]int64, len(spec.Subs))}
		wLeft, ofLeft, cLeft := wBudget, ofBudget, combined
		placed := false
		for i := range items {
			it := &items[i]
			if it.left == 0 {
				continue
			}
			var fit int64
			if combined >= 0 {
				fit = cLeft / (it.wBytes + it.ofBytes)
			} else {
				fw := wLeft / it.wBytes
				fo := ofLeft / it.ofBytes
				fit = fw
				if fo < fit {
					fit = fo
				}
			}
			if fit > it.left {
				fit = it.left
			}
			if fit == 0 {
				if !placed {
					// Oversized single filter: schedule it alone.
					g.counts[it.k] = 1
					it.left--
					placed = true
					break
				}
				continue
			}
			g.counts[it.k] += fit
			it.left -= fit
			placed = true
			if combined >= 0 {
				cLeft -= fit * (it.wBytes + it.ofBytes)
			} else {
				wLeft -= fit * it.wBytes
				ofLeft -= fit * it.ofBytes
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// runSchedule evaluates the round-based latency model (Equ. 5–9) for a
// fixed tile size, filter grouping, and reuse order.
//
// ifmapStationary=true keeps the ifmap tile resident while filter groups
// stream through (weights reloaded once per tile); false keeps each filter
// group resident while ifmap tiles stream through (ifmap reloaded once per
// group).
func runSchedule(spec LayerSpec, cfg hw.Config, tileSpatial int64, groups []group, ifmapStationary bool) Result {
	elemB := cfg.ElemBytes
	bpc := cfg.BytesPerCycle()
	a := int64(cfg.PEs())
	ov := roundOverhead(cfg)

	nFull := spec.SpatialElems / tileSpatial
	remTile := spec.SpatialElems % tileSpatial

	// Per-group constants.
	type gInfo struct {
		wBytes int64
		active int // sub-kernels with filters in this group
	}
	gi := make([]gInfo, len(groups))
	for i, g := range groups {
		for k, c := range g.counts {
			if c == 0 {
				continue
			}
			gi[i].wBytes += c * spec.Subs[k].Taps * spec.InC * elemB
			gi[i].active++
		}
	}

	res := Result{MACs: 0}

	// roundCost computes one round's compute and output volume for a tile of
	// the given spatial size.
	roundCost := func(g group, tile int64) (lc, ofBytes, macs int64) {
		frac := float64(tile) / float64(spec.SpatialElems)
		for k, c := range g.counts {
			if c == 0 {
				continue
			}
			outTile := int64(math.Ceil(float64(spec.Subs[k].OutPerFilter) * frac))
			if outTile < 1 {
				outTile = 1
			}
			m := spec.Subs[k].Taps * spec.InC * c * outTile
			macs += m
			// Sub-kernels are serialized on the array (Equ. 6's ceiling):
			// one cannot start until the previous finishes, and each pays
			// the systolic fill/drain bubble, which grows with the array.
			lc += (m+a-1)/a + ov
		}
		return lc, ofBytesOf(spec, g, tile, elemB), macs
	}

	addRound := func(lc, memBytes, tileIfBytes, wBytes, ofBytes int64, nSubs int, times int64) {
		if times == 0 {
			return
		}
		lm := int64(math.Ceil(float64(memBytes) / bpc))
		l := lc
		if lm > l {
			l = lm
		}
		res.Cycles += times * l
		res.DRAMBytes += times * memBytes
		// Buffer traffic: the resident tile is streamed once per active
		// sub-kernel; weights and outputs cross the buffer once.
		res.SRAMBytes += times * (int64(nSubs)*tileIfBytes + wBytes + ofBytes)
		res.Rounds += times
	}

	tiles := []struct {
		size  int64
		times int64
	}{}
	if nFull > 0 {
		tiles = append(tiles, struct{ size, times int64 }{tileSpatial, nFull})
	}
	if remTile > 0 {
		tiles = append(tiles, struct{ size, times int64 }{remTile, 1})
	}

	frac := spec.dramIfmapFrac()
	if ifmapStationary {
		// Outer: tiles. Inner: groups. The tile loads with the first group.
		for _, t := range tiles {
			tileIfBytes := t.size * spec.InC * elemB
			dramIfBytes := int64(float64(tileIfBytes) * frac)
			for i, g := range groups {
				lc, ofBytes, macs := roundCost(g, t.size)
				mem := gi[i].wBytes + ofBytes
				if i == 0 {
					mem += dramIfBytes
				}
				addRound(lc, mem, tileIfBytes, gi[i].wBytes, ofBytes, gi[i].active, t.times)
				res.MACs += t.times * macs
			}
		}
	} else {
		// Outer: groups. Inner: tiles. The group's weights load with the
		// first tile.
		for i, g := range groups {
			for ti, t := range tiles {
				tileIfBytes := t.size * spec.InC * elemB
				dramIfBytes := int64(float64(tileIfBytes) * frac)
				lc, ofBytes, macs := roundCost(g, t.size)
				mem := dramIfBytes + ofBytes
				times := t.times
				if ti == 0 {
					// First tile of the group also loads the weights.
					addRound(lc, mem+gi[i].wBytes, tileIfBytes, gi[i].wBytes, ofBytes, gi[i].active, 1)
					res.MACs += macs
					times--
				}
				addRound(lc, mem, tileIfBytes, gi[i].wBytes, ofBytes, gi[i].active, times)
				res.MACs += times * macs
			}
		}
	}
	return res
}

func ofBytesOf(spec LayerSpec, g group, tile int64, elemB int64) int64 {
	frac := float64(tile) / float64(spec.SpatialElems)
	var b int64
	for k, c := range g.counts {
		if c == 0 {
			continue
		}
		outTile := int64(math.Ceil(float64(spec.Subs[k].OutPerFilter) * frac))
		if outTile < 1 {
			outTile = 1
		}
		b += c * outTile * elemB
	}
	return b
}

// BestStaticPartition exhaustively searches whole-network static buffer
// partitions in 1/8 granularity and returns the one minimizing total
// latency over specs — the paper's "strong baseline" (Sec. 6.2).
func BestStaticPartition(specs []LayerSpec, cfg hw.Config) Partition {
	bestCycles := int64(math.MaxInt64)
	var best Partition
	for i := 1; i <= 6; i++ {
		for w := 1; w <= 6; w++ {
			o := 8 - i - w
			if o < 1 {
				continue
			}
			p := Partition{IfFrac: float64(i) / 8, WFrac: float64(w) / 8, OfFrac: float64(o) / 8}
			var total int64
			for _, s := range specs {
				total += Evaluate(s, cfg, Options{Static: &p}).Cycles
				if total >= bestCycles {
					break
				}
			}
			if total < bestCycles {
				bestCycles = total
				best = p
			}
		}
	}
	return best
}
