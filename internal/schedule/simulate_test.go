package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimulateDoubleBufferEmptyAndSingle(t *testing.T) {
	if SimulateDoubleBuffer(nil, nil) != 0 {
		t.Fatal("empty schedule should cost 0")
	}
	// One round: fill then compute, no overlap possible.
	if got := SimulateDoubleBuffer([]int64{10}, []int64{4}); got != 14 {
		t.Fatalf("single round = %d, want 14", got)
	}
}

func TestSimulateDoubleBufferPerfectOverlap(t *testing.T) {
	// Compute-bound homogeneous rounds: fills hide entirely behind compute
	// except the first. Total = mem[0] + N*compute.
	compute := []int64{100, 100, 100, 100}
	mem := []int64{20, 20, 20, 20}
	want := int64(20 + 4*100)
	if got := SimulateDoubleBuffer(compute, mem); got != want {
		t.Fatalf("simulated = %d, want %d", got, want)
	}
}

func TestSimulateDoubleBufferMemoryBound(t *testing.T) {
	// Memory-bound homogeneous rounds: the serial DMA is the bottleneck.
	// Total = N*mem + last compute.
	compute := []int64{10, 10, 10}
	mem := []int64{50, 50, 50}
	want := int64(3*50 + 10)
	if got := SimulateDoubleBuffer(compute, mem); got != want {
		t.Fatalf("simulated = %d, want %d", got, want)
	}
}

// The model-validity result the optimizer relies on: for homogeneous
// rounds (what the packer produces within a layer), Equ. 5's closed form
// matches the event simulation up to one round of edge effects.
func TestClosedFormFaithfulOnHomogeneousRounds(t *testing.T) {
	f := func(cRaw, mRaw, nRaw uint8) bool {
		c := int64(cRaw) + 1
		m := int64(mRaw) + 1
		n := int(nRaw)%30 + 2
		compute := make([]int64, n)
		mem := make([]int64, n)
		for i := range compute {
			compute[i] = c
			mem[i] = m
		}
		sim := SimulateDoubleBuffer(compute, mem)
		cf := ClosedFormRounds(compute, mem)
		diff := sim - cf
		if diff < 0 {
			diff = -diff
		}
		// Edge effects: the first fill cannot hide, the last compute cannot
		// overlap anything.
		return diff <= c+m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Hard bounds that hold for any round mix: both engines are serial, so
// the simulation can never finish before either engine's total work, and
// double buffering can never be slower than running fills and computes
// back to back.
func TestSimulationRespectsEngineBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(20) + 1
		compute := make([]int64, n)
		mem := make([]int64, n)
		var sumC, sumM int64
		for i := range compute {
			compute[i] = int64(rng.Intn(100) + 1)
			mem[i] = int64(rng.Intn(100) + 1)
			sumC += compute[i]
			sumM += mem[i]
		}
		sim := SimulateDoubleBuffer(compute, mem)
		lower := sumC
		if sumM > lower {
			lower = sumM
		}
		if sim < lower {
			t.Fatalf("simulation (%d) beat the serial-engine lower bound (%d)", sim, lower)
		}
		if sim > sumC+sumM {
			t.Fatalf("simulation (%d) exceeded the zero-overlap upper bound (%d)", sim, sumC+sumM)
		}
	}
}

// Adversarial alternation shows where Equ. 5 is pessimistic: big-compute
// rounds hide the big fills of their successors, so the closed form can
// overestimate by up to 2x. The optimizer's homogeneous packing avoids
// this regime by construction.
func TestClosedFormPessimisticOnAlternatingRounds(t *testing.T) {
	n := 40
	compute := make([]int64, n)
	mem := make([]int64, n)
	for i := range compute {
		if i%2 == 0 {
			compute[i], mem[i] = 100, 0
		} else {
			compute[i], mem[i] = 0, 100
		}
	}
	sim := SimulateDoubleBuffer(compute, mem)
	cf := ClosedFormRounds(compute, mem)
	if float64(cf) < 1.8*float64(sim) {
		t.Fatalf("expected ~2x pessimism on alternating rounds: sim %d vs closed form %d", sim, cf)
	}
}

func TestSimulateDoubleBufferLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SimulateDoubleBuffer([]int64{1}, []int64{1, 2})
}
