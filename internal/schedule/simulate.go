package schedule

// Discrete-event validation of the round-latency model.
//
// Equ. 5 charges each round max(compute, memory), justified by double
// buffering: while the PE array computes round i from the working buffer,
// the DMA prefetches round i+1 into the filling buffer. This file
// simulates that machinery event by event — a serial DMA engine, two
// buffer halves, and the rule that a round's compute starts only when its
// fill completed and the previous compute finished — so tests can measure
// exactly when the closed-form model is faithful (homogeneous rounds, as
// produced by the optimizer) and how far it can drift on adversarial
// round mixes.

// SimulateDoubleBuffer returns the end-to-end cycle count of executing N
// rounds with the given per-round compute and memory-fill times under
// double buffering:
//
//   - the DMA is serial: fill i starts after fill i-1 completes, and not
//     before the buffer half it writes (used by compute i-2) is free;
//   - compute i starts at max(fill i done, compute i-1 done).
//
// Both slices must have equal length.
func SimulateDoubleBuffer(compute, mem []int64) int64 {
	if len(compute) != len(mem) {
		panic("schedule: compute/mem length mismatch")
	}
	n := len(compute)
	if n == 0 {
		return 0
	}
	fillDone := make([]int64, n)
	computeDone := make([]int64, n)
	for i := 0; i < n; i++ {
		fillStart := int64(0)
		if i > 0 {
			fillStart = fillDone[i-1]
		}
		if i >= 2 && computeDone[i-2] > fillStart {
			// The buffer half this fill writes is still being consumed.
			fillStart = computeDone[i-2]
		}
		fillDone[i] = fillStart + mem[i]

		computeStart := fillDone[i]
		if i > 0 && computeDone[i-1] > computeStart {
			computeStart = computeDone[i-1]
		}
		computeDone[i] = computeStart + compute[i]
	}
	return computeDone[n-1]
}

// ClosedFormRounds is Equ. 5's estimate for the same execution:
// Σ max(compute_i, mem_i).
func ClosedFormRounds(compute, mem []int64) int64 {
	if len(compute) != len(mem) {
		panic("schedule: compute/mem length mismatch")
	}
	var total int64
	for i := range compute {
		m := compute[i]
		if mem[i] > m {
			m = mem[i]
		}
		total += m
	}
	return total
}
