// Package schedule implements ASV's constrained-optimization dataflow
// framework (paper Sec. 4.2): the round-based latency model of Equ. 5–9,
// the buffer constraint of Equ. 10, and the Knapsack-style solver that
// packs sub-kernel filters into rounds, prioritizing filters from large
// sub-kernels (the paper's greedy heuristic, applied iteratively until
// every filter is scheduled — Equ. 11).
//
// The same machinery evaluates three scheduling policies:
//
//   - the baseline static buffer partition shared by all layers
//     (paper Sec. 6.2),
//   - per-layer reuse optimization with each sub-convolution scheduled
//     independently (ConvR), and
//   - inter-layer activation reuse, where all sub-convolutions of one
//     transformed deconvolution share the resident ifmap tile (ILAR).
package schedule

import (
	"fmt"

	"asv/internal/deconv"
	"asv/internal/nn"
)

// SubConv is one dense convolution to schedule: either an untransformed
// layer or one sub-kernel of a transformed deconvolution.
type SubConv struct {
	Taps         int64 // kernel volume per (input channel, filter)
	OutPerFilter int64 // ofmap elements each filter produces
	Filters      int64 // output channels
}

// MACs returns the sub-convolution's total multiply-accumulates given the
// spec's input channel count.
func (s SubConv) MACs(inC int64) int64 {
	return s.Taps * inC * s.OutPerFilter * s.Filters
}

// LayerSpec is the scheduling view of one network layer.
type LayerSpec struct {
	Name         string
	InC          int64     // input channels I
	SpatialElems int64     // ifmap spatial volume per channel (D*H*W)
	Subs         []SubConv // the dense convolutions to run
	SharedIfmap  bool      // true when Subs all read the same ifmap (ILAR)

	// DRAMIfmapFrac is the fraction of the ifmap footprint that actually
	// crosses DRAM. For a naive deconvolution the buffer holds the
	// zero-upsampled tile, but the DMA engine zero-stuffs on the fly, so
	// only the real elements are fetched (1/4 for stride-2 2-D, 1/8 for
	// 3-D). Zero means 1 (everything real).
	DRAMIfmapFrac float64
}

// dramIfmapFrac returns the effective fraction (treating 0 as 1).
func (l LayerSpec) dramIfmapFrac() float64 {
	if l.DRAMIfmapFrac == 0 {
		return 1
	}
	return l.DRAMIfmapFrac
}

// IfmapElems returns the total ifmap volume.
func (l LayerSpec) IfmapElems() int64 { return l.SpatialElems * l.InC }

// WeightElems returns the total parameter volume.
func (l LayerSpec) WeightElems() int64 {
	var s int64
	for _, sc := range l.Subs {
		s += sc.Taps * l.InC * sc.Filters
	}
	return s
}

// OfmapElems returns the total output volume.
func (l LayerSpec) OfmapElems() int64 {
	var s int64
	for _, sc := range l.Subs {
		s += sc.OutPerFilter * sc.Filters
	}
	return s
}

// MACs returns the layer's total multiply-accumulates under this execution.
func (l LayerSpec) MACs() int64 {
	var s int64
	for _, sc := range l.Subs {
		s += sc.MACs(l.InC)
	}
	return s
}

// Validate panics on an inconsistent spec.
func (l LayerSpec) Validate() {
	if l.InC < 1 || l.SpatialElems < 1 || len(l.Subs) == 0 {
		panic(fmt.Sprintf("schedule: invalid spec %q", l.Name))
	}
	for _, sc := range l.Subs {
		if sc.Taps < 1 || sc.OutPerFilter < 1 || sc.Filters < 1 {
			panic(fmt.Sprintf("schedule: invalid sub-conv in %q", l.Name))
		}
	}
}

// NaiveSpec returns the layer as a conventional accelerator executes it:
// a deconvolution becomes a dense convolution over the zero-upsampled
// ifmap, paying both the redundant MACs and the inflated ifmap traffic.
func NaiveSpec(l nn.Layer) LayerSpec {
	od, oh, ow := l.OutDims()
	orig := int64(l.InD) * int64(l.InH) * int64(l.InW)
	spatial := orig
	dramFrac := 1.0
	if l.Kind == nn.KindDeconv {
		up := func(in int) int64 { return int64((in-1)*l.Stride + 1 + 2*l.Pad) }
		spatial = up(l.InH) * up(l.InW)
		if l.Is3D() {
			spatial *= up(l.InD)
		}
		// The buffer holds the upsampled tile, but only the real elements
		// cross DRAM (the DMA zero-stuffs during the fill).
		dramFrac = float64(orig) / float64(spatial)
	}
	return LayerSpec{
		Name:          l.Name,
		InC:           int64(l.InC),
		SpatialElems:  spatial,
		DRAMIfmapFrac: dramFrac,
		Subs: []SubConv{{
			Taps:         int64(l.KD) * int64(l.KH) * int64(l.KW),
			OutPerFilter: int64(od) * int64(oh) * int64(ow),
			Filters:      int64(l.OutC),
		}},
	}
}

// TransformedSpec returns the layer after the deconvolution transformation:
// stride-2 deconvolutions decompose into sub-convolutions over the original
// ifmap (SharedIfmap=true); everything else is unchanged.
func TransformedSpec(l nn.Layer) LayerSpec {
	if l.Kind != nn.KindDeconv || l.Stride != deconv.Stride {
		s := NaiveSpec(l)
		return s
	}
	subs := deconv.Transform(l)
	spec := LayerSpec{
		Name:         l.Name,
		InC:          int64(l.InC),
		SpatialElems: int64(l.InD) * int64(l.InH) * int64(l.InW),
		SharedIfmap:  true,
	}
	for _, s := range subs {
		spec.Subs = append(spec.Subs, SubConv{
			Taps:         s.Taps(),
			OutPerFilter: s.OutElemsPerFilter(),
			Filters:      int64(l.OutC),
		})
	}
	return spec
}

// NetworkSpecs maps every layer of a network through the given spec
// builder.
func NetworkSpecs(n *nn.Network, transformed bool) []LayerSpec {
	specs := make([]LayerSpec, 0, len(n.Layers))
	for _, l := range n.Layers {
		if transformed {
			specs = append(specs, TransformedSpec(l))
		} else {
			specs = append(specs, NaiveSpec(l))
		}
	}
	return specs
}
