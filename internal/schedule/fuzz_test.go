package schedule

// Native fuzz target (ISSUE 3): cost-model invariants that must hold for
// every well-formed layer under every policy — costs are positive and
// bounded below by compulsory work, and the optimized schedule of a
// strictly larger problem is never cheaper (monotonicity).

import (
	"testing"

	"asv/internal/hw"
)

// fuzzSpec builds a small well-formed LayerSpec from raw fuzz bytes.
func fuzzSpec(inCRaw byte, spatialRaw uint16, nsubsRaw, tapsRaw byte, outRaw uint16, filtRaw byte, shared bool) LayerSpec {
	nsubs := int(nsubsRaw)%4 + 1
	spec := LayerSpec{
		Name:         "fuzz",
		InC:          int64(inCRaw)%8 + 1,
		SpatialElems: int64(spatialRaw)%512 + 1,
		SharedIfmap:  shared && nsubs > 1,
	}
	for k := 0; k < nsubs; k++ {
		spec.Subs = append(spec.Subs, SubConv{
			Taps:         (int64(tapsRaw)+int64(k))%9 + 1,
			OutPerFilter: (int64(outRaw)+17*int64(k))%1024 + 1,
			Filters:      (int64(filtRaw)+3*int64(k))%32 + 1,
		})
	}
	return spec
}

func checkInvariants(t *testing.T, policy string, spec LayerSpec, cfg hw.Config, r Result) {
	t.Helper()
	if r.Cycles <= 0 || r.MACs <= 0 || r.DRAMBytes <= 0 || r.SRAMBytes < 0 || r.Rounds < 1 {
		t.Fatalf("%s: non-positive cost %+v for %+v", policy, r, spec)
	}
	if r.MACs < spec.MACs() {
		t.Fatalf("%s: issued %d MACs, layer needs %d — work went missing", policy, r.MACs, spec.MACs())
	}
	// Compulsory DRAM traffic: every weight in, every ofmap element out.
	if floor := (spec.WeightElems() + spec.OfmapElems()) * cfg.ElemBytes; r.DRAMBytes < floor {
		t.Fatalf("%s: DRAM %d B below compulsory floor %d B for %+v", policy, r.DRAMBytes, floor, spec)
	}
	// Compute roofline: the array cannot beat perfect PE utilization.
	if pes := int64(cfg.PEsX) * int64(cfg.PEsY); r.Cycles*pes < spec.MACs() {
		t.Fatalf("%s: %d cycles on %d PEs beats the %d-MAC roofline", policy, r.Cycles, pes, spec.MACs())
	}
}

func FuzzCostModelInvariants(f *testing.F) {
	f.Add(byte(4), uint16(256), byte(4), byte(9), uint16(512), byte(16), true)
	f.Add(byte(1), uint16(8), byte(1), byte(1), uint16(4), byte(1), false)
	f.Add(byte(7), uint16(300), byte(2), byte(5), uint16(900), byte(31), true)
	f.Fuzz(func(t *testing.T, inCRaw byte, spatialRaw uint16, nsubsRaw, tapsRaw byte, outRaw uint16, filtRaw byte, shared bool) {
		spec := fuzzSpec(inCRaw, spatialRaw, nsubsRaw, tapsRaw, outRaw, filtRaw, shared)
		cfg := smallHW()
		static := Partition{IfFrac: 1.0 / 3, WFrac: 1.0 / 3, OfFrac: 1.0 / 3}

		ilar := Evaluate(spec, cfg, Options{ILAR: true})
		checkInvariants(t, "ilar", spec, cfg, ilar)
		checkInvariants(t, "convr", spec, cfg, Evaluate(spec, cfg, Options{}))
		checkInvariants(t, "static", spec, cfg, Evaluate(spec, cfg, Options{Static: &static}))

		// Monotonicity in latency: doubling the problem on any axis must not
		// make the optimized schedule faster. (DRAM traffic is deliberately
		// NOT asserted monotone: the optimizer minimizes cycles, and the
		// cycle-optimal schedule of a larger layer can pick a reuse order
		// with fewer ifmap reloads and so less total traffic — the fuzzer
		// found such a case at InC 3→6.)
		bigger := spec
		bigger.Subs = append([]SubConv(nil), spec.Subs...)
		for k := range bigger.Subs {
			bigger.Subs[k].OutPerFilter *= 2
		}
		if big := Evaluate(bigger, cfg, Options{ILAR: true}); big.Cycles < ilar.Cycles {
			t.Fatalf("doubled OutPerFilter got faster: %+v -> %+v for %+v", ilar, big, spec)
		}

		wider := spec
		wider.InC *= 2
		if wide := Evaluate(wider, cfg, Options{ILAR: true}); wide.Cycles < ilar.Cycles {
			t.Fatalf("doubled InC got faster: %+v -> %+v for %+v", ilar, wide, spec)
		}
	})
}
