package quality

import "testing"

// traceStep is one tick of a synthetic load trace: the queue depth the
// controller sees and the per-rung compute cost (ms) the simulated server
// pays. The replay is fully deterministic — no clocks, no goroutines — so
// these tests pin the controller's exact rung sequence.
type traceStep struct {
	queued int
}

// replay drives a Controller through a load trace against a synthetic
// server whose rung costs are fixed. Every tick picks a rung under the
// deadline, then observes that rung's true cost, exactly like the
// micro-batcher does. It returns the picked rung and admit flag per tick.
func replay(t *testing.T, ctl *Controller, costs []float64, trace []traceStep, workers int, deadlineMs float64) (rungs []int, admits []bool) {
	t.Helper()
	for _, st := range trace {
		r, admit := ctl.Pick(st.queued, workers, deadlineMs)
		if r < 0 || r >= len(costs) {
			t.Fatalf("Pick returned rung %d outside ladder [0,%d)", r, len(costs))
		}
		rungs = append(rungs, r)
		admits = append(admits, admit)
		if admit {
			ctl.Observe(r, costs[r])
		}
	}
	return rungs, admits
}

func ramp(from, to, ticks int) []traceStep {
	tr := make([]traceStep, ticks)
	for i := range tr {
		tr[i] = traceStep{queued: from + (to-from)*i/(ticks-1)}
	}
	return tr
}

func flat(queued, ticks int) []traceStep {
	tr := make([]traceStep, ticks)
	for i := range tr {
		tr[i] = traceStep{queued: queued}
	}
	return tr
}

// Ramp trace: queue depth grows 0→16 over 40 ticks. The controller must
// degrade monotonically — the rung sequence never steps back up while load
// only rises — and must never refuse admission before reaching the bottom
// rung.
func TestControllerRampMonotone(t *testing.T) {
	costs := []float64{40, 18, 9, 4, 2} // ms per frame at each rung
	ctl := NewController(len(costs))
	// Warm every rung so prediction reflects true costs, as a priced
	// ladder's serving history would.
	for r, c := range costs {
		ctl.Observe(r, c)
	}
	rungs, admits := replay(t, ctl, costs, ramp(0, 16, 40), 1, 50)
	for i := 1; i < len(rungs); i++ {
		if rungs[i] < rungs[i-1] {
			t.Fatalf("tick %d: rung rose %d->%d while load only increased", i, rungs[i-1], rungs[i])
		}
	}
	if rungs[0] != 0 {
		t.Errorf("idle tick picked rung %d, want 0", rungs[0])
	}
	last := len(rungs) - 1
	if rungs[last] == 0 {
		t.Error("controller never degraded under a 16-deep queue")
	}
	for i, ok := range admits {
		if !ok && rungs[i] != len(costs)-1 {
			t.Fatalf("tick %d: refused admission at rung %d before the bottom rung was exhausted", i, rungs[i])
		}
	}
}

// Spike trace: idle, a burst to queue depth 20, idle again. The controller
// must degrade during the burst and return to the top rung once the queue
// drains — degradation is not sticky.
func TestControllerSpikeRecovers(t *testing.T) {
	costs := []float64{40, 18, 9, 4, 2}
	ctl := NewController(len(costs))
	for r, c := range costs {
		ctl.Observe(r, c)
	}
	trace := append(append(flat(0, 10), flat(20, 10)...), flat(0, 10)...)
	rungs, admits := replay(t, ctl, costs, trace, 1, 50)
	for i := 0; i < 10; i++ {
		if rungs[i] != 0 {
			t.Fatalf("idle tick %d picked rung %d, want 0", i, rungs[i])
		}
	}
	spiked := false
	for i := 10; i < 20; i++ {
		if rungs[i] > 0 {
			spiked = true
		}
	}
	if !spiked {
		t.Error("controller never degraded during the spike")
	}
	for i := 20; i < 30; i++ {
		if rungs[i] != 0 {
			t.Fatalf("post-spike tick %d stuck at rung %d, want 0", i, rungs[i])
		}
	}
	for i, ok := range admits {
		if !ok {
			t.Fatalf("tick %d: spike caused a refusal even though the bottom rung fits", i)
		}
	}
}

// Sustained overload: queue depth so deep that even the bottom rung misses
// the deadline. Only then may the controller refuse admission, and the rung
// it reports while refusing is the bottom one (so the server's 429 counter
// provably implies "bottom rung exhausted").
func TestControllerOverloadRefusesOnlyAtBottom(t *testing.T) {
	costs := []float64{40, 18, 9, 4, 2}
	ctl := NewController(len(costs))
	for r, c := range costs {
		ctl.Observe(r, c)
	}
	// Bottom rung predicts 2*(1+q). Deadline 50 → refusals start at q > 24.
	rungs, admits := replay(t, ctl, costs, ramp(0, 200, 60), 1, 50)
	sawRefusal := false
	for i, ok := range admits {
		if !ok {
			sawRefusal = true
			if rungs[i] != len(costs)-1 {
				t.Fatalf("tick %d: refused at rung %d, not the bottom rung", i, rungs[i])
			}
		}
	}
	if !sawRefusal {
		t.Error("200-deep queue never triggered a refusal")
	}
	if !admits[0] {
		t.Error("idle tick was refused")
	}
}

// A cold controller has no latency samples; it must optimistically admit at
// the top rung and converge onto the correct rung as observations arrive.
func TestControllerColdStartProbes(t *testing.T) {
	costs := []float64{40, 18, 9, 4, 2}
	ctl := NewController(len(costs))
	r, admit := ctl.Pick(10, 1, 50)
	if r != 0 || !admit {
		t.Fatalf("cold Pick = (%d,%v), want optimistic (0,true)", r, admit)
	}
	rungs, admits := replay(t, ctl, costs, flat(10, 20), 1, 50)
	for i, ok := range admits {
		if !ok {
			t.Fatalf("tick %d: cold-start trace refused admission", i)
		}
	}
	// Steady state: rung 2 costs 9ms, predicts 9*11=99 > 50, rung 3 costs
	// 4ms, predicts 44 <= 50.
	if got := rungs[len(rungs)-1]; got != 3 {
		t.Errorf("converged on rung %d, want 3 under q=10 deadline=50", got)
	}
}

func TestControllerEdgeCases(t *testing.T) {
	ctl := NewController(3)
	// No deadline: always the top rung, always admitted.
	if r, admit := ctl.Pick(100, 1, 0); r != 0 || !admit {
		t.Errorf("deadline 0: got (%d,%v), want (0,true)", r, admit)
	}
	// Out-of-range and negative observations are ignored, not panics.
	ctl.Observe(-1, 5)
	ctl.Observe(3, 5)
	ctl.Observe(0, -5)
	if got := ctl.Predict(0, 0, 1); got != 0 {
		t.Errorf("rejected observations leaked into prediction: %v", got)
	}
	ctl.Observe(0, 10)
	if got := ctl.Predict(0, 3, 1); got != 40 {
		t.Errorf("Predict(0,q=3,w=1) = %v, want 10*(1+3)=40", got)
	}
	if got := ctl.Predict(0, 3, 0); got != 40 {
		t.Errorf("workers<1 should clamp to 1: got %v, want 40", got)
	}
	// EWMA moves toward new samples.
	ctl.Observe(0, 20)
	if got := ctl.Predict(0, 0, 1); got <= 10 || got >= 20 {
		t.Errorf("EWMA after 10,20 = %v, want strictly between", got)
	}
}

func TestNewControllerPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewController(0) did not panic")
		}
	}()
	NewController(0)
}
