package quality

import (
	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/stereo"
)

// Offline ladder pricing: replay a synthetic ground-truth sequence through
// every rung — the exact Step path the serving layer runs — and score each
// in MiddEval3-style bad-pixel rates and amortized arithmetic cost. The
// committed quality_ladder.json is this document at the default sizing
// (regenerate with `go run ./cmd/asveval -ladder quality_ladder.json`);
// EXPERIMENTS.md renders it as the quality-vs-throughput frontier.

// PriceConfig sizes a pricing run. The zero value prices at the evaluation
// default: 96×64 sceneflow-like frames, PW-4.
type PriceConfig struct {
	W      int
	H      int
	Frames int
	PW     int
	Seed   int64
	Preset string // "sceneflow" or "kitti"
}

func (pc PriceConfig) withDefaults() PriceConfig {
	if pc.W < 16 {
		pc.W = 96
	}
	if pc.H < 16 {
		pc.H = 64
	}
	if pc.Frames < 1 {
		pc.Frames = 12
	}
	if pc.PW < 1 {
		pc.PW = 4
	}
	if pc.Seed == 0 {
		pc.Seed = 9
	}
	if pc.Preset == "" {
		pc.Preset = "sceneflow"
	}
	return pc
}

// PricedRung is one rung's offline score, averaged over the sequence.
type PricedRung struct {
	Rung
	KeyRate float64 `json:"key_rate"`      // key frames / frames
	Bad1    float64 `json:"bad1"`          // % of GT-valid pixels with err > 1 px
	Bad3    float64 `json:"bad3"`          // % of GT-valid pixels with err > 3 px
	MMACs   float64 `json:"mmacs_per_frm"` // mean arithmetic cost, 1e6 MACs
}

// Pricing is the quality_ladder.json document: the ladder with each rung's
// measured accuracy and cost.
type Pricing struct {
	W      int          `json:"w"`
	H      int          `json:"h"`
	Frames int          `json:"frames"`
	PW     int          `json:"pw"`
	Seed   int64        `json:"seed"`
	Preset string       `json:"preset"`
	Rungs  []PricedRung `json:"rungs"`
}

// Price scores every rung of l against the dataset oracle: each rung
// replays the same synthetic sequence through Step (the serving path's
// degraded executor), so the committed prices are the accuracy a served
// stream pinned to that rung would actually deliver. top is the matcher the
// ladder's inheriting rungs run — pass the matcher the server is configured
// with.
func Price(l Ladder, top core.KeyMatcher, pc PriceConfig) (Pricing, error) {
	if err := l.Validate(); err != nil {
		return Pricing{}, err
	}
	pc = pc.withDefaults()
	var scene dataset.SceneConfig
	switch pc.Preset {
	case "kitti":
		scene = dataset.KITTILike(pc.W, pc.H, 1, pc.Seed)[0]
		scene.FrameCount = pc.Frames
	default:
		scene = dataset.SceneFlowLike(pc.W, pc.H, pc.Frames, pc.Seed)[0]
	}
	seq := dataset.Generate(scene)

	doc := Pricing{W: pc.W, H: pc.H, Frames: pc.Frames, PW: pc.PW, Seed: pc.Seed, Preset: pc.Preset}
	for _, r := range l {
		cfg := core.DefaultConfig()
		cfg.PW = pc.PW
		pipe := core.New(nil, cfg) // Step supplies the key matcher explicitly
		matcher := r.BuildMatcher(top)

		pr := PricedRung{Rung: r}
		keys := 0
		for _, fr := range seq.Frames {
			res := Step(pipe, r, pc.PW, matcher, fr.Left, fr.Right, nil)
			pr.Bad1 += stereo.ErrorRate(res.Disparity, fr.GT, 1.0)
			pr.Bad3 += stereo.ErrorRate(res.Disparity, fr.GT, 3.0)
			pr.MMACs += float64(res.MACs) / 1e6
			if res.IsKey {
				keys++
			}
		}
		n := float64(len(seq.Frames))
		pr.Bad1 /= n
		pr.Bad3 /= n
		pr.MMACs /= n
		pr.KeyRate = float64(keys) / n
		doc.Rungs = append(doc.Rungs, pr)
	}
	return doc, nil
}
