package quality

import (
	"testing"

	"asv/internal/core"
	"asv/internal/dataset"
	"asv/internal/imgproc"
	"asv/internal/pipeline"
	"asv/internal/stereo"
)

func TestDefaultLadderValid(t *testing.T) {
	l := DefaultLadder()
	if err := l.Validate(); err != nil {
		t.Fatalf("default ladder invalid: %v", err)
	}
	if l[0].Name != "full" {
		t.Fatalf("top rung %q, want full", l[0].Name)
	}
	for i := 1; i < len(l); i++ {
		op := l[i].OP
		if op.Matcher == "" && !op.Fixed && op.PWStretch == 1 && op.PyrLevel == 0 {
			t.Fatalf("rung %q applies no degradation but is not the top rung", l[i].Name)
		}
	}
}

func TestLadderValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		l    Ladder
	}{
		{"empty", Ladder{}},
		{"degraded top", Ladder{{Name: "x", OP: OperatingPoint{Fixed: true, PWStretch: 1}}}},
		{"stretched top", Ladder{{Name: "x", OP: OperatingPoint{PWStretch: 2}}}},
		{"unnamed", Ladder{{OP: OperatingPoint{PWStretch: 1}}}},
		{"duplicate", Ladder{
			{Name: "a", OP: OperatingPoint{PWStretch: 1}},
			{Name: "a", OP: OperatingPoint{Matcher: "bm", PWStretch: 2}},
		}},
		{"zero stretch", Ladder{
			{Name: "a", OP: OperatingPoint{PWStretch: 1}},
			{Name: "b", OP: OperatingPoint{Matcher: "bm"}},
		}},
		{"bad matcher", Ladder{
			{Name: "a", OP: OperatingPoint{PWStretch: 1}},
			{Name: "b", OP: OperatingPoint{Matcher: "dnn", PWStretch: 1}},
		}},
		{"deep pyramid", Ladder{
			{Name: "a", OP: OperatingPoint{PWStretch: 1}},
			{Name: "b", OP: OperatingPoint{Matcher: "bm", PWStretch: 1, PyrLevel: 5}},
		}},
	}
	for _, tc := range cases {
		if err := tc.l.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid ladder", tc.name)
		}
	}
}

func TestParseClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Class
	}{{"", Gold}, {"gold", Gold}, {"besteffort", BestEffort}, {"best-effort", BestEffort}, {"BestEffort", BestEffort}} {
		got, err := ParseClass(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseClass("platinum"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
}

func TestBuildMatcher(t *testing.T) {
	top := core.SGMMatcher{Opt: stereo.DefaultSGMOptions()}
	inherit := Rung{Name: "full", OP: OperatingPoint{PWStretch: 1}}
	if got := inherit.BuildMatcher(top); got != core.KeyMatcher(top) {
		t.Fatalf("inheriting rung built %v instead of the top matcher", got.Name())
	}
	bm := Rung{Name: "cheap", OP: OperatingPoint{Matcher: "bm", Fixed: true, PWStretch: 2, PyrLevel: 2}}
	m, ok := bm.BuildMatcher(top).(core.BMMatcher)
	if !ok {
		t.Fatal("bm rung did not build a BMMatcher")
	}
	if !m.Opt.Fixed {
		t.Error("bm rung lost the Fixed flag")
	}
	base := stereo.DefaultBMOptions().MaxDisp
	if want := scaledMaxDisp(base, 2); m.Opt.MaxDisp != want {
		t.Errorf("level-2 MaxDisp %d, want %d", m.Opt.MaxDisp, want)
	}
}

func TestUpsampleDisparity(t *testing.T) {
	d := imgproc.NewImage(2, 2)
	d.Set(0, 0, 3)
	d.Set(1, 0, -1)
	d.Set(0, 1, 0)
	d.Set(1, 1, 7)
	up := UpsampleDisparity(d, 4, 4, 1)
	if up.W != 4 || up.H != 4 {
		t.Fatalf("upsampled to %dx%d, want 4x4", up.W, up.H)
	}
	if got := up.At(0, 0); got != 6 {
		t.Errorf("valid value scaled to %v, want 6 (2x)", got)
	}
	if got := up.At(2, 0); got != -1 {
		t.Errorf("invalid pixel upsampled to %v, want -1", got)
	}
	if got := up.At(3, 3); got != 14 {
		t.Errorf("corner %v, want 14", got)
	}
	if same := UpsampleDisparity(d, 2, 2, 0); same != d {
		t.Error("level 0 should return the input unchanged")
	}
}

// The top rung must be bit-identical to the undegraded serving path: Step at
// rung 0 and pipeline.ProcessFrame must produce the same disparities frame
// by frame, including the key schedule.
func TestTopRungBitIdentical(t *testing.T) {
	seq := dataset.Generate(dataset.SceneFlowLike(64, 48, 8, 5)[0])
	matcher := core.BMMatcher{Opt: stereo.DefaultBMOptions()}
	cfg := core.DefaultConfig()
	cfg.PW = 3

	ref := core.New(matcher, cfg)
	got := core.New(matcher, cfg)
	top := DefaultLadder()[0]
	for i, fr := range seq.Frames {
		rr := pipeline.ProcessFrame(ref, matcher, fr.Left, fr.Right, nil)
		gr := Step(got, top, cfg.PW, matcher, fr.Left, fr.Right, nil)
		if rr.IsKey != gr.IsKey {
			t.Fatalf("frame %d: key schedule diverged (ref %v, ladder %v)", i, rr.IsKey, gr.IsKey)
		}
		if rr.MACs != gr.MACs {
			t.Fatalf("frame %d: MACs diverged (%d vs %d)", i, rr.MACs, gr.MACs)
		}
		for p := range rr.Disparity.Pix {
			if rr.Disparity.Pix[p] != gr.Disparity.Pix[p] {
				t.Fatalf("frame %d: disparity diverged at pixel %d", i, p)
			}
		}
	}
}

// A stretched rung must run key frames exactly every basePW*stretch frames.
func TestStretchedKeySchedule(t *testing.T) {
	seq := dataset.Generate(dataset.SceneFlowLike(48, 32, 9, 3)[0])
	matcher := core.BMMatcher{Opt: stereo.DefaultBMOptions()}
	cfg := core.DefaultConfig()
	cfg.PW = 2
	pipe := core.New(nil, cfg)
	r := Rung{Name: "s2", OP: OperatingPoint{Matcher: "bm", PWStretch: 2}}
	for i, fr := range seq.Frames {
		res := Step(pipe, r, cfg.PW, matcher, fr.Left, fr.Right, nil)
		if want := i%4 == 0; res.IsKey != want {
			t.Fatalf("frame %d: IsKey=%v, want %v (PW 2, stretch 2)", i, res.IsKey, want)
		}
	}
}

// A pyramid rung must return full-geometry disparities whose values are in
// the full-resolution range, and recover with a key frame after a Reset
// (the level-transition protocol).
func TestPyramidRungGeometry(t *testing.T) {
	seq := dataset.Generate(dataset.SceneFlowLike(64, 48, 4, 7)[0])
	top := core.BMMatcher{Opt: stereo.DefaultBMOptions()}
	cfg := core.DefaultConfig()
	cfg.PW = 4
	pipe := core.New(nil, cfg)
	r := Rung{Name: "q", OP: OperatingPoint{Matcher: "bm", Fixed: true, PWStretch: 1, PyrLevel: 1}}
	matcher := r.BuildMatcher(top)
	for i, fr := range seq.Frames {
		res := Step(pipe, r, cfg.PW, matcher, fr.Left, fr.Right, nil)
		if res.Disparity.W != 64 || res.Disparity.H != 48 {
			t.Fatalf("frame %d: disparity %dx%d, want full 64x48", i, res.Disparity.W, res.Disparity.H)
		}
	}
	if gotCfg := pipe.Config(); gotCfg.BM.Fixed {
		t.Error("Step leaked the fixed-point refine config into the pipeline")
	}
	// Level transition: the caller resets, the next Step must key-frame.
	pipe.Reset()
	res := Step(pipe, DefaultLadder()[0], cfg.PW, top, seq.Frames[0].Left, seq.Frames[0].Right, nil)
	if !res.IsKey {
		t.Error("first frame after Reset was not a key frame")
	}
	if res.Disparity.W != 64 {
		t.Errorf("post-reset disparity width %d, want 64", res.Disparity.W)
	}
}
