package quality

import (
	"testing"

	"asv/internal/core"
	"asv/internal/stereo"
)

func TestPriceDefaultLadder(t *testing.T) {
	top := core.BMMatcher{Opt: stereo.DefaultBMOptions()}
	pc := PriceConfig{W: 48, H: 32, Frames: 8, PW: 2, Seed: 5}
	doc, err := Price(DefaultLadder(), top, pc)
	if err != nil {
		t.Fatalf("Price: %v", err)
	}
	if len(doc.Rungs) != len(DefaultLadder()) {
		t.Fatalf("priced %d rungs, want %d", len(doc.Rungs), len(DefaultLadder()))
	}
	if doc.W != 48 || doc.Frames != 8 || doc.Preset != "sceneflow" {
		t.Errorf("config echo wrong: %+v", doc)
	}
	for _, pr := range doc.Rungs {
		if pr.MMACs <= 0 {
			t.Errorf("rung %q: non-positive cost %v", pr.Name, pr.MMACs)
		}
		if pr.Bad3 < 0 || pr.Bad3 > 100 {
			t.Errorf("rung %q: bad3 %v out of [0,100]", pr.Name, pr.Bad3)
		}
		if pr.Bad1 < pr.Bad3 {
			t.Errorf("rung %q: bad1 %v < bad3 %v (thresholds are nested)", pr.Name, pr.Bad1, pr.Bad3)
		}
		if pr.KeyRate <= 0 || pr.KeyRate > 1 {
			t.Errorf("rung %q: key rate %v out of (0,1]", pr.Name, pr.KeyRate)
		}
	}
	// The ladder must actually be a cost ladder: the bottom rung is strictly
	// cheaper than the top, and stretching the window lowers the key rate.
	top3 := doc.Rungs[0]
	bottom := doc.Rungs[len(doc.Rungs)-1]
	if bottom.MMACs >= top3.MMACs {
		t.Errorf("bottom rung costs %.2f MMACs, not cheaper than top %.2f", bottom.MMACs, top3.MMACs)
	}
	var full, stretch2 *PricedRung
	for i := range doc.Rungs {
		switch doc.Rungs[i].Name {
		case "full":
			full = &doc.Rungs[i]
		case "stretch2":
			stretch2 = &doc.Rungs[i]
		}
	}
	if full == nil || stretch2 == nil {
		t.Fatal("default ladder lost its full/stretch2 rungs")
	}
	if stretch2.KeyRate >= full.KeyRate {
		t.Errorf("stretch2 key rate %v not below full %v", stretch2.KeyRate, full.KeyRate)
	}
}

func TestPriceRejectsInvalidLadder(t *testing.T) {
	top := core.BMMatcher{Opt: stereo.DefaultBMOptions()}
	if _, err := Price(Ladder{}, top, PriceConfig{}); err == nil {
		t.Error("Price accepted an empty ladder")
	}
}

func TestPriceKITTIPreset(t *testing.T) {
	top := core.BMMatcher{Opt: stereo.DefaultBMOptions()}
	pc := PriceConfig{W: 48, H: 32, Frames: 4, PW: 2, Seed: 3, Preset: "kitti"}
	doc, err := Price(Ladder{{Name: "full", OP: OperatingPoint{PWStretch: 1}}}, top, pc)
	if err != nil {
		t.Fatalf("Price(kitti): %v", err)
	}
	if doc.Preset != "kitti" || len(doc.Rungs) != 1 {
		t.Fatalf("unexpected doc: %+v", doc)
	}
}
