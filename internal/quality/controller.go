package quality

import "sync"

// Controller is the serving layer's rung picker: a per-rung EWMA latency
// predictor plus the deadline test. The batcher feeds it every completed
// frame's compute time (Observe) and asks, per best-effort frame, for the
// most accurate rung whose predicted latency still meets the session's
// deadline under the current queue depth (Pick).
//
// The predictor is deliberately simple and fully deterministic: predicted
// latency of rung r at queue depth q with w workers is
//
//	ewma[r] * (1 + q/w)
//
// — the frame's own compute time plus the queue of frames ahead of it, all
// assumed to run at the same rung. Unobserved rungs predict 0 (optimistic),
// so the controller probes downward one rung at a time rather than jumping
// to the bottom on the first overload. Determinism is what makes the
// trace-replay tests in controller_test.go exact rather than statistical.
type Controller struct {
	mu    sync.Mutex
	alpha float64
	ewma  []float64 // per-rung EWMA of observed frame compute, ms
	seen  []bool
}

// NewController returns a controller for a ladder of rungs entries.
func NewController(rungs int) *Controller {
	if rungs < 1 {
		panic("quality: controller needs at least one rung")
	}
	return &Controller{alpha: 0.3, ewma: make([]float64, rungs), seen: make([]bool, rungs)}
}

// Observe feeds one completed frame's compute time into rung's predictor.
// Out-of-range rungs and negative samples are ignored.
func (c *Controller) Observe(rung int, ms float64) {
	if rung < 0 || rung >= len(c.ewma) || ms < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.seen[rung] {
		c.ewma[rung], c.seen[rung] = ms, true
		return
	}
	c.ewma[rung] = c.alpha*ms + (1-c.alpha)*c.ewma[rung]
}

// Predict returns rung's predicted latency (ms) at the given queue depth:
// 0 for a rung that has never been observed.
func (c *Controller) Predict(rung, queued, workers int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.predictLocked(rung, queued, workers)
}

func (c *Controller) predictLocked(rung, queued, workers int) float64 {
	if rung < 0 || rung >= len(c.ewma) || !c.seen[rung] {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	if queued < 0 {
		queued = 0
	}
	return c.ewma[rung] * (1 + float64(queued)/float64(workers))
}

// Pick returns the most accurate rung whose predicted latency meets
// deadlineMs at the current queue depth, and whether the frame should be
// admitted at all. When even the bottom rung's prediction misses the
// deadline the ladder is exhausted: Pick returns the bottom rung with
// admit=false, and the caller sheds the frame with 429. A non-positive
// deadline means "no deadline": the top rung, always admitted.
//
// For a fixed predictor state the chosen rung is monotone in queued — more
// queue pressure can only move the choice down-ladder — which is the
// property the replay tests pin.
func (c *Controller) Pick(queued, workers int, deadlineMs float64) (rung int, admit bool) {
	if deadlineMs <= 0 {
		return 0, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for r := 0; r < len(c.ewma); r++ {
		if c.predictLocked(r, queued, workers) <= deadlineMs {
			return r, true
		}
	}
	return len(c.ewma) - 1, false
}
