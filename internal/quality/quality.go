// Package quality unifies the accuracy/compute knobs that were previously
// scattered across layers — matcher kind and Fixed flag in internal/stereo,
// the propagation window in internal/core, per-session configuration in
// internal/serve — into one operating-point abstraction: an ordered Ladder
// of rungs, each trading disparity accuracy for compute.
//
// A rung composes four orthogonal degradations of the ISM pipeline:
//
//   - matcher choice: the server's configured key matcher (typically the
//     accelerator-backed one) versus the cheap classic BM/SGM kernels;
//   - float versus the fixed-point kernels (ROADMAP item 2);
//   - PW stretch: multiply the session's propagation window, amortizing the
//     expensive key matcher over more motion-propagated frames;
//   - pyramid level: match at 1/2^L resolution via the existing pyramid
//     code and upsample the disparity back (values scale by 2^L).
//
// The top rung (index 0) is special: it applies no degradation at all, so a
// session pinned there is bit-identical to the pre-ladder serving path. The
// serving layer picks rungs at runtime (see Controller); the offline pricer
// (see Price) scores every rung against the dataset oracle into the
// committed quality_ladder.json.
//
// See DESIGN.md §12 "Operating-point ladder".
package quality

import (
	"fmt"
	"strings"

	"asv/internal/core"
	"asv/internal/imgproc"
	"asv/internal/metrics"
	"asv/internal/pipeline"
	"asv/internal/stereo"
)

// Class is a session's service-level objective: whether overload may trade
// its accuracy away.
type Class int

const (
	// Gold pins the session to the top rung; under overload it is shed with
	// 429 rather than degraded. The zero value, so untouched callers keep
	// the pre-ladder behavior.
	Gold Class = iota
	// BestEffort lets the server degrade the session to cheaper rungs under
	// load; it is refused only once even the bottom rung cannot meet the
	// session's deadline.
	BestEffort
)

// ParseClass maps the wire names ("", "gold", "besteffort", "best-effort")
// to a Class.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(s) {
	case "", "gold":
		return Gold, nil
	case "besteffort", "best-effort":
		return BestEffort, nil
	}
	return Gold, fmt.Errorf("unknown SLO class %q (gold|besteffort)", s)
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == BestEffort {
		return "besteffort"
	}
	return "gold"
}

// OperatingPoint is one point in the accuracy/compute space.
type OperatingPoint struct {
	// Matcher selects the key-frame matcher: "" inherits the server's
	// configured matcher (required on the top rung so it stays bit-identical
	// to the undegraded path), "bm" and "sgm" build the classic kernels.
	Matcher string `json:"matcher,omitempty"`
	// Fixed selects the fixed-point kernels for a built matcher.
	Fixed bool `json:"fixed,omitempty"`
	// PWStretch multiplies the session's propagation window (1 = no
	// stretch): key frames every basePW*PWStretch frames.
	PWStretch int `json:"pw_stretch"`
	// PyrLevel matches at 1/2^PyrLevel resolution and upsamples the
	// disparity back to full size (0 = full resolution).
	PyrLevel int `json:"pyr_level"`
}

// Rung is a named operating point in a ladder.
type Rung struct {
	Name string         `json:"name"`
	OP   OperatingPoint `json:"op"`
}

// Ladder is an ordered list of rungs, most accurate first. Index 0 is the
// "full" rung every gold session is pinned to; the last index is the
// cheapest rung the controller can fall back to.
type Ladder []Rung

// DefaultLadder returns the committed five-rung ladder: full fidelity, then
// fixed-point kernels, then progressively stretched windows and halved
// resolutions. Accuracy prices for these rungs live in quality_ladder.json.
func DefaultLadder() Ladder {
	return Ladder{
		{Name: "full", OP: OperatingPoint{PWStretch: 1, PyrLevel: 0}},
		{Name: "fixed", OP: OperatingPoint{Matcher: "bm", Fixed: true, PWStretch: 1, PyrLevel: 0}},
		{Name: "stretch2", OP: OperatingPoint{Matcher: "bm", Fixed: true, PWStretch: 2, PyrLevel: 0}},
		{Name: "half-res", OP: OperatingPoint{Matcher: "bm", Fixed: true, PWStretch: 2, PyrLevel: 1}},
		{Name: "quarter-res", OP: OperatingPoint{Matcher: "bm", Fixed: true, PWStretch: 4, PyrLevel: 2}},
	}
}

// Validate checks ladder invariants: at least one rung, unique names, a
// bit-identical top rung, and sane stretch/level values.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("quality: empty ladder")
	}
	if top := l[0].OP; top.Matcher != "" || top.Fixed || top.PWStretch != 1 || top.PyrLevel != 0 {
		return fmt.Errorf("quality: top rung %q must be the undegraded operating point", l[0].Name)
	}
	seen := make(map[string]bool, len(l))
	for i, r := range l {
		if r.Name == "" {
			return fmt.Errorf("quality: rung %d has no name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("quality: duplicate rung name %q", r.Name)
		}
		seen[r.Name] = true
		if r.OP.PWStretch < 1 {
			return fmt.Errorf("quality: rung %q has PW stretch %d < 1", r.Name, r.OP.PWStretch)
		}
		if r.OP.PyrLevel < 0 || r.OP.PyrLevel > 4 {
			return fmt.Errorf("quality: rung %q pyramid level %d out of [0,4]", r.Name, r.OP.PyrLevel)
		}
		switch r.OP.Matcher {
		case "", "bm", "sgm":
		default:
			return fmt.Errorf("quality: rung %q has unknown matcher %q", r.Name, r.OP.Matcher)
		}
	}
	return nil
}

// BuildMatcher resolves the rung's key matcher: top (the caller's configured
// matcher, typically the accelerator-backed one) when the operating point
// inherits, otherwise a classic kernel sized for the rung's pyramid level
// (the disparity range shrinks with the image).
func (r Rung) BuildMatcher(top core.KeyMatcher) core.KeyMatcher {
	switch r.OP.Matcher {
	case "bm":
		opt := stereo.DefaultBMOptions()
		opt.MaxDisp = scaledMaxDisp(opt.MaxDisp, r.OP.PyrLevel)
		opt.Fixed = r.OP.Fixed
		return core.BMMatcher{Opt: opt}
	case "sgm":
		opt := stereo.DefaultSGMOptions()
		opt.MaxDisp = scaledMaxDisp(opt.MaxDisp, r.OP.PyrLevel)
		opt.Fixed = r.OP.Fixed
		return core.SGMMatcher{Opt: opt}
	}
	return top
}

// scaledMaxDisp halves the disparity search range per pyramid level, never
// below 4 (the kernels need some range to search over).
func scaledMaxDisp(maxDisp, level int) int {
	d := maxDisp >> level
	if d < 4 {
		d = 4
	}
	return d
}

// EffectivePW is the rung's stretched propagation window over a session's
// base window.
func (r Rung) EffectivePW(basePW int) int {
	eff := basePW * r.OP.PWStretch
	if eff < 1 {
		eff = 1
	}
	return eff
}

// NextIsKey decides the key schedule for a stream operating at rung r: a
// key frame when the pipeline has no committed state yet (first frame, or
// just after a pyramid-level Reset) or once the frames since the last key
// reach the stretched window. For PWStretch 1 this is provably the same
// schedule as core's static frameIdx%PW rule (a key commit sets sinceKey to
// 1 and every frame increments it), but unlike the frame-index rule it
// stays coherent when the stretch changes mid-stream.
func NextIsKey(p *core.Pipeline, r Rung, basePW int) bool {
	if left, _ := p.PrevFrames(); left == nil {
		return true
	}
	return p.SinceKey() >= r.EffectivePW(basePW)
}

// Step advances one frame of a stream operating at rung r: downsample the
// pair to the rung's pyramid level, run the key or propagated ISM step
// through the shared pipeline entry point (same kernels, same stage
// metrics), and upsample the disparity back to the input geometry with
// values scaled by 2^level. matcher must be r.BuildMatcher's result for a
// consistent stream.
//
// The caller owns level transitions: the flow kernels require consecutive
// frames to agree in size, so the pipeline must be Reset when the rung's
// pyramid level differs from the previous frame's (the next Step then
// recovers with a key frame at the new resolution).
func Step(p *core.Pipeline, r Rung, basePW int, matcher core.KeyMatcher, left, right *imgproc.Image, m *metrics.Registry) core.Result {
	// A fixed-point rung flips the guided-refine kernels too, not just the
	// key matcher; the pipeline's own configuration is restored before
	// returning so state observed between frames (snapshots) stays at the
	// session's configured fidelity.
	if r.OP.Fixed {
		if cfg := p.Config(); !cfg.BM.Fixed {
			cfg.BM.Fixed = true
			p.SetConfig(cfg)
			defer func() {
				cfg.BM.Fixed = false
				p.SetConfig(cfg)
			}()
		}
	}
	fullW, fullH := left.W, left.H
	level := r.OP.PyrLevel
	l, rt := DownsampleInput(left, level), DownsampleInput(right, level)
	res := pipeline.ProcessFrameAs(p, matcher, l, rt, NextIsKey(p, r, basePW), m)
	if level > 0 {
		res.Disparity = UpsampleDisparity(res.Disparity, fullW, fullH, level)
	}
	return res
}

// DownsampleInput returns im blurred and decimated level times (the same
// blur-then-decimate schedule imgproc.Pyramid uses); level 0 returns im
// itself.
func DownsampleInput(im *imgproc.Image, level int) *imgproc.Image {
	out := im
	for l := 0; l < level; l++ {
		blurred := imgproc.GaussianBlur(out, 1.0)
		out = imgproc.Downsample2(blurred)
		imgproc.PutImage(blurred)
	}
	return out
}

// UpsampleDisparity lifts a disparity map computed at pyramid level back to
// w×h: nearest-neighbor sampling (bilinear would blend invalid pixels into
// their neighbors) with values scaled by 2^level; invalid entries (<0) stay
// exactly -1. level 0 returns d itself.
func UpsampleDisparity(d *imgproc.Image, w, h, level int) *imgproc.Image {
	if level == 0 {
		return d
	}
	scale := float32(int(1) << level)
	out := imgproc.NewImage(w, h)
	for y := 0; y < h; y++ {
		sy := y * d.H / h
		row := out.Pix[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			v := d.At(x*d.W/w, sy)
			if v < 0 {
				row[x] = -1
			} else {
				row[x] = v * scale
			}
		}
	}
	return out
}
