package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"asv/internal/deconv"
	"asv/internal/hw"
	"asv/internal/nn"
	"asv/internal/schedule"
	"asv/internal/tensor"
)

func refMatMul(a, w [][]float32) [][]float32 {
	m, k := len(a), len(a[0])
	n := len(w[0])
	out := mat(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for x := 0; x < k; x++ {
				s += float64(a[i][x]) * float64(w[x][j])
			}
			out[i][j] = float32(s)
		}
	}
	return out
}

func randMat(rng *rand.Rand, r, c int) [][]float32 {
	m := mat(r, c)
	for i := range m {
		for j := range m[i] {
			m[i][j] = rng.Float32()*2 - 1
		}
	}
	return m
}

func maxDiff(a, b [][]float32) float64 {
	var d float64
	for i := range a {
		for j := range a[i] {
			x := float64(a[i][j] - b[i][j])
			if x < 0 {
				x = -x
			}
			if x > d {
				d = x
			}
		}
	}
	return d
}

func TestGridMatMulSmallExact(t *testing.T) {
	// 2x2 array, 2x2 matrices: hand-checkable.
	g := NewGrid(2, 2)
	a := [][]float32{{1, 2}, {3, 4}}
	w := [][]float32{{5, 6}, {7, 8}}
	got := g.MatMul(a, w)
	want := [][]float32{{19, 22}, {43, 50}}
	if maxDiff(got, want) != 0 {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestGridMatMulTiledMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// k and n deliberately exceed the 4x3 array so tiling engages.
	a := randMat(rng, 7, 10)
	w := randMat(rng, 10, 8)
	g := NewGrid(4, 3)
	got := g.MatMul(a, w)
	want := refMatMul(a, w)
	if d := maxDiff(got, want); d > 1e-4 {
		t.Fatalf("tiled systolic MatMul diverges by %v", d)
	}
}

// Property: the simulated dataflow equals reference matmul for random
// shapes that exercise partial edge tiles.
func TestQuickGridMatMul(t *testing.T) {
	f := func(seed int64, mRaw, kRaw, nRaw, rRaw, cRaw uint8) bool {
		m := int(mRaw)%6 + 1
		k := int(kRaw)%7 + 1
		n := int(nRaw)%6 + 1
		rows := int(rRaw)%4 + 1
		cols := int(cRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, m, k)
		w := randMat(rng, k, n)
		got := NewGrid(rows, cols).MatMul(a, w)
		return maxDiff(got, refMatMul(a, w)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGridConv2DMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	in := tensor.RandFill(tensor.New(3, 8, 8), rng)
	w := tensor.RandFill(tensor.New(5, 3, 3, 3), rng)
	g := NewGrid(8, 4)
	got := g.Conv2D(in, w, 1, 1)
	want := tensor.Conv2D(in, w, 1, 1)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("systolic Conv2D diverges by %v", d)
	}
}

func TestGridConv2DStride2(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := tensor.RandFill(tensor.New(2, 9, 9), rng)
	w := tensor.RandFill(tensor.New(3, 2, 3, 3), rng)
	g := NewGrid(6, 3)
	got := g.Conv2D(in, w, 2, 1)
	want := tensor.Conv2D(in, w, 2, 1)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("stride-2 systolic Conv2D diverges by %v", d)
	}
}

// The end-to-end hardware/software story: a transformed deconvolution's
// sub-convolutions executed on the simulated array, gathered, must equal
// the reference sparse deconvolution. This is the full ASV execution path
// in miniature.
func TestGridExecutesTransformedDeconv(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	in := tensor.RandFill(tensor.New(2, 5, 5), rng)
	w := tensor.RandFill(tensor.New(3, 2, 4, 4), rng)
	const pad = 2 // transposed padding 1 for k=4

	want := tensor.Deconv2D(in, w, 2, pad)

	// Execute each sub-kernel as a dense convolution on the array, then
	// gather by parity, exactly as the transformed schedule does.
	subs := deconv.Decompose2D(w)
	oh, ow := want.Dim(1), want.Dim(2)
	got := tensor.New(want.Shape()...)
	g := NewGrid(8, 3)
	for k, s := range subs {
		if s == nil {
			continue
		}
		dy := k & 1
		dx := (k >> 1) & 1
		// Compute the sub-convolution over the whole padded input range the
		// gather needs, via direct evaluation on the array at offset grid
		// positions: pad the input so every (ay, ax) is in range.
		sh, sw := s.Dim(2), s.Dim(3)
		// Build a padded copy of the input.
		padN := 4
		padded := tensor.New(in.Dim(0), in.Dim(1)+2*padN, in.Dim(2)+2*padN)
		for c := 0; c < in.Dim(0); c++ {
			for y := 0; y < in.Dim(1); y++ {
				for x := 0; x < in.Dim(2); x++ {
					padded.Set3(in.At3(c, y, x), c, y+padN, x+padN)
				}
			}
		}
		conv := g.Conv2D(padded, s, 1, 0)
		for u := 0; u < oh; u++ {
			if (mod2(pad-u) != dy) || (u-pad+dy)%2 != 0 {
				continue
			}
			ay := (u - pad + dy) / 2
			for v := 0; v < ow; v++ {
				if mod2(pad-v) != dx {
					continue
				}
				ax := (v - pad + dx) / 2
				cy, cx := ay+padN, ax+padN
				if cy < 0 || cx < 0 || cy >= conv.Dim(1)-sh+1+0 || cx >= conv.Dim(2)-sw+1+0 {
					continue
				}
				for f := 0; f < want.Dim(0); f++ {
					got.Set3(conv.At3(f, cy, cx), f, u, v)
				}
			}
		}
	}
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("array-executed transformed deconvolution diverges by %v", d)
	}
}

func mod2(x int) int {
	m := x % 2
	if m < 0 {
		m += 2
	}
	return m
}

func TestGridCycleAccounting(t *testing.T) {
	g := NewGrid(4, 4)
	m, k, n := 10, 4, 4 // single tile
	rng := rand.New(rand.NewSource(11))
	g.MatMul(randMat(rng, m, k), randMat(rng, k, n))
	want := g.TilePassCycles(m)
	if g.Cycles() != want {
		t.Fatalf("cycles = %d, want %d (load %d + stream %d)",
			g.Cycles(), want, g.Rows, m+g.Rows+g.Cols-1)
	}
}

func TestGridCyclesApproachAnalyticModel(t *testing.T) {
	// For m >> rows+cols, cycles/tile-pass ~ m, so total cycles approach
	// MACs / (rows*cols) — the analytic model's compute roofline.
	g := NewGrid(8, 8)
	m, k, n := 512, 8, 8
	rng := rand.New(rand.NewSource(12))
	a := randMat(rng, m, k)
	w := randMat(rng, k, n)
	g.MatMul(a, w)
	roof := float64(m*k*n) / float64(g.Rows*g.Cols)
	ratio := float64(g.Cycles()) / roof
	if ratio < 1.0 || ratio > 1.1 {
		t.Fatalf("measured/analytic cycle ratio = %.3f, want within 10%% of 1", ratio)
	}
}

func TestGridMACCount(t *testing.T) {
	g := NewGrid(2, 2)
	a := [][]float32{{1, 2}, {3, 4}, {5, 6}}
	w := [][]float32{{1, 1}, {1, 1}}
	g.MatMul(a, w)
	// Every operand is nonzero: exactly m*k*n genuine MACs.
	if g.MACs() != 3*2*2 {
		t.Fatalf("MACs = %d, want 12", g.MACs())
	}
}

func TestNewGridPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid(0, 4)
}

func TestGridSADModeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := tensor.RandFill(tensor.New(9, 9), rng)
	block := tensor.RandFill(tensor.New(3, 3), rng)
	g := NewGrid(6, 2)
	g.Mode = ModeSAD
	got := g.SADWindow2D(in, block)
	want := tensor.SADWindow(in, block, 1)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("array SAD diverges from reference by %v", d)
	}
}

func TestGridSADRequiresMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid(4, 4).SADWindow2D(tensor.New(4, 4), tensor.New(2, 2))
}

// Property: the SAD-mode array equals the reference across random shapes —
// the Sec. 5.2 claim that block matching shares the convolution dataflow.
func TestQuickGridSAD(t *testing.T) {
	f := func(seed int64, hRaw, kRaw, rRaw uint8) bool {
		h := int(hRaw)%6 + 4
		k := int(kRaw)%3 + 2
		rows := int(rRaw)%5 + 1
		if k > h {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		in := tensor.RandFill(tensor.New(h, h), rng)
		block := tensor.RandFill(tensor.New(k, k), rng)
		g := NewGrid(rows, 2)
		g.Mode = ModeSAD
		got := g.SADWindow2D(in, block)
		return tensor.MaxAbsDiff(got, tensor.SADWindow(in, block, 1)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Cross-validation of the two performance models in this package: the
// analytic round model (schedule.Evaluate) and the functional cycle-stepped
// grid must agree on a layer sized to fill the array exactly.
func TestAnalyticModelMatchesFunctionalGrid(t *testing.T) {
	const (
		rows, cols = 16, 8
		inC, k     = 4, 2 // contraction = 4*2*2 = 16 = rows
		outC       = 8    // = cols
		inH, inW   = 18, 18
	)
	l := nn.Layer{Name: "x", Kind: nn.KindConv, InC: inC, InD: 1,
		InH: inH, InW: inW, OutC: outC, KD: 1, KH: k, KW: k, Stride: 1, Pad: 0}

	// Functional measurement.
	rng := rand.New(rand.NewSource(33))
	in := tensor.RandFill(tensor.New(inC, inH, inW), rng)
	w := tensor.RandFill(tensor.New(outC, inC, k, k), rng)
	g := NewGrid(rows, cols)
	g.Conv2D(in, w, 1, 0)
	measured := g.Cycles()

	// Analytic prediction with matching resources and ample memory (the
	// grid does not model DRAM).
	cfg := hw.Default()
	cfg.PEsX, cfg.PEsY = rows, cols
	cfg.BWBytesSec = 1e15
	r := schedule.Evaluate(schedule.NaiveSpec(l), cfg, schedule.Options{})

	ratio := float64(measured) / float64(r.Cycles)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("functional %d vs analytic %d cycles (ratio %.2f), want within 25%%",
			measured, r.Cycles, ratio)
	}
}
