// Package grid is the functional systolic-array simulator.
//
// While the analytic model (systolic.RunNetwork) predicts performance, this
// package actually *executes* the weight-stationary dataflow cycle by cycle
// on a simulated PE grid: activations enter skewed from the left and hop one
// PE per cycle; partial sums flow down the columns; each PE performs one MAC
// per cycle against its resident weight. Convolutions run as implicit-GEMM
// (the contraction dimension C·KH·KW maps to rows, filters map to columns,
// output pixels stream through), tiled to the array size with partial sums
// accumulated across contraction tiles — the same execution the analytic
// round model charges for.
//
// Tests verify the simulated array is bit-equivalent to the reference
// convolution and that its measured cycle count matches the fill/stream/
// drain formula the analytic model assumes. The package is deliberately
// independent of the cost models, so it does not count as a "concrete model
// package" for the archlayer rule.
package grid

import (
	"fmt"

	"asv/internal/tensor"
)

// Mode selects the PE arithmetic: MAC for convolution, SAD for the
// accumulate-absolute-difference extension ASV adds for block matching
// (Sec. 5.2: a ← a + |b−c|).
type Mode int

// PE modes.
const (
	ModeMAC Mode = iota
	ModeSAD
)

// Grid is a weight-stationary systolic array of Rows×Cols PEs.
type Grid struct {
	Rows, Cols int
	Mode       Mode
	weight     [][]float32
	active     [][]bool // SAD mode: which PEs hold real taps
	act        [][]float32
	psum       [][]float32
	cycles     int64
	macs       int64
}

// NewGrid returns an idle array.
func NewGrid(rows, cols int) *Grid {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("grid: invalid grid %dx%d", rows, cols))
	}
	g := &Grid{Rows: rows, Cols: cols}
	g.weight = mat(rows, cols)
	g.act = mat(rows, cols)
	g.psum = mat(rows, cols)
	g.active = make([][]bool, rows)
	for i := range g.active {
		g.active[i] = make([]bool, cols)
	}
	return g
}

func mat(r, c int) [][]float32 {
	m := make([][]float32, r)
	backing := make([]float32, r*c)
	for i := range m {
		m[i], backing = backing[:c:c], backing[c:]
	}
	return m
}

// Cycles returns the total simulated cycles (including weight loads).
func (g *Grid) Cycles() int64 { return g.cycles }

// MACs returns the number of genuine multiply-accumulates performed.
func (g *Grid) MACs() int64 { return g.macs }

// LoadWeights makes w (rows×cols, possibly smaller than the array) resident,
// zero-filling unused PEs. Loading streams one row per cycle.
func (g *Grid) LoadWeights(w [][]float32) {
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			g.weight[r][c] = 0
			g.active[r][c] = false
		}
	}
	for r := range w {
		if r >= g.Rows {
			panic("grid: weight tile taller than array")
		}
		for c := range w[r] {
			if c >= g.Cols {
				panic("grid: weight tile wider than array")
			}
			g.weight[r][c] = w[r][c]
			g.active[r][c] = true
		}
	}
	g.cycles += int64(g.Rows) // weights shift down one row per cycle
	// Flush in-flight state from the previous tile.
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			g.act[r][c] = 0
			g.psum[r][c] = 0
		}
	}
}

// step advances one clock: actIn[r] enters row r from the left; the
// bottom-row partial sums *after* this cycle are returned.
func (g *Grid) step(actIn []float32) []float32 {
	g.cycles++
	// Walk right-to-left and bottom-to-top so reads see last cycle's
	// registers.
	for c := g.Cols - 1; c >= 0; c-- {
		for r := g.Rows - 1; r >= 0; r-- {
			var a float32
			if c == 0 {
				a = actIn[r]
			} else {
				a = g.act[r][c-1]
			}
			var up float32
			if r > 0 {
				up = g.psum[r-1][c]
			}
			g.act[r][c] = a
			switch g.Mode {
			case ModeSAD:
				// The ASV PE extension: accumulate |weight − activation|,
				// but only on PEs holding a real tap (an idle PE must not
				// add |w−0|).
				if g.active[r][c] {
					d := g.weight[r][c] - a
					if d < 0 {
						d = -d
					}
					g.psum[r][c] = up + d
					g.macs++
				} else {
					g.psum[r][c] = up
				}
			default:
				g.psum[r][c] = up + g.weight[r][c]*a
				if g.weight[r][c] != 0 && a != 0 {
					g.macs++
				}
			}
		}
	}
	out := make([]float32, g.Cols)
	copy(out, g.psum[g.Rows-1])
	return out
}

// MatMul streams A (m×k) against the resident weights interpretation
// W (k×n), tiling k over rows and n over columns. In ModeMAC the result is
// A·W; in ModeSAD element (m, n) is Σ_k |A[m][k] − W[k][n]| — the same
// dataflow with the PE's reduction swapped, which is exactly how ASV maps
// block matching onto the array.
func (g *Grid) MatMul(a [][]float32, w [][]float32) [][]float32 {
	m := len(a)
	if m == 0 {
		return nil
	}
	k := len(a[0])
	if len(w) != k {
		panic(fmt.Sprintf("grid: inner dims %d vs %d", k, len(w)))
	}
	n := len(w[0])
	out := mat(m, n)

	for k0 := 0; k0 < k; k0 += g.Rows {
		kt := min(g.Rows, k-k0)
		for n0 := 0; n0 < n; n0 += g.Cols {
			nt := min(g.Cols, n-n0)
			// Resident tile.
			tile := make([][]float32, kt)
			for r := 0; r < kt; r++ {
				tile[r] = w[k0+r][n0 : n0+nt]
			}
			g.LoadWeights(tile)
			g.streamTile(a, out, k0, kt, n0, nt)
		}
	}
	return out
}

// streamTile pushes all m input rows through the loaded tile with the
// canonical skew (row r delayed r cycles) and accumulates the column
// outputs into out.
func (g *Grid) streamTile(a [][]float32, out [][]float32, k0, kt, n0, nt int) {
	m := len(a)
	total := m + g.Rows + g.Cols - 1 // stream + skew drain
	actIn := make([]float32, g.Rows)
	for t := 0; t < total; t++ {
		for r := 0; r < g.Rows; r++ {
			idx := t - r // row r is skewed by r cycles
			if r < kt && idx >= 0 && idx < m {
				actIn[r] = a[idx][k0+r]
			} else {
				actIn[r] = 0
			}
		}
		bottom := g.step(actIn)
		// The result for input row idx appears at the bottom of column c at
		// cycle idx + (Rows-1) + c  (using the full physical array height).
		for c := 0; c < nt; c++ {
			idx := t - (g.Rows - 1) - c
			if idx >= 0 && idx < m {
				out[idx][n0+c] += bottom[c]
			}
		}
	}
}

// Conv2D executes the convolution of in [C,H,W] with w [F,C,KH,KW]
// (stride/pad as in tensor.Conv2D) on the simulated array via implicit
// GEMM, returning [F,OH,OW]. The result is numerically identical to
// tensor.Conv2D up to float summation order.
func (g *Grid) Conv2D(in, w *tensor.Tensor, stride, pad int) *tensor.Tensor {
	cIn, h, wd := in.Dim(0), in.Dim(1), in.Dim(2)
	f, kh, kw := w.Dim(0), w.Dim(2), w.Dim(3)
	oh := tensor.ConvOut(h, kh, stride, pad)
	ow := tensor.ConvOut(wd, kw, stride, pad)

	// im2col: A is (OH*OW) x (C*KH*KW).
	k := cIn * kh * kw
	a := mat(oh*ow, k)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := a[oy*ow+ox]
			i := 0
			for ci := 0; ci < cIn; ci++ {
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride + ky - pad
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride + kx - pad
						if iy >= 0 && iy < h && ix >= 0 && ix < wd {
							row[i] = in.At3(ci, iy, ix)
						}
						i++
					}
				}
			}
		}
	}
	// Weight matrix is k x F.
	wm := mat(k, f)
	for fi := 0; fi < f; fi++ {
		i := 0
		for ci := 0; ci < cIn; ci++ {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					wm[i][fi] = w.At4(fi, ci, ky, kx)
					i++
				}
			}
		}
	}

	res := g.MatMul(a, wm)
	out := tensor.New(f, oh, ow)
	for fi := 0; fi < f; fi++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				out.Set3(res[oy*ow+ox][fi], fi, oy, ox)
			}
		}
	}
	return out
}

// TilePassCycles returns the cycle cost the simulator incurs for one
// (k-tile, n-tile) pass over m streamed rows: the weight load plus the
// skewed stream and drain. Tests use it to pin the measured cycle count to
// the analytic model's assumptions.
func (g *Grid) TilePassCycles(m int) int64 {
	return int64(g.Rows) + int64(m+g.Rows+g.Cols-1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SADWindow2D computes the sliding-window sum of absolute differences
// between in [H,W] and block [KH,KW] on the array in SAD mode; it equals
// tensor.SADWindow(in, block, 1).
func (g *Grid) SADWindow2D(in, block *tensor.Tensor) *tensor.Tensor {
	if g.Mode != ModeSAD {
		panic("grid: SADWindow2D requires ModeSAD")
	}
	h, wd := in.Dim(0), in.Dim(1)
	kh, kw := block.Dim(0), block.Dim(1)
	oh := tensor.ConvOut(h, kh, 1, 0)
	ow := tensor.ConvOut(wd, kw, 1, 0)

	// im2col over the windows; the block is the single "filter" column.
	k := kh * kw
	a := mat(oh*ow, k)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := a[oy*ow+ox]
			i := 0
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					row[i] = in.At(oy+ky, ox+kx)
					i++
				}
			}
		}
	}
	wm := mat(k, 1)
	i := 0
	for ky := 0; ky < kh; ky++ {
		for kx := 0; kx < kw; kx++ {
			wm[i][0] = block.At(ky, kx)
			i++
		}
	}
	res := g.MatMul(a, wm)
	out := tensor.New(oh, ow)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			out.Set(res[oy*ow+ox][0], oy, ox)
		}
	}
	return out
}
