package grid

import (
	"testing"

	"asv/internal/tensor"
	"asv/internal/testkit"
)

// Randomized differential oracle (ISSUE 2): the weight-stationary grid vs
// the reference convolution across random shapes, strides, pads and array
// geometries, with testkit's reproducible seeding and first-mismatch
// reporting. Complements the fixed-shape and testing/quick cases in
// functional_test.go.
func TestDifferentialGridConv2DRandomShapes(t *testing.T) {
	r := testkit.NewRand(t)
	for i := 0; i < 30; i++ {
		c := testkit.RandDim(r, 1, 4)
		f := testkit.RandDim(r, 1, 5)
		kh := testkit.RandDim(r, 1, 4)
		kw := testkit.RandDim(r, 1, 4)
		stride := testkit.RandDim(r, 1, 2)
		pad := testkit.RandDim(r, 0, 2)
		h := testkit.RandDim(r, kh, kh+7)
		wd := testkit.RandDim(r, kw, kw+7)
		if tensor.ConvOut(h, kh, stride, pad) < 1 || tensor.ConvOut(wd, kw, stride, pad) < 1 {
			continue
		}
		in := testkit.RandTensor(r, c, h, wd)
		w := testkit.RandTensor(r, f, c, kh, kw)
		g := NewGrid(testkit.RandDim(r, 1, 8), testkit.RandDim(r, 1, 6))
		got := g.Conv2D(in, w, stride, pad)
		want := tensor.Conv2D(in, w, stride, pad)
		if m := testkit.DiffTensors(got, want, 1e-4); m != nil {
			t.Fatalf("case %d: in %v w %v stride %d pad %d grid %dx%d: %s",
				i, in.Shape(), w.Shape(), stride, pad, g.Rows, g.Cols, m)
		}
	}
}

// The grid must also agree with the row-stationary comparison architecture
// indirectly: both are pinned to tensor.Conv2D, so any drift in either
// functional model surfaces here or in eyeriss's differential test without
// the two packages needing to import each other.
func TestDifferentialGridSADRandomShapes(t *testing.T) {
	r := testkit.NewRand(t)
	for i := 0; i < 20; i++ {
		k := testkit.RandDim(r, 2, 4)
		h := testkit.RandDim(r, k, k+8)
		wd := testkit.RandDim(r, k, k+8)
		in := testkit.RandTensor(r, h, wd)
		block := testkit.RandTensor(r, k, k)
		g := NewGrid(testkit.RandDim(r, 1, 6), testkit.RandDim(r, 1, 4))
		g.Mode = ModeSAD
		got := g.SADWindow2D(in, block)
		want := tensor.SADWindow(in, block, 1)
		if m := testkit.DiffTensors(got, want, 1e-4); m != nil {
			t.Fatalf("case %d: in %v block %v grid %dx%d: %s",
				i, in.Shape(), block.Shape(), g.Rows, g.Cols, m)
		}
	}
}
