// Package hw holds the hardware configuration and the 16 nm energy/area
// constants shared by the accelerator models. The numbers are calibrated to
// the paper's prototype (Sec. 6.1): a 24×24 systolic array at 1 GHz with a
// 1.5 MB banked SRAM and four LPDDR3-1600 channels, 3.0 mm² total in TSMC
// 16 nm FinFET, 1.152 TOPS raw throughput.
package hw

import "fmt"

// Config describes an accelerator resource budget (the R* of Equ. 4).
type Config struct {
	PEsX, PEsY int     // systolic array dimensions
	FreqHz     float64 // PE clock
	BufBytes   int64   // on-chip unified buffer (total; double-buffered)
	BWBytesSec float64 // off-chip DRAM bandwidth
	ElemBytes  int64   // datum size (16-bit fixed point)
}

// Default returns the evaluation configuration of Sec. 6.1.
func Default() Config {
	return Config{
		PEsX:       24,
		PEsY:       24,
		FreqHz:     1e9,
		BufBytes:   1536 << 10, // 1.5 MB
		BWBytesSec: 25.6e9,     // 4 x LPDDR3-1600 x32 channels (6.4 GB/s each)
		ElemBytes:  2,
	}
}

// PEs returns the MAC array size A*.
func (c Config) PEs() int { return c.PEsX * c.PEsY }

// UsableBuf returns the bytes available to a round: half the buffer, since
// the other half is the filling side of the double buffer (Sec. 4.2).
func (c Config) UsableBuf() int64 { return c.BufBytes / 2 }

// BytesPerCycle returns the DRAM bandwidth per PE-clock cycle (B* in the
// latency formulation).
func (c Config) BytesPerCycle() float64 { return c.BWBytesSec / c.FreqHz }

// Validate panics on a nonsensical configuration.
func (c Config) Validate() {
	if c.PEsX < 1 || c.PEsY < 1 || c.FreqHz <= 0 || c.BufBytes < 4096 ||
		c.BWBytesSec <= 0 || c.ElemBytes < 1 {
		panic(fmt.Sprintf("hw: invalid config %+v", c))
	}
}

// Energy holds per-event energy costs in picojoules, 16 nm class.
type Energy struct {
	MACpJ      float64 // one 16-bit multiply-accumulate in a PE
	SADpJ      float64 // one accumulate-absolute-difference (ISM extension)
	SRAMpJByte float64 // one byte moved to/from the on-chip buffer
	DRAMpJByte float64 // one byte moved to/from LPDDR3
	ScalarOpPJ float64 // one scalar-unit pointwise operation
	LeakWatts  float64 // static power of the whole accelerator
}

// DefaultEnergy returns the 16 nm calibration used in the experiments.
// DRAM access energy dominates SRAM by ~40x and SRAM dominates a MAC by
// ~4x, matching published 16 nm characterizations.
func DefaultEnergy() Energy {
	return Energy{
		MACpJ:      0.5,
		SADpJ:      0.45,
		SRAMpJByte: 1.0,
		DRAMpJByte: 40.0,
		ScalarOpPJ: 0.8,
		LeakWatts:  0.15,
	}
}

// Area/power overhead accounting for the ISM hardware extensions
// (paper Sec. 7.1).
const (
	// Per-PE absolute-difference extension.
	PEBaseAreaUM2 = 242.9 // baseline PE area (µm²)
	PEExtAreaUM2  = 15.3  // +6.3% per PE
	PEBasePowerMW = 0.87  // baseline PE power (mW)
	PEExtPowerMW  = 0.02  // +2.3% per PE

	// Scalar-unit extension for "Compute Flow" / "Matrix Update".
	ScalarExtAreaMM2 = 0.002
	ScalarExtPowerMW = 2.2

	// Whole-accelerator envelope (Sec. 6.1).
	TotalAreaMM2 = 3.0
	TotalPowerW  = 3.0
)

// Overhead summarizes the ASV additions relative to the baseline
// accelerator.
type Overhead struct {
	PEAreaPct     float64 // per-PE area increase
	PEPowerPct    float64 // per-PE power increase
	TotalAreaPct  float64 // whole-chip area increase
	TotalPowerPct float64 // whole-chip power increase
}

// ComputeOverhead evaluates the Sec. 7.1 overhead table for an array of
// nPEs processing elements.
func ComputeOverhead(nPEs int) Overhead {
	peArea := PEExtAreaUM2 / PEBaseAreaUM2 * 100
	pePower := PEExtPowerMW / PEBasePowerMW * 100
	extAreaMM2 := float64(nPEs)*PEExtAreaUM2/1e6 + ScalarExtAreaMM2
	extPowerW := (float64(nPEs)*PEExtPowerMW + ScalarExtPowerMW) / 1e3
	return Overhead{
		PEAreaPct:     peArea,
		PEPowerPct:    pePower,
		TotalAreaPct:  extAreaMM2 / TotalAreaMM2 * 100,
		TotalPowerPct: extPowerW / TotalPowerW * 100,
	}
}
