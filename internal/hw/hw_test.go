package hw

import (
	"math"
	"testing"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := Default()
	c.Validate()
	if c.PEs() != 576 {
		t.Fatalf("PEs = %d, want 576 (24x24)", c.PEs())
	}
	if c.BufBytes != 1536<<10 {
		t.Fatalf("buffer = %d, want 1.5 MB", c.BufBytes)
	}
	// Raw throughput: 576 PEs x 1 GHz x 2 ops/MAC = 1.152 TOPS (Sec. 6.1).
	tops := float64(c.PEs()) * c.FreqHz * 2 / 1e12
	if math.Abs(tops-1.152) > 1e-9 {
		t.Fatalf("raw throughput = %v TOPS, want 1.152", tops)
	}
}

func TestUsableBufIsHalfForDoubleBuffering(t *testing.T) {
	c := Default()
	if c.UsableBuf() != c.BufBytes/2 {
		t.Fatal("usable buffer should be half of total (working/filling split)")
	}
}

func TestBytesPerCycle(t *testing.T) {
	c := Default()
	if got := c.BytesPerCycle(); math.Abs(got-25.6) > 1e-9 {
		t.Fatalf("bytes/cycle = %v, want 25.6", got)
	}
}

func TestValidatePanicsOnBadConfig(t *testing.T) {
	c := Default()
	c.PEsX = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Validate()
}

func TestDefaultEnergyOrdering(t *testing.T) {
	e := DefaultEnergy()
	if !(e.MACpJ < e.SRAMpJByte*2 && e.SRAMpJByte < e.DRAMpJByte) {
		t.Fatalf("energy hierarchy violated: %+v", e)
	}
	if e.SADpJ > e.MACpJ {
		t.Fatal("accumulate-abs-difference should not cost more than a MAC")
	}
}

func TestOverheadMatchesSec71(t *testing.T) {
	o := ComputeOverhead(576)
	if math.Abs(o.PEAreaPct-6.3) > 0.2 {
		t.Fatalf("per-PE area overhead = %.2f%%, want ~6.3%%", o.PEAreaPct)
	}
	if math.Abs(o.PEPowerPct-2.3) > 0.2 {
		t.Fatalf("per-PE power overhead = %.2f%%, want ~2.3%%", o.PEPowerPct)
	}
	if o.TotalAreaPct >= 0.5 || o.TotalPowerPct >= 0.5 {
		t.Fatalf("total overhead area=%.2f%% power=%.2f%%, want both < 0.5%%",
			o.TotalAreaPct, o.TotalPowerPct)
	}
	if o.TotalAreaPct <= 0 || o.TotalPowerPct <= 0 {
		t.Fatal("overheads must be positive")
	}
}
