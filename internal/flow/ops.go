package flow

// Arithmetic-cost model for the Farneback estimator, used by the ISM cost
// accounting (paper Sec. 3.3: a non-key qHD frame costs ~87 M operations,
// 10²–10⁴× less than stereo-DNN inference).
//
// Costs are expressed in multiply-accumulate operations (MACs), the unit the
// accelerator model charges for; pointwise comparisons and divisions are
// charged as one MAC each.

// FarnebackMACs returns the MAC count of one dense Farneback estimation on a
// w×h frame with the given options, summed over all pyramid levels.
func FarnebackMACs(w, h int, opt Options) int64 {
	conv, point := FarnebackOpsSplit(w, h, opt)
	return conv + point
}

// FarnebackOpsSplit separates the estimator's cost into convolution-like
// work (separable filters — mapped onto the systolic array) and pointwise
// work (the "Compute Flow" and "Matrix Update" kernels — mapped onto the
// scalar unit), mirroring the ASV hardware mapping of Fig. 8.
func FarnebackOpsSplit(w, h int, opt Options) (convMACs, pointOps int64) {
	if opt.Levels < 1 {
		opt.Levels = 1
	}
	if opt.Iters < 1 {
		opt.Iters = 1
	}
	gaussTaps := func(sigma float64) int64 {
		r := int64(3*sigma + 0.999)
		return 2*r + 1
	}
	polyTaps := int64(2*opt.PolyR + 1)
	winTaps := gaussTaps(opt.WinSigma)
	pyrTaps := gaussTaps(opt.PyrSigma)

	for l := 0; l < opt.Levels; l++ {
		pix := int64(w>>l) * int64(h>>l)
		if pix == 0 {
			break
		}
		if l > 0 {
			// Pyramid construction: separable blur at the parent level.
			parent := int64(w>>(l-1)) * int64(h>>(l-1))
			convMACs += parent * 2 * pyrTaps
		}
		// Polynomial expansion of both frames: six separable moment filters
		// (convolution) plus the sparse normal-equation solve (pointwise).
		convMACs += 2 * pix * 6 * 2 * polyTaps
		pointOps += 2 * pix * 20
		// Each iteration: pointwise matrix update (~30) and 2×2 solve
		// (~10), plus five Gaussian aggregations (convolution).
		convMACs += int64(opt.Iters) * pix * 5 * 2 * winTaps
		pointOps += int64(opt.Iters) * pix * 40
	}
	return convMACs, pointOps
}

// BlockMatchMACs returns the MAC count of a dense block-matching motion
// search with the given block size and ±searchR window on a w×h frame.
func BlockMatchMACs(w, h, block, searchR int) int64 {
	blocks := int64((w + block - 1) / block * ((h + block - 1) / block))
	cand := int64(2*searchR + 1)
	return blocks * cand * cand * int64(block*block)
}
