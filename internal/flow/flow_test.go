package flow

import (
	"math"
	"testing"
	"testing/quick"

	"asv/internal/imgproc"
)

// texture builds a smooth, richly textured image (sum of sinusoids) whose
// translations the estimators should recover.
func texture(w, h int, phase float64) *imgproc.Image {
	im := imgproc.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x), float64(y)
			v := 0.5 +
				0.20*math.Sin(0.35*fx+phase) +
				0.20*math.Sin(0.30*fy-phase) +
				0.10*math.Sin(0.18*(fx+fy)) +
				0.08*math.Sin(0.52*fx-0.23*fy)
			im.Set(x, y, float32(v))
		}
	}
	return im
}

// shifted returns the texture translated by (dx, dy): content at (x, y) in
// the output came from (x-dx, y-dy), i.e. the motion field is (dx, dy).
func shifted(src *imgproc.Image, dx, dy float32) *imgproc.Image {
	out := imgproc.NewImage(src.W, src.H)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			out.Set(x, y, src.Bilinear(float32(x)-dx, float32(y)-dy))
		}
	}
	return out
}

// interiorMeanFlow averages the estimated flow over the central region,
// ignoring a border where the shift is unobservable.
func interiorMeanFlow(f Field, border int) (float64, float64) {
	var su, sv float64
	var n int
	for y := border; y < f.U.H-border; y++ {
		for x := border; x < f.U.W-border; x++ {
			su += float64(f.U.At(x, y))
			sv += float64(f.V.At(x, y))
			n++
		}
	}
	return su / float64(n), sv / float64(n)
}

func TestFarnebackZeroMotion(t *testing.T) {
	im := texture(48, 48, 0)
	f := Farneback(im, im, DefaultOptions())
	mu, mv := interiorMeanFlow(f, 6)
	if math.Abs(mu) > 0.05 || math.Abs(mv) > 0.05 {
		t.Fatalf("zero-motion flow = (%v, %v), want ~0", mu, mv)
	}
}

func TestFarnebackRecoversSubpixelShift(t *testing.T) {
	prev := texture(64, 64, 0.3)
	next := shifted(prev, 1.5, -0.8)
	f := Farneback(prev, next, DefaultOptions())
	mu, mv := interiorMeanFlow(f, 10)
	if math.Abs(mu-1.5) > 0.25 {
		t.Errorf("mean U = %v, want ~1.5", mu)
	}
	if math.Abs(mv+0.8) > 0.25 {
		t.Errorf("mean V = %v, want ~-0.8", mv)
	}
}

func TestFarnebackLargerShiftNeedsPyramid(t *testing.T) {
	prev := texture(96, 96, 1.0)
	next := shifted(prev, 5, 3)
	opt := DefaultOptions()
	opt.Levels = 4
	f := Farneback(prev, next, opt)
	mu, mv := interiorMeanFlow(f, 16)
	if math.Abs(mu-5) > 0.8 || math.Abs(mv-3) > 0.8 {
		t.Fatalf("mean flow = (%v, %v), want ~(5, 3)", mu, mv)
	}
}

func TestFarnebackSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Farneback(imgproc.NewImage(8, 8), imgproc.NewImage(9, 8), DefaultOptions())
}

func TestBlockMatchIntegerShift(t *testing.T) {
	prev := texture(40, 40, 0.7)
	next := shifted(prev, 3, -2)
	f := BlockMatch(prev, next, 8, 4)
	mu, mv := interiorMeanFlow(f, 8)
	if math.Abs(mu-3) > 0.5 || math.Abs(mv+2) > 0.5 {
		t.Fatalf("block-match flow = (%v, %v), want (3, -2)", mu, mv)
	}
}

func TestBlockMatchIsBlockwiseConstant(t *testing.T) {
	prev := texture(32, 32, 0.2)
	next := shifted(prev, 1, 1)
	f := BlockMatch(prev, next, 8, 2)
	// All pixels within one block carry the same vector — the reason the
	// paper rejects BM for per-pixel motion (Sec. 3.3).
	for by := 0; by < 32; by += 8 {
		for bx := 0; bx < 32; bx += 8 {
			u0, v0 := f.U.At(bx, by), f.V.At(bx, by)
			for y := by; y < by+8; y++ {
				for x := bx; x < bx+8; x++ {
					if f.U.At(x, y) != u0 || f.V.At(x, y) != v0 {
						t.Fatalf("block (%d,%d) not constant", bx, by)
					}
				}
			}
		}
	}
}

func TestLucasKanadeAtTexturedPoints(t *testing.T) {
	prev := texture(48, 48, 0.5)
	next := shifted(prev, 1.2, 0.6)
	pts := [][2]int{{16, 16}, {24, 30}, {32, 20}}
	vecs, ok := LucasKanade(prev, next, pts, 4, 10)
	for i := range pts {
		if !ok[i] {
			t.Fatalf("point %d rejected on textured image", i)
		}
		if math.Abs(float64(vecs[i][0])-1.2) > 0.4 || math.Abs(float64(vecs[i][1])-0.6) > 0.4 {
			t.Errorf("point %d flow = %v, want ~(1.2, 0.6)", i, vecs[i])
		}
	}
}

func TestLucasKanadeRejectsFlatRegion(t *testing.T) {
	flat := imgproc.NewImage(32, 32) // all zeros: no texture anywhere
	_, ok := LucasKanade(flat, flat, [][2]int{{16, 16}}, 4, 5)
	if ok[0] {
		t.Fatal("LK accepted a textureless point; sparse coverage argument (Sec 3.3) relies on rejection")
	}
}

func TestEndpointErrorZeroForIdenticalFields(t *testing.T) {
	f := NewField(8, 8)
	if EndpointError(f, f) != 0 {
		t.Fatal("EPE of identical fields should be 0")
	}
}

func TestFarnebackMACsScaleWithResolution(t *testing.T) {
	opt := DefaultOptions()
	small := FarnebackMACs(100, 100, opt)
	big := FarnebackMACs(200, 200, opt)
	if big <= 3*small || big >= 5*small {
		t.Fatalf("4x pixels should cost ~4x MACs: %d vs %d", small, big)
	}
}

func TestFarnebackMACsPositiveAndMonotonic(t *testing.T) {
	opt := DefaultOptions()
	base := FarnebackMACs(240, 135, opt)
	if base <= 0 {
		t.Fatal("non-positive MAC count")
	}
	opt.Iters = 6
	more := FarnebackMACs(240, 135, opt)
	if more <= base {
		t.Fatal("more iterations should cost more")
	}
}

func TestBlockMatchMACsFormula(t *testing.T) {
	// 16x16 frame, block 8 -> 4 blocks; ±1 search -> 9 candidates; 64 MACs per
	// candidate.
	if got := BlockMatchMACs(16, 16, 8, 1); got != 4*9*64 {
		t.Fatalf("BlockMatchMACs = %d, want %d", got, 4*9*64)
	}
}

// Property: the flow field returned by Farneback is always finite.
func TestQuickFarnebackFinite(t *testing.T) {
	f := func(seed int64) bool {
		prev := texture(32, 32, float64(seed%7))
		next := shifted(prev, float32(seed%3), float32(seed%2))
		opt := DefaultOptions()
		opt.Levels = 2
		opt.Iters = 2
		fld := Farneback(prev, next, opt)
		for i := range fld.U.Pix {
			if math.IsNaN(float64(fld.U.Pix[i])) || math.IsInf(float64(fld.U.Pix[i]), 0) ||
				math.IsNaN(float64(fld.V.Pix[i])) || math.IsInf(float64(fld.V.Pix[i]), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestHornSchunckRecoversSmallShift(t *testing.T) {
	prev := texture(48, 48, 0.4)
	next := shifted(prev, 0.6, -0.4)
	f := HornSchunck(prev, next, DefaultHSOptions())
	mu, mv := interiorMeanFlow(f, 8)
	if math.Abs(mu-0.6) > 0.3 || math.Abs(mv+0.4) > 0.3 {
		t.Fatalf("HS flow = (%v, %v), want ~(0.6, -0.4)", mu, mv)
	}
}

func TestHornSchunckFailsOnLargeShift(t *testing.T) {
	// The no-pyramid limitation that rules HS out for ISM: a 5 px shift is
	// far outside the linearization range.
	prev := texture(64, 64, 0.9)
	next := shifted(prev, 5, 0)
	f := HornSchunck(prev, next, DefaultHSOptions())
	mu, _ := interiorMeanFlow(f, 10)
	if math.Abs(mu-5) < 1.5 {
		t.Fatalf("HS unexpectedly recovered a 5px shift (got %v); the ablation premise fails", mu)
	}
	// Farneback's pyramid handles the same pair.
	opt := DefaultOptions()
	opt.Levels = 4
	ff := Farneback(prev, next, opt)
	fu, _ := interiorMeanFlow(ff, 10)
	if math.Abs(fu-5) > 0.8 {
		t.Fatalf("Farneback should recover the 5px shift (got %v)", fu)
	}
}

func TestHornSchunckZeroMotion(t *testing.T) {
	im := texture(32, 32, 0.1)
	f := HornSchunck(im, im, DefaultHSOptions())
	mu, mv := interiorMeanFlow(f, 4)
	if math.Abs(mu) > 1e-6 || math.Abs(mv) > 1e-6 {
		t.Fatalf("zero-motion HS flow = (%v, %v)", mu, mv)
	}
}

func TestHornSchunckMACsGrowWithIters(t *testing.T) {
	a := HornSchunckMACs(100, 100, HSOptions{Alpha: 1, Iters: 10})
	b := HornSchunckMACs(100, 100, HSOptions{Alpha: 1, Iters: 100})
	if b <= a || a <= 0 {
		t.Fatal("HS MAC model not monotone in iterations")
	}
}

func TestHornSchunckSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HornSchunck(imgproc.NewImage(8, 8), imgproc.NewImage(9, 8), DefaultHSOptions())
}

func TestFarnebackOpsSplitSumsToTotal(t *testing.T) {
	opt := DefaultOptions()
	conv, point := FarnebackOpsSplit(240, 135, opt)
	if conv <= 0 || point <= 0 {
		t.Fatal("both cost components must be positive")
	}
	if conv+point != FarnebackMACs(240, 135, opt) {
		t.Fatal("split does not sum to the total")
	}
	// Convolution work dominates (separable filters vs pointwise updates).
	if conv < point {
		t.Fatalf("expected conv-dominated cost: conv=%d point=%d", conv, point)
	}
}
