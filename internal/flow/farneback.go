// Package flow implements dense motion estimation for ASV's non-key
// frames: the Farneback polynomial-expansion optical flow algorithm chosen
// by the paper (Sec. 3.3), plus block-matching and Lucas-Kanade estimators
// used to justify that choice.
//
// Farneback's algorithm approximates each pixel neighbourhood with a
// quadratic polynomial f(x) ≈ xᵀAx + bᵀx + c fitted under a Gaussian
// weighting, and recovers the displacement between two frames from the way
// the polynomial coefficients shift. As the paper observes, 99% of the
// compute is three kernels — Gaussian blur (a convolution), "Compute Flow"
// and "Matrix Update" (pointwise) — which is what lets ASV map it onto a DNN
// accelerator.
package flow

import (
	"fmt"
	"math"

	"asv/internal/imgproc"
	"asv/internal/par"
)

// Field is a dense motion field: U and V hold the horizontal and vertical
// displacement of every pixel.
type Field struct {
	U, V *imgproc.Image
}

// NewField returns a zero (no-motion) field of the given size. The buffers
// come from the image pool, so fields released with PutField recycle.
func NewField(w, h int) Field {
	return Field{U: imgproc.GetImage(w, h), V: imgproc.GetImage(w, h)}
}

// Clone returns a deep copy of the field.
func (f Field) Clone() Field {
	return Field{U: f.U.Clone(), V: f.V.Clone()}
}

// PutField returns a field's buffers to the image pool. The caller must not
// use f afterwards.
func PutField(f Field) {
	imgproc.PutImage(f.U)
	imgproc.PutImage(f.V)
}

// Options configures the Farneback estimator.
type Options struct {
	Levels    int     // pyramid levels (>=1)
	PyrSigma  float64 // Gaussian sigma used when building the pyramid
	PolySigma float64 // sigma of the polynomial-expansion applicability
	PolyR     int     // radius of the polynomial-expansion window
	WinSigma  float64 // sigma of the displacement-aggregation window
	Iters     int     // refinement iterations per level
}

// DefaultOptions returns the configuration used throughout the ASV
// experiments: 3 pyramid levels, a 5×5 polynomial window and 3 iterations.
func DefaultOptions() Options {
	return Options{
		Levels:    3,
		PyrSigma:  0.9,
		PolySigma: 1.1,
		PolyR:     2,
		WinSigma:  1.8,
		Iters:     3,
	}
}

// polyCoeffs holds the per-pixel quadratic coefficients
// f ≈ c + bx·x + by·y + axx·x² + ayy·y² + axy·xy.
type polyCoeffs struct {
	bx, by        *imgproc.Image
	axx, ayy, axy *imgproc.Image
}

// polyExpand fits the quadratic model at every pixel by weighted least
// squares with a Gaussian applicability of radius r and the given sigma.
// Because the weighting is identical at every pixel, the normal-equation
// matrix G is constant and is inverted once; the per-pixel moment images are
// separable correlations, exactly the structure ASV maps onto convolution
// hardware.
func polyExpand(im *imgproc.Image, r int, sigma float64) polyCoeffs {
	if r < 1 {
		panic(fmt.Sprintf("flow: polynomial radius %d < 1", r))
	}
	n := 2*r + 1
	// 1-D applicability and its moment kernels.
	a := make([]float64, n)
	for i := -r; i <= r; i++ {
		a[i+r] = math.Exp(-float64(i*i) / (2 * sigma * sigma))
	}
	k0 := make([]float32, n) // a(x)
	k1 := make([]float32, n) // x·a(x)
	k2 := make([]float32, n) // x²·a(x)
	for i := -r; i <= r; i++ {
		k0[i+r] = float32(a[i+r])
		k1[i+r] = float32(float64(i) * a[i+r])
		k2[i+r] = float32(float64(i*i) * a[i+r])
	}

	// Normal matrix G over basis (1, x, y, x², y², xy).
	var s0, s2, s4, s22 float64
	for i := -r; i <= r; i++ {
		for j := -r; j <= r; j++ {
			w := a[i+r] * a[j+r]
			s0 += w
			s2 += w * float64(j*j)
			s4 += w * float64(j*j*j*j)
			s22 += w * float64(i*i*j*j)
		}
	}
	g := [6][6]float64{
		{s0, 0, 0, s2, s2, 0},
		{0, s2, 0, 0, 0, 0},
		{0, 0, s2, 0, 0, 0},
		{s2, 0, 0, s4, s22, 0},
		{s2, 0, 0, s22, s4, 0},
		{0, 0, 0, 0, 0, s22},
	}
	ginv := invert6(g)

	// Moment images m_pq = Σ a(x)a(y) x^p y^q f  — six separable filters.
	m00 := imgproc.SeparableFilter(im, k0, k0)
	m10 := imgproc.SeparableFilter(im, k1, k0)
	m01 := imgproc.SeparableFilter(im, k0, k1)
	m20 := imgproc.SeparableFilter(im, k2, k0)
	m02 := imgproc.SeparableFilter(im, k0, k2)
	m11 := imgproc.SeparableFilter(im, k1, k1)

	p := polyCoeffs{
		bx:  imgproc.GetImage(im.W, im.H),
		by:  imgproc.GetImage(im.W, im.H),
		axx: imgproc.GetImage(im.W, im.H),
		ayy: imgproc.GetImage(im.W, im.H),
		axy: imgproc.GetImage(im.W, im.H),
	}
	par.ForChunked(len(m00.Pix), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m := [6]float64{
				float64(m00.Pix[i]), float64(m10.Pix[i]), float64(m01.Pix[i]),
				float64(m20.Pix[i]), float64(m02.Pix[i]), float64(m11.Pix[i]),
			}
			var rcoef [6]float64
			for row := 0; row < 6; row++ {
				var acc float64
				for col := 0; col < 6; col++ {
					acc += ginv[row][col] * m[col]
				}
				rcoef[row] = acc
			}
			p.bx.Pix[i] = float32(rcoef[1])
			p.by.Pix[i] = float32(rcoef[2])
			p.axx.Pix[i] = float32(rcoef[3])
			p.ayy.Pix[i] = float32(rcoef[4])
			p.axy.Pix[i] = float32(rcoef[5])
		}
	})
	imgproc.PutImage(m00)
	imgproc.PutImage(m10)
	imgproc.PutImage(m01)
	imgproc.PutImage(m20)
	imgproc.PutImage(m02)
	imgproc.PutImage(m11)
	return p
}

// put returns the coefficient buffers to the image pool.
func (p polyCoeffs) put() {
	imgproc.PutImage(p.bx)
	imgproc.PutImage(p.by)
	imgproc.PutImage(p.axx)
	imgproc.PutImage(p.ayy)
	imgproc.PutImage(p.axy)
}

// invert6 inverts a 6×6 matrix by Gauss-Jordan elimination with partial
// pivoting. It panics if the matrix is singular, which cannot happen for a
// positive applicability.
func invert6(m [6][6]float64) [6][6]float64 {
	var aug [6][12]float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			aug[i][j] = m[i][j]
		}
		aug[i][6+i] = 1
	}
	for col := 0; col < 6; col++ {
		piv := col
		for row := col + 1; row < 6; row++ {
			if math.Abs(aug[row][col]) > math.Abs(aug[piv][col]) {
				piv = row
			}
		}
		if math.Abs(aug[piv][col]) < 1e-12 {
			panic("flow: singular normal matrix in polynomial expansion")
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		inv := 1 / aug[col][col]
		for j := 0; j < 12; j++ {
			aug[col][j] *= inv
		}
		for row := 0; row < 6; row++ {
			if row == col {
				continue
			}
			f := aug[row][col]
			for j := 0; j < 12; j++ {
				aug[row][j] -= f * aug[col][j]
			}
		}
	}
	var out [6][6]float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			out[i][j] = aug[i][6+j]
		}
	}
	return out
}

// Farneback estimates the dense motion field that maps prev onto next using
// a coarse-to-fine pyramid. The returned field is defined on prev's pixel
// grid: next(x + U, y + V) ≈ prev(x, y).
func Farneback(prev, next *imgproc.Image, opt Options) Field {
	if prev.W != next.W || prev.H != next.H {
		panic(fmt.Sprintf("flow: frame sizes differ %dx%d vs %dx%d", prev.W, prev.H, next.W, next.H))
	}
	if opt.Levels < 1 {
		opt.Levels = 1
	}
	if opt.Iters < 1 {
		opt.Iters = 1
	}
	// Clamp the pyramid so the coarsest level is still big enough for the
	// polynomial window.
	minDim := prev.W
	if prev.H < minDim {
		minDim = prev.H
	}
	for opt.Levels > 1 && minDim>>(opt.Levels-1) < 4*opt.PolyR+2 {
		opt.Levels--
	}

	p1 := imgproc.Pyramid(prev, opt.Levels, opt.PyrSigma)
	p2 := imgproc.Pyramid(next, opt.Levels, opt.PyrSigma)

	var fld Field
	for l := opt.Levels - 1; l >= 0; l-- {
		im1, im2 := p1[l], p2[l]
		if fld.U == nil {
			fld = NewField(im1.W, im1.H)
		} else {
			u := imgproc.Upsample2(fld.U, im1.W, im1.H)
			v := imgproc.Upsample2(fld.V, im1.W, im1.H)
			for i := range u.Pix {
				u.Pix[i] *= 2
				v.Pix[i] *= 2
			}
			PutField(fld)
			fld = Field{U: u, V: v}
		}
		c1 := polyExpand(im1, opt.PolyR, opt.PolySigma)
		c2 := polyExpand(im2, opt.PolyR, opt.PolySigma)
		for it := 0; it < opt.Iters; it++ {
			next := flowIteration(c1, c2, fld, opt.WinSigma)
			PutField(fld)
			fld = next
		}
		c1.put()
		c2.put()
		if l > 0 {
			// Pyramid levels above the base are scratch built by this call.
			imgproc.PutImage(p1[l])
			imgproc.PutImage(p2[l])
		}
	}
	return fld
}

// flowIteration performs one Farneback update: form the per-pixel linear
// system from the two polynomial expansions and the current displacement
// ("Matrix Update"), aggregate it over a Gaussian window (a blur), and solve
// the 2×2 system per pixel ("Compute Flow").
func flowIteration(c1, c2 polyCoeffs, cur Field, winSigma float64) Field {
	w, h := cur.U.W, cur.U.H
	// Accumulator images for G = AᵀA (symmetric 2×2: g11,g12,g22) and
	// hvec = AᵀΔb (h1,h2).
	g11 := imgproc.GetImage(w, h)
	g12 := imgproc.GetImage(w, h)
	g22 := imgproc.GetImage(w, h)
	h1 := imgproc.GetImage(w, h)
	h2 := imgproc.GetImage(w, h)

	par.ForChunked(h, func(ylo, yhi int) {
		for y := ylo; y < yhi; y++ {
			for x := 0; x < w; x++ {
				du := float64(cur.U.At(x, y))
				dv := float64(cur.V.At(x, y))
				// Look up frame-2 coefficients at the displaced position
				// (rounded to the nearest pixel, clamped to the border).
				x2 := int(math.Round(float64(x) + du))
				y2 := int(math.Round(float64(y) + dv))

				a11 := (float64(c1.axx.At(x, y)) + float64(c2.axx.At(x2, y2))) / 2
				a22 := (float64(c1.ayy.At(x, y)) + float64(c2.ayy.At(x2, y2))) / 2
				a12 := (float64(c1.axy.At(x, y)) + float64(c2.axy.At(x2, y2))) / 4 // A off-diag = axy/2, averaged

				db1 := -0.5*(float64(c2.bx.At(x2, y2))-float64(c1.bx.At(x, y))) + a11*du + a12*dv
				db2 := -0.5*(float64(c2.by.At(x2, y2))-float64(c1.by.At(x, y))) + a12*du + a22*dv

				i := y*w + x
				g11.Pix[i] = float32(a11*a11 + a12*a12)
				g12.Pix[i] = float32(a12 * (a11 + a22))
				g22.Pix[i] = float32(a22*a22 + a12*a12)
				h1.Pix[i] = float32(a11*db1 + a12*db2)
				h2.Pix[i] = float32(a12*db1 + a22*db2)
			}
		}
	})

	// Aggregate the normal equations over the neighbourhood, releasing the
	// pre-blur accumulators as they are consumed.
	blur := func(im *imgproc.Image) *imgproc.Image {
		b := imgproc.GaussianBlur(im, winSigma)
		imgproc.PutImage(im)
		return b
	}
	g11 = blur(g11)
	g12 = blur(g12)
	g22 = blur(g22)
	h1 = blur(h1)
	h2 = blur(h2)

	out := NewField(w, h)
	par.ForChunked(len(g11.Pix), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := float64(g11.Pix[i])
			b := float64(g12.Pix[i])
			c := float64(g22.Pix[i])
			det := a*c - b*b
			if math.Abs(det) < 1e-9 {
				out.U.Pix[i] = cur.U.Pix[i]
				out.V.Pix[i] = cur.V.Pix[i]
				continue
			}
			hh1 := float64(h1.Pix[i])
			hh2 := float64(h2.Pix[i])
			out.U.Pix[i] = float32((c*hh1 - b*hh2) / det)
			out.V.Pix[i] = float32((a*hh2 - b*hh1) / det)
		}
	})
	imgproc.PutImage(g11)
	imgproc.PutImage(g12)
	imgproc.PutImage(g22)
	imgproc.PutImage(h1)
	imgproc.PutImage(h2)
	return out
}
