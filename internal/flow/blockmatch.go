package flow

import (
	"math"

	"asv/internal/imgproc"
	"asv/internal/par"
)

// BlockMatch estimates motion at the granularity of block×block pixel tiles
// by exhaustive SAD search within ±searchR pixels. The returned field
// assigns every pixel of a tile the same motion vector — exactly the
// limitation (no per-pixel motion) that leads the paper to reject block
// matching for ISM's motion-estimation step (Sec. 3.3).
func BlockMatch(prev, next *imgproc.Image, block, searchR int) Field {
	if block < 1 || searchR < 0 {
		panic("flow: invalid BlockMatch parameters")
	}
	out := NewField(prev.W, prev.H)
	// One task per block row: each block writes only its own tile, so the
	// result is bit-identical to the serial scan.
	blockRows := (prev.H + block - 1) / block
	par.ForChunked(blockRows, func(lo, hi int) {
		for br := lo; br < hi; br++ {
			blockMatchRow(prev, next, out, br*block, block, searchR)
		}
	})
	return out
}

// blockMatchRow runs the exhaustive SAD search for every block in the block
// row starting at image row by.
func blockMatchRow(prev, next *imgproc.Image, out Field, by, block, searchR int) {
	for bx := 0; bx < prev.W; bx += block {
		bestSAD := math.Inf(1)
		bestDx, bestDy := 0, 0
		for dy := -searchR; dy <= searchR; dy++ {
			for dx := -searchR; dx <= searchR; dx++ {
				var sad float64
				for y := 0; y < block; y++ {
					for x := 0; x < block; x++ {
						p := prev.At(bx+x, by+y)
						n := next.At(bx+x+dx, by+y+dy)
						sad += math.Abs(float64(p - n))
					}
				}
				if sad < bestSAD {
					bestSAD = sad
					bestDx, bestDy = dx, dy
				}
			}
		}
		for y := by; y < by+block && y < prev.H; y++ {
			for x := bx; x < bx+block && x < prev.W; x++ {
				out.U.Set(x, y, float32(bestDx))
				out.V.Set(x, y, float32(bestDy))
			}
		}
	}
}

// LucasKanade estimates sparse motion at the given points with the
// iterative Lucas-Kanade method over a (2r+1)² window. Points whose normal
// matrix is ill-conditioned (untextured neighbourhoods) report ok=false —
// the coverage limitation that rules the method out for dense stereo
// (Sec. 3.3).
func LucasKanade(prev, next *imgproc.Image, pts [][2]int, r, iters int) (vecs [][2]float32, ok []bool) {
	gx := imgproc.GradX(prev)
	gy := imgproc.GradY(prev)
	vecs = make([][2]float32, len(pts))
	ok = make([]bool, len(pts))
	for i, pt := range pts {
		px, py := pt[0], pt[1]
		// Structure tensor over the window.
		var sxx, sxy, syy float64
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				ix := float64(gx.At(px+dx, py+dy))
				iy := float64(gy.At(px+dx, py+dy))
				sxx += ix * ix
				sxy += ix * iy
				syy += iy * iy
			}
		}
		det := sxx*syy - sxy*sxy
		trace := sxx + syy
		// Reject untextured or edge-only windows (Shi-Tomasi style check).
		if det < 1e-7 || det/math.Max(trace, 1e-12) < 1e-4 {
			continue
		}
		var u, v float64
		for it := 0; it < iters; it++ {
			var b1, b2 float64
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					ix := float64(gx.At(px+dx, py+dy))
					iy := float64(gy.At(px+dx, py+dy))
					dt := float64(next.Bilinear(float32(px+dx)+float32(u), float32(py+dy)+float32(v)) - prev.At(px+dx, py+dy))
					b1 -= ix * dt
					b2 -= iy * dt
				}
			}
			du := (syy*b1 - sxy*b2) / det
			dv := (sxx*b2 - sxy*b1) / det
			u += du
			v += dv
			if math.Abs(du) < 1e-3 && math.Abs(dv) < 1e-3 {
				break
			}
		}
		vecs[i] = [2]float32{float32(u), float32(v)}
		ok[i] = true
	}
	return vecs, ok
}

// EndpointError returns the mean Euclidean distance between the estimated
// field and a ground-truth field, the standard dense-flow accuracy metric.
func EndpointError(est, gt Field) float64 {
	var s float64
	n := len(est.U.Pix)
	for i := 0; i < n; i++ {
		du := float64(est.U.Pix[i] - gt.U.Pix[i])
		dv := float64(est.V.Pix[i] - gt.V.Pix[i])
		s += math.Sqrt(du*du + dv*dv)
	}
	return s / float64(n)
}
