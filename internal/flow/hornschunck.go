package flow

import (
	"asv/internal/imgproc"
	"asv/internal/par"
)

// HornSchunck estimates dense optical flow with the classic variational
// method (Horn & Schunck 1981, the paper's reference [34]): brightness
// constancy plus a global smoothness prior, solved by Jacobi iteration.
//
// The method is dense but has no pyramid, so it only converges for small
// displacements — one of the limitations that leads the paper to
// Farneback for ISM's motion-estimation step. It is included as a real
// implementation for the Sec. 3.3 ablation.
type HSOptions struct {
	Alpha float64 // smoothness weight (larger = smoother field)
	Iters int     // Jacobi iterations
}

// DefaultHSOptions returns a configuration converged for sub-pixel motion
// on unit-range images (α is relative to gradient magnitudes, which are
// ~0.1 for [0,1] pixels).
func DefaultHSOptions() HSOptions { return HSOptions{Alpha: 0.1, Iters: 200} }

// HornSchunck computes the dense flow from prev to next. The Jacobi sweeps
// are row-parallel (each sweep reads only the previous iterate, so rows are
// independent) and ping-pong between two field buffers instead of
// allocating per iteration.
func HornSchunck(prev, next *imgproc.Image, opt HSOptions) Field {
	if prev.W != next.W || prev.H != next.H {
		panic("flow: frame sizes differ")
	}
	if opt.Iters < 1 {
		opt.Iters = 1
	}
	w, h := prev.W, prev.H

	// Spatiotemporal derivatives (averaged over the two frames, as in the
	// original formulation).
	ix := imgproc.GetImage(w, h)
	iy := imgproc.GetImage(w, h)
	it := imgproc.GetImage(w, h)
	gx1, gy1 := imgproc.GradX(prev), imgproc.GradY(prev)
	gx2, gy2 := imgproc.GradX(next), imgproc.GradY(next)
	for i := range ix.Pix {
		ix.Pix[i] = (gx1.Pix[i] + gx2.Pix[i]) / 2
		iy.Pix[i] = (gy1.Pix[i] + gy2.Pix[i]) / 2
		it.Pix[i] = next.Pix[i] - prev.Pix[i]
	}
	imgproc.PutImage(gx1)
	imgproc.PutImage(gy1)
	imgproc.PutImage(gx2)
	imgproc.PutImage(gy2)

	cur := NewField(w, h)
	nxt := NewField(w, h)
	alpha2 := float32(opt.Alpha * opt.Alpha)
	avg := func(im *imgproc.Image, x, y int) float32 {
		// Horn-Schunck's weighted neighbourhood average.
		return (im.At(x-1, y)+im.At(x+1, y)+im.At(x, y-1)+im.At(x, y+1))/6 +
			(im.At(x-1, y-1)+im.At(x+1, y-1)+im.At(x-1, y+1)+im.At(x+1, y+1))/12
	}
	for iter := 0; iter < opt.Iters; iter++ {
		par.ForChunked(h, func(ylo, yhi int) {
			for y := ylo; y < yhi; y++ {
				for x := 0; x < w; x++ {
					ub := avg(cur.U, x, y)
					vb := avg(cur.V, x, y)
					i := y*w + x
					gxv, gyv, gtv := ix.Pix[i], iy.Pix[i], it.Pix[i]
					num := gxv*ub + gyv*vb + gtv
					den := alpha2 + gxv*gxv + gyv*gyv
					nxt.U.Pix[i] = ub - gxv*num/den
					nxt.V.Pix[i] = vb - gyv*num/den
				}
			}
		})
		cur, nxt = nxt, cur
	}
	imgproc.PutImage(ix)
	imgproc.PutImage(iy)
	imgproc.PutImage(it)
	PutField(nxt)
	return cur
}

// HornSchunckMACs estimates the arithmetic cost: derivative construction
// plus ~20 MACs per pixel per Jacobi iteration.
func HornSchunckMACs(w, h int, opt HSOptions) int64 {
	pix := int64(w) * int64(h)
	return pix*12 + int64(opt.Iters)*pix*20
}
