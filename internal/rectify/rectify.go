// Package rectify provides stereo rectification: warping a camera pair
// onto a common image plane so epipolar lines become horizontal rows. The
// ASV paper (like all stereo-matching work) assumes rectified input —
// Equ. 2's y_r = y_l only holds after this step — so a deployable stereo
// library must supply it.
//
// The model is a rotational misalignment: each physical camera is the
// ideal rectified camera rotated by a small rotation R. The correcting
// warp is the homography H = K·Rᵀ·K⁻¹ applied by inverse mapping.
package rectify

import (
	"fmt"
	"math"

	"asv/internal/imgproc"
	"asv/internal/par"
)

// Mat3 is a row-major 3×3 matrix.
type Mat3 [9]float64

// Identity returns the identity matrix.
func Identity() Mat3 { return Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1} }

// Mul returns m·o.
func (m Mat3) Mul(o Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += m[i*3+k] * o[k*3+j]
			}
			r[i*3+j] = s
		}
	}
	return r
}

// Transpose returns mᵀ.
func (m Mat3) Transpose() Mat3 {
	return Mat3{m[0], m[3], m[6], m[1], m[4], m[7], m[2], m[5], m[8]}
}

// Det returns the determinant.
func (m Mat3) Det() float64 {
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// Inverse returns m⁻¹; it panics if m is singular.
func (m Mat3) Inverse() Mat3 {
	d := m.Det()
	if math.Abs(d) < 1e-12 {
		panic(fmt.Sprintf("rectify: singular matrix %v", m))
	}
	inv := 1 / d
	return Mat3{
		(m[4]*m[8] - m[5]*m[7]) * inv,
		(m[2]*m[7] - m[1]*m[8]) * inv,
		(m[1]*m[5] - m[2]*m[4]) * inv,
		(m[5]*m[6] - m[3]*m[8]) * inv,
		(m[0]*m[8] - m[2]*m[6]) * inv,
		(m[2]*m[3] - m[0]*m[5]) * inv,
		(m[3]*m[7] - m[4]*m[6]) * inv,
		(m[1]*m[6] - m[0]*m[7]) * inv,
		(m[0]*m[4] - m[1]*m[3]) * inv,
	}
}

// Apply maps a homogeneous pixel (x, y, 1) through the matrix and
// dehomogenizes.
func (m Mat3) Apply(x, y float64) (float64, float64) {
	u := m[0]*x + m[1]*y + m[2]
	v := m[3]*x + m[4]*y + m[5]
	w := m[6]*x + m[7]*y + m[8]
	return u / w, v / w
}

// Rotation builds a rotation matrix from small Euler angles (radians):
// R = Rz(yaw)·Ry(pitch)·Rx(roll) in the camera frame (x right, y down,
// z forward).
func Rotation(roll, pitch, yaw float64) Mat3 {
	cr, sr := math.Cos(roll), math.Sin(roll)
	cp, sp := math.Cos(pitch), math.Sin(pitch)
	cy, sy := math.Cos(yaw), math.Sin(yaw)
	rx := Mat3{1, 0, 0, 0, cr, -sr, 0, sr, cr}
	ry := Mat3{cp, 0, sp, 0, 1, 0, -sp, 0, cp}
	rz := Mat3{cy, -sy, 0, sy, cy, 0, 0, 0, 1}
	return rz.Mul(ry).Mul(rx)
}

// Intrinsics is a pinhole camera: focal lengths and principal point in
// pixels.
type Intrinsics struct {
	Fx, Fy, Cx, Cy float64
}

// K returns the calibration matrix.
func (in Intrinsics) K() Mat3 {
	return Mat3{in.Fx, 0, in.Cx, 0, in.Fy, in.Cy, 0, 0, 1}
}

// DefaultIntrinsics centers the principal point on a w×h image with a
// focal length of w pixels (a ~53° horizontal field of view).
func DefaultIntrinsics(w, h int) Intrinsics {
	return Intrinsics{Fx: float64(w), Fy: float64(w), Cx: float64(w) / 2, Cy: float64(h) / 2}
}

// Homography returns the pixel homography H = K·R·K⁻¹ induced by rotating
// a pinhole camera by R about its center. By convention here, the
// *captured* (rotated) view samples the rectified view through H: a
// captured pixel p shows rectified content at H·p.
func Homography(in Intrinsics, r Mat3) Mat3 {
	return in.K().Mul(r).Mul(in.K().Inverse())
}

// WarpHomography resamples src so that out(x, y) = src(H·(x, y, 1)), with
// bilinear interpolation and border clamping.
func WarpHomography(src *imgproc.Image, h Mat3) *imgproc.Image {
	out := imgproc.NewImage(src.W, src.H)
	par.For(src.H, func(y int) {
		for x := 0; x < src.W; x++ {
			sx, sy := h.Apply(float64(x), float64(y))
			out.Set(x, y, src.Bilinear(float32(sx), float32(sy)))
		}
	})
	return out
}

// Misalign simulates a de-rectified camera: the image the physical camera
// (rotated by r relative to the rectified frame) would capture of the same
// scene.
func Misalign(rectified *imgproc.Image, in Intrinsics, r Mat3) *imgproc.Image {
	return WarpHomography(rectified, Homography(in, r))
}

// Rectify corrects a physical camera image whose orientation differs from
// the rectified frame by rotation r; it is the exact inverse of Misalign
// (up to resampling at the borders).
func Rectify(captured *imgproc.Image, in Intrinsics, r Mat3) *imgproc.Image {
	return WarpHomography(captured, Homography(in, r).Inverse())
}

// RectifyPair corrects both views of a stereo pair given each camera's
// rotation relative to the rectified frame.
func RectifyPair(left, right *imgproc.Image, in Intrinsics, rl, rr Mat3) (*imgproc.Image, *imgproc.Image) {
	return Rectify(left, in, rl), Rectify(right, in, rr)
}

// VerticalDisparityRMS measures rectification quality: the RMS vertical
// component of the motion field between the two views, estimated by the
// caller (rectified pairs have ~zero vertical disparity on corresponding
// points).
func VerticalDisparityRMS(v *imgproc.Image) float64 {
	var s float64
	for _, x := range v.Pix {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s / float64(len(v.Pix)))
}
