package rectify

import (
	"math"
	"testing"
	"testing/quick"

	"asv/internal/dataset"
	"asv/internal/imgproc"
	"asv/internal/stereo"
)

func TestMat3Identity(t *testing.T) {
	m := Mat3{2, 3, 5, 7, 11, 13, 17, 19, 23}
	if m.Mul(Identity()) != m || Identity().Mul(m) != m {
		t.Fatal("identity multiplication broken")
	}
}

func TestMat3InverseRoundTrip(t *testing.T) {
	m := Mat3{2, 0, 1, 0, 3, 0, 1, 0, 2}
	p := m.Mul(m.Inverse())
	for i, want := range Identity() {
		if math.Abs(p[i]-want) > 1e-12 {
			t.Fatalf("M·M⁻¹ = %v", p)
		}
	}
}

func TestMat3SingularPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mat3{1, 2, 3, 2, 4, 6, 0, 0, 1}.Inverse()
}

func TestRotationIsOrthonormal(t *testing.T) {
	r := Rotation(0.02, -0.03, 0.05)
	p := r.Mul(r.Transpose())
	for i, want := range Identity() {
		if math.Abs(p[i]-want) > 1e-12 {
			t.Fatalf("R·Rᵀ != I: %v", p)
		}
	}
	if math.Abs(r.Det()-1) > 1e-12 {
		t.Fatalf("det(R) = %v, want 1", r.Det())
	}
}

func TestHomographyIdentityRotation(t *testing.T) {
	in := DefaultIntrinsics(128, 96)
	h := Homography(in, Identity())
	for i, want := range Identity() {
		if math.Abs(h[i]-want) > 1e-12 {
			t.Fatalf("H(I) != I: %v", h)
		}
	}
}

func TestWarpIdentityIsNoOp(t *testing.T) {
	seq := dataset.Generate(dataset.SceneConfig{
		W: 64, H: 48, FrameCount: 1, Layers: 1, MinDisp: 2, MaxDisp: 10, Seed: 3})
	im := seq.Frames[0].Left
	out := WarpHomography(im, Identity())
	if imgproc.MaxAbsDiff(im, out) > 1e-6 {
		t.Fatal("identity warp changed the image")
	}
}

func TestMisalignThenRectifyRecovers(t *testing.T) {
	// A smooth image isolates the geometric inverse from bilinear
	// resampling loss (high-frequency textures lose amplitude to double
	// interpolation regardless of the warp's correctness).
	im := imgproc.NewImage(128, 96)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			im.Set(x, y, float32(0.5+0.3*math.Sin(0.08*float64(x))*math.Cos(0.07*float64(y))))
		}
	}
	in := DefaultIntrinsics(im.W, im.H)
	r := Rotation(0.01, 0.015, -0.02)
	recovered := Rectify(Misalign(im, in, r), in, r)
	// Compare away from the border, where the double resampling is defined.
	var maxd float64
	for y := 12; y < im.H-12; y++ {
		for x := 12; x < im.W-12; x++ {
			d := math.Abs(float64(recovered.At(x, y) - im.At(x, y)))
			if d > maxd {
				maxd = d
			}
		}
	}
	if maxd > 0.03 {
		t.Fatalf("rectification did not invert misalignment: max interior diff %v", maxd)
	}
}

// The motivating end-to-end property: stereo matching collapses on a
// vertically misaligned pair and recovers after rectification.
func TestRectificationRestoresMatching(t *testing.T) {
	seq := dataset.Generate(dataset.SceneConfig{
		W: 128, H: 96, FrameCount: 1, Layers: 2,
		MinDisp: 2, MaxDisp: 14, Seed: 8})
	fr := seq.Frames[0]
	in := DefaultIntrinsics(fr.Left.W, fr.Left.H)
	// A 1.5° roll on the right camera: rows no longer correspond.
	r := Rotation(0.026, 0, 0)
	captured := Misalign(fr.Right, in, r)

	opt := stereo.DefaultSGMOptions()
	opt.MaxDisp = 20

	misErr := stereo.ThreePixelError(stereo.SGM(fr.Left, captured, opt), fr.GT)
	fixed := Rectify(captured, in, r)
	fixErr := stereo.ThreePixelError(stereo.SGM(fr.Left, fixed, opt), fr.GT)

	if fixErr >= misErr {
		t.Fatalf("rectification did not help: %.2f%% -> %.2f%%", misErr, fixErr)
	}
	if fixErr > misErr/2 {
		t.Fatalf("rectification recovered too little: %.2f%% -> %.2f%%", misErr, fixErr)
	}
}

func TestRectifyPairBothSides(t *testing.T) {
	seq := dataset.Generate(dataset.SceneConfig{
		W: 96, H: 64, FrameCount: 1, Layers: 1, MinDisp: 2, MaxDisp: 10, Seed: 9})
	fr := seq.Frames[0]
	in := DefaultIntrinsics(fr.Left.W, fr.Left.H)
	rl := Rotation(0.01, 0, 0)
	rr := Rotation(-0.01, 0.01, 0)
	capL := Misalign(fr.Left, in, rl)
	capR := Misalign(fr.Right, in, rr)
	recL, recR := RectifyPair(capL, capR, in, rl, rr)
	if recL.W != fr.Left.W || recR.W != fr.Right.W {
		t.Fatal("rectified pair has wrong size")
	}
}

func TestVerticalDisparityRMS(t *testing.T) {
	v := imgproc.FromPix([]float32{3, -4}, 2, 1)
	want := math.Sqrt((9 + 16) / 2.0)
	if got := VerticalDisparityRMS(v); math.Abs(got-want) > 1e-9 {
		t.Fatalf("RMS = %v, want %v", got, want)
	}
}

// Property: homographies compose — H(r2)·H(r1) == H(r2·r1).
func TestQuickHomographyComposition(t *testing.T) {
	in := DefaultIntrinsics(100, 80)
	f := func(a, b, c, d int8) bool {
		r1 := Rotation(float64(a)/2000, float64(b)/2000, 0)
		r2 := Rotation(0, float64(c)/2000, float64(d)/2000)
		lhs := Homography(in, r2).Mul(Homography(in, r1))
		rhs := Homography(in, r2.Mul(r1))
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
