package tensor

import (
	"fmt"
	"math"
)

// 16-bit fixed-point arithmetic, matching the ASV PE datapath (Sec. 5.2):
// each PE takes two 16-bit fixed-point operands and accumulates into a
// 32-bit register. The functions here quantize tensors, run convolution
// and SAD in integer arithmetic, and dequantize — used to show that the
// stereo pipeline survives the hardware's numeric format.

// Fixed is a dense int16 tensor with a power-of-two scale: the represented
// value of element q is q / 2^FracBits.
type Fixed struct {
	shape    []int
	stride   []int
	data     []int16
	FracBits uint
}

// MaxFracBits bounds the scale so the int32 accumulator of a PE cannot
// overflow on realistic layer sizes.
const MaxFracBits = 14

// Quantize converts t to fixed point with the given fractional bits,
// saturating values outside the representable range.
func Quantize(t *Tensor, fracBits uint) *Fixed {
	if fracBits > MaxFracBits {
		panic(fmt.Sprintf("tensor: fracBits %d > %d", fracBits, MaxFracBits))
	}
	f := &Fixed{
		shape:    append([]int(nil), t.shape...),
		stride:   strides(t.shape),
		data:     make([]int16, len(t.data)),
		FracBits: fracBits,
	}
	scale := float64(int64(1) << fracBits)
	for i, v := range t.data {
		q := math.Round(float64(v) * scale)
		if q > math.MaxInt16 {
			q = math.MaxInt16
		} else if q < math.MinInt16 {
			q = math.MinInt16
		}
		f.data[i] = int16(q)
	}
	return f
}

// Dequantize converts back to float32.
func (f *Fixed) Dequantize() *Tensor {
	t := New(f.shape...)
	inv := 1 / float32(int64(1)<<f.FracBits)
	for i, q := range f.data {
		t.data[i] = float32(q) * inv
	}
	return t
}

// Shape returns the dimensions.
func (f *Fixed) Shape() []int { return f.shape }

// Len returns the element count.
func (f *Fixed) Len() int { return len(f.data) }

// Data returns the raw int16 storage.
func (f *Fixed) Data() []int16 { return f.data }

// At3 returns element (c, y, x) of a rank-3 fixed tensor.
func (f *Fixed) At3(c, y, x int) int16 {
	return f.data[c*f.stride[0]+y*f.stride[1]+x]
}

// At4 returns element (a, b, y, x) of a rank-4 fixed tensor.
func (f *Fixed) At4(a, b, y, x int) int16 {
	return f.data[a*f.stride[0]+b*f.stride[1]+y*f.stride[2]+x]
}

// QuantStep returns the representable resolution (1/2^FracBits).
func (f *Fixed) QuantStep() float64 { return 1 / float64(int64(1)<<f.FracBits) }

// FixedConv2D cross-correlates a fixed-point ifmap [C,H,W] with fixed-point
// weights [F,C,KH,KW] exactly as the PE array does: 16-bit operands, 32-bit
// accumulation (64-bit here to detect, not hide, overflow — see the test
// suite), then dequantizes by the combined scale.
func FixedConv2D(in, w *Fixed, stride, pad int) *Tensor {
	if len(in.shape) != 3 || len(w.shape) != 4 {
		panic("tensor: FixedConv2D wants ranks 3,4")
	}
	c, h, wd := in.shape[0], in.shape[1], in.shape[2]
	fN, wc, kh, kw := w.shape[0], w.shape[1], w.shape[2], w.shape[3]
	if c != wc {
		panic("tensor: FixedConv2D channel mismatch")
	}
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(wd, kw, stride, pad)
	out := New(fN, oh, ow)
	invScale := 1 / float64(int64(1)<<(in.FracBits+w.FracBits))
	for fi := 0; fi < fN; fi++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc int64
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= wd {
								continue
							}
							acc += int64(in.At3(ci, iy, ix)) * int64(w.At4(fi, ci, ky, kx))
						}
					}
				}
				out.Set3(float32(float64(acc)*invScale), fi, oy, ox)
			}
		}
	}
	return out
}

// FixedSAD computes the sum of absolute differences between two rank-2
// fixed tensors over the aligned window, the a ← a + |b−c| operation the
// ASV PE extension adds (Sec. 5.2). Both operands must share a scale.
func FixedSAD(in, w *Fixed, stride int) *Tensor {
	if len(in.shape) != 2 || len(w.shape) != 2 {
		panic("tensor: FixedSAD wants ranks 2,2")
	}
	if in.FracBits != w.FracBits {
		panic("tensor: FixedSAD operands must share a scale")
	}
	h, wd := in.shape[0], in.shape[1]
	kh, kw := w.shape[0], w.shape[1]
	oh, ow := ConvOut(h, kh, stride, 0), ConvOut(wd, kw, stride, 0)
	out := New(oh, ow)
	invScale := 1 / float64(int64(1)<<in.FracBits)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			var acc int64
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					d := int64(in.data[(oy*stride+ky)*in.stride[0]+ox*stride+kx]) -
						int64(w.data[ky*w.stride[0]+kx])
					if d < 0 {
						d = -d
					}
					acc += d
				}
			}
			out.Set(float32(float64(acc)*invScale), oy, ox)
		}
	}
	return out
}
