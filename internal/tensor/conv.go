package tensor

import "fmt"

// Convolution and deconvolution reference implementations.
//
// Layout conventions:
//
//	2-D ifmap  [C, H, W]          2-D weights [F, C, KH, KW]
//	3-D ifmap  [C, D, H, W]       3-D weights [F, C, KD, KH, KW]
//
// All operators compute cross-correlation (the deep-learning convention).
//
// Deconvolution follows the paper's formulation (Fig. 6): the ifmap is
// upsampled by inserting stride-1 zeros between neighbouring elements, the
// upsampled map is zero-padded by pad on every border, and the result is
// convolved ("valid") with the kernel. For the standard transposed-conv
// parameterisation with kernel k and transposed padding p, the equivalent
// border padding is k-1-p (see TransposedPad).

// ConvOut returns the output spatial extent of a convolution with the given
// input extent, kernel extent, stride and padding.
func ConvOut(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// DeconvOut returns the output spatial extent of a deconvolution (paper
// semantics: zero-insertion upsampling by stride, border padding pad, valid
// convolution with a kernel of extent k).
func DeconvOut(in, k, stride, pad int) int {
	return (in-1)*stride + 1 + 2*pad - k + 1
}

// TransposedPad converts the conventional transposed-convolution padding p
// (as used by deep-learning frameworks) for a kernel of extent k into the
// border padding applied after upsampling.
func TransposedPad(k, p int) int { return k - 1 - p }

// Conv2D cross-correlates in [C,H,W] with w [F,C,KH,KW] and returns
// [F,OH,OW]. Zero padding pad is applied on all four borders.
func Conv2D(in, w *Tensor, stride, pad int) *Tensor {
	if in.Rank() != 3 || w.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2D wants ranks 3,4; got %d,%d", in.Rank(), w.Rank()))
	}
	c, h, wd := in.Dim(0), in.Dim(1), in.Dim(2)
	f, wc, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	if c != wc {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch ifmap=%d weights=%d", c, wc))
	}
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(wd, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2D non-positive output %dx%d", oh, ow))
	}
	out := New(f, oh, ow)
	for fi := 0; fi < f; fi++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc float64
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= wd {
								continue
							}
							acc += float64(in.At3(ci, iy, ix)) * float64(w.At4(fi, ci, ky, kx))
						}
					}
				}
				out.Set3(float32(acc), fi, oy, ox)
			}
		}
	}
	return out
}

// Conv3D cross-correlates in [C,D,H,W] with w [F,C,KD,KH,KW] and returns
// [F,OD,OH,OW] with the same stride and padding in all three spatial dims.
func Conv3D(in, w *Tensor, stride, pad int) *Tensor {
	if in.Rank() != 4 || w.Rank() != 5 {
		panic(fmt.Sprintf("tensor: Conv3D wants ranks 4,5; got %d,%d", in.Rank(), w.Rank()))
	}
	c, d, h, wd := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	f, wc, kd, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3), w.Dim(4)
	if c != wc {
		panic(fmt.Sprintf("tensor: Conv3D channel mismatch ifmap=%d weights=%d", c, wc))
	}
	od, oh, ow := ConvOut(d, kd, stride, pad), ConvOut(h, kh, stride, pad), ConvOut(wd, kw, stride, pad)
	if od <= 0 || oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv3D non-positive output %dx%dx%d", od, oh, ow))
	}
	out := New(f, od, oh, ow)
	for fi := 0; fi < f; fi++ {
		for oz := 0; oz < od; oz++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float64
					for ci := 0; ci < c; ci++ {
						for kz := 0; kz < kd; kz++ {
							iz := oz*stride + kz - pad
							if iz < 0 || iz >= d {
								continue
							}
							for ky := 0; ky < kh; ky++ {
								iy := oy*stride + ky - pad
								if iy < 0 || iy >= h {
									continue
								}
								for kx := 0; kx < kw; kx++ {
									ix := ox*stride + kx - pad
									if ix < 0 || ix >= wd {
										continue
									}
									acc += float64(in.At(ci, iz, iy, ix)) * float64(w.At(fi, ci, kz, ky, kx))
								}
							}
						}
					}
					out.Set(float32(acc), fi, oz, oy, ox)
				}
			}
		}
	}
	return out
}

// Upsample2D inserts stride-1 zeros between neighbouring elements of each
// channel of in [C,H,W] and zero-pads the result by pad on all borders.
func Upsample2D(in *Tensor, stride, pad int) *Tensor {
	if in.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Upsample2D wants rank 3; got %d", in.Rank()))
	}
	c, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	uh := (h-1)*stride + 1 + 2*pad
	uw := (w-1)*stride + 1 + 2*pad
	out := New(c, uh, uw)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				out.Set3(in.At3(ci, y, x), ci, y*stride+pad, x*stride+pad)
			}
		}
	}
	return out
}

// Upsample3D is the 3-D analogue of Upsample2D for in [C,D,H,W].
func Upsample3D(in *Tensor, stride, pad int) *Tensor {
	if in.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Upsample3D wants rank 4; got %d", in.Rank()))
	}
	c, d, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	ud := (d-1)*stride + 1 + 2*pad
	uh := (h-1)*stride + 1 + 2*pad
	uw := (w-1)*stride + 1 + 2*pad
	out := New(c, ud, uh, uw)
	for ci := 0; ci < c; ci++ {
		for z := 0; z < d; z++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					out.Set(in.At(ci, z, y, x), ci, z*stride+pad, y*stride+pad, x*stride+pad)
				}
			}
		}
	}
	return out
}

// Deconv2D is the reference deconvolution: upsample in [C,H,W] by stride
// with border padding pad, then valid-convolve with w [F,C,KH,KW].
// This is the "standard deconvolution" path of Fig. 6, including all the
// multiplications against inserted zeros.
func Deconv2D(in, w *Tensor, stride, pad int) *Tensor {
	up := Upsample2D(in, stride, pad)
	return Conv2D(up, w, 1, 0)
}

// Deconv3D is the 3-D reference deconvolution for in [C,D,H,W] and
// w [F,C,KD,KH,KW].
func Deconv3D(in, w *Tensor, stride, pad int) *Tensor {
	up := Upsample3D(in, stride, pad)
	return Conv3D(up, w, 1, 0)
}
