package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvOutFormulas(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{5, 3, 1, 0, 3},
		{5, 3, 1, 1, 5},
		{7, 3, 2, 1, 4},
		{224, 7, 2, 3, 112},
	}
	for _, c := range cases {
		if got := ConvOut(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOut(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestDeconvOutPaperExample(t *testing.T) {
	// Fig. 6: 3x3 ifmap, 3x3 kernel, stride-2 upsampling, pad 1 -> 5x5 ofmap
	// (the upsampled+padded ifmap is 7x7).
	if got := DeconvOut(3, 3, 2, 1); got != 5 {
		t.Fatalf("DeconvOut = %d, want 5", got)
	}
}

func TestTransposedPadEquivalence(t *testing.T) {
	// PyTorch-style ConvTranspose2d(k=4, s=2, p=1): out = 2*in.
	k, p := 4, 1
	in := 5
	out := DeconvOut(in, k, 2, TransposedPad(k, p))
	if out != 2*in {
		t.Fatalf("transposed k=4 s=2 p=1: out = %d, want %d", out, 2*in)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	in := Rand(1, 1, 4, 4)
	w := New(1, 1, 1, 1)
	w.Set(1, 0, 0, 0, 0)
	out := Conv2D(in, w, 1, 0)
	if MaxAbsDiff(in, FromSlice(out.Data(), 1, 4, 4)) != 0 {
		t.Fatal("1x1 identity convolution changed the input")
	}
}

func TestConv2DHandComputed(t *testing.T) {
	// 1x3x3 input, 1x1x2x2 kernel, stride 1, no padding.
	in := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	w := FromSlice([]float32{1, 0, 0, 2}, 1, 1, 2, 2)
	out := Conv2D(in, w, 1, 0)
	want := [][]float32{{1 + 2*5, 2 + 2*6}, {4 + 2*8, 5 + 2*9}}
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			if out.At3(0, y, x) != want[y][x] {
				t.Fatalf("out(%d,%d) = %v, want %v", y, x, out.At3(0, y, x), want[y][x])
			}
		}
	}
}

func TestConv2DPaddingZeroBorder(t *testing.T) {
	// With pad=1 and a 3x3 sum kernel, the corner output sees only 4 input
	// elements.
	in := New(1, 3, 3).Fill(1)
	w := New(1, 1, 3, 3).Fill(1)
	out := Conv2D(in, w, 1, 1)
	if out.Dim(1) != 3 || out.Dim(2) != 3 {
		t.Fatalf("shape %v, want [1 3 3]", out.Shape())
	}
	if out.At3(0, 0, 0) != 4 {
		t.Fatalf("corner = %v, want 4", out.At3(0, 0, 0))
	}
	if out.At3(0, 1, 1) != 9 {
		t.Fatalf("center = %v, want 9", out.At3(0, 1, 1))
	}
}

func TestConv2DMultiChannelAccumulates(t *testing.T) {
	in := New(2, 2, 2).Fill(1)
	w := New(1, 2, 2, 2).Fill(1)
	out := Conv2D(in, w, 1, 0)
	if out.At3(0, 0, 0) != 8 {
		t.Fatalf("got %v, want 8 (2 channels x 4 taps)", out.At3(0, 0, 0))
	}
}

func TestConv2DStride(t *testing.T) {
	in := Rand(7, 1, 6, 6)
	w := Rand(8, 1, 1, 2, 2)
	out := Conv2D(in, w, 2, 0)
	if out.Dim(1) != 3 || out.Dim(2) != 3 {
		t.Fatalf("shape %v, want [.. 3 3]", out.Shape())
	}
	// Spot-check (1,1): window starts at (2,2).
	var want float64
	for ky := 0; ky < 2; ky++ {
		for kx := 0; kx < 2; kx++ {
			want += float64(in.At3(0, 2+ky, 2+kx)) * float64(w.At4(0, 0, ky, kx))
		}
	}
	if d := abs64(want - float64(out.At3(0, 1, 1))); d > 1e-5 {
		t.Fatalf("stride-2 output mismatch: %v", d)
	}
}

func TestConv3DReducesToConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in2 := randTensor(rng, 3, 5, 5)
	w2 := randTensor(rng, 2, 3, 3, 3)
	in3 := FromSlice(in2.Data(), 3, 1, 5, 5)
	w3 := FromSlice(w2.Data(), 2, 3, 1, 3, 3)
	o2 := Conv2D(in2, w2, 1, 0)
	o3 := Conv3D(in3, w3, 1, 0)
	flat := FromSlice(o3.Data(), o2.Shape()...)
	if d := MaxAbsDiff(o2, flat); d > 1e-5 {
		t.Fatalf("Conv3D(D=1) != Conv2D, diff %v", d)
	}
}

func TestUpsample2DPlacesValues(t *testing.T) {
	in := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	up := Upsample2D(in, 2, 1)
	if up.Dim(1) != 5 || up.Dim(2) != 5 {
		t.Fatalf("shape %v, want [1 5 5]", up.Shape())
	}
	if up.At3(0, 1, 1) != 1 || up.At3(0, 1, 3) != 2 || up.At3(0, 3, 1) != 3 || up.At3(0, 3, 3) != 4 {
		t.Fatal("upsampled values misplaced")
	}
	var nonzero int
	for _, v := range up.Data() {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 4 {
		t.Fatalf("nonzero count %d, want 4", nonzero)
	}
}

func TestDeconv2DFig6CornerValues(t *testing.T) {
	// Reproduces the worked example of Fig. 6 with A..I = 1..9 and kernel
	// a..i = 10..90 (so every product is distinct).
	A, B, D, E, I := float32(1), float32(2), float32(4), float32(5), float32(9)
	ifmap := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	a, b, c, d, e, f, g, h, i := float32(10), float32(20), float32(30), float32(40),
		float32(50), float32(60), float32(70), float32(80), float32(90)
	kernel := FromSlice([]float32{a, b, c, d, e, f, g, h, i}, 1, 1, 3, 3)

	out := Deconv2D(ifmap, kernel, 2, 1)
	if out.Dim(1) != 5 || out.Dim(2) != 5 {
		t.Fatalf("ofmap shape %v, want [1 5 5]", out.Shape())
	}
	checks := []struct {
		y, x int
		want float32
	}{
		{0, 0, A * e},
		{0, 1, A*d + B*f},
		{1, 0, A*b + D*h},
		{1, 1, A*a + B*c + D*g + E*i},
		{4, 4, I * e},
	}
	for _, cse := range checks {
		if got := out.At3(0, cse.y, cse.x); got != cse.want {
			t.Errorf("ofmap(%d,%d) = %v, want %v", cse.y, cse.x, got, cse.want)
		}
	}
}

// deconvScatter is an independent implementation of the same deconvolution
// semantics via output scattering, used as a cross-check.
func deconvScatter(in, w *Tensor, stride, pad int) *Tensor {
	cIn, h, wd := in.Dim(0), in.Dim(1), in.Dim(2)
	f, kh, kw := w.Dim(0), w.Dim(2), w.Dim(3)
	oh := DeconvOut(h, kh, stride, pad)
	ow := DeconvOut(wd, kw, stride, pad)
	out := New(f, oh, ow)
	for fi := 0; fi < f; fi++ {
		for ci := 0; ci < cIn; ci++ {
			for y := 0; y < h; y++ {
				for x := 0; x < wd; x++ {
					v := float64(in.At3(ci, y, x))
					for ky := 0; ky < kh; ky++ {
						oy := y*stride + pad - ky
						if oy < 0 || oy >= oh {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ox := x*stride + pad - kx
							if ox < 0 || ox >= ow {
								continue
							}
							out.Set3(out.At3(fi, oy, ox)+float32(v*float64(w.At4(fi, ci, ky, kx))), fi, oy, ox)
						}
					}
				}
			}
		}
	}
	return out
}

// Property: the gather (upsample+convolve) and scatter formulations of
// deconvolution agree for random shapes and values.
func TestQuickDeconvGatherEqualsScatter(t *testing.T) {
	f := func(seed int64, hRaw, kRaw, sRaw, pRaw uint8) bool {
		h := int(hRaw)%5 + 2 // 2..6
		k := int(kRaw)%4 + 2 // 2..5
		s := int(sRaw)%3 + 1 // 1..3
		p := int(pRaw) % k   // 0..k-1
		if DeconvOut(h, k, s, p) <= 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		in := randTensor(rng, 2, h, h)
		w := randTensor(rng, 3, 2, k, k)
		a := Deconv2D(in, w, s, p)
		b := deconvScatter(in, w, s, p)
		return MaxAbsDiff(a, b) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: convolution is linear in its input.
func TestQuickConvLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randTensor(rng, 2, 6, 6)
		y := randTensor(rng, 2, 6, 6)
		w := randTensor(rng, 3, 2, 3, 3)
		lhs := Conv2D(x.Clone().AddInPlace(y), w, 1, 1)
		rhs := Conv2D(x, w, 1, 1).AddInPlace(Conv2D(y, w, 1, 1))
		return MaxAbsDiff(lhs, rhs) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeconv3DShape(t *testing.T) {
	in := Rand(3, 2, 3, 3, 3)
	w := Rand(4, 2, 2, 3, 3, 3)
	out := Deconv3D(in, w, 2, 1)
	want := DeconvOut(3, 3, 2, 1)
	if out.Dim(0) != 2 || out.Dim(1) != want || out.Dim(2) != want || out.Dim(3) != want {
		t.Fatalf("shape %v, want [2 %d %d %d]", out.Shape(), want, want, want)
	}
}

func TestDeconv3DMatchesUpsampleConv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randTensor(rng, 1, 2, 2, 2)
	w := randTensor(rng, 1, 1, 2, 2, 2)
	got := Deconv3D(in, w, 2, 1)
	wantUp := Upsample3D(in, 2, 1)
	want := Conv3D(wantUp, w, 1, 0)
	if d := MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("Deconv3D != upsample+conv, diff %v", d)
	}
}
