package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReLU(t *testing.T) {
	in := FromSlice([]float32{-2, -0.5, 0, 1, 3}, 5)
	out := ReLU(in)
	want := []float32{0, 0, 0, 1, 3}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("ReLU = %v, want %v", out.Data(), want)
		}
	}
	if in.At(0) != -2 {
		t.Fatal("ReLU mutated its input")
	}
}

func TestLeakyReLU(t *testing.T) {
	in := FromSlice([]float32{-4, 2}, 2)
	out := LeakyReLU(in, 0.25)
	if out.At(0) != -1 || out.At(1) != 2 {
		t.Fatalf("LeakyReLU = %v", out.Data())
	}
}

func TestSigmoidRange(t *testing.T) {
	in := FromSlice([]float32{-10, 0, 10}, 3)
	out := Sigmoid(in)
	if out.At(1) != 0.5 {
		t.Fatalf("sigmoid(0) = %v, want 0.5", out.At(1))
	}
	if out.At(0) > 0.001 || out.At(2) < 0.999 {
		t.Fatalf("sigmoid saturation wrong: %v", out.Data())
	}
}

func TestTanhOddFunction(t *testing.T) {
	in := FromSlice([]float32{-1.5, 1.5}, 2)
	out := Tanh(in)
	if math.Abs(float64(out.At(0)+out.At(1))) > 1e-6 {
		t.Fatalf("tanh not odd: %v", out.Data())
	}
}

func TestMaxPool2D(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out := MaxPool2D(in, 2, 2)
	want := []float32{6, 8, 14, 16}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("MaxPool2D = %v, want %v", out.Data(), want)
		}
	}
}

func TestAvgPool2D(t *testing.T) {
	in := New(1, 4, 4).Fill(3)
	out := AvgPool2D(in, 2, 2)
	for _, v := range out.Data() {
		if v != 3 {
			t.Fatalf("AvgPool2D of constant = %v, want 3", v)
		}
	}
}

func TestSADWindowZeroAtPerfectMatch(t *testing.T) {
	in := FromSlice([]float32{
		0, 0, 0, 0,
		0, 1, 2, 0,
		0, 3, 4, 0,
		0, 0, 0, 0,
	}, 4, 4)
	w := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	out := SADWindow(in, w, 1)
	if out.At(1, 1) != 0 {
		t.Fatalf("SAD at match = %v, want 0", out.At(1, 1))
	}
	// Any other position should be strictly positive.
	for y := 0; y < out.Dim(0); y++ {
		for x := 0; x < out.Dim(1); x++ {
			if (y != 1 || x != 1) && out.At(y, x) <= 0 {
				t.Fatalf("SAD(%d,%d) = %v, want > 0", y, x, out.At(y, x))
			}
		}
	}
}

// Property: SAD is symmetric in its arguments restricted to the aligned
// window, and non-negative everywhere.
func TestQuickSADNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		in := Rand(seed, 6, 6)
		w := Rand(seed+1, 3, 3)
		out := SADWindow(in, w, 1)
		for _, v := range out.Data() {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReLU is idempotent.
func TestQuickReLUIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		a := Rand(seed, 4, 4)
		once := ReLU(a)
		twice := ReLU(once)
		return MaxAbsDiff(once, twice) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: max pooling dominates average pooling element-wise.
func TestQuickMaxPoolDominatesAvgPool(t *testing.T) {
	f := func(seed int64) bool {
		in := Rand(seed, 2, 6, 6)
		mx := MaxPool2D(in, 2, 2)
		av := AvgPool2D(in, 2, 2)
		for i := range mx.Data() {
			if mx.Data()[i] < av.Data()[i]-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
