package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// ReLU applies max(0, x) element-wise and returns a new tensor.
func ReLU(t *Tensor) *Tensor {
	return t.Clone().Apply(func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
}

// LeakyReLU applies x if x>0 else alpha*x element-wise and returns a new
// tensor.
func LeakyReLU(t *Tensor, alpha float32) *Tensor {
	return t.Clone().Apply(func(v float32) float32 {
		if v < 0 {
			return alpha * v
		}
		return v
	})
}

// Sigmoid applies the logistic function element-wise and returns a new
// tensor.
func Sigmoid(t *Tensor) *Tensor {
	return t.Clone().Apply(func(v float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(v))))
	})
}

// Tanh applies the hyperbolic tangent element-wise and returns a new tensor.
func Tanh(t *Tensor) *Tensor {
	return t.Clone().Apply(func(v float32) float32 {
		return float32(math.Tanh(float64(v)))
	})
}

// MaxPool2D applies k×k max pooling with the given stride to in [C,H,W].
func MaxPool2D(in *Tensor, k, stride int) *Tensor {
	if in.Rank() != 3 {
		panic(fmt.Sprintf("tensor: MaxPool2D wants rank 3; got %d", in.Rank()))
	}
	c, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	oh, ow := ConvOut(h, k, stride, 0), ConvOut(w, k, stride, 0)
	out := New(c, oh, ow)
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				m := float32(math.Inf(-1))
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						if v := in.At3(ci, oy*stride+ky, ox*stride+kx); v > m {
							m = v
						}
					}
				}
				out.Set3(m, ci, oy, ox)
			}
		}
	}
	return out
}

// AvgPool2D applies k×k average pooling with the given stride to in [C,H,W].
func AvgPool2D(in *Tensor, k, stride int) *Tensor {
	if in.Rank() != 3 {
		panic(fmt.Sprintf("tensor: AvgPool2D wants rank 3; got %d", in.Rank()))
	}
	c, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	oh, ow := ConvOut(h, k, stride, 0), ConvOut(w, k, stride, 0)
	out := New(c, oh, ow)
	inv := 1 / float32(k*k)
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						s += in.At3(ci, oy*stride+ky, ox*stride+kx)
					}
				}
				out.Set3(s*inv, ci, oy, ox)
			}
		}
	}
	return out
}

// SADWindow computes the sum of absolute differences between kernel w
// [KH,KW] and every aligned window of in [H,W], returning [OH,OW].
// It is the matching-cost primitive that ASV maps onto the systolic array by
// replacing the MAC with an accumulate-absolute-difference (Sec. 5.2).
func SADWindow(in, w *Tensor, stride int) *Tensor {
	if in.Rank() != 2 || w.Rank() != 2 {
		panic(fmt.Sprintf("tensor: SADWindow wants ranks 2,2; got %d,%d", in.Rank(), w.Rank()))
	}
	h, wd := in.Dim(0), in.Dim(1)
	kh, kw := w.Dim(0), w.Dim(1)
	oh, ow := ConvOut(h, kh, stride, 0), ConvOut(wd, kw, stride, 0)
	out := New(oh, ow)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			var acc float64
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					acc += math.Abs(float64(in.At(oy*stride+ky, ox*stride+kx) - w.At(ky, kx)))
				}
			}
			out.Set(float32(acc), oy, ox)
		}
	}
	return out
}

// RandFill fills t with uniform values in [-1, 1) drawn from rng and
// returns t.
func RandFill(t *Tensor, rng *rand.Rand) *Tensor {
	for i := range t.data {
		t.data[i] = rng.Float32()*2 - 1
	}
	return t
}

// Rand returns a new tensor of the given shape filled with uniform values in
// [-1, 1) drawn from a deterministic generator with the given seed.
func Rand(seed int64, shape ...int) *Tensor {
	return RandFill(New(shape...), rand.New(rand.NewSource(seed)))
}
