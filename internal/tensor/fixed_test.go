package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeRoundTripBound(t *testing.T) {
	a := Rand(1, 3, 8, 8)
	q := Quantize(a, 12)
	back := q.Dequantize()
	// Error bounded by half a quantization step.
	if d := MaxAbsDiff(a, back); d > q.QuantStep()/2+1e-9 {
		t.Fatalf("quantization error %v exceeds half-step %v", d, q.QuantStep()/2)
	}
}

func TestQuantizeSaturates(t *testing.T) {
	a := FromSlice([]float32{100, -100}, 2)
	q := Quantize(a, 12)
	if q.Data()[0] != math.MaxInt16 || q.Data()[1] != math.MinInt16 {
		t.Fatalf("saturation failed: %v", q.Data())
	}
}

func TestQuantizePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantize(New(2), MaxFracBits+1)
}

func TestFixedConv2DMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randTensor(rng, 3, 10, 10)
	w := randTensor(rng, 4, 3, 3, 3)
	want := Conv2D(in, w, 1, 1)
	got := FixedConv2D(Quantize(in, 12), Quantize(w, 12), 1, 1)
	// Each tap contributes up to ~(|w|+|x|)·step error; 27 taps with
	// step 2^-12 keeps the total well under 2e-2.
	if d := MaxAbsDiff(want, got); d > 2e-2 {
		t.Fatalf("fixed conv diverges from float by %v", d)
	}
}

func TestFixedConv2DIsExactForRepresentableValues(t *testing.T) {
	// Values on the quantization grid convolve exactly.
	in := FromSlice([]float32{0.5, 0.25, -0.75, 1}, 1, 2, 2)
	w := FromSlice([]float32{0.5}, 1, 1, 1, 1)
	got := FixedConv2D(Quantize(in, 8), Quantize(w, 8), 1, 0)
	want := Conv2D(in, w, 1, 0)
	if MaxAbsDiff(got, want) != 0 {
		t.Fatalf("grid-representable conv not exact: %v vs %v", got.Data(), want.Data())
	}
}

func TestFixedSADMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randTensor(rng, 8, 8)
	w := randTensor(rng, 3, 3)
	want := SADWindow(in, w, 1)
	got := FixedSAD(Quantize(in, 12), Quantize(w, 12), 1)
	if d := MaxAbsDiff(want, got); d > 1e-2 {
		t.Fatalf("fixed SAD diverges by %v", d)
	}
}

func TestFixedSADScaleMismatchPanics(t *testing.T) {
	a := Quantize(New(4, 4), 8)
	b := Quantize(New(2, 2), 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FixedSAD(a, b, 1)
}

// Property: more fractional bits never increase quantization error.
func TestQuickMoreBitsMorePrecision(t *testing.T) {
	f := func(seed int64) bool {
		a := Rand(seed, 4, 4)
		lo := MaxAbsDiff(a, Quantize(a, 6).Dequantize())
		hi := MaxAbsDiff(a, Quantize(a, 12).Dequantize())
		return hi <= lo+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: fixed conv error shrinks roughly with the quantization step.
func TestQuickFixedConvErrorScales(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randTensor(rng, 2, 6, 6)
		w := randTensor(rng, 2, 2, 3, 3)
		ref := Conv2D(in, w, 1, 0)
		e8 := MaxAbsDiff(ref, FixedConv2D(Quantize(in, 8), Quantize(w, 8), 1, 0))
		e13 := MaxAbsDiff(ref, FixedConv2D(Quantize(in, 13), Quantize(w, 13), 1, 0))
		return e13 <= e8+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
