// Package tensor provides dense float32 tensors and the reference
// implementations of the neural-network operators used throughout ASV:
// 2-D/3-D convolution, transposed convolution (deconvolution), pooling and
// pointwise activations.
//
// The implementations here favour clarity over speed: they are the ground
// truth against which the deconvolution transformation (package deconv) is
// verified, and the functional substrate for the accuracy experiments.
// Performance experiments never execute these loops; they use the analytic
// accelerator models.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float32 tensor of arbitrary rank.
// The zero value is an empty tensor; use New or FromSlice to construct one.
type Tensor struct {
	shape  []int
	stride []int
	data   []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape:  append([]int(nil), shape...),
		data:   make([]float32, n),
		stride: strides(shape),
	}
	return t
}

// FromSlice returns a tensor with the given shape backed by a copy of data.
// It panics if len(data) does not match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	t := New(shape...)
	if len(data) != len(t.data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)",
			len(data), shape, len(t.data)))
	}
	copy(t.data, data)
	return t
}

func strides(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= shape[i]
	}
	return s
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += x * t.stride[i]
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

// At3 returns element (c, y, x) of a rank-3 tensor without allocating.
func (t *Tensor) At3(c, y, x int) float32 {
	return t.data[c*t.stride[0]+y*t.stride[1]+x]
}

// Set3 assigns element (c, y, x) of a rank-3 tensor without allocating.
func (t *Tensor) Set3(v float32, c, y, x int) {
	t.data[c*t.stride[0]+y*t.stride[1]+x] = v
}

// At4 returns element (a, b, y, x) of a rank-4 tensor without allocating.
func (t *Tensor) At4(a, b, y, x int) float32 {
	return t.data[a*t.stride[0]+b*t.stride[1]+y*t.stride[2]+x]
}

// Set4 assigns element (a, b, y, x) of a rank-4 tensor without allocating.
func (t *Tensor) Set4(v float32, a, b, y, x int) {
	t.data[a*t.stride[0]+b*t.stride[1]+y*t.stride[2]+x] = v
}

// Fill sets every element to v and returns t.
func (t *Tensor) Fill(v float32) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Apply replaces every element x with f(x) and returns t.
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// AddInPlace adds o element-wise into t and returns t.
// It panics if shapes differ.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	if !SameShape(t, o) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", t.shape, o.shape))
	}
	for i := range t.data {
		t.data[i] += o.data[i]
	}
	return t
}

// Scale multiplies every element by s and returns t.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// Sum returns the sum of all elements in float64 precision.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// AbsMax returns the largest absolute element value.
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.data {
		if a := float32(math.Abs(float64(v))); a > m {
			m = a
		}
	}
	return m
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute element-wise difference between a
// and b. It panics if shapes differ.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %v vs %v", a.shape, b.shape))
	}
	var m float64
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// String renders small tensors for debugging; large tensors are summarized.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 64 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%d elements]", len(t.data))
	}
	return b.String()
}

// Volume returns the product of the dimensions in shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
