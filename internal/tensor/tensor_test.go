package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tt.Len())
	}
	for i, v := range tt.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if tt.Rank() != 3 || tt.Dim(0) != 2 || tt.Dim(1) != 3 || tt.Dim(2) != 4 {
		t.Fatalf("bad shape %v", tt.Shape())
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3, 4)
	want := float32(0)
	for c := 0; c < 2; c++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 4; x++ {
				want++
				tt.Set(want, c, y, x)
				if got := tt.At(c, y, x); got != want {
					t.Fatalf("At(%d,%d,%d) = %v, want %v", c, y, x, got, want)
				}
				if got := tt.At3(c, y, x); got != want {
					t.Fatalf("At3(%d,%d,%d) = %v, want %v", c, y, x, got, want)
				}
			}
		}
	}
}

func TestAt4Set4(t *testing.T) {
	tt := New(2, 2, 3, 3)
	tt.Set4(7, 1, 0, 2, 1)
	if got := tt.At(1, 0, 2, 1); got != 7 {
		t.Fatalf("At = %v, want 7", got)
	}
	if got := tt.At4(1, 0, 2, 1); got != 7 {
		t.Fatalf("At4 = %v, want 7", got)
	}
}

func TestRowMajorLayout(t *testing.T) {
	tt := New(2, 2)
	tt.Set(1, 0, 0)
	tt.Set(2, 0, 1)
	tt.Set(3, 1, 0)
	tt.Set(4, 1, 1)
	want := []float32{1, 2, 3, 4}
	for i, v := range tt.Data() {
		if v != want[i] {
			t.Fatalf("Data = %v, want %v", tt.Data(), want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if !SameShape(a, b) {
		t.Fatal("Clone changed shape")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestIndexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFillApplyScale(t *testing.T) {
	tt := New(3).Fill(2)
	tt.Apply(func(v float32) float32 { return v + 1 })
	tt.Scale(2)
	for _, v := range tt.Data() {
		if v != 6 {
			t.Fatalf("got %v, want 6", v)
		}
	}
}

func TestAddInPlace(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	a.AddInPlace(b)
	if a.At(0) != 11 || a.At(1) != 22 {
		t.Fatalf("AddInPlace got %v", a.Data())
	}
}

func TestSumAbsMaxMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, -5, 3}, 3)
	if a.Sum() != -1 {
		t.Fatalf("Sum = %v, want -1", a.Sum())
	}
	if a.AbsMax() != 5 {
		t.Fatalf("AbsMax = %v, want 5", a.AbsMax())
	}
	b := FromSlice([]float32{1, -5, 7}, 3)
	if d := MaxAbsDiff(a, b); d != 4 {
		t.Fatalf("MaxAbsDiff = %v, want 4", d)
	}
}

func TestVolume(t *testing.T) {
	if Volume([]int{2, 3, 4}) != 24 {
		t.Fatal("Volume wrong")
	}
	if Volume(nil) != 1 {
		t.Fatal("Volume of empty shape should be 1")
	}
}

func TestRandDeterministic(t *testing.T) {
	a := Rand(42, 4, 4)
	b := Rand(42, 4, 4)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("Rand with same seed differs")
	}
	c := Rand(43, 4, 4)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatal("Rand with different seeds identical")
	}
}

// Property: Sum(a) + Sum(b) == Sum(a+b) within float tolerance.
func TestQuickAddSumLinear(t *testing.T) {
	f := func(seed int64) bool {
		a := Rand(seed, 3, 5)
		b := Rand(seed+1, 3, 5)
		want := a.Sum() + b.Sum()
		got := a.Clone().AddInPlace(b).Sum()
		return abs64(want-got) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling by s multiplies the sum by s.
func TestQuickScaleSum(t *testing.T) {
	f := func(seed int64, s8 int8) bool {
		s := float32(s8) / 16
		a := Rand(seed, 4, 4)
		want := a.Sum() * float64(s)
		got := a.Clone().Scale(s).Sum()
		return abs64(want-got) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	return RandFill(New(shape...), rng)
}
