package backend

import (
	"errors"
	"strings"
	"testing"

	"asv/internal/nn"
)

// fakeBackend is a minimal Backend for registry and Normalize tests.
type fakeBackend struct {
	name string
	caps Capabilities
}

func (f fakeBackend) Name() string { return f.name }
func (f fakeBackend) Describe() Description {
	return Description{Name: f.name, Summary: "fake", Caps: f.caps}
}
func (f fakeBackend) RunNetwork(n *nn.Network, opts RunOptions) Report {
	return Report{Workload: n.Name, Policy: opts.Policy, Seconds: 1}
}

func allPolicies() Capabilities {
	return Capabilities{
		Policies: []Policy{PolicyBaseline, PolicyDCT, PolicyConvR, PolicyILAR},
		ISM:      true,
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyBaseline: "baseline",
		PolicyDCT:      "dct",
		PolicyConvR:    "convr",
		PolicyILAR:     "ilar",
		Policy(99):     "policy(99)",
	} {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyBaseline, PolicyDCT, PolicyConvR, PolicyILAR} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("turbo"); err == nil {
		t.Error("ParsePolicy accepted an unknown name")
	}
}

func TestPolicyTransformed(t *testing.T) {
	if PolicyBaseline.Transformed() {
		t.Error("baseline should not be transformed")
	}
	for _, p := range []Policy{PolicyDCT, PolicyConvR, PolicyILAR} {
		if !p.Transformed() {
			t.Errorf("%v should be transformed", p)
		}
	}
}

func TestReportFPSZeroSafe(t *testing.T) {
	if fps := (Report{}).FPS(); fps != 0 {
		t.Fatalf("zero report FPS = %v, want 0", fps)
	}
	if fps := (Report{Seconds: 0.5}).FPS(); fps != 2 {
		t.Fatalf("FPS = %v, want 2", fps)
	}
}

func TestEnergyBreakdownTotalAndAdd(t *testing.T) {
	a := EnergyBreakdown{ComputeJ: 1, SRAMJ: 2, DRAMJ: 3, LeakJ: 4}
	if a.Total() != 10 {
		t.Fatalf("Total = %v, want 10", a.Total())
	}
	a.Add(EnergyBreakdown{ComputeJ: 1, SRAMJ: 1, DRAMJ: 1, LeakJ: 1})
	if a != (EnergyBreakdown{ComputeJ: 2, SRAMJ: 3, DRAMJ: 4, LeakJ: 5}) {
		t.Fatalf("Add gave %+v", a)
	}
}

func TestNormalizeZeroValueIsUniversal(t *testing.T) {
	// The zero RunOptions must validate on any backend that supports the
	// baseline policy, including ones without ISM.
	d := Description{Name: "min", Caps: Capabilities{Policies: []Policy{PolicyBaseline}}}
	got, err := RunOptions{}.Normalize(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.PW != 1 {
		t.Fatalf("PW %d, want 1 after normalization", got.PW)
	}
}

func TestNormalizeRejectsUnsupportedPolicy(t *testing.T) {
	d := Description{Name: "gpu-like", Caps: Capabilities{Policies: []Policy{PolicyBaseline}}}
	_, err := RunOptions{Policy: PolicyILAR}.Normalize(d)
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnsupportedError, got %v", err)
	}
	if ue.Backend != "gpu-like" || !strings.Contains(ue.Feature, "ilar") {
		t.Fatalf("error lacks context: %+v", ue)
	}
}

func TestNormalizeRejectsISMOnNonISMBackend(t *testing.T) {
	d := Description{Name: "eyeriss-like", Caps: Capabilities{Policies: []Policy{PolicyBaseline, PolicyDCT}}}
	_, err := RunOptions{PW: 4, NonKey: NonKeyCost{ArrayMACs: 1}}.Normalize(d)
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnsupportedError, got %v", err)
	}
	if !strings.Contains(ue.Feature, "ISM") {
		t.Fatalf("error should name ISM: %+v", ue)
	}
}

func TestNormalizeOptionsErrors(t *testing.T) {
	d := Description{Name: "full", Caps: allPolicies()}
	cases := map[string]RunOptions{
		"unknown policy":      {Policy: Policy(7)},
		"negative policy":     {Policy: Policy(-1)},
		"negative PW":         {PW: -2},
		"negative non-key":    {PW: 4, NonKey: NonKeyCost{ArrayMACs: -1}},
		"PW>1 without NonKey": {PW: 4},
	}
	for name, opts := range cases {
		_, err := opts.Normalize(d)
		var oe *OptionsError
		if !errors.As(err, &oe) {
			t.Errorf("%s: want *OptionsError, got %v", name, err)
		}
	}
}

func TestNormalizeClearsNonKeyForPWOne(t *testing.T) {
	d := Description{Name: "full", Caps: allPolicies()}
	got, err := RunOptions{Policy: PolicyILAR, PW: 1, NonKey: NonKeyCost{ArrayMACs: 5}}.Normalize(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.NonKey != (NonKeyCost{}) {
		t.Fatalf("NonKey should be zeroed at PW 1, got %+v", got.NonKey)
	}
}

func TestRunSurfacesTypedError(t *testing.T) {
	b := fakeBackend{name: "fake", caps: Capabilities{Policies: []Policy{PolicyBaseline}}}
	_, err := Run(b, nn.DispNet(8, 8), RunOptions{Policy: PolicyILAR})
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("Run should return the Normalize error, got %v", err)
	}
	rep, err := Run(b, nn.DispNet(8, 8), RunOptions{})
	if err != nil || rep.Seconds != 1 {
		t.Fatalf("valid Run failed: %v %+v", err, rep)
	}
}

func TestRegistryDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Register(fakeBackend{name: name, caps: allPolicies()})
	}
	wantNames := []string{"alpha", "mid", "zeta"}
	for i := 0; i < 5; i++ { // map iteration would be random; sorted must not be
		names := r.Names()
		list := r.List()
		if len(names) != len(wantNames) || len(list) != len(wantNames) {
			t.Fatalf("sizes: %d names, %d backends", len(names), len(list))
		}
		for j, want := range wantNames {
			if names[j] != want || list[j].Name() != want {
				t.Fatalf("iteration %d: order %v not sorted", i, names)
			}
		}
	}
}

func TestRegistryGetUnknownListsNames(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeBackend{name: "only", caps: allPolicies()})
	if _, err := r.Get("only"); err != nil {
		t.Fatal(err)
	}
	_, err := r.Get("nope")
	if err == nil || !strings.Contains(err.Error(), "only") {
		t.Fatalf("Get error should list available names, got %v", err)
	}
}

func TestRegistryRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Register(fakeBackend{name: "dup", caps: allPolicies()})
	mustPanic("duplicate", func() { r.Register(fakeBackend{name: "dup"}) })
	mustPanic("empty name", func() { r.Register(fakeBackend{name: ""}) })
}
