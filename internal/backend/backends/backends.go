// Package backends wires the four concrete accelerator models into the
// neutral backend registry. It is the only non-test package allowed to
// import the model packages (asvlint's archlayer rule enforces this):
// everything else — experiments, CLIs, the serving layer — selects a
// backend by name through backend.Get/List or constructs a custom-config
// instance through the New* helpers here.
//
// Importing this package (often as a blank import) registers the default
// instances of all four models into backend.Default:
//
//	systolic — ASV systolic array (all policies + ISM)
//	eyeriss  — Eyeriss-class row-stationary spatial array (baseline, DCT)
//	gpu      — Jetson TX2-class mobile GPU roofline (baseline)
//	gannx    — GANNX-class MIMD-SIMD deconvolution accelerator (baseline)
package backends

import (
	"asv/internal/backend"
	"asv/internal/core"
	"asv/internal/eyeriss"
	"asv/internal/gannx"
	"asv/internal/gpu"
	"asv/internal/hw"
	"asv/internal/nn"
	"asv/internal/systolic"
)

func init() {
	backend.Register(systolic.Default())
	backend.Register(eyeriss.Default())
	backend.Register(gpu.TX2())
	backend.Register(gannx.Default())
}

// NewSystolic returns an ASV systolic-array backend with a custom hardware
// configuration (design-space sweeps, Fig. 12).
func NewSystolic(cfg hw.Config, en hw.Energy) backend.Backend {
	return systolic.New(cfg, en)
}

// NewEyeriss returns an Eyeriss-class backend with a custom configuration.
func NewEyeriss(cfg hw.Config, en hw.Energy) backend.Backend {
	return eyeriss.New(cfg, en)
}

// NewTX2 returns a fresh TX2-class GPU roofline backend.
func NewTX2() backend.Backend { return gpu.TX2() }

// NewGANNX returns a GANNX-class backend with a custom configuration.
func NewGANNX(cfg hw.Config, en hw.Energy) backend.Backend {
	return gannx.New(cfg, en)
}

// DefaultNonKey returns the per-frame non-key demand of the default ISM
// pipeline at qHD — the NonKeyCost every ISM experiment and the serving
// layer use unless overridden. FrameBytes covers the stereo pair, motion
// field and disparity map crossing DRAM once each.
func DefaultNonKey() backend.NonKeyCost {
	p := core.New(nil, core.DefaultConfig())
	arrayMACs, scalarOps := p.NonKeyBreakdown(nn.QHDW, nn.QHDH)
	return backend.NonKeyCost{
		ArrayMACs:  arrayMACs,
		ScalarOps:  scalarOps,
		FrameBytes: int64(7 * nn.QHDW * nn.QHDH * 2),
	}
}
