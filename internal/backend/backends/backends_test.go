package backends

import (
	"testing"

	"asv/internal/backend"
	"asv/internal/nn"
)

func TestAllModelsRegistered(t *testing.T) {
	want := []string{"eyeriss", "gannx", "gpu", "systolic"} // sorted
	got := backend.Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered %v, want %v", got, want)
		}
	}
	for _, name := range want {
		b, err := backend.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != name || b.Describe().Name != name {
			t.Errorf("%s: Name/Describe mismatch (%q, %q)", name, b.Name(), b.Describe().Name)
		}
		if len(b.Describe().Caps.Policies) == 0 {
			t.Errorf("%s: no supported policies", name)
		}
	}
}

func TestEveryBackendRunsItsCapabilitySet(t *testing.T) {
	n := nn.DispNet(68, 120) // small shape: this is a wiring test, not a sweep
	for _, b := range backend.List() {
		d := b.Describe()
		for _, pol := range d.Caps.Policies {
			rep, err := backend.Run(b, n, backend.RunOptions{Policy: pol})
			if err != nil {
				t.Errorf("%s/%v: %v", d.Name, pol, err)
				continue
			}
			if rep.Seconds <= 0 || rep.EnergyJ <= 0 || rep.MACs <= 0 {
				t.Errorf("%s/%v: degenerate report %+v", d.Name, pol, rep)
			}
		}
		if d.Caps.ISM {
			rep, err := backend.Run(b, n, backend.RunOptions{
				Policy: d.Caps.Policies[len(d.Caps.Policies)-1],
				PW:     4,
				NonKey: DefaultNonKey(),
			})
			if err != nil || rep.Seconds <= 0 {
				t.Errorf("%s ISM run: %v %+v", d.Name, err, rep)
			}
		}
	}
}

func TestDefaultNonKeyIsPopulated(t *testing.T) {
	nk := DefaultNonKey()
	if nk.ArrayMACs <= 0 || nk.ScalarOps <= 0 || nk.FrameBytes <= 0 {
		t.Fatalf("degenerate default non-key cost: %+v", nk)
	}
}
