package backend

import (
	"fmt"

	"asv/internal/nn"
)

// Capabilities declares which RunOptions a backend can honor. Normalize
// validates options against it, so a model is never silently run in a mode
// it does not actually implement (the pre-refactor bug surface: eyeriss
// took a bare `transformed bool` and would have misreported ILAR).
type Capabilities struct {
	// Policies lists the scheduling policies the model implements, in
	// ascending optimization order.
	Policies []Policy
	// ISM reports whether the model implements the non-key-frame extensions
	// (SAD-capable PEs plus the pointwise scalar unit), i.e. whether a
	// propagation window larger than 1 is meaningful.
	ISM bool
}

// SupportsPolicy reports whether p is in the supported set.
func (c Capabilities) SupportsPolicy(p Policy) bool {
	for _, q := range c.Policies {
		if q == p {
			return true
		}
	}
	return false
}

// Description is a backend's self-description: its registry name, a
// one-line summary of the modeled hardware, and its capabilities.
type Description struct {
	Name    string
	Summary string
	Caps    Capabilities
}

// Backend is one accelerator model. Name is the registry key; Describe
// carries the capability set RunOptions are validated against; RunNetwork
// executes one inference (or, for PW > 1 on ISM-capable models, the
// average ISM frame) and returns its full cost breakdown.
//
// RunNetwork requires normalized options: call opts.Normalize (or use the
// package-level Run helper) first. Implementations may panic on options
// their capabilities exclude — validation is the caller's contract.
type Backend interface {
	Name() string
	Describe() Description
	RunNetwork(n *nn.Network, opts RunOptions) Report
}

// RunOptions carries every knob of the unified RunNetwork signature. The
// zero value is valid on all backends: baseline policy, DNN-only (PW 1).
type RunOptions struct {
	// Policy selects the scheduling/optimization level. Backends that do
	// not schedule (GPU, GANNX) accept only PolicyBaseline, their native
	// execution.
	Policy Policy
	// PW is the ISM propagation window: the key-frame cost is amortized
	// over PW-1 non-key frames. 0 is normalized to 1 (pure DNN execution);
	// values above 1 require an ISM-capable backend and a NonKey cost.
	PW int
	// NonKey is the per-frame demand of the non-key work; required when
	// PW > 1, ignored otherwise.
	NonKey NonKeyCost
}

// UnsupportedError is returned when options ask a backend for a mode its
// capabilities exclude (e.g. ILAR on a model without inter-layer reuse).
type UnsupportedError struct {
	Backend string // registry name
	Feature string // human-readable feature, e.g. `policy "ilar"`
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("backend %q does not support %s", e.Backend, e.Feature)
}

// OptionsError is returned when options are malformed regardless of
// backend (negative window, negative non-key demand, unknown policy).
type OptionsError struct {
	Msg string
}

func (e *OptionsError) Error() string { return "invalid run options: " + e.Msg }

// Normalize validates o against a backend's description and returns the
// canonical form (PW 0 → 1). It returns *OptionsError for malformed
// options and *UnsupportedError for modes the backend does not model.
func (o RunOptions) Normalize(d Description) (RunOptions, error) {
	if o.Policy < PolicyBaseline || o.Policy > PolicyILAR {
		return o, &OptionsError{Msg: fmt.Sprintf("unknown policy %v", o.Policy)}
	}
	if o.PW < 0 {
		return o, &OptionsError{Msg: fmt.Sprintf("propagation window %d < 0", o.PW)}
	}
	if o.PW == 0 {
		o.PW = 1
	}
	if !d.Caps.SupportsPolicy(o.Policy) {
		return o, &UnsupportedError{Backend: d.Name, Feature: fmt.Sprintf("policy %q", o.Policy)}
	}
	if o.PW > 1 {
		if !d.Caps.ISM {
			return o, &UnsupportedError{Backend: d.Name, Feature: fmt.Sprintf("ISM (propagation window %d)", o.PW)}
		}
		if o.NonKey.ArrayMACs < 0 || o.NonKey.ScalarOps < 0 || o.NonKey.FrameBytes < 0 {
			return o, &OptionsError{Msg: fmt.Sprintf("negative non-key cost %+v", o.NonKey)}
		}
		if o.NonKey == (NonKeyCost{}) {
			return o, &OptionsError{Msg: fmt.Sprintf("propagation window %d needs a non-key cost", o.PW)}
		}
	} else {
		o.NonKey = NonKeyCost{}
	}
	return o, nil
}

// Run is the validating entry point: it normalizes opts against b's
// capabilities and executes the network, returning a typed error instead
// of a silently wrong report when the backend cannot honor the options.
func Run(b Backend, n *nn.Network, opts RunOptions) (Report, error) {
	norm, err := opts.Normalize(b.Describe())
	if err != nil {
		return Report{}, err
	}
	return b.RunNetwork(n, norm), nil
}
