// Package backend defines the neutral accelerator-model abstraction the
// four hardware models (ASV systolic array, Eyeriss-class spatial array,
// mobile GPU, GANNX-class deconvolution accelerator) implement: a common
// Report cost breakdown, a RunOptions struct that subsumes every model's
// knobs (scheduling policy, ISM propagation window), and a deterministic
// name-keyed Registry so experiments, CLIs and the serving layer select
// backends by name instead of by import.
//
// The concrete models live in their own packages and implement Backend;
// only the backend subtree (internal/backend/backends) may import them —
// the asvlint archlayer rule enforces that boundary. See DESIGN.md §8.
package backend

import (
	"fmt"

	"asv/internal/schedule"
)

// Policy selects how a network is compiled onto an accelerator. Not every
// backend supports every policy: Capabilities.Policies lists what each
// model can honor, and RunOptions.Normalize rejects the rest.
type Policy int

// Policies, in increasing order of ASV optimization.
const (
	// PolicyBaseline executes deconvolutions naively (dense convolution on
	// the zero-upsampled ifmap); on GANNX, whose hardware skips the zeros,
	// it is simply the model's native execution.
	PolicyBaseline Policy = iota
	// PolicyDCT applies the deconvolution transformation but keeps the
	// baseline static partition (the "DCT" bar of Fig. 11; also the
	// "Eyeriss+DCT" configuration of Fig. 13).
	PolicyDCT
	// PolicyConvR adds the per-layer reuse optimizer, scheduling each
	// sub-convolution independently (conventional reuse only).
	PolicyConvR
	// PolicyILAR additionally shares the resident ifmap tile across the
	// sub-convolutions of each transformed deconvolution (full DCO).
	PolicyILAR
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyBaseline:
		return "baseline"
	case PolicyDCT:
		return "dct"
	case PolicyConvR:
		return "convr"
	case PolicyILAR:
		return "ilar"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy resolves a policy name as used on CLI flags.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range []Policy{PolicyBaseline, PolicyDCT, PolicyConvR, PolicyILAR} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q (baseline|dct|convr|ilar)", s)
}

// Transformed reports whether the policy applies the deconvolution
// transformation before scheduling.
func (p Policy) Transformed() bool { return p != PolicyBaseline }

// EnergyBreakdown splits a report's energy by component.
type EnergyBreakdown struct {
	ComputeJ float64 // MAC / SAD / scalar arithmetic (plus NoC or control where modeled)
	SRAMJ    float64 // on-chip buffer traffic
	DRAMJ    float64 // off-chip traffic
	LeakJ    float64 // static power over the run
}

// Total sums the components.
func (e EnergyBreakdown) Total() float64 {
	return e.ComputeJ + e.SRAMJ + e.DRAMJ + e.LeakJ
}

// Add accumulates o into e.
func (e *EnergyBreakdown) Add(o EnergyBreakdown) {
	e.ComputeJ += o.ComputeJ
	e.SRAMJ += o.SRAMJ
	e.DRAMJ += o.DRAMJ
	e.LeakJ += o.LeakJ
}

// Report aggregates the cost of running a workload on an accelerator
// model. Every backend fills the totals; PerLayer is populated only by
// models that expose a per-layer schedule (the systolic array).
type Report struct {
	Workload  string
	Policy    Policy
	Cycles    int64
	Seconds   float64
	MACs      int64
	DRAMBytes int64
	SRAMBytes int64
	EnergyJ   float64
	Energy    EnergyBreakdown // per-component split of EnergyJ

	// Deconvolution-only slice of the totals (Fig. 11a).
	DeconvCycles  int64
	DeconvEnergyJ float64

	PerLayer []schedule.Result
}

// FPS returns the frame rate this per-frame cost sustains.
func (r Report) FPS() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return 1 / r.Seconds
}

// NonKeyCost is the arithmetic demand of one ISM non-key frame, split by
// execution unit: convolution-like work (Gaussian pyramids, polynomial
// expansion, SAD search) on the array versus pointwise work ("Compute
// Flow", "Matrix Update", propagation) on the scalar unit.
type NonKeyCost struct {
	ArrayMACs  int64
	ScalarOps  int64
	FrameBytes int64 // frame/motion/disparity DRAM traffic
}
