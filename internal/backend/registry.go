package backend

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is a name-keyed set of backends with deterministic iteration
// order (sorted names). The zero value is not usable; call NewRegistry.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Backend
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: map[string]Backend{}} }

// Register adds b under b.Name(). Registering an empty name or a name that
// is already taken panics: both are wiring bugs, not runtime conditions.
func (r *Registry) Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("backend: Register with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		panic(fmt.Sprintf("backend: duplicate Register(%q)", name))
	}
	r.m[name] = b
}

// Get returns the backend registered under name, or an error listing the
// available names (sorted) so CLI messages are self-explanatory.
func (r *Registry) Get(name string) (Backend, error) {
	r.mu.RLock()
	b, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown backend %q (have %v)", name, r.Names())
	}
	return b, nil
}

// List returns every registered backend, sorted by name.
func (r *Registry) List() []Backend {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Backend, len(names))
	for i, name := range names {
		out[i] = r.m[name]
	}
	return out
}

// Names returns the sorted registry keys.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Default is the process-wide registry the built-in models register into
// (see internal/backend/backends) and the package-level helpers read.
var Default = NewRegistry()

// Register adds b to the default registry.
func Register(b Backend) { Default.Register(b) }

// Get looks b up in the default registry.
func Get(name string) (Backend, error) { return Default.Get(name) }

// List returns the default registry's backends, sorted by name.
func List() []Backend { return Default.List() }

// Names returns the default registry's sorted names.
func Names() []string { return Default.Names() }
