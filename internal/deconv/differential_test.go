package deconv

// Differential oracle for the deconvolution-to-convolution transformation
// (ISSUE 2): the transformed execution must agree with the reference
// tensor.Deconv on randomized shapes, not just the handful of fixed shapes
// in transform_test.go. Any future optimization of either path has to keep
// this equivalence.

import (
	"math/rand"
	"testing"

	"asv/internal/nn"
	"asv/internal/tensor"
	"asv/internal/testkit"
)

// nnLayer2D wraps a random 2-D deconvolution case as the IR layer the MAC
// accounting operates on.
func nnLayer2D(c, h, w, f, kh, kw, pad int) nn.Layer {
	return nn.Layer{
		Name: "rand", Kind: nn.KindDeconv,
		InC: c, InD: 1, InH: h, InW: w,
		OutC: f, KD: 1, KH: kh, KW: kw,
		Stride: Stride, Pad: pad,
	}
}

// tolExact is the acceptance bound of the oracle. Both paths accumulate in
// float64 over the same products in the same order, so the agreement is in
// practice bit-exact; 1e-9 leaves room for a reordered-but-correct rewrite.
const tolExact = 1e-9

// randDeconv2DCase draws a random stride-2 2-D deconvolution whose output
// is non-empty.
func randDeconv2DCase(r *rand.Rand) (in, w *tensor.Tensor, pad int) {
	for {
		c := testkit.RandDim(r, 1, 4)
		f := testkit.RandDim(r, 1, 4)
		h := testkit.RandDim(r, 2, 7)
		wd := testkit.RandDim(r, 2, 7)
		kh := testkit.RandDim(r, 1, 5)
		kw := testkit.RandDim(r, 1, 5)
		pad = testkit.RandDim(r, 0, 3)
		if tensor.DeconvOut(h, kh, Stride, pad) < 1 || tensor.DeconvOut(wd, kw, Stride, pad) < 1 {
			continue
		}
		return testkit.RandTensor(r, c, h, wd), testkit.RandTensor(r, f, c, kh, kw), pad
	}
}

func TestDifferentialTransformed2DRandomShapes(t *testing.T) {
	r := testkit.NewRand(t)
	const cases = 60 // acceptance floor is 50 randomized shapes
	for i := 0; i < cases; i++ {
		in, w, pad := randDeconv2DCase(r)
		ref := tensor.Deconv2D(in, w, Stride, pad)
		got := Transformed2D(in, w, pad)
		if m := testkit.DiffTensors(got, ref, tolExact); m != nil {
			t.Fatalf("case %d: ifmap %v kernel %v pad %d: %s",
				i, in.Shape(), w.Shape(), pad, m)
		}
	}
}

func TestDifferentialTransformed3DRandomShapes(t *testing.T) {
	r := testkit.NewRand(t)
	const cases = 50
	for i := 0; i < cases; i++ {
		var in, w *tensor.Tensor
		var pad int
		for {
			c := testkit.RandDim(r, 1, 3)
			f := testkit.RandDim(r, 1, 3)
			d := testkit.RandDim(r, 2, 5)
			h := testkit.RandDim(r, 2, 5)
			wd := testkit.RandDim(r, 2, 5)
			kd := testkit.RandDim(r, 1, 4)
			kh := testkit.RandDim(r, 1, 4)
			kw := testkit.RandDim(r, 1, 4)
			pad = testkit.RandDim(r, 0, 2)
			if tensor.DeconvOut(d, kd, Stride, pad) < 1 ||
				tensor.DeconvOut(h, kh, Stride, pad) < 1 ||
				tensor.DeconvOut(wd, kw, Stride, pad) < 1 {
				continue
			}
			in = testkit.RandTensor(r, c, d, h, wd)
			w = testkit.RandTensor(r, f, c, kd, kh, kw)
			break
		}
		ref := tensor.Deconv3D(in, w, Stride, pad)
		got := Transformed3D(in, w, pad)
		if m := testkit.DiffTensors(got, ref, tolExact); m != nil {
			t.Fatalf("case %d: ifmap %v kernel %v pad %d: %s",
				i, in.Shape(), w.Shape(), pad, m)
		}
	}
}

// TestDifferentialEffectiveMACsMatchExecution cross-checks the analytic MAC
// accounting against the actual transformed execution: the sub-layer
// decomposition the scheduler consumes must describe exactly the work
// Transformed2D performs (taps × positions, summed over sub-kernels).
func TestDifferentialEffectiveMACsMatchExecution(t *testing.T) {
	r := testkit.NewRand(t)
	for i := 0; i < 25; i++ {
		in, w, pad := randDeconv2DCase(r)
		c, h, wd := in.Dim(0), in.Dim(1), in.Dim(2)
		f, kh, kw := w.Dim(0), w.Dim(2), w.Dim(3)
		l := nnLayer2D(c, h, wd, f, kh, kw, pad)
		var want int64
		oh := tensor.DeconvOut(h, kh, Stride, pad)
		ow := tensor.DeconvOut(wd, kw, Stride, pad)
		subs := Decompose2D(w)
		for u := 0; u < oh; u++ {
			dy := parity(pad - u)
			for v := 0; v < ow; v++ {
				dx := parity(pad - v)
				s := subs[dy|dx<<1]
				if s == nil {
					continue
				}
				want += int64(f) * int64(c) * int64(s.Dim(2)) * int64(s.Dim(3))
			}
		}
		if got := EffectiveMACs(l); got != want {
			t.Fatalf("case %d (%v kernel %v pad %d): EffectiveMACs %d, execution counts %d",
				i, in.Shape(), w.Shape(), pad, got, want)
		}
	}
}
