package deconv

import (
	"fmt"

	"asv/internal/tensor"
)

// DecomposeND implements the general Appendix A construction: a kernel with
// n trailing spatial dimensions decomposes into 2^n sub-kernels, where
// sub-kernel k takes element (i₀,…,i_{n-1}) from kernel element
// (2i₀+δ₀, …, 2i_{n-1}+δ_{n-1}) with δⱼ = (k >> j) & 1.
//
// w's leading dimensions (filters, channels) are preserved; spatialDims
// counts the trailing dimensions to decompose. Sub-kernels with an empty
// dimension are nil. DecomposeND generalizes Decompose2D/Decompose3D to
// any rank (the paper states the formulation for N-dimensional kernels).
//
// Note the δ-to-dimension assignment: δⱼ selects the parity of the j-th
// *spatial* dimension counted from the slowest-varying one, so for 2-D
// kernels DecomposeND's sub-kernel order matches Decompose2D's (S0..S3)
// up to the documented index mapping below.
func DecomposeND(w *tensor.Tensor, spatialDims int) []*tensor.Tensor {
	if spatialDims < 1 || spatialDims > w.Rank() {
		panic(fmt.Sprintf("deconv: spatialDims %d out of range for rank %d", spatialDims, w.Rank()))
	}
	lead := w.Rank() - spatialDims
	shape := w.Shape()
	n := spatialDims
	out := make([]*tensor.Tensor, 1<<n)

	for k := 0; k < 1<<n; k++ {
		deltas := make([]int, n)
		subShape := append([]int(nil), shape[:lead]...)
		empty := false
		for j := 0; j < n; j++ {
			deltas[j] = (k >> j) & 1
			ext := subExtent(shape[lead+j], deltas[j])
			if ext == 0 {
				empty = true
			}
			subShape = append(subShape, ext)
		}
		if empty {
			continue
		}
		sub := tensor.New(subShape...)
		// Walk every element of the sub-kernel and copy from the source.
		srcIdx := make([]int, w.Rank())
		dstIdx := make([]int, w.Rank())
		var fill func(dim int)
		fill = func(dim int) {
			if dim == len(subShape) {
				sub.Set(w.At(srcIdx...), dstIdx...)
				return
			}
			for i := 0; i < subShape[dim]; i++ {
				dstIdx[dim] = i
				if dim < lead {
					srcIdx[dim] = i
				} else {
					srcIdx[dim] = 2*i + deltas[dim-lead]
				}
				fill(dim + 1)
			}
		}
		fill(0)
		out[k] = sub
	}
	return out
}
