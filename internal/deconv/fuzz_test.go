package deconv

// Native fuzz target (ISSUE 3): the transform's equivalence to the
// reference deconvolution over fuzzer-chosen shapes and seeds. The
// differential tests sample this space; the fuzzer walks it.

import (
	"math/rand"
	"testing"

	"asv/internal/tensor"
	"asv/internal/testkit"
)

func FuzzTransformEquivalence(f *testing.F) {
	f.Add(int64(1), byte(1), byte(1), byte(3), byte(3), byte(4), byte(4), byte(2))
	f.Add(int64(7), byte(2), byte(3), byte(5), byte(4), byte(1), byte(5), byte(0))
	f.Add(int64(42), byte(3), byte(2), byte(2), byte(2), byte(2), byte(3), byte(3))
	f.Fuzz(func(t *testing.T, seed int64, cRaw, fRaw, hRaw, wRaw, khRaw, kwRaw, padRaw byte) {
		c := int(cRaw)%3 + 1
		fc := int(fRaw)%3 + 1
		h := int(hRaw)%6 + 2
		wd := int(wRaw)%6 + 2
		kh := int(khRaw)%5 + 1
		kw := int(kwRaw)%5 + 1
		pad := int(padRaw) % 4
		if tensor.DeconvOut(h, kh, Stride, pad) < 1 || tensor.DeconvOut(wd, kw, Stride, pad) < 1 {
			return
		}
		r := rand.New(rand.NewSource(seed))
		in := testkit.RandTensor(r, c, h, wd)
		w := testkit.RandTensor(r, fc, c, kh, kw)
		ref := tensor.Deconv2D(in, w, Stride, pad)
		got := Transformed2D(in, w, pad)
		if m := testkit.DiffTensors(got, ref, tolExact); m != nil {
			t.Fatalf("ifmap %v kernel %v pad %d: %s", in.Shape(), w.Shape(), pad, m)
		}
	})
}
