// Package deconv implements ASV's deconvolution-to-convolution
// transformation (paper Sec. 4.1 and Appendix A): a stride-2 deconvolution
// kernel of N spatial dimensions is decomposed into 2^N dense sub-kernels,
// each convolved with the original (un-upsampled) input feature map; a
// gather step interleaves the sub-convolution outputs into the ofmap. The
// transformation removes every multiplication against an inserted zero
// without any hardware support.
//
// The package provides both the functional transformation (operating on
// tensors, verified against the reference deconvolution in package tensor)
// and the shape/MAC accounting consumed by the dataflow scheduler.
package deconv

import (
	"fmt"

	"asv/internal/nn"
	"asv/internal/tensor"
)

// Stride is the upsampling factor the transformation targets. ASV's
// formulation (Appendix A) decomposes by coordinate parity, i.e. stride 2 —
// the stride used by every deconvolution in the stereo and GAN zoos.
const Stride = 2

// Decompose2D splits a 2-D deconvolution kernel w [F,C,KH,KW] into the four
// sub-kernels (S0..S3) of paper Sec. 4.1:
//
//	S0 = K[2i,   2j]    S1 = K[2i+1, 2j]
//	S2 = K[2i,   2j+1]  S3 = K[2i+1, 2j+1]
//
// Sub-kernels with an empty dimension (possible when KH or KW is 1) are
// returned as nil.
func Decompose2D(w *tensor.Tensor) [4]*tensor.Tensor {
	if w.Rank() != 4 {
		panic(fmt.Sprintf("deconv: Decompose2D wants rank 4, got %d", w.Rank()))
	}
	f, c, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	var out [4]*tensor.Tensor
	for k := 0; k < 4; k++ {
		dy := k & 1        // δ for the H dimension
		dx := (k >> 1) & 1 // δ for the W dimension
		sh := subExtent(kh, dy)
		sw := subExtent(kw, dx)
		if sh == 0 || sw == 0 {
			continue
		}
		s := tensor.New(f, c, sh, sw)
		for fi := 0; fi < f; fi++ {
			for ci := 0; ci < c; ci++ {
				for i := 0; i < sh; i++ {
					for j := 0; j < sw; j++ {
						s.Set4(w.At4(fi, ci, 2*i+dy, 2*j+dx), fi, ci, i, j)
					}
				}
			}
		}
		out[k] = s
	}
	return out
}

// Decompose3D splits a 3-D kernel w [F,C,KD,KH,KW] into eight sub-kernels
// indexed by the parity bits (δd, δy, δx) = (k>>2&1, k&1, k>>1&1), matching
// the Appendix A construction. Empty sub-kernels are nil.
func Decompose3D(w *tensor.Tensor) [8]*tensor.Tensor {
	if w.Rank() != 5 {
		panic(fmt.Sprintf("deconv: Decompose3D wants rank 5, got %d", w.Rank()))
	}
	f, c := w.Dim(0), w.Dim(1)
	kd, kh, kw := w.Dim(2), w.Dim(3), w.Dim(4)
	var out [8]*tensor.Tensor
	for k := 0; k < 8; k++ {
		dy := k & 1
		dx := (k >> 1) & 1
		dz := (k >> 2) & 1
		sd := subExtent(kd, dz)
		sh := subExtent(kh, dy)
		sw := subExtent(kw, dx)
		if sd == 0 || sh == 0 || sw == 0 {
			continue
		}
		s := tensor.New(f, c, sd, sh, sw)
		for fi := 0; fi < f; fi++ {
			for ci := 0; ci < c; ci++ {
				for z := 0; z < sd; z++ {
					for i := 0; i < sh; i++ {
						for j := 0; j < sw; j++ {
							s.Set(w.At(fi, ci, 2*z+dz, 2*i+dy, 2*j+dx), fi, ci, z, i, j)
						}
					}
				}
			}
		}
		out[k] = s
	}
	return out
}

// subExtent returns the extent of a sub-kernel dimension: elements 2i+δ of
// an extent-k dimension, i.e. ⌈k/2⌉ for δ=0 and ⌊k/2⌋ for δ=1.
func subExtent(k, delta int) int { return (k - delta + 1) / 2 }

// outPositions returns how many ofmap coordinates u ∈ [0, out) select the
// sub-kernel with parity δ, i.e. satisfy (pad-u) ≡ δ (mod 2).
func outPositions(out, pad, delta int) int {
	r := (pad - delta) % 2
	if r < 0 {
		r += 2
	}
	// Count of u in [0, out) with u ≡ r (mod 2).
	if r == 0 {
		return (out + 1) / 2
	}
	return out / 2
}

// Transformed2D executes a stride-2 deconvolution by the ASV transformation:
// each sub-kernel is densely convolved with the original ifmap, and the
// gather step interleaves the four results into the ofmap. pad is the
// upsampled-border padding (tensor.Deconv2D convention). The result is
// numerically identical to tensor.Deconv2D(in, w, 2, pad).
func Transformed2D(in, w *tensor.Tensor, pad int) *tensor.Tensor {
	if in.Rank() != 3 || w.Rank() != 4 {
		panic("deconv: Transformed2D wants ranks 3,4")
	}
	c, h, wd := in.Dim(0), in.Dim(1), in.Dim(2)
	f, kh, kw := w.Dim(0), w.Dim(2), w.Dim(3)
	oh := tensor.DeconvOut(h, kh, Stride, pad)
	ow := tensor.DeconvOut(wd, kw, Stride, pad)
	subs := Decompose2D(w)
	out := tensor.New(f, oh, ow)
	for u := 0; u < oh; u++ {
		dy := parity(pad - u)
		for v := 0; v < ow; v++ {
			dx := parity(pad - v)
			s := subs[dy|dx<<1]
			if s == nil {
				continue
			}
			sh, sw := s.Dim(2), s.Dim(3)
			ay := (u - pad + dy) / 2
			ax := (v - pad + dx) / 2
			for fi := 0; fi < f; fi++ {
				var acc float64
				for ci := 0; ci < c; ci++ {
					for i := 0; i < sh; i++ {
						iy := ay + i
						if iy < 0 || iy >= h {
							continue
						}
						for j := 0; j < sw; j++ {
							ix := ax + j
							if ix < 0 || ix >= wd {
								continue
							}
							acc += float64(in.At3(ci, iy, ix)) * float64(s.At4(fi, ci, i, j))
						}
					}
				}
				out.Set3(float32(acc), fi, u, v)
			}
		}
	}
	return out
}

// Transformed3D is the 3-D analogue of Transformed2D for in [C,D,H,W] and
// w [F,C,KD,KH,KW]; it equals tensor.Deconv3D(in, w, 2, pad).
func Transformed3D(in, w *tensor.Tensor, pad int) *tensor.Tensor {
	if in.Rank() != 4 || w.Rank() != 5 {
		panic("deconv: Transformed3D wants ranks 4,5")
	}
	c, d, h, wd := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	f, kd, kh, kw := w.Dim(0), w.Dim(2), w.Dim(3), w.Dim(4)
	od := tensor.DeconvOut(d, kd, Stride, pad)
	oh := tensor.DeconvOut(h, kh, Stride, pad)
	ow := tensor.DeconvOut(wd, kw, Stride, pad)
	subs := Decompose3D(w)
	out := tensor.New(f, od, oh, ow)
	for t := 0; t < od; t++ {
		dz := parity(pad - t)
		az := (t - pad + dz) / 2
		for u := 0; u < oh; u++ {
			dy := parity(pad - u)
			ay := (u - pad + dy) / 2
			for v := 0; v < ow; v++ {
				dx := parity(pad - v)
				ax := (v - pad + dx) / 2
				s := subs[dy|dx<<1|dz<<2]
				if s == nil {
					continue
				}
				sd, sh, sw := s.Dim(2), s.Dim(3), s.Dim(4)
				for fi := 0; fi < f; fi++ {
					var acc float64
					for ci := 0; ci < c; ci++ {
						for z := 0; z < sd; z++ {
							iz := az + z
							if iz < 0 || iz >= d {
								continue
							}
							for i := 0; i < sh; i++ {
								iy := ay + i
								if iy < 0 || iy >= h {
									continue
								}
								for j := 0; j < sw; j++ {
									ix := ax + j
									if ix < 0 || ix >= wd {
										continue
									}
									acc += float64(in.At(ci, iz, iy, ix)) * float64(s.At(fi, ci, z, i, j))
								}
							}
						}
					}
					out.Set(float32(acc), fi, t, u, v)
				}
			}
		}
	}
	return out
}

func parity(x int) int {
	p := x % 2
	if p < 0 {
		p += 2
	}
	return p
}

// SubLayer describes one sub-convolution produced by transforming a
// deconvolution layer: the sub-kernel shape and the slice of the ofmap it
// generates. It is the unit the dataflow optimizer schedules.
type SubLayer struct {
	KD, KH, KW       int // sub-kernel extents
	OutD, OutH, OutW int // ofmap positions this sub-convolution produces
}

// Taps returns the kernel volume of the sub-convolution.
func (s SubLayer) Taps() int64 { return int64(s.KD) * int64(s.KH) * int64(s.KW) }

// OutElemsPerFilter returns the ofmap positions per output channel.
func (s SubLayer) OutElemsPerFilter() int64 {
	return int64(s.OutD) * int64(s.OutH) * int64(s.OutW)
}

// Transform returns the sub-convolutions a layer decomposes into. A
// convolution (or a stride-1 deconvolution, which is already dense) maps to
// itself; a stride-2 deconvolution maps to 2^N sub-convolutions with N
// spatial dimensions, skipping empty sub-kernels.
func Transform(l nn.Layer) []SubLayer {
	od, oh, ow := l.OutDims()
	if l.Kind != nn.KindDeconv || l.Stride != Stride {
		return []SubLayer{{KD: l.KD, KH: l.KH, KW: l.KW, OutD: od, OutH: oh, OutW: ow}}
	}
	var subs []SubLayer
	n3d := l.Is3D()
	max := 4
	if n3d {
		max = 8
	}
	for k := 0; k < max; k++ {
		dy := k & 1
		dx := (k >> 1) & 1
		dz := (k >> 2) & 1
		kd, pd := 1, 0
		if n3d {
			kd = subExtent(l.KD, dz)
			pd = outPositions(od, l.Pad, dz)
		} else {
			pd = od // 2-D: depth is a single unit plane
		}
		kh := subExtent(l.KH, dy)
		kw := subExtent(l.KW, dx)
		if kd == 0 || kh == 0 || kw == 0 {
			continue
		}
		subs = append(subs, SubLayer{
			KD: kd, KH: kh, KW: kw,
			OutD: pd,
			OutH: outPositions(oh, l.Pad, dy),
			OutW: outPositions(ow, l.Pad, dx),
		})
	}
	return subs
}

// EffectiveMACs returns the layer's MAC count after the transformation:
// only multiplications against real (non-inserted-zero) ifmap data remain.
// For convolutions this equals the naive count.
func EffectiveMACs(l nn.Layer) int64 {
	var s int64
	for _, sub := range Transform(l) {
		s += sub.OutElemsPerFilter() * int64(l.OutC) * int64(l.InC) * sub.Taps()
	}
	return s
}

// NetworkEffectiveMACs sums EffectiveMACs over all layers.
func NetworkEffectiveMACs(n *nn.Network) int64 {
	var s int64
	for _, l := range n.Layers {
		s += EffectiveMACs(l)
	}
	return s
}

// RedundancyRatio returns the fraction of a deconvolution layer's naive
// MACs that operate on inserted zeros (paper: >75% for stride-2 2-D
// kernels, ~87.5% for 3-D).
func RedundancyRatio(l nn.Layer) float64 {
	naive := l.MACs()
	if naive == 0 {
		return 0
	}
	return 1 - float64(EffectiveMACs(l))/float64(naive)
}
