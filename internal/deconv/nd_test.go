package deconv

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"asv/internal/tensor"
)

func TestDecomposeNDMatchesDecompose2D(t *testing.T) {
	w := tensor.Rand(11, 2, 3, 5, 4)
	nd := DecomposeND(w, 2)
	d2 := Decompose2D(w)
	if len(nd) != 4 {
		t.Fatalf("expected 4 sub-kernels, got %d", len(nd))
	}
	for k := range nd {
		if (nd[k] == nil) != (d2[k] == nil) {
			t.Fatalf("sub %d nil mismatch", k)
		}
		if nd[k] == nil {
			continue
		}
		if tensor.MaxAbsDiff(nd[k], d2[k]) != 0 {
			t.Fatalf("sub %d differs between DecomposeND and Decompose2D", k)
		}
	}
}

// signature summarizes a sub-kernel set independent of index ordering.
func signature(subs []*tensor.Tensor) []string {
	var sig []string
	for _, s := range subs {
		if s == nil {
			continue
		}
		sig = append(sig, fmt.Sprintf("%v|%.4f", s.Shape(), s.Sum()))
	}
	sort.Strings(sig)
	return sig
}

func TestDecomposeNDMatchesDecompose3DUpToOrder(t *testing.T) {
	w := tensor.Rand(13, 2, 2, 3, 3, 3)
	nd := DecomposeND(w, 3)
	d3 := Decompose3D(w)
	a := signature(nd)
	b := signature(d3[:])
	if len(a) != len(b) {
		t.Fatalf("sub-kernel counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sub-kernel multiset differs:\n%v\n%v", a, b)
		}
	}
}

func TestDecomposeND1D(t *testing.T) {
	// A 1-D kernel [F=1, C=1, K=5] splits into even taps (3) and odd (2).
	w := tensor.FromSlice([]float32{1, 2, 3, 4, 5}, 1, 1, 5)
	subs := DecomposeND(w, 1)
	if len(subs) != 2 {
		t.Fatalf("expected 2 sub-kernels, got %d", len(subs))
	}
	even, odd := subs[0], subs[1]
	wantEven := []float32{1, 3, 5}
	wantOdd := []float32{2, 4}
	for i, v := range wantEven {
		if even.Data()[i] != v {
			t.Fatalf("even sub = %v, want %v", even.Data(), wantEven)
		}
	}
	for i, v := range wantOdd {
		if odd.Data()[i] != v {
			t.Fatalf("odd sub = %v, want %v", odd.Data(), wantOdd)
		}
	}
}

func TestDecomposeND4D(t *testing.T) {
	// 4 spatial dimensions -> 16 sub-kernels; elements still partition.
	w := tensor.Rand(17, 1, 2, 3, 3, 2, 3)
	subs := DecomposeND(w, 4)
	if len(subs) != 16 {
		t.Fatalf("expected 16 sub-kernels, got %d", len(subs))
	}
	var total int
	for _, s := range subs {
		if s != nil {
			total += s.Len()
		}
	}
	if total != w.Len() {
		t.Fatalf("elements not partitioned: %d vs %d", total, w.Len())
	}
}

func TestDecomposeNDBadArgsPanics(t *testing.T) {
	w := tensor.Rand(1, 2, 3, 3)
	for _, dims := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spatialDims=%d should panic", dims)
				}
			}()
			DecomposeND(w, dims)
		}()
	}
}

// Property: for any kernel shape, the ND decomposition partitions both the
// element count and the element sum.
func TestQuickDecomposeNDPartition(t *testing.T) {
	f := func(seed int64, k1Raw, k2Raw, k3Raw uint8) bool {
		k1 := int(k1Raw)%4 + 1
		k2 := int(k2Raw)%4 + 1
		k3 := int(k3Raw)%4 + 1
		w := tensor.Rand(seed, 2, 2, k1, k2, k3)
		subs := DecomposeND(w, 3)
		var total int
		var sum float64
		for _, s := range subs {
			if s == nil {
				continue
			}
			total += s.Len()
			sum += s.Sum()
		}
		return total == w.Len() && abs(sum-w.Sum()) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
