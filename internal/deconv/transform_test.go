package deconv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"asv/internal/nn"
	"asv/internal/tensor"
)

func TestDecompose2DShapesFor3x3(t *testing.T) {
	w := tensor.Rand(1, 2, 3, 3, 3)
	subs := Decompose2D(w)
	// Paper Sec. 4.1: a 3x3 kernel yields sub-kernels 2x2, 1x2, 2x1, 1x1.
	wantH := []int{2, 1, 2, 1}
	wantW := []int{2, 2, 1, 1}
	for k, s := range subs {
		if s == nil {
			t.Fatalf("sub-kernel %d is nil", k)
		}
		if s.Dim(2) != wantH[k] || s.Dim(3) != wantW[k] {
			t.Fatalf("sub %d shape %dx%d, want %dx%d", k, s.Dim(2), s.Dim(3), wantH[k], wantW[k])
		}
	}
}

func TestDecompose2DValuesFor3x3(t *testing.T) {
	// Kernel a..i = 1..9 laid out row-major; check the exact Fig. 6 split:
	// S0 (even,even) = [a c; g i], S1 = [d f], S2 = [b; h], S3 = [e].
	w := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	subs := Decompose2D(w)
	check := func(s *tensor.Tensor, want []float32) {
		t.Helper()
		for i, v := range want {
			if s.Data()[i] != v {
				t.Fatalf("sub data %v, want %v", s.Data(), want)
			}
		}
	}
	check(subs[0], []float32{1, 3, 7, 9}) // a c g i
	check(subs[1], []float32{4, 6})       // d f
	check(subs[2], []float32{2, 8})       // b h
	check(subs[3], []float32{5})          // e
}

func TestDecomposePartitionsKernel(t *testing.T) {
	// Every original kernel element appears in exactly one sub-kernel.
	f := func(seed int64, khRaw, kwRaw uint8) bool {
		kh := int(khRaw)%5 + 1
		kw := int(kwRaw)%5 + 1
		w := tensor.Rand(seed, 2, 3, kh, kw)
		subs := Decompose2D(w)
		var total int
		var sum float64
		for _, s := range subs {
			if s == nil {
				continue
			}
			total += s.Len()
			sum += s.Sum()
		}
		return total == w.Len() && math.Abs(sum-w.Sum()) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompose3DPartitionsKernel(t *testing.T) {
	w := tensor.Rand(3, 2, 2, 3, 3, 3)
	subs := Decompose3D(w)
	var total int
	for _, s := range subs {
		if s == nil {
			continue
		}
		total += s.Len()
	}
	if total != w.Len() {
		t.Fatalf("sub-kernels hold %d elements, kernel has %d", total, w.Len())
	}
}

func TestDecompose1x1HasEmptySubs(t *testing.T) {
	w := tensor.Rand(1, 1, 1, 1, 1)
	subs := Decompose2D(w)
	if subs[0] == nil || subs[1] != nil || subs[2] != nil || subs[3] != nil {
		t.Fatal("1x1 kernel should decompose into a single 1x1 sub-kernel")
	}
}

// The central correctness claim of Sec. 4.1: the transformed execution is
// bit-for-bit the same ofmap as the standard (sparse) deconvolution.
func TestTransformed2DEqualsReference(t *testing.T) {
	f := func(seed int64, hRaw, kRaw, pRaw uint8) bool {
		h := int(hRaw)%6 + 2 // 2..7
		k := int(kRaw)%5 + 1 // 1..5
		p := int(pRaw) % (k + 1)
		if tensor.DeconvOut(h, k, 2, p) <= 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		in := tensor.RandFill(tensor.New(3, h, h), rng)
		w := tensor.RandFill(tensor.New(2, 3, k, k), rng)
		ref := tensor.Deconv2D(in, w, 2, p)
		got := Transformed2D(in, w, p)
		return tensor.MaxAbsDiff(ref, got) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformed3DEqualsReference(t *testing.T) {
	f := func(seed int64, hRaw, kRaw uint8) bool {
		h := int(hRaw)%3 + 2 // 2..4
		k := int(kRaw)%3 + 2 // 2..4
		p := 1
		if tensor.DeconvOut(h, k, 2, p) <= 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		in := tensor.RandFill(tensor.New(2, h, h, h), rng)
		w := tensor.RandFill(tensor.New(2, 2, k, k, k), rng)
		ref := tensor.Deconv3D(in, w, 2, p)
		got := Transformed3D(in, w, p)
		return tensor.MaxAbsDiff(ref, got) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformConvIsIdentity(t *testing.T) {
	l := nn.Layer{Name: "c", Kind: nn.KindConv, InC: 8, InD: 1, InH: 16, InW: 16,
		OutC: 4, KD: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	subs := Transform(l)
	if len(subs) != 1 {
		t.Fatalf("conv transformed into %d sub-layers", len(subs))
	}
	if EffectiveMACs(l) != l.MACs() {
		t.Fatal("conv effective MACs should equal naive MACs")
	}
}

func deconv2DLayer(inC, inH, inW, outC, k int) nn.Layer {
	return nn.Layer{Name: "d", Kind: nn.KindDeconv, InC: inC, InD: 1,
		InH: inH, InW: inW, OutC: outC, KD: 1, KH: k, KW: k,
		Stride: 2, Pad: k - 1 - 1} // transposed pad 1
}

func TestTransformDeconv2DSubLayerCount(t *testing.T) {
	subs := Transform(deconv2DLayer(8, 16, 16, 4, 4))
	if len(subs) != 4 {
		t.Fatalf("2-D deconv should yield 4 sub-layers, got %d", len(subs))
	}
}

func TestTransformDeconv3DSubLayerCount(t *testing.T) {
	l := nn.Layer{Name: "d3", Kind: nn.KindDeconv, InC: 8, InD: 8, InH: 16, InW: 16,
		OutC: 4, KD: 3, KH: 3, KW: 3, Stride: 2, Pad: 1}
	subs := Transform(l)
	if len(subs) != 8 {
		t.Fatalf("3-D deconv should yield 8 sub-layers, got %d", len(subs))
	}
}

func TestGatherCoversOfmapExactlyOnce(t *testing.T) {
	l := deconv2DLayer(8, 17, 13, 4, 4)
	_, oh, ow := l.OutDims()
	var positions int64
	for _, s := range Transform(l) {
		positions += s.OutElemsPerFilter()
	}
	if positions != int64(oh)*int64(ow) {
		t.Fatalf("sub-layers cover %d positions, ofmap has %d", positions, int64(oh)*int64(ow))
	}
}

func TestSubKernelTapsPartitionKernel(t *testing.T) {
	l := deconv2DLayer(8, 16, 16, 4, 5)
	var taps int64
	for _, s := range Transform(l) {
		taps += s.Taps()
	}
	if taps != int64(l.KH*l.KW) {
		t.Fatalf("sub-kernel taps sum to %d, kernel has %d", taps, l.KH*l.KW)
	}
}

func TestRedundancyRatio2DApproaches75(t *testing.T) {
	l := deconv2DLayer(16, 64, 64, 16, 4)
	r := RedundancyRatio(l)
	if r < 0.70 || r > 0.80 {
		t.Fatalf("2-D stride-2 redundancy = %.1f%%, want ~75%%", 100*r)
	}
}

func TestRedundancyRatio3DApproaches87(t *testing.T) {
	l := nn.Layer{Name: "d3", Kind: nn.KindDeconv, InC: 16, InD: 32, InH: 32, InW: 32,
		OutC: 16, KD: 3, KH: 3, KW: 3, Stride: 2, Pad: 1}
	r := RedundancyRatio(l)
	if r < 0.82 || r > 0.92 {
		t.Fatalf("3-D stride-2 redundancy = %.1f%%, want ~87.5%%", 100*r)
	}
}

func TestNetworkEffectiveMACsShrink(t *testing.T) {
	for _, n := range nn.StereoZoo(270, 480) {
		eff := NetworkEffectiveMACs(n)
		naive := n.TotalMACs()
		if eff >= naive {
			t.Fatalf("%s: transformation did not reduce MACs (%d >= %d)", n.Name, eff, naive)
		}
		// Only deconv layers shrink, so the reduction equals the deconv
		// redundancy share.
		savings := float64(naive-eff) / float64(naive)
		if savings < 0.1 {
			t.Fatalf("%s: savings %.1f%% too small", n.Name, 100*savings)
		}
	}
}

// Property: effective MACs are invariant to which valid transposed padding
// is used, per unit ofmap element (sanity of the position accounting).
func TestQuickEffectiveMACsPositive(t *testing.T) {
	f := func(kRaw, hRaw uint8) bool {
		k := int(kRaw)%4 + 2
		h := int(hRaw)%14 + 4
		l := deconv2DLayer(4, h, h, 4, k)
		if l.Pad < 0 {
			return true
		}
		eff := EffectiveMACs(l)
		return eff > 0 && eff < l.MACs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
