package nn

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestLayerOutDimsConv(t *testing.T) {
	l := Layer{Name: "c", Kind: KindConv, InC: 3, InD: 1, InH: 540, InW: 960,
		OutC: 64, KD: 1, KH: 7, KW: 7, Stride: 2, Pad: 3}
	d, h, w := l.OutDims()
	if d != 1 || h != 270 || w != 480 {
		t.Fatalf("OutDims = %d,%d,%d", d, h, w)
	}
}

func TestLayerMACsHandComputed(t *testing.T) {
	// 1x4x4 input, 2 filters of 1x3x3, stride 1 pad 1 -> out 2x4x4.
	l := Layer{Name: "c", Kind: KindConv, InC: 1, InD: 1, InH: 4, InW: 4,
		OutC: 2, KD: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if got := l.MACs(); got != 2*4*4*9 {
		t.Fatalf("MACs = %d, want %d", got, 2*4*4*9)
	}
}

func TestDeconvLayerCountsZeros(t *testing.T) {
	// A stride-2 deconvolution's naive MACs are computed over the upsampled
	// (mostly zero) input: out elems × inC × k².
	l := Layer{Name: "d", Kind: KindDeconv, InC: 8, InD: 1, InH: 10, InW: 10,
		OutC: 4, KD: 1, KH: 4, KW: 4, Stride: 2, Pad: 2} // transposed pad 1
	_, oh, ow := l.OutDims()
	if oh != 20 || ow != 20 {
		t.Fatalf("deconv out %dx%d, want 20x20", oh, ow)
	}
	if l.MACs() != int64(4*20*20*8*16) {
		t.Fatalf("deconv naive MACs = %d", l.MACs())
	}
}

func TestBuilderChainsShapes(t *testing.T) {
	b := NewBuilder("t", 3, 64, 64)
	b.Conv("c1", StageFE, 16, 3, 2, 1)
	c, d, h, w := b.Dims()
	if c != 16 || d != 1 || h != 32 || w != 32 {
		t.Fatalf("dims after conv = %d,%d,%d,%d", c, d, h, w)
	}
	b.Deconv("d1", StageDR, 8, 4, 2, 1)
	c, _, h, w = b.Dims()
	if c != 8 || h != 64 || w != 64 {
		t.Fatalf("dims after deconv = %d,%d,%d", c, h, w)
	}
}

func TestBuilderConv3RequiresReseed3(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("t", 3, 8, 8).Conv3("c", StageMO, 4, 3, 1, 1)
}

func TestFCLayer(t *testing.T) {
	b := NewBuilder("t", 100, 1, 1)
	b.FC("fc", StageOther, 4096)
	n := b.Build()
	if n.Layers[0].MACs() != 100*4096 {
		t.Fatalf("FC MACs = %d", n.Layers[0].MACs())
	}
}

func TestStereoZooBuildsAndValidates(t *testing.T) {
	for _, n := range StereoZoo(QHDH, QHDW) {
		if len(n.Layers) == 0 {
			t.Fatalf("%s has no layers", n.Name)
		}
		n.Validate()
		if n.TotalMACs() <= 0 {
			t.Fatalf("%s has non-positive MACs", n.Name)
		}
	}
}

func TestStereoZooNames(t *testing.T) {
	want := []string{"FlowNetC", "DispNet", "GC-Net", "PSMNet"}
	zoo := StereoZoo(QHDH, QHDW)
	for i, n := range zoo {
		if n.Name != want[i] {
			t.Fatalf("zoo[%d] = %s, want %s", i, n.Name, want[i])
		}
	}
}

// Fig. 3's headline numbers: deconvolution contributes ~38% of MACs on
// average (50% max), and conv+deconv dominate.
func TestFig3DeconvShare(t *testing.T) {
	zoo := StereoZoo(QHDH, QHDW)
	var sum float64
	for _, n := range zoo {
		share := n.DeconvShare()
		if share <= 0.05 || share >= 0.75 {
			t.Errorf("%s deconv share = %.1f%%, implausible", n.Name, 100*share)
		}
		sum += share
	}
	avg := sum / float64(len(zoo))
	if avg < 0.20 || avg > 0.55 {
		t.Fatalf("average deconv share = %.1f%%, want roughly 38%%", 100*avg)
	}
}

// 3-D networks should be far more expensive and more deconv-heavy than the
// 2-D ones (paper Sec. 7.3 explains their larger gains).
func TestStereoZooCostOrdering(t *testing.T) {
	zoo := StereoZoo(QHDH, QHDW)
	byName := map[string]*Network{}
	for _, n := range zoo {
		byName[n.Name] = n
	}
	if byName["GC-Net"].TotalMACs() <= byName["DispNet"].TotalMACs() {
		t.Fatal("GC-Net (3-D volume) should out-cost DispNet")
	}
	if byName["PSMNet"].TotalMACs() <= byName["FlowNetC"].TotalMACs() {
		t.Fatal("PSMNet should out-cost FlowNetC")
	}
}

func TestStereoDNNvsClassicGap(t *testing.T) {
	// Paper Sec. 3.3: stereo DNN inference needs 10^2–10^4 x the ~87 MOps of
	// a non-key frame.
	for _, n := range StereoZoo(QHDH, QHDW) {
		ratio := float64(n.TotalMACs()) / 87e6
		if ratio < 100 || ratio > 5e5 {
			t.Errorf("%s / non-key ratio = %.0fx, want within 10^2–10^4 band (x5 slack)", n.Name, ratio)
		}
	}
}

func TestMACsByStagePartition(t *testing.T) {
	for _, n := range StereoZoo(270, 480) {
		m := n.MACsByStage()
		var sum int64
		for _, v := range m {
			sum += v
		}
		if sum != n.TotalMACs() {
			t.Fatalf("%s: stage MACs don't partition the total", n.Name)
		}
		if m[StageDR] == 0 {
			t.Fatalf("%s: no DR-stage cost", n.Name)
		}
	}
}

func TestGANZooBuilds(t *testing.T) {
	zoo := GANZoo()
	if len(zoo) != 6 {
		t.Fatalf("GAN zoo size = %d, want 6", len(zoo))
	}
	for _, n := range zoo {
		n.Validate()
		if n.DeconvMACs() == 0 {
			t.Fatalf("%s has no deconvolution cost", n.Name)
		}
		// Every GANNX network is deconv-dominated.
		if n.DeconvShare() < 0.5 {
			t.Errorf("%s deconv share = %.1f%%, want > 50%%", n.Name, 100*n.DeconvShare())
		}
	}
}

func Test3DGANUses3DDeconvs(t *testing.T) {
	var found bool
	for _, l := range ThreeDGAN().Layers {
		if l.Kind == KindDeconv && l.Is3D() {
			found = true
		}
	}
	if !found {
		t.Fatal("3D-GAN must contain 3-D deconvolutions")
	}
}

func TestLayerValidatePanics(t *testing.T) {
	bad := Layer{Name: "x", Kind: KindConv, InC: 0, InD: 1, InH: 4, InW: 4,
		OutC: 1, KD: 1, KH: 1, KW: 1, Stride: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad.Validate()
}

// Property: MACs scale linearly with the number of output filters.
func TestQuickMACsLinearInFilters(t *testing.T) {
	f := func(cRaw, fRaw uint8) bool {
		c := int(cRaw)%16 + 1
		fo := int(fRaw)%16 + 1
		l := Layer{Name: "p", Kind: KindConv, InC: c, InD: 1, InH: 16, InW: 16,
			OutC: fo, KD: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
		l2 := l
		l2.OutC = 2 * fo
		return l2.MACs() == 2*l.MACs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: halving resolution reduces a conv layer's MACs ~4x.
func TestQuickMACsQuadraticInResolution(t *testing.T) {
	f := func(hRaw uint8) bool {
		h := (int(hRaw)%16 + 4) * 4
		l := Layer{Name: "p", Kind: KindConv, InC: 8, InD: 1, InH: h, InW: h,
			OutC: 8, KD: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
		l2 := l
		l2.InH, l2.InW = h/2, h/2
		r := float64(l.MACs()) / float64(l2.MACs())
		return r > 3.4 && r < 4.7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkSummaryAndParams(t *testing.T) {
	n := DCGAN()
	if n.Params() <= 0 || n.ActivationElems() <= 0 {
		t.Fatal("parameter/activation accounting broken")
	}
	s := n.Summary()
	if !strings.Contains(s, "DCGAN") || !strings.Contains(s, "deconv1") {
		t.Fatalf("summary missing content:\n%s", s)
	}
	// DCGAN generator has ~3.5M params in this configuration.
	if n.Params() < 1e6 || n.Params() > 50e6 {
		t.Fatalf("DCGAN params = %d, implausible", n.Params())
	}
}

func TestNetworkJSONRoundTrip(t *testing.T) {
	n := DispNet(135, 240)
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var back Network
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != n.Name || len(back.Layers) != len(n.Layers) {
		t.Fatal("JSON round trip lost structure")
	}
	if back.TotalMACs() != n.TotalMACs() {
		t.Fatal("JSON round trip changed MAC accounting")
	}
}
