package nn

// The stereo-DNN zoo. Layer lists follow the published architectures
// (FlowNetC: Fischer et al. 2015; DispNet: Mayer et al. 2016; GC-Net:
// Kendall et al. 2017; PSMNet: Chang & Chen 2018) with shared-weight
// feature towers expanded into their per-image cost. Spatial sizes are
// parameterized by the input resolution; the paper evaluates at qHD
// (960×540).

// QHDW and QHDH are the evaluation resolution (paper Sec. 3.3).
const (
	QHDW = 960
	QHDH = 540
)

// StereoZoo returns the four stereo networks at the given input resolution.
func StereoZoo(h, w int) []*Network {
	return []*Network{
		FlowNetC(h, w),
		DispNet(h, w),
		GCNet(h, w),
		PSMNet(h, w),
	}
}

// FlowNetC builds the correlation-based FlowNet at the given resolution:
// twin convolutional feature towers (FE), a correlation volume processed by
// a deep encoder (MO), and a deconvolutional refinement decoder (DR).
func FlowNetC(h, w int) *Network {
	b := NewBuilder("FlowNetC", 3, h, w)
	// Feature towers: conv1..conv3 run once per image.
	for _, img := range []string{"a", "b"} {
		b.Reseed(3, h, w)
		b.Conv("conv1"+img, StageFE, 64, 7, 2, 3)
		b.Conv("conv2"+img, StageFE, 128, 5, 2, 2)
		b.Conv("conv3"+img, StageFE, 256, 5, 2, 2)
	}
	_, _, h8, w8 := b.Dims()
	// Correlation output (441 displacement channels) + redirected features.
	b.Reseed(256, h8, w8)
	b.Conv("conv_redir", StageMO, 32, 1, 1, 0)
	b.Reseed(441+32, h8, w8)
	b.Conv("conv3_1", StageMO, 256, 3, 1, 1)
	b.Conv("conv4", StageMO, 512, 3, 2, 1)
	b.Conv("conv4_1", StageMO, 512, 3, 1, 1)
	b.Conv("conv5", StageMO, 512, 3, 2, 1)
	b.Conv("conv5_1", StageMO, 512, 3, 1, 1)
	b.Conv("conv6", StageMO, 1024, 3, 2, 1)
	b.Conv("conv6_1", StageMO, 1024, 3, 1, 1)
	_, _, h64, w64 := b.Dims()

	// Refinement decoder: deconv + flow prediction at each scale, with skip
	// concatenations reflected in the input channel counts.
	b.Reseed(1024, h64, w64)
	b.Conv("predict_flow6", StageDR, 2, 3, 1, 1)
	b.Reseed(1024, h64, w64)
	b.Deconv("deconv5", StageDR, 512, 4, 2, 1)
	_, _, h32, w32 := b.Dims()
	b.Reseed(512+512+2, h32, w32)
	b.Conv("predict_flow5", StageDR, 2, 3, 1, 1)
	b.Reseed(512+512+2, h32, w32)
	b.Deconv("deconv4", StageDR, 256, 4, 2, 1)
	_, _, h16, w16 := b.Dims()
	b.Reseed(256+512+2, h16, w16)
	b.Conv("predict_flow4", StageDR, 2, 3, 1, 1)
	b.Reseed(256+512+2, h16, w16)
	b.Deconv("deconv3", StageDR, 128, 4, 2, 1)
	_, _, hh8, ww8 := b.Dims()
	b.Reseed(128+256+2, hh8, ww8)
	b.Conv("predict_flow3", StageDR, 2, 3, 1, 1)
	b.Reseed(128+256+2, hh8, ww8)
	b.Deconv("deconv2", StageDR, 64, 4, 2, 1)
	_, _, h4, w4 := b.Dims()
	b.Reseed(64+128+2, h4, w4)
	b.Conv("predict_flow2", StageDR, 2, 3, 1, 1)
	return b.Build()
}

// DispNet builds the encoder/decoder disparity network over a concatenated
// stereo pair.
func DispNet(h, w int) *Network {
	b := NewBuilder("DispNet", 6, h, w)
	b.Conv("conv1", StageFE, 64, 7, 2, 3)
	b.Conv("conv2", StageFE, 128, 5, 2, 2)
	b.Conv("conv3a", StageMO, 256, 5, 2, 2)
	b.Conv("conv3b", StageMO, 256, 3, 1, 1)
	b.Conv("conv4a", StageMO, 512, 3, 2, 1)
	b.Conv("conv4b", StageMO, 512, 3, 1, 1)
	b.Conv("conv5a", StageMO, 512, 3, 2, 1)
	b.Conv("conv5b", StageMO, 512, 3, 1, 1)
	b.Conv("conv6a", StageMO, 1024, 3, 2, 1)
	b.Conv("conv6b", StageMO, 1024, 3, 1, 1)

	type up struct {
		deconv string
		outC   int
		skipC  int
		iconv  string
	}
	ups := []up{
		{"deconv5", 512, 512, "iconv5"},
		{"deconv4", 256, 512, "iconv4"},
		{"deconv3", 128, 256, "iconv3"},
		{"deconv2", 64, 128, "iconv2"},
		{"deconv1", 32, 64, "iconv1"},
	}
	for _, u := range ups {
		b.Deconv(u.deconv, StageDR, u.outC, 4, 2, 1)
		_, _, hh, ww := b.Dims()
		b.Reseed(u.outC+u.skipC+1, hh, ww) // skip + upsampled prediction
		b.Conv(u.iconv, StageDR, u.outC, 3, 1, 1)
	}
	b.Conv("pr", StageDR, 1, 3, 1, 1)
	return b.Build()
}

// gcNetMaxDisp is the disparity range of the 3-D cost volumes (the
// published GC-Net/PSMNet configuration).
const gcNetMaxDisp = 192

// GCNet builds the 3-D cost-volume network: a residual 2-D feature tower,
// a D/2-deep concatenation cost volume, a multi-scale 3-D conv encoder, and
// a chain of 3-D deconvolutions back to full resolution.
func GCNet(h, w int) *Network {
	b := NewBuilder("GC-Net", 3, h, w)
	// 2-D features, run once per image.
	for _, img := range []string{"a", "b"} {
		b.Reseed(3, h, w)
		b.Conv("conv1"+img, StageFE, 32, 5, 2, 2)
		for i := 0; i < 8; i++ {
			b.Conv(resName("res", i, "a", img), StageFE, 32, 3, 1, 1)
			b.Conv(resName("res", i, "b", img), StageFE, 32, 3, 1, 1)
		}
		b.Conv("conv18"+img, StageFE, 32, 3, 1, 1)
	}
	_, _, h2, w2 := b.Dims()
	d2 := gcNetMaxDisp / 2

	// Cost volume: 64 channels × D/2 × H/2 × W/2.
	b.Reseed3(64, d2, h2, w2)
	b.Conv3("3dconv19", StageMO, 32, 3, 1, 1)
	b.Conv3("3dconv20", StageMO, 32, 3, 1, 1)
	// Encoder: four downsampling stages.
	chans := []int{64, 64, 64, 128}
	for i, c := range chans {
		b.Conv3(resName("3ddown", i, "s2", ""), StageMO, c, 3, 2, 1)
		b.Conv3(resName("3ddown", i, "a", ""), StageMO, c, 3, 1, 1)
		b.Conv3(resName("3ddown", i, "b", ""), StageMO, c, 3, 1, 1)
	}
	// Decoder: 3-D deconvolutions (additive skips keep channel counts).
	b.Deconv3("3ddeconv1", StageDR, 64, 3, 2, 1)
	b.Deconv3("3ddeconv2", StageDR, 64, 3, 2, 1)
	b.Deconv3("3ddeconv3", StageDR, 64, 3, 2, 1)
	b.Deconv3("3ddeconv4", StageDR, 32, 3, 2, 1)
	b.Deconv3("3ddeconv5", StageDR, 1, 3, 2, 1)
	return b.Build()
}

// PSMNet builds the pyramid stereo matching network: a deep shared feature
// tower with SPP, a D/4 cost volume, and three stacked 3-D hourglasses
// whose upsampling halves are 3-D deconvolutions.
func PSMNet(h, w int) *Network {
	b := NewBuilder("PSMNet", 3, h, w)
	for _, img := range []string{"a", "b"} {
		b.Reseed(3, h, w)
		b.Conv("conv0_1"+img, StageFE, 32, 3, 2, 1)
		b.Conv("conv0_2"+img, StageFE, 32, 3, 1, 1)
		b.Conv("conv0_3"+img, StageFE, 32, 3, 1, 1)
		for i := 0; i < 3; i++ { // layer1: 3 residual blocks @32
			b.Conv(resName("l1", i, "a", img), StageFE, 32, 3, 1, 1)
			b.Conv(resName("l1", i, "b", img), StageFE, 32, 3, 1, 1)
		}
		b.Conv("l2_down"+img, StageFE, 64, 3, 2, 1)
		for i := 0; i < 16; i++ { // layer2: 16 residual blocks @64
			b.Conv(resName("l2", i, "a", img), StageFE, 64, 3, 1, 1)
			b.Conv(resName("l2", i, "b", img), StageFE, 64, 3, 1, 1)
		}
		for i := 0; i < 6; i++ { // layer3+4: dilated blocks @128
			b.Conv(resName("l34", i, "a", img), StageFE, 128, 3, 1, 1)
			b.Conv(resName("l34", i, "b", img), StageFE, 128, 3, 1, 1)
		}
		// SPP branches fused back to 32 channels.
		_, _, h4, w4 := b.Dims()
		b.Reseed(320, h4, w4)
		b.Conv("spp_fuse1"+img, StageFE, 128, 3, 1, 1)
		b.Conv("spp_fuse2"+img, StageFE, 32, 1, 1, 0)
	}
	_, _, h4, w4 := b.Dims()
	d4 := gcNetMaxDisp / 4

	b.Reseed3(64, d4, h4, w4)
	b.Conv3("dres0_a", StageMO, 32, 3, 1, 1)
	b.Conv3("dres0_b", StageMO, 32, 3, 1, 1)
	b.Conv3("dres1_a", StageMO, 32, 3, 1, 1)
	b.Conv3("dres1_b", StageMO, 32, 3, 1, 1)
	for hg := 0; hg < 3; hg++ {
		b.Conv3(resName("hg", hg, "down1", ""), StageMO, 64, 3, 2, 1)
		b.Conv3(resName("hg", hg, "c1", ""), StageMO, 64, 3, 1, 1)
		b.Conv3(resName("hg", hg, "down2", ""), StageMO, 64, 3, 2, 1)
		b.Conv3(resName("hg", hg, "c2", ""), StageMO, 64, 3, 1, 1)
		b.Deconv3(resName("hg", hg, "up1", ""), StageDR, 64, 3, 2, 1)
		b.Deconv3(resName("hg", hg, "up2", ""), StageDR, 32, 3, 2, 1)
		// Each hourglass returns (via its additive skips) to the cost-volume
		// resolution before the next one starts.
		b.Reseed3(32, d4, h4, w4)
	}
	b.Conv3("classif_a", StageDR, 32, 3, 1, 1)
	b.Conv3("classif_b", StageDR, 1, 3, 1, 1)
	return b.Build()
}

func resName(prefix string, i int, tag, img string) string {
	s := prefix
	if i >= 0 {
		s += string(rune('0' + i%10))
	}
	if tag != "" {
		s += "_" + tag
	}
	if img != "" {
		s += img
	}
	return s
}
