package nn

import "fmt"

// Builder assembles a Network layer by layer, tracking the current
// feature-map shape so each call only states what changes. Shape jumps
// (cost-volume construction, skip concatenations) are expressed with Reseed.
type Builder struct {
	name       string
	c, d, h, w int
	layers     []Layer
}

// NewBuilder starts a network whose first layer consumes a c×h×w input.
func NewBuilder(name string, c, h, w int) *Builder {
	return &Builder{name: name, c: c, d: 1, h: h, w: w}
}

// Reseed overrides the current feature-map shape (2-D form).
func (b *Builder) Reseed(c, h, w int) *Builder {
	b.c, b.d, b.h, b.w = c, 1, h, w
	return b
}

// Reseed3 overrides the current feature-map shape (3-D form).
func (b *Builder) Reseed3(c, d, h, w int) *Builder {
	b.c, b.d, b.h, b.w = c, d, h, w
	return b
}

// Dims returns the current feature-map shape (c, d, h, w).
func (b *Builder) Dims() (c, d, h, w int) { return b.c, b.d, b.h, b.w }

func (b *Builder) push(l Layer) *Builder {
	l.Validate()
	b.layers = append(b.layers, l)
	od, oh, ow := l.OutDims()
	b.c, b.d, b.h, b.w = l.OutC, od, oh, ow
	return b
}

// Conv appends a 2-D convolution.
func (b *Builder) Conv(name string, stage Stage, outC, k, stride, pad int) *Builder {
	return b.push(Layer{
		Name: name, Kind: KindConv, Stage: stage,
		InC: b.c, InD: 1, InH: b.h, InW: b.w,
		OutC: outC, KD: 1, KH: k, KW: k, Stride: stride, Pad: pad,
	})
}

// Deconv appends a 2-D deconvolution. pad is in the transposed-convolution
// convention (the builder converts to upsampled-border padding).
func (b *Builder) Deconv(name string, stage Stage, outC, k, stride, pad int) *Builder {
	return b.push(Layer{
		Name: name, Kind: KindDeconv, Stage: stage,
		InC: b.c, InD: 1, InH: b.h, InW: b.w,
		OutC: outC, KD: 1, KH: k, KW: k, Stride: stride, Pad: k - 1 - pad,
	})
}

// Conv3 appends a 3-D convolution.
func (b *Builder) Conv3(name string, stage Stage, outC, k, stride, pad int) *Builder {
	if b.d == 1 {
		panic(fmt.Sprintf("nn: Conv3 %q on a 2-D feature map; Reseed3 first", name))
	}
	return b.push(Layer{
		Name: name, Kind: KindConv, Stage: stage,
		InC: b.c, InD: b.d, InH: b.h, InW: b.w,
		OutC: outC, KD: k, KH: k, KW: k, Stride: stride, Pad: pad,
	})
}

// Deconv3 appends a 3-D deconvolution (transposed-convolution padding).
func (b *Builder) Deconv3(name string, stage Stage, outC, k, stride, pad int) *Builder {
	if b.d == 1 {
		panic(fmt.Sprintf("nn: Deconv3 %q on a 2-D feature map; Reseed3 first", name))
	}
	return b.push(Layer{
		Name: name, Kind: KindDeconv, Stage: stage,
		InC: b.c, InD: b.d, InH: b.h, InW: b.w,
		OutC: outC, KD: k, KH: k, KW: k, Stride: stride, Pad: k - 1 - pad,
	})
}

// FC appends a fully connected layer from the flattened current shape.
func (b *Builder) FC(name string, stage Stage, out int) *Builder {
	return b.push(Layer{
		Name: name, Kind: KindFC, Stage: stage,
		InC: b.c * b.d * b.h * b.w, InD: 1, InH: 1, InW: 1,
		OutC: out, KD: 1, KH: 1, KW: 1, Stride: 1, Pad: 0,
	})
}

// Build finalizes the network.
func (b *Builder) Build() *Network {
	n := &Network{Name: b.name, Layers: b.layers}
	n.Validate()
	return n
}
