package nn

// The GAN zoo used for the generality study (paper Sec. 7.6, Fig. 14):
// the six generators evaluated by GANNX. All are deconvolution-heavy;
// 3D-GAN additionally exercises the 3-D transformation path.

// GANZoo returns the six generator networks of the GANNX comparison.
func GANZoo() []*Network {
	return []*Network{
		DCGAN(),
		GPGAN(),
		ArtGAN(),
		MAGAN(),
		ThreeDGAN(),
		DiscoGAN(),
	}
}

// DCGAN is the canonical deep-convolutional GAN generator:
// z → 4×4×1024 → four stride-2 deconvolutions → 64×64×3.
func DCGAN() *Network {
	b := NewBuilder("DCGAN", 100, 1, 1)
	b.FC("project", StageOther, 1024*4*4)
	b.Reseed(1024, 4, 4)
	b.Deconv("deconv1", StageOther, 512, 4, 2, 1)
	b.Deconv("deconv2", StageOther, 256, 4, 2, 1)
	b.Deconv("deconv3", StageOther, 128, 4, 2, 1)
	b.Deconv("deconv4", StageOther, 3, 4, 2, 1)
	return b.Build()
}

// GPGAN is the Gaussian-Poisson GAN blending generator: an encoder tower
// feeding a fully deconvolutional decoder.
func GPGAN() *Network {
	b := NewBuilder("GP-GAN", 3, 64, 64)
	b.Conv("enc1", StageOther, 64, 4, 2, 1)
	b.Conv("enc2", StageOther, 128, 4, 2, 1)
	b.Conv("enc3", StageOther, 256, 4, 2, 1)
	b.Conv("enc4", StageOther, 512, 4, 2, 1)
	b.FC("bottleneck", StageOther, 4000)
	b.Reseed(1000, 2, 2)
	b.Deconv("dec0", StageOther, 512, 4, 2, 1)
	b.Deconv("dec1", StageOther, 256, 4, 2, 1)
	b.Deconv("dec2", StageOther, 128, 4, 2, 1)
	b.Deconv("dec3", StageOther, 64, 4, 2, 1)
	b.Deconv("dec4", StageOther, 3, 4, 2, 1)
	return b.Build()
}

// ArtGAN is the label-conditioned art generator (64×64 output).
func ArtGAN() *Network {
	b := NewBuilder("ArtGAN", 110, 1, 1)
	b.FC("project", StageOther, 1024*4*4)
	b.Reseed(1024, 4, 4)
	b.Deconv("deconv1", StageOther, 512, 4, 2, 1)
	b.Deconv("deconv2", StageOther, 256, 4, 2, 1)
	b.Deconv("deconv3", StageOther, 128, 4, 2, 1)
	b.Conv("refine1", StageOther, 128, 3, 1, 1)
	b.Deconv("deconv4", StageOther, 3, 4, 2, 1)
	return b.Build()
}

// MAGAN is the margin-adaptation GAN generator (DCGAN-class topology with a
// wider first stage).
func MAGAN() *Network {
	b := NewBuilder("MAGAN", 100, 1, 1)
	b.FC("project", StageOther, 2048*4*4)
	b.Reseed(2048, 4, 4)
	b.Deconv("deconv1", StageOther, 1024, 4, 2, 1)
	b.Deconv("deconv2", StageOther, 512, 4, 2, 1)
	b.Deconv("deconv3", StageOther, 256, 4, 2, 1)
	b.Deconv("deconv4", StageOther, 3, 4, 2, 1)
	return b.Build()
}

// ThreeDGAN is the volumetric-shape generator: four 3-D deconvolutions from
// a 4³ seed to a 64³ occupancy grid. Its 3-D kernels hit the 8-sub-kernel
// transformation path.
func ThreeDGAN() *Network {
	b := NewBuilder("3D-GAN", 200, 1, 1)
	b.FC("project", StageOther, 512*4*4*4)
	b.Reseed3(512, 4, 4, 4)
	b.Deconv3("deconv1", StageOther, 256, 4, 2, 1)
	b.Deconv3("deconv2", StageOther, 128, 4, 2, 1)
	b.Deconv3("deconv3", StageOther, 64, 4, 2, 1)
	b.Deconv3("deconv4", StageOther, 1, 4, 2, 1)
	return b.Build()
}

// DiscoGAN is the cross-domain translation generator: a convolutional
// encoder mirrored by a deconvolutional decoder.
func DiscoGAN() *Network {
	b := NewBuilder("DiscoGAN", 3, 64, 64)
	b.Conv("enc1", StageOther, 64, 4, 2, 1)
	b.Conv("enc2", StageOther, 128, 4, 2, 1)
	b.Conv("enc3", StageOther, 256, 4, 2, 1)
	b.Conv("enc4", StageOther, 512, 4, 2, 1)
	b.Deconv("dec1", StageOther, 256, 4, 2, 1)
	b.Deconv("dec2", StageOther, 128, 4, 2, 1)
	b.Deconv("dec3", StageOther, 64, 4, 2, 1)
	b.Deconv("dec4", StageOther, 3, 4, 2, 1)
	return b.Build()
}
