// Package nn provides the layer-level intermediate representation of the
// DNNs evaluated in ASV, plus the network zoo: the four stereo DNNs
// (FlowNetC, DispNet, GC-Net, PSMNet) and the six GANs of the GANNX
// comparison. The IR records exactly what the accelerator models need:
// tensor shapes, kernel shapes, strides and processing-stage tags.
//
// MAC counts for deconvolution layers deliberately follow the *naive*
// execution model (dense convolution over the zero-upsampled input), since
// that is what a conventional accelerator executes; package deconv computes
// the post-transformation effective MACs.
package nn

import (
	"fmt"
	"strings"
)

// Stage tags a layer with its role in the stereo-matching pipeline
// (paper Sec. 2.2); Fig. 3 reports the cost split across these stages.
type Stage int

// Pipeline stages.
const (
	StageFE    Stage = iota // feature extraction
	StageMO                 // matching optimization
	StageDR                 // disparity refinement
	StageOther              // anything else (e.g. GAN layers)
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageFE:
		return "FE"
	case StageMO:
		return "MO"
	case StageDR:
		return "DR"
	default:
		return "Other"
	}
}

// Kind identifies the operator type of a layer.
type Kind int

// Layer kinds.
const (
	KindConv Kind = iota
	KindDeconv
	KindFC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindConv:
		return "conv"
	case KindDeconv:
		return "deconv"
	default:
		return "fc"
	}
}

// Layer is one (de)convolution in the IR. 2-D layers have InD = KD = 1.
// For deconvolution, Pad is the border padding of the upsampled input
// (tensor.TransposedPad converts from the framework convention).
type Layer struct {
	Name  string
	Kind  Kind
	Stage Stage

	InC, InD, InH, InW int // input feature-map shape
	OutC               int // number of filters
	KD, KH, KW         int // kernel shape
	Stride, Pad        int
}

// Is3D reports whether the layer has a depth dimension.
func (l Layer) Is3D() bool { return l.InD > 1 || l.KD > 1 }

// OutDims returns the output feature-map spatial shape (d, h, w).
func (l Layer) OutDims() (d, h, w int) {
	switch l.Kind {
	case KindDeconv:
		return deconvOut(l.InD, l.KD, l.Stride, l.Pad),
			deconvOut(l.InH, l.KH, l.Stride, l.Pad),
			deconvOut(l.InW, l.KW, l.Stride, l.Pad)
	case KindFC:
		return 1, 1, 1
	default:
		return convOut(l.InD, l.KD, l.Stride, l.Pad),
			convOut(l.InH, l.KH, l.Stride, l.Pad),
			convOut(l.InW, l.KW, l.Stride, l.Pad)
	}
}

func convOut(in, k, s, p int) int {
	if in == 1 && k == 1 {
		return 1
	}
	return (in+2*p-k)/s + 1
}

func deconvOut(in, k, s, p int) int {
	if in == 1 && k == 1 {
		return 1
	}
	return (in-1)*s + 1 + 2*p - k + 1
}

// MACs returns the multiply-accumulate count of executing the layer
// naively: for deconvolution this includes the multiplications against the
// inserted zeros (the inefficiency the transformation removes).
func (l Layer) MACs() int64 {
	od, oh, ow := l.OutDims()
	return int64(l.OutC) * int64(od) * int64(oh) * int64(ow) *
		int64(l.InC) * int64(l.KD) * int64(l.KH) * int64(l.KW)
}

// IfmapElems returns the input feature-map element count.
func (l Layer) IfmapElems() int64 {
	return int64(l.InC) * int64(l.InD) * int64(l.InH) * int64(l.InW)
}

// OfmapElems returns the output feature-map element count.
func (l Layer) OfmapElems() int64 {
	od, oh, ow := l.OutDims()
	return int64(l.OutC) * int64(od) * int64(oh) * int64(ow)
}

// WeightElems returns the kernel parameter count.
func (l Layer) WeightElems() int64 {
	return int64(l.OutC) * int64(l.InC) * int64(l.KD) * int64(l.KH) * int64(l.KW)
}

// Validate panics if the layer has inconsistent geometry.
func (l Layer) Validate() {
	if l.InC < 1 || l.OutC < 1 || l.InH < 1 || l.InW < 1 || l.InD < 1 {
		panic(fmt.Sprintf("nn: layer %q has non-positive dims", l.Name))
	}
	if l.KH < 1 || l.KW < 1 || l.KD < 1 || l.Stride < 1 || l.Pad < 0 {
		panic(fmt.Sprintf("nn: layer %q has bad kernel/stride/pad", l.Name))
	}
	d, h, w := l.OutDims()
	if d < 1 || h < 1 || w < 1 {
		panic(fmt.Sprintf("nn: layer %q has non-positive output %dx%dx%d", l.Name, d, h, w))
	}
}

// Network is an ordered list of layers (the layer-wise execution model of
// paper Sec. 4.2).
type Network struct {
	Name   string
	Layers []Layer
}

// TotalMACs sums naive MACs over all layers.
func (n *Network) TotalMACs() int64 {
	var s int64
	for _, l := range n.Layers {
		s += l.MACs()
	}
	return s
}

// DeconvMACs sums naive MACs over deconvolution layers only.
func (n *Network) DeconvMACs() int64 {
	var s int64
	for _, l := range n.Layers {
		if l.Kind == KindDeconv {
			s += l.MACs()
		}
	}
	return s
}

// MACsByStage returns naive MACs grouped by pipeline stage.
func (n *Network) MACsByStage() map[Stage]int64 {
	m := make(map[Stage]int64)
	for _, l := range n.Layers {
		m[l.Stage] += l.MACs()
	}
	return m
}

// DeconvShare returns the fraction of total MACs spent in deconvolution.
func (n *Network) DeconvShare() float64 {
	t := n.TotalMACs()
	if t == 0 {
		return 0
	}
	return float64(n.DeconvMACs()) / float64(t)
}

// Validate checks every layer and that consecutive shapes chain.
func (n *Network) Validate() {
	for i, l := range n.Layers {
		l.Validate()
		if i == 0 {
			continue
		}
		// Chaining is only enforced where the builder linked the layers;
		// networks with skip connections or cost-volume constructions mark
		// breaks by re-seeding dimensions, so nothing to check here.
	}
}

// Params returns the total parameter count of the network.
func (n *Network) Params() int64 {
	var s int64
	for _, l := range n.Layers {
		s += l.WeightElems()
	}
	return s
}

// ActivationElems returns the total output-activation volume across layers,
// a proxy for the inter-layer traffic the scheduler manages.
func (n *Network) ActivationElems() int64 {
	var s int64
	for _, l := range n.Layers {
		s += l.OfmapElems()
	}
	return s
}

// Summary renders a one-line-per-layer description of the network.
func (n *Network) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d layers, %.2f GMACs, %.1f M params\n",
		n.Name, len(n.Layers), float64(n.TotalMACs())/1e9, float64(n.Params())/1e6)
	for _, l := range n.Layers {
		od, oh, ow := l.OutDims()
		fmt.Fprintf(&b, "  %-14s %-6s %-5s in %dx%dx%dx%d k%dx%dx%d/s%d -> %dx%dx%dx%d (%.1f MMACs)\n",
			l.Name, l.Kind.String(), l.Stage.String(),
			l.InC, l.InD, l.InH, l.InW, l.KD, l.KH, l.KW, l.Stride,
			l.OutC, od, oh, ow, float64(l.MACs())/1e6)
	}
	return b.String()
}
