// Package par provides deterministic data parallelism for the pixel
// kernels: work is split by index range across a fixed worker count, so the
// output is bit-identical to a serial run (each index writes only its own
// results).
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

// Workers returns the worker count used by For and ForChunked: the value of
// the ASV_WORKERS environment variable when it parses as a positive integer,
// GOMAXPROCS otherwise. The override pins parallelism on shared CI runners
// and lets benchmarks sweep scaling curves without touching GOMAXPROCS.
func Workers() int {
	if s := os.Getenv("ASV_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) across up to Workers() goroutines.
// fn must not touch state owned by other indices. For small n the call is
// executed inline to avoid goroutine overhead.
func For(n int, fn func(i int)) {
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunked splits [0, n) into one contiguous range per worker and runs
// fn(lo, hi) for each, so row-sliced kernels iterate a plain loop instead of
// paying a closure dispatch per index. fn must not touch state owned by
// other ranges. For small n (or one worker) the single range runs inline.
func ForChunked(n int, fn func(lo, hi int)) {
	workers := Workers()
	if n < 2 || workers < 2 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
