// Package par provides deterministic data parallelism for the pixel
// kernels: work is split by index range across GOMAXPROCS workers, so the
// output is bit-identical to a serial run (each index writes only its own
// results).
package par

import (
	"runtime"
	"sync"
)

// For runs fn(i) for every i in [0, n) across up to GOMAXPROCS goroutines.
// fn must not touch state owned by other indices. For small n the call is
// executed inline to avoid goroutine overhead.
func For(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < 2 || workers < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
