package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		counts := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForIsDeterministicPerIndex(t *testing.T) {
	n := 257
	out := make([]int, n)
	For(n, func(i int) { out[i] = i * i })
	for i := range out {
		if out[i] != i*i {
			t.Fatalf("index %d corrupted: %d", i, out[i])
		}
	}
}

func TestQuickForSum(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)
		var sum int64
		For(n, func(i int) { atomic.AddInt64(&sum, int64(i)) })
		return sum == int64(n)*int64(n-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
