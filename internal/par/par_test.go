package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		counts := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForIsDeterministicPerIndex(t *testing.T) {
	n := 257
	out := make([]int, n)
	For(n, func(i int) { out[i] = i * i })
	for i := range out {
		if out[i] != i*i {
			t.Fatalf("index %d corrupted: %d", i, out[i])
		}
	}
}

func TestQuickForSum(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)
		var sum int64
		For(n, func(i int) { atomic.AddInt64(&sum, int64(i)) })
		return sum == int64(n)*int64(n-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForChunkedCoversDisjointRanges(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 63, 64, 65, 999} {
		counts := make([]int32, n)
		ForChunked(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("n=%d: bad range [%d,%d)", n, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestWorkersRespectsEnvOverride(t *testing.T) {
	t.Setenv("ASV_WORKERS", "3")
	if got := Workers(); got != 3 {
		t.Fatalf("ASV_WORKERS=3: Workers() = %d", got)
	}
	t.Setenv("ASV_WORKERS", "1")
	if got := Workers(); got != 1 {
		t.Fatalf("ASV_WORKERS=1: Workers() = %d", got)
	}
	// Invalid or non-positive values fall back to GOMAXPROCS.
	for _, bad := range []string{"0", "-2", "lots", ""} {
		t.Setenv("ASV_WORKERS", bad)
		if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
			t.Fatalf("ASV_WORKERS=%q: Workers() = %d, want GOMAXPROCS %d", bad, got, want)
		}
	}
}

func TestWorkersLimitsConcurrency(t *testing.T) {
	t.Setenv("ASV_WORKERS", "2")
	var cur, peak int32
	var mu sync.Mutex
	ForChunked(64, func(lo, hi int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		for i := lo; i < hi; i++ {
			_ = i * i
		}
		atomic.AddInt32(&cur, -1)
	})
	if peak > 2 {
		t.Fatalf("ASV_WORKERS=2 but observed %d concurrent ranges", peak)
	}
}

func TestForChunkedSerialWhenOneWorker(t *testing.T) {
	t.Setenv("ASV_WORKERS", "1")
	calls := 0
	ForChunked(100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("serial path got range [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial path called fn %d times", calls)
	}
}
