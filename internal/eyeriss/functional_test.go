package eyeriss

import (
	"testing"

	"asv/internal/deconv"
	"asv/internal/tensor"
	"asv/internal/testkit"
)

// Differential oracle (ISSUE 2): the functional row-stationary array must
// agree with the reference convolution on randomized shapes, exactly like
// the systolic array does — both comparison architectures compute the same
// math, only the performance models differ.

func TestRowStationaryConvMatchesReferenceRandomShapes(t *testing.T) {
	r := testkit.NewRand(t)
	for i := 0; i < 40; i++ {
		c := testkit.RandDim(r, 1, 4)
		f := testkit.RandDim(r, 1, 4)
		kh := testkit.RandDim(r, 1, 4)
		kw := testkit.RandDim(r, 1, 4)
		stride := testkit.RandDim(r, 1, 2)
		pad := testkit.RandDim(r, 0, 2)
		h := testkit.RandDim(r, kh, kh+6)
		wd := testkit.RandDim(r, kw, kw+6)
		if tensor.ConvOut(h, kh, stride, pad) < 1 || tensor.ConvOut(wd, kw, stride, pad) < 1 {
			continue
		}
		in := testkit.RandTensor(r, c, h, wd)
		w := testkit.RandTensor(r, f, c, kh, kw)
		arr := NewArray(testkit.RandDim(r, 1, 4), testkit.RandDim(r, 1, 4))
		got := arr.Conv2D(in, w, stride, pad)
		want := tensor.Conv2D(in, w, stride, pad)
		if m := testkit.DiffTensors(got, want, 1e-9); m != nil {
			t.Fatalf("case %d: in %v w %v stride %d pad %d array %dx%d: %s",
				i, in.Shape(), w.Shape(), stride, pad, arr.Rows, arr.Cols, m)
		}
	}
}

// subAxis describes one spatial dimension of a sub-convolution's gather:
// the n ofmap positions u0, u0+2, ... of one parity class read ifmap
// windows starting at a0, a0+1, ...; top is the (non-positive) first ifmap
// coordinate any window touches, i.e. the explicit padding offset.
type subAxis struct {
	u0, n, a0, top, padded int
}

func sliceAxis(out, pad, delta, sk, h int) subAxis {
	u0 := ((pad-delta)%2 + 2) % 2
	var n int
	if u0 == 0 {
		n = (out + 1) / 2
	} else {
		n = out / 2
	}
	a0 := (u0 - pad + delta) / 2
	top := 0
	if a0 < 0 {
		top = a0
	}
	bottom := h - 1
	if last := a0 + n - 1 + sk - 1; last > bottom {
		bottom = last
	}
	return subAxis{u0: u0, n: n, a0: a0, top: top, padded: bottom - top + 1}
}

// TestRowStationaryExecutesTransformedDeconv is the Eyeriss+DCT path of the
// paper's comparison in miniature: each sub-kernel of a transformed
// deconvolution is a dense convolution the row-stationary array can run
// as-is (on an explicitly zero-padded ifmap, since sub-windows may hang off
// either edge); the gather step must reproduce the reference deconvolution.
func TestRowStationaryExecutesTransformedDeconv(t *testing.T) {
	r := testkit.NewRand(t)
	for i := 0; i < 12; i++ {
		c := testkit.RandDim(r, 1, 3)
		f := testkit.RandDim(r, 1, 3)
		h := testkit.RandDim(r, 3, 6)
		wd := testkit.RandDim(r, 3, 6)
		kh := testkit.RandDim(r, 2, 4)
		kw := testkit.RandDim(r, 2, 4)
		pad := testkit.RandDim(r, 0, 2)
		oh := tensor.DeconvOut(h, kh, deconv.Stride, pad)
		ow := tensor.DeconvOut(wd, kw, deconv.Stride, pad)
		if oh < 1 || ow < 1 {
			continue
		}
		in := testkit.RandTensor(r, c, h, wd)
		w := testkit.RandTensor(r, f, c, kh, kw)
		want := tensor.Deconv2D(in, w, deconv.Stride, pad)

		got := tensor.New(f, oh, ow)
		arr := NewArray(3, 3)
		for k, s := range deconv.Decompose2D(w) {
			if s == nil {
				continue
			}
			dy, dx := k&1, (k>>1)&1
			sh, sw := s.Dim(2), s.Dim(3)
			ya := sliceAxis(oh, pad, dy, sh, h)
			xa := sliceAxis(ow, pad, dx, sw, wd)
			if ya.n == 0 || xa.n == 0 {
				continue
			}
			padded := tensor.New(c, ya.padded, xa.padded)
			for ci := 0; ci < c; ci++ {
				for iy := 0; iy < h; iy++ {
					for ix := 0; ix < wd; ix++ {
						padded.Set3(in.At3(ci, iy, ix), ci, iy-ya.top, ix-xa.top)
					}
				}
			}
			sub := arr.Conv2D(padded, s, 1, 0)
			for fi := 0; fi < f; fi++ {
				for m := 0; m < ya.n; m++ {
					for nIdx := 0; nIdx < xa.n; nIdx++ {
						v := sub.At3(fi, ya.a0+m-ya.top, xa.a0+nIdx-xa.top)
						got.Set3(v, fi, ya.u0+2*m, xa.u0+2*nIdx)
					}
				}
			}
		}
		if m := testkit.DiffTensors(got, want, 1e-9); m != nil {
			t.Fatalf("case %d: ifmap %v kernel %v pad %d: %s", i, in.Shape(), w.Shape(), pad, m)
		}
	}
}

func TestRowStationaryMACAccounting(t *testing.T) {
	r := testkit.NewRand(t)
	in := testkit.RandTensor(r, 2, 5, 7)
	w := testkit.RandTensor(r, 3, 2, 3, 3)
	arr := NewArray(2, 3)
	out := arr.Conv2D(in, w, 1, 1)
	oh, ow := out.Dim(1), out.Dim(2)
	want := int64(3 * 2 * 3 * 3 * oh * ow) // F*C*KH*KW*OH*OW, padding included
	if arr.MACs() != want {
		t.Fatalf("MACs = %d, want %d", arr.MACs(), want)
	}
	if arr.Cycles() <= 0 {
		t.Fatalf("cycles = %d", arr.Cycles())
	}
	// Lockstep parallelism: the array must be faster than one PE doing all
	// the work serially.
	if arr.Cycles() >= want {
		t.Fatalf("array no faster than serial: %d >= %d", arr.Cycles(), want)
	}
}

func TestNewArrayPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0x3 array")
		}
	}()
	NewArray(0, 3)
}
