package eyeriss

import (
	"fmt"

	"asv/internal/tensor"
)

// Functional row-stationary simulator.
//
// The analytic model (RunNetwork) predicts Eyeriss-class performance; this
// file actually *executes* the row-stationary dataflow, the way
// systolic.Grid executes the weight-stationary one, so the comparison
// architecture is verified against the same reference convolution as the
// ASV array (see the differential oracle in functional_test.go).
//
// Row-stationary mapping (Chen et al., ISCA'16): a PE holds one filter row
// and performs a 1-D sliding convolution against one ifmap row; PEs of one
// column cover the KH filter rows of one output row, and their row-wise
// partial sums accumulate down the column. The array processes a
// (filter-row set ≤ Rows) × (output-row set ≤ Cols) tile per pass,
// iterating over filters, channels and kernel-row/output-row tiles.

// Array is a Rows×Cols row-stationary PE grid.
type Array struct {
	Rows, Cols int
	cycles     int64
	macs       int64
}

// NewArray returns an idle row-stationary array.
func NewArray(rows, cols int) *Array {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("eyeriss: invalid array %dx%d", rows, cols))
	}
	return &Array{Rows: rows, Cols: cols}
}

// Cycles returns the total simulated cycles, including pass fill/drain.
func (a *Array) Cycles() int64 { return a.cycles }

// MACs returns the multiply-accumulates performed (padding taps included,
// matching the naive execution model the analytic side charges).
func (a *Array) MACs() int64 { return a.macs }

// rowConv1D is the work of one PE for one pass: slide the kw-tap filter
// row over the ifmap row (already offset for stride/pad) and emit ow
// partial outputs. Accumulation is in float64, as one PE's psum register
// chain never leaves the datapath mid-row.
func (a *Array) rowConv1D(in *tensor.Tensor, ci, iy, pad, stride, ow, kw int, w *tensor.Tensor, fi, ky int, psum []float64) {
	h, wd := in.Dim(1), in.Dim(2)
	inRange := iy >= 0 && iy < h
	for ox := 0; ox < ow; ox++ {
		var acc float64
		for kx := 0; kx < kw; kx++ {
			ix := ox*stride + kx - pad
			if inRange && ix >= 0 && ix < wd {
				acc += float64(in.At3(ci, iy, ix)) * float64(w.At4(fi, ci, ky, kx))
			}
			a.macs++ // the PE clocks every tap, real or padded
		}
		psum[ox] += acc
	}
	a.cycles += int64(ow * kw)
}

// Conv2D executes the convolution of in [C,H,W] with w [F,C,KH,KW] on the
// row-stationary array (stride/pad as in tensor.Conv2D) and returns
// [F,OH,OW]. The result is numerically identical to tensor.Conv2D up to
// float summation order.
func (a *Array) Conv2D(in, w *tensor.Tensor, stride, pad int) *tensor.Tensor {
	if in.Rank() != 3 || w.Rank() != 4 {
		panic(fmt.Sprintf("eyeriss: Conv2D wants ranks 3,4; got %d,%d", in.Rank(), w.Rank()))
	}
	c, f := in.Dim(0), w.Dim(0)
	if c != w.Dim(1) {
		panic(fmt.Sprintf("eyeriss: Conv2D channel mismatch ifmap=%d weights=%d", c, w.Dim(1)))
	}
	kh, kw := w.Dim(2), w.Dim(3)
	oh := tensor.ConvOut(in.Dim(1), kh, stride, pad)
	ow := tensor.ConvOut(in.Dim(2), kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("eyeriss: Conv2D non-positive output %dx%d", oh, ow))
	}

	// Output accumulates in float64 until every channel/kernel-row pass has
	// been folded in (the RF-resident psum of the mapping).
	acc := make([]float64, f*oh*ow)
	psum := make([]float64, ow)

	for fi := 0; fi < f; fi++ {
		for ci := 0; ci < c; ci++ {
			// Tile kernel rows onto array rows, output rows onto columns.
			for ky0 := 0; ky0 < kh; ky0 += a.Rows {
				kt := min(a.Rows, kh-ky0)
				for oy0 := 0; oy0 < oh; oy0 += a.Cols {
					ot := min(a.Cols, oh-oy0)
					// One pass: PE(i,j) convolves filter row ky0+i against
					// the ifmap row feeding output row oy0+j. PEs run in
					// lockstep; the pass costs one PE's row workload plus
					// the diagonal fill/drain of the psum chain.
					for j := 0; j < ot; j++ {
						oy := oy0 + j
						base := (fi*oh + oy) * ow
						for x := range psum {
							psum[x] = 0
						}
						for i := 0; i < kt; i++ {
							ky := ky0 + i
							iy := oy*stride + ky - pad
							a.rowConv1D(in, ci, iy, pad, stride, ow, kw, w, fi, ky, psum)
						}
						for x := 0; x < ow; x++ {
							acc[base+x] += psum[x]
						}
					}
					// Lockstep parallelism: the kt×ot PEs of the pass ran
					// concurrently, so charge one PE's work, not the sum.
					passMACs := int64(ow * kw)
					a.cycles -= int64(kt*ot)*passMACs - passMACs
					a.cycles += int64(a.Rows + a.Cols) // fill/drain bubble
				}
			}
		}
	}

	out := tensor.New(f, oh, ow)
	d := out.Data()
	for i := range d {
		d[i] = float32(acc[i])
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
