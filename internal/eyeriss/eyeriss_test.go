package eyeriss

import (
	"testing"

	"asv/internal/backend"
	"asv/internal/nn"
	"asv/internal/systolic"
)

func TestRunNetworkReportsComplete(t *testing.T) {
	m := Default()
	rep := m.RunNetwork(nn.DispNet(135, 240), backend.RunOptions{Policy: backend.PolicyBaseline})
	if rep.Cycles <= 0 || rep.MACs <= 0 || rep.EnergyJ <= 0 || rep.DRAMBytes <= 0 {
		t.Fatalf("incomplete report: %+v", rep)
	}
	if rep.DeconvCycles <= 0 || rep.DeconvCycles >= rep.Cycles {
		t.Fatalf("deconv slice out of range: %d of %d", rep.DeconvCycles, rep.Cycles)
	}
}

func TestDCTHelpsEyerissToo(t *testing.T) {
	// Paper Sec. 7.5: extending Eyeriss with the transformation yields
	// ~1.6x speedup and ~31% energy saving over plain Eyeriss.
	m := Default()
	n := nn.FlowNetC(nn.QHDH, nn.QHDW)
	base := m.RunNetwork(n, backend.RunOptions{Policy: backend.PolicyBaseline})
	dct := m.RunNetwork(n, backend.RunOptions{Policy: backend.PolicyDCT})
	sp := float64(base.Cycles) / float64(dct.Cycles)
	if sp < 1.15 || sp > 2.2 {
		t.Fatalf("Eyeriss+DCT speedup %.2fx, want ~1.6x band", sp)
	}
	en := 1 - dct.EnergyJ/base.EnergyJ
	if en < 0.10 || en > 0.5 {
		t.Fatalf("Eyeriss+DCT energy saving %.0f%%, want ~31%% band", 100*en)
	}
}

func TestEyerissSlowerThanSystolicBaseline(t *testing.T) {
	// The paper's Fig. 13 normalization implies the systolic baseline beats
	// Eyeriss on these workloads (DCO alone is 2.6x vs Eyeriss but only
	// ~1.5x vs the systolic baseline).
	n := nn.DispNet(270, 480)
	eye := Default().RunNetwork(n, backend.RunOptions{Policy: backend.PolicyBaseline})
	sys := systolic.Default().RunNetwork(n, backend.RunOptions{Policy: backend.PolicyBaseline})
	if eye.Cycles <= sys.Cycles {
		t.Fatalf("Eyeriss (%d cycles) should trail the systolic baseline (%d)", eye.Cycles, sys.Cycles)
	}
}

func TestUtilizationMonotonicInTaps(t *testing.T) {
	prev := 1.0
	for _, taps := range []int64{1, 2, 4, 9, 27} {
		u := utilization(taps)
		if u <= 0 || u > 1 {
			t.Fatalf("utilization(%d) = %v out of (0,1]", taps, u)
		}
		if u < prev-1e-9 && taps == 1 {
			continue
		}
		prev = u
	}
	if utilization(1) >= utilization(9) {
		t.Fatal("1x1 kernels should map worse than 3x3 under row-stationary")
	}
}
