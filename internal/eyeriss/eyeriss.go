// Package eyeriss models the Eyeriss-class spatial architecture used as a
// comparison point in paper Sec. 7.5 (Fig. 13): a row-stationary dataflow
// over a 2-D PE array with the same PE count, buffer capacity and memory
// bandwidth as the ASV systolic array (the paper's fair-comparison
// configuration).
//
// Row-stationary mapping maximizes register-file reuse inside the array but
// pays NoC energy per MAC and maps 1×1 kernels and fully connected layers
// poorly. The model supports the deconvolution transformation (the paper
// extends the Eyeriss simulator with DCT for a stronger baseline) but not
// ILAR, whose formulation targets the systolic array's unified buffer —
// its backend capabilities are PolicyBaseline and PolicyDCT only.
package eyeriss

import (
	"fmt"
	"math"

	"asv/internal/backend"
	"asv/internal/hw"
	"asv/internal/nn"
	"asv/internal/schedule"
)

// Model is an Eyeriss-like accelerator instance.
type Model struct {
	Cfg hw.Config
	En  hw.Energy
}

// NoCpJPerMAC is the network-on-chip energy each MAC pays for operand
// delivery across the spatial array.
const NoCpJPerMAC = 0.35

// New returns a model with the given resources.
func New(cfg hw.Config, en hw.Energy) *Model {
	cfg.Validate()
	return &Model{Cfg: cfg, En: en}
}

// Default returns the paper's comparison configuration: identical PE count,
// buffer and bandwidth to the ASV accelerator.
func Default() *Model { return New(hw.Default(), hw.DefaultEnergy()) }

// Name implements backend.Backend.
func (m *Model) Name() string { return "eyeriss" }

// Describe implements backend.Backend: row-stationary mapping takes the
// deconvolution transformation (DCT) but has no unified-buffer ILAR and no
// ISM extensions.
func (m *Model) Describe() backend.Description {
	return backend.Description{
		Name: m.Name(),
		Summary: fmt.Sprintf("Eyeriss-class row-stationary spatial array, %dx%d PEs @ %.1f GHz, %.1f MB buffer",
			m.Cfg.PEsX, m.Cfg.PEsY, m.Cfg.FreqHz/1e9, float64(m.Cfg.BufBytes)/(1024*1024)),
		Caps: backend.Capabilities{
			Policies: []backend.Policy{backend.PolicyBaseline, backend.PolicyDCT},
		},
	}
}

// utilization returns the sustained fraction of the PE array a layer keeps
// busy under row-stationary mapping. Spatial mapping constraints (kernel
// rows × ifmap rows folded onto the array) leave more bubbles than a
// systolic pipeline, especially for degenerate kernels.
func utilization(taps int64) float64 {
	switch {
	case taps >= 9: // 3x3 and larger map well
		return 0.55
	case taps >= 4:
		return 0.48
	case taps > 1:
		return 0.40
	default: // 1x1 kernels and FC layers map poorly onto RS
		return 0.30
	}
}

// RunNetwork implements backend.Backend. PolicyDCT applies the
// deconvolution transformation first (the "Eyeriss+DCT" bar of Fig. 13);
// PolicyBaseline runs the naive deconvolutions. Options must be
// normalized; use backend.Run for validated execution.
func (m *Model) RunNetwork(n *nn.Network, opts backend.RunOptions) backend.Report {
	transformed := opts.Policy.Transformed()
	rep := backend.Report{Workload: n.Name + "@eyeriss", Policy: opts.Policy}
	pes := float64(m.Cfg.PEs())
	bpc := m.Cfg.BytesPerCycle()
	elemB := m.Cfg.ElemBytes

	for _, l := range n.Layers {
		var spec schedule.LayerSpec
		if transformed {
			spec = schedule.TransformedSpec(l)
		} else {
			spec = schedule.NaiveSpec(l)
		}
		var cycles int64
		var macs int64
		var dram int64
		// Each sub-convolution is mapped as an independent pass (no ILAR):
		// the ifmap streams from DRAM again for every pass that does not fit
		// the buffer.
		ifBytes := spec.IfmapElems() * elemB
		for _, sc := range spec.Subs {
			scMACs := sc.MACs(spec.InC)
			macs += scMACs
			u := utilization(sc.Taps)
			cCycles := int64(math.Ceil(float64(scMACs) / (pes * u)))
			passIf := ifBytes
			if ifBytes <= m.Cfg.UsableBuf() {
				// Fits on chip: loaded once per pass but reused fully.
				passIf = ifBytes
			} else {
				// Row-stationary halo refetch on oversized ifmaps.
				passIf = ifBytes + ifBytes/4
			}
			wBytes := sc.Taps * spec.InC * sc.Filters * elemB
			oBytes := sc.OutPerFilter * sc.Filters * elemB
			mem := passIf + wBytes + oBytes
			mCycles := int64(math.Ceil(float64(mem) / bpc))
			// The spatial array overlaps compute and fetch less perfectly
			// than a double-buffered systolic pipeline.
			lat := cCycles
			if mCycles > lat {
				lat = mCycles
			}
			lat += (cCycles + mCycles - lat) / 4 // imperfect overlap
			cycles += lat
			dram += mem
		}
		rep.Cycles += cycles
		rep.MACs += macs
		rep.DRAMBytes += dram
		rep.SRAMBytes += dram // everything crosses the global buffer once
		eb := backend.EnergyBreakdown{
			ComputeJ: float64(macs) * (m.En.MACpJ + NoCpJPerMAC) * 1e-12,
			SRAMJ:    float64(dram) * m.En.SRAMpJByte * 1e-12,
			DRAMJ:    float64(dram) * m.En.DRAMpJByte * 1e-12,
		}
		rep.Energy.Add(eb)
		e := eb.Total()
		rep.EnergyJ += e
		if l.Kind == nn.KindDeconv {
			rep.DeconvCycles += cycles
			rep.DeconvEnergyJ += e
		}
	}
	rep.Seconds = float64(rep.Cycles) / m.Cfg.FreqHz
	rep.Energy.LeakJ = m.En.LeakWatts * rep.Seconds
	rep.EnergyJ += rep.Energy.LeakJ
	return rep
}
