package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerWGBalance checks the sync.WaitGroup discipline of every launched
// goroutine, in two CFG-aware ways. First, a goroutine that calls
// WaitGroup.Done on some paths must call it on all of them — a conditional
// return before Done leaves the matching Wait blocked forever, the quiet
// sibling of the drain bugs golocked hunts. Second, WaitGroup.Add inside
// the goroutine it gates is flagged outright: Add must happen-before the
// goroutine starts (and before Wait), or Wait can observe a zero counter
// and return while the work is still running.
var AnalyzerWGBalance = &Analyzer{
	Name: "wgbalance",
	Doc:  "WaitGroup.Done skipped on some goroutine path, or Add inside the gated goroutine",
	Run:  runWGBalance,
}

func runWGBalance(p *Pass) []Diagnostic {
	// Index declarations so `go s.worker()` resolves to worker's body.
	decls := declIndex(p)

	var out []Diagnostic
	analyzed := map[*ast.BlockStmt]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goStmtBody(p, gs, decls)
			if body == nil || analyzed[body] {
				return true
			}
			analyzed[body] = true
			out = append(out, wgBalanceGoroutine(p, gs, body)...)
			return true
		})
	}
	return out
}

// declIndex maps each function/method object to its declaration.
func declIndex(p *Pass) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// goStmtBody resolves the body a go statement launches: a function literal,
// or a same-package function/method declaration.
func goStmtBody(p *Pass, gs *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeFunc(p.Info, gs.Call); fn != nil {
		if fd, ok := decls[fn]; ok {
			return fd.Body
		}
	}
	return nil
}

// doneSet is the must-have-called-Done lattice: nil is bottom, keys are
// WaitGroup receiver chains.
type doneSet map[string]bool

func (s doneSet) clone() doneSet {
	c := make(doneSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func wgBalanceGoroutine(p *Pass, gs *ast.GoStmt, body *ast.BlockStmt) []Diagnostic {
	// Every WaitGroup this goroutine calls Done on, plus all Add calls, from
	// one shallow walk (deferred function literals run in this goroutine and
	// are included; nested goroutines are their own analysis).
	doneKeys := map[string]bool{}
	type addCall struct {
		key string
		pos token.Pos
	}
	var adds []addCall
	visitCall := func(x ast.Node) {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return
		}
		key, typ, method, ok := syncMethodCall(p, call)
		if !ok || typ != "WaitGroup" {
			return
		}
		switch method {
		case "Done":
			doneKeys[key] = true
		case "Add":
			adds = append(adds, addCall{key: key, pos: call.Pos()})
		}
	}
	inspectShallow(body, visitCall)
	inspectShallow(body, func(x ast.Node) {
		if d, ok := x.(*ast.DeferStmt); ok {
			if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				inspectShallow(lit.Body, visitCall)
			}
		}
	})

	var out []Diagnostic
	for _, a := range adds {
		if doneKeys[a.key] {
			out = append(out, p.diag(a.pos, "wgbalance",
				"WaitGroup.Add on %s inside the goroutine it gates; Add must happen-before the goroutine starts or Wait can return early", a.key))
		}
	}
	if len(doneKeys) == 0 {
		return out
	}

	// Must-analysis: Done (or a defer registering it) must reach every
	// normal or panicking exit — defers run while panicking, so a deferred
	// Done satisfies panic paths too, but a path that panics before any
	// Done is registered crashes the program anyway and is not the
	// hung-Wait bug this rule hunts; panic predecessors are skipped.
	cfg := BuildCFG(body)
	_, outStates := ForwardDataflow(cfg, doneSet{},
		func(dst, src doneSet) (doneSet, bool) {
			if dst == nil {
				return src.clone(), true
			}
			changed := false
			for k := range dst {
				if !src[k] {
					delete(dst, k)
					changed = true
				}
			}
			return dst, changed
		},
		func(b *Block, in doneSet) doneSet {
			st := in.clone()
			for _, n := range b.Nodes {
				wgTransferNode(p, n, st)
			}
			return st
		},
	)

	missing := map[string]bool{}
	for _, pred := range cfg.Exit.Preds {
		if pred.Panics {
			continue
		}
		st, ok := outStates[pred]
		if !ok {
			continue
		}
		for k := range doneKeys {
			if !st[k] {
				missing[k] = true
			}
		}
	}
	for k := range doneKeys {
		if missing[k] {
			out = append(out, p.diag(gs.Pos(), "wgbalance",
				"WaitGroup.Done on %s is skipped on some path of this goroutine, leaving Wait blocked forever; defer %s.Done() at the top of the goroutine", k, k))
		}
	}
	return out
}

// wgTransferNode marks the WaitGroups a node guarantees Done for: a direct
// Done call, or a defer that registers one (directly or via a deferred
// function literal).
func wgTransferNode(p *Pass, n ast.Node, st doneSet) {
	mark := func(x ast.Node) {
		if call, ok := x.(*ast.CallExpr); ok {
			if key, typ, method, ok := syncMethodCall(p, call); ok && typ == "WaitGroup" && method == "Done" {
				st[key] = true
			}
		}
	}
	if d, ok := n.(*ast.DeferStmt); ok {
		mark(d.Call)
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			inspectShallow(lit.Body, mark)
		}
		return
	}
	inspectShallow(n, mark)
}
