package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerDroppedErr flags calls whose error result is silently discarded:
// either the call is an expression statement (including `defer`/`go`), or
// the error position is assigned to the blank identifier. Test files are
// never loaded by the engine, and packages under examples/ are exempt —
// everywhere else a dropped error has already cost this repo real bugs
// (silently ignored decode failures surface as corrupt golden frames).
//
// A small allowlist covers calls whose error is guaranteed nil by API
// contract (strings.Builder, bytes.Buffer and hash.Hash writes) and the
// fmt print family, where checking is noise.
var AnalyzerDroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "error result dropped via _ or an ignored call",
	Run:  runDroppedErr,
}

func runDroppedErr(p *Pass) []Diagnostic {
	if strings.HasPrefix(p.Path, "asv/examples") {
		return nil
	}
	var out []Diagnostic
	report := func(call *ast.CallExpr, how string) {
		out = append(out, p.diag(call.Pos(), "droppederr",
			"error result of %s is %s; handle it or suppress with an //asvlint:ignore comment explaining why", callName(p, call), how))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if dropsError(p, call) {
						report(call, "discarded")
					}
					return false
				}
			case *ast.DeferStmt:
				if dropsError(p, n.Call) {
					report(n.Call, "discarded by defer")
				}
				return true
			case *ast.GoStmt:
				if dropsError(p, n.Call) {
					report(n.Call, "discarded by go")
				}
				return true
			case *ast.AssignStmt:
				// Single call on the RHS: match each blank LHS against the
				// call's error result positions.
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && !allowlisted(p, call) {
						for _, i := range resultErrorIndexes(p.Info, call) {
							if i < len(n.Lhs) && isBlank(n.Lhs[i]) {
								report(call, "assigned to _")
							}
						}
					}
					return true
				}
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || allowlisted(p, call) {
						continue
					}
					if idx := resultErrorIndexes(p.Info, call); len(idx) == 1 && idx[0] == 0 &&
						i < len(n.Lhs) && isBlank(n.Lhs[i]) {
						report(call, "assigned to _")
					}
				}
			}
			return true
		})
	}
	return out
}

// dropsError reports whether the bare call returns an error that nothing
// consumes.
func dropsError(p *Pass, call *ast.CallExpr) bool {
	return len(resultErrorIndexes(p.Info, call)) > 0 && !allowlisted(p, call)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callName renders a call target for the diagnostic message.
func callName(p *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if fn := calleeFunc(p.Info, call); fn != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return "(" + sig.Recv().Type().String() + ")." + fn.Name()
			}
			if fn.Pkg() != nil {
				return fn.Pkg().Name() + "." + fn.Name()
			}
		}
		return fun.Sel.Name
	}
	return "call"
}

// allowlisted reports whether the call's error is nil by documented contract
// or conventionally unchecked.
func allowlisted(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// Prefer the static receiver type at the call site: a hash.Hash32's
		// Write resolves to io.Writer.Write through interface embedding, but
		// the caller sees a hash, whose Write never fails by contract.
		recv := sig.Recv().Type()
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := p.Info.Selections[sel]; ok {
				recv = s.Recv()
			}
		}
		// strings.Builder and bytes.Buffer writes are documented to always
		// return a nil error; hash.Hash.Write likewise.
		if named, ok := namedFrom(recv, "strings"); ok && named.Obj().Name() == "Builder" {
			return true
		}
		if named, ok := namedFrom(recv, "bytes"); ok && named.Obj().Name() == "Buffer" {
			return true
		}
		if fn.Name() == "Write" {
			if named, _ := namedFrom(recv, ""); named != nil && named.Obj().Pkg() != nil &&
				strings.HasPrefix(named.Obj().Pkg().Path(), "hash") {
				return true
			}
		}
		return false
	}
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
	}
	return false
}
