package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goLockedPkgs are the concurrent-runtime packages where an unsupervised
// goroutine is a leak bug: PR 3's graceful drain only works because every
// goroutine is joinable. Other packages may launch fire-and-forget helpers.
var goLockedPkgs = map[string]bool{
	"asv/internal/pipeline": true,
	"asv/internal/serve":    true,
}

// AnalyzerGoLocked flags `go` statements in the concurrent-runtime packages
// whose goroutine shows no visible lifecycle coordination: no
// WaitGroup.Done/Add, no channel operation (send, receive, close, select),
// and no context use, in either the launched function body or the launch
// statement's function literal. Such a goroutine cannot be waited for or
// cancelled, which is exactly the leak class the serving layer's drain logic
// exists to prevent.
var AnalyzerGoLocked = &Analyzer{
	Name: "golocked",
	Doc:  "goroutine without WaitGroup/channel/context lifecycle coordination",
	Run:  runGoLocked,
}

func runGoLocked(p *Pass) []Diagnostic {
	if !goLockedPkgs[p.Path] {
		return nil
	}
	// Index this package's function declarations by object so `go s.worker()`
	// can be checked against worker's body.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goStmtCoordinated(p, gs, decls) {
				return true
			}
			out = append(out, p.diag(gs.Pos(), "golocked",
				"goroutine has no visible lifecycle coordination (WaitGroup Done/Add, channel op, select, or context); it cannot be joined or cancelled"))
			return true
		})
	}
	return out
}

// goStmtCoordinated reports whether the goroutine launched by gs shows
// lifecycle evidence in the launched body (function literal or same-package
// function declaration). Arguments to the call are also scanned: passing a
// channel, context or *sync.WaitGroup into the goroutine counts.
func goStmtCoordinated(p *Pass, gs *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) bool {
	for _, arg := range gs.Call.Args {
		if t := p.Info.TypeOf(arg); t != nil && isCoordType(t) {
			return true
		}
	}
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyShowsCoordination(p, fun.Body)
	default:
		if fn := calleeFunc(p.Info, gs.Call); fn != nil {
			if fd, ok := decls[fn]; ok {
				return bodyShowsCoordination(p, fd.Body)
			}
			// Method or function from another package: the launched body is
			// out of reach, so require evidence at the call site (receiver or
			// arguments) — a bound method on a struct holding channels cannot
			// be seen through here, so inspect the receiver type's fields.
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				if t := p.Info.TypeOf(sel.X); t != nil && typeHoldsCoord(t) {
					return true
				}
			}
		}
	}
	return false
}

// bodyShowsCoordination scans a function body (including nested literals)
// for lifecycle evidence.
func bodyShowsCoordination(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			// Ranging over a channel blocks until it is closed — lifecycle
			// evidence; ranging over a slice is not.
			if t := p.Info.TypeOf(n.X); t != nil && isChan(t) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" && p.Info.Uses[fun] == types.Universe.Lookup("close") {
					found = true
				}
			case *ast.SelectorExpr:
				if sel, ok := p.Info.Selections[fun]; ok {
					if recvNamed, ok := namedFrom(sel.Recv(), "sync"); ok &&
						recvNamed.Obj().Name() == "WaitGroup" &&
						(fun.Sel.Name == "Done" || fun.Sel.Name == "Add") {
						found = true
					}
					if _, ok := namedFrom(sel.Recv(), "context"); ok {
						found = true
					}
				}
			}
		case *ast.Ident:
			if t := p.Info.TypeOf(n); t != nil && isContext(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCoordType reports whether t is a channel, a context.Context, or a
// *sync.WaitGroup — types whose hand-off into a goroutine implies the
// spawner retains a way to coordinate with it.
func isCoordType(t types.Type) bool {
	if isChan(t) || isContext(t) {
		return true
	}
	if named, ok := namedFrom(t, "sync"); ok && named.Obj().Name() == "WaitGroup" {
		return true
	}
	return false
}

func isChan(t types.Type) bool {
	_, ok := types.Unalias(t).Underlying().(*types.Chan)
	return ok
}

func isContext(t types.Type) bool {
	named, ok := namedFrom(t, "context")
	return ok && named.Obj().Name() == "Context"
}

// typeHoldsCoord reports whether a (possibly pointer-to) struct type has any
// field of a coordination type — a bound method goroutine on such a struct
// (e.g. `go s.janitor()` where s holds a stop channel) is assumed joinable.
func typeHoldsCoord(t types.Type) bool {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isCoordType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
