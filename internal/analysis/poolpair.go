package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

const imgprocPath = "asv/internal/imgproc"

// AnalyzerPoolPair flags imgproc.GetImage results that are provably leaked:
// the image is bound to a local variable, never reaches a PutImage (directly
// or deferred) anywhere in the function, and never escapes the function
// (returned, stored in a composite literal, assigned onward, sent on a
// channel, address-taken, or passed to any other call). Escaping images are
// someone else's responsibility — the rule only reports the case where no
// path can ever release the buffer, the leak class pooling was added to
// eliminate.
var AnalyzerPoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "imgproc pool Get without a reachable Put",
	Run:  runPoolPair,
}

func runPoolPair(p *Pass) []Diagnostic {
	var out []Diagnostic
	forEachFuncBody(p.Files, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
		out = append(out, poolPairFunc(p, body)...)
	})
	return out
}

// poolPairFunc analyzes one function body.
func poolPairFunc(p *Pass, body *ast.BlockStmt) []Diagnostic {
	// Pass 1: collect local variables bound directly to a GetImage call.
	got := map[*types.Var]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isPkgFunc(calleeFunc(p.Info, call), imgprocPath, "GetImage") {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			var obj types.Object
			if as.Tok == token.DEFINE {
				obj = p.Info.Defs[id]
			} else {
				obj = p.Info.Uses[id]
			}
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				got[v] = call.Pos()
			}
		}
		return true
	})
	if len(got) == 0 {
		return nil
	}

	// Pass 2: scan every construct through which the image could be released
	// or escape. A variable that is Put is paired; a variable that escapes is
	// out of scope for this rule; what remains is a guaranteed leak.
	released := map[*types.Var]bool{}
	escaped := map[*types.Var]bool{}
	localVar := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if ok {
			if _, tracked := got[v]; tracked {
				return v
			}
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			isPut := isPkgFunc(calleeFunc(p.Info, n), imgprocPath, "PutImage")
			for _, arg := range n.Args {
				if v := localVar(arg); v != nil {
					if isPut {
						released[v] = true
					} else {
						escaped[v] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if v := localVar(res); v != nil {
					escaped[v] = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if v := localVar(elt); v != nil {
					escaped[v] = true
				}
			}
		case *ast.AssignStmt:
			// Re-binding the pool image to another name, a field, a map slot
			// or an element hands ownership onward.
			for _, rhs := range n.Rhs {
				if v := localVar(rhs); v != nil {
					escaped[v] = true
				}
			}
		case *ast.SendStmt:
			if v := localVar(n.Value); v != nil {
				escaped[v] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := localVar(n.X); v != nil {
					escaped[v] = true
				}
			}
		case *ast.FuncLit:
			// A closure may release the image later (e.g. a cleanup func);
			// treat any tracked variable it captures as escaped.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := p.Info.Uses[id].(*types.Var); ok {
						if _, tracked := got[v]; tracked {
							escaped[v] = true
						}
					}
				}
				return true
			})
			return false
		}
		return true
	})

	var out []Diagnostic
	for v, pos := range got {
		if !released[v] && !escaped[v] {
			out = append(out, p.diag(pos, "poolpair",
				"imgproc.GetImage result %q never reaches imgproc.PutImage and does not escape this function (pooled buffer leak)", v.Name()))
		}
	}
	return out
}
